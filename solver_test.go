package kifmm

import (
	"math"
	"testing"
)

// testSystem returns a small symmetric positive-definite system
// (diagonally dominant tridiagonal), its right-hand side for a known
// solution, and an apply closure.
func testSystem(n int) (apply MatVec, b, want []float64) {
	apply = func(dst, x []float64) {
		for i := range dst {
			v := 4 * x[i]
			if i > 0 {
				v -= x[i-1]
			}
			if i < n-1 {
				v -= x[i+1]
			}
			dst[i] = v
		}
	}
	want = make([]float64, n)
	for i := range want {
		want[i] = math.Sin(float64(i + 1))
	}
	b = make([]float64, n)
	apply(b, want)
	return apply, b, want
}

func solutionErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

func TestSolveGMRES(t *testing.T) {
	const n = 40
	apply, b, want := testSystem(n)
	x := make([]float64, n)
	res, err := SolveGMRES(apply, b, x, SolverOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge: %+v", res)
	}
	if res.Residual > 1e-10 {
		t.Errorf("residual = %g, want <= 1e-10", res.Residual)
	}
	if e := solutionErr(x, want); e > 1e-8 {
		t.Errorf("solution error = %g", e)
	}
	if res.Iterations <= 0 || res.Iterations > 200 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestSolveBiCGSTAB(t *testing.T) {
	const n = 40
	apply, b, want := testSystem(n)
	x := make([]float64, n)
	res, err := SolveBiCGSTAB(apply, b, x, SolverOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge: %+v", res)
	}
	if e := solutionErr(x, want); e > 1e-8 {
		t.Errorf("solution error = %g", e)
	}
}

// TestSolveGMRESBatchWithFMMOperator: many right-hand sides against one
// FMM operator, the workload SolveGMRESBatch exists for. Every system
// must converge to the accuracy its sequential counterpart reaches.
func TestSolveGMRESBatchWithFMMOperator(t *testing.T) {
	pts := FlattenPatches(UniformPatches(13, 120))
	n := len(pts) / 3
	ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 4, MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	const shift = 1.0
	apply := func(xs [][]float64) ([][]float64, error) {
		pots, err := ev.EvaluateBatch(xs)
		if err != nil {
			return nil, err
		}
		for i := range pots {
			for j := range pots[i] {
				pots[i][j] += shift * xs[i][j]
			}
		}
		return pots, nil
	}
	const k = 3
	wants := make([][]float64, k)
	bs := make([][]float64, k)
	xs := make([][]float64, k)
	for s := 0; s < k; s++ {
		wants[s] = make([]float64, n)
		for i := range wants[s] {
			wants[s][i] = 1 + float64((i+s)%7)/7
		}
		xs[s] = make([]float64, n)
	}
	rhs, err := apply(wants)
	if err != nil {
		t.Fatal(err)
	}
	copy(bs, rhs)
	results, err := SolveGMRESBatch(apply, bs, xs, SolverOptions{Tol: 1e-8, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	for s, res := range results {
		if !res.Converged {
			t.Fatalf("system %d did not converge: %+v", s, res)
		}
		if e := solutionErr(xs[s], wants[s]); e > 1e-5 {
			t.Errorf("system %d solution error = %g", s, e)
		}
	}
}

// TestSolverWithFMMOperator closes the loop the paper describes: a
// Krylov solve whose operator is an FMM evaluation (first-kind system
// G x = b on a small cloud, regularized by a diagonal shift).
func TestSolverWithFMMOperator(t *testing.T) {
	pts := FlattenPatches(UniformPatches(11, 120))
	n := len(pts) / 3
	ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 4, MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	const shift = 1.0
	apply := func(dst, x []float64) {
		pot, err := ev.Evaluate(x)
		if err != nil {
			t.Fatalf("evaluate inside solver: %v", err)
		}
		for i := range dst {
			dst[i] = shift*x[i] + pot[i]
		}
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + float64(i%7)/7
	}
	b := make([]float64, n)
	apply(b, want)
	x := make([]float64, n)
	res, err := SolveGMRES(apply, b, x, SolverOptions{Tol: 1e-8, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("FMM-operator GMRES did not converge: %+v", res)
	}
	if e := solutionErr(x, want); e > 1e-5 {
		t.Errorf("solution error = %g", e)
	}
}

// kifmm-lint is the repository's static-analysis multichecker: it runs
// the internal/lint analyzer suite over package patterns and reports
// every invariant violation that is not annotated with a
// //lint:allow <analyzer> <reason> comment.
//
// Usage:
//
//	go run ./cmd/kifmm-lint ./...
//	go run ./cmd/kifmm-lint -run determinism,nojsonhot ./internal/...
//	go run ./cmd/kifmm-lint -list
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// load or configuration error. Stale or malformed //lint:allow
// annotations are findings too, so suppressions cannot outlive the
// code they excuse.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and the invariants they enforce, then exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	version := flag.Bool("version", false, "print version information and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kifmm-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the kifmm static-analysis suite over the given package\npatterns (default ./...). Suppress an intentional exception with a\n//lint:allow <analyzer> <reason> comment on or directly above the\nflagged line.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("kifmm-lint"))
		return
	}
	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kifmm-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kifmm-lint:", err)
		os.Exit(2)
	}
	pkgs, err := load.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kifmm-lint:", err)
		os.Exit(2)
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kifmm-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kifmm-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}

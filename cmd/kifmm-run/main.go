// Command kifmm-run performs one interaction evaluation (sequential or
// parallel) and prints the timing breakdown — a quick way to exercise
// the library from the command line.
package main

import (
	"flag"
	"fmt"
	"os"

	kifmm "repro"
	"repro/internal/buildinfo"
)

func main() {
	n := flag.Int("n", 20000, "number of particles")
	kernel := flag.String("kernel", "laplace", "laplace | modlaplace | stokes | kelvin")
	dist := flag.String("dist", "spheres", "spheres | corners | uniform")
	degree := flag.Int("p", 6, "surface degree")
	maxPts := flag.Int("s", 60, "max points per leaf box")
	procs := flag.Int("procs", 0, "simulated MPI ranks (0 = sequential)")
	iters := flag.Int("iters", 1, "number of interaction evaluations")
	dense := flag.Bool("dense-m2l", false, "use dense M2L instead of FFT")
	seed := flag.Int64("seed", 1, "sampling seed")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("kifmm-run"))
		return
	}

	k, err := kifmm.KernelByName(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var patches []kifmm.Patch
	switch *dist {
	case "corners":
		patches = kifmm.CornerPatches(*seed, *n, 0.3)
	case "uniform":
		patches = kifmm.UniformPatches(*seed, *n)
	default:
		patches = kifmm.SpherePatches(*seed, *n, 8, 0.1)
	}
	pts := kifmm.FlattenPatches(patches)
	den := kifmm.RandomDensities(*seed+1, len(pts)/3, k.SourceDim())
	backend := kifmm.M2LFFT
	if *dense {
		backend = kifmm.M2LDense
	}

	if *procs > 0 {
		res, err := kifmm.EvaluateParallel(patches, den, *procs, kifmm.ParallelOptions{
			Options:    kifmm.Options{Kernel: k, Degree: *degree, MaxPoints: *maxPts, Backend: backend},
			Iterations: *iters,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("parallel KIFMM: N=%d kernel=%s P=%d tree: %d boxes, depth %d\n",
			*n, *kernel, *procs, res.Boxes, res.Depth)
		fmt.Printf("T(P) = %v (virtual), load ratio %.2f\n", res.MaxTotal(), res.Ratio())
		fmt.Printf("%4s %12s %12s %12s\n", "rank", "total", "comm", "bytes")
		for r, s := range res.Ranks {
			fmt.Printf("%4d %12v %12v %12d\n", r, s.Total, s.Comm, s.BytesSent)
		}
		return
	}

	// Workers pinned to 1: this path prints per-stage wall times and a
	// Mflop/s rate labeled "sequential", which only mean that on a
	// single worker (with more, Stats sums compute time across workers).
	ev, err := kifmm.NewEvaluator(pts, pts, kifmm.Options{
		Kernel: k, Degree: *degree, MaxPoints: *maxPts, Backend: backend, Workers: 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sequential KIFMM: N=%d kernel=%s p=%d s=%d tree: %d boxes, depth %d\n",
		*n, *kernel, *degree, *maxPts, ev.Boxes(), ev.Depth())
	for it := 0; it < *iters; it++ {
		if _, err := ev.Evaluate(den); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := ev.Stats()
		fmt.Printf("iter %d: total %v  (Up %v | DownU %v | DownV %v | DownW %v | DownX %v | Eval %v)  %.1f Mflop/s\n",
			it, s.Total(), s.Up, s.DownU, s.DownV, s.DownW, s.DownX, s.Eval,
			float64(s.Flops())/s.Total().Seconds()/1e6)
	}
}

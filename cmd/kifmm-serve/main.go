// Command kifmm-serve runs the FMM evaluation service: an HTTP server
// holding an LRU cache of prepared evaluation plans (octree +
// translation operators), so many callers amortize the expensive setup
// the paper describes across their interaction evaluations.
//
// API:
//
//	POST /v1/plans                     register geometry, get a plan id
//	POST /v1/plans/{id}/evaluate       densities -> potentials
//	POST /v1/plans/{id}/evaluate_batch many density vectors in one sweep
//	POST /v1/evaluate                  one-shot register + evaluate
//	POST /v1/uploads                   create a chunked geometry upload
//	POST /v1/uploads/{id}              append one binary chunk
//	GET  /v1/uploads/{id}              committed prefix (resume offset)
//	GET  /healthz                      liveness
//	GET  /metrics                      Prometheus text exposition
//	GET  /v1/evals/recent              span trees of recent evaluations
//	GET  /debug/vars                   expvar metrics (legacy "kifmm" key)
//	GET  /debug/pprof/...              runtime profiles (with -pprof)
//
// Bulk arrays cross the wire as JSON by default or as binary frames
// (Content-Type / Accept: application/x-kifmm-frame; see README "Wire
// format"); evaluation POSTs honor an Idempotency-Key header so client
// retries never double-evaluate. In-flight chunked uploads are bounded
// in aggregate by -upload-bytes.
//
// Evaluation requests accept ?trace=1 to echo the evaluation's span
// tree in the response. Structured request logs (slog, one line per
// request with a request id) go to stderr; evaluations slower than
// -slow-eval are logged at WARN.
//
// Every request runs under its own context (client disconnects cancel
// the in-flight FMM sweep) plus the optional -eval-timeout deadline;
// errors carry machine-readable kifmm taxonomy codes mapped onto HTTP
// 400/404/413/499/504/500.
//
// Scheduling is adaptive: all requests share one elastic pool of
// -max-workers lanes. An evaluation on an idle server fans out across
// every lane; as concurrent requests arrive, running evaluations shed
// lanes at chunk boundaries down to -min-lane-per-eval, and requests
// that cannot get even the floor queue. Granted widths are reported
// per response (granted_lanes) and aggregated under /debug/vars
// (lanes_in_use, lanes_granted_total, granted_width_hist).
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener closes and
// in-flight requests get -drain-timeout to finish; past the drain
// deadline their contexts are cancelled, which aborts the running
// evaluations within one FMM pass so the process exits promptly instead
// of waiting out a long sweep. A second signal skips the drain.
//
// Cluster mode (see README "Cluster mode"): -role coordinator makes
// this process fan one-shot evaluations of at least -cluster-min-points
// sources across connected workers over TCP; -role worker joins a
// coordinator (-join) and contributes its elastic lanes as KIFMM ranks
// — workers serve no HTTP API, so several can share a machine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 32, "maximum number of cached plans (LRU)")
	cacheBytes := flag.Int64("cache-bytes", 0, "bound the summed estimated plan footprint in bytes (0 = count bound only)")
	maxWorkers := flag.Int("max-workers", runtime.GOMAXPROCS(0), "elastic pool capacity: total worker lanes across all concurrent evaluations (one idle request may use them all)")
	minLane := flag.Int("min-lane-per-eval", 1, "admission floor: lanes every evaluation keeps under saturation; bounds concurrent evaluations at max-workers/min-lane-per-eval")
	evalTimeout := flag.Duration("eval-timeout", 0, "per-request deadline; requests exceeding it fail with 504 and the evaluation stops (0 = none)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "HTTP read timeout")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "HTTP write timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain; in-flight evaluations past it are cancelled")
	pprofOn := flag.Bool("pprof", false, "serve runtime profiles under GET /debug/pprof/")
	slowEval := flag.Duration("slow-eval", time.Second, "log requests slower than this at WARN (0 = never)")
	traceRing := flag.Int("trace-ring", 0, "evaluations retained for GET /v1/evals/recent (0 = default 64)")
	uploadBytes := flag.Int64("upload-bytes", 0, "aggregate budget for in-flight chunked geometry uploads (0 = default 1 GiB)")
	role := flag.String("role", "", `cluster role: "coordinator" fans large one-shot evaluations across joined workers, "worker" joins a coordinator; empty = single node`)
	join := flag.String("join", "", "coordinator cluster address a worker dials (-role worker)")
	clusterListen := flag.String("cluster-listen", "", "cluster listener: where the coordinator accepts workers (default 127.0.0.1:7946) or where a worker accepts rank-to-rank mesh traffic (default 127.0.0.1:0)")
	clusterMinPoints := flag.Int("cluster-min-points", 0, "source count at which one-shot evaluations fan out across the cluster (0 = default 8192; -role coordinator)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "cluster heartbeat interval; a worker silent for two intervals is dropped")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("kifmm-serve"))
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var coord *cluster.Coordinator
	var worker *cluster.Worker
	switch *role {
	case "":
	case "coordinator":
		listen := *clusterListen
		if listen == "" {
			listen = "127.0.0.1:7946"
		}
		var err error
		coord, err = cluster.StartCoordinator(context.Background(), listen, cluster.CoordinatorConfig{
			Heartbeat: *heartbeat, Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster coordinator:", err)
			os.Exit(1)
		}
		defer coord.Close()
		fmt.Printf("cluster coordinator accepting workers on %s (heartbeat %v)\n", coord.Addr(), *heartbeat)
	case "worker":
		if *join == "" {
			fmt.Fprintln(os.Stderr, "-role worker requires -join <coordinator cluster address>")
			os.Exit(1)
		}
		var err error
		worker, err = cluster.StartWorker(context.Background(), cluster.WorkerConfig{
			Coordinator: *join, Listen: *clusterListen,
			Lanes: *maxWorkers, Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster worker:", err)
			os.Exit(1)
		}
		fmt.Printf("cluster worker %d joined %s (mesh on %s, %d lanes)\n", worker.ID(), *join, worker.Addr(), *maxWorkers)
		// Workers are pure compute nodes: no HTTP API, so several can
		// share a machine without -addr colliding. Block until signalled,
		// then drain (finish in-flight ranks, tell the coordinator).
		stop := make(chan os.Signal, 2)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		sig := <-stop
		fmt.Printf("received %v, draining worker\n", sig)
		worker.Close()
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown -role %q (want \"coordinator\", \"worker\" or empty)\n", *role)
		os.Exit(1)
	}

	svc := service.New(service.Config{
		CacheSize: *cacheSize, CacheBytes: *cacheBytes,
		MaxWorkers: *maxWorkers, MinLanePerEval: *minLane,
		TraceRing: *traceRing, UploadBytes: *uploadBytes,
		Cluster: coord, ClusterMinPoints: *clusterMinPoints,
	})
	opts := []service.ServerOption{
		service.WithEvalTimeout(*evalTimeout),
		service.WithLogger(logger),
		service.WithSlowEvalThreshold(*slowEval),
	}
	if *pprofOn {
		opts = append(opts, service.WithPprof())
	}
	// baseCtx parents every request context; cancelling it is the lever
	// that aborts all in-flight evaluations when the drain deadline
	// passes (the ctx plumbing carries it down into the FMM passes).
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:         *addr,
		Handler:      service.NewServer(svc, opts...),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		BaseContext:  func(net.Listener) context.Context { return baseCtx },
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("kifmm-serve listening on %s (cache %d plans / %d bytes, %d elastic lanes, floor %d per eval, eval timeout %v)\n",
			*addr, *cacheSize, *cacheBytes, *maxWorkers, *minLane, *evalTimeout)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case sig := <-stop:
		fmt.Printf("received %v, draining for up to %v (signal again to skip)\n", sig, *drainTimeout)
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			// A second signal, or the drain deadline, cuts the drain
			// short; either way the in-flight evaluations are cancelled
			// below before the hard close.
			select {
			case sig := <-stop:
				fmt.Printf("received %v again, skipping drain\n", sig)
				cancelDrain()
			case <-drainCtx.Done():
			}
		}()
		err := srv.Shutdown(drainCtx)
		cancelDrain()
		if err != nil {
			fmt.Println("drain incomplete, cancelling in-flight evaluations")
			// Cancel every request context: running FMM sweeps abort at
			// their next pass barrier and the handlers return, letting
			// a short second drain succeed where the first timed out.
			cancelBase()
			finalCtx, cancelFinal := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancelFinal()
			if err := srv.Shutdown(finalCtx); err != nil {
				_ = srv.Close()
			}
		}
	}
}

// Command kifmm-serve runs the FMM evaluation service: an HTTP server
// holding an LRU cache of prepared evaluation plans (octree +
// translation operators), so many callers amortize the expensive setup
// the paper describes across their interaction evaluations.
//
// API:
//
//	POST /v1/plans                     register geometry, get a plan id
//	POST /v1/plans/{id}/evaluate       densities -> potentials
//	POST /v1/plans/{id}/evaluate_batch many density vectors in one sweep
//	POST /v1/evaluate                  one-shot register + evaluate
//	GET  /healthz                      liveness
//	GET  /debug/vars                   expvar metrics ("kifmm" key)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 32, "maximum number of cached plans (LRU)")
	cacheBytes := flag.Int64("cache-bytes", 0, "bound the summed estimated plan footprint in bytes (0 = count bound only)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "maximum concurrent evaluations")
	evalWorkers := flag.Int("eval-workers", 1, "goroutines one evaluation fans out over (raise for latency, keep 1 for throughput)")
	readTimeout := flag.Duration("read-timeout", 5*time.Minute, "HTTP read timeout")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "HTTP write timeout")
	flag.Parse()

	svc := service.New(service.Config{
		CacheSize: *cacheSize, CacheBytes: *cacheBytes,
		Workers: *workers, EvalWorkers: *evalWorkers,
	})
	srv := &http.Server{
		Addr:         *addr,
		Handler:      service.NewServer(svc),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("kifmm-serve listening on %s (cache %d plans / %d bytes, %d workers x %d eval goroutines)\n",
			*addr, *cacheSize, *cacheBytes, *workers, *evalWorkers)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case sig := <-stop:
		fmt.Printf("received %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

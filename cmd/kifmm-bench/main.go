// Command kifmm-bench regenerates the paper's evaluation artifacts
// (Tables 4.1-4.3, Figures 4.2-4.3 and the M2L ablation) at a
// configurable scale.
//
// Usage:
//
//	kifmm-bench -exp table4.1            # one experiment
//	kifmm-bench -exp all -scale 2        # everything, 2x the default size
//	kifmm-bench -list                    # show available experiments
//
// It also records performance-trajectory samples: `kifmm-bench
// -trajectory` runs a fixed workload (N=10000 uniform points, Laplace,
// degree 6, FFT M2L) and appends a schema'd entry — git SHA, date,
// per-stage ms, flops, granted lanes — to BENCH_trajectory.json
// (-trajectory-file), so performance is comparable across commits.
//
// `kifmm-bench -exp parfmm-trace` runs a deterministic 4-rank traced
// distributed evaluation, prints the per-rank/per-pass virtual-time
// breakdown and critical-path summary, and writes the merged timeline
// as Chrome trace-event JSON (-trace-out; load it in Perfetto or
// chrome://tracing). Combine with -trajectory to also append a sample
// carrying the distributed fields (ranks, comm traffic, critical path).
//
// `kifmm-bench -exp cluster-smoke` boots a real-TCP loopback cluster
// (coordinator + two workers in one process tree), runs one evaluation
// round-trip over the wire, and verifies the result against the
// single-node engine to 1e-12 relative L2. With -trajectory it appends
// a sample carrying the real-transport ranks and comm volumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table4.1, fig4.2, table4.2, fig4.3, table4.3, ablation-m2l, exec-workers, parfmm-trace, cluster-smoke, wire-bench, all)")
	scale := flag.Float64("scale", 1, "multiply the default particle counts by this factor")
	iters := flag.Int("iters", 1, "average the interaction evaluation over this many iterations")
	maxP := flag.Int("maxp", 0, "cap the processor sweep at this rank count (0 = default sweep)")
	list := flag.Bool("list", false, "list experiments and exit")
	traj := flag.Bool("trajectory", false, "record one performance-trajectory sample and exit")
	trajFile := flag.String("trajectory-file", "BENCH_trajectory.json", "trajectory file to append to (with -trajectory)")
	trajN := flag.Int("trajectory-n", 0, "trajectory workload size (0 = default 10000)")
	label := flag.String("label", "", "free-form tag stored with the trajectory entry")
	wireN := flag.Int("wire-n", 0, "point count for -exp wire-bench (0 = default 1000000)")
	traceOut := flag.String("trace-out", "parfmm-trace.json", "Chrome trace-event output file (with -exp parfmm-trace)")
	traceRanks := flag.Int("trace-ranks", 0, "simulated rank count for -exp parfmm-trace (0 = default 4)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("kifmm-bench"))
		return
	}

	if *exp == "parfmm-trace" {
		runParfmmTrace(*traceOut, *traceRanks, *trajN, *iters, *traj, *trajFile, *label)
		return
	}

	if *exp == "cluster-smoke" {
		runClusterSmoke(*trajN, *traj, *trajFile, *label)
		return
	}

	if *exp == "wire-bench" {
		runWireBench(*wireN, *traj, *trajFile, *label)
		return
	}

	if *traj {
		entry, err := harness.RunTrajectoryPoint(harness.TrajectoryConfig{
			N: *trajN, Iterations: *iters, Label: *label,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.AppendTrajectory(*trajFile, entry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("appended to %s: sha=%s n=%d wall=%.1fms flops=%d lanes=%d\n",
			*trajFile, entry.GitSHA, entry.N, entry.WallMS, entry.Flops, entry.GrantedLanes)
		return
	}

	exps := harness.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		fmt.Printf("%-14s %s\n", "parfmm-trace",
			"traced 4-rank distributed run: per-pass breakdown, critical path, Chrome trace JSON")
		fmt.Printf("%-14s %s\n", "cluster-smoke",
			"real-TCP loopback cluster (coordinator + 2 workers): one round-trip checked against single node")
		fmt.Printf("%-14s %s\n", "wire-bench",
			"JSON vs binary-frame codec comparison of one simulated evaluate round trip")
		return
	}

	sc := harness.DefaultScale()
	sc.FixedN = int(float64(sc.FixedN) * *scale)
	sc.Grain = int(float64(sc.Grain) * *scale)
	for i := range sc.LargeGrains {
		sc.LargeGrains[i] = int(float64(sc.LargeGrains[i]) * *scale)
	}
	sc.Iterations = *iters
	if *maxP > 0 {
		sc.FixedProcs = capProcs(sc.FixedProcs, *maxP)
		sc.IsoProcs = capProcs(sc.IsoProcs, *maxP)
		if sc.LargeProcs > *maxP {
			sc.LargeProcs = *maxP
		}
	}

	ran := false
	for _, e := range exps {
		if *exp != "all" && *exp != e.ID {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("== %s: %s\n\n", e.ID, e.Description)
		out, err := e.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %s]\n\n", e.ID, harness.Elapse(start))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}

// runParfmmTrace executes the traced distributed experiment, prints its
// breakdown table, writes the Chrome trace file, and (with -trajectory)
// appends a distributed trajectory sample.
func runParfmmTrace(traceOut string, ranks, n, iters int, traj bool, trajFile, label string) {
	start := time.Now()
	rep, err := harness.RunParfmmTrace(harness.ParfmmTraceConfig{
		Ranks: ranks, N: n, Iterations: iters,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Table)
	f, err := os.Create(traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rep.Timeline.WriteChromeTrace(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote Chrome trace to %s (load in Perfetto or chrome://tracing)\n", traceOut)
	if traj {
		entry := harness.ParfmmTrajectoryEntry(rep, label)
		if err := harness.AppendTrajectory(trajFile, entry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("appended to %s: sha=%s ranks=%d critical_path=%.1fms comm=%dB/%d msgs\n",
			trajFile, entry.GitSHA, entry.Ranks, entry.CriticalPathMS, entry.CommBytes, entry.CommMsgs)
	}
	fmt.Printf("[parfmm-trace completed in %s]\n", harness.Elapse(start))
}

// runClusterSmoke boots the real-TCP loopback cluster, runs one
// evaluation round-trip, prints the per-rank breakdown, and (with
// -trajectory) appends a distributed sample carrying the real-transport
// ranks and comm volumes.
func runClusterSmoke(n int, traj bool, trajFile, label string) {
	start := time.Now()
	rep, err := harness.RunClusterSmoke(context.Background(), harness.ClusterSmokeConfig{N: n})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Table)
	if traj {
		entry := harness.ClusterSmokeTrajectoryEntry(rep, label)
		if err := harness.AppendTrajectory(trajFile, entry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nappended to %s: sha=%s ranks=%d comm=%dB/%d msgs rel_err=%.3g\n",
			trajFile, entry.GitSHA, entry.Ranks, entry.CommBytes, entry.CommMsgs, rep.RelErr)
	}
	fmt.Printf("[cluster-smoke completed in %s]\n", harness.Elapse(start))
}

// runWireBench compares the HTTP API's two bulk encodings on one
// simulated evaluate round trip and (with -trajectory) appends a
// sample carrying the wire_* fields.
func runWireBench(n int, traj bool, trajFile, label string) {
	start := time.Now()
	rep, err := harness.RunWireBench(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Table)
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "wire-bench: encodings decoded to different bits")
		os.Exit(1)
	}
	if traj {
		entry := harness.WireBenchTrajectoryEntry(rep, label)
		if err := harness.AppendTrajectory(trajFile, entry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nappended to %s: sha=%s n=%d json=%dB/%.1fms frame=%dB/%.1fms\n",
			trajFile, entry.GitSHA, entry.N, entry.WireJSONBytes, entry.WireJSONCodecMS,
			entry.WireFrameBytes, entry.WireFrameCodecMS)
	}
	fmt.Printf("[wire-bench completed in %s]\n", harness.Elapse(start))
}

func capProcs(ps []int, max int) []int {
	out := ps[:0:0]
	for _, p := range ps {
		if p <= max {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// Command kifmm-bench regenerates the paper's evaluation artifacts
// (Tables 4.1-4.3, Figures 4.2-4.3 and the M2L ablation) at a
// configurable scale.
//
// Usage:
//
//	kifmm-bench -exp table4.1            # one experiment
//	kifmm-bench -exp all -scale 2        # everything, 2x the default size
//	kifmm-bench -list                    # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table4.1, fig4.2, table4.2, fig4.3, table4.3, ablation-m2l, exec-workers, all)")
	scale := flag.Float64("scale", 1, "multiply the default particle counts by this factor")
	iters := flag.Int("iters", 1, "average the interaction evaluation over this many iterations")
	maxP := flag.Int("maxp", 0, "cap the processor sweep at this rank count (0 = default sweep)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := harness.Experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		return
	}

	sc := harness.DefaultScale()
	sc.FixedN = int(float64(sc.FixedN) * *scale)
	sc.Grain = int(float64(sc.Grain) * *scale)
	for i := range sc.LargeGrains {
		sc.LargeGrains[i] = int(float64(sc.LargeGrains[i]) * *scale)
	}
	sc.Iterations = *iters
	if *maxP > 0 {
		sc.FixedProcs = capProcs(sc.FixedProcs, *maxP)
		sc.IsoProcs = capProcs(sc.IsoProcs, *maxP)
		if sc.LargeProcs > *maxP {
			sc.LargeProcs = *maxP
		}
	}

	ran := false
	for _, e := range exps {
		if *exp != "all" && *exp != e.ID {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("== %s: %s\n\n", e.ID, e.Description)
		out, err := e.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %s]\n\n", e.ID, harness.Elapse(start))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}

func capProcs(ps []int, max int) []int {
	out := ps[:0:0]
	for _, p := range ps {
		if p <= max {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

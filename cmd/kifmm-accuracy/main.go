// Command kifmm-accuracy runs the convergence study behind the paper's
// accuracy setting ("the relative error in all experiments is 1e-5"):
// relative error of the FMM against direct summation as the surface
// degree p grows, for each kernel and particle distribution.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	kifmm "repro"
	"repro/internal/buildinfo"
)

func main() {
	n := flag.Int("n", 4000, "number of particles")
	seed := flag.Int64("seed", 1, "sampling seed")
	maxPts := flag.Int("s", 40, "max points per leaf box")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("kifmm-accuracy"))
		return
	}

	kernsNames := []string{"laplace", "modlaplace", "stokes", "kelvin"}
	degrees := []int{4, 6, 8}
	dists := []struct {
		name    string
		patches []kifmm.Patch
	}{
		{"uniform", kifmm.UniformPatches(*seed, *n)},
		{"spheres", kifmm.SpherePatches(*seed, *n, 4, 0.2)},
		{"corners", kifmm.CornerPatches(*seed, *n, 0.3)},
	}

	fmt.Printf("FMM vs direct summation, N=%d, s=%d\n\n", *n, *maxPts)
	fmt.Printf("%-12s %-10s", "kernel", "dist")
	for _, p := range degrees {
		fmt.Printf("  %12s", fmt.Sprintf("p=%d", p))
	}
	fmt.Println()
	for _, kn := range kernsNames {
		k, err := kifmm.KernelByName(kn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, d := range dists {
			pts := kifmm.FlattenPatches(d.patches)
			den := kifmm.RandomDensities(*seed+7, len(pts)/3, k.SourceDim())
			want, err := kifmm.Direct(k, pts, pts, den)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-12s %-10s", kn, d.name)
			for _, p := range degrees {
				if p == 8 && k.SourceDim() > 1 {
					fmt.Printf("  %12s", "(skipped)")
					continue
				}
				ev, err := kifmm.NewEvaluator(pts, pts, kifmm.Options{
					Kernel: k, Degree: p, MaxPoints: *maxPts,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				got, err := ev.Evaluate(den)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("  %12.3e", relErr(got, want))
			}
			fmt.Println()
		}
	}
	fmt.Println("\nThe paper's experiments target 1e-5 relative error; degree 6-8 reaches it.")
}

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// Benchmarks regenerating the paper's evaluation artifacts. Each paper
// table and figure has a bench target (see DESIGN.md for the index):
//
//	Table 4.1 / Figure 4.2: BenchmarkTable41* (fixed-size scalability)
//	Table 4.2 / Figure 4.3: BenchmarkTable42* (isogranular scalability)
//	Table 4.3:              BenchmarkTable43  (largest runs, s=120)
//	footnote 5 ablation:    BenchmarkM2LBackend*
//
// The benches run scaled-down sweeps (the paper used up to 3000
// processors and 700M particles); custom metrics expose the shape
// quantities the paper reports: virtual seconds per interaction
// (T(P), "vsec/interaction"), parallel efficiency vs P=1 ("efficiency"),
// communication share ("comm-frac") and aggregate Mflop rates
// ("mflops"). cmd/kifmm-bench prints the full tables.
package kifmm

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/barneshut"
	"repro/internal/fmm"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/parfmm"
)

// benchSweep runs one scalability sweep and reports paper-shaped metrics.
func benchSweep(b *testing.B, cfg harness.Config, iso bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var rows []harness.Row
		var err error
		if iso {
			rows, err = harness.Isogranular(cfg)
		} else {
			rows, err = harness.FixedSize(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		first := rows[0]
		b.ReportMetric(last.MaxTotal.Seconds(), "vsec/interaction")
		b.ReportMetric(last.AvgGF*1e3, "mflops")
		if last.Total > 0 {
			b.ReportMetric(last.Comm.Seconds()/last.Total.Seconds(), "comm-frac")
		}
		if !iso && first.P == 1 && last.Total > 0 {
			eff := first.Total.Seconds() / (float64(last.P) * last.Total.Seconds())
			b.ReportMetric(eff, "efficiency")
		}
		b.ReportMetric(last.Ratio, "load-ratio")
	}
}

// Fixed-size scalability (Table 4.1, Figure 4.2), one bench per kernel
// row of the table.

func BenchmarkTable41Laplace(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.Laplace{}, Distribution: "spheres",
		N: 8000, Procs: []int{1, 4, 8},
	}, false)
}

func BenchmarkTable41ModLaplace(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.NewModLaplace(1), Distribution: "spheres",
		N: 8000, Procs: []int{1, 4, 8},
	}, false)
}

func BenchmarkTable41Stokes(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.NewStokes(1), Distribution: "corners",
		N: 5000, Procs: []int{1, 4, 8},
	}, false)
}

// BenchmarkFig42Stages reports the per-stage split of the fixed-size
// study (the stacked bars of Figure 4.2).
func BenchmarkFig42Stages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := harness.FixedSize(harness.Config{
			Kernel: kernels.Laplace{}, Distribution: "spheres",
			N: 8000, Procs: []int{4},
		})
		if err != nil {
			b.Fatal(err)
		}
		s := rows[0].Stage
		total := s.Total().Seconds()
		if total > 0 {
			b.ReportMetric(s.Up.Seconds()/total, "up-frac")
			b.ReportMetric(s.DownU.Seconds()/total, "downU-frac")
			b.ReportMetric(s.DownV.Seconds()/total, "downV-frac")
			b.ReportMetric((s.DownW.Seconds()+s.DownX.Seconds())/total, "downWX-frac")
			b.ReportMetric(s.Eval.Seconds()/total, "eval-frac")
		}
	}
}

// Isogranular scalability (Table 4.2, Figure 4.3).

func BenchmarkTable42LaplaceUniform(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.Laplace{}, Distribution: "spheres",
		Grain: 1000, Procs: []int{1, 2, 4, 8},
	}, true)
}

func BenchmarkTable42StokesUniform(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.NewStokes(1), Distribution: "spheres",
		Grain: 600, Procs: []int{1, 2, 4},
	}, true)
}

func BenchmarkTable42StokesNonUniform(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.NewStokes(1), Distribution: "corners",
		Grain: 600, Procs: []int{1, 2, 4},
	}, true)
}

// BenchmarkFig43Stages reports the isogranular stage split (Figure 4.3).
func BenchmarkFig43Stages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := harness.Isogranular(harness.Config{
			Kernel: kernels.Laplace{}, Distribution: "spheres",
			Grain: 1000, Procs: []int{8},
		})
		if err != nil {
			b.Fatal(err)
		}
		s := rows[0].Stage
		total := s.Total().Seconds()
		if total > 0 {
			b.ReportMetric(s.DownV.Seconds()/total, "downV-frac")
			b.ReportMetric(s.DownU.Seconds()/total, "downU-frac")
		}
	}
}

// BenchmarkTable43 runs the "largest runs" configuration (s = 120).
func BenchmarkTable43(b *testing.B) {
	benchSweep(b, harness.Config{
		Kernel: kernels.Laplace{}, Distribution: "spheres",
		N: 12000, Procs: []int{16}, MaxPoints: 120,
	}, false)
}

// M2L backend ablation (paper footnote 5): same accuracy, different
// work/flop-rate trade-off.

func benchM2L(b *testing.B, backend fmm.M2LBackend) {
	patches := SpherePatches(1, 8000, 8, 0.1)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, 8000, 1)
	ev, err := NewEvaluator(pts, pts, Options{
		Kernel: Laplace(), Degree: 6, MaxPoints: 60, Backend: backend, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ev.Evaluate(den); err != nil { // warm the operator caches
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(den); err != nil {
			b.Fatal(err)
		}
	}
	s := ev.Stats()
	if s.DownV > 0 {
		b.ReportMetric(s.DownV.Seconds(), "downV-sec")
	}
}

func BenchmarkM2LBackendFFT(b *testing.B)   { benchM2L(b, fmm.M2LFFT) }
func BenchmarkM2LBackendDense(b *testing.B) { benchM2L(b, fmm.M2LDense) }

// BenchmarkWorkersSweep measures one interaction evaluation at N≈20k
// under increasing shared-memory fan-out — the real-hardware speedup
// the simulated-MPI tables model. Compare ns/op across the
// sub-benchmarks; the acceptance bar is >1.5x from workers=1 to
// workers=4 on CI-class hardware.
func BenchmarkWorkersSweep(b *testing.B) {
	const n = 20000
	patches := SpherePatches(1, n, 8, 0.1)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, n, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ev, err := NewEvaluator(pts, pts, Options{
				Kernel: Laplace(), Degree: 6, MaxPoints: 60, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ev.Evaluate(den); err != nil { // warm the operator caches
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Evaluate(den); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkElasticIdleFanout is the scheduler's acceptance benchmark:
// one evaluation on an otherwise idle server, compared between the old
// static throughput split (every call at width 1, the previous
// -eval-workers default) and the elastic pool granting the lone call
// the whole machine. On multi-core hardware "elastic" must beat
// "static1"; on a single core the two must coincide to within the
// lease bookkeeping (~µs per call) — which is also what CI's one-shot
// smoke run guards: a scheduling regression shows up here first.
func BenchmarkElasticIdleFanout(b *testing.B) {
	const n = 20000
	patches := SpherePatches(1, n, 8, 0.1)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, n, 1)
	run := func(b *testing.B, workers int) {
		b.Helper()
		// A fresh full-width pool per sub-benchmark: idle, so the grant
		// equals the requested ceiling.
		ev, err := NewEvaluator(pts, pts, Options{
			Kernel: Laplace(), Degree: 6, MaxPoints: 60,
			Workers: workers, Pool: NewPool(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ev.Evaluate(den); err != nil { // warm the operator caches
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(den); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ev.Stats().Lanes), "granted-lanes")
	}
	b.Run("static1", func(b *testing.B) { run(b, 1) })
	b.Run("elastic", func(b *testing.B) { run(b, 0) })
}

// BenchmarkEvaluateBatch measures the per-RHS cost of batched
// evaluation against repeated single evaluations: the batch pays tree
// traversal and near-field kernel evaluations once, so per-RHS ns/op
// must fall as the batch grows.
func BenchmarkEvaluateBatch(b *testing.B) {
	const n = 10000
	patches := SpherePatches(1, n, 4, 0.2)
	pts := FlattenPatches(patches)
	for _, nrhs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", nrhs), func(b *testing.B) {
			ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 6, MaxPoints: 60})
			if err != nil {
				b.Fatal(err)
			}
			dens := make([][]float64, nrhs)
			for q := range dens {
				dens[q] = RandomDensities(int64(3+q), n, 1)
			}
			if _, err := ev.EvaluateBatch(dens); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.EvaluateBatch(dens); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N)/float64(nrhs), "ns/rhs")
		})
	}
}

// BenchmarkSequentialEvaluate measures one sequential interaction
// evaluation per kernel (the paper's per-particle cycle counts:
// observation (1) of the Discussion). Workers is pinned to 1 so the
// numbers keep their single-core meaning.
func benchSequential(b *testing.B, k Kernel, n int) {
	patches := SpherePatches(1, n, 4, 0.2)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, n, k.SourceDim())
	ev, err := NewEvaluator(pts, pts, Options{Kernel: k, Degree: 6, MaxPoints: 60, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ev.Evaluate(den); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(den); err != nil {
			b.Fatal(err)
		}
	}
	s := ev.Stats()
	b.ReportMetric(float64(s.Flops())/s.Total().Seconds()/1e6, "mflops")
	b.ReportMetric(s.Total().Seconds()*1e9/float64(n)/1e3, "kcycles/particle@1GHz")
}

func BenchmarkSequentialLaplace(b *testing.B) { benchSequential(b, Laplace(), 10000) }

// BenchmarkEvaluateCtxUncancelled is BenchmarkSequentialLaplace through
// the ctx-first entry point with a live (but never cancelled) context.
// Comparing it against BenchmarkSequentialLaplace measures the cost of
// the cancellation checks on the hot path — one atomic load per
// scheduling chunk, which must stay under 1% of an N=10k Laplace
// evaluation (the api_redesign acceptance bound).
func BenchmarkEvaluateCtxUncancelled(b *testing.B) {
	const n = 10000
	patches := SpherePatches(1, n, 4, 0.2)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, n, 1)
	ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 6, MaxPoints: 60, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := ev.EvaluateCtx(ctx, den); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvaluateCtx(ctx, den); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkSequentialModLaplace(b *testing.B) { benchSequential(b, ModLaplace(1), 10000) }
func BenchmarkSequentialStokes(b *testing.B)     { benchSequential(b, Stokes(1), 6000) }

// BenchmarkDirectBaseline measures the O(N²) reference at the same size
// as BenchmarkSequentialLaplace, demonstrating the FMM's algorithmic win.
func BenchmarkDirectBaseline(b *testing.B) {
	patches := SpherePatches(1, 10000, 4, 0.2)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, 10000, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Direct(Laplace(), pts, pts, den); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeConstruction measures the setup phase the paper's
// "Gen/Comm" column tracks.
func BenchmarkTreeConstruction(b *testing.B) {
	patches := SpherePatches(1, 50000, 8, 0.1)
	pts := FlattenPatches(patches)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), MaxPoints: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelMachineSensitivity: the same run under a 10x slower
// interconnect — the comm fraction must grow (network model ablation).
func BenchmarkParallelMachineSensitivity(b *testing.B) {
	slow := mpi.DefaultMachine()
	slow.Bandwidth /= 10
	slow.Latency *= 10
	benchSweep(b, harness.Config{
		Kernel: kernels.Laplace{}, Distribution: "spheres",
		N: 8000, Procs: []int{8}, Machine: slow,
	}, false)
}

// BenchmarkTreecodeComparison reproduces the related-work claim the
// paper cites from Blelloch & Narlikar [3]: at matched (high) accuracy
// the FMM beats the Barnes-Hut treecode. Both use the same equivalent
// densities; only the interaction structure differs.
func BenchmarkTreecodeComparison(b *testing.B) {
	patches := SpherePatches(1, 12000, 4, 0.2)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, 12000, 1)
	b.Run("fmm", func(b *testing.B) {
		ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 6, MaxPoints: 60})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ev.Evaluate(den); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(den); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("barneshut", func(b *testing.B) {
		ev, err := barneshut.New(pts, barneshut.Options{
			Kernel: kernels.Laplace{}, Theta: 0.35, Degree: 6, MaxPoints: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ev.Evaluate(den); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(den); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoadBalanceFeedback measures the work-estimate partitioning
// ablation (paper Discussion item 6).
func BenchmarkLoadBalanceFeedback(b *testing.B) {
	patches := CornerPatches(5, 6000, 0.3)
	den := RandomDensities(6, 6000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		first, err := EvaluateParallel(patches, den, 8, ParallelOptions{
			Options: Options{Kernel: Laplace(), Degree: 6, MaxPoints: 60},
		})
		if err != nil {
			b.Fatal(err)
		}
		second, err := kifmmParallelWithWeights(patches, den, 8, first.PatchWork)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(first.Ratio(), "ratio-count")
		b.ReportMetric(second.Ratio(), "ratio-workfed")
	}
}

func kifmmParallelWithWeights(patches []Patch, den []float64, p int, weights []int64) (*ParallelResult, error) {
	return parfmm.Evaluate(patches, den, p, parfmm.Options{
		Kernel: Laplace(), Degree: 6, MaxPoints: 60, PatchWeights: weights,
	})
}

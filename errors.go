package kifmm

import "repro/internal/errs"

// The kifmm error taxonomy. Every error returned by the public API —
// construction, evaluation, solvers, and (via the service's wire codes)
// the HTTP client — carries a machine-readable ErrorCode reachable with
// errors.As, and matches exactly one of the sentinels below under
// errors.Is. Cancellation errors additionally satisfy the standard
// context sentinels: a cancelled evaluation returns an error for which
// both errors.Is(err, kifmm.ErrCanceled) and errors.Is(err,
// context.Canceled) hold, locally and across an HTTP round trip.

// Error is the typed API error: code, human-readable message, optional
// wrapped cause.
type Error = errs.Error

// ErrorCode is the stable machine-readable error class; it is what the
// evaluation service puts on the wire.
type ErrorCode = errs.Code

// The error codes. See the matching Err* sentinels for semantics; the
// evaluation service maps them onto HTTP statuses (400, 404, 413, 499,
// 504, 500, 503 in order below).
const (
	CodeInvalidInput     = errs.CodeInvalidInput
	CodeUnknownKernel    = errs.CodeUnknownKernel
	CodePlanTooLarge     = errs.CodePlanTooLarge
	CodePlanNotFound     = errs.CodePlanNotFound
	CodeCanceled         = errs.CodeCanceled
	CodeDeadlineExceeded = errs.CodeDeadlineExceeded
	CodeInternal         = errs.CodeInternal
	CodeWorkerLost       = errs.CodeWorkerLost
)

// Sentinels for errors.Is.
var (
	// ErrInvalidInput: malformed arguments (bad slice lengths, NaN
	// coordinates, out-of-domain kernel parameters, nil kernel).
	ErrInvalidInput = errs.ErrInvalidInput
	// ErrUnknownKernel: a kernel name no built-in kernel answers to
	// (KernelByName, KernelFromSpec).
	ErrUnknownKernel = errs.ErrUnknownKernel
	// ErrPlanTooLarge: a request exceeded a configured size bound
	// (service body/option/batch caps).
	ErrPlanTooLarge = errs.ErrPlanTooLarge
	// ErrPlanNotFound: an evaluation against an unknown or evicted
	// service plan id.
	ErrPlanNotFound = errs.ErrPlanNotFound
	// ErrCanceled: the context passed to a *Ctx entry point was
	// cancelled mid-flight; also satisfies context.Canceled.
	ErrCanceled = errs.ErrCanceled
	// ErrDeadlineExceeded: a context or per-request deadline passed
	// before the work finished; also satisfies context.DeadlineExceeded.
	ErrDeadlineExceeded = errs.ErrDeadlineExceeded
	// ErrInternal: a defect on the implementation's side (e.g. a
	// recovered panic in the evaluation service), not a caller mistake.
	ErrInternal = errs.ErrInternal
	// ErrWorkerLost: a cluster worker disconnected mid-evaluation, or no
	// workers are available for a cluster-sized request. Retryable once
	// capacity returns.
	ErrWorkerLost = errs.ErrWorkerLost
)

// ErrorCodeOf extracts the taxonomy code from an error chain; ok is
// false when err carries no typed error.
func ErrorCodeOf(err error) (code ErrorCode, ok bool) { return errs.CodeOf(err) }

package kifmm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/fmm"
	"repro/internal/kernels"
)

// KernelSpec is the serializable description of a built-in kernel
// (name plus parameters), the wire format used by the evaluation
// service; see internal/kernels.Spec.
type KernelSpec = kernels.Spec

// KernelSpecFor serializes a built-in kernel so it can be reconstructed
// elsewhere with KernelFromSpec.
func KernelSpecFor(k Kernel) (KernelSpec, error) { return kernels.SpecFor(k) }

// KernelFromSpec reconstructs a kernel from its serialized description.
func KernelFromSpec(s KernelSpec) (Kernel, error) { return kernels.FromSpec(s) }

// normalizeOptions applies the exact defaults fmm.New applies (one
// shared implementation), so that zero-valued and explicit-default
// Options produce the same plan key. The conversion in both directions
// goes through the shared fmmOptions/optionsFromFMM helpers, the same
// mapping NewEvaluator constructs with.
func normalizeOptions(opt Options) Options {
	return optionsFromFMM(fmm.ApplyDefaults(opt.fmmOptions()))
}

// planKeyHashedOptionFields and planKeyResultNeutralOptionFields
// together must name every field of Options: the first lists fields
// PlanKey hashes, the second fields deliberately excluded because they
// cannot change what an evaluator computes (Workers and Pool are pure
// scheduling: lanes only partition per-box work across goroutines;
// results are bitwise identical for every granted width, and hashing
// them would fragment the plan cache by machine size and process
// wiring). TestPlanKeyCoversOptions fails when a new Options field is
// in neither list, so it cannot silently miss the hash.
var (
	planKeyHashedOptionFields = []string{
		"Kernel", "Degree", "MaxPoints", "MaxDepth", "Backend", "PinvTol",
	}
	planKeyResultNeutralOptionFields = []string{"Workers", "Pool"}
)

// PlanKey returns a content hash identifying a prepared Evaluator: two
// calls agree exactly when NewEvaluator(src, trg, opt) would build an
// identical plan. The hash covers the source and target geometry, the
// kernel (by serialized spec, so parameters count) and every
// tree/operator option; option zero values hash as their defaults. The
// evaluation service uses this as its plan-cache key.
func PlanKey(src, trg []float64, opt Options) (string, error) {
	if opt.Kernel == nil {
		return "", fmt.Errorf("kifmm: PlanKey requires Options.Kernel")
	}
	spec, err := kernels.SpecFor(opt.Kernel)
	if err != nil {
		return "", err
	}
	opt = normalizeOptions(opt)
	h := sha256.New()
	var buf [8]byte
	writeF64 := func(v float64) {
		if v == 0 {
			v = 0 // collapse -0.0 onto +0.0: identical geometry, one key
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	// Geometry is hashed in multi-KiB chunks: the key is recomputed on
	// every request (cache hits included), and per-coordinate 8-byte
	// Writes would dominate SHA-256 throughput on large point sets.
	chunk := make([]byte, 0, 4096)
	writeF64s := func(vs []float64) {
		for _, v := range vs {
			if v == 0 {
				v = 0
			}
			chunk = binary.LittleEndian.AppendUint64(chunk, math.Float64bits(v))
			if len(chunk) == cap(chunk) {
				h.Write(chunk)
				chunk = chunk[:0]
			}
		}
		h.Write(chunk)
		chunk = chunk[:0]
	}
	h.Write([]byte("kifmm-plan-v1\x00"))
	h.Write([]byte(spec.Canonical()))
	h.Write([]byte{0})
	writeInt(opt.Degree)
	writeInt(opt.MaxPoints)
	writeInt(opt.MaxDepth)
	writeInt(int(opt.Backend))
	writeF64(opt.PinvTol)
	writeInt(len(src))
	writeF64s(src)
	writeInt(len(trg))
	writeF64s(trg)
	return hex.EncodeToString(h.Sum(nil)), nil
}

package kifmm

import (
	"math/rand"

	"repro/internal/geom"
)

// SpherePatches samples n particles from spheres of radius r centered on
// a g x g x g grid in [-1,1]³ — the paper's "512 spheres" input when
// g = 8. One patch per sphere.
func SpherePatches(seed int64, n, g int, r float64) []Patch {
	return geom.SphereGrid(rand.New(rand.NewSource(seed)), n, g, r)
}

// CornerPatches samples the paper's non-uniform distribution: n
// particles clustered at the eight corners of [-1,1]³.
func CornerPatches(seed int64, n int, spread float64) []Patch {
	return geom.CornerClusters(rand.New(rand.NewSource(seed)), n, spread, 8)
}

// UniformPatches samples n particles uniformly in [-1,1]³ as one patch.
func UniformPatches(seed int64, n int) []Patch {
	return geom.UniformCube(rand.New(rand.NewSource(seed)), n)
}

// RandomDensities draws count*dim density components uniformly from
// [0,1], the paper's density setup.
func RandomDensities(seed int64, count, dim int) []float64 {
	return geom.RandomDensities(rand.New(rand.NewSource(seed)), count, dim)
}

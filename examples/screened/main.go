// Screened Coulombic interactions (modified Laplace kernel), the
// molecular-dynamics use case the paper's introduction motivates: ionic
// charges in an electrolyte interact through the Yukawa potential
// e^(-λr)/(4πεr), where 1/λ is the Debye screening length. The example
// sweeps the screening parameter and shows how the interaction range —
// and the far-field energy — collapses as screening strengthens, then
// verifies the FMM against direct summation.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"

	kifmm "repro"
)

func main() {
	// ctx-first: Ctrl-C aborts the current FMM sweep within one pass
	// (the remaining lambdas are skipped) instead of running the whole
	// parameter sweep to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const n = 8000
	// A slab of charges: two clustered layers, like ions near a membrane.
	rng := rand.New(rand.NewSource(11))
	points := make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		z := 0.35
		if i%2 == 0 {
			z = -0.35
		}
		points = append(points,
			2*rng.Float64()-1,
			2*rng.Float64()-1,
			z+0.1*rng.NormFloat64(),
		)
	}
	// Alternating unit charges (net neutral system).
	charges := make([]float64, n)
	for i := range charges {
		if i%2 == 0 {
			charges[i] = 1
		} else {
			charges[i] = -1
		}
	}

	fmt.Println("lambda   interaction energy      FMM time     rel.err (200 samples)")
	for _, lambda := range []float64{0.1, 1, 4, 16} {
		k := kifmm.ModLaplace(lambda)
		ev, err := kifmm.NewEvaluatorCtx(ctx, points, points, kifmm.Options{
			Kernel: k, Degree: 6, MaxPoints: 50,
		})
		if err != nil {
			log.Fatal(err)
		}
		pot, err := ev.EvaluateCtx(ctx, charges)
		if err != nil {
			log.Fatal(err)
		}
		// Total electrostatic energy E = 1/2 Σ q_i u_i.
		energy := 0.0
		for i := range pot {
			energy += 0.5 * charges[i] * pot[i]
		}
		ref, err := kifmm.Direct(k, points[:600], points, charges)
		if err != nil {
			log.Fatal(err)
		}
		num, den := 0.0, 0.0
		for i := range ref {
			num += (pot[i] - ref[i]) * (pot[i] - ref[i])
			den += ref[i] * ref[i]
		}
		fmt.Printf("%6.1f   %+18.6f   %10v   %.2e\n",
			lambda, energy, ev.Stats().Total().Round(1e6), math.Sqrt(num/den))
	}
	fmt.Println("\nStronger screening (larger lambda) kills the far field: the energy")
	fmt.Println("approaches the near-neighbor limit while the FMM cost stays O(N) —")
	fmt.Println("no analytic multipole expansion of the Yukawa kernel was needed.")
}

// Quickstart: evaluate Laplace potentials for 10,000 particles with the
// kernel-independent FMM and verify a sample against direct summation.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"

	kifmm "repro"
)

func main() {
	// The API is context-first: every expensive call takes a ctx, and
	// Ctrl-C cancels the in-flight FMM work within one pass instead of
	// letting it run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const n = 10000
	// The paper's benchmark geometry: particles sampled from spheres on a
	// regular grid inside [-1,1]^3.
	patches := kifmm.SpherePatches(42, n, 4, 0.2)
	points := kifmm.FlattenPatches(patches)
	densities := kifmm.RandomDensities(7, n, 1)

	// Build the evaluator once (octree + translation operators)...
	ev, err := kifmm.NewEvaluatorCtx(ctx, points, points, kifmm.Options{
		Kernel: kifmm.Laplace(), // 1/(4πr)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("octree: %d boxes, depth %d\n", ev.Boxes(), ev.Depth())

	// ...then evaluate as many density vectors as needed. A cancelled
	// ctx would surface here as a typed error: errors.Is(err,
	// kifmm.ErrCanceled) — and errors.Is(err, context.Canceled) — hold.
	pot, err := ev.EvaluateCtx(ctx, densities)
	if err != nil {
		log.Fatal(err)
	}
	s := ev.Stats()
	fmt.Printf("FMM evaluation: %v (%.1f Mflop/s)\n",
		s.Total(), float64(s.Flops())/s.Total().Seconds()/1e6)

	// Verify the first 100 targets against the O(N²) reference.
	ref, err := kifmm.Direct(kifmm.Laplace(), points[:300], points, densities)
	if err != nil {
		log.Fatal(err)
	}
	num, den := 0.0, 0.0
	for i := range ref {
		num += (pot[i] - ref[i]) * (pot[i] - ref[i])
		den += ref[i] * ref[i]
	}
	fmt.Printf("relative error vs direct summation (100 samples): %.2e\n",
		math.Sqrt(num/den))
}

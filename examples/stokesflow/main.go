// Stokes flow fluid-structure interaction, the application of the
// paper's Figure 4.1: a rigid sphere sediments under gravity in a
// viscous fluid stirred by a rotating propeller. Both surfaces carry
// Stokeslet densities; at each time step the no-slip boundary conditions
// give a linear system solved with GMRES in which every mat-vec is one
// FMM interaction evaluation — the paper: "at each time step we solve a
// linear system that requires tens of interaction calculations".
//
// The sphere's unknown sinking velocity is resolved by linearity: solve
// once with the sphere held fixed (densities den0, net vertical force
// f0) and once for a unit sphere velocity (den1, force f1); the rigid
// velocity satisfying the gravity force balance is U = (Fg - f0) / f1.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"

	kifmm "repro"
)

const (
	mu        = 1.0  // fluid viscosity
	sphereR   = 0.18 // sediment sphere radius
	gravityF  = -1.0 // net body force on the sphere (z)
	propOmega = 0.6  // propeller angular velocity
	dt        = 0.4  // time step
	steps     = 4    // frames
	nSphere   = 400  // boundary points on the sphere
	nProp     = 600  // boundary points on the propeller
)

func main() {
	// ctx-first: a Ctrl-C mid-simulation aborts the in-flight GMRES
	// solve (and its FMM evaluation) within one pass; the typed error
	// satisfies errors.Is(err, kifmm.ErrCanceled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	center := [3]float64{0, 0, 0.55}
	prop := propellerPoints(nProp)
	k := kifmm.Stokes(mu)

	fmt.Println("step   sphere center (x,y,z)            sink velocity Uz   FMM evals")
	for step := 0; step < steps; step++ {
		angle := propOmega * float64(step) * dt
		propNow := rotateZ(prop, angle)
		sph := spherePoints(nSphere, center, sphereR)
		all := append(append([]float64{}, sph...), propNow...)
		n := len(all) / 3

		ev, err := kifmm.NewEvaluatorCtx(ctx, all, all, kifmm.Options{
			Kernel: k, Degree: 6, MaxPoints: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		evals := 0
		// The boundary operator: velocities induced at all boundary
		// points by the Stokeslet densities, regularized by a local
		// self-patch term so the discrete system is well conditioned.
		selfTerm := math.Sqrt(4*math.Pi*sphereR*sphereR/float64(nSphere)) / (8 * math.Pi * mu)
		apply := func(ctx context.Context, dst, x []float64) error {
			pot, err := ev.EvaluateCtx(ctx, x)
			if err != nil {
				return err
			}
			for i := range dst {
				dst[i] = pot[i] + selfTerm*x[i]
			}
			evals++
			return nil
		}

		// Right-hand side A: sphere fixed (v=0), propeller rotating.
		rhs0 := make([]float64, 3*n)
		for i := nSphere; i < n; i++ {
			x, y := all[3*i], all[3*i+1]
			rhs0[3*i] = -propOmega * y
			rhs0[3*i+1] = propOmega * x
		}
		den0 := make([]float64, 3*n)
		if _, err := kifmm.SolveGMRESCtx(ctx, apply, rhs0, den0, kifmm.SolverOptions{Tol: 1e-6, MaxIters: 120}); err != nil {
			log.Fatal(err)
		}
		// Right-hand side B: unit sphere velocity e_z, propeller at rest.
		rhs1 := make([]float64, 3*n)
		for i := 0; i < nSphere; i++ {
			rhs1[3*i+2] = 1
		}
		den1 := make([]float64, 3*n)
		if _, err := kifmm.SolveGMRESCtx(ctx, apply, rhs1, den1, kifmm.SolverOptions{Tol: 1e-6, MaxIters: 120}); err != nil {
			log.Fatal(err)
		}
		// Force balance on the sphere: f0 + U*f1 = gravity.
		f0, f1 := 0.0, 0.0
		for i := 0; i < nSphere; i++ {
			f0 += den0[3*i+2]
			f1 += den1[3*i+2]
		}
		U := (gravityF - f0) / f1
		center[2] += dt * U
		fmt.Printf("%4d   (%+.4f, %+.4f, %+.4f)   %+.5f   %d\n",
			step, center[0], center[1], center[2], U, evals)
	}
	// Sanity: the free-space terminal velocity from Stokes drag is
	// F/(6πμR); the propeller's stirring perturbs it.
	fmt.Printf("\nfree-space terminal velocity F/(6πμR) = %+.5f for comparison\n",
		gravityF/(6*math.Pi*mu*sphereR))
	fmt.Println("Each GMRES mat-vec above is one FMM interaction evaluation —")
	fmt.Println("tens per time step, exactly the paper's application loop.")
}

// spherePoints places n points on a Fibonacci sphere around c.
func spherePoints(n int, c [3]float64, r float64) []float64 {
	pts := make([]float64, 0, 3*n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		rad := math.Sqrt(1 - z*z)
		th := golden * float64(i)
		pts = append(pts,
			c[0]+r*rad*math.Cos(th),
			c[1]+r*rad*math.Sin(th),
			c[2]+r*z,
		)
	}
	return pts
}

// propellerPoints samples a three-blade propeller in the z=-0.4 plane.
func propellerPoints(n int) []float64 {
	pts := make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		blade := i % 3
		t := float64(i/3) / float64(n/3)
		base := 2 * math.Pi * float64(blade) / 3
		twist := 0.9 * t
		rad := 0.08 + 0.5*t
		pts = append(pts,
			rad*math.Cos(base+twist),
			rad*math.Sin(base+twist),
			-0.4+0.02*math.Sin(8*t),
		)
	}
	return pts
}

func rotateZ(pts []float64, angle float64) []float64 {
	c, s := math.Cos(angle), math.Sin(angle)
	out := make([]float64, len(pts))
	for i := 0; i+2 < len(pts); i += 3 {
		out[i] = c*pts[i] - s*pts[i+1]
		out[i+1] = s*pts[i] + c*pts[i+1]
		out[i+2] = pts[i+2]
	}
	return out
}

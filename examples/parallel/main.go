// Parallel scalability demo: the paper's Section 3 algorithm on
// simulated MPI ranks. Runs a fixed-size problem on 1..16 ranks and
// prints the virtual wall-clock speedup, the communication share and the
// load-balance ratio — a miniature of Table 4.1.
package main

import (
	"fmt"
	"log"
	"time"

	kifmm "repro"
)

func main() {
	const n = 16000
	patches := kifmm.SpherePatches(3, n, 8, 0.1)
	den := kifmm.RandomDensities(4, n, 1)

	fmt.Printf("fixed-size scalability, N=%d, Laplace kernel\n\n", n)
	fmt.Printf("%6s %12s %10s %10s %8s %8s\n", "P", "T(P)", "speedup", "comm", "ratio", "eff")
	var t1 time.Duration
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := kifmm.EvaluateParallel(patches, den, p, kifmm.ParallelOptions{
			Options: kifmm.Options{Kernel: kifmm.Laplace(), Degree: 6, MaxPoints: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		tp := res.MaxTotal()
		if p == 1 {
			t1 = tp
		}
		var comm time.Duration
		for _, s := range res.Ranks {
			comm += s.Comm
		}
		comm /= time.Duration(p)
		speedup := float64(t1) / float64(tp)
		fmt.Printf("%6d %12v %10.2f %10v %8.2f %8.2f\n",
			p, tp.Round(time.Microsecond), speedup,
			comm.Round(time.Microsecond), res.Ratio(), speedup/float64(p))
	}
	fmt.Println("\nT(P) is the slowest rank's virtual time (measured compute +")
	fmt.Println("modeled Quadrics-class communication), the same metric as the")
	fmt.Println("paper's wall-clock tables.")
}

// Parallel scalability demo, in two parts. First the paper's Section 3
// algorithm on simulated MPI ranks: a fixed-size problem on 1..16 ranks
// with virtual wall-clock speedup, communication share and load-balance
// ratio — a miniature of Table 4.1. Then the same decomposition run for
// real on this machine: internal/exec fans the per-box work of every
// FMM pass over a goroutine pool, so the speedup column is measured
// wall time, not a network model.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	kifmm "repro"
)

func main() {
	// ctx-first: Ctrl-C aborts the in-flight shared-memory evaluation
	// within one pass (the simulated-MPI part is driven by the rank
	// scheduler and finishes its current run).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const n = 16000
	patches := kifmm.SpherePatches(3, n, 8, 0.1)
	den := kifmm.RandomDensities(4, n, 1)

	fmt.Printf("fixed-size scalability, N=%d, Laplace kernel\n\n", n)
	fmt.Println("== simulated MPI ranks (virtual time, Quadrics-class interconnect)")
	fmt.Printf("%6s %12s %10s %10s %8s %8s\n", "P", "T(P)", "speedup", "comm", "ratio", "eff")
	var t1 time.Duration
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := kifmm.EvaluateParallel(patches, den, p, kifmm.ParallelOptions{
			Options: kifmm.Options{Kernel: kifmm.Laplace(), Degree: 6, MaxPoints: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		tp := res.MaxTotal()
		if p == 1 {
			t1 = tp
		}
		var comm time.Duration
		for _, s := range res.Ranks {
			comm += s.Comm
		}
		comm /= time.Duration(p)
		speedup := float64(t1) / float64(tp)
		fmt.Printf("%6d %12v %10.2f %10v %8.2f %8.2f\n",
			p, tp.Round(time.Microsecond), speedup,
			comm.Round(time.Microsecond), res.Ratio(), speedup/float64(p))
	}
	fmt.Println("\nT(P) is the slowest rank's virtual time (measured compute +")
	fmt.Println("modeled Quadrics-class communication), the same metric as the")
	fmt.Println("paper's wall-clock tables.")

	pts := kifmm.FlattenPatches(patches)
	fmt.Printf("\n== shared-memory executor (real wall clock, GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %12s %10s %8s\n", "workers", "T(wall)", "speedup", "eff")
	var w1 time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		// A dedicated idle pool per width keeps the sweep honest: the
		// elastic grant equals w exactly, even beyond the core count.
		ev, err := kifmm.NewEvaluatorCtx(ctx, pts, pts, kifmm.Options{
			Kernel: kifmm.Laplace(), Degree: 6, MaxPoints: 60, Workers: w, Pool: kifmm.NewPool(w),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ev.EvaluateCtx(ctx, den); err != nil { // warm the operator caches
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := ev.EvaluateCtx(ctx, den); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)
		if w == 1 {
			w1 = wall
		}
		speedup := float64(w1) / float64(wall)
		fmt.Printf("%8d %12v %10.2f %8.2f\n",
			w, wall.Round(time.Microsecond), speedup, speedup/float64(w))
	}
	fmt.Println("\nBoth tables exploit the same structure — every FMM pass is")
	fmt.Println("independent per-box work between level barriers; the first models")
	fmt.Println("it across a network, the second runs it on this machine's cores.")
	fmt.Println("(Speedups above need GOMAXPROCS > 1; results are bitwise")
	fmt.Println("identical for every worker count.)")
}

// Boundary integral equation demo: the capacitance of a sphere, solved
// exactly the way the paper's applications use the FMM — a first-kind
// single-layer integral equation discretized by collocation, solved with
// GMRES where every mat-vec is one FMM interaction evaluation
// ("matrix vector multiplication within a Krylov method", paper §3).
//
// For the unit-radius conductor held at potential 1, the single-layer
// density is σ = 1/a, the total charge Q = 4πa (Gaussian units with the
// 1/(4πr) kernel), and the exterior potential is a/r — all recovered
// below and compared against the analytic values.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"

	kifmm "repro"
)

func main() {
	// ctx-first end to end: Ctrl-C mid-solve aborts the in-flight FMM
	// evaluation within one pass and GMRES returns a typed
	// kifmm.ErrCanceled instead of finishing its iterations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const (
		n = 6000 // collocation points on the sphere
		a = 1.0  // sphere radius
	)
	pts := fibonacciSphere(n, a)
	w := 4 * math.Pi * a * a / float64(n) // equal-area quadrature weight
	// Local correction for the weakly singular self-patch: the integral
	// of 1/(4πr) over a flat disc of the patch area equals ρ/2.
	selfTerm := math.Sqrt(w/math.Pi) / 2

	ev, err := kifmm.NewEvaluatorCtx(ctx, pts, pts, kifmm.Options{
		Kernel: kifmm.Laplace(), Degree: 6, MaxPoints: 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ctx-aware operator returns errors instead of aborting the
	// process: an FMM failure (or a cancellation) flows out of
	// SolveGMRESCtx as a typed error.
	matvecs := 0
	apply := func(ctx context.Context, dst, x []float64) error {
		// (S σ)(x_i) = Σ_j G(x_i, x_j) σ_j w_j + self correction.
		den := make([]float64, n)
		for i := range den {
			den[i] = x[i] * w
		}
		pot, err := ev.EvaluateCtx(ctx, den)
		if err != nil {
			return err
		}
		for i := range dst {
			dst[i] = pot[i] + selfTerm*x[i]
		}
		matvecs++
		return nil
	}

	// Dirichlet data: unit potential on the conductor.
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	sigma := make([]float64, n)
	res, err := kifmm.SolveGMRESCtx(ctx, apply, b, sigma, kifmm.SolverOptions{Tol: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMRES: converged=%v in %d FMM evaluations, residual %.2e\n",
		res.Converged, res.Iterations, res.Residual)

	// Total charge vs the analytic capacitance Q = 4πa.
	q := 0.0
	for _, s := range sigma {
		q += s * w
	}
	fmt.Printf("total charge Q = %.4f   (analytic 4πa = %.4f, error %.2e)\n",
		q, 4*math.Pi*a, math.Abs(q-4*math.Pi*a)/(4*math.Pi*a))

	// Exterior potential at a few radii vs a/r.
	den := make([]float64, n)
	for i := range den {
		den[i] = sigma[i] * w
	}
	fmt.Println("\n  r      u(r)      a/r      rel.err")
	for _, r := range []float64{1.5, 2, 4, 8} {
		trg := []float64{r, 0, 0}
		u, err := kifmm.Direct(kifmm.Laplace(), trg, pts, den)
		if err != nil {
			log.Fatal(err)
		}
		want := a / r
		fmt.Printf("%4.1f   %.5f   %.5f   %.2e\n", r, u[0], want, math.Abs(u[0]-want)/want)
	}
	fmt.Printf("\n%d FMM interaction evaluations total — the paper's inner loop.\n", matvecs)
}

func fibonacciSphere(n int, a float64) []float64 {
	pts := make([]float64, 0, 3*n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - z*z)
		th := golden * float64(i)
		pts = append(pts, a*r*math.Cos(th), a*r*math.Sin(th), a*z)
	}
	return pts
}

package client

import (
	"encoding/json"
	"io"
	"mime"
	"net/http"

	"repro/internal/service"
	"repro/internal/wire"
)

// Binary request/response bodies (application/x-kifmm-frame), mirror
// images of the server's layouts in internal/service/wirehttp.go. Bulk
// []float64 arrays cross as raw little-endian IEEE 754 words — no JSON
// on the bulk path, every bit pattern (NaN payloads, infinities,
// signed zeros) preserved exactly — while the small control headers
// ride through as length-prefixed JSON blobs the caller marshals
// separately.

// encodePlanFrame assembles a plan-registration request body: the
// marshaled PlanRequest header (sans src/trg) plus the coordinate
// arrays.
func encodePlanFrame(hdr []byte, src, trg []float64) []byte {
	var w wire.Writer
	w.Grow(4 + 4 + len(hdr) + 16 + 8*(len(src)+len(trg)))
	w.U32(wire.FrameMagic)
	w.Raw(hdr)
	w.F64s(src)
	w.F64s(trg)
	return w.Bytes()
}

// encodeOneShotFrame assembles a one-shot evaluation request body:
// the plan frame plus the density vector.
func encodeOneShotFrame(hdr []byte, src, trg, den []float64) []byte {
	var w wire.Writer
	w.Grow(4 + 4 + len(hdr) + 24 + 8*(len(src)+len(trg)+len(den)))
	w.U32(wire.FrameMagic)
	w.Raw(hdr)
	w.F64s(src)
	w.F64s(trg)
	w.F64s(den)
	return w.Bytes()
}

// encodeEvalFrame assembles an evaluate request body.
func encodeEvalFrame(den []float64) []byte {
	var w wire.Writer
	w.Grow(4 + 8 + 8*len(den))
	w.U32(wire.FrameMagic)
	w.F64s(den)
	return w.Bytes()
}

// encodeEvalBatchFrame assembles an evaluate_batch request body.
func encodeEvalBatchFrame(dens [][]float64) []byte {
	total := 0
	for _, d := range dens {
		total += 8 + 8*len(d)
	}
	var w wire.Writer
	w.Grow(4 + 4 + total)
	w.U32(wire.FrameMagic)
	w.U32(uint32(len(dens)))
	for _, d := range dens {
		w.F64s(d)
	}
	return w.Bytes()
}

// encodeUploadChunkFrame assembles one upload-chunk body: the word
// offset this chunk starts at plus its words.
func encodeUploadChunkFrame(off uint64, chunk []float64) []byte {
	var w wire.Writer
	w.Grow(4 + 8 + 8 + 8*len(chunk))
	w.U32(wire.FrameMagic)
	w.U64(off)
	w.F64s(chunk)
	return w.Bytes()
}

// splitEvalFrame parses an evaluate response body into the opaque JSON
// meta blob (plan_id, stats, trace) and the potentials.
func splitEvalFrame(p []byte) (meta []byte, pot []float64, err error) {
	r := wire.NewReader(p)
	if r.U32() != wire.FrameMagic || r.Err() != nil {
		return nil, nil, errBadFrame()
	}
	meta = r.Raw()
	pot = r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, nil, errBadFrame()
	}
	return meta, pot, nil
}

// splitEvalBatchFrame parses an evaluate_batch response body.
func splitEvalBatchFrame(p []byte) (meta []byte, pots [][]float64, err error) {
	r := wire.NewReader(p)
	if r.U32() != wire.FrameMagic || r.Err() != nil {
		return nil, nil, errBadFrame()
	}
	meta = r.Raw()
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n > r.Remaining()/8 {
		return nil, nil, errBadFrame()
	}
	pots = make([][]float64, n)
	for i := range pots {
		pots[i] = r.F64s()
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, nil, errBadFrame()
	}
	return meta, pots, nil
}

func errBadFrame() error {
	return &decodeError{err: wire.ErrMalformed}
}

// isFrameResponse reports whether the server answered in the binary
// frame encoding (vs. the JSON default of older servers).
func isFrameResponse(resp *http.Response) bool {
	mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	return err == nil && mt == frameContentType
}

// readFrameResponse slurps a frame response body, bounded by the wire
// format's own frame cap.
func readFrameResponse(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, wire.MaxFrameBytes))
}

// decodeEvalResponse decodes an evaluate response in whichever
// encoding the server chose: the negotiation is transparent to
// callers, who always receive a filled EvaluateResponse.
func decodeEvalResponse(resp *http.Response, out *service.EvaluateResponse) error {
	if !isFrameResponse(resp) {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	raw, err := readFrameResponse(resp)
	if err != nil {
		return err
	}
	meta, pot, err := splitEvalFrame(raw)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(meta, out); err != nil {
		return err
	}
	out.Potentials = pot
	return nil
}

// decodeEvalBatchResponse is decodeEvalResponse for batch results.
func decodeEvalBatchResponse(resp *http.Response, out *service.EvaluateBatchResponse) error {
	if !isFrameResponse(resp) {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	raw, err := readFrameResponse(resp)
	if err != nil {
		return err
	}
	meta, pots, err := splitEvalBatchFrame(raw)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(meta, out); err != nil {
		return err
	}
	out.Potentials = pots
	return nil
}

// frameContentType re-exports the negotiated media type for request
// headers.
const frameContentType = service.ContentTypeFrame

// Package client is a thin Go client for the kifmm evaluation service
// (cmd/kifmm-serve): register a geometry once, then stream density
// vectors against the cached plan.
//
//	c := client.New("http://localhost:8080")
//	plan, _ := c.RegisterPlan(ctx, client.PlanRequest{
//		Src:    points,
//		Kernel: client.KernelSpec{Name: "laplace"},
//	})
//	pot, _, _ := c.Evaluate(ctx, plan.ID, densities)
//
// Every method takes a context.Context, and the context reaches all the
// way into the server's FMM sweep: cancelling it (or its deadline
// passing) aborts the server-side evaluation within one pass, not just
// the local wait.
//
// Errors carry the kifmm taxonomy across the wire. A non-2xx response
// is returned as *APIError whose chain includes the typed kifmm error
// reconstructed from the server's machine-readable code, and transport
// cancellations are typed the same way — so
//
//	errors.Is(err, kifmm.ErrCanceled)        // and context.Canceled
//	errors.Is(err, kifmm.ErrPlanNotFound)
//	errors.Is(err, kifmm.ErrDeadlineExceeded) // and context.DeadlineExceeded
//
// hold identically whether the failure happened locally, in transit or
// on the server.
//
// Bulk arrays can cross the wire in the server's binary frame encoding
// (application/x-kifmm-frame) instead of JSON. Responses negotiate
// transparently: every evaluation request advertises the frame
// encoding in Accept, new servers answer with raw little-endian
// float64 words (bit-exact, including NaN payloads and infinities) and
// old servers keep answering JSON — callers never see the difference.
// Request bodies switch to frames with WithBinary. Geometries too
// large for one request stream through the chunked upload endpoints
// via UploadArray / RegisterPlanChunked.
//
// With WithRetry configured, evaluation POSTs carry a random
// Idempotency-Key header the server deduplicates, so a retried request
// whose first attempt actually ran replays the stored response instead
// of computing (and possibly double-counting) a second sweep.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	kifmm "repro"
	"repro/internal/errs"
	"repro/internal/obs"
	"repro/internal/service"
)

// Wire types, shared with the server.
type (
	// PlanRequest describes the geometry, kernel and options of a plan.
	PlanRequest = service.PlanRequest
	// KernelSpec names a kernel and its parameters.
	KernelSpec = service.KernelSpec
	// PlanInfo reports a registered plan.
	PlanInfo = service.PlanInfo
	// EvalStats is the per-stage timing breakdown of one evaluation.
	EvalStats = service.EvalStats
	// MetricsSnapshot mirrors the server's /debug/vars "kifmm" object.
	MetricsSnapshot = service.MetricsSnapshot
	// HealthResponse mirrors GET /healthz.
	HealthResponse = service.HealthResponse
	// TraceSpan is one node of an evaluation's span tree.
	TraceSpan = service.TraceSpan
	// RecentEvalsResponse mirrors GET /v1/evals/recent.
	RecentEvalsResponse = service.RecentEvalsResponse
	// UploadStatus reports a chunked upload's committed prefix.
	UploadStatus = service.UploadStatus
)

// APIError is a non-2xx server response: the status, the server's
// human-readable message and the machine-readable kifmm error code from
// the wire envelope. Its Unwrap exposes the reconstructed typed error,
// so errors.Is(err, kifmm.ErrPlanNotFound) and friends work without
// touching APIError directly.
type APIError struct {
	StatusCode int
	// Code is the machine-readable kifmm error code from the wire
	// envelope (kifmm.ErrorCode, e.g. kifmm.CodePlanNotFound).
	Code    kifmm.ErrorCode
	Message string

	// typed is the reconstructed taxonomy error (nil when the server
	// sent no recognizable code and the status maps to none).
	typed *errs.Error
}

// newAPIError reconstructs the typed error from the wire code, falling
// back on the HTTP status for old or non-kifmm servers that send no
// code.
func newAPIError(status int, code kifmm.ErrorCode, message string) *APIError {
	if code == "" {
		switch status {
		case http.StatusBadRequest:
			code = errs.CodeInvalidInput
		case http.StatusNotFound:
			code = errs.CodePlanNotFound
		case http.StatusRequestEntityTooLarge:
			code = errs.CodePlanTooLarge
		case service.StatusClientClosedRequest:
			code = errs.CodeCanceled
		case http.StatusGatewayTimeout:
			code = errs.CodeDeadlineExceeded
		case http.StatusInternalServerError:
			code = errs.CodeInternal
		case http.StatusServiceUnavailable:
			code = errs.CodeWorkerLost
		}
	}
	return &APIError{
		StatusCode: status,
		Code:       code,
		Message:    message,
		typed:      errs.FromCode(code, message),
	}
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Unwrap exposes the typed kifmm error to errors.Is/As.
func (e *APIError) Unwrap() error {
	if e.typed == nil {
		return nil
	}
	return e.typed
}

// Client talks to one kifmm-serve instance. It is safe for concurrent
// use.
type Client struct {
	base         string
	hc           *http.Client
	retry        *RetryPolicy
	binary       bool
	chunkWords   int
	chunkTimeout time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transport limits, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithBinary makes plan registrations and evaluations send their
// request bodies in the binary frame encoding instead of JSON: no
// float-to-decimal round trip on bulk arrays, every bit pattern
// preserved. Requires a server new enough to understand
// application/x-kifmm-frame (older ones answer 400). Responses
// negotiate independently of this option and need no opt-in.
func WithBinary() Option {
	return func(c *Client) { c.binary = true }
}

// WithChunkWords sets how many float64 words UploadArray ships per
// chunk (default 1<<20 words, 8 MiB).
func WithChunkWords(n int) Option {
	return func(c *Client) { c.chunkWords = n }
}

// WithChunkTimeout bounds each individual upload chunk request; a
// chunk that times out is retried from the server-reported committed
// offset rather than failing the whole transfer (default: bounded only
// by the caller's context).
func WithChunkTimeout(d time.Duration) Option {
	return func(c *Client) { c.chunkTimeout = d }
}

// New returns a client for the server at base (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{base: trimSlash(base), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// RegisterPlan registers (or resolves, if cached server-side) a plan.
// Registrations are content-addressed and therefore naturally
// idempotent, so under a retry policy they retry without needing an
// idempotency key.
func (c *Client) RegisterPlan(ctx context.Context, req PlanRequest) (PlanInfo, error) {
	var info PlanInfo
	body, ct, err := c.planBody(req)
	if err != nil {
		return info, err
	}
	attempt := func(ctx context.Context) error {
		return c.postRaw(ctx, "/v1/plans", body, ct, &info)
	}
	if c.retry != nil {
		err = c.withRetry(ctx, attempt)
	} else {
		err = attempt(ctx)
	}
	return info, err
}

// planBody assembles a plan-registration body in the configured
// request encoding: plain JSON, or a frame carrying the non-bulk
// fields as a JSON header and the coordinates as raw words.
func (c *Client) planBody(req PlanRequest) ([]byte, string, error) {
	if !c.binary {
		return c.encodeJSON(req)
	}
	src, trg := req.Src, req.Trg
	req.Src, req.Trg = nil, nil
	hdr, _, err := c.encodeJSON(req)
	if err != nil {
		return nil, "", err
	}
	return encodePlanFrame(hdr, src, trg), frameContentType, nil
}

// Evaluate computes potentials for den against a registered plan.
func (c *Client) Evaluate(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, error) {
	resp, err := c.evaluate(ctx, "/v1/plans/"+url.PathEscape(planID)+"/evaluate", den)
	if err != nil {
		return nil, EvalStats{}, err
	}
	return resp.Potentials, resp.Stats, nil
}

// EvaluateBatch computes potentials for many density vectors in one
// request and one server-side engine sweep; the server amortizes tree
// traversal and near-field kernel evaluations across the batch, so this
// is the fast path for multi-RHS workloads (e.g. lockstep Krylov
// solves).
func (c *Client) EvaluateBatch(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, error) {
	resp, err := c.evaluateBatch(ctx, "/v1/plans/"+url.PathEscape(planID)+"/evaluate_batch", dens)
	if err != nil {
		return nil, EvalStats{}, err
	}
	return resp.Potentials, resp.Stats, nil
}

// EvaluateTraced is Evaluate plus the server-side span tree of the
// sweep (?trace=1): wall-clock spans for the permute, upward, downward
// (with per-level children) and leaf phases, with rhs/granted-lane
// attributes. Use it to see where a slow evaluation spent its time
// without shell access to the server.
func (c *Client) EvaluateTraced(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, *TraceSpan, error) {
	resp, err := c.evaluate(ctx, "/v1/plans/"+url.PathEscape(planID)+"/evaluate?trace=1", den)
	if err != nil {
		return nil, EvalStats{}, nil, err
	}
	return resp.Potentials, resp.Stats, resp.Trace, nil
}

// EvaluateBatchTraced is EvaluateBatch plus the sweep's span tree.
func (c *Client) EvaluateBatchTraced(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, *TraceSpan, error) {
	resp, err := c.evaluateBatch(ctx, "/v1/plans/"+url.PathEscape(planID)+"/evaluate_batch?trace=1", dens)
	if err != nil {
		return nil, EvalStats{}, nil, err
	}
	return resp.Potentials, resp.Stats, resp.Trace, nil
}

// EvaluateOnce registers the plan and evaluates in one round trip; the
// plan stays cached server-side. It returns the plan id for follow-up
// Evaluate calls.
func (c *Client) EvaluateOnce(ctx context.Context, req PlanRequest, den []float64) (string, []float64, EvalStats, error) {
	body, ct, err := c.oneShotBody(service.OneShotRequest{PlanRequest: req, Densities: den})
	if err != nil {
		return "", nil, EvalStats{}, err
	}
	var resp service.EvaluateResponse
	if err := c.evalPost(ctx, "/v1/evaluate", body, ct, func(r *http.Response) error {
		return decodeEvalResponse(r, &resp)
	}); err != nil {
		return "", nil, EvalStats{}, err
	}
	return resp.PlanID, resp.Potentials, resp.Stats, nil
}

// oneShotBody is planBody for the one-shot endpoint (densities join
// the bulk arrays).
func (c *Client) oneShotBody(req service.OneShotRequest) ([]byte, string, error) {
	if !c.binary {
		return c.encodeJSON(req)
	}
	src, trg, den := req.Src, req.Trg, req.Densities
	req.Src, req.Trg, req.Densities = nil, nil, nil
	hdr, _, err := c.encodeJSON(req)
	if err != nil {
		return nil, "", err
	}
	return encodeOneShotFrame(hdr, src, trg, den), frameContentType, nil
}

// evaluate runs one evaluation POST and decodes the response in
// whichever encoding the server chose.
func (c *Client) evaluate(ctx context.Context, path string, den []float64) (service.EvaluateResponse, error) {
	var resp service.EvaluateResponse
	var body []byte
	ct := frameContentType
	if c.binary {
		body = encodeEvalFrame(den)
	} else {
		var err error
		if body, ct, err = c.encodeJSON(service.EvaluateRequest{Densities: den}); err != nil {
			return resp, err
		}
	}
	err := c.evalPost(ctx, path, body, ct, func(r *http.Response) error {
		return decodeEvalResponse(r, &resp)
	})
	return resp, err
}

// evaluateBatch is evaluate for the batch endpoint.
func (c *Client) evaluateBatch(ctx context.Context, path string, dens [][]float64) (service.EvaluateBatchResponse, error) {
	var resp service.EvaluateBatchResponse
	var body []byte
	ct := frameContentType
	if c.binary {
		body = encodeEvalBatchFrame(dens)
	} else {
		var err error
		if body, ct, err = c.encodeJSON(service.EvaluateBatchRequest{Densities: dens}); err != nil {
			return resp, err
		}
	}
	err := c.evalPost(ctx, path, body, ct, func(r *http.Response) error {
		return decodeEvalBatchResponse(r, &resp)
	})
	return resp, err
}

// evalPost sends one evaluation request, advertising the frame
// response encoding, retrying under the client's policy with a shared
// Idempotency-Key so a retry whose predecessor actually ran replays
// the stored result instead of re-evaluating.
func (c *Client) evalPost(ctx context.Context, path string, body []byte, contentType string, decode func(*http.Response) error) error {
	key := ""
	if c.retry != nil {
		key = newIdempotencyKey()
	}
	attempt := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("Accept", frameContentType+", application/json")
		req.Header.Set("Traceparent", traceparent(ctx))
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		return c.doDecode(req, decode)
	}
	if c.retry == nil {
		return attempt(ctx)
	}
	return c.withRetry(ctx, attempt)
}

// newIdempotencyKey returns a fresh random key, or "" if the system
// randomness source fails (the request then proceeds without
// deduplication rather than failing outright).
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// UploadArray streams data into a server-side chunked upload and
// returns the upload id to reference as src_upload/trg_upload in a
// plan registration. Chunks are bounded (WithChunkWords), individually
// timed out (WithChunkTimeout), and on a retryable failure the
// transfer resumes from the server-reported committed prefix — a chunk
// whose response was lost in flight is never double-counted because
// appends are idempotent on the committed range.
func (c *Client) UploadArray(ctx context.Context, data []float64) (string, error) {
	var st UploadStatus
	if err := c.post(ctx, "/v1/uploads", service.UploadCreateRequest{Words: len(data)}, &st); err != nil {
		return "", err
	}
	chunkW := c.chunkWords
	if chunkW <= 0 {
		chunkW = defaultChunkWords
	}
	tries := 1
	if c.retry != nil {
		tries = c.retry.MaxAttempts
	}
	fails := 0
	for off := 0; off < len(data); {
		end := off + chunkW
		if end > len(data) {
			end = len(data)
		}
		next, err := c.uploadChunk(ctx, st.ID, off, data[off:end])
		if err == nil {
			fails, off = 0, next
			continue
		}
		fails++
		if fails >= tries || !retryable(err) || ctx.Err() != nil {
			return "", err
		}
		// The chunk may have landed even though its response did not
		// (a timeout mid-flight): resume from wherever the server says
		// the committed prefix ends.
		cur, gerr := c.GetUpload(ctx, st.ID)
		if gerr != nil {
			return "", err
		}
		off = cur.ReceivedWords
	}
	return st.ID, nil
}

// defaultChunkWords is UploadArray's chunk size: 1Mi float64 words,
// 8 MiB on the wire.
const defaultChunkWords = 1 << 20

// uploadChunk sends one chunk under the per-chunk timeout and returns
// the server's committed word count.
func (c *Client) uploadChunk(ctx context.Context, id string, off int, chunk []float64) (int, error) {
	cctx, cancel := ctx, context.CancelFunc(func() {})
	if c.chunkTimeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, c.chunkTimeout)
	}
	defer cancel()
	var st UploadStatus
	body := encodeUploadChunkFrame(uint64(off), chunk)
	if err := c.postRaw(cctx, "/v1/uploads/"+url.PathEscape(id), body, frameContentType, &st); err != nil {
		return 0, err
	}
	return st.ReceivedWords, nil
}

// GetUpload reports an in-flight upload's committed prefix (the resume
// offset after a disconnect).
func (c *Client) GetUpload(ctx context.Context, id string) (UploadStatus, error) {
	var st UploadStatus
	err := c.get(ctx, "/v1/uploads/"+url.PathEscape(id), &st)
	return st, err
}

// RegisterPlanChunked is RegisterPlan for geometries too large (or too
// precious) to ship in one request body: the coordinate arrays stream
// through the chunked upload endpoints first, and the plan then
// registers referencing the uploads. The arrays cross as raw binary
// words regardless of WithBinary.
func (c *Client) RegisterPlanChunked(ctx context.Context, req PlanRequest) (PlanInfo, error) {
	if len(req.Src) > 0 {
		id, err := c.UploadArray(ctx, req.Src)
		if err != nil {
			return PlanInfo{}, err
		}
		req.Src, req.SrcUpload = nil, id
	}
	if len(req.Trg) > 0 {
		id, err := c.UploadArray(ctx, req.Trg)
		if err != nil {
			return PlanInfo{}, err
		}
		req.Trg, req.TrgUpload = nil, id
	}
	return c.RegisterPlan(ctx, req)
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// Metrics fetches the "kifmm" object from /debug/vars.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var vars struct {
		KIFMM MetricsSnapshot `json:"kifmm"`
	}
	if err := c.get(ctx, "/debug/vars", &vars); err != nil {
		return MetricsSnapshot{}, err
	}
	return vars.KIFMM, nil
}

// RecentEvals fetches the span trees of the server's recent
// evaluations, newest first. n caps how many are returned (0 = all the
// server retains).
func (c *Client) RecentEvals(ctx context.Context, n int) (RecentEvalsResponse, error) {
	var resp RecentEvalsResponse
	path := "/v1/evals/recent"
	if n > 0 {
		path += "?n=" + url.QueryEscape(fmt.Sprint(n))
	}
	err := c.get(ctx, path, &resp)
	return resp, err
}

// RecentEvalsByTrace fetches only the evaluations that ran under the
// given W3C trace id (?trace_id= server-side filter), newest first; n
// caps how many (0 = all). Pair it with WithTraceparent to retrieve
// exactly the evaluations a distributed caller initiated.
func (c *Client) RecentEvalsByTrace(ctx context.Context, traceID string, n int) (RecentEvalsResponse, error) {
	var resp RecentEvalsResponse
	path := "/v1/evals/recent?trace_id=" + url.QueryEscape(traceID)
	if n > 0 {
		path += "&n=" + url.QueryEscape(fmt.Sprint(n))
	}
	err := c.get(ctx, path, &resp)
	return resp, err
}

// traceparentKey stashes an explicit traceparent header in a context.
type traceparentKey struct{}

// WithTraceparent returns a context that makes every request carry the
// given W3C traceparent header ("00-<trace-id>-<span-id>-<flags>"), so
// the server adopts the caller's trace id and records the caller's span
// as the evaluate span's parent. Without it the client generates a
// fresh trace context per request; an invalid header falls back the
// same way (the server would reject it anyway, never the request).
func WithTraceparent(ctx context.Context, header string) context.Context {
	return context.WithValue(ctx, traceparentKey{}, header)
}

// traceparent resolves the header to send: the context's explicit (and
// valid) traceparent, or a freshly generated trace context.
func traceparent(ctx context.Context) string {
	if h, ok := ctx.Value(traceparentKey{}).(string); ok {
		if _, err := obs.ParseTraceparent(h); err == nil {
			return h
		}
	}
	return obs.NewTraceContext().Traceparent()
}

// encodeJSON marshals a JSON request body alongside its content type.
func (c *Client) encodeJSON(v any) ([]byte, string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, "", fmt.Errorf("client: encoding request: %w", err)
	}
	return raw, "application/json", nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, ct, err := c.encodeJSON(body)
	if err != nil {
		return err
	}
	return c.postRaw(ctx, path, raw, ct, out)
}

// postRaw sends pre-encoded bytes as one POST.
func (c *Client) postRaw(ctx context.Context, path string, body []byte, contentType string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Traceparent", traceparent(ctx))
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	if c.retry != nil {
		return c.getRetry(ctx, path, out)
	}
	return c.getOnce(ctx, path, out)
}

func (c *Client) getOnce(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Traceparent", traceparent(ctx))
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	if out == nil {
		return c.doDecode(req, nil)
	}
	return c.doDecode(req, func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// doDecode runs one request, mapping transport failures and non-2xx
// statuses to typed errors, and hands a successful response to decode.
// A decode failure is returned as *decodeError — the server already
// answered, so the retry loop treats the mismatch as final.
func (c *Client) doDecode(req *http.Request, decode func(*http.Response) error) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		// A local cancellation or deadline surfaces as the same typed
		// error a server-side one would, so callers branch one way.
		return errs.FromContext(err)
	}
	// Drain to EOF before closing so the keep-alive connection returns
	// to the pool instead of being discarded (json.Decoder stops at the
	// end of the top-level value, short of the terminal chunk).
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// Errors are always JSON, whatever encoding was negotiated.
		var envelope struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		msg, code := "", errs.Code("")
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
			if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
				msg, code = envelope.Error, errs.Code(envelope.Code)
			} else {
				msg = string(raw)
			}
		}
		return newAPIError(resp.StatusCode, code, msg)
	}
	if decode == nil {
		return nil
	}
	if err := decode(resp); err != nil {
		var dec *decodeError
		if errors.As(err, &dec) {
			return err
		}
		return &decodeError{err: err}
	}
	return nil
}

// Package client is a thin Go client for the kifmm evaluation service
// (cmd/kifmm-serve): register a geometry once, then stream density
// vectors against the cached plan.
//
//	c := client.New("http://localhost:8080")
//	plan, _ := c.RegisterPlan(ctx, client.PlanRequest{
//		Src:    points,
//		Kernel: client.KernelSpec{Name: "laplace"},
//	})
//	pot, _, _ := c.Evaluate(ctx, plan.ID, densities)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/service"
)

// Wire types, shared with the server.
type (
	// PlanRequest describes the geometry, kernel and options of a plan.
	PlanRequest = service.PlanRequest
	// KernelSpec names a kernel and its parameters.
	KernelSpec = service.KernelSpec
	// PlanInfo reports a registered plan.
	PlanInfo = service.PlanInfo
	// EvalStats is the per-stage timing breakdown of one evaluation.
	EvalStats = service.EvalStats
	// MetricsSnapshot mirrors the server's /debug/vars "kifmm" object.
	MetricsSnapshot = service.MetricsSnapshot
	// HealthResponse mirrors GET /healthz.
	HealthResponse = service.HealthResponse
)

// APIError is a non-2xx server response.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Client talks to one kifmm-serve instance. It is safe for concurrent
// use.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transport limits, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{base: trimSlash(base), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// RegisterPlan registers (or resolves, if cached server-side) a plan.
func (c *Client) RegisterPlan(ctx context.Context, req PlanRequest) (PlanInfo, error) {
	var info PlanInfo
	err := c.post(ctx, "/v1/plans", req, &info)
	return info, err
}

// Evaluate computes potentials for den against a registered plan.
func (c *Client) Evaluate(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, error) {
	var resp service.EvaluateResponse
	path := "/v1/plans/" + url.PathEscape(planID) + "/evaluate"
	if err := c.post(ctx, path, service.EvaluateRequest{Densities: den}, &resp); err != nil {
		return nil, EvalStats{}, err
	}
	return resp.Potentials, resp.Stats, nil
}

// EvaluateBatch computes potentials for many density vectors in one
// request and one server-side engine sweep; the server amortizes tree
// traversal and near-field kernel evaluations across the batch, so this
// is the fast path for multi-RHS workloads (e.g. lockstep Krylov
// solves).
func (c *Client) EvaluateBatch(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, error) {
	var resp service.EvaluateBatchResponse
	path := "/v1/plans/" + url.PathEscape(planID) + "/evaluate_batch"
	if err := c.post(ctx, path, service.EvaluateBatchRequest{Densities: dens}, &resp); err != nil {
		return nil, EvalStats{}, err
	}
	return resp.Potentials, resp.Stats, nil
}

// EvaluateOnce registers the plan and evaluates in one round trip; the
// plan stays cached server-side. It returns the plan id for follow-up
// Evaluate calls.
func (c *Client) EvaluateOnce(ctx context.Context, req PlanRequest, den []float64) (string, []float64, EvalStats, error) {
	var resp service.EvaluateResponse
	oneShot := service.OneShotRequest{PlanRequest: req, Densities: den}
	if err := c.post(ctx, "/v1/evaluate", oneShot, &resp); err != nil {
		return "", nil, EvalStats{}, err
	}
	return resp.PlanID, resp.Potentials, resp.Stats, nil
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// Metrics fetches the "kifmm" object from /debug/vars.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var vars struct {
		KIFMM MetricsSnapshot `json:"kifmm"`
	}
	if err := c.get(ctx, "/debug/vars", &vars); err != nil {
		return MetricsSnapshot{}, err
	}
	return vars.KIFMM, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	// Drain to EOF before closing so the keep-alive connection returns
	// to the pool instead of being discarded (json.Decoder stops at the
	// end of the top-level value, short of the terminal chunk).
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error string `json:"error"`
		}
		msg := ""
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
			if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
				msg = envelope.Error
			} else {
				msg = string(raw)
			}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

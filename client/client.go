// Package client is a thin Go client for the kifmm evaluation service
// (cmd/kifmm-serve): register a geometry once, then stream density
// vectors against the cached plan.
//
//	c := client.New("http://localhost:8080")
//	plan, _ := c.RegisterPlan(ctx, client.PlanRequest{
//		Src:    points,
//		Kernel: client.KernelSpec{Name: "laplace"},
//	})
//	pot, _, _ := c.Evaluate(ctx, plan.ID, densities)
//
// Every method takes a context.Context, and the context reaches all the
// way into the server's FMM sweep: cancelling it (or its deadline
// passing) aborts the server-side evaluation within one pass, not just
// the local wait.
//
// Errors carry the kifmm taxonomy across the wire. A non-2xx response
// is returned as *APIError whose chain includes the typed kifmm error
// reconstructed from the server's machine-readable code, and transport
// cancellations are typed the same way — so
//
//	errors.Is(err, kifmm.ErrCanceled)        // and context.Canceled
//	errors.Is(err, kifmm.ErrPlanNotFound)
//	errors.Is(err, kifmm.ErrDeadlineExceeded) // and context.DeadlineExceeded
//
// hold identically whether the failure happened locally, in transit or
// on the server.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	kifmm "repro"
	"repro/internal/errs"
	"repro/internal/obs"
	"repro/internal/service"
)

// Wire types, shared with the server.
type (
	// PlanRequest describes the geometry, kernel and options of a plan.
	PlanRequest = service.PlanRequest
	// KernelSpec names a kernel and its parameters.
	KernelSpec = service.KernelSpec
	// PlanInfo reports a registered plan.
	PlanInfo = service.PlanInfo
	// EvalStats is the per-stage timing breakdown of one evaluation.
	EvalStats = service.EvalStats
	// MetricsSnapshot mirrors the server's /debug/vars "kifmm" object.
	MetricsSnapshot = service.MetricsSnapshot
	// HealthResponse mirrors GET /healthz.
	HealthResponse = service.HealthResponse
	// TraceSpan is one node of an evaluation's span tree.
	TraceSpan = service.TraceSpan
	// RecentEvalsResponse mirrors GET /v1/evals/recent.
	RecentEvalsResponse = service.RecentEvalsResponse
)

// APIError is a non-2xx server response: the status, the server's
// human-readable message and the machine-readable kifmm error code from
// the wire envelope. Its Unwrap exposes the reconstructed typed error,
// so errors.Is(err, kifmm.ErrPlanNotFound) and friends work without
// touching APIError directly.
type APIError struct {
	StatusCode int
	// Code is the machine-readable kifmm error code from the wire
	// envelope (kifmm.ErrorCode, e.g. kifmm.CodePlanNotFound).
	Code    kifmm.ErrorCode
	Message string

	// typed is the reconstructed taxonomy error (nil when the server
	// sent no recognizable code and the status maps to none).
	typed *errs.Error
}

// newAPIError reconstructs the typed error from the wire code, falling
// back on the HTTP status for old or non-kifmm servers that send no
// code.
func newAPIError(status int, code kifmm.ErrorCode, message string) *APIError {
	if code == "" {
		switch status {
		case http.StatusBadRequest:
			code = errs.CodeInvalidInput
		case http.StatusNotFound:
			code = errs.CodePlanNotFound
		case http.StatusRequestEntityTooLarge:
			code = errs.CodePlanTooLarge
		case service.StatusClientClosedRequest:
			code = errs.CodeCanceled
		case http.StatusGatewayTimeout:
			code = errs.CodeDeadlineExceeded
		case http.StatusInternalServerError:
			code = errs.CodeInternal
		case http.StatusServiceUnavailable:
			code = errs.CodeWorkerLost
		}
	}
	return &APIError{
		StatusCode: status,
		Code:       code,
		Message:    message,
		typed:      errs.FromCode(code, message),
	}
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Unwrap exposes the typed kifmm error to errors.Is/As.
func (e *APIError) Unwrap() error {
	if e.typed == nil {
		return nil
	}
	return e.typed
}

// Client talks to one kifmm-serve instance. It is safe for concurrent
// use.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transport limits, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{base: trimSlash(base), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// RegisterPlan registers (or resolves, if cached server-side) a plan.
func (c *Client) RegisterPlan(ctx context.Context, req PlanRequest) (PlanInfo, error) {
	var info PlanInfo
	err := c.post(ctx, "/v1/plans", req, &info)
	return info, err
}

// Evaluate computes potentials for den against a registered plan.
func (c *Client) Evaluate(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, error) {
	var resp service.EvaluateResponse
	path := "/v1/plans/" + url.PathEscape(planID) + "/evaluate"
	if err := c.post(ctx, path, service.EvaluateRequest{Densities: den}, &resp); err != nil {
		return nil, EvalStats{}, err
	}
	return resp.Potentials, resp.Stats, nil
}

// EvaluateBatch computes potentials for many density vectors in one
// request and one server-side engine sweep; the server amortizes tree
// traversal and near-field kernel evaluations across the batch, so this
// is the fast path for multi-RHS workloads (e.g. lockstep Krylov
// solves).
func (c *Client) EvaluateBatch(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, error) {
	var resp service.EvaluateBatchResponse
	path := "/v1/plans/" + url.PathEscape(planID) + "/evaluate_batch"
	if err := c.post(ctx, path, service.EvaluateBatchRequest{Densities: dens}, &resp); err != nil {
		return nil, EvalStats{}, err
	}
	return resp.Potentials, resp.Stats, nil
}

// EvaluateTraced is Evaluate plus the server-side span tree of the
// sweep (?trace=1): wall-clock spans for the permute, upward, downward
// (with per-level children) and leaf phases, with rhs/granted-lane
// attributes. Use it to see where a slow evaluation spent its time
// without shell access to the server.
func (c *Client) EvaluateTraced(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, *TraceSpan, error) {
	var resp service.EvaluateResponse
	path := "/v1/plans/" + url.PathEscape(planID) + "/evaluate?trace=1"
	if err := c.post(ctx, path, service.EvaluateRequest{Densities: den}, &resp); err != nil {
		return nil, EvalStats{}, nil, err
	}
	return resp.Potentials, resp.Stats, resp.Trace, nil
}

// EvaluateBatchTraced is EvaluateBatch plus the sweep's span tree.
func (c *Client) EvaluateBatchTraced(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, *TraceSpan, error) {
	var resp service.EvaluateBatchResponse
	path := "/v1/plans/" + url.PathEscape(planID) + "/evaluate_batch?trace=1"
	if err := c.post(ctx, path, service.EvaluateBatchRequest{Densities: dens}, &resp); err != nil {
		return nil, EvalStats{}, nil, err
	}
	return resp.Potentials, resp.Stats, resp.Trace, nil
}

// EvaluateOnce registers the plan and evaluates in one round trip; the
// plan stays cached server-side. It returns the plan id for follow-up
// Evaluate calls.
func (c *Client) EvaluateOnce(ctx context.Context, req PlanRequest, den []float64) (string, []float64, EvalStats, error) {
	var resp service.EvaluateResponse
	oneShot := service.OneShotRequest{PlanRequest: req, Densities: den}
	if err := c.post(ctx, "/v1/evaluate", oneShot, &resp); err != nil {
		return "", nil, EvalStats{}, err
	}
	return resp.PlanID, resp.Potentials, resp.Stats, nil
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// Metrics fetches the "kifmm" object from /debug/vars.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var vars struct {
		KIFMM MetricsSnapshot `json:"kifmm"`
	}
	if err := c.get(ctx, "/debug/vars", &vars); err != nil {
		return MetricsSnapshot{}, err
	}
	return vars.KIFMM, nil
}

// RecentEvals fetches the span trees of the server's recent
// evaluations, newest first. n caps how many are returned (0 = all the
// server retains).
func (c *Client) RecentEvals(ctx context.Context, n int) (RecentEvalsResponse, error) {
	var resp RecentEvalsResponse
	path := "/v1/evals/recent"
	if n > 0 {
		path += "?n=" + url.QueryEscape(fmt.Sprint(n))
	}
	err := c.get(ctx, path, &resp)
	return resp, err
}

// RecentEvalsByTrace fetches only the evaluations that ran under the
// given W3C trace id (?trace_id= server-side filter), newest first; n
// caps how many (0 = all). Pair it with WithTraceparent to retrieve
// exactly the evaluations a distributed caller initiated.
func (c *Client) RecentEvalsByTrace(ctx context.Context, traceID string, n int) (RecentEvalsResponse, error) {
	var resp RecentEvalsResponse
	path := "/v1/evals/recent?trace_id=" + url.QueryEscape(traceID)
	if n > 0 {
		path += "&n=" + url.QueryEscape(fmt.Sprint(n))
	}
	err := c.get(ctx, path, &resp)
	return resp, err
}

// traceparentKey stashes an explicit traceparent header in a context.
type traceparentKey struct{}

// WithTraceparent returns a context that makes every request carry the
// given W3C traceparent header ("00-<trace-id>-<span-id>-<flags>"), so
// the server adopts the caller's trace id and records the caller's span
// as the evaluate span's parent. Without it the client generates a
// fresh trace context per request; an invalid header falls back the
// same way (the server would reject it anyway, never the request).
func WithTraceparent(ctx context.Context, header string) context.Context {
	return context.WithValue(ctx, traceparentKey{}, header)
}

// traceparent resolves the header to send: the context's explicit (and
// valid) traceparent, or a freshly generated trace context.
func traceparent(ctx context.Context) string {
	if h, ok := ctx.Value(traceparentKey{}).(string); ok {
		if _, err := obs.ParseTraceparent(h); err == nil {
			return h
		}
	}
	return obs.NewTraceContext().Traceparent()
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", traceparent(ctx))
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	if c.retry != nil {
		return c.getRetry(ctx, path, out)
	}
	return c.getOnce(ctx, path, out)
}

func (c *Client) getOnce(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Traceparent", traceparent(ctx))
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		// A local cancellation or deadline surfaces as the same typed
		// error a server-side one would, so callers branch one way.
		return errs.FromContext(err)
	}
	// Drain to EOF before closing so the keep-alive connection returns
	// to the pool instead of being discarded (json.Decoder stops at the
	// end of the top-level value, short of the terminal chunk).
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var envelope struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		msg, code := "", errs.Code("")
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
			if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
				msg, code = envelope.Error, errs.Code(envelope.Code)
			} else {
				msg = string(raw)
			}
		}
		return newAPIError(resp.StatusCode, code, msg)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

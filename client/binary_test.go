package client

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	kifmm "repro"
	"repro/internal/service"
)

// smallGeometry returns a deterministic plan request plus matching
// densities.
func smallGeometry(seed int64, patches, perPatch int) (PlanRequest, []float64) {
	pts := kifmm.FlattenPatches(kifmm.UniformPatches(seed, patches*perPatch))
	den := kifmm.RandomDensities(seed+1, len(pts)/3, 1)
	return PlanRequest{Src: pts, Kernel: KernelSpec{Name: "laplace"}, Degree: 4}, den
}

// TestDecodeFailureIsFinal: a 200 whose body does not decode is a
// deterministic mismatch — the retry loop must not burn its budget on
// it, and the error must expose the decode failure.
func TestDecodeFailureIsFinal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status": "ok", truncated`))
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetry(fastRetry()))
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("corrupt 200 body decoded without error")
	}
	var dec *decodeError
	if !errors.As(err, &dec) {
		t.Fatalf("corrupt 200 body returned %T (%v), want *decodeError", err, err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a decode failure, want 1", got)
	}
}

// TestBinaryNegotiationBitwise: a WithBinary client (frame request
// bodies) and a default client (JSON bodies) get bitwise-identical
// potentials from the same server, across register, evaluate, batch
// and one-shot.
func TestBinaryNegotiationBitwise(t *testing.T) {
	ts := httptest.NewServer(service.NewServer(service.New(service.Config{})))
	t.Cleanup(ts.Close)
	jsonC := New(ts.URL)
	binC := New(ts.URL, WithBinary())
	ctx := context.Background()

	req, den := smallGeometry(5, 10, 30)
	plan, err := binC.RegisterPlan(ctx, req)
	if err != nil {
		t.Fatalf("binary RegisterPlan: %v", err)
	}
	if again, err := jsonC.RegisterPlan(ctx, req); err != nil || again.ID != plan.ID {
		t.Fatalf("JSON re-registration got (%+v, %v), want cached %s — frame and JSON bodies must hash identically", again, err, plan.ID)
	}

	jsonPot, _, err := jsonC.Evaluate(ctx, plan.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	binPot, _, err := binC.Evaluate(ctx, plan.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	if len(binPot) != len(jsonPot) {
		t.Fatalf("lengths differ: %d vs %d", len(binPot), len(jsonPot))
	}
	for i := range binPot {
		if math.Float64bits(binPot[i]) != math.Float64bits(jsonPot[i]) {
			t.Fatalf("potentials[%d] differ between encodings", i)
		}
	}

	// Batch entries with identical densities must be bitwise identical
	// to each other; against the single evaluation only agreement to
	// rounding is guaranteed (the batch sweep may sum in another order).
	binPots, _, err := binC.EvaluateBatch(ctx, plan.ID, [][]float64{den, den})
	if err != nil {
		t.Fatal(err)
	}
	jsonPots, _, err := jsonC.EvaluateBatch(ctx, plan.ID, [][]float64{den, den})
	if err != nil {
		t.Fatal(err)
	}
	for q := range binPots {
		for i := range binPots[q] {
			if math.Float64bits(binPots[q][i]) != math.Float64bits(jsonPots[q][i]) {
				t.Fatalf("batch[%d][%d] differs between encodings", q, i)
			}
			if math.Float64bits(binPots[q][i]) != math.Float64bits(binPots[0][i]) {
				t.Fatalf("batch[%d][%d] differs across identical queries", q, i)
			}
			if d := math.Abs(binPots[q][i] - jsonPot[i]); d > 1e-9*(1+math.Abs(jsonPot[i])) {
				t.Fatalf("batch[%d][%d]=%g far from single evaluation %g", q, i, binPots[q][i], jsonPot[i])
			}
		}
	}

	id, oncePot, _, err := binC.EvaluateOnce(ctx, req, den)
	if err != nil {
		t.Fatal(err)
	}
	if id != plan.ID {
		t.Errorf("one-shot plan id %s, want %s", id, plan.ID)
	}
	for i := range oncePot {
		if math.Float64bits(oncePot[i]) != math.Float64bits(jsonPot[i]) {
			t.Fatalf("one-shot potentials[%d] differs", i)
		}
	}
}

// TestOldServerJSONFallback: a server that ignores the Accept header
// and always answers JSON (an older kifmm-serve) still works — the
// client branches on the response Content-Type, not on what it asked
// for.
func TestOldServerJSONFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept"), service.ContentTypeFrame) {
			t.Error("evaluation request did not advertise the frame encoding")
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(service.EvaluateResponse{
			PlanID: "p", Potentials: []float64{1, 2, 3},
		})
	}))
	t.Cleanup(ts.Close)

	pot, _, err := New(ts.URL).Evaluate(context.Background(), "p", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pot) != 3 || pot[0] != 1 {
		t.Fatalf("JSON fallback potentials = %v", pot)
	}
}

// TestEvaluateIdempotentRetryAcross503: the acceptance scenario — an
// evaluation POST hits one injected 503 worker_lost, the client
// retries carrying the same Idempotency-Key, and the caller sees the
// correct result computed exactly once.
func TestEvaluateIdempotentRetryAcross503(t *testing.T) {
	svc := service.New(service.Config{})
	inner := service.NewServer(svc)
	var keys []string
	var injected atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/evaluate") && r.Method == http.MethodPost {
			keys = append(keys, r.Header.Get("Idempotency-Key"))
			if injected.CompareAndSwap(false, true) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{"error": "cluster workers lost", "code": "worker_lost"})
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetry(fastRetry()))
	ctx := context.Background()
	req, den := smallGeometry(3, 8, 25)
	plan, err := c.RegisterPlan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	pot, _, err := c.Evaluate(ctx, plan.ID, den)
	if err != nil {
		t.Fatalf("Evaluate across injected 503: %v", err)
	}
	if len(pot) != plan.TrgCount*plan.TargetDim {
		t.Fatalf("potentials length %d, want %d", len(pot), plan.TrgCount*plan.TargetDim)
	}
	if len(keys) != 2 {
		t.Fatalf("server saw %d evaluation attempts, want 2", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("attempts carried keys %q and %q, want one identical non-empty key", keys[0], keys[1])
	}
	// The failed attempt never reached the service, and the retry hit
	// it once: the sweep ran exactly once.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Evaluations != 1 {
		t.Errorf("evaluations = %d, want exactly 1", m.Evaluations)
	}
	// Sanity: the result is the real one, matching a direct re-run.
	pot2, _, err := c.Evaluate(ctx, plan.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pot {
		if math.Float64bits(pot[i]) != math.Float64bits(pot2[i]) {
			t.Fatalf("retried result differs from a clean evaluation at %d", i)
		}
	}
}

// TestUploadArrayResumesAcrossFailure: a chunk POST that dies with a
// 503 mid-transfer is retried from the server-reported committed
// offset; the registered plan is identical to one registered inline.
func TestUploadArrayResumesAcrossFailure(t *testing.T) {
	svc := service.New(service.Config{})
	inner := service.NewServer(svc)
	var chunkPosts, failed atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.Contains(r.URL.Path, "/v1/uploads/") {
			// Fail the second chunk once.
			if chunkPosts.Add(1) == 2 && failed.CompareAndSwap(0, 1) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{"error": "transient", "code": "worker_lost"})
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetry(fastRetry()), WithChunkWords(90))
	ctx := context.Background()
	req, den := smallGeometry(7, 6, 20)

	plan, err := c.RegisterPlanChunked(ctx, req)
	if err != nil {
		t.Fatalf("RegisterPlanChunked across chunk failure: %v", err)
	}
	if chunkPosts.Load() < 3 {
		t.Errorf("chunk POSTs = %d, want at least 3 (split + one retried)", chunkPosts.Load())
	}
	direct, err := c.RegisterPlan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Cached || direct.ID != plan.ID {
		t.Fatalf("chunked plan %s != direct plan %s (cached=%v): upload bytes must match inline bytes exactly",
			plan.ID, direct.ID, direct.Cached)
	}
	if _, _, err := c.Evaluate(ctx, plan.ID, den); err != nil {
		t.Fatal(err)
	}
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	kifmm "repro"
)

// flakyServer fails the first `failures` GETs with status, then answers
// /healthz normally.
func flakyServer(t *testing.T, failures int64, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= failures {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": "transient", "code": "worker_lost"})
			return
		}
		json.NewEncoder(w).Encode(HealthResponse{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestRetryRecoversTransient503: a GET that hits a temporarily degraded
// server (503, e.g. cluster workers lost) succeeds once capacity is
// back, within the attempt budget.
func TestRetryRecoversTransient503(t *testing.T) {
	ts, hits := flakyServer(t, 2, http.StatusServiceUnavailable)
	c := New(ts.URL, WithRetry(fastRetry()))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after transient 503s: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

// TestRetryExhaustionKeepsTypedError: when every attempt fails, the
// final error is exactly the typed error a single-shot client returns.
func TestRetryExhaustionKeepsTypedError(t *testing.T) {
	ts, hits := flakyServer(t, 1000, http.StatusServiceUnavailable)
	c := New(ts.URL, WithRetry(fastRetry()))
	_, err := c.Health(context.Background())
	if !errors.Is(err, kifmm.ErrWorkerLost) {
		t.Fatalf("exhausted retries returned %v, want worker_lost", err)
	}
	var api *APIError
	if !errors.As(err, &api) || api.StatusCode != http.StatusServiceUnavailable || api.Code != kifmm.CodeWorkerLost {
		t.Errorf("APIError not preserved through retries: %+v", api)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

// TestRetrySkips4xx: client mistakes are final — no second attempt, and
// the typed error passes through untouched.
func TestRetrySkips4xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "nope", "code": "plan_not_found"})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetry(fastRetry()))
	_, err := c.RecentEvals(context.Background(), 1)
	if !errors.Is(err, kifmm.ErrPlanNotFound) {
		t.Fatalf("got %v, want plan_not_found", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a 404, want 1", got)
	}
}

// TestRetryHonorsCallerContext: the caller cancelling stops the loop
// mid-backoff with a typed cancellation.
func TestRetryHonorsCallerContext(t *testing.T) {
	ts, _ := flakyServer(t, 1000, http.StatusInternalServerError)
	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := c.Health(ctx)
	if !errors.Is(err, kifmm.ErrCanceled) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retry loop returned %v, want canceled", err)
	}
}

// TestRetryPerAttemptTimeout: a hung server trips the per-attempt
// deadline, the loop moves on, and a healthy attempt still wins.
func TestRetryPerAttemptTimeout(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		json.NewEncoder(w).Encode(HealthResponse{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })
	c := New(ts.URL, WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, PerAttemptTimeout: 100 * time.Millisecond,
	}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health with hung first attempt: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

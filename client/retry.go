package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/errs"
)

// RetryPolicy configures automatic retries for idempotent GET requests
// (Health, Metrics, RecentEvals...). POSTs are never retried — an
// evaluation that timed out may still be burning server CPU, and
// replaying it doubles the damage; GETs are safe to repeat by
// construction.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt. Zero leaves
	// attempts bounded only by the caller's context. A per-attempt
	// timeout does not abort the retry loop — only the caller's own
	// context does.
	PerAttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// WithRetry makes the client's idempotent GETs retry transient failures
// — transport errors and 5xx responses (a restarting server, a cluster
// whose workers momentarily vanished) — with exponential backoff and
// equal jitter. Non-transient typed errors (4xx: invalid input, plan
// not found...) pass through on the first attempt unchanged, and the
// final error of an exhausted retry budget is exactly what a
// single-shot client would have returned.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		pol := p.withDefaults()
		c.retry = &pol
	}
}

// retryableGet reports whether a GET failure is worth repeating:
// anything transport-level (the server may be back next attempt) and
// any 5xx status. 4xx statuses are the caller's mistake and stay
// final. Caller-context cancellation is handled by the retry loop, not
// here.
func retryableGet(err error) bool {
	var api *APIError
	if errors.As(err, &api) {
		return api.StatusCode >= http.StatusInternalServerError
	}
	return true
}

// getRetry runs one GET under the retry policy.
func (c *Client) getRetry(ctx context.Context, path string, out any) error {
	p := *c.retry
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Equal jitter: half deterministic, half uniform — spreads
			// synchronized clients without losing the backoff floor.
			d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return errs.FromContext(ctx.Err())
			}
			if delay *= 2; delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = c.getOnce(actx, path, out)
		cancel()
		if err == nil || !retryableGet(err) {
			return err
		}
		// A dead parent context means the failure is the caller's
		// cancellation, not the server's weather: stop immediately. A
		// per-attempt timeout leaves the parent alive and retries.
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/errs"
)

// RetryPolicy configures automatic retries for idempotent requests:
// GETs (Health, Metrics, RecentEvals...), plan registrations (safe to
// repeat — plans are content-addressed) and evaluation POSTs, which
// the client makes safe by attaching an Idempotency-Key header the
// server deduplicates: a retried evaluation whose first attempt
// actually ran replays the stored response instead of burning a second
// sweep. Without a policy POSTs are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 2s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt. Zero leaves
	// attempts bounded only by the caller's context. A per-attempt
	// timeout does not abort the retry loop — only the caller's own
	// context does.
	PerAttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// WithRetry makes the client's idempotent requests retry transient
// failures — transport errors and 5xx responses (a restarting server,
// a cluster whose workers momentarily vanished) — with exponential
// backoff and equal jitter. Non-transient typed errors (4xx: invalid
// input, plan not found...) pass through on the first attempt
// unchanged, and the final error of an exhausted retry budget is
// exactly what a single-shot client would have returned.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		pol := p.withDefaults()
		c.retry = &pol
	}
}

// decodeError marks a failure to decode the body of a successful (2xx)
// response. The server already did the work and answered; the bytes
// were just not what this client expects — a deterministic mismatch
// (version skew, a proxy mangling the body), not transient weather, so
// the retry loop treats it as final instead of burning every attempt
// on the same bad payload.
type decodeError struct {
	err error
}

func (e *decodeError) Error() string {
	return fmt.Sprintf("client: decoding response: %v", e.err)
}

func (e *decodeError) Unwrap() error { return e.err }

// retryable reports whether a failed attempt is worth repeating:
// anything transport-level (the server may be back next attempt) and
// any 5xx status. 4xx statuses are the caller's mistake, and a 2xx
// whose body failed to decode is deterministic — both stay final.
// Caller-context cancellation is handled by the retry loop, not here.
func retryable(err error) bool {
	var dec *decodeError
	if errors.As(err, &dec) {
		return false
	}
	var api *APIError
	if errors.As(err, &api) {
		return api.StatusCode >= http.StatusInternalServerError
	}
	return true
}

// withRetry runs attempt under the client's retry policy: exponential
// backoff with equal jitter between tries, an optional per-attempt
// timeout, and an immediate stop when the error is final or the
// caller's own context ends.
func (c *Client) withRetry(ctx context.Context, attempt func(ctx context.Context) error) error {
	p := *c.retry
	delay := p.BaseDelay
	var err error
	for try := 0; try < p.MaxAttempts; try++ {
		if try > 0 {
			// Equal jitter: half deterministic, half uniform — spreads
			// synchronized clients without losing the backoff floor.
			d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return errs.FromContext(ctx.Err())
			}
			if delay *= 2; delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = attempt(actx)
		cancel()
		if err == nil || !retryable(err) {
			return err
		}
		// A dead parent context means the failure is the caller's
		// cancellation, not the server's weather: stop immediately. A
		// per-attempt timeout leaves the parent alive and retries.
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// getRetry runs one GET under the retry policy.
func (c *Client) getRetry(ctx context.Context, path string, out any) error {
	return c.withRetry(ctx, func(ctx context.Context) error {
		return c.getOnce(ctx, path, out)
	})
}

package client

import (
	"context"
	"testing"

	kifmm "repro"
)

// TestTracedEvaluationAndRecentEvals exercises the observability
// surface end to end through the client: ?trace=1 span trees on both
// evaluate flavors, then the ring view via /v1/evals/recent.
func TestTracedEvaluationAndRecentEvals(t *testing.T) {
	c := startServer(t)
	ctx := context.Background()

	pts := kifmm.FlattenPatches(kifmm.UniformPatches(11, 250))
	den := kifmm.RandomDensities(12, len(pts)/3, 1)

	plan, err := c.RegisterPlan(ctx, PlanRequest{
		Src: pts, Kernel: KernelSpec{Name: "laplace"}, Degree: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Untraced calls must not pay for (or receive) a tree.
	if _, _, err := c.Evaluate(ctx, plan.ID, den); err != nil {
		t.Fatal(err)
	}

	pot, stats, trace, err := c.EvaluateTraced(ctx, plan.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	if len(pot) != len(pts)/3 {
		t.Fatalf("potentials length = %d, want %d", len(pot), len(pts)/3)
	}
	if trace == nil || trace.Name != "evaluate" {
		t.Fatalf("trace = %+v, want evaluate root span", trace)
	}
	if trace.Duration <= 0 {
		t.Error("trace root has no duration")
	}
	if got := trace.Attrs["plan_id"]; got != plan.ID {
		t.Errorf("trace plan_id = %q, want %q", got, plan.ID)
	}
	for _, name := range []string{"up", "down", "leaf"} {
		if trace.Find(name) == nil {
			t.Errorf("trace missing %q span", name)
		}
	}
	if stats.TotalNanos <= 0 {
		t.Errorf("stats not populated alongside trace: %+v", stats)
	}

	if _, _, trace, err = c.EvaluateBatchTraced(ctx, plan.ID, [][]float64{den, den}); err != nil {
		t.Fatal(err)
	}
	if trace == nil || trace.Attrs["rhs"] != "2" {
		t.Fatalf("batch trace = %+v, want rhs=2 attr", trace)
	}

	recent, err := c.RecentEvals(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if recent.Total != 3 {
		t.Errorf("recent.Total = %d, want 3 evaluations traced", recent.Total)
	}
	if len(recent.Traces) != 2 {
		t.Fatalf("len(recent.Traces) = %d, want the requested 2", len(recent.Traces))
	}
	// Newest first: the batch (rhs=2) ran last.
	if recent.Traces[0].Attrs["rhs"] != "2" {
		t.Errorf("newest trace rhs = %q, want 2", recent.Traces[0].Attrs["rhs"])
	}
}

package client

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"

	kifmm "repro"
	"repro/internal/service"
)

// startServer runs a full service + HTTP stack and returns a client
// bound to it: the end-to-end path the acceptance criteria exercise.
func startServer(t *testing.T) *Client {
	t.Helper()
	ts := httptest.NewServer(service.NewServer(service.New(service.Config{})))
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

func TestEndToEndRoundTrip(t *testing.T) {
	c := startServer(t)
	ctx := context.Background()

	patches := kifmm.UniformPatches(7, 300)
	pts := kifmm.FlattenPatches(patches)
	den := kifmm.RandomDensities(8, len(pts)/3, 1)

	plan, err := c.RegisterPlan(ctx, PlanRequest{
		Src:    pts,
		Kernel: KernelSpec{Name: "laplace"},
		Degree: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cached {
		t.Errorf("fresh plan reported cached")
	}
	if plan.SrcCount != len(pts)/3 {
		t.Errorf("SrcCount = %d, want %d", plan.SrcCount, len(pts)/3)
	}

	got, stats, err := c.Evaluate(ctx, plan.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalNanos <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}

	want, err := kifmm.Direct(kifmm.Laplace(), pts, pts, den)
	if err != nil {
		t.Fatal(err)
	}
	num, denom := 0.0, 0.0
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		denom += want[i] * want[i]
	}
	if e := math.Sqrt(num / denom); e > 1e-4 {
		t.Errorf("round-tripped potentials differ from Direct by %.3e", e)
	}

	// Second registration of the same geometry is served from cache.
	again, err := c.RegisterPlan(ctx, PlanRequest{
		Src:    pts,
		Kernel: KernelSpec{Name: "laplace"},
		Degree: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != plan.ID {
		t.Errorf("re-registration: %+v, want cached %s", again, plan.ID)
	}

	// One-shot path reuses the plan and agrees exactly.
	id, pot, _, err := c.EvaluateOnce(ctx, PlanRequest{
		Src:    pts,
		Kernel: KernelSpec{Name: "laplace"},
		Degree: 6,
	}, den)
	if err != nil {
		t.Fatal(err)
	}
	if id != plan.ID {
		t.Errorf("one-shot plan id %s, want %s", id, plan.ID)
	}
	for i := range pot {
		if pot[i] != got[i] {
			t.Fatalf("one-shot potentials diverge at %d", i)
		}
	}

	// Batched evaluation agrees with the single path per vector.
	pots, bstats, err := c.EvaluateBatch(ctx, plan.ID, [][]float64{den, den})
	if err != nil {
		t.Fatal(err)
	}
	if bstats.TotalNanos <= 0 {
		t.Errorf("batch stats not populated: %+v", bstats)
	}
	if len(pots) != 2 {
		t.Fatalf("batch returned %d vectors, want 2", len(pots))
	}
	for q := range pots {
		num, denom = 0, 0
		for i := range pots[q] {
			d := pots[q][i] - got[i]
			num += d * d
			denom += got[i] * got[i]
		}
		if e := math.Sqrt(num / denom); e > 1e-11 {
			t.Errorf("batch vector %d differs from single evaluation by %.3e", q, e)
		}
	}

	// Health and metrics read back through the client.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Plans != 1 {
		t.Errorf("health = %+v", h)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PlansBuilt != 1 || m.Evaluations != 4 {
		t.Errorf("metrics = %+v, want 1 plan built and 4 evaluations", m)
	}
	if m.PlansBytes <= 0 {
		t.Errorf("metrics missing plan footprint: %+v", m)
	}
}

func TestClientErrors(t *testing.T) {
	c := startServer(t)
	ctx := context.Background()

	_, _, err := c.Evaluate(ctx, "no-such-plan", []float64{1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("unknown plan: err = %v, want *APIError with 404", err)
	}

	_, err = c.RegisterPlan(ctx, PlanRequest{Src: []float64{0, 0, 0}, Kernel: KernelSpec{Name: "warp"}})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("bad kernel: err = %v, want *APIError with 400", err)
	}
	if apiErr != nil && apiErr.Message == "" {
		t.Errorf("error message not propagated")
	}
}

package client

import (
	"context"
	"testing"

	kifmm "repro"
	"repro/internal/obs"
)

// TestTraceparentRoundTrip drives the W3C trace-context propagation end
// to end: the client sends a traceparent, the server adopts the trace
// id, and /v1/evals/recent?trace_id= retrieves exactly that evaluation
// with the caller's span as the parent.
func TestTraceparentRoundTrip(t *testing.T) {
	c := startServer(t)

	pts := kifmm.FlattenPatches(kifmm.UniformPatches(21, 250))
	den := kifmm.RandomDensities(22, len(pts)/3, 1)
	plan, err := c.RegisterPlan(context.Background(), PlanRequest{
		Src: pts, Kernel: KernelSpec{Name: "laplace"}, Degree: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	caller := obs.NewTraceContext()
	ctx := WithTraceparent(context.Background(), caller.Traceparent())
	if _, _, err := c.Evaluate(ctx, plan.ID, den); err != nil {
		t.Fatal(err)
	}
	// A second evaluation under a different (auto-generated) trace must
	// not show up in the filtered view.
	if _, _, err := c.Evaluate(context.Background(), plan.ID, den); err != nil {
		t.Fatal(err)
	}

	recent, err := c.RecentEvalsByTrace(context.Background(), caller.TraceID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recent.Total != 2 {
		t.Errorf("recent.Total = %d, want 2 (filter narrows traces, not the total)", recent.Total)
	}
	if len(recent.Traces) != 1 {
		t.Fatalf("len(recent.Traces) = %d, want exactly the traced evaluation", len(recent.Traces))
	}
	sp := recent.Traces[0]
	if sp.Attrs["trace_id"] != caller.TraceID {
		t.Errorf("trace_id = %q, want %q", sp.Attrs["trace_id"], caller.TraceID)
	}
	if sp.Attrs["parent_span_id"] != caller.SpanID {
		t.Errorf("parent_span_id = %q, want the caller's span %q", sp.Attrs["parent_span_id"], caller.SpanID)
	}
	if sp.Attrs["request_id"] == "" {
		t.Error("span missing request_id (the request-log join key)")
	}
}

// TestTraceparentMalformedFallsBack checks that a bogus caller-supplied
// traceparent degrades to a fresh client-generated trace, never an
// error: the request succeeds and the evaluation lands under a valid
// generated trace id (the server-side fallback for wires that bypass
// this client is covered in the service tests).
func TestTraceparentMalformedFallsBack(t *testing.T) {
	c := startServer(t)

	pts := kifmm.FlattenPatches(kifmm.UniformPatches(23, 250))
	den := kifmm.RandomDensities(24, len(pts)/3, 1)
	plan, err := c.RegisterPlan(context.Background(), PlanRequest{
		Src: pts, Kernel: KernelSpec{Name: "laplace"}, Degree: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := WithTraceparent(context.Background(), "zz-definitely-not-a-traceparent")
	if _, _, err := c.Evaluate(ctx, plan.ID, den); err != nil {
		t.Fatalf("malformed traceparent must not fail the request: %v", err)
	}

	recent, err := c.RecentEvals(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recent.Traces) != 1 {
		t.Fatalf("len(recent.Traces) = %d, want 1", len(recent.Traces))
	}
	sp := recent.Traces[0]
	if _, err := obs.ParseTraceparent("00-" + sp.Attrs["trace_id"] + "-" + obs.NewSpanID() + "-01"); err != nil {
		t.Errorf("trace_id = %q, want a valid generated 32-hex id: %v", sp.Attrs["trace_id"], err)
	}
}

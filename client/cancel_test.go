package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	kifmm "repro"
	"repro/internal/service"
)

// bigServer returns a client bound to a fresh service plus a registered
// plan slow enough to cancel mid-flight.
func bigServer(t *testing.T, opts ...service.ServerOption) (*Client, *service.Service, PlanInfo, []float64) {
	t.Helper()
	svc := service.New(service.Config{})
	ts := httptest.NewServer(service.NewServer(svc, opts...))
	t.Cleanup(ts.Close)
	c := New(ts.URL)

	pts := kifmm.FlattenPatches(kifmm.UniformPatches(9, 4000))
	den := kifmm.RandomDensities(10, len(pts)/3, 1)
	plan, err := c.RegisterPlan(context.Background(), PlanRequest{
		Src: pts, Kernel: KernelSpec{Name: "laplace"}, Degree: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the lazily built operator caches so cancel timing measures
	// the sweep, not operator construction.
	if _, _, err := c.Evaluate(context.Background(), plan.ID, den); err != nil {
		t.Fatal(err)
	}
	return c, svc, plan, den
}

// TestClientCancelPropagatesTyped: cancelling the client's context
// mid-evaluation yields an error satisfying the full taxonomy contract
// — kifmm.ErrCanceled AND context.Canceled — and stops the server-side
// sweep (the acceptance criterion's end-to-end path).
func TestClientCancelPropagatesTyped(t *testing.T) {
	c, svc, plan, den := bigServer(t)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	_, _, err := c.Evaluate(ctx, plan.ID, den)
	if err == nil {
		t.Skip("evaluation outran the cancel on this machine")
	}
	if !errors.Is(err, kifmm.ErrCanceled) {
		t.Errorf("err = %v, want errors.Is(err, kifmm.ErrCanceled)", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(err, context.Canceled)", err)
	}

	// Server side: the sweep aborted and was recorded as a cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().EvalCanceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server never recorded the cancellation; metrics %+v", svc.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientDeadlineTyped: a client-side deadline produces the deadline
// taxonomy error end to end.
func TestClientDeadlineTyped(t *testing.T) {
	c, _, plan, den := bigServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Evaluate(ctx, plan.ID, den)
	if err == nil {
		t.Skip("evaluation outran the deadline on this machine")
	}
	if !errors.Is(err, kifmm.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded and context.DeadlineExceeded", err)
	}
}

// TestServerTimeoutReconstructedTyped: a server-side -eval-timeout 504
// crosses the wire as a reconstructed typed error, so errors.Is works
// on a context the client never saw.
func TestServerTimeoutReconstructedTyped(t *testing.T) {
	// Register and warm through an untimed server; only the evaluation
	// goes through the 2ms-deadline one (sharing the same service).
	_, svc, plan, den := bigServer(t)
	tts := httptest.NewServer(service.NewServer(svc, service.WithEvalTimeout(2*time.Millisecond)))
	t.Cleanup(tts.Close)
	timed := New(tts.URL)
	_, _, err := timed.Evaluate(context.Background(), plan.ID, den)
	if err == nil {
		t.Skip("evaluation beat the server timeout on this machine")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.StatusCode != 504 {
		t.Errorf("status = %d, want 504", apiErr.StatusCode)
	}
	if !errors.Is(err, kifmm.ErrDeadlineExceeded) {
		t.Errorf("wire error must reconstruct ErrDeadlineExceeded; got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("wire error must satisfy context.DeadlineExceeded; got %v", err)
	}
}

// TestWireCodesReconstructTyped: each wire code reconstructs its
// sentinel through the client.
func TestWireCodesReconstructTyped(t *testing.T) {
	c := startServer(t)
	ctx := context.Background()

	_, _, err := c.Evaluate(ctx, "no-such-plan", []float64{1})
	if !errors.Is(err, kifmm.ErrPlanNotFound) {
		t.Errorf("unknown plan: err = %v, want kifmm.ErrPlanNotFound", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != kifmm.CodePlanNotFound {
		t.Errorf("unknown plan: code = %v, want %q", err, kifmm.CodePlanNotFound)
	}

	_, err = c.RegisterPlan(ctx, PlanRequest{Src: []float64{0, 0, 0}, Kernel: KernelSpec{Name: "warp"}})
	if !errors.Is(err, kifmm.ErrUnknownKernel) {
		t.Errorf("unknown kernel: err = %v, want kifmm.ErrUnknownKernel", err)
	}

	_, err = c.RegisterPlan(ctx, PlanRequest{Src: []float64{1, 2}, Kernel: KernelSpec{Name: "laplace"}})
	if !errors.Is(err, kifmm.ErrInvalidInput) {
		t.Errorf("bad geometry: err = %v, want kifmm.ErrInvalidInput", err)
	}

	_, err = c.RegisterPlan(ctx, PlanRequest{Src: []float64{0, 0, 0}, Kernel: KernelSpec{Name: "laplace"}, Degree: 1 << 20})
	if !errors.Is(err, kifmm.ErrPlanTooLarge) {
		t.Errorf("degree bomb: err = %v, want kifmm.ErrPlanTooLarge", err)
	}
	if errors.Is(err, kifmm.ErrInvalidInput) {
		t.Errorf("plan_too_large must not also match invalid_input")
	}
}

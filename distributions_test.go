package kifmm

import "testing"

func TestSpherePatches(t *testing.T) {
	const (
		n = 1000
		g = 4
		r = 0.1
	)
	patches := SpherePatches(1, n, g, r)
	if len(patches) != g*g*g {
		t.Fatalf("patch count = %d, want %d (one per sphere)", len(patches), g*g*g)
	}
	total := 0
	for pi, p := range patches {
		total += p.Count()
		// Every point lies on the sphere of radius r around the patch
		// center (up to rounding).
		for i := 0; i < p.Count(); i++ {
			dx := p.Points[3*i] - p.Center[0]
			dy := p.Points[3*i+1] - p.Center[1]
			dz := p.Points[3*i+2] - p.Center[2]
			d2 := dx*dx + dy*dy + dz*dz
			if d2 < (r-1e-9)*(r-1e-9) || d2 > (r+1e-9)*(r+1e-9) {
				t.Fatalf("patch %d point %d at distance² %g from center, want r=%g", pi, i, d2, r)
			}
		}
	}
	if total != n {
		t.Errorf("total particles = %d, want %d", total, n)
	}
	checkBounds(t, FlattenPatches(patches), 1+r)
}

func TestCornerPatches(t *testing.T) {
	const n = 800
	patches := CornerPatches(2, n, 0.3)
	if len(patches) != 64 {
		t.Fatalf("patch count = %d, want 64 (8 corners x 8 slices)", len(patches))
	}
	pts := FlattenPatches(patches)
	if len(pts) != 3*n {
		t.Fatalf("total coordinates = %d, want %d", len(pts), 3*n)
	}
	checkBounds(t, pts, 1)
	// The distribution clusters at the corners: every point is within the
	// spread of some corner of [-1,1]³.
	for i := 0; i < n; i++ {
		x, y, z := pts[3*i], pts[3*i+1], pts[3*i+2]
		d2 := (1 - abs(x)) * (1 - abs(x))
		d2 += (1 - abs(y)) * (1 - abs(y))
		d2 += (1 - abs(z)) * (1 - abs(z))
		if d2 > 0.3*0.3+1e-12 {
			t.Fatalf("point %d = (%g,%g,%g) has squared corner distance %g, want <= 0.09", i, x, y, z, d2)
		}
	}
}

func TestUniformPatches(t *testing.T) {
	const n = 500
	patches := UniformPatches(3, n)
	if len(patches) != 1 {
		t.Fatalf("patch count = %d, want 1", len(patches))
	}
	if patches[0].Count() != n {
		t.Fatalf("particle count = %d, want %d", patches[0].Count(), n)
	}
	checkBounds(t, patches[0].Points, 1)
}

func TestRandomDensities(t *testing.T) {
	den := RandomDensities(4, 100, 3)
	if len(den) != 300 {
		t.Fatalf("density length = %d, want 300", len(den))
	}
	for i, v := range den {
		if v < 0 || v > 1 {
			t.Fatalf("density %d = %g outside [0,1]", i, v)
		}
	}
	// Deterministic per seed.
	if again := RandomDensities(4, 100, 3); again[0] != den[0] || again[299] != den[299] {
		t.Errorf("same seed produced different densities")
	}
	if other := RandomDensities(5, 100, 3); other[0] == den[0] {
		t.Errorf("different seeds produced identical densities")
	}
}

func checkBounds(t *testing.T, pts []float64, limit float64) {
	t.Helper()
	for i, v := range pts {
		if v < -limit || v > limit {
			t.Fatalf("coordinate %d = %g outside [%g,%g]", i, v, -limit, limit)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

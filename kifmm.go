// Package kifmm is a kernel-independent fast multipole method for
// second-order constant-coefficient non-oscillatory elliptic PDE kernels
// in three dimensions, reproducing Ying, Biros, Zorin & Langston, "A New
// Parallel Kernel-Independent Fast Multipole Method" (SC 2003).
//
// The method computes, for N source densities φ_j at points y_j and
// targets x_i,
//
//	u_i = Σ_j G(x_i, y_j) φ_j
//
// in O(N) time without any analytic expansion of the kernel G: multipole
// and local expansions are replaced by equivalent densities on cube
// surfaces, constructed by solving small exterior/interior Dirichlet
// problems (regularized pseudo-inverses of kernel matrices), and the
// multipole-to-local translations are accelerated with FFTs.
//
// Four kernels are built in — Laplace, modified Laplace (screened
// Coulomb), Stokes and Kelvin — and any kernels.Kernel implementation
// works.
//
// Basic use:
//
//	ev, err := kifmm.NewEvaluator(points, points, kifmm.Options{Kernel: kifmm.Laplace()})
//	pot, err := ev.EvaluateCtx(ctx, densities)
//
// The API is context-first: NewEvaluatorCtx, EvaluateCtx,
// EvaluateBatchCtx and SolveGMRESCtx are the real implementations —
// cancelling the context aborts the work within one FMM pass and
// returns a typed error (see Error and the Err* sentinels in errors.go)
// that satisfies both kifmm.ErrCanceled and context.Canceled. The
// ctx-free entry points are thin context.Background() wrappers kept for
// callers that do not need cancellation.
//
// Evaluation fans its per-box work over worker lanes leased per call
// from an elastic pool (Options.Workers is the ceiling, Options.Pool
// the scheduling domain): one call on an idle pool uses the whole
// machine, concurrent calls negotiate their widths — with bitwise
// identical results at every width. Evaluation is read-only on the
// prepared plan, so one Evaluator serves concurrent callers;
// EvaluateBatch amortizes tree traversal and near-field kernel
// evaluations over many density vectors at once.
//
// The parallel algorithm of the paper (local essential trees, global
// tree array, owner-coordinated ghost exchange) runs on simulated MPI
// ranks via EvaluateParallel.
package kifmm

import (
	"context"

	"repro/internal/direct"
	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/parfmm"
)

// Kernel is the pairwise interaction kernel interface; see
// internal/kernels for the contract.
type Kernel = kernels.Kernel

// Laplace returns the 3-D Laplace single-layer kernel 1/(4πr).
func Laplace() Kernel { return kernels.Laplace{} }

// ModLaplace returns the modified Laplace (screened Coulomb / Yukawa)
// kernel e^(-λr)/(4πr).
func ModLaplace(lambda float64) Kernel { return kernels.NewModLaplace(lambda) }

// Stokes returns the Stokeslet kernel 1/(8πμ)(I/r + r⊗r/r³).
func Stokes(mu float64) Kernel { return kernels.NewStokes(mu) }

// Kelvin returns the 3-D linear-elasticity fundamental solution
// (Kelvinlet) with shear modulus mu and Poisson ratio nu.
func Kelvin(mu, nu float64) Kernel { return kernels.NewKelvin(mu, nu) }

// KernelByName resolves "laplace", "modlaplace", "stokes" or "kelvin".
func KernelByName(name string) (Kernel, error) { return kernels.ByName(name) }

// M2LBackend selects the multipole-to-local translation implementation.
type M2LBackend = fmm.M2LBackend

// M2L backends: the FFT path is the paper's choice; the dense path
// trades higher flop rates for asymptotically more work (footnote 5).
const (
	M2LFFT   = fmm.M2LFFT
	M2LDense = fmm.M2LDense
)

// Options configure an Evaluator. Zero values select the paper-matching
// defaults: degree 6 surfaces (~1e-5 relative error for Laplace), leaf
// threshold s=60, FFT M2L, one worker per logical CPU.
type Options struct {
	// Kernel is required.
	Kernel Kernel
	// Degree is the equivalent-surface degree p (points per cube edge).
	Degree int
	// MaxPoints is the maximum number of points per leaf box (s).
	MaxPoints int
	// MaxDepth caps the octree depth.
	MaxDepth int
	// Backend selects the M2L path.
	Backend M2LBackend
	// PinvTol is the pseudo-inverse truncation threshold.
	PinvTol float64
	// Workers is the width ceiling of one evaluation (default
	// GOMAXPROCS; 1 forces sequential evaluation). The actual width of
	// each call is leased from the elastic pool at evaluation time —
	// the full ceiling when the pool is idle, less under concurrent
	// load. Results are bitwise identical for every granted width.
	// Workers does not change what an evaluator computes, so PlanKey
	// deliberately excludes it.
	Workers int
	// Pool is the elastic lane pool evaluations lease their width from
	// (nil selects the process-wide default, capacity GOMAXPROCS).
	// Evaluators sharing a Pool form one scheduling domain: admission
	// and per-call width are negotiated across all their concurrent
	// evaluations. Like Workers, Pool is pure scheduling policy and is
	// excluded from PlanKey.
	Pool *Pool
}

// fmmOptions maps the public Options onto the engine options. It is the
// single conversion point shared by NewEvaluator and the plan-key
// normalization in plan.go, so a new Options field cannot be wired into
// construction while silently missing the plan-key hash —
// TestPlanKeyCoversOptions fails until the field is added to either
// planKeyHashedOptionFields or planKeyResultNeutralOptionFields.
func (o Options) fmmOptions() fmm.Options {
	return fmm.Options{
		Kernel: o.Kernel, Degree: o.Degree, MaxPoints: o.MaxPoints,
		MaxDepth: o.MaxDepth, Backend: o.Backend, PinvTol: o.PinvTol,
		Workers: o.Workers, Pool: o.Pool.elastic(),
	}
}

// optionsFromFMM is the inverse of fmmOptions, used to surface the
// engine's defaulting rules (fmm.ApplyDefaults) back through the public
// type.
func optionsFromFMM(f fmm.Options) Options {
	return Options{
		Kernel: f.Kernel, Degree: f.Degree, MaxPoints: f.MaxPoints,
		MaxDepth: f.MaxDepth, Backend: f.Backend, PinvTol: f.PinvTol,
		Workers: f.Workers, Pool: poolFromElastic(f.Pool),
	}
}

// Evaluator is a prepared FMM: an adaptive octree over fixed source and
// target points plus cached translation operators. Build once, call
// Evaluate for every new density vector (e.g. per Krylov iteration).
// Evaluation is read-only on the prepared plan, so one Evaluator is
// safe for concurrent Evaluate/EvaluateBatch callers.
type Evaluator struct {
	inner *fmm.Evaluator
}

// NewEvaluator builds the octree and operators over src and trg, flat
// (x0,y0,z0,x1,...) coordinate slices which may be the same slice. It
// is NewEvaluatorCtx with context.Background().
func NewEvaluator(src, trg []float64, opt Options) (*Evaluator, error) {
	return NewEvaluatorCtx(context.Background(), src, trg, opt) //lint:allow ctxfirst documented legacy ctx-free wrapper over NewEvaluatorCtx
}

// NewEvaluatorCtx is the context-aware plan build. Construction is the
// expensive amortized step (octree plus translation-operator setup), so
// ctx is checked at each internal stage boundary; a caller that gives
// up — a disconnecting service client, a deadline — abandons the build
// with a typed cancellation error instead of paying for a plan nobody
// will use.
func NewEvaluatorCtx(ctx context.Context, src, trg []float64, opt Options) (*Evaluator, error) {
	inner, err := fmm.NewCtx(ctx, src, trg, opt.fmmOptions())
	if err != nil {
		return nil, err
	}
	return &Evaluator{inner: inner}, nil
}

// Evaluate computes the potentials induced by den (SourceDim components
// per source, input order); the result has TargetDim components per
// target in input order. It is EvaluateCtx with context.Background().
func (e *Evaluator) Evaluate(den []float64) ([]float64, error) {
	return e.inner.Evaluate(den)
}

// EvaluateCtx is Evaluate under a context. The context is threaded into
// every pass of the sweep and checked at each dispatch, level barrier
// and work-chunk claim, so a cancellation or deadline aborts the
// evaluation within one pass; the returned error then satisfies
// errors.Is against both ErrCanceled (or ErrDeadlineExceeded) and the
// matching context sentinel.
func (e *Evaluator) EvaluateCtx(ctx context.Context, den []float64) ([]float64, error) {
	return e.inner.EvaluateCtx(ctx, den)
}

// EvaluateStats is Evaluate returning this call's stage breakdown
// directly, so concurrent callers get their own stats instead of racing
// on Stats().
func (e *Evaluator) EvaluateStats(den []float64) ([]float64, fmm.Stats, error) {
	return e.inner.EvaluateStats(den)
}

// EvaluateStatsCtx is EvaluateCtx returning this call's stage breakdown.
func (e *Evaluator) EvaluateStatsCtx(ctx context.Context, den []float64) ([]float64, fmm.Stats, error) {
	return e.inner.EvaluateStatsCtx(ctx, den)
}

// EvaluateBatch evaluates several density vectors in one sweep of the
// tree, amortizing traversal and near-field kernel evaluations across
// the batch — the shape Krylov solvers with multiple right-hand sides
// and the evaluation service's batch endpoint use. Results match
// per-vector Evaluate calls to accumulation-order rounding.
func (e *Evaluator) EvaluateBatch(dens [][]float64) ([][]float64, error) {
	return e.inner.EvaluateBatch(dens)
}

// EvaluateBatchCtx is EvaluateBatch under a context; see EvaluateCtx
// for the cancellation contract.
func (e *Evaluator) EvaluateBatchCtx(ctx context.Context, dens [][]float64) ([][]float64, error) {
	return e.inner.EvaluateBatchCtx(ctx, dens)
}

// EvaluateBatchStats is EvaluateBatch returning the aggregate stage
// breakdown of the whole batch.
func (e *Evaluator) EvaluateBatchStats(dens [][]float64) ([][]float64, fmm.Stats, error) {
	return e.inner.EvaluateBatchStats(dens)
}

// EvaluateBatchStatsCtx is EvaluateBatchCtx returning the aggregate
// stage breakdown of the whole batch.
func (e *Evaluator) EvaluateBatchStatsCtx(ctx context.Context, dens [][]float64) ([][]float64, fmm.Stats, error) {
	return e.inner.EvaluateBatchStatsCtx(ctx, dens)
}

// EvaluateBatchTracedCtx is EvaluateBatchStatsCtx plus a wall-clock
// trace: the returned span tree records the evaluation (root), each
// pass (permute/up/down/leaf/unpermute) and each tree level within the
// up and down passes. Pass spans are wall time of the parallel sweep,
// while Stats stages sum compute time across lanes — they agree only at
// width 1. The tree is finished and owned by the caller.
func (e *Evaluator) EvaluateBatchTracedCtx(ctx context.Context, dens [][]float64) ([][]float64, fmm.Stats, *obs.Span, error) {
	return e.inner.EvaluateBatchTracedCtx(ctx, dens)
}

// Stats returns the per-stage timing and flop breakdown of the most
// recently completed evaluation.
func (e *Evaluator) Stats() fmm.Stats { return e.inner.Stats() }

// Workers returns the width ceiling of one evaluation (the widest lane
// lease a call can be granted); Stats().Lanes reports what a specific
// call actually got.
func (e *Evaluator) Workers() int { return e.inner.Workers() }

// FootprintBytes estimates the resident memory of the prepared plan:
// the octree plus this plan's share of the process-global operator
// caches (shared operators are refcounted, so summing FootprintBytes
// over live plans counts each byte once). The evaluation service uses
// it for byte-bounded plan caching.
func (e *Evaluator) FootprintBytes() int64 { return e.inner.FootprintBytes() }

// Close releases the plan's claim on the shared operator caches for
// footprint accounting. The evaluator remains usable afterwards —
// Close only moves shared-byte attribution to the plans still open.
// Call it when discarding an evaluator whose footprint should no longer
// count (e.g. on cache eviction); idempotent.
func (e *Evaluator) Close() { e.inner.Close() }

// Boxes returns the number of octree boxes (diagnostics).
func (e *Evaluator) Boxes() int { return len(e.inner.Tree.Boxes) }

// Depth returns the octree depth.
func (e *Evaluator) Depth() int { return e.inner.Tree.Depth() }

// Direct computes the reference O(N²) summation (for verification).
func Direct(k Kernel, trg, src, den []float64) ([]float64, error) {
	return direct.Evaluate(k, trg, src, den)
}

// Patch re-exports the surface-patch input of the parallel driver.
type Patch = geom.Patch

// Machine re-exports the interconnect model of the MPI simulation.
type Machine = mpi.Machine

// DefaultMachine models a Quadrics-class interconnect (the paper's
// TCS-1 platform).
func DefaultMachine() Machine { return mpi.DefaultMachine() }

// ParallelOptions configure EvaluateParallel.
type ParallelOptions struct {
	Options
	// Machine models the interconnect (DefaultMachine when zero).
	Machine Machine
	// Iterations repeats and averages the interaction evaluation.
	Iterations int
}

// ParallelResult re-exports the parallel run result (potentials plus
// per-rank statistics).
type ParallelResult = parfmm.Result

// EvaluateParallel runs the paper's parallel algorithm on nproc
// simulated MPI ranks. patches are the input surfaces (partitioned along
// the Morton curve, weighted by particle count); den holds the densities
// in the order of FlattenPatches(patches). Source and target sets are
// identical, as in the paper's experiments.
func EvaluateParallel(patches []Patch, den []float64, nproc int, opt ParallelOptions) (*ParallelResult, error) {
	return parfmm.Evaluate(patches, den, nproc, parfmm.Options{
		Kernel: opt.Kernel, Degree: opt.Degree, MaxPoints: opt.MaxPoints,
		MaxDepth: opt.MaxDepth, Backend: opt.Backend, PinvTol: opt.PinvTol,
		Machine: opt.Machine, Iterations: opt.Iterations,
	})
}

// FlattenPatches concatenates patch points into one flat slice.
func FlattenPatches(patches []Patch) []float64 { return geom.Flatten(patches) }

package kifmm

import "repro/internal/krylov"

// The paper's applications wrap the FMM in a Krylov method: "at each
// time step we solve a linear system that requires tens of interaction
// calculations". These re-exports provide the solvers (the paper used
// PETSc's).

// MatVec is a black-box operator application dst = A*x.
type MatVec = krylov.MatVec

// SolverOptions control the Krylov iterations.
type SolverOptions = krylov.Options

// SolverResult reports Krylov convergence.
type SolverResult = krylov.Result

// SolveGMRES solves A x = b by restarted GMRES; x is the initial guess
// and is overwritten with the solution.
func SolveGMRES(apply MatVec, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.GMRES(apply, b, x, opt)
}

// SolveBiCGSTAB solves A x = b by BiCGSTAB.
func SolveBiCGSTAB(apply MatVec, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.BiCGSTAB(apply, b, x, opt)
}

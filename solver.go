package kifmm

import (
	"context"

	"repro/internal/krylov"
)

// The paper's applications wrap the FMM in a Krylov method: "at each
// time step we solve a linear system that requires tens of interaction
// calculations". These re-exports provide the solvers (the paper used
// PETSc's). The ctx-first variants are the real implementations: the
// context is checked before every operator application and handed to
// the operator itself, so cancelling mid-solve aborts the in-flight FMM
// evaluation within one pass instead of finishing the iteration sweep.

// MatVec is a black-box operator application dst = A*x.
type MatVec = krylov.MatVec

// MatVecCtx is a context-aware operator application dst = A*x; a
// returned error aborts the solve. Evaluator.EvaluateCtx wraps directly:
//
//	mv := func(ctx context.Context, dst, x []float64) error {
//		pot, err := ev.EvaluateCtx(ctx, x)
//		if err == nil {
//			copy(dst, pot)
//		}
//		return err
//	}
type MatVecCtx = krylov.MatVecCtx

// SolverOptions control the Krylov iterations.
type SolverOptions = krylov.Options

// SolverResult reports Krylov convergence.
type SolverResult = krylov.Result

// BatchMatVec applies the operator to many vectors at once,
// ys[i] = A*xs[i] — the shape of Evaluator.EvaluateBatch.
type BatchMatVec = krylov.BatchMatVec

// BatchMatVecCtx is the context-aware batched operator application —
// the shape of Evaluator.EvaluateBatchCtx.
type BatchMatVecCtx = krylov.BatchMatVecCtx

// SolveGMRESCtx solves A x = b by restarted GMRES under ctx; x is the
// initial guess and is overwritten with the current iterate. On
// cancellation the partial result is returned with an error satisfying
// errors.Is against both ErrCanceled (or ErrDeadlineExceeded) and the
// matching context sentinel.
func SolveGMRESCtx(ctx context.Context, apply MatVecCtx, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.GMRESCtx(ctx, apply, b, x, opt)
}

// SolveGMRES solves A x = b by restarted GMRES; it is SolveGMRESCtx
// with context.Background() and a ctx-oblivious operator.
func SolveGMRES(apply MatVec, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.GMRES(apply, b, x, opt)
}

// SolveGMRESBatchCtx solves many systems sharing one operator (e.g. a
// boundary integral equation with many boundary conditions), running
// the per-system GMRES iterations in lockstep so each round of operator
// applications becomes a single batched call. With an FMM operator the
// tree traversal and near-field kernel evaluations are then paid once
// per round instead of once per system; see Evaluator.EvaluateBatchCtx.
// xs[i] is the initial guess of system i, overwritten with its
// solution. Cancelling ctx aborts every in-flight system.
func SolveGMRESBatchCtx(ctx context.Context, apply BatchMatVecCtx, bs, xs [][]float64, opt SolverOptions) ([]SolverResult, error) {
	return krylov.GMRESBatchCtx(ctx, apply, bs, xs, opt)
}

// SolveGMRESBatch is SolveGMRESBatchCtx with context.Background() and a
// ctx-oblivious operator.
func SolveGMRESBatch(apply BatchMatVec, bs, xs [][]float64, opt SolverOptions) ([]SolverResult, error) {
	return krylov.GMRESBatch(apply, bs, xs, opt)
}

// SolveBiCGSTABCtx solves A x = b by BiCGSTAB under ctx; cancellation
// semantics match SolveGMRESCtx.
func SolveBiCGSTABCtx(ctx context.Context, apply MatVecCtx, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.BiCGSTABCtx(ctx, apply, b, x, opt)
}

// SolveBiCGSTAB solves A x = b by BiCGSTAB.
func SolveBiCGSTAB(apply MatVec, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.BiCGSTAB(apply, b, x, opt)
}

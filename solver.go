package kifmm

import "repro/internal/krylov"

// The paper's applications wrap the FMM in a Krylov method: "at each
// time step we solve a linear system that requires tens of interaction
// calculations". These re-exports provide the solvers (the paper used
// PETSc's).

// MatVec is a black-box operator application dst = A*x.
type MatVec = krylov.MatVec

// SolverOptions control the Krylov iterations.
type SolverOptions = krylov.Options

// SolverResult reports Krylov convergence.
type SolverResult = krylov.Result

// BatchMatVec applies the operator to many vectors at once,
// ys[i] = A*xs[i] — the shape of Evaluator.EvaluateBatch.
type BatchMatVec = krylov.BatchMatVec

// SolveGMRES solves A x = b by restarted GMRES; x is the initial guess
// and is overwritten with the solution.
func SolveGMRES(apply MatVec, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.GMRES(apply, b, x, opt)
}

// SolveGMRESBatch solves many systems sharing one operator (e.g. a
// boundary integral equation with many boundary conditions), running
// the per-system GMRES iterations in lockstep so each round of operator
// applications becomes a single batched call. With an FMM operator the
// tree traversal and near-field kernel evaluations are then paid once
// per round instead of once per system; see Evaluator.EvaluateBatch.
// xs[i] is the initial guess of system i, overwritten with its
// solution.
func SolveGMRESBatch(apply BatchMatVec, bs, xs [][]float64, opt SolverOptions) ([]SolverResult, error) {
	return krylov.GMRESBatch(apply, bs, xs, opt)
}

// SolveBiCGSTAB solves A x = b by BiCGSTAB.
func SolveBiCGSTAB(apply MatVec, b, x []float64, opt SolverOptions) (SolverResult, error) {
	return krylov.BiCGSTAB(apply, b, x, opt)
}

package kifmm

// The conformance suite is the randomized oracle lock on the whole
// library: seeded-random plans swept across kernel x distribution x
// degree x depth x workers x batch-size, every potential cross-checked
// against the O(N²) direct summation (internal/direct) to the degree's
// expected accuracy, plus the bitwise-determinism guarantees the
// elastic scheduler must preserve — identical results across granted
// widths {1, 2, max} and across a mid-run lane revocation. Scheduling
// changes are exactly where determinism and correctness bugs hide;
// anything that breaks either fails here before it ships.
//
// CI runs `go test -run Conformance -short` as a dedicated job; the
// full sweep runs with the normal test suite.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// conformanceTol is the expected relative accuracy of a degree-p
// equivalent surface (the paper's Table 4.1 regime, with headroom for
// clustered distributions and the small point sets used here). Tensor
// kernels (Stokes, Kelvin) converge visibly slower in p than the
// scalar ones, so they get a looser bound at low degree.
func conformanceTol(k Kernel, degree int) float64 {
	tensor := k.SourceDim() > 1
	switch {
	case degree <= 4 && tensor:
		return 2e-1
	case degree <= 4:
		return 2e-2
	case degree <= 6 && tensor:
		return 1e-2
	case degree <= 6:
		return 5e-3
	default:
		return 1e-4
	}
}

// conformanceCase is one randomized plan configuration.
type conformanceCase struct {
	name     string
	kernel   Kernel
	pts      []float64
	degree   int
	maxPts   int
	maxDepth int
	backend  M2LBackend
	workers  int
	batch    int
}

// drawConformanceCases derives the sweep from a seeded generator: same
// seed, same plans, so a failure reproduces by name.
func drawConformanceCases(seed int64, iters int) []conformanceCase {
	rng := rand.New(rand.NewSource(seed))
	kernels := []struct {
		name string
		k    Kernel
	}{
		{"laplace", Laplace()},
		{"modlaplace", ModLaplace(1.5)},
		{"stokes", Stokes(1)},
		{"kelvin", Kelvin(1, 0.3)},
	}
	distributions := []string{"uniform", "corner", "sphere"}
	var cases []conformanceCase
	for i := 0; i < iters; i++ {
		k := kernels[rng.Intn(len(kernels))]
		dist := distributions[rng.Intn(len(distributions))]
		n := 300 + rng.Intn(400)
		var pts []float64
		switch dist {
		case "uniform":
			pts = FlattenPatches(UniformPatches(rng.Int63(), n))
		case "corner":
			pts = FlattenPatches(CornerPatches(rng.Int63(), n, 0.3))
		case "sphere":
			pts = FlattenPatches(SpherePatches(rng.Int63(), n, 3, 0.2))
		}
		degree := 4
		if rng.Intn(3) == 0 {
			degree = 6
		}
		// Degree-6 tensor-kernel operator construction costs ~10s of
		// SVDs; keep the seeded draw stable but trim it under -short
		// (the race job's budget).
		if testing.Short() && degree == 6 && k.k.SourceDim() > 1 {
			degree = 4
		}
		maxDepth := 0 // uncapped
		if rng.Intn(3) == 0 {
			maxDepth = 2 + rng.Intn(2) // shallow trees skip/stress the downward pass
		}
		backend := M2LFFT
		if rng.Intn(3) == 0 {
			backend = M2LDense
		}
		c := conformanceCase{
			kernel: k.k, pts: pts,
			degree: degree, maxPts: 15 + rng.Intn(40), maxDepth: maxDepth,
			backend: backend,
			workers: 1 + rng.Intn(4),
			batch:   1 + rng.Intn(3),
		}
		c.name = fmt.Sprintf("%02d-%s-%s-n%d-d%d-s%d-depth%d-b%d-w%d-rhs%d",
			i, k.name, dist, n, c.degree, c.maxPts, c.maxDepth, int(c.backend), c.workers, c.batch)
		cases = append(cases, c)
	}
	return cases
}

// TestConformanceRandomizedVsDirect: every FMM potential in the seeded
// sweep must match direct summation to the degree's expected accuracy,
// on every vector of the batch.
func TestConformanceRandomizedVsDirect(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	pool := NewPool(4)
	for _, c := range drawConformanceCases(7001, iters) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ev, err := NewEvaluator(c.pts, c.pts, Options{
				Kernel: c.kernel, Degree: c.degree, MaxPoints: c.maxPts,
				MaxDepth: c.maxDepth, Backend: c.backend,
				Workers: c.workers, Pool: pool,
			})
			if err != nil {
				t.Fatal(err)
			}
			n := len(c.pts) / 3
			dens := make([][]float64, c.batch)
			for q := range dens {
				dens[q] = RandomDensities(int64(100+q), n, c.kernel.SourceDim())
			}
			pots, err := ev.EvaluateBatch(dens)
			if err != nil {
				t.Fatal(err)
			}
			tol := conformanceTol(c.kernel, c.degree)
			for q := range dens {
				want, err := Direct(c.kernel, c.pts, c.pts, dens[q])
				if err != nil {
					t.Fatal(err)
				}
				if e := rel(pots[q], want); e > tol {
					t.Errorf("rhs %d: relative error %.3e > %.0e vs direct summation", q, e, tol)
				}
			}
		})
	}
}

// TestConformanceBitwiseAcrossElasticWidths: identical plans evaluated
// at granted widths 1, 2 and the full pool must agree bit for bit, on
// both M2L backends and on the batch path — the guarantee that lets the
// scheduler pick widths freely.
func TestConformanceBitwiseAcrossElasticWidths(t *testing.T) {
	pts := FlattenPatches(CornerPatches(41, 900, 0.35))
	n := len(pts) / 3
	dens := [][]float64{
		RandomDensities(42, n, 1),
		RandomDensities(43, n, 1),
	}
	if testing.Short() {
		dens = dens[:1]
	}
	for _, backend := range []M2LBackend{M2LFFT, M2LDense} {
		var want [][]float64
		for _, workers := range []int{1, 2, 8} {
			// A fresh idle pool per run grants exactly the requested
			// width even on a single-core machine.
			ev, err := NewEvaluator(pts, pts, Options{
				Kernel: Laplace(), Degree: 4, MaxPoints: 25,
				Backend: backend, Workers: workers, Pool: NewPool(8),
			})
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := ev.EvaluateBatchStats(dens)
			if err != nil {
				t.Fatal(err)
			}
			if st.Lanes != workers {
				t.Fatalf("backend %v: idle pool granted %d lanes, want %d", backend, st.Lanes, workers)
			}
			if want == nil {
				want = got
				continue
			}
			for q := range got {
				for i := range got[q] {
					if got[q][i] != want[q][i] {
						t.Fatalf("backend %v: width %d differs from width 1 at rhs %d index %d",
							backend, workers, q, i)
					}
				}
			}
		}
	}
}

// TestConformanceShrinkMidRun: an evaluation whose lease is revoked
// while it runs — competitors acquiring and releasing lanes throughout,
// shrinking the sweep at chunk boundaries and between passes — must
// still produce the undisturbed result bit for bit.
func TestConformanceShrinkMidRun(t *testing.T) {
	pool := NewPool(4)
	pts := FlattenPatches(UniformPatches(51, 1500))
	n := len(pts) / 3
	den := RandomDensities(52, n, 1)
	ev, err := NewEvaluator(pts, pts, Options{
		Kernel: Laplace(), Degree: 5, MaxPoints: 30, Workers: 4, Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, st, err := ev.EvaluateStats(den) // undisturbed: full width
	if err != nil {
		t.Fatal(err)
	}
	if st.Lanes != 4 {
		t.Fatalf("undisturbed evaluation granted %d lanes, want 4", st.Lanes)
	}

	// Competitor: repeatedly grab a lane and let it go, forcing the
	// running evaluation to shed and regrow lanes throughout.
	stop := make(chan struct{})
	contended := make(chan int, 1)
	go func() {
		grabs := 0
		for {
			select {
			case <-stop:
				contended <- grabs
				return
			default:
			}
			lease, err := pool.Acquire(context.Background(), 1)
			if err != nil {
				contended <- grabs
				return
			}
			grabs++
			time.Sleep(200 * time.Microsecond)
			lease.Release()
		}
	}()
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		got, err := ev.Evaluate(den)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: contended evaluation differs at %d", r, i)
			}
		}
	}
	close(stop)
	if grabs := <-contended; grabs == 0 {
		t.Error("competitor never acquired a lane; the shrink path was not exercised")
	}
	if in := pool.LanesInUse(); in != 0 {
		t.Errorf("LanesInUse = %d after everything released", in)
	}
}

package kifmm

import (
	"context"
	"time"

	"repro/internal/exec"
	"repro/internal/fmm"
)

// Pool is an elastic worker-lane pool — one scheduling domain shared by
// every evaluator constructed with it (Options.Pool). Each evaluation
// leases its width from the pool at call time: a lone call on an idle
// pool fans out up to min(Options.Workers, MaxWorkers) lanes, while
// under concurrent load every call degrades toward the admission floor
// (SetMinGrant), shedding lanes mid-run as competitors arrive and
// growing back at pass boundaries as they finish. Admission itself is
// the concurrency gate: a call that cannot get its floor queues,
// honoring its context.
//
// Widths are pure scheduling: results are bitwise identical across
// every granted width, including mid-run shrinks, so sharing a pool
// never perturbs numerics. Evaluators built without an explicit Pool
// share a process-wide default sized GOMAXPROCS.
//
// A Pool is safe for concurrent use. Do not Acquire a lease while
// already holding one on the same pool (e.g. from inside work running
// under an evaluation) — under saturation that deadlocks like any
// nested lock.
type Pool struct {
	e *exec.Elastic
}

// NewPool returns an elastic pool with the given lane capacity;
// maxWorkers <= 0 selects GOMAXPROCS.
func NewPool(maxWorkers int) *Pool {
	return &Pool{e: exec.NewElastic(maxWorkers)}
}

// poolFromElastic wraps an engine pool back into the public type (used
// when surfacing engine options through the public Options).
func poolFromElastic(e *exec.Elastic) *Pool {
	if e == nil {
		return nil
	}
	return &Pool{e: e}
}

// elastic unwraps, tolerating a nil receiver (nil means "process
// default" everywhere a Pool is accepted).
func (p *Pool) elastic() *exec.Elastic {
	if p == nil {
		return nil
	}
	return p.e
}

// SetMinGrant sets the admission floor: every evaluation is granted at
// least min lanes (clamped to [1, MaxWorkers]) once admitted, and is
// never revoked below it — so at most MaxWorkers/min evaluations run
// concurrently and the rest queue. The default floor of 1 maximizes
// concurrency; raising it bounds how far per-call latency degrades
// under load.
func (p *Pool) SetMinGrant(min int) { p.e.SetMinGrant(min) }

// MaxWorkers returns the pool's lane capacity.
func (p *Pool) MaxWorkers() int { return p.e.Cap() }

// LanesInUse returns the number of lanes currently leased (a gauge;
// never exceeds MaxWorkers).
func (p *Pool) LanesInUse() int { return p.e.InUse() }

// LanesGranted returns the cumulative number of lanes handed out at
// admission across all leases.
func (p *Pool) LanesGranted() int64 { return p.e.GrantedLanes() }

// LeasesGranted returns the number of admissions.
func (p *Pool) LeasesGranted() int64 { return p.e.GrantedLeases() }

// SetAcquireObserver installs a callback run after each admission (an
// evaluation's lease or an embedder Acquire) with the time the caller
// spent queued and the width it was granted — the hook a lease-wait
// histogram hangs off. The callback must be cheap and non-blocking;
// pass nil to remove it.
func (p *Pool) SetAcquireObserver(fn func(wait time.Duration, granted int)) {
	p.e.SetAcquireObserver(fn)
}

// Acquire leases want lanes (want <= 0 means the full capacity) for
// work an embedder schedules alongside evaluations — e.g. the
// evaluation service admits plan builds through the same pool so a
// burst of registrations cannot saturate the machine. The call blocks,
// honoring ctx, until the pool can grant at least the admission floor.
// The returned lease must be Released; a lease held across long
// stretches of work should call Sync periodically, otherwise lanes the
// pool revokes toward other callers stay stuck with it until Release.
func (p *Pool) Acquire(ctx context.Context, want int) (*Lease, error) {
	l, err := p.e.Acquire(ctx, want)
	if err != nil {
		return nil, err
	}
	return &Lease{l: l}, nil
}

// Lease is an embedder's claim on pool lanes, from Pool.Acquire until
// Release.
type Lease struct {
	l *exec.Lease
}

// Granted returns the width the lease was admitted with.
func (l *Lease) Granted() int { return l.l.Granted() }

// Width returns the current width (it shrinks when the pool revokes
// lanes toward other callers).
func (l *Lease) Width() int { return l.l.Width() }

// Sync settles the lease against current pool load: lanes revoked
// since the last Sync are returned to the pool immediately, and on a
// drained pool the lease grows back toward its fair share. Call it at
// natural checkpoints of long-running embedder work — a revoked lane
// is otherwise only returned at Release. Returns the settled width.
func (l *Lease) Sync() int { return l.l.Sync() }

// Release returns the lanes to the pool. Idempotent.
func (l *Lease) Release() { l.l.Release() }

// DefaultPool returns the process-wide pool used by evaluators whose
// Options carry no explicit Pool (capacity GOMAXPROCS at first use).
func DefaultPool() *Pool { return &Pool{e: fmm.DefaultPool()} }

package kifmm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRootCtxAPI: the public ctx-first entry points propagate
// cancellation with the typed taxonomy, end to end through evaluator
// construction, evaluation and the GMRES solver.
func TestRootCtxAPI(t *testing.T) {
	pts := FlattenPatches(UniformPatches(21, 1500))
	den := RandomDensities(22, len(pts)/3, 1)
	opt := Options{Kernel: Laplace(), Degree: 4, MaxPoints: 40, Workers: 1}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// Construction.
	if _, err := NewEvaluatorCtx(cancelled, pts, pts, opt); !errors.Is(err, ErrCanceled) {
		t.Fatalf("NewEvaluatorCtx: err = %v, want ErrCanceled", err)
	}
	ev, err := NewEvaluatorCtx(context.Background(), pts, pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()

	// Evaluation.
	if _, err := ev.EvaluateCtx(cancelled, den); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCtx: err = %v, want ErrCanceled and context.Canceled", err)
	}
	if _, err := ev.EvaluateBatchCtx(cancelled, [][]float64{den}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("EvaluateBatchCtx: err = %v, want ErrCanceled", err)
	}
	pot, err := ev.EvaluateCtx(context.Background(), den)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := ev.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pot {
		if pot[i] != legacy[i] {
			t.Fatalf("ctx and legacy evaluation diverge at %d", i)
		}
	}

	// Typed input errors.
	if _, err := ev.EvaluateCtx(context.Background(), den[:5]); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("short densities: err = %v, want ErrInvalidInput", err)
	}
	if code, ok := ErrorCodeOf(nil); ok || code != "" {
		t.Errorf("ErrorCodeOf(nil) = %q, %v; want empty", code, ok)
	}
	if code, ok := ErrorCodeOf(ErrPlanTooLarge); !ok || code != CodePlanTooLarge {
		t.Errorf("ErrorCodeOf(ErrPlanTooLarge) = %q, %v", code, ok)
	}
	if _, err := KernelByName("warp"); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("KernelByName: err = %v, want ErrUnknownKernel", err)
	}
}

// TestSolveGMRESCtxCancelAbortsOperator: cancelling mid-solve stops the
// iteration with the typed error, with the FMM evaluator itself as the
// ctx-aware operator (the paper's Krylov-over-FMM shape).
func TestSolveGMRESCtxCancelAbortsOperator(t *testing.T) {
	pts := FlattenPatches(UniformPatches(23, 800))
	b := RandomDensities(24, len(pts)/3, 1)
	ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 4, MaxPoints: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()

	ctx, cancel := context.WithCancel(context.Background())
	applies := 0
	mv := func(ctx context.Context, dst, x []float64) error {
		applies++
		if applies == 2 {
			cancel()
		}
		pot, err := ev.EvaluateCtx(ctx, x)
		if err != nil {
			return err
		}
		// Shift the diagonal so the system is well conditioned and the
		// solve would otherwise run many iterations.
		for i := range dst {
			dst[i] = pot[i] + 5*x[i]
		}
		return nil
	}
	res, err := SolveGMRESCtx(ctx, mv, b, make([]float64, len(b)), SolverOptions{Tol: 1e-12, MaxIters: 100})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled and context.Canceled", err)
	}
	if res.Converged {
		t.Error("cancelled solve must not converge")
	}
	if applies > 3 {
		t.Errorf("operator ran %d times after cancellation at 2", applies)
	}

	// The uncancelled ctx solve matches the legacy entry point.
	x1 := make([]float64, len(b))
	r1, err := SolveGMRESCtx(context.Background(), mv, b, x1, SolverOptions{Tol: 1e-8})
	if err != nil || !r1.Converged {
		t.Fatalf("ctx solve: %+v, %v", r1, err)
	}
	x2 := make([]float64, len(b))
	legacyMV := func(dst, x []float64) { _ = mv(context.Background(), dst, x) }
	r2, err := SolveGMRES(legacyMV, b, x2, SolverOptions{Tol: 1e-8})
	if err != nil || !r2.Converged {
		t.Fatalf("legacy solve: %+v, %v", r2, err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("ctx and legacy GMRES solutions diverge at %d", i)
		}
	}
}

// TestSolveGMRESCtxDeadline: deadline errors keep their own code
// through the solver.
func TestSolveGMRESCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	mv := func(context.Context, []float64, []float64) error { return nil }
	_, err := SolveGMRESCtx(ctx, mv, []float64{1, 2}, []float64{0, 0}, SolverOptions{})
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded and context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("deadline must not match ErrCanceled")
	}
}

// TestCtxOverheadSanity: a Background-context evaluation must not be
// measurably slower than the legacy path (same engine, same buffers;
// the ctx checks are one atomic load per scheduling chunk). This is a
// coarse sanity bound — the precise <1% criterion lives in the
// benchmarks (BenchmarkEvaluate vs BenchmarkEvaluateCtx).
func TestCtxOverheadSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sanity check skipped in -short mode")
	}
	pts := FlattenPatches(UniformPatches(25, 2000))
	den := RandomDensities(26, len(pts)/3, 1)
	ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 4, MaxPoints: 40, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	if _, err := ev.Evaluate(den); err != nil { // warm caches
		t.Fatal(err)
	}
	const rounds = 3
	var legacy, ctxd time.Duration
	for i := 0; i < rounds; i++ {
		s := time.Now()
		if _, err := ev.Evaluate(den); err != nil {
			t.Fatal(err)
		}
		legacy += time.Since(s)
		s = time.Now()
		if _, err := ev.EvaluateCtx(context.Background(), den); err != nil {
			t.Fatal(err)
		}
		ctxd += time.Since(s)
	}
	// Generous 1.5x bound: this guards against an accidental per-index
	// ctx check, not scheduling noise.
	if ctxd > legacy*3/2 {
		t.Errorf("ctx evaluation %v vs legacy %v — ctx checks are too hot", ctxd, legacy)
	}
}

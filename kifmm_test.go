package kifmm

import (
	"math"
	"testing"
)

func TestPublicAPISequential(t *testing.T) {
	patches := SpherePatches(1, 2000, 3, 0.25)
	pts := FlattenPatches(patches)
	den := RandomDensities(2, 2000, 1)
	ev, err := NewEvaluator(pts, pts, Options{Kernel: Laplace(), Degree: 6, MaxPoints: 40})
	if err != nil {
		t.Fatal(err)
	}
	pot, err := ev.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Direct(Laplace(), pts, pts, den)
	if err != nil {
		t.Fatal(err)
	}
	if e := rel(pot, want); e > 2e-3 {
		t.Errorf("public API error %v", e)
	}
	if ev.Boxes() <= 1 || ev.Depth() < 2 {
		t.Errorf("implausible tree: %d boxes depth %d", ev.Boxes(), ev.Depth())
	}
	if ev.Stats().Total() <= 0 {
		t.Error("stats not recorded")
	}
}

func TestPublicAPIParallel(t *testing.T) {
	patches := CornerPatches(3, 1500, 0.35)
	den := RandomDensities(4, 1500, 3)
	res, err := EvaluateParallel(patches, den, 3, ParallelOptions{
		Options: Options{Kernel: Stokes(1), Degree: 6, MaxPoints: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := FlattenPatches(patches)
	want, err := Direct(Stokes(1), pts, pts, den)
	if err != nil {
		t.Fatal(err)
	}
	if e := rel(res.Pot, want); e > 2e-3 {
		t.Errorf("parallel public API error %v", e)
	}
}

func TestKernelByNamePublic(t *testing.T) {
	for _, n := range []string{"laplace", "modlaplace", "stokes"} {
		k, err := KernelByName(n)
		if err != nil || k.Name() != n {
			t.Errorf("KernelByName(%q) = %v, %v", n, k, err)
		}
	}
	if _, err := KernelByName("nope"); err == nil {
		t.Error("unknown kernel must error")
	}
}

func TestDistributionsShape(t *testing.T) {
	sp := SpherePatches(1, 1000, 8, 0.1)
	if len(sp) != 512 {
		t.Errorf("8x8x8 grid must give 512 patches, got %d", len(sp))
	}
	cp := CornerPatches(1, 800, 0.3)
	if got := len(FlattenPatches(cp)) / 3; got != 800 {
		t.Errorf("corner patches lost points: %d", got)
	}
	up := UniformPatches(1, 100)
	pts := FlattenPatches(up)
	for _, v := range pts {
		if v < -1 || v > 1 {
			t.Fatalf("uniform point outside cube: %v", v)
		}
	}
	den := RandomDensities(1, 10, 3)
	if len(den) != 30 {
		t.Errorf("densities length %d", len(den))
	}
	for _, v := range den {
		if v < 0 || v > 1 {
			t.Errorf("density %v outside [0,1]", v)
		}
	}
}

func rel(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

package cluster

import (
	"encoding/json"

	"repro/internal/kernels"
	"repro/internal/parfmm"
	"repro/internal/wire"
)

// helloMsg is the worker->coordinator handshake (JSON payload of
// fHello): the worker's mesh listener address and its capabilities.
type helloMsg struct {
	Name     string `json:"name,omitempty"`
	PeerAddr string `json:"peer_addr"`
	Lanes    int    `json:"lanes"`
}

// helloAck is the coordinator's handshake reply (JSON payload of
// fHelloAck).
type helloAck struct {
	WorkerID    int64 `json:"worker_id"`
	HeartbeatNS int64 `json:"heartbeat_ns"`
}

// jobHeader is the JSON part of a job-start frame: everything about the
// job except the bulk rank inputs.
type jobHeader struct {
	Job  uint64 `json:"job"`
	Size int    `json:"size"` // total ranks
	// RankLo/RankHi is the receiving worker's contiguous range.
	RankLo int `json:"rank_lo"`
	RankHi int `json:"rank_hi"`
	// Peers maps every rank range to its worker's mesh address.
	Peers []rankRange `json:"peers"`

	Kernel    kernels.Spec `json:"kernel"`
	Degree    int          `json:"degree,omitempty"`
	MaxPoints int          `json:"max_points,omitempty"`
	MaxDepth  int          `json:"max_depth,omitempty"`
	Backend   int          `json:"backend,omitempty"`
	PinvTol   float64      `json:"pinv_tol,omitempty"`
	Trace     bool         `json:"trace,omitempty"`
}

// rankRange is one worker's slice of the rank space.
type rankRange struct {
	Addr string `json:"addr"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// addrOfRank resolves the mesh address owning a rank.
func (h *jobHeader) addrOfRank(rank int) string {
	for _, p := range h.Peers {
		if rank >= p.Lo && rank < p.Hi {
			return p.Addr
		}
	}
	return ""
}

// encodeJobStart assembles a job-start payload: the JSON header plus
// the receiving worker's rank inputs ([RankLo, RankHi)) as raw binary
// arrays.
func encodeJobStart(hdr *jobHeader, inputs []*parfmm.RankInput) ([]byte, error) {
	raw, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	var w wire.Writer
	w.Raw(raw)
	for _, in := range inputs {
		w.F64s(in.Pts)
		w.F64s(in.Den)
		w.I32s(in.GlobalIdx)
	}
	return w.Bytes(), nil
}

// decodeJobStart parses a job-start payload into the header and the
// local rank inputs.
func decodeJobStart(p []byte) (*jobHeader, []*parfmm.RankInput, error) {
	r := wire.NewReader(p)
	raw := r.Raw()
	if err := frameErr(r); err != nil {
		return nil, nil, err
	}
	var hdr jobHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return nil, nil, err
	}
	n := hdr.RankHi - hdr.RankLo
	if n < 0 || n > hdr.Size {
		return nil, nil, errMalformed()
	}
	inputs := make([]*parfmm.RankInput, n)
	for i := range inputs {
		inputs[i] = &parfmm.RankInput{Pts: r.F64s(), Den: r.F64s(), GlobalIdx: r.I32s()}
	}
	if err := frameErr(r); err != nil {
		return nil, nil, err
	}
	return &hdr, inputs, nil
}

// rankResultWire is one rank's result inside a job-result frame.
type rankResultWire struct {
	Rank int
	Pot  []float64
	// TL is the rank's JSON-encoded obs.RankTimeline (empty without
	// tracing). Not hot path: one blob per rank per job.
	TL []byte
}

func encodeJobResult(job uint64, ranks []rankResultWire) []byte {
	var w wire.Writer
	w.U64(job)
	w.U32(uint32(len(ranks)))
	for _, rr := range ranks {
		w.U32(uint32(rr.Rank))
		w.F64s(rr.Pot)
		w.Raw(rr.TL)
	}
	return w.Bytes()
}

func decodeJobResult(p []byte) (job uint64, ranks []rankResultWire, err error) {
	r := wire.NewReader(p)
	job = r.U64()
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n > len(p) {
		return 0, nil, errMalformed()
	}
	ranks = make([]rankResultWire, n)
	for i := range ranks {
		ranks[i].Rank = int(r.U32())
		ranks[i].Pot = r.F64s()
		ranks[i].TL = append([]byte(nil), r.Raw()...)
	}
	return job, ranks, frameErr(r)
}

// encodeJobStatus covers job-error (worker->coordinator) and job-abort
// (coordinator->worker): a job id, a taxonomy code and a message.
func encodeJobStatus(job uint64, code, msg string) []byte {
	var w wire.Writer
	w.U64(job)
	w.Raw([]byte(code))
	w.Raw([]byte(msg))
	return w.Bytes()
}

func decodeJobStatus(p []byte) (job uint64, code, msg string, err error) {
	r := wire.NewReader(p)
	job = r.U64()
	code = string(r.Raw())
	msg = string(r.Raw())
	return job, code, msg, frameErr(r)
}

// collMsg is one rank's collective contribution (fColl payload).
type collMsg struct {
	Job     uint64
	Rank    int
	Kind    byte // collInt64 / collFloat64 / collBarrier
	Op      byte // mpi.ReduceOp
	Seq     uint64
	EntryNS int64
	I64     []int64
	F64     []float64
}

func encodeColl(m *collMsg) []byte {
	var w wire.Writer
	w.U64(m.Job)
	w.U32(uint32(m.Rank))
	w.U8(m.Kind)
	w.U8(m.Op)
	w.U64(m.Seq)
	w.I64(m.EntryNS)
	switch m.Kind {
	case collInt64:
		w.I64s(m.I64)
	case collFloat64:
		w.F64s(m.F64)
	}
	return w.Bytes()
}

func decodeColl(p []byte) (*collMsg, error) {
	r := wire.NewReader(p)
	m := &collMsg{
		Job:  r.U64(),
		Rank: int(r.U32()),
		Kind: r.U8(),
		Op:   r.U8(),
	}
	m.Seq = r.U64()
	m.EntryNS = r.I64()
	switch m.Kind {
	case collInt64:
		m.I64 = r.I64s()
	case collFloat64:
		m.F64 = r.F64s()
	}
	return m, frameErr(r)
}

// collRespMsg is the coordinator's combined answer to one rank (the
// fCollResp payload). LastRank/LastEntryNS name the last rank to enter
// — the synchronization dependency the critical-path walk follows.
type collRespMsg struct {
	Job         uint64
	Rank        int
	Seq         uint64
	LastRank    int
	LastEntryNS int64
	I64         []int64
	F64         []float64
	Kind        byte
}

func encodeCollResp(m *collRespMsg) []byte {
	var w wire.Writer
	w.U64(m.Job)
	w.U32(uint32(m.Rank))
	w.U64(m.Seq)
	w.U32(uint32(m.LastRank))
	w.I64(m.LastEntryNS)
	w.U8(m.Kind)
	switch m.Kind {
	case collInt64:
		w.I64s(m.I64)
	case collFloat64:
		w.F64s(m.F64)
	}
	return w.Bytes()
}

func decodeCollResp(p []byte) (*collRespMsg, error) {
	r := wire.NewReader(p)
	m := &collRespMsg{Job: r.U64(), Rank: int(r.U32())}
	m.Seq = r.U64()
	m.LastRank = int(r.U32())
	m.LastEntryNS = r.I64()
	m.Kind = r.U8()
	switch m.Kind {
	case collInt64:
		m.I64 = r.I64s()
	case collFloat64:
		m.F64 = r.F64s()
	}
	return m, frameErr(r)
}

// p2pMsg is one rank-to-rank payload on the mesh (fP2P). SentNS is the
// sender's clock offset at send completion (its job-origin wall clock),
// carried so the receiver's ledger event gets a cross-rank dependency
// timestamp.
type p2pMsg struct {
	Job    uint64
	Src    int
	Dst    int
	Tag    int
	SentNS int64
	Data   []float64
}

func encodeP2P(m *p2pMsg) []byte {
	var w wire.Writer
	w.U64(m.Job)
	w.U32(uint32(m.Src))
	w.U32(uint32(m.Dst))
	w.U64(uint64(m.Tag))
	w.I64(m.SentNS)
	w.F64s(m.Data)
	return w.Bytes()
}

func decodeP2P(p []byte) (*p2pMsg, error) {
	r := wire.NewReader(p)
	m := &p2pMsg{
		Job: r.U64(),
		Src: int(r.U32()),
		Dst: int(r.U32()),
		Tag: int(r.U64()),
	}
	m.SentNS = r.I64()
	m.Data = r.F64s()
	return m, frameErr(r)
}

package cluster

import (
	"encoding/json"

	"repro/internal/kernels"
	"repro/internal/parfmm"
)

// helloMsg is the worker->coordinator handshake (JSON payload of
// fHello): the worker's mesh listener address and its capabilities.
type helloMsg struct {
	Name     string `json:"name,omitempty"`
	PeerAddr string `json:"peer_addr"`
	Lanes    int    `json:"lanes"`
}

// helloAck is the coordinator's handshake reply (JSON payload of
// fHelloAck).
type helloAck struct {
	WorkerID    int64 `json:"worker_id"`
	HeartbeatNS int64 `json:"heartbeat_ns"`
}

// jobHeader is the JSON part of a job-start frame: everything about the
// job except the bulk rank inputs.
type jobHeader struct {
	Job  uint64 `json:"job"`
	Size int    `json:"size"` // total ranks
	// RankLo/RankHi is the receiving worker's contiguous range.
	RankLo int `json:"rank_lo"`
	RankHi int `json:"rank_hi"`
	// Peers maps every rank range to its worker's mesh address.
	Peers []rankRange `json:"peers"`

	Kernel    kernels.Spec `json:"kernel"`
	Degree    int          `json:"degree,omitempty"`
	MaxPoints int          `json:"max_points,omitempty"`
	MaxDepth  int          `json:"max_depth,omitempty"`
	Backend   int          `json:"backend,omitempty"`
	PinvTol   float64      `json:"pinv_tol,omitempty"`
	Trace     bool         `json:"trace,omitempty"`
}

// rankRange is one worker's slice of the rank space.
type rankRange struct {
	Addr string `json:"addr"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// addrOfRank resolves the mesh address owning a rank.
func (h *jobHeader) addrOfRank(rank int) string {
	for _, p := range h.Peers {
		if rank >= p.Lo && rank < p.Hi {
			return p.Addr
		}
	}
	return ""
}

// encodeJobStart assembles a job-start payload: the JSON header plus
// the receiving worker's rank inputs ([RankLo, RankHi)) as raw binary
// arrays.
func encodeJobStart(hdr *jobHeader, inputs []*parfmm.RankInput) ([]byte, error) {
	raw, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	var w wbuf
	w.raw(raw)
	for _, in := range inputs {
		w.f64s(in.Pts)
		w.f64s(in.Den)
		w.i32s(in.GlobalIdx)
	}
	return w.b, nil
}

// decodeJobStart parses a job-start payload into the header and the
// local rank inputs.
func decodeJobStart(p []byte) (*jobHeader, []*parfmm.RankInput, error) {
	r := rbuf{b: p}
	raw := r.raw()
	if err := r.err(); err != nil {
		return nil, nil, err
	}
	var hdr jobHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return nil, nil, err
	}
	n := hdr.RankHi - hdr.RankLo
	if n < 0 || n > hdr.Size {
		return nil, nil, r.errMalformed()
	}
	inputs := make([]*parfmm.RankInput, n)
	for i := range inputs {
		inputs[i] = &parfmm.RankInput{Pts: r.f64s(), Den: r.f64s(), GlobalIdx: r.i32s()}
	}
	if err := r.err(); err != nil {
		return nil, nil, err
	}
	return &hdr, inputs, nil
}

// rankResultWire is one rank's result inside a job-result frame.
type rankResultWire struct {
	Rank int
	Pot  []float64
	// TL is the rank's JSON-encoded obs.RankTimeline (empty without
	// tracing). Not hot path: one blob per rank per job.
	TL []byte
}

func encodeJobResult(job uint64, ranks []rankResultWire) []byte {
	var w wbuf
	w.u64(job)
	w.u32(uint32(len(ranks)))
	for _, rr := range ranks {
		w.u32(uint32(rr.Rank))
		w.f64s(rr.Pot)
		w.raw(rr.TL)
	}
	return w.b
}

func decodeJobResult(p []byte) (job uint64, ranks []rankResultWire, err error) {
	r := rbuf{b: p}
	job = r.u64()
	n := int(r.u32())
	if r.bad || n < 0 || n > len(p) {
		return 0, nil, r.errMalformed()
	}
	ranks = make([]rankResultWire, n)
	for i := range ranks {
		ranks[i].Rank = int(r.u32())
		ranks[i].Pot = r.f64s()
		ranks[i].TL = append([]byte(nil), r.raw()...)
	}
	return job, ranks, r.err()
}

// encodeJobStatus covers job-error (worker->coordinator) and job-abort
// (coordinator->worker): a job id, a taxonomy code and a message.
func encodeJobStatus(job uint64, code, msg string) []byte {
	var w wbuf
	w.u64(job)
	w.raw([]byte(code))
	w.raw([]byte(msg))
	return w.b
}

func decodeJobStatus(p []byte) (job uint64, code, msg string, err error) {
	r := rbuf{b: p}
	job = r.u64()
	code = string(r.raw())
	msg = string(r.raw())
	return job, code, msg, r.err()
}

// collMsg is one rank's collective contribution (fColl payload).
type collMsg struct {
	Job     uint64
	Rank    int
	Kind    byte // collInt64 / collFloat64 / collBarrier
	Op      byte // mpi.ReduceOp
	Seq     uint64
	EntryNS int64
	I64     []int64
	F64     []float64
}

func encodeColl(m *collMsg) []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.Rank))
	w.u8(m.Kind)
	w.u8(m.Op)
	w.u64(m.Seq)
	w.i64(m.EntryNS)
	switch m.Kind {
	case collInt64:
		w.i64s(m.I64)
	case collFloat64:
		w.f64s(m.F64)
	}
	return w.b
}

func decodeColl(p []byte) (*collMsg, error) {
	r := rbuf{b: p}
	m := &collMsg{
		Job:  r.u64(),
		Rank: int(r.u32()),
		Kind: r.u8(),
		Op:   r.u8(),
	}
	m.Seq = r.u64()
	m.EntryNS = r.i64()
	switch m.Kind {
	case collInt64:
		m.I64 = r.i64s()
	case collFloat64:
		m.F64 = r.f64s()
	}
	return m, r.err()
}

// collRespMsg is the coordinator's combined answer to one rank (the
// fCollResp payload). LastRank/LastEntryNS name the last rank to enter
// — the synchronization dependency the critical-path walk follows.
type collRespMsg struct {
	Job         uint64
	Rank        int
	Seq         uint64
	LastRank    int
	LastEntryNS int64
	I64         []int64
	F64         []float64
	Kind        byte
}

func encodeCollResp(m *collRespMsg) []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.Rank))
	w.u64(m.Seq)
	w.u32(uint32(m.LastRank))
	w.i64(m.LastEntryNS)
	w.u8(m.Kind)
	switch m.Kind {
	case collInt64:
		w.i64s(m.I64)
	case collFloat64:
		w.f64s(m.F64)
	}
	return w.b
}

func decodeCollResp(p []byte) (*collRespMsg, error) {
	r := rbuf{b: p}
	m := &collRespMsg{Job: r.u64(), Rank: int(r.u32())}
	m.Seq = r.u64()
	m.LastRank = int(r.u32())
	m.LastEntryNS = r.i64()
	m.Kind = r.u8()
	switch m.Kind {
	case collInt64:
		m.I64 = r.i64s()
	case collFloat64:
		m.F64 = r.f64s()
	}
	return m, r.err()
}

// p2pMsg is one rank-to-rank payload on the mesh (fP2P). SentNS is the
// sender's clock offset at send completion (its job-origin wall clock),
// carried so the receiver's ledger event gets a cross-rank dependency
// timestamp.
type p2pMsg struct {
	Job    uint64
	Src    int
	Dst    int
	Tag    int
	SentNS int64
	Data   []float64
}

func encodeP2P(m *p2pMsg) []byte {
	var w wbuf
	w.u64(m.Job)
	w.u32(uint32(m.Src))
	w.u32(uint32(m.Dst))
	w.u64(uint64(m.Tag))
	w.i64(m.SentNS)
	w.f64s(m.Data)
	return w.b
}

func decodeP2P(p []byte) (*p2pMsg, error) {
	r := rbuf{b: p}
	m := &p2pMsg{
		Job: r.u64(),
		Src: int(r.u32()),
		Dst: int(r.u32()),
		Tag: int(r.u64()),
	}
	m.SentNS = r.i64()
	m.Data = r.f64s()
	return m, r.err()
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/parfmm"
)

// CoordinatorConfig configures the cluster coordinator.
type CoordinatorConfig struct {
	// Heartbeat is the expected worker heartbeat interval (default 2s).
	// A worker silent for two intervals is declared lost.
	Heartbeat time.Duration
	// MaxRanksPerWorker caps how many ranks one worker hosts per job
	// (0 = the worker's advertised lane count).
	MaxRanksPerWorker int
	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger
}

// workerConn is the coordinator's view of one joined worker.
type workerConn struct {
	id       int64
	name     string
	addr     string // mesh address
	lanes    int
	fc       *framedConn
	lastBeat atomic.Int64 // unix nanos of the last frame received
	drained  atomic.Bool
}

func (wc *workerConn) beat() { wc.lastBeat.Store(time.Now().UnixNano()) }

// jobPart is one worker's contiguous rank range in a job.
type jobPart struct {
	wc     *workerConn
	lo, hi int
}

// collState accumulates one collective's contributions across ranks.
type collState struct {
	kind    byte
	op      mpi.ReduceOp
	arrived int
	entryNS []int64
	i64     [][]int64
	f64     [][]float64
}

// coordJob is one in-flight distributed evaluation.
type coordJob struct {
	id     uint64
	size   int
	inputs []*parfmm.RankInput
	parts  []jobPart

	mu        sync.Mutex
	colls     map[uint64]*collState
	pots      [][]float64
	tls       []*obs.RankTimeline
	reported  []bool // per rank: result received (a rank's Pot may be empty)
	remaining int    // ranks whose results are outstanding

	done     chan struct{}
	err      error
	finished bool
}

// finish resolves the job exactly once.
func (j *coordJob) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	j.err = err
	close(j.done)
}

// owns reports whether wc hosts any of the job's ranks.
func (j *coordJob) owns(wc *workerConn) bool {
	for _, p := range j.parts {
		if p.wc == wc {
			return true
		}
	}
	return false
}

// partOf returns the part hosting rank r.
func (j *coordJob) partOf(r int) *jobPart {
	for i := range j.parts {
		if r >= j.parts[i].lo && r < j.parts[i].hi {
			return &j.parts[i]
		}
	}
	return nil
}

// Coordinator accepts worker connections, tracks their health, and
// scatters cluster-sized evaluations across them: it Morton-partitions
// the request geometry into contiguous rank ranges (one per worker),
// streams each worker its share, brokers the algorithm's collectives,
// and gathers potentials and per-rank timelines back.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener
	log *slog.Logger

	mu         sync.Mutex
	workers    map[int64]*workerConn
	jobs       map[uint64]*coordJob
	nextWorker int64
	nextJob    uint64
	closed     bool
	passObs    func(pass string, seconds float64)

	// evalMu serializes cluster evaluations: the collective broker and
	// the workers' rank goroutines assume one job's traffic at a time,
	// and a single 1-coordinator cluster gains nothing from interleaving
	// two scatter/gather cycles. Queued requests wait here.
	evalMu sync.Mutex

	scatterBytes atomic.Int64
	gatherBytes  atomic.Int64
	evals        atomic.Int64
	lost         atomic.Int64

	wg sync.WaitGroup
}

// StartCoordinator listens on addr (e.g. "127.0.0.1:0") and serves
// worker joins until Close. ctx bounds the coordinator's lifetime:
// cancelling it closes the coordinator, failing in-flight jobs and
// dropping every worker connection.
func StartCoordinator(ctx context.Context, addr string, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, errs.Newf(errs.CodeInternal, "cluster: coordinator listen: %w", err)
	}
	c := &Coordinator{
		cfg:     cfg,
		ln:      ln,
		log:     cfg.Logger,
		workers: make(map[int64]*workerConn),
		jobs:    make(map[uint64]*coordJob),
	}
	if c.log == nil {
		c.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	context.AfterFunc(ctx, func() { c.Close() })
	c.wg.Add(2)
	go c.acceptLoop()
	go c.monitor()
	return c, nil
}

// Addr is the coordinator's control listener address workers join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

// handleConn runs one worker's session: handshake, then a frame loop
// until the connection drops.
func (c *Coordinator) handleConn(conn net.Conn) {
	fc := newFramedConn(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, payload, err := fc.readFrame()
	if err != nil || ft != fHello {
		fc.Close()
		return
	}
	var hello helloMsg
	if err := json.Unmarshal(payload, &hello); err != nil || hello.PeerAddr == "" || hello.Lanes < 1 {
		fc.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	wc := &workerConn{name: hello.Name, addr: hello.PeerAddr, lanes: hello.Lanes, fc: fc}
	wc.beat()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fc.Close()
		return
	}
	c.nextWorker++
	wc.id = c.nextWorker
	c.workers[wc.id] = wc
	c.mu.Unlock()

	ack, _ := json.Marshal(helloAck{WorkerID: wc.id, HeartbeatNS: int64(c.cfg.Heartbeat)})
	if err := fc.writeFrame(fHelloAck, ack); err != nil {
		c.dropWorker(wc, err)
		return
	}
	c.log.Info("cluster worker joined", "worker_id", wc.id, "name", wc.name, "mesh_addr", wc.addr, "lanes", wc.lanes)

	for {
		ft, payload, err := fc.readFrame()
		if err != nil {
			c.dropWorker(wc, err)
			return
		}
		wc.beat()
		switch ft {
		case fHeartbeat:
			// beat() above is the whole point.
		case fDrain:
			wc.drained.Store(true)
		case fColl:
			if m, err := decodeColl(payload); err == nil {
				c.handleColl(m)
			}
		case fJobResult:
			if job, ranks, err := decodeJobResult(payload); err == nil {
				c.gatherBytes.Add(int64(len(payload)))
				c.handleResult(job, ranks)
			}
		case fJobError:
			if job, code, msg, err := decodeJobStatus(payload); err == nil {
				c.failJob(job, errs.New(errs.Code(code), msg))
			}
		}
	}
}

// monitor declares workers lost after two silent heartbeat intervals.
func (c *Coordinator) monitor() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Heartbeat / 2)
	defer t.Stop()
	for range t.C {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		var stale []*workerConn
		cut := time.Now().Add(-2 * c.cfg.Heartbeat).UnixNano()
		for _, wc := range c.workers {
			if wc.lastBeat.Load() < cut {
				stale = append(stale, wc)
			}
		}
		c.mu.Unlock()
		for _, wc := range stale {
			c.dropWorker(wc, fmt.Errorf("heartbeat timed out"))
		}
	}
}

// dropWorker removes a worker and fails every job it participated in
// with a typed worker_lost error — the no-hang guarantee: a blocked
// Evaluate resolves within a heartbeat interval of the loss, not at
// some TCP timeout.
func (c *Coordinator) dropWorker(wc *workerConn, cause error) {
	c.mu.Lock()
	if _, ok := c.workers[wc.id]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.workers, wc.id)
	var victims []*coordJob
	for _, j := range c.jobs {
		if j.owns(wc) {
			victims = append(victims, j)
		}
	}
	closed := c.closed
	c.mu.Unlock()

	wc.fc.Close()
	if !closed && !wc.drained.Load() {
		// A drained worker disconnecting is a graceful exit, not a loss.
		c.lost.Add(1)
		c.log.Warn("cluster worker lost", "worker_id", wc.id, "name", wc.name, "cause", cause)
	}
	for _, j := range victims {
		err := errs.Newf(errs.CodeWorkerLost, "kifmm: worker %d (%s) lost during evaluation: %v", wc.id, wc.name, cause)
		c.abortJob(j, err, wc)
		j.finish(err)
	}
}

// abortJob tells the job's surviving workers to unwind their ranks.
func (c *Coordinator) abortJob(j *coordJob, err error, except *workerConn) {
	code := errs.CodeInternal
	if cd, ok := errs.CodeOf(err); ok {
		code = cd
	}
	payload := encodeJobStatus(j.id, string(code), err.Error())
	for _, p := range j.parts {
		if p.wc == except {
			continue
		}
		_ = p.wc.fc.writeFrame(fJobAbort, payload)
	}
}

func (c *Coordinator) jobByID(id uint64) *coordJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

func (c *Coordinator) failJob(id uint64, err error) {
	j := c.jobByID(id)
	if j == nil {
		return
	}
	c.abortJob(j, err, nil)
	j.finish(err)
}

// handleColl is the collective broker: it accumulates one contribution
// per rank, and once all ranks arrived combines elementwise and answers
// each rank through its worker's control connection, naming the last
// rank to enter (the synchronization dependency for the critical path).
func (c *Coordinator) handleColl(m *collMsg) {
	j := c.jobByID(m.Job)
	if j == nil || m.Rank < 0 || m.Rank >= j.size {
		return
	}
	j.mu.Lock()
	cs := j.colls[m.Seq]
	if cs == nil {
		cs = &collState{
			kind:    m.Kind,
			op:      mpi.ReduceOp(m.Op),
			entryNS: make([]int64, j.size),
			i64:     make([][]int64, j.size),
			f64:     make([][]float64, j.size),
		}
		j.colls[m.Seq] = cs
	}
	cs.entryNS[m.Rank] = m.EntryNS
	cs.i64[m.Rank] = m.I64
	cs.f64[m.Rank] = m.F64
	cs.arrived++
	ready := cs.arrived == j.size
	if ready {
		delete(j.colls, m.Seq)
	}
	j.mu.Unlock()
	if !ready {
		return
	}

	last := 0
	for r, e := range cs.entryNS {
		if e > cs.entryNS[last] {
			last = r
		}
	}
	resp := &collRespMsg{Job: j.id, Seq: m.Seq, LastRank: last, LastEntryNS: cs.entryNS[last], Kind: cs.kind}
	switch cs.kind {
	case collInt64:
		resp.I64 = reduceInt64(cs.op, cs.i64)
	case collFloat64:
		resp.F64 = reduceFloat64(cs.op, cs.f64)
	}
	for r := 0; r < j.size; r++ {
		p := j.partOf(r)
		if p == nil {
			continue
		}
		resp.Rank = r
		if err := p.wc.fc.writeFrame(fCollResp, encodeCollResp(resp)); err != nil {
			c.dropWorker(p.wc, err)
		}
	}
}

func reduceInt64(op mpi.ReduceOp, all [][]int64) []int64 {
	out := append([]int64(nil), all[0]...)
	for _, in := range all[1:] {
		for i, v := range in {
			switch op {
			case mpi.OpSum:
				out[i] += v
			case mpi.OpMax:
				if v > out[i] {
					out[i] = v
				}
			case mpi.OpMin:
				if v < out[i] {
					out[i] = v
				}
			}
		}
	}
	return out
}

func reduceFloat64(op mpi.ReduceOp, all [][]float64) []float64 {
	out := append([]float64(nil), all[0]...)
	for _, in := range all[1:] {
		for i, v := range in {
			switch op {
			case mpi.OpSum:
				out[i] += v
			case mpi.OpMax:
				if v > out[i] {
					out[i] = v
				}
			case mpi.OpMin:
				if v < out[i] {
					out[i] = v
				}
			}
		}
	}
	return out
}

// handleResult records one worker's rank results; the last one resolves
// the job.
func (c *Coordinator) handleResult(id uint64, ranks []rankResultWire) {
	j := c.jobByID(id)
	if j == nil {
		return
	}
	j.mu.Lock()
	for _, rr := range ranks {
		if rr.Rank < 0 || rr.Rank >= j.size || j.reported[rr.Rank] {
			continue
		}
		j.reported[rr.Rank] = true
		j.pots[rr.Rank] = rr.Pot
		if len(rr.TL) > 0 {
			var tl obs.RankTimeline
			if err := json.Unmarshal(rr.TL, &tl); err == nil {
				j.tls[rr.Rank] = &tl
			}
		}
		j.remaining--
	}
	doneNow := j.remaining == 0
	j.mu.Unlock()
	if doneNow {
		j.finish(nil)
	}
}

// EvalRequest is one distributed evaluation: sources act on themselves
// (the service's one-shot shape) under the named kernel.
type EvalRequest struct {
	Src []float64 // flat xyz
	Den []float64 // SourceDim components per point

	Kernel    kernels.Spec
	Degree    int
	MaxPoints int
	MaxDepth  int
	Backend   int
	PinvTol   float64
}

// EvalReport describes how a cluster evaluation ran.
type EvalReport struct {
	// Ranks is the job's rank count, Workers how many nodes hosted them.
	Ranks   int
	Workers int
	// ScatterBytes/GatherBytes are this job's control-plane volumes
	// (inputs out, results back; mesh traffic is in Timeline's ledger).
	ScatterBytes int64
	GatherBytes  int64
	// Timeline is the merged per-rank timeline from the real-transport
	// ledger — the same shape the simulated runs produce.
	Timeline *obs.Timeline
	Wall     time.Duration
}

// Evaluate scatters one evaluation across the connected workers and
// gathers the potentials, in the caller's global point order. It fails
// fast with a worker_lost error when no workers are connected (the
// degraded mode: single-node serving stays up, cluster-sized requests
// are rejected) or when a participant drops mid-job.
func (c *Coordinator) Evaluate(ctx context.Context, req EvalRequest) ([]float64, *EvalReport, error) {
	kern, err := kernels.FromSpec(req.Kernel)
	if err != nil {
		return nil, nil, err
	}
	sd, td := kern.SourceDim(), kern.TargetDim()
	n := len(req.Src) / 3
	if n == 0 || len(req.Src) != 3*n {
		return nil, nil, errs.Newf(errs.CodeInvalidInput, "kifmm: cluster evaluation needs flat xyz sources, got length %d", len(req.Src))
	}
	if len(req.Den) != n*sd {
		return nil, nil, errs.Newf(errs.CodeInvalidInput, "kifmm: cluster density length %d, want %d", len(req.Den), n*sd)
	}

	c.evalMu.Lock()
	defer c.evalMu.Unlock()
	start := time.Now()

	// Plan rank ranges over the live, undrained workers.
	c.mu.Lock()
	var parts []jobPart
	size := 0
	for _, wc := range c.workers {
		if wc.drained.Load() {
			continue
		}
		r := wc.lanes
		if c.cfg.MaxRanksPerWorker > 0 && r > c.cfg.MaxRanksPerWorker {
			r = c.cfg.MaxRanksPerWorker
		}
		if size+r > n {
			r = n - size
		}
		if r < 1 {
			continue
		}
		parts = append(parts, jobPart{wc: wc, lo: size, hi: size + r})
		size += r
	}
	if len(parts) == 0 {
		c.mu.Unlock()
		return nil, nil, errs.New(errs.CodeWorkerLost, "kifmm: no cluster workers connected")
	}
	c.nextJob++
	job := &coordJob{
		id:       c.nextJob,
		size:     size,
		parts:    parts,
		colls:    make(map[uint64]*collState),
		pots:     make([][]float64, size),
		tls:      make([]*obs.RankTimeline, size),
		reported: make([]bool, size),
		done:     make(chan struct{}),
	}
	job.remaining = size
	c.jobs[job.id] = job
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.jobs, job.id)
		c.mu.Unlock()
	}()

	job.inputs = parfmm.PartitionPoints(req.Src, req.Den, sd, size)

	// Scatter: each worker gets the shared header plus its own shares.
	peers := make([]rankRange, len(parts))
	for i, p := range parts {
		peers[i] = rankRange{Addr: p.wc.addr, Lo: p.lo, Hi: p.hi}
	}
	var scatter int64
	for _, p := range parts {
		hdr := &jobHeader{
			Job: job.id, Size: size, RankLo: p.lo, RankHi: p.hi, Peers: peers,
			Kernel: req.Kernel, Degree: req.Degree, MaxPoints: req.MaxPoints,
			MaxDepth: req.MaxDepth, Backend: req.Backend, PinvTol: req.PinvTol,
			// Always trace: the ledger is cheap at cluster scale and
			// feeds the per-pass wire metrics and /v1 trace surfaces.
			Trace: true,
		}
		payload, err := encodeJobStart(hdr, job.inputs[p.lo:p.hi])
		if err != nil {
			err = errs.Wrap(errs.CodeInternal, err)
			c.abortJob(job, err, nil)
			job.finish(err)
			return nil, nil, err
		}
		if werr := p.wc.fc.writeFrame(fJobStart, payload); werr != nil {
			c.dropWorker(p.wc, werr)
			break // dropWorker already failed the job
		}
		scatter += int64(len(payload))
	}
	c.scatterBytes.Add(scatter)

	select {
	case <-job.done:
	case <-ctx.Done():
		err := errs.FromContext(ctx.Err())
		c.abortJob(job, err, nil)
		job.finish(err)
		<-job.done
	}
	if job.err != nil {
		return nil, nil, job.err
	}
	c.evals.Add(1)

	// Gather: scatter each rank's potentials back to global point order.
	pot := make([]float64, n*td)
	for r := 0; r < size; r++ {
		idx := job.inputs[r].GlobalIdx
		rp := job.pots[r]
		if len(rp) != len(idx)*td {
			return nil, nil, errs.Newf(errs.CodeInternal, "kifmm: rank %d returned %d potentials, want %d", r, len(rp), len(idx)*td)
		}
		for i, g := range idx {
			copy(pot[int(g)*td:(int(g)+1)*td], rp[i*td:(i+1)*td])
		}
	}

	tl := obs.MergeTimeline(job.tls)
	c.observePasses(tl)
	report := &EvalReport{
		Ranks: size, Workers: len(parts),
		ScatterBytes: scatter, GatherBytes: c.gatherBytes.Load(),
		Timeline: tl, Wall: time.Since(start),
	}
	return pot, report, nil
}

// commPasses are the span names of the algorithm's communication
// passes (the Algorithm-1 gather/scatter halves), fed to the pass
// observer as per-pass wire seconds.
var commPasses = map[string]bool{
	"source_gather":    true,
	"source_exchange":  true,
	"density_gather":   true,
	"density_exchange": true,
}

// SetPassObserver installs fn to receive per-pass wire seconds after
// each cluster evaluation (the service bridges this into its
// kifmm_cluster_pass_wire_seconds histogram).
func (c *Coordinator) SetPassObserver(fn func(pass string, seconds float64)) {
	c.mu.Lock()
	c.passObs = fn
	c.mu.Unlock()
}

func (c *Coordinator) observePasses(tl *obs.Timeline) {
	c.mu.Lock()
	fn := c.passObs
	c.mu.Unlock()
	if fn == nil {
		return
	}
	var walk func(s *obs.VSpan)
	walk = func(s *obs.VSpan) {
		if s == nil {
			return
		}
		if commPasses[s.Name] {
			fn(s.Name, (s.End - s.Start).Seconds())
		}
		for _, ch := range s.Children {
			walk(ch)
		}
	}
	for _, rt := range tl.Ranks {
		walk(rt.Root)
	}
}

// Workers is the live worker count.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// MaxHeartbeatAge is the staleness of the quietest worker's last frame
// (zero with no workers) — the service's cluster-health gauge.
func (c *Coordinator) MaxHeartbeatAge() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var oldest int64
	for _, wc := range c.workers {
		if b := wc.lastBeat.Load(); oldest == 0 || b < oldest {
			oldest = b
		}
	}
	if oldest == 0 {
		return 0
	}
	return time.Since(time.Unix(0, oldest))
}

// ScatterBytes is the cumulative job-input volume sent to workers.
func (c *Coordinator) ScatterBytes() int64 { return c.scatterBytes.Load() }

// GatherBytes is the cumulative result volume received from workers.
func (c *Coordinator) GatherBytes() int64 { return c.gatherBytes.Load() }

// Evals is the count of completed cluster evaluations.
func (c *Coordinator) Evals() int64 { return c.evals.Load() }

// WorkersLost counts workers dropped by disconnect or heartbeat
// timeout.
func (c *Coordinator) WorkersLost() int64 { return c.lost.Load() }

// Close stops the coordinator: the listener closes, every worker
// connection drops, and in-flight jobs fail.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	workers := make([]*workerConn, 0, len(c.workers))
	for _, wc := range c.workers {
		workers = append(workers, wc)
	}
	c.mu.Unlock()
	c.ln.Close()
	for _, wc := range workers {
		c.dropWorker(wc, fmt.Errorf("coordinator shutting down"))
	}
	c.wg.Wait()
	return nil
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/errs"
	"repro/internal/exec"
	"repro/internal/fmm"
	"repro/internal/kernels"
	"repro/internal/parfmm"
)

// WorkerConfig configures a cluster worker node.
type WorkerConfig struct {
	// Coordinator is the coordinator's control address (required).
	Coordinator string
	// Listen is the worker's mesh listener address for rank-to-rank
	// traffic (default "127.0.0.1:0" — loopback with an ephemeral port;
	// set an externally reachable address for a real multi-host run).
	Listen string
	// Name labels the worker in coordinator logs and metrics.
	Name string
	// Lanes is the advertised capacity: how many ranks this worker
	// accepts per job. Default: the pool's capacity, else GOMAXPROCS.
	Lanes int
	// Pool is the worker's local scheduler — the elastic lane pool job
	// rank execution is admitted through. Default: a private pool of
	// Lanes lanes.
	Pool *exec.Elastic
	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Worker is a cluster worker node: it dials the coordinator, joins with
// a hello/capabilities handshake, heartbeats, accepts mesh connections
// from peer workers, and runs its contiguous rank range of each job via
// parfmm.EvaluateRank over the wire transport.
type Worker struct {
	cfg  WorkerConfig
	id   int64
	ctrl *framedConn
	ln   net.Listener
	pool *exec.Elastic
	log  *slog.Logger
	hb   time.Duration

	mu      sync.Mutex
	jobs    map[uint64]*workerJob
	done    []uint64 // ring of recently finished job ids (stale frames drop)
	peers   map[string]*framedConn
	inbound []*framedConn // accepted mesh connections
	closed  bool

	jobWG sync.WaitGroup // in-flight job runners
	wg    sync.WaitGroup // loops and mesh readers

	// runCtx bounds the worker's job admissions; it is derived from the
	// StartWorker ctx and cancelled at teardown, so queued pool waits
	// unblock when either the caller or the worker itself shuts down.
	runCtx    context.Context
	cancelRun context.CancelFunc
}

// StartWorker connects to a coordinator and joins the cluster. ctx
// bounds the worker's lifetime: cancelling it kills the worker (the
// immediate, non-draining shutdown). The returned worker otherwise
// serves jobs until Close (graceful drain) or Kill.
func StartWorker(ctx context.Context, cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errs.New(errs.CodeInvalidInput, "cluster: WorkerConfig.Coordinator is required")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Lanes <= 0 {
		if cfg.Pool != nil {
			cfg.Lanes = cfg.Pool.Cap()
		} else {
			cfg.Lanes = runtime.GOMAXPROCS(0)
		}
	}
	w := &Worker{
		cfg:   cfg,
		pool:  cfg.Pool,
		log:   cfg.Logger,
		jobs:  make(map[uint64]*workerJob),
		peers: make(map[string]*framedConn),
	}
	if w.pool == nil {
		w.pool = exec.NewElastic(cfg.Lanes)
	}
	if w.log == nil {
		w.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, errs.Newf(errs.CodeInternal, "cluster: worker listen: %w", err)
	}
	w.ln = ln

	conn, err := net.Dial("tcp", cfg.Coordinator)
	if err != nil {
		ln.Close()
		return nil, errs.Newf(errs.CodeInternal, "cluster: dial coordinator %s: %w", cfg.Coordinator, err)
	}
	w.ctrl = newFramedConn(conn)

	hello, err := json.Marshal(helloMsg{Name: cfg.Name, PeerAddr: ln.Addr().String(), Lanes: cfg.Lanes})
	if err == nil {
		err = w.ctrl.writeFrame(fHello, hello)
	}
	if err == nil {
		err = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	}
	var ack helloAck
	if err == nil {
		var ft frameType
		var payload []byte
		ft, payload, err = w.ctrl.readFrame()
		if err == nil && ft != fHelloAck {
			err = fmt.Errorf("cluster: expected hello ack, got frame type %d", ft)
		}
		if err == nil {
			err = json.Unmarshal(payload, &ack)
		}
	}
	if err == nil {
		err = conn.SetReadDeadline(time.Time{})
	}
	if err != nil {
		conn.Close()
		ln.Close()
		return nil, errs.Typed(fmt.Errorf("cluster: handshake with %s: %w", cfg.Coordinator, err), errs.CodeInternal)
	}
	w.id = ack.WorkerID
	w.hb = time.Duration(ack.HeartbeatNS)
	if w.hb <= 0 {
		w.hb = 2 * time.Second
	}
	w.log.Info("cluster worker joined", "worker_id", w.id, "coordinator", cfg.Coordinator, "mesh_addr", ln.Addr().String(), "lanes", cfg.Lanes)

	w.runCtx, w.cancelRun = context.WithCancel(ctx)
	context.AfterFunc(ctx, w.Kill)
	w.wg.Add(3)
	go w.ctrlLoop()
	go w.heartbeatLoop()
	go w.acceptLoop()
	return w, nil
}

// ID is the coordinator-assigned worker id.
func (w *Worker) ID() int64 { return w.id }

// Addr is the worker's mesh listener address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Pool exposes the worker's local scheduler.
func (w *Worker) Pool() *exec.Elastic { return w.pool }

// ctrlLoop reads coordinator frames: job dispatch, aborts, collective
// responses. A read error means the coordinator is gone — every
// in-flight job aborts.
func (w *Worker) ctrlLoop() {
	defer w.wg.Done()
	for {
		ft, payload, err := w.ctrl.readFrame()
		if err != nil {
			w.abortAll(errs.Newf(errs.CodeWorkerLost, "kifmm: coordinator connection lost: %v", err))
			return
		}
		switch ft {
		case fJobStart:
			hdr, inputs, err := decodeJobStart(payload)
			if err != nil {
				w.log.Warn("cluster worker: bad job start", "err", err)
				continue
			}
			w.startJob(hdr, inputs)
		case fJobAbort:
			job, code, msg, err := decodeJobStatus(payload)
			if err != nil {
				continue
			}
			if j := w.lookupJob(job); j != nil {
				j.abort(errs.New(errs.Code(code), msg))
			}
		case fCollResp:
			m, err := decodeCollResp(payload)
			if err != nil {
				continue
			}
			if j := w.lookupJob(m.Job); j != nil {
				j.deliverCollResp(m)
			}
		}
	}
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.hb)
	defer t.Stop()
	for range t.C {
		if w.isClosed() {
			return
		}
		if err := w.ctrl.writeFrame(fHeartbeat, nil); err != nil {
			return
		}
	}
}

// acceptLoop admits mesh connections from peer workers; each gets a
// reader goroutine delivering fP2P frames into job mailboxes.
func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		c, err := w.ln.Accept()
		if err != nil {
			return
		}
		fc := newFramedConn(c)
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			fc.Close()
			return
		}
		w.inbound = append(w.inbound, fc)
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer fc.Close()
			for {
				ft, payload, err := fc.readFrame()
				if err != nil {
					return
				}
				if ft != fP2P {
					continue
				}
				m, err := decodeP2P(payload)
				if err != nil {
					continue
				}
				if j := w.jobFor(m.Job); j != nil {
					j.deliverP2P(m)
				}
			}
		}()
	}
}

// lookupJob returns an existing job, nil otherwise.
func (w *Worker) lookupJob(id uint64) *workerJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs[id]
}

// jobFor returns the job, creating a placeholder when a peer's frame
// outruns the coordinator's job-start frame (the mesh is a separate
// connection, so that race is expected). Frames for recently finished
// jobs are dropped.
func (w *Worker) jobFor(id uint64) *workerJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	if j, ok := w.jobs[id]; ok {
		return j
	}
	if w.closed {
		return nil
	}
	for _, d := range w.done {
		if d == id {
			return nil
		}
	}
	j := newWorkerJob(id)
	j.start = time.Now()
	w.jobs[id] = j
	return j
}

// finishJob retires a job id into the stale-frame ring.
func (w *Worker) finishJob(id uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.jobs, id)
	w.done = append(w.done, id)
	if len(w.done) > 64 {
		w.done = w.done[len(w.done)-64:]
	}
}

func (w *Worker) abortAll(err error) {
	w.mu.Lock()
	jobs := make([]*workerJob, 0, len(w.jobs))
	for _, j := range w.jobs {
		jobs = append(jobs, j)
	}
	w.mu.Unlock()
	for _, j := range jobs {
		j.abort(err)
	}
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// peerConn returns the mesh connection to addr, dialing it lazily. Mesh
// connections are write-only on the dialing side; the accepting side
// reads.
func (w *Worker) peerConn(addr string) (*framedConn, error) {
	if addr == "" {
		return nil, fmt.Errorf("cluster: no mesh address for destination rank")
	}
	w.mu.Lock()
	if fc, ok := w.peers[addr]; ok {
		w.mu.Unlock()
		return fc, nil
	}
	w.mu.Unlock()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial peer %s: %w", addr, err)
	}
	fc := newFramedConn(c)
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.peers[addr]; ok {
		// Lost the dial race; keep the first connection.
		c.Close()
		return prev, nil
	}
	if w.closed {
		c.Close()
		return nil, fmt.Errorf("cluster: worker closed")
	}
	w.peers[addr] = fc
	return fc, nil
}

// startJob sets the job's header and launches its runner.
func (w *Worker) startJob(hdr *jobHeader, inputs []*parfmm.RankInput) {
	j := w.jobFor(hdr.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	j.hdr = hdr
	j.mu.Unlock()
	w.jobWG.Add(1)
	go w.runJob(j, inputs)
}

// runJob executes this worker's rank range: admission through the
// elastic pool (the worker's local scheduler), then one goroutine per
// local rank — ranks exchange data mid-pass, so they must all be
// resident; the pool lease accounts the job's lane footprint and queues
// it behind local load.
func (w *Worker) runJob(j *workerJob, inputs []*parfmm.RankInput) {
	defer w.jobWG.Done()
	defer w.finishJob(j.id)
	hdr := j.hdr
	nLocal := hdr.RankHi - hdr.RankLo

	kern, err := kernels.FromSpec(hdr.Kernel)
	if err != nil {
		w.reportJobError(j, errs.Typed(err, errs.CodeInvalidInput))
		return
	}
	lease, err := w.pool.Acquire(w.runCtx, nLocal)
	if err != nil {
		w.reportJobError(j, err)
		return
	}
	defer lease.Release()

	opt := parfmm.Options{
		Kernel:    kern,
		Degree:    hdr.Degree,
		MaxPoints: hdr.MaxPoints,
		MaxDepth:  hdr.MaxDepth,
		Backend:   fmm.M2LBackend(hdr.Backend),
		PinvTol:   hdr.PinvTol,
		Trace:     hdr.Trace,
	}

	results := make([]rankResultWire, nLocal)
	var (
		errMu  sync.Mutex
		rankWG sync.WaitGroup
		jobErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if jobErr == nil {
			jobErr = err
		}
		errMu.Unlock()
		// Unblock sibling ranks waiting on the failed rank's sends.
		j.abort(err)
	}
	for i := 0; i < nLocal; i++ {
		rankWG.Add(1)
		go func(i int) {
			defer rankWG.Done()
			defer func() {
				if r := recover(); r != nil {
					if wf, ok := r.(wireFailure); ok {
						fail(wf.err)
						return
					}
					fail(errs.Newf(errs.CodeInternal, "kifmm: cluster rank %d panic: %v", hdr.RankLo+i, r))
				}
			}()
			t := &wireTransport{w: w, j: j, rank: hdr.RankLo + i}
			out, err := parfmm.EvaluateRank(t, inputs[i], opt)
			if err != nil {
				fail(errs.Typed(err, errs.CodeInvalidInput))
				return
			}
			var tl []byte
			if out.Timeline != nil {
				tl, _ = json.Marshal(out.Timeline)
			}
			results[i] = rankResultWire{Rank: hdr.RankLo + i, Pot: out.Pot, TL: tl}
		}(i)
	}
	rankWG.Wait()

	j.mu.Lock()
	aborted := j.abortErr
	j.mu.Unlock()
	if jobErr != nil {
		// If the coordinator aborted us there is nothing to report — it
		// already knows; otherwise surface the local failure.
		if aborted == nil || jobErr != aborted {
			w.reportJobError(j, jobErr)
		}
		return
	}
	if err := w.ctrl.writeFrame(fJobResult, encodeJobResult(j.id, results)); err != nil {
		w.log.Warn("cluster worker: result send failed", "job", j.id, "err", err)
	}
}

func (w *Worker) reportJobError(j *workerJob, err error) {
	code := errs.CodeInternal
	if c, ok := errs.CodeOf(err); ok {
		code = c
	}
	if werr := w.ctrl.writeFrame(fJobError, encodeJobStatus(j.id, string(code), err.Error())); werr != nil {
		w.log.Warn("cluster worker: error report failed", "job", j.id, "err", werr)
	}
}

// Close drains the worker gracefully: it announces the drain so the
// coordinator stops assigning it work, waits for in-flight jobs, then
// tears the connections down and joins every goroutine.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	_ = w.ctrl.writeFrame(fDrain, nil)
	w.jobWG.Wait()
	w.teardown()
	w.wg.Wait()
	return nil
}

// Kill tears the worker down immediately — no drain, no waiting for
// jobs. In-flight local ranks abort; the coordinator notices via the
// dropped connection or a missed heartbeat. Test hook for failure
// injection, and the path crash shutdowns take.
func (w *Worker) Kill() {
	w.teardown()
	w.abortAll(errs.New(errs.CodeWorkerLost, "kifmm: worker killed"))
	w.jobWG.Wait()
	w.wg.Wait()
}

func (w *Worker) teardown() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	if w.cancelRun != nil {
		w.cancelRun()
	}
	peers := w.peers
	w.peers = make(map[string]*framedConn)
	inbound := w.inbound
	w.inbound = nil
	w.mu.Unlock()
	w.ctrl.Close()
	w.ln.Close()
	for _, fc := range peers {
		fc.Close()
	}
	for _, fc := range inbound {
		fc.Close()
	}
}

package cluster

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	kifmm "repro"
	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/parfmm"
)

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// checkGoroutines fails the test if the goroutine count has not settled
// back to the baseline (a small grace covers runtime bookkeeping).
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestCodecRoundTrips exercises the binary frame codec end to end: what
// the encoders produce, the decoders must reproduce exactly.
func TestCodecRoundTrips(t *testing.T) {
	hdr := &jobHeader{
		Job: 7, Size: 4, RankLo: 2, RankHi: 4,
		Peers:  []rankRange{{Addr: "a:1", Lo: 0, Hi: 2}, {Addr: "b:2", Lo: 2, Hi: 4}},
		Kernel: kernels.Spec{Name: "laplace"}, Degree: 6, MaxPoints: 60, PinvTol: 1e-10, Trace: true,
	}
	inputs := []*parfmm.RankInput{
		{Pts: []float64{1, 2, 3}, Den: []float64{0.5}, GlobalIdx: []int32{9}},
		{Pts: nil, Den: nil, GlobalIdx: nil},
	}
	payload, err := encodeJobStart(hdr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	gotHdr, gotIn, err := decodeJobStart(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Job != 7 || gotHdr.Size != 4 || gotHdr.RankLo != 2 || gotHdr.addrOfRank(1) != "a:1" || gotHdr.addrOfRank(3) != "b:2" {
		t.Fatalf("job header mangled: %+v", gotHdr)
	}
	if len(gotIn) != 2 || gotIn[0].Pts[2] != 3 || gotIn[0].GlobalIdx[0] != 9 || len(gotIn[1].Pts) != 0 {
		t.Fatalf("rank inputs mangled: %+v", gotIn)
	}

	p2p := &p2pMsg{Job: 7, Src: 1, Dst: 3, Tag: 42, SentNS: 12345, Data: []float64{1.5, -2.5}}
	got, err := decodeP2P(encodeP2P(p2p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != 1 || got.Dst != 3 || got.Tag != 42 || got.SentNS != 12345 || got.Data[1] != -2.5 {
		t.Fatalf("p2p mangled: %+v", got)
	}

	coll := &collMsg{Job: 7, Rank: 2, Kind: collFloat64, Op: 1, Seq: 5, EntryNS: 99, F64: []float64{3.25}}
	gotColl, err := decodeColl(encodeColl(coll))
	if err != nil {
		t.Fatal(err)
	}
	if gotColl.Rank != 2 || gotColl.Kind != collFloat64 || gotColl.Seq != 5 || gotColl.F64[0] != 3.25 {
		t.Fatalf("coll mangled: %+v", gotColl)
	}

	job, code, msg, err := decodeJobStatus(encodeJobStatus(7, "worker_lost", "gone"))
	if err != nil || job != 7 || code != "worker_lost" || msg != "gone" {
		t.Fatalf("job status mangled: %d %q %q %v", job, code, msg, err)
	}

	// Truncated payloads must error, not panic or mis-parse.
	if _, err := decodeP2P(encodeP2P(p2p)[:9]); err == nil {
		t.Fatal("truncated p2p payload decoded without error")
	}
}

// startCluster brings up a coordinator and workers on loopback, each
// with its own listener, and tears everything down at test end.
func startCluster(t *testing.T, hb time.Duration, lanes ...int) (*Coordinator, []*Worker) {
	t.Helper()
	coord, err := StartCoordinator(context.Background(), "127.0.0.1:0", CoordinatorConfig{Heartbeat: hb})
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]*Worker, len(lanes))
	for i, l := range lanes {
		w, err := StartWorker(context.Background(), WorkerConfig{Coordinator: coord.Addr(), Lanes: l})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	// Evaluate plans over registered workers; joins are synchronous in
	// StartWorker, so all are visible already.
	if got := coord.Workers(); got != len(lanes) {
		t.Fatalf("coordinator sees %d workers, want %d", got, len(lanes))
	}
	return coord, workers
}

// TestClusterMatchesSingleNode is the tentpole conformance check: a
// real-TCP loopback cluster (coordinator + 2 workers, 2 ranks each)
// must reproduce the single-node evaluator on a cluster-sized Laplace
// problem to accumulation accuracy, and the real-transport ledger must
// support the same timeline analyses as the simulated one.
func TestClusterMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster conformance is not a -short test")
	}
	base := runtime.NumGoroutine()
	const n = 20000
	rng := rand.New(rand.NewSource(3))
	pts := geom.Flatten(geom.SphereGrid(rng, n, 2, 0.3))
	den := geom.RandomDensities(rng, n, 1)

	coord, workers := startCluster(t, 500*time.Millisecond, 2, 2)

	// Degree 4 keeps the equivalent-surface pseudo-inverse well enough
	// conditioned that the cluster and the single-node engine agree to
	// accumulation accuracy; at degree 6 the ~1e10 condition number
	// amplifies operator-application ordering into the ~1e-11 range.
	pot, report, err := coord.Evaluate(context.Background(), EvalRequest{
		Src: pts, Den: den,
		Kernel: kernels.Spec{Name: "laplace"}, Degree: 4, MaxPoints: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Ranks != 4 || report.Workers != 2 {
		t.Fatalf("report: %d ranks on %d workers, want 4 on 2", report.Ranks, report.Workers)
	}

	ev, err := kifmm.NewEvaluator(pts, pts, kifmm.Options{Kernel: kifmm.Laplace(), Degree: 4, MaxPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	want, err := ev.EvaluateCtx(context.Background(), den)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(pot, want); e > 1e-12 {
		t.Errorf("cluster differs from single node by %v (want <= 1e-12)", e)
	}

	// The real-transport ledger feeds the same observability surfaces.
	tl := report.Timeline
	if tl == nil || len(tl.Ranks) != 4 {
		t.Fatalf("timeline: %+v, want 4 ranks", tl)
	}
	if tl.TotalMessages() == 0 || tl.TotalBytes() == 0 {
		t.Error("real-transport ledger recorded no messages")
	}
	if path := tl.CriticalPath(); len(path) == 0 {
		t.Error("critical path extraction produced no segments")
	}
	var trace bytes.Buffer
	if err := tl.WriteChromeTrace(&trace); err != nil || trace.Len() == 0 {
		t.Errorf("chrome trace: %v (%d bytes)", err, trace.Len())
	}
	if coord.ScatterBytes() == 0 || coord.GatherBytes() == 0 || coord.Evals() != 1 {
		t.Errorf("coordinator counters: scatter=%d gather=%d evals=%d",
			coord.ScatterBytes(), coord.GatherBytes(), coord.Evals())
	}

	for _, w := range workers {
		w.Close()
	}
	coord.Close()
	checkGoroutines(t, base)
}

// TestClusterWorkerLost kills one worker mid-evaluation: the blocked
// Evaluate must resolve with the typed worker_lost error within two
// heartbeat intervals (no hang), nothing may leak, and the degraded
// coordinator must keep rejecting cluster requests crisply.
func TestClusterWorkerLost(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster failure injection is not a -short test")
	}
	base := runtime.NumGoroutine()
	const hb = 250 * time.Millisecond
	const n = 16000
	rng := rand.New(rand.NewSource(4))
	pts := geom.Flatten(geom.SphereGrid(rng, n, 2, 0.3))
	den := geom.RandomDensities(rng, n, 1)

	coord, workers := startCluster(t, hb, 2, 2)

	errCh := make(chan error, 1)
	go func() {
		_, _, err := coord.Evaluate(context.Background(), EvalRequest{
			Src: pts, Den: den, Kernel: kernels.Spec{Name: "laplace"},
		})
		errCh <- err
	}()

	// Let the scatter land and the ranks get to work, then kill one
	// worker hard (no drain — its connections just die).
	time.Sleep(100 * time.Millisecond)
	killAt := time.Now()
	workers[1].Kill()

	select {
	case err := <-errCh:
		if !errors.Is(err, errs.ErrWorkerLost) {
			t.Fatalf("evaluation after kill returned %v, want worker_lost", err)
		}
		if lat := time.Since(killAt); lat > 2*hb {
			t.Errorf("worker loss surfaced after %v, want <= 2 heartbeat intervals (%v)", lat, 2*hb)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation hung after worker kill")
	}
	if coord.WorkersLost() != 1 {
		t.Errorf("WorkersLost = %d, want 1", coord.WorkersLost())
	}

	// Degraded mode: with the survivors gone too, cluster-sized requests
	// fail fast with the same typed error instead of hanging.
	workers[0].Close()
	_, _, err := coord.Evaluate(context.Background(), EvalRequest{
		Src: pts[:30], Den: den[:10], Kernel: kernels.Spec{Name: "laplace"},
	})
	if !errors.Is(err, errs.ErrWorkerLost) {
		t.Errorf("no-worker evaluation returned %v, want worker_lost", err)
	}

	coord.Close()
	checkGoroutines(t, base)
}

// TestClusterDrainExcludesWorker: after a graceful drain the departed
// worker no longer receives work, is not counted as lost, and the rest
// of the cluster keeps serving.
func TestClusterDrainExcludesWorker(t *testing.T) {
	coord, workers := startCluster(t, 250*time.Millisecond, 1, 1)
	defer coord.Close()

	n := 600
	rng := rand.New(rand.NewSource(5))
	pts := geom.Flatten(geom.SphereGrid(rng, n, 1, 0.3))
	den := geom.RandomDensities(rng, n, 1)

	workers[1].Close()
	for deadline := time.Now().Add(5 * time.Second); coord.Workers() != 1; {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator still sees %d workers after drain", coord.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if coord.WorkersLost() != 0 {
		t.Errorf("graceful drain counted as loss: WorkersLost = %d", coord.WorkersLost())
	}
	pot, report, err := coord.Evaluate(context.Background(), EvalRequest{
		Src: pts, Den: den, Kernel: kernels.Spec{Name: "laplace"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Workers != 1 || report.Ranks != 1 {
		t.Errorf("drained worker still scheduled: %d workers, %d ranks", report.Workers, report.Ranks)
	}
	if len(pot) != n {
		t.Errorf("potential length %d, want %d", len(pot), n)
	}
	workers[0].Close()
}

// Package cluster makes the paper's distributed algorithm real: a TCP
// implementation of mpi.Transport carrying the parallel KIFMM's
// point-to-point ghost exchanges and collectives between processes,
// plus the node lifecycle around it — workers dial a coordinator, join
// with a hello/capabilities handshake, heartbeat, and drain gracefully;
// the coordinator Morton-partitions request geometry, assigns each
// worker a contiguous rank range and drives internal/parfmm's passes
// over the wire.
//
// Topology: control traffic (handshake, heartbeats, job dispatch,
// collectives, results) flows on each worker's single connection to the
// coordinator; point-to-point rank traffic (the Algorithm-1
// gather/scatter payloads) flows over a lazily-dialed worker↔worker
// mesh, so the coordinator is not a bandwidth bottleneck on the hot
// path. Every node has its own listener.
//
// Wire format: length-prefixed little-endian binary frames. Bulk
// float64/int32 arrays (coordinates, densities, equivalent densities,
// potentials) are raw little-endian words — no JSON on the hot path.
// Small control payloads (handshake, job headers, timelines) are JSON
// inside their frame.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
)

// frameType discriminates wire frames.
type frameType uint8

const (
	// Worker -> coordinator control frames.
	fHello frameType = iota + 1
	fHeartbeat
	fDrain
	fJobResult
	fJobError
	fColl
	// Coordinator -> worker control frames.
	fHelloAck
	fJobStart
	fJobAbort
	fCollResp
	// Worker -> worker mesh frames.
	fP2P
)

// maxFrameBytes bounds a single frame (1 GiB: tens of millions of
// points of coordinate data; anything beyond is a protocol error, not
// a workload).
const maxFrameBytes = 1 << 30

// frame header: u32 little-endian length of (type byte + payload).
const frameHeaderBytes = 4

// framedConn is a net.Conn carrying length-prefixed frames; writes are
// serialized by an internal mutex so any goroutine may send.
type framedConn struct {
	c net.Conn
	r *bufio.Reader

	wmu sync.Mutex
}

func newFramedConn(c net.Conn) *framedConn {
	return &framedConn{c: c, r: bufio.NewReaderSize(c, 1<<16)}
}

// writeFrame sends one frame (a single Write call after assembly, so
// frames never interleave even without the mutex — the mutex guards the
// Write ordering).
func (fc *framedConn) writeFrame(t frameType, payload []byte) error {
	if len(payload)+1 > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", len(payload)+1, maxFrameBytes)
	}
	buf := make([]byte, frameHeaderBytes+1+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[frameHeaderBytes] = byte(t)
	copy(buf[frameHeaderBytes+1:], payload)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	_, err := fc.c.Write(buf)
	return err
}

// readFrame blocks for the next frame. Must be called from a single
// reader goroutine per connection.
func (fc *framedConn) readFrame() (frameType, []byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("cluster: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return 0, nil, err
	}
	return frameType(body[0]), body[1:], nil
}

func (fc *framedConn) Close() error { return fc.c.Close() }

// wbuf builds a frame payload.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }

func (w *wbuf) f64s(v []float64) {
	w.u64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], math.Float64bits(x))
	}
}

func (w *wbuf) i64s(v []int64) {
	w.u64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], uint64(x))
	}
}

func (w *wbuf) i32s(v []int32) {
	w.u64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 4*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint32(w.b[off+4*i:], uint32(x))
	}
}

// raw appends a length-prefixed byte blob (JSON side channels).
func (w *wbuf) raw(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// rbuf decodes a frame payload; out-of-bounds reads latch an error and
// return zero values, so decoders check err() once at the end.
type rbuf struct {
	b   []byte
	off int
	bad bool
}

func (r *rbuf) take(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *rbuf) u8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (r *rbuf) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

func (r *rbuf) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

func (r *rbuf) i64() int64 { return int64(r.u64()) }

// length reads an array length and sanity-bounds it by the remaining
// payload (elemBytes per element), so a corrupt length cannot trigger a
// huge allocation.
func (r *rbuf) length(elemBytes int) int {
	n := r.u64()
	if r.bad || n > uint64(len(r.b)-r.off)/uint64(elemBytes) {
		r.bad = true
		return 0
	}
	return int(n)
}

func (r *rbuf) f64s() []float64 {
	n := r.length(8)
	raw := r.take(8 * n)
	if raw == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (r *rbuf) i64s() []int64 {
	n := r.length(8)
	raw := r.take(8 * n)
	if raw == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

func (r *rbuf) i32s() []int32 {
	n := r.length(4)
	raw := r.take(4 * n)
	if raw == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func (r *rbuf) raw() []byte {
	n := r.u32()
	if r.bad || uint64(n) > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	return r.take(int(n))
}

func (r *rbuf) err() error {
	if r.bad {
		return r.errMalformed()
	}
	return nil
}

// errMalformed is the decoder's uniform parse failure.
func (r *rbuf) errMalformed() error {
	return fmt.Errorf("cluster: malformed frame payload")
}

// Collective element kinds on the wire.
const (
	collInt64 = iota
	collFloat64
	collBarrier
)

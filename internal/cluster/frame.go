// Package cluster makes the paper's distributed algorithm real: a TCP
// implementation of mpi.Transport carrying the parallel KIFMM's
// point-to-point ghost exchanges and collectives between processes,
// plus the node lifecycle around it — workers dial a coordinator, join
// with a hello/capabilities handshake, heartbeat, and drain gracefully;
// the coordinator Morton-partitions request geometry, assigns each
// worker a contiguous rank range and drives internal/parfmm's passes
// over the wire.
//
// Topology: control traffic (handshake, heartbeats, job dispatch,
// collectives, results) flows on each worker's single connection to the
// coordinator; point-to-point rank traffic (the Algorithm-1
// gather/scatter payloads) flows over a lazily-dialed worker↔worker
// mesh, so the coordinator is not a bandwidth bottleneck on the hot
// path. Every node has its own listener.
//
// Wire format: length-prefixed little-endian binary frames following
// the shared internal/wire conventions. Bulk float64/int32 arrays
// (coordinates, densities, equivalent densities, potentials) are raw
// little-endian words — no JSON on the hot path. Small control
// payloads (handshake, job headers, timelines) are JSON inside their
// frame.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/wire"
)

// frameType discriminates wire frames.
type frameType uint8

const (
	// Worker -> coordinator control frames.
	fHello frameType = iota + 1
	fHeartbeat
	fDrain
	fJobResult
	fJobError
	fColl
	// Coordinator -> worker control frames.
	fHelloAck
	fJobStart
	fJobAbort
	fCollResp
	// Worker -> worker mesh frames.
	fP2P
)

// maxFrameBytes bounds a single frame: the shared wire limit (1 GiB —
// tens of millions of points of coordinate data; anything beyond is a
// protocol error, not a workload).
const maxFrameBytes = wire.MaxFrameBytes

// frame header: u32 little-endian length of (type byte + payload).
const frameHeaderBytes = 4

// framedConn is a net.Conn carrying length-prefixed frames; writes are
// serialized by an internal mutex so any goroutine may send.
type framedConn struct {
	c net.Conn
	r *bufio.Reader

	wmu sync.Mutex
}

func newFramedConn(c net.Conn) *framedConn {
	return &framedConn{c: c, r: bufio.NewReaderSize(c, 1<<16)}
}

// writeFrame sends one frame (a single Write call after assembly, so
// frames never interleave even without the mutex — the mutex guards the
// Write ordering).
func (fc *framedConn) writeFrame(t frameType, payload []byte) error {
	if len(payload)+1 > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d limit", len(payload)+1, maxFrameBytes)
	}
	buf := make([]byte, frameHeaderBytes+1+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[frameHeaderBytes] = byte(t)
	copy(buf[frameHeaderBytes+1:], payload)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	_, err := fc.c.Write(buf)
	return err
}

// readFrame blocks for the next frame. Must be called from a single
// reader goroutine per connection.
func (fc *framedConn) readFrame() (frameType, []byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(fc.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("cluster: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fc.r, body); err != nil {
		return 0, nil, err
	}
	return frameType(body[0]), body[1:], nil
}

func (fc *framedConn) Close() error { return fc.c.Close() }

// Frame payloads are assembled with wire.Writer and decoded with
// wire.Reader — the shared little-endian conventions extracted from
// this file into internal/wire (the HTTP API's
// application/x-kifmm-frame bodies speak the same format).

// errMalformed is the decoder's uniform parse failure; it wraps
// wire.ErrMalformed so errors.Is works across the layers.
func errMalformed() error {
	return fmt.Errorf("cluster: malformed frame payload: %w", wire.ErrMalformed)
}

// frameErr maps a decoder's latched state onto the cluster error.
func frameErr(r *wire.Reader) error {
	if r.Err() != nil {
		return errMalformed()
	}
	return nil
}

// Collective element kinds on the wire.
const (
	collInt64 = iota
	collFloat64
	collBarrier
)

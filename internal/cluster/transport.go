package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mpi"
)

// wireFailure is the panic payload for unrecoverable transport errors —
// a broken peer connection, a coordinator abort, a lost worker. The
// Transport contract says these panic; the worker recovers at the rank
// boundary and reports the job failed.
type wireFailure struct{ err error }

func (f wireFailure) Error() string { return f.err.Error() }

// mailKey addresses a point-to-point mailbox: messages from src to dst
// under one tag.
type mailKey struct{ dst, src, tag int }

// wireMsg is one delivered point-to-point payload with the sender's and
// receiver's clock offsets (ns since their job start) for the ledger.
type wireMsg struct {
	data    []float64
	sentNS  int64
	availNS int64
}

// collKey addresses one rank's pending collective response.
type collKey struct {
	rank int
	seq  uint64
}

// workerJob is the per-job rendezvous state on a worker: the mailboxes
// local ranks receive from, the collective responses they wait for, and
// the abort latch that poisons every blocked operation when the
// coordinator cancels the job or a peer is lost. One mutex + condition
// serializes all of it; rank goroutines block on the condition.
type workerJob struct {
	id    uint64
	hdr   *jobHeader
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	mail     map[mailKey][]wireMsg
	colls    map[collKey]*collRespMsg
	abortErr error
}

func newWorkerJob(id uint64) *workerJob {
	j := &workerJob{
		id:    id,
		mail:  make(map[mailKey][]wireMsg),
		colls: make(map[collKey]*collRespMsg),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// elapsed is this worker's clock offset for the job (ns since the job
// started locally). Cross-worker offsets share an origin only up to
// dispatch skew — fine for observability, not for ordering proofs.
func (j *workerJob) elapsed() time.Duration { return time.Since(j.start) }

func (j *workerJob) deliverP2P(m *p2pMsg) {
	j.mu.Lock()
	key := mailKey{dst: m.Dst, src: m.Src, tag: m.Tag}
	j.mail[key] = append(j.mail[key], wireMsg{data: m.Data, sentNS: m.SentNS, availNS: int64(j.elapsed())})
	j.cond.Broadcast()
	j.mu.Unlock()
}

func (j *workerJob) deliverCollResp(m *collRespMsg) {
	j.mu.Lock()
	j.colls[collKey{rank: m.Rank, seq: m.Seq}] = m
	j.cond.Broadcast()
	j.mu.Unlock()
}

// abort poisons the job: every blocked Recv/collective wakes and panics
// with err, unwinding its rank goroutine.
func (j *workerJob) abort(err error) {
	j.mu.Lock()
	if j.abortErr == nil {
		j.abortErr = err
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// wireTransport is one rank's mpi.Transport over TCP: point-to-point
// payloads ride the worker mesh (or short-circuit in memory when source
// and destination ranks share a worker), collectives rendezvous at the
// coordinator. It reproduces the in-process transport's ledger events —
// same kinds, same dependency attribution — so obs.Timeline,
// critical-path extraction and the Chrome trace work unchanged on a
// real cluster.
type wireTransport struct {
	w    *Worker
	j    *workerJob
	rank int

	observer func(mpi.Event)
	collSeq  uint64

	commTime  time.Duration
	bytesSent int64
	bytesRecv int64
	msgs      int64
}

var _ mpi.Transport = (*wireTransport)(nil)

func (t *wireTransport) Rank() int { return t.rank }
func (t *wireTransport) Size() int { return t.j.hdr.Size }

func (t *wireTransport) Elapsed() time.Duration  { return t.j.elapsed() }
func (t *wireTransport) CommTime() time.Duration { return t.commTime }
func (t *wireTransport) BytesSent() int64        { return t.bytesSent }
func (t *wireTransport) BytesRecv() int64        { return t.bytesRecv }
func (t *wireTransport) Messages() int64         { return t.msgs }

func (t *wireTransport) SetObserver(fn func(mpi.Event)) { t.observer = fn }

// localRank reports whether rank r lives on this worker.
func (t *wireTransport) localRank(r int) bool {
	return r >= t.j.hdr.RankLo && r < t.j.hdr.RankHi
}

// SendFloat64s is eager: it enqueues locally or writes the frame to the
// peer's mesh connection and returns without waiting for the receiver.
func (t *wireTransport) SendFloat64s(dst, tag int, data []float64) {
	start := t.j.elapsed()
	bytes := 8 * len(data)
	m := &p2pMsg{Job: t.j.id, Src: t.rank, Dst: dst, Tag: tag, SentNS: int64(start)}
	if t.localRank(dst) {
		// Same-worker ranks short-circuit through the job mailbox; the
		// payload still must not alias the sender's buffer (parfmm
		// reuses scratch), so copy like the wire would.
		m.Data = append([]float64(nil), data...)
		t.j.deliverP2P(m)
	} else {
		m.Data = data
		pc, err := t.w.peerConn(t.j.hdr.addrOfRank(dst))
		if err == nil {
			err = pc.writeFrame(fP2P, encodeP2P(m))
		}
		if err != nil {
			panic(wireFailure{fmt.Errorf("cluster: rank %d send to rank %d: %w", t.rank, dst, err)})
		}
	}
	end := t.j.elapsed()
	t.commTime += end - start
	t.bytesSent += int64(bytes)
	t.msgs++
	if t.observer != nil {
		t.observer(mpi.Event{
			Kind: mpi.EventSend, Rank: t.rank, Peer: dst, Tag: tag, Bytes: bytes,
			Start: start, End: end, Sent: end, Avail: end, DepRank: -1,
		})
	}
}

// RecvFloat64s blocks until a payload from src under tag is delivered,
// or the job is aborted (which panics to unwind the rank).
func (t *wireTransport) RecvFloat64s(src, tag int) []float64 {
	start := t.j.elapsed()
	key := mailKey{dst: t.rank, src: src, tag: tag}
	j := t.j
	j.mu.Lock()
	waited := false
	for len(j.mail[key]) == 0 {
		if j.abortErr != nil {
			err := j.abortErr
			j.mu.Unlock()
			panic(wireFailure{err})
		}
		waited = true
		j.cond.Wait()
	}
	q := j.mail[key]
	msg := q[0]
	if len(q) == 1 {
		delete(j.mail, key)
	} else {
		j.mail[key] = q[1:]
	}
	j.mu.Unlock()

	end := t.j.elapsed()
	bytes := 8 * len(msg.data)
	t.commTime += end - start
	t.bytesRecv += int64(bytes)
	t.msgs++
	if t.observer != nil {
		ev := mpi.Event{
			Kind: mpi.EventRecv, Rank: t.rank, Peer: src, Tag: tag, Bytes: bytes,
			Start: start, End: end,
			Sent: time.Duration(msg.sentNS), Avail: time.Duration(msg.availNS),
			DepRank: -1,
		}
		if waited {
			ev.Wait = end - start
			ev.DepRank = src
			ev.DepTime = time.Duration(msg.sentNS)
		}
		t.observer(ev)
	}
	return msg.data
}

// runCollective ships this rank's contribution to the coordinator and
// blocks for the combined response. Sequence numbers advance identically
// on every rank (the algorithm is deterministic), which is what matches
// contributions of the same collective across ranks.
func (t *wireTransport) runCollective(kind byte, op mpi.ReduceOp, i64 []int64, f64 []float64) *collRespMsg {
	seq := t.collSeq
	t.collSeq++
	start := t.j.elapsed()
	msg := &collMsg{
		Job: t.j.id, Rank: t.rank, Kind: kind, Op: byte(op),
		Seq: seq, EntryNS: int64(start), I64: i64, F64: f64,
	}
	if err := t.w.ctrl.writeFrame(fColl, encodeColl(msg)); err != nil {
		panic(wireFailure{fmt.Errorf("cluster: rank %d collective %d: %w", t.rank, seq, err)})
	}

	key := collKey{rank: t.rank, seq: seq}
	j := t.j
	j.mu.Lock()
	for j.colls[key] == nil {
		if j.abortErr != nil {
			err := j.abortErr
			j.mu.Unlock()
			panic(wireFailure{err})
		}
		j.cond.Wait()
	}
	resp := j.colls[key]
	delete(j.colls, key)
	j.mu.Unlock()

	end := t.j.elapsed()
	bytes := 8 * (len(i64) + len(f64))
	if kind == collBarrier {
		bytes = 8
	}
	t.commTime += end - start
	t.msgs++
	if t.observer != nil {
		t.observer(mpi.Event{
			Kind: mpi.EventCollective, Rank: t.rank, Peer: -1, Tag: int(seq), Bytes: bytes,
			Start: start, End: end, Wait: end - start,
			DepRank: resp.LastRank, DepTime: time.Duration(resp.LastEntryNS),
		})
	}
	return resp
}

func (t *wireTransport) AllreduceInt64(op mpi.ReduceOp, in []int64) []int64 {
	return t.runCollective(collInt64, op, in, nil).I64
}

func (t *wireTransport) AllreduceFloat64(op mpi.ReduceOp, in []float64) []float64 {
	return t.runCollective(collFloat64, op, nil, in).F64
}

func (t *wireTransport) Barrier() {
	t.runCollective(collBarrier, 0, nil, nil)
}

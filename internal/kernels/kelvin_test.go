package kernels

import (
	"math"
	"math/rand"
	"testing"
)

func TestKelvinSymmetryAndPositivity(t *testing.T) {
	k := NewKelvin(1, 0.3)
	var g [9]float64
	k.Eval(0.4, -0.2, 0.7, g[:])
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if g[3*i+j] != g[3*j+i] {
				t.Fatalf("Kelvin tensor must be symmetric")
			}
		}
		if g[3*i+i] <= 0 {
			t.Fatalf("Kelvin diagonal must be positive")
		}
	}
}

func TestKelvinReducesToStokesAtHalf(t *testing.T) {
	// At nu = 1/2: S_ij = 1/(8πμ)[δ_ij/r + r_i r_j/r³] — the Stokeslet.
	mu := 0.8
	kel := NewKelvin(mu, 0.5)
	sto := NewStokes(mu)
	rng := rand.New(rand.NewSource(1))
	var a, b [9]float64
	for trial := 0; trial < 30; trial++ {
		rx, ry, rz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		kel.Eval(rx, ry, rz, a[:])
		sto.Eval(rx, ry, rz, b[:])
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-14*(math.Abs(b[i])+1) {
				t.Fatalf("Kelvin(nu=1/2) != Stokeslet at %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestKelvinHomogeneity(t *testing.T) {
	k := NewKelvin(2, 0.25)
	hom, deg := k.Homogeneity()
	if !hom || deg != -1 {
		t.Fatal("Kelvin must be homogeneous of degree -1")
	}
	var a, b [9]float64
	k.Eval(0.3, 0.1, -0.2, a[:])
	s := 2.5
	k.Eval(s*0.3, s*0.1, -s*0.2, b[:])
	for i := range a {
		if math.Abs(b[i]-a[i]/s) > 1e-14 {
			t.Fatalf("homogeneity violated at %d", i)
		}
	}
}

func TestKelvinValidation(t *testing.T) {
	mustPanic(t, func() { NewKelvin(0, 0.3) })
	mustPanic(t, func() { NewKelvin(1, 0.6) })
	mustPanic(t, func() { NewKelvin(1, -1) })
}

func TestKelvinZeroSelf(t *testing.T) {
	k := NewKelvin(1, 0.3)
	var g [9]float64
	for i := range g {
		g[i] = math.NaN()
	}
	k.Eval(0, 0, 0, g[:])
	for _, v := range g {
		if v != 0 {
			t.Fatal("self block must be zero")
		}
	}
}

package kernels

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/errs"
)

// Spec is a serializable description of a built-in kernel: its name plus
// the numeric parameters needed to reconstruct it. It is the wire format
// used by the evaluation service so a client can name a kernel (with
// non-default parameters) and the server can rebuild the identical
// Kernel value.
type Spec struct {
	// Name is the kernel identifier accepted by ByName.
	Name string `json:"name"`
	// Params holds the kernel parameters by field name (e.g. "lambda"
	// for modlaplace, "mu" for stokes, "mu"/"nu" for kelvin). Missing
	// entries take the ByName defaults.
	Params map[string]float64 `json:"params,omitempty"`
}

// FromSpec reconstructs a kernel from its serialized description.
// Unknown names and parameters are errors, as are out-of-domain values
// (the typed constructors panic on those; FromSpec validates first).
func FromSpec(s Spec) (Kernel, error) {
	get := func(key string, def float64) float64 {
		if v, ok := s.Params[key]; ok {
			return v
		}
		return def
	}
	for key, v := range s.Params {
		if !validParam(s.Name, key) {
			return nil, fmt.Errorf("kernels: kernel %q has no parameter %q", s.Name, key)
		}
		if math.IsNaN(v) {
			return nil, fmt.Errorf("kernels: kernel %q parameter %q is NaN", s.Name, key)
		}
	}
	switch s.Name {
	case "laplace":
		return Laplace{}, nil
	case "modlaplace":
		lambda := get("lambda", 1)
		if lambda <= 0 {
			return nil, fmt.Errorf("kernels: modlaplace requires lambda > 0, got %v", lambda)
		}
		return NewModLaplace(lambda), nil
	case "stokes":
		mu := get("mu", 1)
		if mu <= 0 {
			return nil, fmt.Errorf("kernels: stokes requires mu > 0, got %v", mu)
		}
		return NewStokes(mu), nil
	case "kelvin":
		mu, nu := get("mu", 1), get("nu", 0.3)
		if mu <= 0 {
			return nil, fmt.Errorf("kernels: kelvin requires mu > 0, got %v", mu)
		}
		if nu <= -1 || nu > 0.5 {
			return nil, fmt.Errorf("kernels: kelvin requires nu in (-1, 1/2], got %v", nu)
		}
		return NewKelvin(mu, nu), nil
	default:
		return nil, errs.Newf(errs.CodeUnknownKernel, "kernels: unknown kernel %q", s.Name)
	}
}

func validParam(kernel, param string) bool {
	switch kernel {
	case "modlaplace":
		return param == "lambda"
	case "stokes":
		return param == "mu"
	case "kelvin":
		return param == "mu" || param == "nu"
	}
	return false
}

// SpecFor returns the serialized description of a built-in kernel, so
// that FromSpec(SpecFor(k)) reconstructs an identical kernel. Kernels
// outside this package are not serializable.
func SpecFor(k Kernel) (Spec, error) {
	switch k := k.(type) {
	case Laplace:
		return Spec{Name: "laplace"}, nil
	case ModLaplace:
		return Spec{Name: "modlaplace", Params: map[string]float64{"lambda": k.Lambda}}, nil
	case Stokes:
		return Spec{Name: "stokes", Params: map[string]float64{"mu": k.Mu}}, nil
	case Kelvin:
		return Spec{Name: "kelvin", Params: map[string]float64{"mu": k.Mu, "nu": k.Nu}}, nil
	default:
		return Spec{}, fmt.Errorf("kernels: kernel %q is not serializable", k.Name())
	}
}

// Canonical returns a deterministic string encoding of the spec
// (parameters sorted by name, full float precision, -0.0 collapsed onto
// +0.0), suitable as a cache-key component: two SpecFor-produced specs
// describing the same kernel produce the same string.
func (s Spec) Canonical() string {
	var b strings.Builder
	b.WriteString(s.Name)
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := s.Params[k]
		if v == 0 {
			v = 0
		}
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	return b.String()
}

// Package kernels implements the single-layer kernels of second-order
// constant-coefficient elliptic PDEs studied in the paper (Appendix A):
// the Laplace kernel, the modified Laplace (screened Coulomb / Yukawa)
// kernel and the Stokes (Stokeslet) kernel.
//
// A Kernel evaluates the fundamental solution G(x, y) as a dense
// TargetDim x SourceDim block given the displacement r = x - y. The
// kernel-independent FMM never needs analytic expansions of G; it only
// calls Eval, which is the heart of the paper's method.
package kernels

import (
	"math"

	"repro/internal/errs"
)

// Kernel is a translation-invariant fundamental solution G(x, y) = G(x-y).
//
// SourceDim is the number of density components carried by each source
// point; TargetDim is the number of potential components produced at each
// target point. Scalar kernels have SourceDim = TargetDim = 1; the Stokes
// kernel has SourceDim = TargetDim = 3.
type Kernel interface {
	// Name returns a short identifier, e.g. "laplace".
	Name() string
	// SourceDim returns the number of density components per source.
	SourceDim() int
	// TargetDim returns the number of potential components per target.
	TargetDim() int
	// Eval writes the TargetDim x SourceDim kernel block for displacement
	// r = x - y into out in row-major order. At r = 0 the block is zero
	// (self interactions are excluded, as in all FMM codes).
	Eval(rx, ry, rz float64, out []float64)
	// Homogeneity reports whether G(s*x, s*y) = s^deg * G(x, y) for all
	// s > 0, and the degree deg. Homogeneous kernels allow translation
	// operators to be precomputed at unit scale and rescaled analytically.
	Homogeneity() (homogeneous bool, deg float64)
	// FlopCost returns the approximate floating point operations needed
	// for one Eval block; the harness uses it for Gflops accounting.
	FlopCost() int
}

// ByName constructs one of the built-in kernels from its name
// ("laplace", "modlaplace", "stokes", "kelvin"). The Stokes kernel uses
// viscosity mu = 1, the modified Laplace kernel lambda = 1, and the
// Kelvin elasticity kernel mu = 1, nu = 0.3; use the typed constructors
// to control parameters.
func ByName(name string) (Kernel, error) {
	switch name {
	case "laplace":
		return Laplace{}, nil
	case "modlaplace":
		return NewModLaplace(1), nil
	case "stokes":
		return NewStokes(1), nil
	case "kelvin":
		return NewKelvin(1, 0.3), nil
	default:
		return nil, errs.Newf(errs.CodeUnknownKernel, "kernels: unknown kernel %q", name)
	}
}

const fourPiInv = 1.0 / (4 * math.Pi)

// Laplace is the free-space Green's function of -Δu = 0 in 3-D:
// S(x,y) = 1/(4π r).
type Laplace struct{}

// Name implements Kernel.
func (Laplace) Name() string { return "laplace" }

// SourceDim implements Kernel.
func (Laplace) SourceDim() int { return 1 }

// TargetDim implements Kernel.
func (Laplace) TargetDim() int { return 1 }

// Homogeneity implements Kernel: 1/r scales as s^-1.
func (Laplace) Homogeneity() (bool, float64) { return true, -1 }

// FlopCost implements Kernel.
func (Laplace) FlopCost() int { return 9 }

// Eval implements Kernel.
func (Laplace) Eval(rx, ry, rz float64, out []float64) {
	r2 := rx*rx + ry*ry + rz*rz
	if r2 == 0 {
		out[0] = 0
		return
	}
	out[0] = fourPiInv / math.Sqrt(r2)
}

// ModLaplace is the free-space Green's function of αu - Δu = 0 with
// α = λ²: S(x,y) = e^(-λr)/(4π r). It is not homogeneous, so translation
// operators depend on the absolute box size (cached per tree level).
type ModLaplace struct {
	// Lambda is the screening parameter λ (inverse screening length).
	Lambda float64
}

// NewModLaplace returns the modified Laplace kernel with screening
// parameter lambda > 0.
func NewModLaplace(lambda float64) ModLaplace {
	if lambda <= 0 {
		panic("kernels: ModLaplace requires lambda > 0")
	}
	return ModLaplace{Lambda: lambda}
}

// Name implements Kernel.
func (ModLaplace) Name() string { return "modlaplace" }

// SourceDim implements Kernel.
func (ModLaplace) SourceDim() int { return 1 }

// TargetDim implements Kernel.
func (ModLaplace) TargetDim() int { return 1 }

// Homogeneity implements Kernel: e^(-λr)/r is not scale invariant.
func (ModLaplace) Homogeneity() (bool, float64) { return false, 0 }

// FlopCost implements Kernel.
func (ModLaplace) FlopCost() int { return 14 }

// Eval implements Kernel.
func (k ModLaplace) Eval(rx, ry, rz float64, out []float64) {
	r2 := rx*rx + ry*ry + rz*rz
	if r2 == 0 {
		out[0] = 0
		return
	}
	r := math.Sqrt(r2)
	out[0] = fourPiInv * math.Exp(-k.Lambda*r) / r
}

// Stokes is the Stokeslet, the free-space Green's function of the
// velocity-pressure Stokes system -μΔu + ∇p = 0, div u = 0:
// S(x,y) = 1/(8πμ) (I/r + r⊗r/r³).
type Stokes struct {
	// Mu is the dynamic viscosity μ > 0.
	Mu float64
}

// NewStokes returns the Stokes single-layer kernel with viscosity mu > 0.
func NewStokes(mu float64) Stokes {
	if mu <= 0 {
		panic("kernels: Stokes requires mu > 0")
	}
	return Stokes{Mu: mu}
}

// Name implements Kernel.
func (Stokes) Name() string { return "stokes" }

// SourceDim implements Kernel.
func (Stokes) SourceDim() int { return 3 }

// TargetDim implements Kernel.
func (Stokes) TargetDim() int { return 3 }

// Homogeneity implements Kernel: both I/r and r⊗r/r³ scale as s^-1.
func (Stokes) Homogeneity() (bool, float64) { return true, -1 }

// FlopCost implements Kernel.
func (Stokes) FlopCost() int { return 28 }

// Eval implements Kernel.
func (k Stokes) Eval(rx, ry, rz float64, out []float64) {
	r2 := rx*rx + ry*ry + rz*rz
	if r2 == 0 {
		for i := range out[:9] {
			out[i] = 0
		}
		return
	}
	c := 1.0 / (8 * math.Pi * k.Mu)
	inv := 1 / math.Sqrt(r2)
	inv3 := inv * inv * inv
	diag := c * inv
	out[0] = diag + c*inv3*rx*rx
	out[1] = c * inv3 * rx * ry
	out[2] = c * inv3 * rx * rz
	out[3] = out[1]
	out[4] = diag + c*inv3*ry*ry
	out[5] = c * inv3 * ry * rz
	out[6] = out[2]
	out[7] = out[5]
	out[8] = diag + c*inv3*rz*rz
}

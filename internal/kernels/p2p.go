package kernels

import "math"

// P2P accumulates the direct particle-to-particle interaction
//
//	pot[i] += Σ_j G(trg_i, src_j) den_j
//
// into pot. Positions are flat (x0,y0,z0,x1,...) slices; den has
// SourceDim components per source and pot has TargetDim components per
// target. Self interactions (zero displacement) contribute nothing.
//
// The Laplace and Stokes kernels dispatch to hand-unrolled inner loops;
// every other kernel goes through the generic Eval path. Both paths
// produce identical results (see TestP2PSpecializationsAgree).
func P2P(k Kernel, trg, src, den, pot []float64) {
	switch kk := k.(type) {
	case Laplace:
		laplaceP2P(trg, src, den, pot)
	case Stokes:
		stokesP2P(kk.Mu, trg, src, den, pot)
	case ModLaplace:
		modLaplaceP2P(kk.Lambda, trg, src, den, pot)
	default:
		GenericP2P(k, trg, src, den, pot)
	}
}

// GenericP2P is the kernel-agnostic direct interaction loop used by P2P
// for kernels without a specialized implementation. It is exported so
// tests can verify the specialized loops against it.
func GenericP2P(k Kernel, trg, src, den, pot []float64) {
	sd, td := k.SourceDim(), k.TargetDim()
	block := make([]float64, sd*td)
	nt, ns := len(trg)/3, len(src)/3
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		for j := 0; j < ns; j++ {
			k.Eval(tx-src[3*j], ty-src[3*j+1], tz-src[3*j+2], block)
			for a := 0; a < td; a++ {
				s := 0.0
				for b := 0; b < sd; b++ {
					s += block[a*sd+b] * den[j*sd+b]
				}
				pot[i*td+a] += s
			}
		}
	}
}

func laplaceP2P(trg, src, den, pot []float64) {
	nt, ns := len(trg)/3, len(src)/3
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		sum := 0.0
		for j := 0; j < ns; j++ {
			rx := tx - src[3*j]
			ry := ty - src[3*j+1]
			rz := tz - src[3*j+2]
			r2 := rx*rx + ry*ry + rz*rz
			if r2 == 0 {
				continue
			}
			sum += den[j] / math.Sqrt(r2)
		}
		pot[i] += fourPiInv * sum
	}
}

func modLaplaceP2P(lambda float64, trg, src, den, pot []float64) {
	nt, ns := len(trg)/3, len(src)/3
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		sum := 0.0
		for j := 0; j < ns; j++ {
			rx := tx - src[3*j]
			ry := ty - src[3*j+1]
			rz := tz - src[3*j+2]
			r2 := rx*rx + ry*ry + rz*rz
			if r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			sum += den[j] * math.Exp(-lambda*r) / r
		}
		pot[i] += fourPiInv * sum
	}
}

func stokesP2P(mu float64, trg, src, den, pot []float64) {
	c := 1.0 / (8 * math.Pi * mu)
	nt, ns := len(trg)/3, len(src)/3
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		var sx, sy, sz float64
		for j := 0; j < ns; j++ {
			rx := tx - src[3*j]
			ry := ty - src[3*j+1]
			rz := tz - src[3*j+2]
			r2 := rx*rx + ry*ry + rz*rz
			if r2 == 0 {
				continue
			}
			inv := 1 / math.Sqrt(r2)
			inv3 := inv * inv * inv
			fx, fy, fz := den[3*j], den[3*j+1], den[3*j+2]
			rdotf := rx*fx + ry*fy + rz*fz
			sx += inv*fx + inv3*rdotf*rx
			sy += inv*fy + inv3*rdotf*ry
			sz += inv*fz + inv3*rdotf*rz
		}
		pot[3*i] += c * sx
		pot[3*i+1] += c * sy
		pot[3*i+2] += c * sz
	}
}

// Matrix fills out (row-major, nt*TargetDim rows by ns*SourceDim columns)
// with the dense interaction matrix between the target points trg and the
// source points src, so that pot = out * den reproduces P2P. out must
// have length (nt*td)*(ns*sd).
//
// Like P2P, the built-in scalar kernels dispatch to unrolled loops —
// batched near-field evaluation materializes these blocks on its hot
// path — and every other kernel goes through the generic Eval path.
func Matrix(k Kernel, trg, src, out []float64) {
	switch kk := k.(type) {
	case Laplace:
		laplaceMatrix(trg, src, out)
	case ModLaplace:
		modLaplaceMatrix(kk.Lambda, trg, src, out)
	default:
		genericMatrix(k, trg, src, out)
	}
}

func genericMatrix(k Kernel, trg, src, out []float64) {
	sd, td := k.SourceDim(), k.TargetDim()
	nt, ns := len(trg)/3, len(src)/3
	cols := ns * sd
	block := make([]float64, sd*td)
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		for j := 0; j < ns; j++ {
			k.Eval(tx-src[3*j], ty-src[3*j+1], tz-src[3*j+2], block)
			for a := 0; a < td; a++ {
				row := (i*td + a) * cols
				for b := 0; b < sd; b++ {
					out[row+j*sd+b] = block[a*sd+b]
				}
			}
		}
	}
}

func laplaceMatrix(trg, src, out []float64) {
	nt, ns := len(trg)/3, len(src)/3
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		row := out[i*ns : (i+1)*ns]
		for j := 0; j < ns; j++ {
			rx := tx - src[3*j]
			ry := ty - src[3*j+1]
			rz := tz - src[3*j+2]
			r2 := rx*rx + ry*ry + rz*rz
			if r2 == 0 {
				row[j] = 0
				continue
			}
			row[j] = fourPiInv / math.Sqrt(r2)
		}
	}
}

func modLaplaceMatrix(lambda float64, trg, src, out []float64) {
	nt, ns := len(trg)/3, len(src)/3
	for i := 0; i < nt; i++ {
		tx, ty, tz := trg[3*i], trg[3*i+1], trg[3*i+2]
		row := out[i*ns : (i+1)*ns]
		for j := 0; j < ns; j++ {
			rx := tx - src[3*j]
			ry := ty - src[3*j+1]
			rz := tz - src[3*j+2]
			r2 := rx*rx + ry*ry + rz*rz
			if r2 == 0 {
				row[j] = 0
				continue
			}
			r := math.Sqrt(r2)
			row[j] = fourPiInv * math.Exp(-lambda*r) / r
		}
	}
}

// P2PFlops returns the approximate flop count of one P2P call with nt
// targets and ns sources for kernel k.
func P2PFlops(k Kernel, nt, ns int) int64 {
	return int64(nt) * int64(ns) * int64(k.FlopCost()+2*k.SourceDim()*k.TargetDim())
}

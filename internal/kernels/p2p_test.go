package kernels

import (
	"math"
	"math/rand"
	"testing"
)

func randomCloud(rng *rand.Rand, n int) []float64 {
	p := make([]float64, 3*n)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}

func TestP2PSpecializationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range allKernels() {
		nt, ns := 13, 17
		trg := randomCloud(rng, nt)
		src := randomCloud(rng, ns)
		den := make([]float64, ns*k.SourceDim())
		for i := range den {
			den[i] = rng.NormFloat64()
		}
		fast := make([]float64, nt*k.TargetDim())
		slow := make([]float64, nt*k.TargetDim())
		P2P(k, trg, src, den, fast)
		GenericP2P(k, trg, src, den, slow)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-12*(math.Abs(slow[i])+1) {
				t.Fatalf("%s: specialized P2P disagrees at %d: %v vs %v", k.Name(), i, fast[i], slow[i])
			}
		}
	}
}

// TestMatrixSpecializationsAgree: the unrolled matrix fills must be
// bitwise identical to the generic Eval path (they write the same
// expression Eval computes).
func TestMatrixSpecializationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range allKernels() {
		nt, ns := 11, 14
		trg := randomCloud(rng, nt)
		// Include a coincident point: self interactions must zero out.
		src := append(randomCloud(rng, ns-1), trg[0], trg[1], trg[2])
		fast := make([]float64, nt*k.TargetDim()*ns*k.SourceDim())
		slow := make([]float64, len(fast))
		Matrix(k, trg, src, fast)
		genericMatrix(k, trg, src, slow)
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("%s: specialized Matrix disagrees at %d: %v vs %v", k.Name(), i, fast[i], slow[i])
			}
		}
	}
}

func TestP2PAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k := Laplace{}
	trg := randomCloud(rng, 4)
	src := randomCloud(rng, 5)
	den := []float64{1, 2, 3, 4, 5}
	pot := []float64{10, 20, 30, 40}
	once := make([]float64, 4)
	P2P(k, trg, src, den, once)
	P2P(k, trg, src, den, pot)
	for i := range pot {
		want := once[i] + float64(10*(i+1))
		if math.Abs(pot[i]-want) > 1e-12 {
			t.Errorf("P2P must accumulate: pot[%d]=%v want %v", i, pot[i], want)
		}
	}
}

func TestP2PSkipsSelfInteraction(t *testing.T) {
	for _, k := range allKernels() {
		pts := []float64{0.5, -0.25, 0.125}
		den := make([]float64, k.SourceDim())
		for i := range den {
			den[i] = 1
		}
		pot := make([]float64, k.TargetDim())
		P2P(k, pts, pts, den, pot)
		for i, v := range pot {
			if !(v == 0) || math.IsNaN(v) {
				t.Errorf("%s: self interaction leaked: pot[%d]=%v", k.Name(), i, v)
			}
		}
	}
}

func TestMatrixMatchesP2P(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range allKernels() {
		nt, ns := 6, 9
		sd, td := k.SourceDim(), k.TargetDim()
		trg := randomCloud(rng, nt)
		src := randomCloud(rng, ns)
		den := make([]float64, ns*sd)
		for i := range den {
			den[i] = rng.NormFloat64()
		}
		mat := make([]float64, nt*td*ns*sd)
		Matrix(k, trg, src, mat)
		viaMat := make([]float64, nt*td)
		cols := ns * sd
		for r := 0; r < nt*td; r++ {
			s := 0.0
			for c := 0; c < cols; c++ {
				s += mat[r*cols+c] * den[c]
			}
			viaMat[r] = s
		}
		direct := make([]float64, nt*td)
		P2P(k, trg, src, den, direct)
		for i := range direct {
			if math.Abs(direct[i]-viaMat[i]) > 1e-12*(math.Abs(direct[i])+1) {
				t.Fatalf("%s: Matrix path disagrees with P2P at %d", k.Name(), i)
			}
		}
	}
}

func TestP2PFlopsPositive(t *testing.T) {
	for _, k := range allKernels() {
		if P2PFlops(k, 10, 20) <= 0 {
			t.Errorf("%s: flop estimate must be positive", k.Name())
		}
	}
	if P2PFlops(Laplace{}, 0, 100) != 0 {
		t.Error("zero targets must cost zero flops")
	}
}

func BenchmarkP2PLaplace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trg := randomCloud(rng, 100)
	src := randomCloud(rng, 100)
	den := make([]float64, 100)
	pot := make([]float64, 100)
	for i := range den {
		den[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		P2P(Laplace{}, trg, src, den, pot)
	}
}

func BenchmarkP2PStokes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	trg := randomCloud(rng, 100)
	src := randomCloud(rng, 100)
	den := make([]float64, 300)
	pot := make([]float64, 300)
	for i := range den {
		den[i] = rng.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		P2P(NewStokes(1), trg, src, den, pot)
	}
}

package kernels

import "math"

// Kelvin is the Kelvin solution (Kelvinlet), the free-space Green's
// function of 3-D linear elastostatics -μΔu - μ/(1-2ν) ∇(∇·u) = 0:
//
//	S_ij(x,y) = 1/(16πμ(1-ν)) * [ (3-4ν) δ_ij / r + r_i r_j / r³ ]
//
// The paper's introduction names "simulations of linearly elastic
// materials" and "fracture mechanics" among the applications the
// kernel-independent method enables (cf. [6], [19], [26] there); no
// analytic multipole expansion of this tensor kernel is needed — it
// plugs into the FMM through Eval alone, exactly the point of the
// method. At ν = 1/2 it reduces (up to the constant) to the Stokeslet.
type Kelvin struct {
	// Mu is the shear modulus μ > 0.
	Mu float64
	// Nu is Poisson's ratio ν in (-1, 1/2].
	Nu float64
}

// NewKelvin returns the Kelvin elasticity kernel.
func NewKelvin(mu, nu float64) Kelvin {
	if mu <= 0 {
		panic("kernels: Kelvin requires mu > 0")
	}
	if nu <= -1 || nu > 0.5 {
		panic("kernels: Kelvin requires -1 < nu <= 1/2")
	}
	return Kelvin{Mu: mu, Nu: nu}
}

// Name implements Kernel.
func (Kelvin) Name() string { return "kelvin" }

// SourceDim implements Kernel.
func (Kelvin) SourceDim() int { return 3 }

// TargetDim implements Kernel.
func (Kelvin) TargetDim() int { return 3 }

// Homogeneity implements Kernel: both terms scale as 1/r.
func (Kelvin) Homogeneity() (bool, float64) { return true, -1 }

// FlopCost implements Kernel.
func (Kelvin) FlopCost() int { return 30 }

// Eval implements Kernel.
func (k Kelvin) Eval(rx, ry, rz float64, out []float64) {
	r2 := rx*rx + ry*ry + rz*rz
	if r2 == 0 {
		for i := range out[:9] {
			out[i] = 0
		}
		return
	}
	c := 1.0 / (16 * math.Pi * k.Mu * (1 - k.Nu))
	a := 3 - 4*k.Nu
	inv := 1 / math.Sqrt(r2)
	inv3 := inv * inv * inv
	diag := c * a * inv
	out[0] = diag + c*inv3*rx*rx
	out[1] = c * inv3 * rx * ry
	out[2] = c * inv3 * rx * rz
	out[3] = out[1]
	out[4] = diag + c*inv3*ry*ry
	out[5] = c * inv3 * ry * rz
	out[6] = out[2]
	out[7] = out[5]
	out[8] = diag + c*inv3*rz*rz
}

package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allKernels() []Kernel {
	return []Kernel{Laplace{}, NewModLaplace(1.5), NewStokes(0.7)}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"laplace", "modlaplace", "stokes"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if k.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, k.Name())
		}
	}
	if _, err := ByName("helmholtz"); err == nil {
		t.Error("ByName should reject unknown kernels (paper excludes oscillatory kernels)")
	}
}

func TestLaplaceValue(t *testing.T) {
	var out [1]float64
	Laplace{}.Eval(2, 0, 0, out[:])
	want := 1 / (4 * math.Pi * 2)
	if math.Abs(out[0]-want) > 1e-15 {
		t.Errorf("laplace at r=2: got %v want %v", out[0], want)
	}
}

func TestModLaplaceReducesToLaplaceAtSmallLambda(t *testing.T) {
	k := NewModLaplace(1e-12)
	var a, b [1]float64
	k.Eval(0.3, -0.4, 0.5, a[:])
	Laplace{}.Eval(0.3, -0.4, 0.5, b[:])
	if math.Abs(a[0]-b[0]) > 1e-12*math.Abs(b[0]) {
		t.Errorf("modified laplace with tiny lambda should match laplace: %v vs %v", a[0], b[0])
	}
}

func TestModLaplaceDecay(t *testing.T) {
	k := NewModLaplace(3)
	var near, far [1]float64
	k.Eval(1, 0, 0, near[:])
	k.Eval(2, 0, 0, far[:])
	// Screened kernel must decay faster than 1/r: ratio < 1/2.
	if far[0] >= near[0]/2 {
		t.Errorf("screened kernel decays too slowly: %v -> %v", near[0], far[0])
	}
}

func TestStokesSymmetryAndTrace(t *testing.T) {
	k := NewStokes(1)
	var g [9]float64
	k.Eval(0.2, -0.7, 0.4, g[:])
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if g[3*i+j] != g[3*j+i] {
				t.Fatalf("Stokeslet must be symmetric: G[%d][%d]=%v G[%d][%d]=%v", i, j, g[3*i+j], j, i, g[3*j+i])
			}
		}
	}
	// trace(G) = 1/(8πμ) (3/r + r²·r/r³) = 1/(8πμ)·4/r.
	r := math.Sqrt(0.2*0.2 + 0.7*0.7 + 0.4*0.4)
	trace := g[0] + g[4] + g[8]
	want := 4 / (8 * math.Pi * r)
	if math.Abs(trace-want) > 1e-14 {
		t.Errorf("Stokeslet trace: got %v want %v", trace, want)
	}
}

func TestZeroDisplacementGivesZeroBlock(t *testing.T) {
	for _, k := range allKernels() {
		out := make([]float64, k.SourceDim()*k.TargetDim())
		for i := range out {
			out[i] = math.NaN()
		}
		k.Eval(0, 0, 0, out)
		for i, v := range out {
			if v != 0 {
				t.Errorf("%s: self-interaction block[%d] = %v, want 0", k.Name(), i, v)
			}
		}
	}
}

func TestHomogeneityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range allKernels() {
		hom, deg := k.Homogeneity()
		if !hom {
			continue
		}
		sd, td := k.SourceDim(), k.TargetDim()
		a := make([]float64, sd*td)
		b := make([]float64, sd*td)
		for trial := 0; trial < 50; trial++ {
			rx, ry, rz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			s := math.Exp(rng.NormFloat64())
			k.Eval(rx, ry, rz, a)
			k.Eval(s*rx, s*ry, s*rz, b)
			scale := math.Pow(s, deg)
			for i := range a {
				if math.Abs(b[i]-scale*a[i]) > 1e-12*math.Abs(scale*a[i])+1e-300 {
					t.Fatalf("%s: homogeneity violated: G(sr)=%v, s^deg G(r)=%v", k.Name(), b[i], scale*a[i])
				}
			}
		}
	}
}

func TestKernelSymmetryUnderNegation(t *testing.T) {
	// All three kernels are even in r: G(-r) = G(r).
	f := func(rx, ry, rz float64) bool {
		for _, k := range allKernels() {
			n := k.SourceDim() * k.TargetDim()
			a := make([]float64, n)
			b := make([]float64, n)
			k.Eval(rx, ry, rz, a)
			k.Eval(-rx, -ry, -rz, b)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConstructorsValidate(t *testing.T) {
	mustPanic(t, func() { NewModLaplace(0) })
	mustPanic(t, func() { NewModLaplace(-1) })
	mustPanic(t, func() { NewStokes(0) })
	mustPanic(t, func() { NewStokes(-2) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

package kernels

import (
	"encoding/json"
	"math"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, k := range []Kernel{
		Laplace{},
		NewModLaplace(2.5),
		NewStokes(0.7),
		NewKelvin(2, 0.25),
	} {
		spec, err := SpecFor(k)
		if err != nil {
			t.Fatalf("SpecFor(%s): %v", k.Name(), err)
		}
		got, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("FromSpec(%s): %v", k.Name(), err)
		}
		if got != k {
			t.Errorf("round trip %s: got %#v, want %#v", k.Name(), got, k)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := SpecFor(NewKelvin(3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	k, err := FromSpec(back)
	if err != nil {
		t.Fatal(err)
	}
	if k != NewKelvin(3, 0.4) {
		t.Errorf("JSON round trip changed kernel: %#v", k)
	}
}

func TestSpecDefaultsMatchByName(t *testing.T) {
	for _, name := range []string{"laplace", "modlaplace", "stokes", "kelvin"} {
		want, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromSpec(Spec{Name: name})
		if err != nil {
			t.Fatalf("FromSpec(%s): %v", name, err)
		}
		if got != want {
			t.Errorf("%s: FromSpec default %#v != ByName %#v", name, got, want)
		}
	}
}

// normalize round-trips a spec through the kernel it describes, the
// way production code canonicalizes client-submitted specs.
func normalize(t *testing.T, s Spec) Spec {
	t.Helper()
	k, err := FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SpecFor(k)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSpecCanonical(t *testing.T) {
	a := normalize(t, Spec{Name: "stokes"})
	b := normalize(t, Spec{Name: "stokes", Params: map[string]float64{"mu": 1}})
	if a.Canonical() != b.Canonical() {
		t.Errorf("normalized canonical mismatch: %q vs %q", a.Canonical(), b.Canonical())
	}
	c := normalize(t, Spec{Name: "stokes", Params: map[string]float64{"mu": 2}})
	if c.Canonical() == a.Canonical() {
		t.Errorf("different parameters share canonical form %q", a.Canonical())
	}
	// -0.0 and +0.0 parameters describe the same kernel and must share
	// a canonical form.
	negZero := Spec{Name: "kelvin", Params: map[string]float64{"mu": 1, "nu": math.Copysign(0, -1)}}
	posZero := Spec{Name: "kelvin", Params: map[string]float64{"mu": 1, "nu": 0}}
	if negZero.Canonical() != posZero.Canonical() {
		t.Errorf("-0.0 and +0.0 canonicalize differently: %q vs %q",
			negZero.Canonical(), posZero.Canonical())
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []Spec{
		{Name: "nope"},
		{Name: "laplace", Params: map[string]float64{"mu": 1}},
		{Name: "modlaplace", Params: map[string]float64{"lambda": -1}},
		{Name: "stokes", Params: map[string]float64{"mu": 0}},
		{Name: "kelvin", Params: map[string]float64{"nu": 0.8}},
		{Name: "modlaplace", Params: map[string]float64{"lambda": math.NaN()}},
		{Name: "kelvin", Params: map[string]float64{"mu": math.NaN()}},
	}
	for _, s := range cases {
		if _, err := FromSpec(s); err == nil {
			t.Errorf("FromSpec(%+v): want error, got nil", s)
		}
	}
}

package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/parfmm"
)

// runLoadBalance reproduces the paper's observation (6) — "Load
// imbalance for highly non-uniform distributions is significant" — and
// its proposed remedy: "we plan to use workload information from
// previous time steps for load balancing". The corner-clustered
// distribution is partitioned first by particle count (the paper's
// default) and then by the previous evaluation's per-patch work
// estimates; the max/min time ratio shows the improvement.
func runLoadBalance(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Load-balance ablation (paper Discussion item 6 + future work)\n\n")
	fmt.Fprintf(&b, "%-10s %6s %16s %16s\n", "kernel", "P", "Ratio (count)", "Ratio (work-fed)")
	rng := rand.New(rand.NewSource(12345))
	n := sc.FixedN
	if n > 16000 {
		n = 16000
	}
	patches := geom.CornerClusters(rng, n, 0.3, 8)
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewStokes(1)} {
		den := geom.RandomDensities(rng, n, k.SourceDim())
		for _, p := range []int{8, 16} {
			opt := parfmm.Options{Kernel: k, Degree: 6, MaxPoints: 60, Iterations: sc.Iterations}
			first, err := parfmm.Evaluate(patches, den, p, opt)
			if err != nil {
				return "", err
			}
			opt.PatchWeights = first.PatchWork
			second, err := parfmm.Evaluate(patches, den, p, opt)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-10s %6d %16.2f %16.2f\n", k.Name(), p, first.Ratio(), second.Ratio())
		}
	}
	b.WriteString("\nThe count-weighted Morton partitioning (the paper's implementation)\n")
	b.WriteString("suffers on clustered inputs; feeding the previous interaction's\n")
	b.WriteString("per-patch work estimates back into the partitioner - the fix the\n")
	b.WriteString("paper proposes as future work - restores balance.\n")
	return b.String(), nil
}

package harness

import "testing"

func TestRunWireBench(t *testing.T) {
	rep, err := RunWireBench(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatal("frame and JSON paths decoded to different bits")
	}
	if rep.FrameBytes >= rep.JSONBytes {
		t.Errorf("frame bytes %d not smaller than JSON bytes %d", rep.FrameBytes, rep.JSONBytes)
	}
	if rep.BytesRatio <= 1 || rep.CodecRatio <= 0 {
		t.Errorf("implausible ratios: bytes=%.2f codec=%.2f", rep.BytesRatio, rep.CodecRatio)
	}
	if rep.Table == "" {
		t.Error("empty report table")
	}

	e := WireBenchTrajectoryEntry(rep, "test")
	if e.N != 2000 || e.Backend != "wire" || e.Label != "test" {
		t.Errorf("trajectory entry shape wrong: %+v", e)
	}
	if e.WireJSONBytes != rep.JSONBytes || e.WireFrameBytes != rep.FrameBytes {
		t.Errorf("trajectory entry bytes do not match report: %+v", e)
	}
}

func TestLcgFloatsDeterministicInRange(t *testing.T) {
	a := lcgFloats(512, 42)
	b := lcgFloats(512, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lcgFloats not deterministic at %d", i)
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("lcgFloats[%d]=%g outside [-1,1)", i, a[i])
		}
	}
}

package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTrajectoryRoundTrip runs a tiny real sample and checks the file
// schema, append semantics and entry invariants end to end.
func TestTrajectoryRoundTrip(t *testing.T) {
	entry, err := RunTrajectoryPoint(TrajectoryConfig{N: 400, Iterations: 1, Label: "test"})
	if err != nil {
		t.Fatalf("RunTrajectoryPoint: %v", err)
	}
	if entry.N != 400 || entry.Kernel != "laplace" || entry.Degree != 6 || entry.Backend != "fft" {
		t.Fatalf("unexpected workload shape: %+v", entry)
	}
	if entry.GitSHA == "" || entry.Date == "" {
		t.Fatalf("missing provenance: %+v", entry)
	}
	if entry.WallMS <= 0 || entry.Flops <= 0 || entry.GrantedLanes < 1 {
		t.Fatalf("implausible sample: %+v", entry)
	}
	for _, stage := range []string{"up", "down_u", "down_v", "down_w", "down_x", "eval"} {
		if _, ok := entry.StageMS[stage]; !ok {
			t.Fatalf("entry missing stage %q: %v", stage, entry.StageMS)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	if err := AppendTrajectory(path, entry); err != nil {
		t.Fatalf("AppendTrajectory (fresh): %v", err)
	}
	if err := AppendTrajectory(path, entry); err != nil {
		t.Fatalf("AppendTrajectory (existing): %v", err)
	}

	f, err := LoadTrajectory(path)
	if err != nil {
		t.Fatalf("LoadTrajectory: %v", err)
	}
	if f.Schema != TrajectorySchema {
		t.Fatalf("schema = %q, want %q", f.Schema, TrajectorySchema)
	}
	if len(f.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(f.Entries))
	}

	// The raw JSON must carry the schema marker for downstream tooling.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatalf("file is not a JSON object: %v", err)
	}
	if _, ok := top["schema"]; !ok {
		t.Fatalf("file missing top-level schema key: %s", raw)
	}
}

// TestTrajectoryRejectsForeignSchema guards against silently mixing
// incompatible formats in one file.
func TestTrajectoryRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(path); err == nil {
		t.Fatal("LoadTrajectory accepted a foreign schema")
	}
	if err := AppendTrajectory(path, TrajectoryEntry{}); err == nil {
		t.Fatal("AppendTrajectory wrote into a foreign-schema file")
	}
}

// TestLoadTrajectoryMissingFile: a fresh checkout has no trajectory yet.
func TestLoadTrajectoryMissingFile(t *testing.T) {
	f, err := LoadTrajectory(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing file should not error: %v", err)
	}
	if f.Schema != TrajectorySchema || len(f.Entries) != 0 {
		t.Fatalf("unexpected empty file: %+v", f)
	}
}

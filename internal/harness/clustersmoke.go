package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// ClusterSmokeConfig shapes the cluster smoke run: a real-TCP loopback
// cluster (coordinator + workers, each with its own listener, all in
// one process tree) evaluates a Laplace problem and is checked against
// the single-node engine. The zero value runs 2 workers x 2 lanes over
// 12000 sphere-grid points.
type ClusterSmokeConfig struct {
	N              int
	Workers        int
	LanesPerWorker int
	Seed           int64
}

func (c *ClusterSmokeConfig) defaults() {
	if c.N <= 0 {
		c.N = 12000
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.LanesPerWorker <= 0 {
		c.LanesPerWorker = 2
	}
	if c.Seed == 0 {
		c.Seed = 9
	}
}

// ClusterSmokeReport is the outcome of one cluster smoke run.
type ClusterSmokeReport struct {
	Config ClusterSmokeConfig
	// RelErr is the relative L2 error of the cluster result against the
	// single-node engine on the identical problem.
	RelErr float64
	Ranks  int
	// ScatterBytes/GatherBytes are the coordinator's control-plane
	// volumes; CommBytes/CommMsgs the rank-to-rank mesh traffic from
	// the merged real-transport timeline.
	ScatterBytes, GatherBytes int64
	CommBytes, CommMsgs       int64
	CriticalPathMS            float64
	Wall                      time.Duration
	Timeline                  *obs.Timeline
	Table                     string
}

// smokeTol is the conformance bound for the smoke run. At degree 4 the
// equivalent-surface pseudo-inverse is well conditioned and the
// distributed and single-node operator orderings agree to accumulation
// accuracy (~1e-15); see the cluster package's conformance test.
const smokeTol = 1e-12

// RunClusterSmoke boots the loopback cluster, runs one evaluation
// round-trip over real TCP, verifies it against the single-node engine
// and tears everything down. ctx bounds the whole run — node startup,
// the distributed evaluation and the single-node reference. A relative
// error above 1e-12 is an error, so CI fails loudly on a conformance
// break.
func RunClusterSmoke(ctx context.Context, cfg ClusterSmokeConfig) (*ClusterSmokeReport, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := geom.Flatten(geom.SphereGrid(rng, cfg.N, 2, 0.3))
	den := geom.RandomDensities(rng, cfg.N, 1)

	coord, err := cluster.StartCoordinator(ctx, "127.0.0.1:0", cluster.CoordinatorConfig{
		Heartbeat: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster smoke: coordinator: %w", err)
	}
	defer coord.Close()
	workers := make([]*cluster.Worker, 0, cfg.Workers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i := 0; i < cfg.Workers; i++ {
		w, err := cluster.StartWorker(ctx, cluster.WorkerConfig{
			Coordinator: coord.Addr(), Lanes: cfg.LanesPerWorker,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster smoke: worker %d: %w", i, err)
		}
		workers = append(workers, w)
	}

	start := time.Now()
	pot, evalRep, err := coord.Evaluate(ctx, cluster.EvalRequest{
		Src: pts, Den: den, Kernel: kernels.Spec{Name: "laplace"},
		Degree: 4, MaxPoints: 60,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster smoke: evaluate: %w", err)
	}
	wall := time.Since(start)

	// Single-node reference on the identical problem and options.
	ev, err := fmm.New(pts, pts, fmm.Options{
		Kernel: kernels.Laplace{}, Degree: 4, MaxPoints: 60, Backend: fmm.M2LFFT,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster smoke: reference build: %w", err)
	}
	defer ev.Close()
	ref, err := ev.EvaluateCtx(ctx, den)
	if err != nil {
		return nil, fmt.Errorf("cluster smoke: reference evaluate: %w", err)
	}
	var num, den2 float64
	for i := range ref {
		d := pot[i] - ref[i]
		num += d * d
		den2 += ref[i] * ref[i]
	}
	relErr := math.Sqrt(num / den2)

	rep := &ClusterSmokeReport{
		Config:       cfg,
		RelErr:       relErr,
		Ranks:        evalRep.Ranks,
		ScatterBytes: evalRep.ScatterBytes,
		GatherBytes:  evalRep.GatherBytes,
		Wall:         wall,
		Timeline:     evalRep.Timeline,
	}
	if tl := evalRep.Timeline; tl != nil {
		rep.CommBytes = tl.TotalBytes()
		rep.CommMsgs = int64(tl.TotalMessages())
		rep.CriticalPathMS = ms(obs.PathDuration(tl.CriticalPath()))
	}
	rep.Table = clusterSmokeTable(rep)
	if relErr > smokeTol {
		return rep, fmt.Errorf("cluster smoke: relative L2 error %g exceeds %g (cluster diverged from single node)", relErr, smokeTol)
	}
	return rep, nil
}

func clusterSmokeTable(rep *ClusterSmokeReport) string {
	var b strings.Builder
	cfg := rep.Config
	fmt.Fprintf(&b, "cluster smoke: %d workers x %d lanes = %d ranks over TCP loopback, N=%d\n",
		cfg.Workers, cfg.LanesPerWorker, rep.Ranks, cfg.N)
	fmt.Fprintf(&b, "round trip %s, rel L2 error vs single node %.3g (tolerance %g)\n",
		rep.Wall.Round(time.Millisecond), rep.RelErr, smokeTol)
	fmt.Fprintf(&b, "control plane: scatter %d B, gather %d B; mesh: %d msgs, %d B; critical path %.1fms\n",
		rep.ScatterBytes, rep.GatherBytes, rep.CommMsgs, rep.CommBytes, rep.CriticalPathMS)
	if rep.Timeline != nil {
		b.WriteString("\nrank   elapsed      busy      wait     sent(B)   recv(B)  msgs  colls\n")
		for _, l := range rep.Timeline.Loads() {
			fmt.Fprintf(&b, "%4d  %9s %9s %9s  %9d %9d  %4d  %5d\n",
				l.Rank, l.Elapsed.Round(time.Microsecond), l.Busy.Round(time.Microsecond),
				l.Wait.Round(time.Microsecond), l.BytesSent, l.BytesRecv, l.MsgsSent, l.Collectives)
		}
	}
	return b.String()
}

// ClusterSmokeTrajectoryEntry converts a smoke run into a trajectory
// sample. Ranks and the comm fields describe the real-TCP run:
// comm_bytes is the rank-to-rank mesh traffic (the quantity comparable
// with simulated parfmm samples); scatter/gather volumes ride in the
// table only.
func ClusterSmokeTrajectoryEntry(rep *ClusterSmokeReport, label string) TrajectoryEntry {
	return TrajectoryEntry{
		GitSHA:         GitSHA(),
		Date:           time.Now().UTC().Format(time.RFC3339),
		Label:          label,
		N:              rep.Config.N,
		Kernel:         kernels.Laplace{}.Name(),
		Degree:         4,
		Backend:        "fft",
		Iterations:     1,
		WallMS:         ms(rep.Wall),
		StageMS:        map[string]float64{},
		NsPerPoint:     float64(rep.Wall.Nanoseconds()) / float64(rep.Config.N),
		Ranks:          rep.Ranks,
		CommBytes:      rep.CommBytes,
		CommMsgs:       rep.CommMsgs,
		CriticalPathMS: rep.CriticalPathMS,
	}
}

package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
)

// TrajectorySchema identifies the on-disk format of BENCH_trajectory.json.
// Bump it on incompatible entry changes so downstream tooling can reject
// files it does not understand.
const TrajectorySchema = "kifmm-bench-trajectory/v1"

// TrajectoryEntry is one benchmark sample: a fixed-shape evaluation run
// at a known commit, so a series of entries tracks performance across
// the repository's history.
type TrajectoryEntry struct {
	// GitSHA is the short commit hash the sample was taken at
	// ("unknown" outside a git checkout).
	GitSHA string `json:"git_sha"`
	// Date is the sample time in RFC 3339 UTC.
	Date string `json:"date"`
	// Label is a free-form tag (-label flag), e.g. "ci" or "pr6".
	Label string `json:"label,omitempty"`
	// N, Kernel, Degree, Backend and Iterations pin the workload shape.
	N          int    `json:"n"`
	Kernel     string `json:"kernel"`
	Degree     int    `json:"degree"`
	Backend    string `json:"backend"`
	Iterations int    `json:"iterations"`
	// SetupMS is the plan construction time (octree + operators).
	SetupMS float64 `json:"setup_ms"`
	// WallMS is the mean wall-clock time of one warm evaluation.
	WallMS float64 `json:"wall_ms"`
	// StageMS breaks the mean evaluation into the paper's stages
	// (up, down_u, down_v, down_w, down_x, eval); values are compute
	// time summed across lanes, so they exceed wall when lanes > 1.
	StageMS map[string]float64 `json:"stage_ms"`
	// Flops counts floating-point operations of one evaluation.
	Flops int64 `json:"flops"`
	// GrantedLanes is the worker-lane width the timed evaluations ran at.
	GrantedLanes int `json:"granted_lanes"`
	// NsPerPoint is WallMS normalized per target point.
	NsPerPoint float64 `json:"ns_per_point"`
	// Ranks, CommBytes, CommMsgs and CriticalPathMS describe distributed
	// (parfmm) samples: simulated rank count, point-to-point traffic of
	// the run, and the merged timeline's critical-path duration. Absent
	// (zero) for single-process samples.
	Ranks          int     `json:"ranks,omitempty"`
	CommBytes      int64   `json:"comm_bytes,omitempty"`
	CommMsgs       int64   `json:"comm_msgs,omitempty"`
	CriticalPathMS float64 `json:"critical_path_ms,omitempty"`
	// WireJSONBytes/WireFrameBytes and WireJSONCodecMS/WireFrameCodecMS
	// describe wire-bench samples (-exp wire-bench): body bytes and
	// encode+decode time of one simulated evaluate round trip in each
	// HTTP encoding. Absent (zero) for every other sample kind.
	WireJSONBytes    int64   `json:"wire_json_bytes,omitempty"`
	WireFrameBytes   int64   `json:"wire_frame_bytes,omitempty"`
	WireJSONCodecMS  float64 `json:"wire_json_codec_ms,omitempty"`
	WireFrameCodecMS float64 `json:"wire_frame_codec_ms,omitempty"`
}

// TrajectoryFile is the JSON shape of BENCH_trajectory.json: a schema
// marker plus append-only entries, oldest first.
type TrajectoryFile struct {
	Schema  string            `json:"schema"`
	Entries []TrajectoryEntry `json:"entries"`
}

// TrajectoryConfig shapes one trajectory sample. The zero value runs
// the default workload (N=10000 uniform points, Laplace, degree 6, FFT
// M2L, 3 iterations).
type TrajectoryConfig struct {
	N          int
	Degree     int
	Iterations int
	Label      string
	Seed       int64
}

func (c *TrajectoryConfig) defaults() {
	if c.N <= 0 {
		c.N = 10000
	}
	if c.Degree <= 0 {
		c.Degree = 6
	}
	if c.Iterations <= 0 {
		c.Iterations = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunTrajectoryPoint executes the fixed benchmark workload and returns
// the sample: build a plan over uniform points, warm it once (operators
// are built lazily on first use), then average Iterations timed
// evaluations.
func RunTrajectoryPoint(cfg TrajectoryConfig) (TrajectoryEntry, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := geom.Flatten(geom.UniformCube(rng, cfg.N))
	den := geom.RandomDensities(rng, cfg.N, 1)

	buildStart := time.Now()
	ev, err := fmm.New(pts, pts, fmm.Options{
		Kernel: kernels.Laplace{}, Degree: cfg.Degree, Backend: fmm.M2LFFT,
	})
	if err != nil {
		return TrajectoryEntry{}, fmt.Errorf("trajectory: build: %w", err)
	}
	defer ev.Close()
	setup := time.Since(buildStart)

	// Warm run: first evaluation pays lazy operator construction.
	if _, _, err := ev.EvaluateStats(den); err != nil {
		return TrajectoryEntry{}, fmt.Errorf("trajectory: warm evaluation: %w", err)
	}

	e := TrajectoryEntry{
		GitSHA:     GitSHA(),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Label:      cfg.Label,
		N:          cfg.N,
		Kernel:     kernels.Laplace{}.Name(),
		Degree:     cfg.Degree,
		Backend:    "fft",
		Iterations: cfg.Iterations,
		SetupMS:    ms(setup),
		StageMS:    make(map[string]float64, 6),
	}
	var wall time.Duration
	stages := make(map[string]time.Duration, 6)
	for i := 0; i < cfg.Iterations; i++ {
		start := time.Now()
		_, st, err := ev.EvaluateStats(den)
		if err != nil {
			return TrajectoryEntry{}, fmt.Errorf("trajectory: evaluation %d: %w", i, err)
		}
		wall += time.Since(start)
		stages["up"] += st.Up
		stages["down_u"] += st.DownU
		stages["down_v"] += st.DownV
		stages["down_w"] += st.DownW
		stages["down_x"] += st.DownX
		stages["eval"] += st.Eval
		e.Flops = st.Flops()
		e.GrantedLanes = st.Lanes
	}
	iters := time.Duration(cfg.Iterations)
	e.WallMS = ms(wall / iters)
	for name, d := range stages {
		e.StageMS[name] = ms(d / iters)
	}
	e.NsPerPoint = float64((wall / iters).Nanoseconds()) / float64(cfg.N)
	return e, nil
}

// AppendTrajectory loads the trajectory file at path (tolerating a
// missing file), appends entry, and writes it back. The write is
// atomic (temp file + rename) so a crash cannot truncate history.
func AppendTrajectory(path string, entry TrajectoryEntry) error {
	f, err := LoadTrajectory(path)
	if err != nil {
		return err
	}
	f.Schema = TrajectorySchema
	f.Entries = append(f.Entries, entry)

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("trajectory: encode %s: %w", path, err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("trajectory: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trajectory: rename %s: %w", path, err)
	}
	return nil
}

// LoadTrajectory reads the trajectory file at path. A missing file is
// not an error: it returns an empty file ready to append to. A present
// file with a different schema is rejected rather than silently mixed.
func LoadTrajectory(path string) (TrajectoryFile, error) {
	var f TrajectoryFile
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return TrajectoryFile{Schema: TrajectorySchema}, nil
	}
	if err != nil {
		return f, fmt.Errorf("trajectory: read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("trajectory: parse %s: %w", path, err)
	}
	if f.Schema != TrajectorySchema {
		return f, fmt.Errorf("trajectory: %s has schema %q, want %q", path, f.Schema, TrajectorySchema)
	}
	return f, nil
}

// GitSHA returns the short commit hash of the working tree, or
// "unknown" when git is unavailable (e.g. a release tarball).
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if sha == "" {
		return "unknown"
	}
	return sha
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

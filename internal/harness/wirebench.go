package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/wire"
)

// Wire-bench: a codec-only comparison of the HTTP API's two bulk
// encodings. It simulates one evaluate round-trip — a densities
// request body plus a potentials response body — through JSON and
// through the binary frame encoding (internal/wire, the layouts of
// internal/service/wirehttp.go), measuring body bytes and encode+decode
// wall-clock, and verifying the two paths decode to bitwise-identical
// values. No sockets and no FMM sweep: this isolates exactly the cost
// the content-negotiated frame encoding removes.

// wireBenchReps runs each codec path several times so a sub-10ms frame
// pass is not measured off one scheduler hiccup; reported times are the
// per-pass mean.
const wireBenchReps = 3

// WireBenchReport is the outcome of one wire-bench run.
type WireBenchReport struct {
	// N is the point count; request and response each carry N float64
	// words (one density and one potential per point).
	N int
	// JSONBytes and FrameBytes are request+response body sizes.
	JSONBytes  int64
	FrameBytes int64
	// JSONCodecMS and FrameCodecMS are the mean encode+decode times of
	// one full round trip (request encode, server decode, response
	// encode, client decode).
	JSONCodecMS  float64
	FrameCodecMS float64
	// BytesRatio and CodecRatio are JSON/frame: how many times smaller
	// and faster the frame path is.
	BytesRatio float64
	CodecRatio float64
	// Identical reports that the frame and JSON paths both delivered
	// the original values bit-for-bit.
	Identical bool
	// Table is the printable summary.
	Table string
}

// wireEvalRequest and wireEvalResponse mirror the service's evaluate
// wire shapes without importing the service layer.
type wireEvalRequest struct {
	Densities []float64 `json:"densities"`
}

type wireEvalResponse struct {
	PlanID     string    `json:"plan_id"`
	Potentials []float64 `json:"potentials"`
}

// RunWireBench measures one simulated n-point evaluate round-trip in
// both encodings (n <= 0 selects the acceptance size, one million
// points).
func RunWireBench(n int) (*WireBenchReport, error) {
	if n <= 0 {
		n = 1_000_000
	}
	den := lcgFloats(n, 0x9E3779B97F4A7C15)
	pot := lcgFloats(n, 0xD1B54A32D192ED03)

	rep := &WireBenchReport{N: n}

	// JSON path: the default encoding — request and response marshaled
	// and unmarshaled the way net/http handlers do.
	var jsonDen, jsonPot []float64
	start := time.Now()
	for i := 0; i < wireBenchReps; i++ {
		reqB, err := json.Marshal(wireEvalRequest{Densities: den})
		if err != nil {
			return nil, fmt.Errorf("wirebench: encode json request: %w", err)
		}
		var req wireEvalRequest
		if err := json.Unmarshal(reqB, &req); err != nil {
			return nil, fmt.Errorf("wirebench: decode json request: %w", err)
		}
		respB, err := json.Marshal(wireEvalResponse{PlanID: "wirebench", Potentials: pot})
		if err != nil {
			return nil, fmt.Errorf("wirebench: encode json response: %w", err)
		}
		var resp wireEvalResponse
		if err := json.Unmarshal(respB, &resp); err != nil {
			return nil, fmt.Errorf("wirebench: decode json response: %w", err)
		}
		jsonDen, jsonPot = req.Densities, resp.Potentials
		rep.JSONBytes = int64(len(reqB) + len(respB))
	}
	rep.JSONCodecMS = ms(time.Since(start) / wireBenchReps)

	// Frame path: the negotiated binary encoding — the request is
	// magic + densities, the response magic + JSON meta + potentials,
	// exactly the service's layouts.
	var frameDen, framePot []float64
	start = time.Now()
	for i := 0; i < wireBenchReps; i++ {
		var wreq wire.Writer
		wreq.Grow(4 + 8 + 8*len(den))
		wreq.U32(wire.FrameMagic)
		wreq.F64s(den)
		reqB := wreq.Bytes()
		r := wire.NewReader(reqB)
		if r.U32() != wire.FrameMagic {
			return nil, fmt.Errorf("wirebench: frame request magic mismatch")
		}
		frameDen = r.F64s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("wirebench: decode frame request: %w", err)
		}
		meta, err := json.Marshal(wireEvalResponse{PlanID: "wirebench"})
		if err != nil {
			return nil, fmt.Errorf("wirebench: encode frame meta: %w", err)
		}
		var wresp wire.Writer
		wresp.Grow(4 + 4 + len(meta) + 8 + 8*len(pot))
		wresp.U32(wire.FrameMagic)
		wresp.Raw(meta)
		wresp.F64s(pot)
		respB := wresp.Bytes()
		r = wire.NewReader(respB)
		if r.U32() != wire.FrameMagic {
			return nil, fmt.Errorf("wirebench: frame response magic mismatch")
		}
		var resp wireEvalResponse
		if err := json.Unmarshal(r.Raw(), &resp); err != nil {
			return nil, fmt.Errorf("wirebench: decode frame meta: %w", err)
		}
		framePot = r.F64s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("wirebench: decode frame response: %w", err)
		}
		rep.FrameBytes = int64(len(reqB) + len(respB))
	}
	rep.FrameCodecMS = ms(time.Since(start) / wireBenchReps)

	rep.Identical = bitsEqual(den, jsonDen) && bitsEqual(pot, jsonPot) &&
		bitsEqual(den, frameDen) && bitsEqual(pot, framePot)
	rep.BytesRatio = float64(rep.JSONBytes) / float64(rep.FrameBytes)
	rep.CodecRatio = rep.JSONCodecMS / rep.FrameCodecMS
	rep.Table = wireBenchTable(rep)
	return rep, nil
}

// lcgFloats fills n deterministic float64 values in [-1, 1) from a
// 64-bit LCG, so every run (and every encoding) sees the same bits.
func lcgFloats(n int, seed uint64) []float64 {
	out := make([]float64, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		// Top 53 bits -> [0, 1), shifted to [-1, 1).
		out[i] = float64(x>>11)/float64(1<<53)*2 - 1
	}
	return out
}

// bitsEqual compares two vectors bit-for-bit (NaN-safe, signed-zero
// strict — the equality the binary wire format guarantees).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func wireBenchTable(rep *WireBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wire-bench: %d-point evaluate round trip (request densities + response potentials), %d reps\n\n", rep.N, wireBenchReps)
	b.WriteString("encoding      body bytes   codec ms\n")
	fmt.Fprintf(&b, "json        %12d %10.1f\n", rep.JSONBytes, rep.JSONCodecMS)
	fmt.Fprintf(&b, "frame       %12d %10.1f\n", rep.FrameBytes, rep.FrameCodecMS)
	fmt.Fprintf(&b, "\nframe is %.1fx smaller and %.1fx faster to encode+decode; bitwise identical: %v\n",
		rep.BytesRatio, rep.CodecRatio, rep.Identical)
	return b.String()
}

// WireBenchTrajectoryEntry converts a wire-bench run into a trajectory
// sample: no FMM sweep is involved, so only the shape and the wire_*
// fields are meaningful.
func WireBenchTrajectoryEntry(rep *WireBenchReport, label string) TrajectoryEntry {
	return TrajectoryEntry{
		GitSHA:           GitSHA(),
		Date:             time.Now().UTC().Format(time.RFC3339),
		Label:            label,
		N:                rep.N,
		Kernel:           "none",
		Backend:          "wire",
		Iterations:       wireBenchReps,
		StageMS:          map[string]float64{},
		WireJSONBytes:    rep.JSONBytes,
		WireFrameBytes:   rep.FrameBytes,
		WireJSONCodecMS:  rep.JSONCodecMS,
		WireFrameCodecMS: rep.FrameCodecMS,
	}
}

package harness

import (
	"context"
	"strings"
	"testing"
)

// TestRunClusterSmoke boots the real-TCP loopback cluster at a reduced
// size and checks the report carries the fields the CI artifact needs.
func TestRunClusterSmoke(t *testing.T) {
	rep, err := RunClusterSmoke(context.Background(), ClusterSmokeConfig{N: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 4 {
		t.Errorf("Ranks = %d, want 4 (2 workers x 2 lanes)", rep.Ranks)
	}
	if rep.RelErr > smokeTol {
		t.Errorf("RelErr = %g, want <= %g", rep.RelErr, smokeTol)
	}
	if rep.CommBytes <= 0 || rep.CommMsgs <= 0 {
		t.Errorf("mesh traffic not recorded: %d bytes, %d msgs", rep.CommBytes, rep.CommMsgs)
	}
	if rep.ScatterBytes <= 0 || rep.GatherBytes <= 0 {
		t.Errorf("control-plane traffic not recorded: scatter %d, gather %d", rep.ScatterBytes, rep.GatherBytes)
	}
	if !strings.Contains(rep.Table, "rel L2 error") {
		t.Errorf("table missing error line:\n%s", rep.Table)
	}

	e := ClusterSmokeTrajectoryEntry(rep, "smoke-test")
	if e.Ranks != rep.Ranks || e.CommBytes != rep.CommBytes || e.CommMsgs != rep.CommMsgs {
		t.Errorf("trajectory entry dropped comm fields: %+v", e)
	}
	if e.N != 3000 || e.Kernel != "laplace" || e.WallMS <= 0 {
		t.Errorf("trajectory entry workload shape wrong: %+v", e)
	}
}

package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/parfmm"
)

// ParfmmTraceConfig shapes the deterministic distributed trace run. The
// zero value runs the default workload: 4 simulated ranks over 4000
// sphere-grid points, Laplace kernel, degree 4, one timed iteration.
type ParfmmTraceConfig struct {
	Ranks      int
	N          int
	Iterations int
	Seed       int64
}

func (c *ParfmmTraceConfig) defaults() {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.N <= 0 {
		c.N = 4000
	}
	if c.Iterations <= 0 {
		c.Iterations = 1
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// ParfmmTraceReport is the outcome of one traced distributed run: the
// merged timeline, its critical path, traffic totals, and a formatted
// per-rank/per-pass breakdown table.
type ParfmmTraceReport struct {
	Config     ParfmmTraceConfig
	Result     *parfmm.Result
	Timeline   *obs.Timeline
	MaxElapsed time.Duration
	// CriticalPath is the extracted chain of compute spans and message
	// edges; CriticalPathDur its total length (= Timeline.MaxEnd()).
	CriticalPath    []obs.PathSegment
	CriticalPathDur time.Duration
	CommBytes       int64
	CommMsgs        int64
	// Table is the human-readable report printed by kifmm-bench.
	Table string
}

// RunParfmmTrace executes the traced distributed evaluation and builds
// the report. The run is deterministic in structure (message order,
// byte counts, tree shape); virtual timestamps are metered from real
// compute and vary slightly between runs.
func RunParfmmTrace(cfg ParfmmTraceConfig) (*ParfmmTraceReport, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	patches := geom.SphereGrid(rng, cfg.N, 4, 0.22)
	k := kernels.Laplace{}
	den := geom.RandomDensities(rng, geom.TotalCount(patches), k.SourceDim())

	res, err := parfmm.Evaluate(patches, den, cfg.Ranks, parfmm.Options{
		Kernel: k, Degree: 4, MaxPoints: 40, Iterations: cfg.Iterations,
		Trace: true,
	})
	if err != nil {
		return nil, fmt.Errorf("parfmm trace: %w", err)
	}
	tl := res.Timeline
	rep := &ParfmmTraceReport{
		Config:       cfg,
		Result:       res,
		Timeline:     tl,
		MaxElapsed:   res.MaxElapsed,
		CriticalPath: tl.CriticalPath(),
		CommBytes:    tl.TotalBytes(),
		CommMsgs:     int64(tl.TotalMessages()),
	}
	rep.CriticalPathDur = obs.PathDuration(rep.CriticalPath)
	rep.Table = parfmmTraceTable(rep)
	return rep, nil
}

// parfmmTraceTable renders the per-rank load report, the per-pass
// virtual-time breakdown, and a critical-path summary.
func parfmmTraceTable(rep *ParfmmTraceReport) string {
	var b strings.Builder
	cfg := rep.Config
	fmt.Fprintf(&b, "distributed trace: P=%d  N=%d  iters=%d  T(P)=%s  critical path=%s  imbalance=%.2f\n",
		cfg.Ranks, cfg.N, cfg.Iterations, rep.MaxElapsed.Round(time.Microsecond),
		rep.CriticalPathDur.Round(time.Microsecond), rep.Timeline.ImbalanceRatio())
	fmt.Fprintf(&b, "comm: %d point-to-point messages, %d bytes\n\n", rep.CommMsgs, rep.CommBytes)

	b.WriteString("rank   elapsed      busy      wait     sent(B)   recv(B)  msgs  colls\n")
	for _, l := range rep.Timeline.Loads() {
		fmt.Fprintf(&b, "%4d  %9s %9s %9s  %9d %9d  %4d  %5d\n",
			l.Rank, l.Elapsed.Round(time.Microsecond), l.Busy.Round(time.Microsecond),
			l.Wait.Round(time.Microsecond), l.BytesSent, l.BytesRecv, l.MsgsSent, l.Collectives)
	}

	// Per-pass virtual time per rank. Warm-up is reported as one row;
	// its inner passes are not folded into the per-pass rows.
	passes := []string{
		"tree_build", "assign_owners", "warmup", "source_gather", "upward",
		"source_exchange", "density_gather", "down_ux", "density_exchange",
		"down_vw_local",
	}
	byRank := make([]map[string]time.Duration, len(rep.Timeline.Ranks))
	for i, rt := range rep.Timeline.Ranks {
		byRank[i] = make(map[string]time.Duration)
		var walk func(s *obs.VSpan)
		walk = func(s *obs.VSpan) {
			if s == nil {
				return
			}
			if s.Name != "rank" && s.Name != "iteration" {
				byRank[i][s.Name] += s.Dur()
			}
			if s.Name == "warmup" {
				return
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(rt.Root)
	}
	b.WriteString("\npass (virtual time, summed over iterations)\n")
	fmt.Fprintf(&b, "%-17s", "")
	for _, rt := range rep.Timeline.Ranks {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("rank %d", rt.Rank))
	}
	b.WriteByte('\n')
	for _, p := range passes {
		fmt.Fprintf(&b, "%-17s", p)
		for i := range rep.Timeline.Ranks {
			fmt.Fprintf(&b, " %10s", byRank[i][p].Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}

	// Critical path: where the simulated wall clock actually went.
	type slot struct {
		name string
		dur  time.Duration
		n    int
	}
	agg := map[string]*slot{}
	for _, seg := range rep.CriticalPath {
		key := seg.Kind + ":" + seg.Name
		if seg.Kind != "compute" {
			key = seg.Kind
		}
		s := agg[key]
		if s == nil {
			s = &slot{name: key}
			agg[key] = s
		}
		s.dur += seg.Dur()
		s.n++
	}
	slots := make([]*slot, 0, len(agg))
	for _, s := range agg {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].dur > slots[j].dur })
	fmt.Fprintf(&b, "\ncritical path (%d segments)\n", len(rep.CriticalPath))
	for _, s := range slots {
		pct := 0.0
		if rep.CriticalPathDur > 0 {
			pct = 100 * float64(s.dur) / float64(rep.CriticalPathDur)
		}
		fmt.Fprintf(&b, "%-25s %10s  %5.1f%%  x%d\n", s.name, s.dur.Round(time.Microsecond), pct, s.n)
	}
	return b.String()
}

// ParfmmTrajectoryEntry converts a traced distributed run into a
// trajectory sample carrying the distributed-run fields (ranks, traffic
// and critical-path duration) alongside the usual shape and timing.
func ParfmmTrajectoryEntry(rep *ParfmmTraceReport, label string) TrajectoryEntry {
	res := rep.Result
	e := TrajectoryEntry{
		GitSHA:         GitSHA(),
		Date:           time.Now().UTC().Format(time.RFC3339),
		Label:          label,
		N:              rep.Config.N,
		Kernel:         kernels.Laplace{}.Name(),
		Degree:         4,
		Backend:        "fft",
		Iterations:     rep.Config.Iterations,
		WallMS:         ms(res.MaxTotal()),
		StageMS:        make(map[string]float64, 6),
		Ranks:          rep.Config.Ranks,
		CommBytes:      rep.CommBytes,
		CommMsgs:       rep.CommMsgs,
		CriticalPathMS: ms(rep.CriticalPathDur),
	}
	iters := time.Duration(rep.Config.Iterations)
	var stages = map[string]time.Duration{}
	for _, rs := range res.Ranks {
		stages["up"] += rs.Stats.Up / iters
		stages["down_u"] += rs.Stats.DownU / iters
		stages["down_v"] += rs.Stats.DownV / iters
		stages["down_w"] += rs.Stats.DownW / iters
		stages["down_x"] += rs.Stats.DownX / iters
		stages["eval"] += rs.Stats.Eval / iters
		e.Flops += rs.Stats.Flops() / int64(rep.Config.Iterations)
	}
	for name, d := range stages {
		e.StageMS[name] = ms(d)
	}
	e.NsPerPoint = float64(res.MaxTotal().Nanoseconds()) / float64(rep.Config.N)
	return e
}

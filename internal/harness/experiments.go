package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
)

// Scale controls how far the scaled-down reproduction pushes N and P.
// The paper used 3.2M-700M particles on up to 3000 processors; this
// reproduction runs every rank on one host, so the defaults keep a full
// suite under a few minutes. Multiply for closer-to-paper runs.
type Scale struct {
	// FixedN is the fixed-size particle count (paper: 3.2M).
	FixedN int
	// FixedProcs sweeps the fixed-size study (paper: 1..1024).
	FixedProcs []int
	// Grain is the isogranular per-rank count (paper: 200k).
	Grain int
	// IsoProcs sweeps the isogranular study (paper: 1..2048).
	IsoProcs []int
	// LargeProcs is the processor count of the "largest runs" table
	// (paper: 3000).
	LargeProcs int
	// LargeGrains are the per-rank counts of the three Table 4.3 rows
	// (paper: 100k, 230k, 230k).
	LargeGrains [3]int
	// Iterations averages each measurement.
	Iterations int
}

// DefaultScale finishes the full suite in minutes on one core.
func DefaultScale() Scale {
	return Scale{
		FixedN:      24000,
		FixedProcs:  []int{1, 2, 4, 8, 16, 32, 64},
		Grain:       1500,
		IsoProcs:    []int{1, 2, 4, 8, 16, 32},
		LargeProcs:  48,
		LargeGrains: [3]int{400, 900, 900},
		Iterations:  1,
	}
}

// Experiment couples a paper artifact id with the code that regenerates
// it.
type Experiment struct {
	// ID is the paper artifact ("table4.1", "fig4.2", ...).
	ID string
	// Description summarizes the paper content being reproduced.
	Description string
	// Run produces the formatted reproduction.
	Run func(sc Scale) (string, error)
}

// Experiments enumerates every table and figure of the paper's
// evaluation section with its regeneration code.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:          "table4.1",
			Description: "Fixed-size scalability (3.2M particles in the paper): Laplacian, modified Laplacian, Stokes (non-uniform)",
			Run:         runTable41,
		},
		{
			ID:          "fig4.2",
			Description: "Fixed-size per-stage cycles/particle and Mflop/s per processor",
			Run:         runFig42,
		},
		{
			ID:          "table4.2",
			Description: "Isogranular scalability (200k particles/proc in the paper): Laplace uniform, Stokes uniform, Stokes non-uniform",
			Run:         runTable42,
		},
		{
			ID:          "fig4.3",
			Description: "Isogranular per-stage cycles/particle and Mflop/s per processor",
			Run:         runFig43,
		},
		{
			ID:          "table4.3",
			Description: "Largest runs (3000 processors in the paper), s=120",
			Run:         runTable43,
		},
		{
			ID:          "ablation-m2l",
			Description: "FFT vs dense M2L (paper footnote 5)",
			Run:         runAblationM2L,
		},
		{
			ID:          "ablation-loadbalance",
			Description: "Load imbalance on non-uniform inputs and the work-estimate fix (Discussion item 6 / future work)",
			Run:         runLoadBalance,
		},
		{
			ID:          "exec-workers",
			Description: "Shared-memory executor: real wall-clock speedup over worker counts and multi-RHS batch amortization (internal/exec)",
			Run:         runExecWorkers,
		},
	}
}

// runExecWorkers measures the shared-memory engine directly: unlike the
// virtual-time MPI simulation of the other experiments, these are real
// wall-clock timings of one process fanning per-box work over a
// goroutine pool, plus the per-RHS amortization of batched evaluation.
func runExecWorkers(sc Scale) (string, error) {
	cfg := Config{Kernel: kernels.Laplace{}, Distribution: "spheres"}
	patches := cfg.Points(sc.FixedN)
	pts := geom.Flatten(patches)
	rng := rand.New(rand.NewSource(7))
	den := geom.RandomDensities(rng, len(pts)/3, 1)

	var b strings.Builder
	b.WriteString("Shared-memory parallel executor (wall clock, not simulated)\n")
	fmt.Fprintf(&b, "N=%d, Laplace, FFT M2L; GOMAXPROCS=%d\n\n", len(pts)/3, runtime.GOMAXPROCS(0))

	fmt.Fprintf(&b, "%8s %12s %9s %6s\n", "workers", "T(wall)", "speedup", "eff")
	var t1 time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		// A dedicated idle pool per width: the elastic grant then equals
		// w exactly, even beyond the core count.
		ev, err := fmm.New(pts, pts, fmm.Options{Kernel: kernels.Laplace{}, Workers: w, Pool: exec.NewElastic(w)})
		if err != nil {
			return "", err
		}
		if _, err := ev.Evaluate(den); err != nil { // warm the operator caches
			return "", err
		}
		start := time.Now()
		iters := sc.Iterations
		if iters < 1 {
			iters = 1
		}
		for i := 0; i < iters; i++ {
			if _, err := ev.Evaluate(den); err != nil {
				return "", err
			}
		}
		wall := time.Since(start) / time.Duration(iters)
		if w == 1 {
			t1 = wall
		}
		speedup := float64(t1) / float64(wall)
		fmt.Fprintf(&b, "%8d %12v %9.2f %6.2f\n",
			w, wall.Round(time.Microsecond), speedup, speedup/float64(w))
	}

	b.WriteString("\nMulti-RHS batching (workers = GOMAXPROCS)\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "batch", "T(wall)", "per-RHS")
	ev, err := fmm.New(pts, pts, fmm.Options{Kernel: kernels.Laplace{}})
	if err != nil {
		return "", err
	}
	if _, err := ev.Evaluate(den); err != nil {
		return "", err
	}
	for _, nrhs := range []int{1, 4, 8} {
		dens := make([][]float64, nrhs)
		for q := range dens {
			dens[q] = geom.RandomDensities(rng, len(pts)/3, 1)
		}
		start := time.Now()
		if _, err := ev.EvaluateBatch(dens); err != nil {
			return "", err
		}
		wall := time.Since(start)
		fmt.Fprintf(&b, "%8d %14v %14v\n",
			nrhs, wall.Round(time.Microsecond), (wall / time.Duration(nrhs)).Round(time.Microsecond))
	}
	b.WriteString("\nThe workers sweep is the real-hardware counterpart of the simulated\n")
	b.WriteString("Table 4.1: per-box independence within each pass is what the paper's\n")
	b.WriteString("parallel algorithm exploits, here over a goroutine pool.\n")
	return b.String(), nil
}

// fixedConfigs are the three kernel/distribution pairs of Table 4.1.
func fixedConfigs(sc Scale) []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"Laplacian kernel, uniform particle distribution", Config{
			Kernel: kernels.Laplace{}, Distribution: "spheres",
			N: sc.FixedN, Procs: sc.FixedProcs, Iterations: sc.Iterations}},
		{"Modified Laplacian kernel, uniform particle distribution", Config{
			Kernel: kernels.NewModLaplace(1), Distribution: "spheres",
			N: sc.FixedN, Procs: sc.FixedProcs, Iterations: sc.Iterations}},
		{"Stokes kernel, non-uniform particle distribution", Config{
			Kernel: kernels.NewStokes(1), Distribution: "corners",
			N: sc.FixedN, Procs: sc.FixedProcs, Iterations: sc.Iterations}},
	}
}

func runTable41(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Table 4.1 reproduction — fixed-size scalability\n")
	fmt.Fprintf(&b, "(scaled: N=%d vs the paper's 3.2M; virtual-time simulation)\n\n", sc.FixedN)
	for _, c := range fixedConfigs(sc) {
		rows, err := FixedSize(c.cfg)
		if err != nil {
			return "", err
		}
		b.WriteString(Table(c.name, rows))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runFig42(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 4.2 reproduction — fixed-size per-stage breakdown\n\n")
	for _, c := range fixedConfigs(sc) {
		rows, err := FixedSize(c.cfg)
		if err != nil {
			return "", err
		}
		b.WriteString(FigureCycles(c.name, rows, 1))
		b.WriteString(FigureRates(c.name, rows))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// isoConfigs are the three rows of Table 4.2.
func isoConfigs(sc Scale) []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"Laplacian kernel, uniform particle distribution", Config{
			Kernel: kernels.Laplace{}, Distribution: "spheres",
			Grain: sc.Grain, Procs: sc.IsoProcs, Iterations: sc.Iterations}},
		{"Stokes kernel, uniform particle distribution", Config{
			Kernel: kernels.NewStokes(1), Distribution: "spheres",
			Grain: sc.Grain, Procs: sc.IsoProcs, Iterations: sc.Iterations}},
		{"Stokes kernel, non-uniform particle distribution", Config{
			Kernel: kernels.NewStokes(1), Distribution: "corners",
			Grain: sc.Grain, Procs: sc.IsoProcs, Iterations: sc.Iterations}},
	}
}

func runTable42(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Table 4.2 reproduction — isogranular scalability\n")
	fmt.Fprintf(&b, "(scaled: %d particles/proc vs the paper's 200k)\n\n", sc.Grain)
	for _, c := range isoConfigs(sc) {
		rows, err := Isogranular(c.cfg)
		if err != nil {
			return "", err
		}
		b.WriteString(Table(c.name, rows))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runFig43(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 4.3 reproduction — isogranular per-stage breakdown\n\n")
	for _, c := range isoConfigs(sc) {
		rows, err := Isogranular(c.cfg)
		if err != nil {
			return "", err
		}
		b.WriteString(FigureCycles(c.name, rows, 1))
		b.WriteString(FigureRates(c.name, rows))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// runTable43 reproduces the "3000 processor runs": three problems at the
// largest processor count, s = 120 (the paper doubles s there to cut
// tree construction cost).
func runTable43(sc Scale) (string, error) {
	rows3 := []struct {
		name string
		cfg  Config
	}{
		{"Laplace, 512 spheres", Config{
			Kernel: kernels.Laplace{}, Distribution: "spheres",
			N: sc.LargeGrains[0] * sc.LargeProcs, Procs: []int{sc.LargeProcs},
			MaxPoints: 120, Iterations: sc.Iterations}},
		{"Laplace (larger), 512 spheres", Config{
			Kernel: kernels.Laplace{}, Distribution: "spheres",
			N: sc.LargeGrains[1] * sc.LargeProcs, Procs: []int{sc.LargeProcs},
			MaxPoints: 120, Iterations: sc.Iterations}},
		{"Stokes, 512 spheres", Config{
			Kernel: kernels.NewStokes(1), Distribution: "spheres",
			N: sc.LargeGrains[2] * sc.LargeProcs, Procs: []int{sc.LargeProcs},
			MaxPoints: 120, Iterations: sc.Iterations}},
	}
	var b strings.Builder
	b.WriteString("Table 4.3 reproduction — largest runs\n")
	fmt.Fprintf(&b, "(scaled: P=%d vs the paper's 3000; s=120 as in the paper)\n\n", sc.LargeProcs)
	fmt.Fprintf(&b, "%-28s %10s %10s %6s %9s %9s %9s | %9s %9s | %9s\n",
		"problem", "unknowns", "Total(s)", "Ratio", "Comm(s)", "Up(s)", "Down(s)", "AvgGF/s", "PeakGF/s", "Tree(s)")
	for _, c := range rows3 {
		rows, err := FixedSize(c.cfg)
		if err != nil {
			return "", err
		}
		r := rows[0]
		unknowns := r.N * c.cfg.Kernel.TargetDim()
		fmt.Fprintf(&b, "%-28s %10d %10.3f %6.2f %9.3f %9.3f %9.3f | %9.3f %9.3f | %9.3f\n",
			c.name, unknowns, r.Total.Seconds(), r.Ratio, r.Comm.Seconds(),
			r.Up.Seconds(), r.Down.Seconds(), r.AvgGF, r.PeakGF, r.Tree.Seconds())
	}
	return b.String(), nil
}

// runAblationM2L reproduces the trade-off of the paper's footnote 5: the
// dense M2L runs at a higher flop rate but performs asymptotically more
// work than the FFT path.
func runAblationM2L(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("M2L backend ablation (paper footnote 5)\n\n")
	fmt.Fprintf(&b, "%-8s %-8s %12s %14s %14s\n", "kernel", "backend", "DownV(s)", "V flops", "V Mflop/s")
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewStokes(1)} {
		for _, be := range []struct {
			name string
			b    fmm.M2LBackend
		}{{"fft", fmm.M2LFFT}, {"dense", fmm.M2LDense}} {
			cfg := Config{
				Kernel: k, Distribution: "spheres", N: sc.FixedN,
				Procs: []int{1}, Backend: be.b, Iterations: sc.Iterations,
			}
			rows, err := FixedSize(cfg)
			if err != nil {
				return "", err
			}
			r := rows[0]
			rate := 0.0
			if r.Stage.DownV > 0 {
				rate = float64(r.Stage.FlopsDownV) / r.Stage.DownV.Seconds() / 1e6
			}
			fmt.Fprintf(&b, "%-8s %-8s %12.3f %14d %14.1f\n",
				k.Name(), be.name, r.Stage.DownV.Seconds(), r.Stage.FlopsDownV, rate)
		}
	}
	b.WriteString("\nNote: flop counts are algorithmic (the FFT path counts ~n log n grid work),\n")
	b.WriteString("so compare the DownV wall-clock columns: the FFT backend wins while its\n")
	b.WriteString("nominal flop rate is lower, exactly the paper's observation.\n")
	return b.String(), nil
}

// Elapse is a tiny helper for CLI progress lines.
func Elapse(start time.Time) string { return time.Since(start).Round(time.Millisecond).String() }

package harness

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/mpi"
)

func tinyConfig() Config {
	return Config{
		Kernel: kernels.Laplace{}, Distribution: "uniform",
		N: 1500, Grain: 400, Procs: []int{1, 2},
		MaxPoints: 40, Degree: 4,
		Machine: mpi.Machine{Latency: 1000, Bandwidth: 1e9},
	}
}

func TestFixedSizeRows(t *testing.T) {
	rows, err := FixedSize(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.N != 1500 {
			t.Errorf("fixed-size N drifted: %d", r.N)
		}
		if r.Total <= 0 || r.Flops <= 0 {
			t.Errorf("row not populated: %+v", r)
		}
		if r.Ratio < 1 {
			t.Errorf("ratio %v < 1", r.Ratio)
		}
		if r.AvgGF <= 0 {
			t.Errorf("no flop rate")
		}
	}
	// More ranks must not increase the aggregate flop count much (the
	// redundant near-root work is small).
	if rows[1].Flops < rows[0].Flops {
		t.Errorf("flops shrank with more ranks: %d -> %d", rows[0].Flops, rows[1].Flops)
	}
}

func TestIsogranularRows(t *testing.T) {
	rows, err := Isogranular(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].N != 400 || rows[1].N != 800 {
		t.Errorf("isogranular N: %d, %d", rows[0].N, rows[1].N)
	}
}

func TestFormatters(t *testing.T) {
	rows, err := FixedSize(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table("test table", rows)
	if !strings.Contains(tbl, "Total(s)") || !strings.Contains(tbl, "Tree(s)") {
		t.Errorf("table missing columns:\n%s", tbl)
	}
	fig := FigureCycles("fig", rows, 1)
	for _, col := range []string{"Up", "Comm", "DownV", "eff"} {
		if !strings.Contains(fig, col) {
			t.Errorf("figure missing %s:\n%s", col, fig)
		}
	}
	rates := FigureRates("rates", rows)
	if !strings.Contains(rates, "Peak") {
		t.Errorf("rates missing Peak:\n%s", rates)
	}
	csv := CSV(rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Errorf("csv rows:\n%s", csv)
	}
}

func TestExperimentsEnumerateAllArtifacts(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"table4.1", "table4.2", "table4.3", "fig4.2", "fig4.3", "ablation-m2l", "ablation-loadbalance"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestDistributionsResolve(t *testing.T) {
	for _, d := range []string{"spheres", "corners", "uniform"} {
		c := tinyConfig()
		c.Distribution = d
		patches := c.Points(500)
		total := 0
		for i := range patches {
			total += patches[i].Count()
		}
		if total != 500 {
			t.Errorf("%s: %d points, want 500", d, total)
		}
	}
}

// TestTinyEndToEndSuite runs a miniature of the full experiment suite to
// guarantee every artifact regenerates without error.
func TestTinyEndToEndSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run skipped in -short mode")
	}
	sc := Scale{
		FixedN: 1200, FixedProcs: []int{1, 2},
		Grain: 300, IsoProcs: []int{1, 2},
		LargeProcs: 2, LargeGrains: [3]int{200, 300, 300},
		Iterations: 1,
	}
	for _, e := range Experiments() {
		out, err := e.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 100 {
			t.Errorf("%s produced suspiciously little output", e.ID)
		}
	}
}

package harness

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunParfmmTrace runs a small traced distributed experiment and
// checks the report invariants: critical path ≈ T(P), a renderable
// breakdown table, and a Chrome trace file that parses.
func TestRunParfmmTrace(t *testing.T) {
	rep, err := RunParfmmTrace(ParfmmTraceConfig{N: 1200})
	if err != nil {
		t.Fatalf("RunParfmmTrace: %v", err)
	}
	if rep.Config.Ranks != 4 || len(rep.Timeline.Ranks) != 4 {
		t.Fatalf("want the default 4 ranks, got config %d / timeline %d",
			rep.Config.Ranks, len(rep.Timeline.Ranks))
	}
	if rep.MaxElapsed <= 0 || rep.CriticalPathDur <= 0 {
		t.Fatalf("empty durations: %+v", rep)
	}
	rel := float64(rep.MaxElapsed-rep.CriticalPathDur) / float64(rep.MaxElapsed)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.01 {
		t.Errorf("critical path %v vs T(P) %v: relative error %.4f > 1%%",
			rep.CriticalPathDur, rep.MaxElapsed, rel)
	}
	if rep.CommMsgs <= 0 || rep.CommBytes <= 0 {
		t.Errorf("no communication recorded: %d msgs / %d bytes", rep.CommMsgs, rep.CommBytes)
	}
	for _, want := range []string{"distributed trace:", "critical path", "rank", "down_vw_local"} {
		if !strings.Contains(rep.Table, want) {
			t.Errorf("table missing %q:\n%s", want, rep.Table)
		}
	}

	// The Chrome export (what CI uploads as the parfmm-trace artifact)
	// must be valid trace-event JSON.
	var buf bytes.Buffer
	if err := rep.Timeline.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 || trace.DisplayUnit != "ms" {
		t.Fatalf("implausible Chrome trace: %d events, unit %q", len(trace.TraceEvents), trace.DisplayUnit)
	}

	// The trajectory sample carries the distributed fields and survives
	// the append/load round trip.
	entry := ParfmmTrajectoryEntry(rep, "test")
	if entry.Ranks != 4 || entry.CommBytes != rep.CommBytes || entry.CommMsgs != rep.CommMsgs {
		t.Fatalf("trajectory entry distributed fields: %+v", entry)
	}
	if entry.CriticalPathMS <= 0 {
		t.Fatalf("CriticalPathMS = %v, want > 0", entry.CriticalPathMS)
	}
	path := filepath.Join(t.TempDir(), "traj.json")
	if err := AppendTrajectory(path, entry); err != nil {
		t.Fatalf("AppendTrajectory: %v", err)
	}
	f, err := LoadTrajectory(path)
	if err != nil {
		t.Fatalf("LoadTrajectory: %v", err)
	}
	if len(f.Entries) != 1 || f.Entries[0].Ranks != 4 {
		t.Fatalf("round-tripped entries: %+v", f.Entries)
	}
	if f.Entries[0].CriticalPathMS != entry.CriticalPathMS {
		t.Errorf("CriticalPathMS lost in round trip: %v vs %v",
			f.Entries[0].CriticalPathMS, entry.CriticalPathMS)
	}
}

// TestTrajectoryDistributedFieldsOmitted pins the schema compatibility
// rule: single-process samples must not grow the new distributed keys.
func TestTrajectoryDistributedFieldsOmitted(t *testing.T) {
	raw, err := json.Marshal(TrajectoryEntry{N: 10, StageMS: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ranks", "comm_bytes", "comm_msgs", "critical_path_ms"} {
		if strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("zero-valued %q serialized: %s", key, raw)
		}
	}
	// And a distributed entry round-trips them.
	raw, err = json.Marshal(TrajectoryEntry{Ranks: 4, CommBytes: 10, CommMsgs: 2, CriticalPathMS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	var back TrajectoryEntry
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ranks != 4 || back.CommBytes != 10 || back.CommMsgs != 2 || back.CriticalPathMS != 1.5 {
		t.Errorf("distributed fields lost: %+v", back)
	}
}

// Package harness regenerates the paper's evaluation (Section 4): the
// fixed-size scalability study (Table 4.1, Figure 4.2), the isogranular
// study (Table 4.2, Figure 4.3) and the largest runs (Table 4.3). Each
// experiment sweeps simulated processor counts with the parallel KIFMM
// and reports the same columns the paper prints: Total/Ratio/Comm/Up/
// Down wall-clock (virtual) times, average and peak Gflop rates, tree
// construction time, plus the figures' per-stage aggregate
// cycles-per-particle series and per-processor Mflop/s rates.
package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/parfmm"
)

// Config describes one scalability sweep.
type Config struct {
	// Kernel under test.
	Kernel kernels.Kernel
	// Distribution is "spheres" (the 512-sphere grid), "corners" (the
	// non-uniform corner clusters) or "uniform".
	Distribution string
	// N is the total particle count (fixed-size experiments).
	N int
	// Grain is the per-processor particle count (isogranular).
	Grain int
	// Procs are the simulated processor counts to sweep.
	Procs []int
	// MaxPoints is the leaf threshold s (paper: 60, largest runs 120).
	MaxPoints int
	// Degree is the surface degree p.
	Degree int
	// Iterations averages the interaction evaluation (paper: "averaged
	// over several iterations").
	Iterations int
	// Machine is the interconnect model.
	Machine mpi.Machine
	// Seed fixes the particle sampling.
	Seed int64
	// ClockGHz converts virtual seconds to the paper's "aggregate CPU
	// cycles per particle" metric (TCS-1: 1 GHz).
	ClockGHz float64
	// Backend selects the M2L path.
	Backend fmm.M2LBackend
}

func (c *Config) fill() {
	if c.Distribution == "" {
		c.Distribution = "spheres"
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = 60
	}
	if c.Degree == 0 {
		c.Degree = 6
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.Machine == (mpi.Machine{}) {
		c.Machine = mpi.DefaultMachine()
	}
	if c.ClockGHz == 0 {
		c.ClockGHz = 1
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{1, 2, 4, 8}
	}
}

// Row is one sweep point (one table line).
type Row struct {
	P, N     int
	Total    time.Duration // interaction time, averaged across ranks
	Ratio    float64       // max/min per-rank interaction time
	Comm     time.Duration // average communication time
	Up, Down time.Duration // average upward / downward compute time
	Tree     time.Duration // tree construction + setup (max across ranks)
	AvgGF    float64       // aggregate Gflop/s during the interaction
	PeakGF   float64       // aggregate peak Gflop/s (best stage rate x P)
	Flops    int64         // total flops across ranks
	Stage    fmm.Stats     // per-stage totals across ranks (for figures)
	CommMax  time.Duration // slowest rank's comm time
	MaxTotal time.Duration // slowest rank's interaction time (T(P))
}

// Points builds the configured particle distribution.
func (c Config) Points(n int) []geom.Patch {
	rng := rand.New(rand.NewSource(c.Seed + int64(n)))
	switch c.Distribution {
	case "corners":
		return geom.CornerClusters(rng, n, 0.3, 8)
	case "uniform":
		// Split into patches on a 4x4x4 grid of slabs for partitioning
		// granularity: reuse the sphere sampler machinery.
		return geom.SphereGrid(rng, n, 4, 0.22)
	default: // "spheres": the paper's 512-sphere set
		return geom.SphereGrid(rng, n, 8, 0.1)
	}
}

// runOne executes the parallel evaluation for one processor count.
func (c Config) runOne(p, n int) (Row, error) {
	patches := c.Points(n)
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	den := geom.RandomDensities(rng, geom.TotalCount(patches), c.Kernel.SourceDim())
	res, err := parfmm.Evaluate(patches, den, p, parfmm.Options{
		Kernel: c.Kernel, Degree: c.Degree, MaxPoints: c.MaxPoints,
		Backend: c.Backend, Machine: c.Machine, Iterations: c.Iterations,
	})
	if err != nil {
		return Row{}, err
	}
	row := Row{P: p, N: n, Ratio: res.Ratio(), MaxTotal: res.MaxTotal()}
	var sumTotal, sumComm, sumUp, sumDown time.Duration
	var peakRate float64
	iters := time.Duration(c.Iterations)
	for _, rs := range res.Ranks {
		sumTotal += rs.Total
		sumComm += rs.Comm
		sumUp += rs.Stats.Up / iters
		down := (rs.Stats.DownU + rs.Stats.DownV + rs.Stats.DownW + rs.Stats.DownX + rs.Stats.Eval) / iters
		sumDown += down
		row.Flops += rs.Stats.Flops() / int64(c.Iterations)
		row.Stage.Add(rs.Stats)
		if rs.TreeTime > row.Tree {
			row.Tree = rs.TreeTime
		}
		if rs.Comm > row.CommMax {
			row.CommMax = rs.Comm
		}
		for _, sr := range stageRates(rs.Stats) {
			if sr > peakRate {
				peakRate = sr
			}
		}
	}
	np := time.Duration(p)
	row.Total = sumTotal / np
	row.Comm = sumComm / np
	row.Up = sumUp / np
	row.Down = sumDown / np
	if row.Total > 0 {
		row.AvgGF = float64(row.Flops) / row.Total.Seconds() / 1e9
	}
	row.PeakGF = peakRate * float64(p) / 1e9
	// Normalize the per-stage aggregate to one iteration.
	row.Stage = scaleStats(row.Stage, c.Iterations)
	return row, nil
}

// stageRates returns the flop rates of each nonzero stage of one rank.
func stageRates(s fmm.Stats) []float64 {
	out := []float64{}
	add := func(f int64, d time.Duration) {
		if d > 0 && f > 0 {
			out = append(out, float64(f)/d.Seconds())
		}
	}
	add(s.FlopsUp, s.Up)
	add(s.FlopsDownU, s.DownU)
	add(s.FlopsDownV, s.DownV)
	add(s.FlopsDownW, s.DownW)
	add(s.FlopsDownX, s.DownX)
	add(s.FlopsEval, s.Eval)
	return out
}

func scaleStats(s fmm.Stats, iters int) fmm.Stats {
	n := time.Duration(iters)
	m := int64(iters)
	return fmm.Stats{
		Up: s.Up / n, DownU: s.DownU / n, DownV: s.DownV / n,
		DownW: s.DownW / n, DownX: s.DownX / n, Eval: s.Eval / n,
		FlopsUp: s.FlopsUp / m, FlopsDownU: s.FlopsDownU / m,
		FlopsDownV: s.FlopsDownV / m, FlopsDownW: s.FlopsDownW / m,
		FlopsDownX: s.FlopsDownX / m, FlopsEval: s.FlopsEval / m,
	}
}

// FixedSize sweeps processor counts at constant N (Table 4.1 / Fig 4.2).
func FixedSize(cfg Config) ([]Row, error) {
	cfg.fill()
	if cfg.N == 0 {
		cfg.N = 48000
	}
	rows := make([]Row, 0, len(cfg.Procs))
	for _, p := range cfg.Procs {
		r, err := cfg.runOne(p, cfg.N)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Isogranular sweeps processor counts at constant grain (Table 4.2 /
// Fig 4.3): N = Grain * P.
func Isogranular(cfg Config) ([]Row, error) {
	cfg.fill()
	if cfg.Grain == 0 {
		cfg.Grain = 3000
	}
	rows := make([]Row, 0, len(cfg.Procs))
	for _, p := range cfg.Procs {
		r, err := cfg.runOne(p, cfg.Grain*p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table renders rows in the paper's Table 4.1/4.2 layout.
func Table(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%6s %10s %6s %9s %9s %9s | %9s %9s | %9s\n",
		"P", "Total(s)", "Ratio", "Comm(s)", "Up(s)", "Down(s)", "AvgGF/s", "PeakGF/s", "Tree(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10.3f %6.2f %9.3f %9.3f %9.3f | %9.3f %9.3f | %9.3f\n",
			r.P, r.Total.Seconds(), r.Ratio, r.Comm.Seconds(), r.Up.Seconds(), r.Down.Seconds(),
			r.AvgGF, r.PeakGF, r.Tree.Seconds())
	}
	return b.String()
}

// FigureCycles renders the left column of Figures 4.2/4.3: aggregate CPU
// cycles per particle, broken down by stage (Up, Comm, DownU, DownV,
// DownW, DownX, Eval), plus work efficiency T(1)/(P*T(P)) when a P=1 row
// is present.
func FigureCycles(title string, rows []Row, ghz float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (cycles/particle in thousands, clock %.1f GHz)\n", title, ghz)
	fmt.Fprintf(&b, "%6s %8s %8s %8s %8s %8s %8s %8s %8s | %6s\n",
		"P", "Up", "Comm", "DownU", "DownV", "DownW", "DownX", "Eval", "total", "eff")
	var t1 time.Duration
	for _, r := range rows {
		if r.P == 1 {
			t1 = r.Total
		}
	}
	for _, r := range rows {
		cyc := func(d time.Duration) float64 {
			// Aggregate cycles per particle: stage time summed over ranks
			// times clock rate, divided by N.
			return d.Seconds() * ghz * 1e9 / float64(r.N) / 1e3
		}
		commAgg := time.Duration(r.P) * r.Comm
		totalAgg := time.Duration(r.P) * r.Total
		eff := 0.0
		if t1 > 0 && r.Total > 0 {
			eff = t1.Seconds() / (float64(r.P) * r.Total.Seconds())
		}
		fmt.Fprintf(&b, "%6d %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f | %6.2f\n",
			r.P, cyc(r.Stage.Up), cyc(commAgg), cyc(r.Stage.DownU), cyc(r.Stage.DownV),
			cyc(r.Stage.DownW), cyc(r.Stage.DownX), cyc(r.Stage.Eval), cyc(totalAgg), eff)
	}
	return b.String()
}

// FigureRates renders the right column of Figures 4.2/4.3: average and
// peak Mflop/s per processor and the flop-rate efficiency f(P)/f(1).
func FigureRates(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (Mflop/s per processor)\n", title)
	fmt.Fprintf(&b, "%6s %10s %10s | %6s\n", "P", "Avg", "Peak", "eff")
	f1 := 0.0
	for _, r := range rows {
		if r.P == 1 && r.Total > 0 {
			f1 = r.AvgGF * 1e3
		}
	}
	for _, r := range rows {
		avg := r.AvgGF * 1e3 / float64(r.P)
		peak := r.PeakGF * 1e3 / float64(r.P)
		eff := 0.0
		if f1 > 0 {
			eff = avg / f1
		}
		fmt.Fprintf(&b, "%6d %10.1f %10.1f | %6.2f\n", r.P, avg, peak, eff)
	}
	return b.String()
}

// CSV renders rows machine-readably for plotting.
func CSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("p,n,total_s,ratio,comm_s,up_s,down_s,tree_s,avg_gflops,peak_gflops,flops\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%g,%g,%g,%g,%g,%g,%g,%g,%d\n",
			r.P, r.N, r.Total.Seconds(), r.Ratio, r.Comm.Seconds(), r.Up.Seconds(),
			r.Down.Seconds(), r.Tree.Seconds(), r.AvgGF, r.PeakGF, r.Flops)
	}
	return b.String()
}

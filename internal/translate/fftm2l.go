package translate

import (
	"sync"

	"repro/internal/fft"
	"repro/internal/kernels"
	"repro/internal/surface"
)

// FFTM2L implements the FFT-accelerated M2L translation of the paper
// ("the multipole-to-local translations are accelerated using local
// FFTs"). Because the UE surface of a source box and the DC surface of a
// target box at the same level lie on one regular lattice with spacing
// h = 2r/(p-2), the translation
//
//	u[t] = Σ_s G(h·(t - s + (p-2)·k)) φ[s]
//
// is a circular convolution once the surface density is embedded into a
// p³ volume zero-padded to an M³ grid (M = smallest 5-smooth integer
// ≥ 2p-1). Densities and kernel samples are purely real, so the
// convolution runs through the real-input transform fft.Plan3R: only
// the K = M/2+1 independent z-frequency lines of each grid are stored
// and multiplied (conjugate symmetry determines the rest), halving grid
// storage, Hadamard work and inverse-transform work relative to the
// full complex spectrum. Per V-list offset k the kernel tensor's
// forward transform is precomputed; each source box needs one forward
// FFT, each target box accumulates Hadamard products in Fourier space
// and performs a single inverse FFT.
//
// The batch entry points (ForwardDensityBatch, AccumulateBatch) lay
// grids out rhs-major so one pass over a kernel tensor serves every
// right-hand side of a batched evaluation — the tensor stays cache-hot
// across the batch instead of being re-streamed from memory per RHS.
type FFTM2L struct {
	set  *Set
	M    int // padded grid edge
	K    int // stored z-frequency lines, M/2+1
	plan *fft.Plan3R
	// vols recycles real-valued M³ volume buffers used to embed
	// densities (forward) and read off check potentials (inverse).
	vols sync.Pool
	// closed marks that this backend released its refcount on the
	// tensor cache (Close); accounting only, the backend keeps working.
	closed bool
	mu     sync.Mutex
}

// tensorCache shares transformed kernel tensors process-wide, mirroring
// the operator cache in translate.go: tensors depend only on (kernel,
// degree, box half-width, offset), so evaluator sweeps and parallel
// ranks reuse one copy. Reads vastly outnumber writes once the cache is
// warm — every M2L accumulation of every worker fetches a tensor — so
// lookups take a read lock; builds serialize on tensorBuildMu, keeping
// the first parallel evaluation from building the same tensor on every
// worker.
var (
	tensorMu      sync.RWMutex
	tensorBuildMu sync.Mutex
	tensorCache   = map[tensorKey][][]complex128{}
	// tensorRefs counts the live FFTM2L backends per (kernel, degree),
	// the granularity CachedBytes attributes at; dividing by it makes
	// the summed footprint of plans sharing tensors count each byte
	// once. Guarded by tensorMu.
	tensorRefs = map[tensorRefKey]int64{}
)

// tensorRefKey groups the tensors one backend attributes: CachedBytes
// matches on kernel and degree (all radii), so refcounts do too.
type tensorRefKey struct {
	kern kernels.Kernel
	p    int
}

type tensorKey struct {
	kern   kernels.Kernel
	p      int
	radius float64
	off    [3]int
}

// NewFFTM2L prepares the FFT M2L backend for an operator set.
func NewFFTM2L(s *Set) *FFTM2L {
	m := fft.NextSmooth(2*s.P - 1)
	tensorMu.Lock()
	tensorRefs[tensorRefKey{kern: s.Kern, p: s.P}]++
	tensorMu.Unlock()
	f := &FFTM2L{
		set:  s,
		M:    m,
		K:    m/2 + 1,
		plan: fft.NewPlan3R(m),
	}
	f.vols.New = func() any {
		v := make([]float64, m*m*m)
		return &v
	}
	return f
}

// Close releases this backend's claim on the process-global tensor
// cache for footprint accounting; the tensors stay cached and the
// backend keeps working. Idempotent.
func (f *FFTM2L) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	tensorMu.Lock()
	k := tensorRefKey{kern: f.set.Kern, p: f.set.P}
	if tensorRefs[k] > 0 {
		tensorRefs[k]--
	}
	tensorMu.Unlock()
}

// GridLen returns the number of stored Fourier coefficients per grid
// component: the half-spectrum length M·M·(M/2+1).
func (f *FFTM2L) GridLen() int { return f.M * f.M * f.K }

// NewAccumulator returns zeroed Fourier-space accumulation grids, one per
// target potential component.
func (f *FFTM2L) NewAccumulator() [][]complex128 {
	acc := make([][]complex128, f.set.Kern.TargetDim())
	for i := range acc {
		acc[i] = make([]complex128, f.GridLen())
	}
	return acc
}

// ResetAccumulator zeroes grids previously returned by NewAccumulator.
func (f *FFTM2L) ResetAccumulator(acc [][]complex128) {
	for _, g := range acc {
		for i := range g {
			g[i] = 0
		}
	}
}

// volBuf fetches a pooled real M³ volume buffer.
func (f *FFTM2L) volBuf() *[]float64 {
	return f.vols.Get().(*[]float64)
}

// embedForward zero-pads one real density component into a volume grid
// and forward-transforms it into the half-spectrum grid dst.
func (f *FFTM2L) embedForward(phi []float64, c, sd int, dst []complex128) {
	p, m := f.set.P, f.M
	vp := f.volBuf()
	vol := *vp
	for i := range vol {
		vol[i] = 0
	}
	for si, vi := range f.set.Surf.VolIdx {
		// vi indexes the p³ volume: (x*p+y)*p+z.
		x := vi / (p * p)
		y := vi / p % p
		z := vi % p
		vol[(x*m+y)*m+z] = phi[si*sd+c]
	}
	f.plan.Forward(dst, vol)
	f.vols.Put(vp)
}

// extractAdd inverse-transforms one half-spectrum component grid g
// (destroying it) and adds escale times its surface values into check
// at component a.
func (f *FFTM2L) extractAdd(g []complex128, a int, escale float64, check []float64) {
	p, m := f.set.P, f.M
	td := f.set.Kern.TargetDim()
	vp := f.volBuf()
	vol := *vp
	f.plan.Inverse(vol, g)
	for si, vi := range f.set.Surf.VolIdx {
		x := vi / (p * p)
		y := vi / p % p
		z := vi % p
		check[si*td+a] += escale * vol[(x*m+y)*m+z]
	}
	f.vols.Put(vp)
}

// ForwardDensity embeds the surface density phi (EquivCount values) into
// per-component half-spectrum grids. dst must hold SourceDim grids of
// GridLen (allocate with NewSourceGrids).
func (f *FFTM2L) ForwardDensity(phi []float64, dst [][]complex128) {
	sd := f.set.Kern.SourceDim()
	for c := 0; c < sd; c++ {
		f.embedForward(phi, c, sd, dst[c])
	}
}

// NewSourceGrids returns grids for ForwardDensity.
func (f *FFTM2L) NewSourceGrids() [][]complex128 {
	g := make([][]complex128, f.set.Kern.SourceDim())
	for i := range g {
		g[i] = make([]complex128, f.GridLen())
	}
	return g
}

// ForwardDensityBatch transforms nq right-hand sides at once: phi holds
// nq*EquivCount density values rhs-major (the layout the FMM keeps its
// upward densities in), dst receives nq*SourceDim half-spectrum grids
// flattened rhs-major (grid (q, c) at offset (q*SourceDim+c)*GridLen).
func (f *FFTM2L) ForwardDensityBatch(phi []float64, nq int, dst []complex128) {
	sd := f.set.Kern.SourceDim()
	ne := f.set.EquivCount()
	gl := f.GridLen()
	for q := 0; q < nq; q++ {
		for c := 0; c < sd; c++ {
			f.embedForward(phi[q*ne:(q+1)*ne], c, sd, dst[(q*sd+c)*gl:(q*sd+c+1)*gl])
		}
	}
}

// hadamardAdd accumulates dst[i] += t[i]*s[i]. It is the innermost loop
// of the V-list sweep — the single hottest loop of an evaluation.
func hadamardAdd(dst, t, s []complex128) {
	t = t[:len(dst)]
	s = s[:len(dst)]
	for i := range dst {
		dst[i] += t[i] * s[i]
	}
}

// Accumulate adds the Fourier-space M2L contribution of a source box
// (transformed grids src) to a target accumulator, for boxes at the
// given level with integer center offset k = (targetCell - sourceCell).
// The homogeneous level scale is NOT applied here: every contribution
// to one accumulator comes from the same level, so Extract applies the
// scale once per surface point instead of once per grid element.
func (f *FFTM2L) Accumulate(acc, src [][]complex128, level int, k [3]int) {
	key, _, _ := f.set.scaleFor(level)
	t := f.tensor(key, k)
	sd, td := f.set.Kern.SourceDim(), f.set.Kern.TargetDim()
	for a := 0; a < td; a++ {
		for b := 0; b < sd; b++ {
			hadamardAdd(acc[a], t[a*sd+b], src[b])
		}
	}
}

// AccumulateBatch is Accumulate across nq right-hand sides with
// rhs-major flattened grids: acc holds nq*TargetDim accumulator grids,
// src nq*SourceDim source grids (the ForwardDensityBatch layout). Each
// kernel tensor is walked once per (target, source) component pair and
// applied to every RHS while it is cache-hot.
func (f *FFTM2L) AccumulateBatch(acc, src []complex128, nq, level int, k [3]int) {
	key, _, _ := f.set.scaleFor(level)
	t := f.tensor(key, k)
	sd, td := f.set.Kern.SourceDim(), f.set.Kern.TargetDim()
	gl := f.GridLen()
	for a := 0; a < td; a++ {
		for b := 0; b < sd; b++ {
			tg := t[a*sd+b]
			for q := 0; q < nq; q++ {
				hadamardAdd(acc[(q*td+a)*gl:(q*td+a+1)*gl], tg, src[(q*sd+b)*gl:(q*sd+b+1)*gl])
			}
		}
	}
}

// Extract inverse-transforms the accumulator and reads off the downward
// check potential at the DC surface points, applying the level's
// analytic operator scale (see Accumulate) and adding into check
// (CheckCount values). level must match the Accumulate calls that
// filled acc; acc is used as workspace and is garbage afterwards.
func (f *FFTM2L) Extract(acc [][]complex128, level int, check []float64) {
	_, escale, _ := f.set.scaleFor(level)
	td := f.set.Kern.TargetDim()
	for a := 0; a < td; a++ {
		f.extractAdd(acc[a], a, escale, check)
	}
}

// ExtractGrids is Extract for one right-hand side of the flattened
// batch layout: acc holds TargetDim half-spectrum grids back to back
// (one AccumulateBatch RHS slot).
func (f *FFTM2L) ExtractGrids(acc []complex128, level int, check []float64) {
	_, escale, _ := f.set.scaleFor(level)
	td := f.set.Kern.TargetDim()
	gl := f.GridLen()
	for a := 0; a < td; a++ {
		f.extractAdd(acc[a*gl:(a+1)*gl], a, escale, check)
	}
}

// tensor returns (building if needed) the forward-transformed kernel
// translation tensor for cache key and offset k.
func (f *FFTM2L) tensor(key int, k [3]int) [][]complex128 {
	r := f.set.geomRadius(key)
	tk := tensorKey{kern: f.set.Kern, p: f.set.P, radius: r, off: k}
	tensorMu.RLock()
	t, ok := tensorCache[tk]
	tensorMu.RUnlock()
	if ok {
		return t
	}
	tensorBuildMu.Lock()
	defer tensorBuildMu.Unlock()
	tensorMu.RLock()
	t, ok = tensorCache[tk]
	tensorMu.RUnlock()
	if ok {
		return t
	}
	t = f.buildTensor(r, k)
	tensorMu.Lock()
	tensorCache[tk] = t
	tensorMu.Unlock()
	return t
}

// buildTensor samples the kernel over every lattice offset of the
// translation and forward-transforms the result into half-spectrum
// grids.
func (f *FFTM2L) buildTensor(r float64, k [3]int) [][]complex128 {
	p, m := f.set.P, f.M
	h := surface.Spacing(p, r)
	sd, td := f.set.Kern.SourceDim(), f.set.Kern.TargetDim()
	vols := make([][]float64, td*sd)
	for c := range vols {
		vols[c] = make([]float64, m*m*m)
	}
	block := make([]float64, td*sd)
	for dx := -(p - 1); dx <= p-1; dx++ {
		wx := wrap(dx, m)
		for dy := -(p - 1); dy <= p-1; dy++ {
			wy := wrap(dy, m)
			for dz := -(p - 1); dz <= p-1; dz++ {
				wz := wrap(dz, m)
				f.set.Kern.Eval(
					h*float64(dx+(p-2)*k[0]),
					h*float64(dy+(p-2)*k[1]),
					h*float64(dz+(p-2)*k[2]),
					block,
				)
				idx := (wx*m+wy)*m + wz
				for c, v := range block {
					vols[c][idx] = v
				}
			}
		}
	}
	t := make([][]complex128, td*sd)
	for c := range t {
		t[c] = make([]complex128, f.GridLen())
		f.plan.Forward(t[c], vols[c])
	}
	return t
}

// CachedBytes estimates this backend's share of the transformed kernel
// tensors cached for its kernel and degree. The cache is process-global
// and the bytes are divided by the number of live backends over the
// same kernel/degree, so the summed footprint of plans sharing tensors
// counts each byte once; a backend surviving past Close falls back to
// full attribution (conservative, never under-counting).
func (f *FFTM2L) CachedBytes() int64 {
	tensorMu.RLock()
	defer tensorMu.RUnlock()
	var b int64
	for tk, t := range tensorCache {
		if tk.kern != f.set.Kern || tk.p != f.set.P {
			continue
		}
		for _, g := range t {
			b += int64(len(g)) * 16
		}
	}
	if refs := tensorRefs[tensorRefKey{kern: f.set.Kern, p: f.set.P}]; refs > 1 {
		b /= refs
	}
	return b
}

func wrap(d, m int) int {
	d %= m
	if d < 0 {
		d += m
	}
	return d
}

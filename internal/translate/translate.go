// Package translate builds and caches the density-translation operators
// of the kernel-independent FMM (paper Section 2.1):
//
//	S2M/M2M: equations (2.1) and (2.3) — build a box's upward equivalent
//	         density from its sources or its children's densities by
//	         evaluating an upward check potential and inverting the
//	         check/equivalent integral equation;
//	M2L:     equation (2.4) — turn a far box's upward equivalent density
//	         into a downward check potential;
//	L2L:     equation (2.5) — pass the downward equivalent density from a
//	         parent to a child.
//
// The inversions are truncated-SVD pseudo-inverses (the regularization
// the method needs: the integral equations are consistent but
// ill-conditioned). For homogeneous kernels (Laplace, Stokes) all
// operators are built once at unit scale and rescaled analytically, since
// G(s·x, s·y) = s^deg · G(x, y) makes every level's operator an exact
// multiple of the unit one; non-homogeneous kernels (modified Laplace)
// get per-level caches.
package translate

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/surface"
)

// Op is a dense operator together with the analytic scale factor to apply
// at a given tree level.
type Op struct {
	M     *linalg.Dense
	Scale float64
}

// Apply accumulates dst += Scale * M * x.
func (o Op) Apply(dst, x []float64) { o.M.MatVecAddScaled(dst, x, o.Scale) }

// Set caches every translation operator for one kernel, surface degree
// and root box size. It is safe for concurrent use.
type Set struct {
	Kern kernels.Kernel
	Surf *surface.Surface
	// P is the surface degree (grid points per cube edge).
	P int
	// RootHalfWidth is the half-width of the level-0 box.
	RootHalfWidth float64
	// Tol is the relative truncation threshold of the pseudo-inverses.
	Tol float64

	homogeneous bool
	homDeg      float64

	mu     sync.Mutex
	levels map[int]*levelOps
	// closed marks that this set released its refcounts on the global
	// caches (Close); entries mapped afterwards are not re-counted.
	closed bool
}

type levelOps struct {
	// refs counts the live Sets holding this entry, so footprint
	// estimates can attribute the shared bytes once across plans
	// (CachedBytes divides by it). Incremented under globalMu when a
	// Set first maps the entry, decremented by Set.Close.
	refs atomic.Int64

	mu       sync.Mutex
	pinvUp   *linalg.Dense // UC check potential -> UE equivalent density
	pinvDown *linalg.Dense // DC check potential -> DE equivalent density
	m2m      [8]*linalg.Dense
	l2l      [8]*linalg.Dense
	m2l      map[[3]int]*linalg.Dense
}

// globalCache shares level operator sets across all Sets in the process,
// keyed by (kernel, degree, truncation, box half-width). The expensive
// pseudo-inverse factorizations are therefore computed once per geometry
// no matter how many evaluators a benchmark sweep creates. All built-in
// kernels are comparable value types, so they key a map directly.
var (
	globalMu    sync.Mutex
	globalCache = map[globalKey]*levelOps{}
)

type globalKey struct {
	kern   kernels.Kernel
	p      int
	tol    float64
	radius float64
}

// unitLevel is the cache key used for homogeneous kernels, whose single
// operator set is built for a box of half-width 1.
const unitLevel = -1

// NewSet prepares an operator cache. p is the surface degree (>= 3),
// rootHalfWidth the level-0 box half-width, tol the pseudo-inverse
// truncation (1e-10 is a good default).
func NewSet(k kernels.Kernel, p int, rootHalfWidth, tol float64) (*Set, error) {
	surf, err := surface.New(p)
	if err != nil {
		return nil, err
	}
	if rootHalfWidth <= 0 {
		return nil, fmt.Errorf("translate: root half-width must be positive")
	}
	if tol <= 0 {
		tol = 1e-10
	}
	s := &Set{
		Kern: k, Surf: surf, P: p,
		RootHalfWidth: rootHalfWidth, Tol: tol,
		levels: make(map[int]*levelOps),
	}
	s.homogeneous, s.homDeg = k.Homogeneity()
	return s, nil
}

// EquivCount returns the number of equivalent-density values per box
// (surface points times kernel source dimension).
func (s *Set) EquivCount() int { return s.Surf.N * s.Kern.SourceDim() }

// CheckCount returns the number of check-potential values per box.
func (s *Set) CheckCount() int { return s.Surf.N * s.Kern.TargetDim() }

// BoxHalfWidth returns the half-width of a box at the given level.
func (s *Set) BoxHalfWidth(level int) float64 {
	return s.RootHalfWidth / float64(uint64(1)<<uint(level))
}

// scaleFor returns (cacheKey, evalScale, pinvScale) for a level: for
// homogeneous kernels the unit-scale operator is rescaled by r^deg
// (evaluation direction) or r^-deg (inversion direction).
func (s *Set) scaleFor(level int) (key int, eval, pinv float64) {
	if !s.homogeneous {
		return level, 1, 1
	}
	r := s.BoxHalfWidth(level)
	return unitLevel, pow(r, s.homDeg), pow(r, -s.homDeg)
}

func pow(r, d float64) float64 {
	// deg is a small integer for all supported kernels; avoid math.Pow in
	// hot paths.
	switch d {
	case -1:
		return 1 / r
	case 0:
		return 1
	case 1:
		return r
	default:
		p := 1.0
		n := int(d)
		for i := 0; i < abs(n); i++ {
			p *= r
		}
		if n < 0 {
			return 1 / p
		}
		return p
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

func (s *Set) level(key int) *levelOps {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.levels[key]
	if !ok {
		gk := globalKey{kern: s.Kern, p: s.P, tol: s.Tol, radius: s.geomRadius(key)}
		globalMu.Lock()
		l, ok = globalCache[gk]
		if !ok {
			l = &levelOps{m2l: make(map[[3]int]*linalg.Dense)}
			globalCache[gk] = l
		}
		if !s.closed {
			l.refs.Add(1)
		}
		globalMu.Unlock()
		s.levels[key] = l
	}
	return l
}

// Close releases this set's claim on the process-global operator cache
// for footprint accounting. The cache keeps its entries — a closed set
// keeps working (evicted plans finish in-flight evaluations); only the
// byte attribution shifts to the sets still open. Close is idempotent.
func (s *Set) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, l := range s.levels {
		l.refs.Add(-1)
	}
}

// geomRadius returns the box half-width the cached operators for cache
// key are built with (1 for the homogeneous unit cache).
func (s *Set) geomRadius(key int) float64 {
	if key == unitLevel {
		return 1
	}
	return s.BoxHalfWidth(key)
}

// denseBytes returns the data size of a cached operator (nil-safe).
func denseBytes(m *linalg.Dense) int64 {
	if m == nil {
		return 0
	}
	return int64(m.Rows) * int64(m.Cols) * 8
}

// CachedBytes estimates this set's share of the cached translation
// operators. Level operator sets are shared process-wide; each entry's
// bytes are divided by its refcount (the number of live sets holding
// it), so summing CachedBytes across all live plans attributes every
// shared byte exactly once instead of once per plan. A set that mapped
// an entry after Close (or a racing release) falls back to full
// attribution — conservative, never under-counting.
func (s *Set) CachedBytes() int64 {
	s.mu.Lock()
	levels := make([]*levelOps, 0, len(s.levels))
	for _, l := range s.levels {
		levels = append(levels, l) //lint:allow determinism integer byte totals are exact and order-independent
	}
	s.mu.Unlock()
	var b int64
	for _, l := range levels {
		var lb int64
		l.mu.Lock()
		lb += denseBytes(l.pinvUp) + denseBytes(l.pinvDown)
		for o := 0; o < 8; o++ {
			lb += denseBytes(l.m2m[o]) + denseBytes(l.l2l[o])
		}
		for _, m := range l.m2l {
			lb += denseBytes(m)
		}
		l.mu.Unlock()
		refs := l.refs.Load()
		if refs < 1 {
			refs = 1
		}
		b += lb / refs
	}
	return b
}

// kernelMatrix builds the dense interaction matrix from the source
// surface (center cs, radius rs) to the target surface (ct, rt).
func (s *Set) kernelMatrix(ct [3]float64, rt float64, cs [3]float64, rs float64) *linalg.Dense {
	trg := s.Surf.Points(ct, rt, nil)
	src := s.Surf.Points(cs, rs, nil)
	m := linalg.NewDense(s.CheckCount(), s.EquivCount())
	kernels.Matrix(s.Kern, trg, src, m.Data)
	return m
}

// UpwardPinv returns the operator that turns an upward check potential
// (on the UC surface) into the upward equivalent density (on UE) for a
// box at the given level.
func (s *Set) UpwardPinv(level int) Op {
	key, _, pscale := s.scaleFor(level)
	l := s.level(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pinvUp == nil {
		r := s.geomRadius(key)
		m := s.kernelMatrix([3]float64{}, surface.CheckRadius(r), [3]float64{}, surface.EquivRadius(s.P, r))
		l.pinvUp = linalg.PseudoInverse(m, s.Tol)
	}
	return Op{M: l.pinvUp, Scale: pscale}
}

// DownwardPinv returns the operator that turns a downward check potential
// (on DC) into the downward equivalent density (on DE).
func (s *Set) DownwardPinv(level int) Op {
	key, _, pscale := s.scaleFor(level)
	l := s.level(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pinvDown == nil {
		r := s.geomRadius(key)
		m := s.kernelMatrix([3]float64{}, surface.EquivRadius(s.P, r), [3]float64{}, surface.CheckRadius(r))
		l.pinvDown = linalg.PseudoInverse(m, s.Tol)
	}
	return Op{M: l.pinvDown, Scale: pscale}
}

// childCenter returns the center of child octant o for a parent of
// half-width r centered at the origin (octant bit 2 = x, 1 = y, 0 = z,
// matching morton.Key.Child).
func childCenter(o int, r float64) [3]float64 {
	h := r / 2
	sign := func(bit int) float64 {
		if o&bit != 0 {
			return 1
		}
		return -1
	}
	return [3]float64{sign(4) * h, sign(2) * h, sign(1) * h}
}

// M2M returns the operator evaluating a child's upward equivalent density
// (child at parentLevel+1, octant o) on the parent's upward check
// surface. The caller then applies UpwardPinv(parentLevel).
func (s *Set) M2M(parentLevel, octant int) Op {
	key, escale, _ := s.scaleFor(parentLevel)
	l := s.level(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m2m[octant] == nil {
		r := s.geomRadius(key)
		cc := childCenter(octant, r)
		l.m2m[octant] = s.kernelMatrix(
			[3]float64{}, surface.CheckRadius(r),
			cc, surface.EquivRadius(s.P, r/2),
		)
	}
	return Op{M: l.m2m[octant], Scale: escale}
}

// L2L returns the operator evaluating the parent's downward equivalent
// density on the child's downward check surface (child octant o at level
// parentLevel+1). The caller then applies DownwardPinv(parentLevel+1)
// after accumulating all downward check contributions.
func (s *Set) L2L(parentLevel, octant int) Op {
	key, escale, _ := s.scaleFor(parentLevel)
	l := s.level(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.l2l[octant] == nil {
		r := s.geomRadius(key)
		cc := childCenter(octant, r)
		l.l2l[octant] = s.kernelMatrix(
			cc, surface.EquivRadius(s.P, r/2),
			[3]float64{}, surface.CheckRadius(r),
		)
	}
	return Op{M: l.l2l[octant], Scale: escale}
}

// M2LDirect returns the dense operator evaluating a source box's upward
// equivalent density on the downward check surface of a target box at
// the same level, where k = targetCell - sourceCell is the integer
// center offset in box widths (target center = source center + 2r*k).
// Offsets must be V-list offsets: max |k| component in {2, 3}.
func (s *Set) M2LDirect(level int, k [3]int) Op {
	key, escale, _ := s.scaleFor(level)
	l := s.level(key)
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.m2l[k]
	if !ok {
		r := s.geomRadius(key)
		ct := [3]float64{2 * r * float64(k[0]), 2 * r * float64(k[1]), 2 * r * float64(k[2])}
		re := surface.EquivRadius(s.P, r)
		m = s.kernelMatrix(ct, re, [3]float64{}, re)
		l.m2l[k] = m
	}
	return Op{M: m, Scale: escale}
}

// UpwardEquivPoints writes the UE surface points of a box (center c,
// half-width r) into dst (allocating if nil).
func (s *Set) UpwardEquivPoints(c [3]float64, r float64, dst []float64) []float64 {
	return s.Surf.Points(c, surface.EquivRadius(s.P, r), dst)
}

// UpwardCheckPoints writes the UC surface points of a box into dst.
func (s *Set) UpwardCheckPoints(c [3]float64, r float64, dst []float64) []float64 {
	return s.Surf.Points(c, surface.CheckRadius(r), dst)
}

// DownwardEquivPoints writes the DE surface points of a box into dst.
func (s *Set) DownwardEquivPoints(c [3]float64, r float64, dst []float64) []float64 {
	return s.Surf.Points(c, surface.CheckRadius(r), dst)
}

// DownwardCheckPoints writes the DC surface points of a box into dst.
func (s *Set) DownwardCheckPoints(c [3]float64, r float64, dst []float64) []float64 {
	return s.Surf.Points(c, surface.EquivRadius(s.P, r), dst)
}

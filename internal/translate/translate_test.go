package translate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fft"
	"repro/internal/kernels"
	"repro/internal/surface"
)

// testKernels returns the paper's three kernels.
func testKernels() []kernels.Kernel {
	return []kernels.Kernel{kernels.Laplace{}, kernels.NewModLaplace(1), kernels.NewStokes(1)}
}

// randomInBox draws n points uniformly inside the box (center c, half-width r).
func randomInBox(rng *rand.Rand, c [3]float64, r float64, n int) []float64 {
	pts := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			pts[3*i+d] = c[d] + r*(2*rng.Float64()-1)
		}
	}
	return pts
}

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// upwardDensity builds a box's upward equivalent density from sources via
// S2M: evaluate the upward check potential, then invert.
func upwardDensity(s *Set, level int, c [3]float64, src, den []float64) []float64 {
	r := s.BoxHalfWidth(level)
	uc := s.UpwardCheckPoints(c, r, nil)
	check := make([]float64, s.CheckCount())
	kernels.P2P(s.Kern, uc, src, den, check)
	phi := make([]float64, s.EquivCount())
	s.UpwardPinv(level).Apply(phi, check)
	return phi
}

// TestS2MRepresentsFarField is the core kernel-independence claim
// (equation 2.1): the upward equivalent density reproduces the sources'
// potential everywhere in the far range.
func TestS2MRepresentsFarField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range testKernels() {
		for _, p := range []int{6, 8} {
			if p == 8 && k.SourceDim() > 1 {
				continue // the one-sided Jacobi SVD is too slow at 888x888 for a unit test
			}
			s, err := NewSet(k, p, 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			level := 1
			r := s.BoxHalfWidth(level) // 0.25
			c := [3]float64{0.1, -0.05, 0.2}
			src := randomInBox(rng, c, r, 40)
			den := make([]float64, 40*k.SourceDim())
			for i := range den {
				den[i] = rng.NormFloat64()
			}
			phi := upwardDensity(s, level, c, src, den)
			// Evaluate at far points (outside the near range 3r).
			far := []float64{
				c[0] + 5*r, c[1], c[2],
				c[0] - 4*r, c[1] + 4*r, c[2] - 3.5*r,
				c[0], c[1], c[2] + 8*r,
			}
			want := make([]float64, 3*k.TargetDim())
			kernels.P2P(k, far, src, den, want)
			got := make([]float64, 3*k.TargetDim())
			ue := s.UpwardEquivPoints(c, r, nil)
			kernels.P2P(k, far, ue, phi, got)
			tol := 1e-3
			if p == 8 {
				tol = 1e-5
			}
			if e := relErr(got, want); e > tol {
				t.Errorf("%s p=%d: far-field error %v > %v", k.Name(), p, e, tol)
			}
		}
	}
}

// TestM2MPreservesFarField verifies equation (2.3): translating a child's
// equivalent density to the parent keeps the far field.
func TestM2MPreservesFarField(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range testKernels() {
		s, err := NewSet(k, 6, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		parentLevel := 2
		rp := s.BoxHalfWidth(parentLevel)
		pc := [3]float64{0.3, 0.3, -0.3}
		octant := 5
		cc := childCenter(octant, rp)
		childC := [3]float64{pc[0] + cc[0], pc[1] + cc[1], pc[2] + cc[2]}
		src := randomInBox(rng, childC, rp/2, 30)
		den := make([]float64, 30*k.SourceDim())
		for i := range den {
			den[i] = rng.NormFloat64()
		}
		phiChild := upwardDensity(s, parentLevel+1, childC, src, den)
		// M2M: evaluate child density on parent's UC, invert.
		check := make([]float64, s.CheckCount())
		s.M2M(parentLevel, octant).Apply(check, phiChild)
		phiParent := make([]float64, s.EquivCount())
		s.UpwardPinv(parentLevel).Apply(phiParent, check)
		far := []float64{pc[0] + 7*rp, pc[1] - 5*rp, pc[2]}
		want := make([]float64, k.TargetDim())
		kernels.P2P(k, far, src, den, want)
		got := make([]float64, k.TargetDim())
		ue := s.UpwardEquivPoints(pc, rp, nil)
		kernels.P2P(k, far, ue, phiParent, got)
		if e := relErr(got, want); e > 5e-4 {
			t.Errorf("%s: M2M far-field error %v", k.Name(), e)
		}
	}
}

// applyM2LDirect computes the downward check potential of a target box
// from a source box's upward density via the dense path.
func applyM2LDirect(s *Set, level int, k [3]int, phi []float64) []float64 {
	check := make([]float64, s.CheckCount())
	s.M2LDirect(level, k).Apply(check, phi)
	return check
}

// TestM2LThenDownwardReproducesPotential checks equation (2.4) end to
// end: M2L + downward inversion + evaluation at interior targets matches
// the direct interaction.
func TestM2LThenDownwardReproducesPotential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range testKernels() {
		s, err := NewSet(k, 6, 0.5, 0)
		if err != nil {
			t.Fatal(err)
		}
		level := 3
		r := s.BoxHalfWidth(level)
		srcC := [3]float64{0, 0, 0}
		off := [3]int{3, -2, 0} // a V-list offset
		trgC := [3]float64{2 * r * float64(off[0]), 2 * r * float64(off[1]), 2 * r * float64(off[2])}
		src := randomInBox(rng, srcC, r, 25)
		den := make([]float64, 25*k.SourceDim())
		for i := range den {
			den[i] = rng.NormFloat64()
		}
		phiU := upwardDensity(s, level, srcC, src, den)
		check := applyM2LDirect(s, level, off, phiU)
		phiD := make([]float64, s.EquivCount())
		s.DownwardPinv(level).Apply(phiD, check)
		trg := randomInBox(rng, trgC, 0.9*r, 10)
		want := make([]float64, 10*k.TargetDim())
		kernels.P2P(k, trg, src, den, want)
		got := make([]float64, 10*k.TargetDim())
		de := s.DownwardEquivPoints(trgC, r, nil)
		kernels.P2P(k, trg, de, phiD, got)
		if e := relErr(got, want); e > 3e-3 {
			t.Errorf("%s: M2L+L2T error %v", k.Name(), e)
		}
	}
}

// TestL2LPreservesInteriorField checks equation (2.5): passing the
// downward density to a child keeps the interior potential.
func TestL2LPreservesInteriorField(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range testKernels() {
		s, err := NewSet(k, 6, 0.5, 0)
		if err != nil {
			t.Fatal(err)
		}
		level := 2
		r := s.BoxHalfWidth(level)
		trgC := [3]float64{0, 0, 0}
		// Far sources, outside the near range of the parent target box.
		src := randomInBox(rng, [3]float64{8 * r, 2 * r, -5 * r}, r, 30)
		den := make([]float64, 30*k.SourceDim())
		for i := range den {
			den[i] = rng.NormFloat64()
		}
		// Build the parent's downward density directly from the far
		// sources (the S2L path used by the X list): evaluate the DC
		// check potential, invert.
		dc := s.DownwardCheckPoints(trgC, r, nil)
		check := make([]float64, s.CheckCount())
		kernels.P2P(k, dc, src, den, check)
		phiParent := make([]float64, s.EquivCount())
		s.DownwardPinv(level).Apply(phiParent, check)
		// L2L to child octant 2.
		octant := 2
		cc := childCenter(octant, r)
		childC := [3]float64{trgC[0] + cc[0], trgC[1] + cc[1], trgC[2] + cc[2]}
		childCheck := make([]float64, s.CheckCount())
		s.L2L(level, octant).Apply(childCheck, phiParent)
		phiChild := make([]float64, s.EquivCount())
		s.DownwardPinv(level+1).Apply(phiChild, childCheck)
		trg := randomInBox(rng, childC, 0.9*r/2, 8)
		want := make([]float64, 8*k.TargetDim())
		kernels.P2P(k, trg, src, den, want)
		got := make([]float64, 8*k.TargetDim())
		de := s.DownwardEquivPoints(childC, r/2, nil)
		kernels.P2P(k, trg, de, phiChild, got)
		if e := relErr(got, want); e > 3e-3 {
			t.Errorf("%s: L2L interior error %v", k.Name(), e)
		}
	}
}

// TestFFTM2LMatchesDense: the Fourier path must reproduce the dense M2L
// translation to near machine precision for every kernel and a sample of
// V-list offsets.
func TestFFTM2LMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	offsets := [][3]int{
		{2, 0, 0}, {-2, 0, 0}, {3, 3, 3}, {-3, 2, -2}, {0, 2, -3}, {2, -2, 2}, {-2, -3, 0},
	}
	for _, k := range testKernels() {
		for _, level := range []int{2, 4} {
			s, err := NewSet(k, 6, 0.7, 0)
			if err != nil {
				t.Fatal(err)
			}
			f := NewFFTM2L(s)
			phi := make([]float64, s.EquivCount())
			for i := range phi {
				phi[i] = rng.NormFloat64()
			}
			src := f.NewSourceGrids()
			f.ForwardDensity(phi, src)
			for _, off := range offsets {
				want := applyM2LDirect(s, level, off, phi)
				acc := f.NewAccumulator()
				f.Accumulate(acc, src, level, off)
				got := make([]float64, s.CheckCount())
				f.Extract(acc, level, got)
				scale := 0.0
				for _, v := range want {
					if a := math.Abs(v); a > scale {
						scale = a
					}
				}
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-11*(scale+1) {
						t.Fatalf("%s level=%d off=%v: FFT M2L mismatch at %d: %v vs %v",
							k.Name(), level, off, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestFFTM2LAccumulatesMultipleSources: Fourier-space accumulation over
// several source boxes must equal the sum of dense translations.
func TestFFTM2LAccumulatesMultipleSources(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := kernels.Laplace{}
	s, _ := NewSet(k, 6, 0.5, 0)
	f := NewFFTM2L(s)
	level := 3
	offsets := [][3]int{{2, 1, 0}, {-3, 0, 2}, {0, -2, 0}}
	acc := f.NewAccumulator()
	want := make([]float64, s.CheckCount())
	for _, off := range offsets {
		phi := make([]float64, s.EquivCount())
		for i := range phi {
			phi[i] = rng.NormFloat64()
		}
		grids := f.NewSourceGrids()
		f.ForwardDensity(phi, grids)
		f.Accumulate(acc, grids, level, off)
		s.M2LDirect(level, off).Apply(want, phi)
	}
	got := make([]float64, s.CheckCount())
	f.Extract(acc, level, got)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-11 {
			t.Fatalf("accumulated FFT M2L mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestFFTM2LHalfSpectrumMatchesFullSpectrum: the r2c backend must
// reproduce the old full-complex-spectrum convolution to ~1e-12. The
// reference rebuilds the translation the pre-r2c way: kernel tensor and
// embedded density on full M³ complex grids (fft.Plan3), full-spectrum
// Hadamard, complex inverse, surface read-off.
func TestFFTM2LHalfSpectrumMatchesFullSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, k := range testKernels() {
		s, err := NewSet(k, 6, 0.5, 0)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFFTM2L(s)
		level := 3
		off := [3]int{-3, 2, 0}
		sd, td := k.SourceDim(), k.TargetDim()
		phi := make([]float64, s.EquivCount())
		for i := range phi {
			phi[i] = rng.NormFloat64()
		}

		// Half-spectrum path under test.
		grids := f.NewSourceGrids()
		f.ForwardDensity(phi, grids)
		acc := f.NewAccumulator()
		f.Accumulate(acc, grids, level, off)
		got := make([]float64, s.CheckCount())
		f.Extract(acc, level, got)

		// Full-spectrum reference.
		p, m := s.P, f.M
		plan3 := fft.NewPlan3(m, m, m)
		key, escale, _ := s.scaleFor(level)
		h := surface.Spacing(p, s.geomRadius(key))
		tensor := make([][]complex128, td*sd)
		for c := range tensor {
			tensor[c] = make([]complex128, m*m*m)
		}
		block := make([]float64, td*sd)
		for dx := -(p - 1); dx <= p-1; dx++ {
			for dy := -(p - 1); dy <= p-1; dy++ {
				for dz := -(p - 1); dz <= p-1; dz++ {
					k.Eval(
						h*float64(dx+(p-2)*off[0]),
						h*float64(dy+(p-2)*off[1]),
						h*float64(dz+(p-2)*off[2]),
						block,
					)
					idx := (wrap(dx, m)*m+wrap(dy, m))*m + wrap(dz, m)
					for c, v := range block {
						tensor[c][idx] = complex(v, 0)
					}
				}
			}
		}
		for c := range tensor {
			plan3.Forward(tensor[c])
		}
		src := make([][]complex128, sd)
		for c := range src {
			src[c] = make([]complex128, m*m*m)
			for si, vi := range s.Surf.VolIdx {
				x := vi / (p * p)
				y := vi / p % p
				z := vi % p
				src[c][(x*m+y)*m+z] = complex(phi[si*sd+c], 0)
			}
			plan3.Forward(src[c])
		}
		want := make([]float64, s.CheckCount())
		for a := 0; a < td; a++ {
			full := make([]complex128, m*m*m)
			for b := 0; b < sd; b++ {
				tg := tensor[a*sd+b]
				sg := src[b]
				for i := range full {
					full[i] += tg[i] * sg[i]
				}
			}
			plan3.Inverse(full)
			for si, vi := range s.Surf.VolIdx {
				x := vi / (p * p)
				y := vi / p % p
				z := vi % p
				want[si*td+a] += escale * real(full[(x*m+y)*m+z])
			}
		}

		scale := 0.0
		for _, v := range want {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*(scale+1) {
				t.Fatalf("%s: half vs full spectrum mismatch at %d: %v vs %v",
					k.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestFFTM2LBatchMatchesSingle: the rhs-major batch entry points must
// produce bitwise-identical check potentials to per-RHS single calls.
func TestFFTM2LBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewStokes(1)} {
		s, err := NewSet(k, 6, 0.5, 0)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFFTM2L(s)
		level := 2
		offsets := [][3]int{{2, 0, -2}, {-2, 3, 1}}
		const nq = 3
		ne, nc := s.EquivCount(), s.CheckCount()
		sd, td := k.SourceDim(), k.TargetDim()
		gl := f.GridLen()
		phi := make([]float64, nq*ne)
		for i := range phi {
			phi[i] = rng.NormFloat64()
		}

		// Batch path.
		batchSrc := make([]complex128, nq*sd*gl)
		f.ForwardDensityBatch(phi, nq, batchSrc)
		batchAcc := make([]complex128, nq*td*gl)
		for _, off := range offsets {
			f.AccumulateBatch(batchAcc, batchSrc, nq, level, off)
		}
		got := make([]float64, nq*nc)
		for q := 0; q < nq; q++ {
			f.ExtractGrids(batchAcc[q*td*gl:(q+1)*td*gl], level, got[q*nc:(q+1)*nc])
		}

		// Single-RHS path.
		want := make([]float64, nq*nc)
		for q := 0; q < nq; q++ {
			grids := f.NewSourceGrids()
			f.ForwardDensity(phi[q*ne:(q+1)*ne], grids)
			acc := f.NewAccumulator()
			for _, off := range offsets {
				f.Accumulate(acc, grids, level, off)
			}
			f.Extract(acc, level, want[q*nc:(q+1)*nc])
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: batch path differs from single path at %d: %v vs %v",
					k.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestHomogeneousScalingMatchesExplicitBuild: for the Laplace kernel the
// unit-scale cache rescaled analytically must match operators built
// explicitly at the level's geometry.
func TestHomogeneousScalingMatchesExplicitBuild(t *testing.T) {
	k := kernels.Laplace{}
	s, _ := NewSet(k, 6, 0.8, 0)
	level := 4
	r := s.BoxHalfWidth(level)
	// Explicit M2L at the level geometry: target DC at +2r*k, source UE
	// at the origin (k = targetCell - sourceCell).
	off := [3]int{2, -2, 3}
	ct := [3]float64{2 * r * float64(off[0]), 2 * r * float64(off[1]), 2 * r * float64(off[2])}
	re := surface.EquivRadius(s.P, r)
	explicit := s.kernelMatrix(ct, re, [3]float64{}, re)
	op := s.M2LDirect(level, off)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, s.EquivCount())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, s.CheckCount())
	op.Apply(got, x)
	want := make([]float64, s.CheckCount())
	explicit.MatVec(want, x)
	if e := relErr(got, want); e > 1e-13 {
		t.Errorf("homogeneous rescaling error %v", e)
	}
}

// TestNonHomogeneousPerLevelCache: the modified Laplace kernel must get
// distinct operators per level (no unit-scale shortcut).
func TestNonHomogeneousPerLevelCache(t *testing.T) {
	k := kernels.NewModLaplace(2)
	s, _ := NewSet(k, 5, 0.5, 0)
	a := s.UpwardPinv(1)
	b := s.UpwardPinv(3)
	if a.M == b.M {
		t.Error("non-homogeneous kernel must not share operators across levels")
	}
	if a.Scale != 1 || b.Scale != 1 {
		t.Error("non-homogeneous operators must not be rescaled")
	}
	// Homogeneous kernels do share.
	sh, _ := NewSet(kernels.Laplace{}, 5, 0.5, 0)
	ha := sh.UpwardPinv(1)
	hb := sh.UpwardPinv(3)
	if ha.M != hb.M {
		t.Error("homogeneous kernel must share the unit-scale operator")
	}
	if ha.Scale == hb.Scale {
		t.Error("shared operator must be rescaled per level")
	}
}

// TestSurfaceConstraints asserts the placement rules listed at the end of
// paper Section 2 for our radius choices.
func TestSurfaceConstraints(t *testing.T) {
	for _, p := range []int{4, 6, 8, 10} {
		ue := surface.EquivRadius(p, 1)
		uc := surface.CheckRadius(1)
		if !(ue > 1) {
			t.Errorf("p=%d: UE must lie outside the box", p)
		}
		if !(uc > ue) {
			t.Errorf("p=%d: UC must enclose UE", p)
		}
		if !(uc < 3) {
			t.Errorf("p=%d: UC must stay inside the near range boundary", p)
		}
		// Parent UE encloses child UE: child surface reaches 0.5 + 0.5*ue
		// from the parent center.
		if !(ue > 0.5+0.5*ue/2+0) {
			// equivalent to parent's ue*1 > 0.5 + ue*0.5
			t.Errorf("p=%d: parent UE does not enclose child UE", p)
		}
		// Lattice alignment: 2r is an integer multiple of the spacing.
		h := surface.Spacing(p, 1)
		m := 2 / h
		if math.Abs(m-math.Round(m)) > 1e-12 {
			t.Errorf("p=%d: lattice misaligned, 2r/h = %v", p, m)
		}
	}
	if _, err := surface.New(2); err == nil {
		t.Error("surface degree < 3 must be rejected")
	}
}

// TestSurfacePointCount checks the 6p²-12p+8 boundary count and volume
// index integrity.
func TestSurfacePointCount(t *testing.T) {
	for _, p := range []int{3, 4, 6, 9} {
		s, err := surface.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.N != 6*p*p-12*p+8 {
			t.Errorf("p=%d: N=%d", p, s.N)
		}
		seen := map[int]bool{}
		for _, vi := range s.VolIdx {
			if vi < 0 || vi >= p*p*p || seen[vi] {
				t.Fatalf("p=%d: bad volume index %d", p, vi)
			}
			seen[vi] = true
			x, y, z := vi/(p*p), vi/p%p, vi%p
			if x != 0 && x != p-1 && y != 0 && y != p-1 && z != 0 && z != p-1 {
				t.Fatalf("p=%d: interior point %d on surface", p, vi)
			}
		}
		// All points within the scaled cube.
		pts := s.Points([3]float64{1, 2, 3}, 0.5, nil)
		for i := 0; i < s.N; i++ {
			for d := 0; d < 3; d++ {
				c := []float64{1, 2, 3}[d]
				if math.Abs(pts[3*i+d]-c) > 0.5+1e-12 {
					t.Fatalf("p=%d: point escapes cube", p)
				}
			}
		}
	}
}

func TestSetValidation(t *testing.T) {
	if _, err := NewSet(kernels.Laplace{}, 2, 1, 0); err == nil {
		t.Error("degree 2 must be rejected")
	}
	if _, err := NewSet(kernels.Laplace{}, 6, 0, 0); err == nil {
		t.Error("zero root half-width must be rejected")
	}
	if _, err := NewSet(kernels.Laplace{}, 6, -1, 0); err == nil {
		t.Error("negative root half-width must be rejected")
	}
}

package linalg

import (
	"math"
	"sort"
)

// SVDResult holds a thin singular value decomposition A = U * diag(S) * Vᵀ
// with U (m x k), S (k), V (n x k), k = min(m, n). Singular values are in
// non-increasing order.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// SVD computes the thin SVD of a by one-sided Jacobi rotations applied to
// the columns of a working copy. One-sided Jacobi converges for any
// matrix and computes small singular values to high relative accuracy,
// which matters because the FMM's check-surface operators are severely
// ill-conditioned by construction (the inversion is regularized by
// truncation in PseudoInverse).
func SVD(a *Dense) SVDResult {
	m, n := a.Rows, a.Cols
	transposed := false
	w := a.Clone()
	if m < n {
		// One-sided Jacobi wants tall matrices; factor the transpose and
		// swap U and V at the end.
		w = a.Transpose()
		m, n = n, m
		transposed = true
	}
	// Column-major working storage for cache-friendly column rotations.
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		c := make([]float64, m)
		for i := 0; i < m; i++ {
			c[i] = w.Data[i*w.Cols+j]
		}
		cols[j] = c
	}
	v := Eye(n)
	const maxSweeps = 60
	// Convergence when all off-diagonal column inner products are tiny
	// relative to the column norms.
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp, cq := cols[p], cols[q]
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				if r := math.Abs(gamma) / math.Sqrt(alpha*beta); r > off {
					off = r
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					vp := cp[i]
					vq := cq[i]
					cp[i] = c*vp - s*vq
					cq[i] = s*vp + c*vq
				}
				for i := 0; i < n; i++ {
					vp := v.Data[i*n+p]
					vq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vp - s*vq
					v.Data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off < 1e-14 {
			break
		}
	}
	// Singular values are the column norms; U columns are normalized.
	type sv struct {
		s   float64
		idx int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += cols[j][i] * cols[j][i]
		}
		svs[j] = sv{math.Sqrt(norm), j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].s > svs[j].s })
	u := NewDense(m, n)
	vOut := NewDense(n, n)
	s := make([]float64, n)
	for jj, e := range svs {
		s[jj] = e.s
		inv := 0.0
		if e.s > 0 {
			inv = 1 / e.s
		}
		src := cols[e.idx]
		for i := 0; i < m; i++ {
			u.Data[i*n+jj] = src[i] * inv
		}
		for i := 0; i < n; i++ {
			vOut.Data[i*n+jj] = v.Data[i*n+e.idx]
		}
	}
	if transposed {
		return SVDResult{U: vOut, S: s, V: u}
	}
	return SVDResult{U: u, S: s, V: vOut}
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a with
// singular values below relTol * s_max truncated. This is the
// regularized inversion of equations (2.1)–(2.5): the equivalent-density
// systems are consistent but exponentially ill-conditioned, and the
// truncation level controls the attainable FMM accuracy.
func PseudoInverse(a *Dense, relTol float64) *Dense {
	dec := SVD(a)
	k := len(dec.S)
	cut := 0.0
	if k > 0 {
		cut = dec.S[0] * relTol
	}
	// pinv = V * diag(1/s) * Uᵀ, truncated.
	vs := NewDense(dec.V.Rows, k)
	for j := 0; j < k; j++ {
		if dec.S[j] <= cut || dec.S[j] == 0 {
			continue // leave the column zero: truncated direction
		}
		inv := 1 / dec.S[j]
		for i := 0; i < dec.V.Rows; i++ {
			vs.Data[i*k+j] = dec.V.Data[i*dec.V.Cols+j] * inv
		}
	}
	return Mul(vs, dec.U.Transpose())
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomDense(rng *rand.Rand, m, n int) *Dense {
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func TestMatVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 7, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, 7)
	a.MatVec(dst, x)
	for i := 0; i < 7; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += a.At(i, j) * x[j]
		}
		if math.Abs(dst[i]-s) > 1e-13 {
			t.Fatalf("MatVec[%d] = %v want %v", i, dst[i], s)
		}
	}
	// MatVecAdd accumulates.
	before := append([]float64(nil), dst...)
	a.MatVecAdd(dst, x)
	for i := range dst {
		if math.Abs(dst[i]-2*before[i]) > 1e-12 {
			t.Fatal("MatVecAdd must accumulate")
		}
	}
}

func TestMulAssociativityAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 4, 6)
	b := randomDense(rng, 6, 3)
	c := randomDense(rng, 3, 5)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if d := Sub(left, right).FrobeniusNorm(); d > 1e-12 {
		t.Errorf("associativity violated: %v", d)
	}
	if d := Sub(Mul(a, Eye(6)), a).FrobeniusNorm(); d > 1e-14 {
		t.Errorf("A*I != A: %v", d)
	}
	if d := Sub(Mul(Eye(4), a), a).FrobeniusNorm(); d > 1e-14 {
		t.Errorf("I*A != A: %v", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 5, 8)
	if d := Sub(a.Transpose().Transpose(), a).FrobeniusNorm(); d != 0 {
		t.Errorf("(Aᵀ)ᵀ != A: %v", d)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewDense(3, 4)
	for _, f := range []func(){
		func() { a.MatVec(make([]float64, 3), make([]float64, 3)) },
		func() { a.MatVecAdd(make([]float64, 2), make([]float64, 4)) },
		func() { Mul(a, NewDense(3, 3)) },
		func() { Sub(a, NewDense(4, 3)) },
		func() { NewDense(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected shape panic")
				}
			}()
			f()
		}()
	}
}

func checkSVD(t *testing.T, a *Dense, tol float64) {
	t.Helper()
	dec := SVD(a)
	k := len(dec.S)
	if k != min(a.Rows, a.Cols) {
		t.Fatalf("thin SVD rank: got %d want %d", k, min(a.Rows, a.Cols))
	}
	for i := 1; i < k; i++ {
		if dec.S[i] > dec.S[i-1]+1e-14 {
			t.Fatalf("singular values not sorted: s[%d]=%v > s[%d]=%v", i, dec.S[i], i-1, dec.S[i-1])
		}
		if dec.S[i] < 0 {
			t.Fatalf("negative singular value %v", dec.S[i])
		}
	}
	// Reconstruction A = U S Vᵀ.
	us := dec.U.Clone()
	for i := 0; i < us.Rows; i++ {
		for j := 0; j < k; j++ {
			us.Data[i*k+j] *= dec.S[j]
		}
	}
	rec := Mul(us, dec.V.Transpose())
	scale := a.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	if d := Sub(rec, a).FrobeniusNorm() / scale; d > tol {
		t.Fatalf("SVD reconstruction error %v > %v", d, tol)
	}
	// Orthonormal columns of U and V (on the non-null part).
	checkOrthonormalCols(t, dec.U, dec.S, tol)
	checkOrthonormalCols(t, dec.V, dec.S, tol)
}

func checkOrthonormalCols(t *testing.T, u *Dense, s []float64, tol float64) {
	t.Helper()
	for p := 0; p < u.Cols; p++ {
		if s[p] == 0 {
			continue
		}
		for q := p; q < u.Cols; q++ {
			if s[q] == 0 {
				continue
			}
			dot := 0.0
			for i := 0; i < u.Rows; i++ {
				dot += u.At(i, p) * u.At(i, q)
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(dot-want) > tol {
				t.Fatalf("columns %d,%d not orthonormal: %v", p, q, dot)
			}
		}
	}
}

func TestSVDRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][2]int{{5, 5}, {8, 3}, {3, 8}, {20, 12}, {1, 6}, {6, 1}} {
		checkSVD(t, randomDense(rng, shape[0], shape[1]), 1e-10)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A = b * cᵀ has rank 1.
	b := randomDense(rng, 9, 1)
	c := randomDense(rng, 7, 1)
	a := Mul(b, c.Transpose())
	checkSVD(t, a, 1e-10)
	dec := SVD(a)
	for i := 1; i < len(dec.S); i++ {
		if dec.S[i] > 1e-12*dec.S[0] {
			t.Errorf("rank-1 matrix has spurious singular value s[%d]=%v", i, dec.S[i])
		}
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := NewDense(4, 3)
	dec := SVD(a)
	for _, s := range dec.S {
		if s != 0 {
			t.Errorf("zero matrix must have zero singular values, got %v", s)
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) embedded in a rotation-free matrix.
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	dec := SVD(a)
	if math.Abs(dec.S[0]-3) > 1e-12 || math.Abs(dec.S[1]-2) > 1e-12 {
		t.Errorf("singular values of diag(3,2): %v", dec.S)
	}
}

func TestPseudoInverseMoorePenrose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range [][2]int{{6, 6}, {9, 4}, {4, 9}} {
		a := randomDense(rng, shape[0], shape[1])
		p := PseudoInverse(a, 1e-13)
		if p.Rows != a.Cols || p.Cols != a.Rows {
			t.Fatalf("pinv shape %dx%d for A %dx%d", p.Rows, p.Cols, a.Rows, a.Cols)
		}
		// A A⁺ A = A and A⁺ A A⁺ = A⁺.
		if d := Sub(Mul(Mul(a, p), a), a).FrobeniusNorm() / a.FrobeniusNorm(); d > 1e-9 {
			t.Errorf("A A+ A != A: %v", d)
		}
		if d := Sub(Mul(Mul(p, a), p), p).FrobeniusNorm() / p.FrobeniusNorm(); d > 1e-9 {
			t.Errorf("A+ A A+ != A+: %v", d)
		}
	}
}

func TestPseudoInverseRegularizesIllConditioned(t *testing.T) {
	// Nearly rank-1: truncation must keep the pinv norm bounded.
	a := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, 1)
		}
	}
	a.Set(2, 2, 1+1e-14)
	p := PseudoInverse(a, 1e-8)
	if n := p.FrobeniusNorm(); n > 10 {
		t.Errorf("truncated pinv should be tame, norm=%v", n)
	}
}

func TestScaleAndClone(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	c := a.Clone()
	a.Scale(3)
	if a.At(0, 0) != 3 || a.At(1, 1) != 6 {
		t.Error("Scale failed")
	}
	if c.At(0, 0) != 1 || c.At(1, 1) != 2 {
		t.Error("Clone must be independent")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package linalg provides the dense linear algebra the kernel-independent
// FMM needs: row-major matrices, matrix-vector and matrix-matrix
// products, a one-sided Jacobi SVD, and truncated pseudo-inverses used to
// invert the check-potential -> equivalent-density integral equations
// (arrows (2) in Figures 2.1 and 2.2 of the paper).
//
// Only the standard library is used; the SVD is a classical one-sided
// Jacobi iteration, which is slow asymptotically but very accurate and
// entirely adequate for the small (hundreds of rows) surface operators
// the FMM factors once per level.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zero Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Scale multiplies every entry by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Transpose returns a new matrix mᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatVec computes dst = m * x. dst must have length m.Rows and x length
// m.Cols; dst and x must not alias.
func (m *Dense) MatVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MatVec shape mismatch (%dx%d)*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatVecAdd computes dst += m * x.
func (m *Dense) MatVecAdd(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MatVecAdd shape mismatch (%dx%d)*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] += s
	}
}

// MatVecAddScaled computes dst += alpha * (m * x). The FMM uses it to
// apply unit-scale translation operators rescaled analytically for
// homogeneous kernels.
func (m *Dense) MatVecAddScaled(dst, x []float64, alpha float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MatVecAddScaled shape mismatch (%dx%d)*%d->%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] += alpha * s
	}
}

// Mul returns a*b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)*(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: Sub shape mismatch")
	}
	c := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v - b.Data[i]
	}
	return c
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

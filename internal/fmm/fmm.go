// Package fmm implements the adaptive kernel-independent FMM (paper
// Section 2): the upward pass builds upward equivalent densities (S2M at
// leaves, M2M up the tree), the downward pass accumulates downward check
// potentials from the V (M2L), X (S2L) lists and the parent (L2L),
// inverts them into downward equivalent densities, and the leaf
// evaluation combines the U list (direct), W list (M2T) and the local
// expansion (L2T).
//
// Every pass decomposes into independent per-box work synchronized only
// at level boundaries — the observation the paper's parallel algorithm
// rests on — so the engine fans each level out over worker lanes leased
// per call from a shared elastic pool (internal/exec): an evaluation on
// an idle process runs as wide as Options.Workers allows, degrades
// toward a floor under concurrent load, and sheds lanes mid-run as
// competitors arrive — without ever changing its bitwise result.
// Evaluation is read-only on the prepared plan (tree + operators): one
// Evaluator serves concurrent callers.
// Multi-RHS batching (EvaluateBatch) amortizes tree traversal and
// near-field kernel evaluations across many density vectors, the shape
// Krylov solvers and the evaluation service need.
//
// The engine records per-stage compute time and flop counts matching the
// stages the paper charts in Figures 4.2/4.3 (Up, DownU, DownV, DownW,
// DownX, Eval).
//
// Construction and evaluation are context-first (NewCtx, EvaluateCtx and
// friends): the context is threaded through every pass, checked at each
// dispatch and level barrier and between chunk claims inside a pass, so
// a cancellation or deadline aborts the sweep within one pass and
// surfaces as a typed error (errs.ErrCanceled / errs.ErrDeadlineExceeded,
// both also satisfying the standard context sentinels). The ctx-free
// entry points are thin context.Background() wrappers.
package fmm

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/errs"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/morton"
	"repro/internal/obs"
	"repro/internal/translate"
	"repro/internal/tree"
)

// M2LBackend selects how V-list translations are computed.
type M2LBackend int

const (
	// M2LFFT uses the Fourier-space convolution path (the paper's
	// default; footnote 5 notes direct evaluation has higher flop rates
	// but loses algorithmically).
	M2LFFT M2LBackend = iota
	// M2LDense applies cached dense translation matrices.
	M2LDense
)

// Options configure an Evaluator.
type Options struct {
	// Kernel is the interaction kernel (required).
	Kernel kernels.Kernel
	// Degree is the equivalent-surface degree p (default 6, ~1e-5
	// relative error for the Laplace kernel; use 8 for ~1e-7).
	Degree int
	// MaxPoints is the leaf threshold s (default 60, the paper's usual
	// value; its largest runs use 120).
	MaxPoints int
	// MaxDepth caps the octree depth.
	MaxDepth int
	// Backend selects the M2L path (default M2LFFT).
	Backend M2LBackend
	// PinvTol is the pseudo-inverse truncation (default 1e-10).
	PinvTol float64
	// Workers is the widest a single evaluation may fan its per-box
	// work out (default GOMAXPROCS; 1 forces the sequential path). It
	// is a ceiling, not a fixed width: the actual width of each call is
	// resolved at EvaluateCtx time by leasing lanes from the shared
	// elastic pool — up to Workers on an idle pool, degrading under
	// concurrent load, shrinking mid-run as competitors arrive. Results
	// are bitwise identical for every granted width: each box's
	// floating-point accumulation order is fixed, and lanes only
	// partition boxes. Workers does not affect what an evaluator
	// computes, so plan identity (kifmm.PlanKey) excludes it.
	Workers int
	// Pool is the elastic lane pool evaluations lease their width from
	// (nil selects the process-wide default, sized GOMAXPROCS).
	// Evaluators sharing a pool — e.g. every plan of the evaluation
	// service — share one scheduling domain: admission and per-call
	// width are decided across all of them. Like Workers, Pool cannot
	// change what an evaluator computes and is excluded from plan
	// identity.
	Pool *exec.Elastic
}

// Stats aggregates per-stage compute times and flop counts of one
// evaluation, mirroring the stage breakdown of the paper's Figures
// 4.2/4.3. Durations are summed across workers (aggregate compute time):
// with Workers=1 they match wall clock; with more workers the wall time
// of a stage is roughly its duration divided by the achieved speedup.
type Stats struct {
	Up, DownU, DownV, DownW, DownX, Eval time.Duration
	FlopsUp, FlopsDownU, FlopsDownV,
	FlopsDownW, FlopsDownX, FlopsEval int64
	// Lanes is the worker-lane width this evaluation was granted at
	// admission by the elastic pool (1 on the sequential path). It is
	// run-level, not a per-stage accumulator, so Add leaves it alone.
	Lanes int
}

// Total returns the summed compute time of all stages.
func (s Stats) Total() time.Duration {
	return s.Up + s.DownU + s.DownV + s.DownW + s.DownX + s.Eval
}

// Flops returns the total flop count.
func (s Stats) Flops() int64 {
	return s.FlopsUp + s.FlopsDownU + s.FlopsDownV + s.FlopsDownW + s.FlopsDownX + s.FlopsEval
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Up += o.Up
	s.DownU += o.DownU
	s.DownV += o.DownV
	s.DownW += o.DownW
	s.DownX += o.DownX
	s.Eval += o.Eval
	s.FlopsUp += o.FlopsUp
	s.FlopsDownU += o.FlopsDownU
	s.FlopsDownV += o.FlopsDownV
	s.FlopsDownW += o.FlopsDownW
	s.FlopsDownX += o.FlopsDownX
	s.FlopsEval += o.FlopsEval
}

// Evaluator computes potentials induced by source densities. Build once,
// evaluate many times (the paper's applications run tens to hundreds of
// interaction evaluations per tree). Evaluation does not mutate the plan
// state, so a single Evaluator is safe for concurrent Evaluate calls.
type Evaluator struct {
	Tree *tree.Tree
	Ops  *translate.Set
	opt  Options
	fft  *translate.FFTM2L
	pool *exec.Elastic

	// statsMu guards stats, the breakdown of the most recent completed
	// evaluation (concurrent callers race benignly: last writer wins).
	statsMu sync.Mutex
	stats   Stats

	closeOnce sync.Once
}

// ApplyDefaults fills zero-valued options with the paper-matching
// defaults (degree 6, leaf threshold 60, pinv tolerance 1e-10, one
// worker per logical CPU). It is the single source of truth for
// defaulting: New and FromTree apply it, and the plan-key hashing in the
// root package uses it so that options which build identical evaluators
// identify the same plan. For that reason it mirrors the exact coercion
// rules of the downstream construction: tree.Build treats MaxPoints <= 0
// as 60 and clamps MaxDepth to (0, morton.MaxLevel], and
// translate.NewSet treats PinvTol <= 0 as 1e-10. (Negative Degree is not
// coerced anywhere; it fails surface construction and never produces an
// evaluator. Workers is machine-dependent and never hashed.)
func ApplyDefaults(opt Options) Options {
	if opt.Degree == 0 {
		opt.Degree = 6
	}
	if opt.MaxPoints <= 0 {
		opt.MaxPoints = 60
	}
	if opt.MaxDepth <= 0 || opt.MaxDepth > morton.MaxLevel {
		opt.MaxDepth = morton.MaxLevel
	}
	if opt.PinvTol <= 0 {
		opt.PinvTol = 1e-10
	}
	// Every backend other than M2LFFT takes the dense path (FromTree
	// only checks == M2LFFT), so out-of-range values collapse onto
	// M2LDense and hash identically to it.
	if opt.Backend != M2LFFT {
		opt.Backend = M2LDense
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	// Pool, like Workers, is scheduling policy: left alone here (nil
	// resolves to the process default at construction) and never hashed.
	return opt
}

// defaultPool is the process-wide elastic lane pool evaluators without
// an explicit Options.Pool share, sized to the machine. One pool per
// process is the point: concurrent evaluations of unrelated plans still
// negotiate their widths against each other instead of oversubscribing
// the cores.
var (
	defaultPoolOnce sync.Once
	defaultPool     *exec.Elastic
)

// DefaultPool returns the process-wide elastic pool (capacity
// GOMAXPROCS at first use).
func DefaultPool() *exec.Elastic {
	defaultPoolOnce.Do(func() { defaultPool = exec.NewElastic(0) })
	return defaultPool
}

// New builds the octree over src and trg (flat x,y,z slices, which may be
// the same set, as in the paper's experiments) and prepares the
// translation operators. It is NewCtx with context.Background().
func New(src, trg []float64, opt Options) (*Evaluator, error) {
	return NewCtx(context.Background(), src, trg, opt) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
}

// NewCtx is the context-aware plan build: ctx is checked before and
// after the expensive stages and inside the octree construction's
// per-level loops (tree.BuildCtx), so an impatient caller abandons even
// a pathological tree build within one level.
func NewCtx(ctx context.Context, src, trg []float64, opt Options) (*Evaluator, error) {
	if opt.Kernel == nil {
		return nil, errs.New(errs.CodeInvalidInput, "fmm: Options.Kernel is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, errs.FromContext(err)
	}
	opt = ApplyDefaults(opt)
	tr, err := tree.BuildCtx(ctx, src, trg, tree.Config{MaxPoints: opt.MaxPoints, MaxDepth: opt.MaxDepth})
	if err != nil {
		// Cancellation keeps its typed code; anything else the tree
		// rejected is malformed input.
		return nil, errs.Typed(errs.FromContext(err), errs.CodeInvalidInput)
	}
	if err := ctx.Err(); err != nil {
		return nil, errs.FromContext(err)
	}
	return FromTree(tr, opt)
}

// FromTree wraps an existing octree (used by the parallel driver, which
// builds its local essential tree separately).
func FromTree(tr *tree.Tree, opt Options) (*Evaluator, error) {
	opt = ApplyDefaults(opt)
	ops, err := translate.NewSet(opt.Kernel, opt.Degree, tr.HalfWidth, opt.PinvTol)
	if err != nil {
		return nil, errs.Typed(err, errs.CodeInvalidInput)
	}
	pool := opt.Pool
	if pool == nil {
		pool = DefaultPool()
	}
	e := &Evaluator{Tree: tr, Ops: ops, opt: opt, pool: pool}
	if opt.Backend == M2LFFT {
		e.fft = translate.NewFFTM2L(ops)
	}
	return e, nil
}

// Workers returns the width ceiling of one evaluation: the widest lane
// lease a call of this evaluator can be granted (Options.Workers
// clamped to the pool capacity). The actual width of each call is
// decided at evaluation time by the pool's load; Stats.Lanes reports
// what a specific call was granted.
func (e *Evaluator) Workers() int {
	if e.opt.Workers < e.pool.Cap() {
		return e.opt.Workers
	}
	return e.pool.Cap()
}

// Stats returns the stage breakdown of the most recently completed
// evaluation (with concurrent callers, the last one to finish).
func (e *Evaluator) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// FootprintBytes estimates the resident memory of this prepared plan:
// the octree (points, permutations, boxes, interaction lists) plus this
// plan's share of the translation operators and FFT kernel tensors
// currently cached for its kernel/degree/geometry. Operator caches are
// shared process-wide and refcounted: N live plans sharing an operator
// set each attribute 1/N of its bytes, so a byte-bounded plan cache
// summing FootprintBytes across plans counts every shared byte exactly
// once (the pre-refcount behavior attributed them once per plan). The
// estimate is live — it grows as lazily built operators appear and
// redistributes when sharing plans are closed.
func (e *Evaluator) FootprintBytes() int64 {
	b := e.Tree.MemoryBytes()
	b += e.Ops.CachedBytes()
	if e.fft != nil {
		b += e.fft.CachedBytes()
	}
	return b
}

// Close releases this plan's refcounted claim on the process-global
// operator and FFT tensor caches. Accounting only: the caches keep
// their entries and a closed evaluator remains fully usable (an evicted
// service plan finishes its in-flight evaluations) — the shared bytes
// are simply attributed to the plans still open. Idempotent.
func (e *Evaluator) Close() {
	e.closeOnce.Do(func() {
		e.Ops.Close()
		if e.fft != nil {
			e.fft.Close()
		}
	})
}

// Evaluate computes pot[i] = Σ_j G(trg_i, src_j) den_j for all targets.
// den holds SourceDim components per source in the original input order;
// the result has TargetDim components per target in input order.
func (e *Evaluator) Evaluate(den []float64) ([]float64, error) {
	pot, _, err := e.EvaluateStatsCtx(context.Background(), den) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
	return pot, err
}

// EvaluateCtx is Evaluate under a context: a cancellation or deadline
// aborts the sweep within one pass and returns a typed error satisfying
// both errs.ErrCanceled (or ErrDeadlineExceeded) and the matching
// context sentinel.
func (e *Evaluator) EvaluateCtx(ctx context.Context, den []float64) ([]float64, error) {
	pot, _, err := e.EvaluateStatsCtx(ctx, den)
	return pot, err
}

// EvaluateStats is Evaluate returning this call's stage breakdown
// directly, so concurrent callers get their own stats instead of racing
// on Stats().
func (e *Evaluator) EvaluateStats(den []float64) ([]float64, Stats, error) {
	return e.EvaluateStatsCtx(context.Background(), den) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
}

// EvaluateStatsCtx is EvaluateCtx returning this call's stage breakdown.
func (e *Evaluator) EvaluateStatsCtx(ctx context.Context, den []float64) ([]float64, Stats, error) {
	pots, st, err := e.evaluate(ctx, [][]float64{den}, nil)
	if err != nil {
		return nil, Stats{}, err
	}
	return pots[0], st, nil
}

// EvaluateBatch evaluates several density vectors against the same plan
// in one sweep, amortizing tree traversal, operator fetches and —
// dominating the near field — per-pair kernel evaluations across the
// batch (U/W/X/S2M interactions materialize each kernel block once and
// apply it to every right-hand side). Results match per-vector Evaluate
// calls to accumulation-order rounding.
func (e *Evaluator) EvaluateBatch(dens [][]float64) ([][]float64, error) {
	pots, _, err := e.evaluate(context.Background(), dens, nil) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
	return pots, err
}

// EvaluateBatchCtx is EvaluateBatch under a context; see EvaluateCtx.
func (e *Evaluator) EvaluateBatchCtx(ctx context.Context, dens [][]float64) ([][]float64, error) {
	pots, _, err := e.evaluate(ctx, dens, nil)
	return pots, err
}

// EvaluateBatchStats is EvaluateBatch returning the aggregate stage
// breakdown of the whole batch.
func (e *Evaluator) EvaluateBatchStats(dens [][]float64) ([][]float64, Stats, error) {
	return e.evaluate(context.Background(), dens, nil) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
}

// EvaluateBatchStatsCtx is EvaluateBatchCtx returning the aggregate
// stage breakdown of the whole batch.
func (e *Evaluator) EvaluateBatchStatsCtx(ctx context.Context, dens [][]float64) ([][]float64, Stats, error) {
	return e.evaluate(ctx, dens, nil)
}

// EvaluateBatchTracedCtx is EvaluateBatchStatsCtx plus a trace: the
// returned span tree records wall-clock intervals for the evaluation
// (root), each pass (permute / up / down / leaf / unpermute) and each
// tree level within the up and down passes. Pass spans measure wall
// time of the whole parallel sweep, whereas Stats stages sum compute
// time across lanes — the two agree only at width 1. The tree is
// finished (every span ended) and owned by the caller; on error the
// span tree is nil. Tracing costs a handful of small allocations per
// call.
func (e *Evaluator) EvaluateBatchTracedCtx(ctx context.Context, dens [][]float64) ([][]float64, Stats, *obs.Span, error) {
	root := obs.StartSpan("evaluate")
	pots, st, err := e.evaluate(ctx, dens, root)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	return pots, st, root, nil
}

// runState carries one evaluation's transient state: the engine reads
// the Evaluator but writes only here, which is what makes concurrent
// evaluations of one plan safe.
type runState struct {
	e    *Evaluator
	pool *exec.Lease
	nrhs int

	sd, td, ne, nc int

	pdens  [][]float64 // per-RHS densities, Morton order
	ppots  [][]float64 // per-RHS potentials, Morton order
	phiU   [][]float64 // per-box upward equivalent densities (nrhs*ne)
	phiD   [][]float64 // per-box downward equivalent densities (nrhs*ne)
	checks [][]float64 // per-box downward check potentials (nrhs*nc)

	ws []scratch // per-worker scratch and stats
}

// scratch is one worker's private buffers; ForRange hands every
// invocation a stable worker id, so no locks are needed.
type scratch struct {
	stats Stats
	check []float64
	pts   []float64
	mat   []float64
	acc   []complex128
}

func (sc *scratch) checkBuf(n int) []float64 {
	if cap(sc.check) < n {
		sc.check = make([]float64, n)
	}
	return sc.check[:n]
}

func (sc *scratch) ptsBuf(n int) []float64 {
	if cap(sc.pts) < n {
		sc.pts = make([]float64, n)
	}
	return sc.pts[:n]
}

func (sc *scratch) matBuf(n int) []float64 {
	if cap(sc.mat) < n {
		sc.mat = make([]float64, n)
	}
	return sc.mat[:n]
}

// accBuf returns a zeroed flat accumulator of n Fourier grids (the
// rhs-major AccumulateBatch layout).
func (sc *scratch) accBuf(n int) []complex128 {
	if cap(sc.acc) < n {
		sc.acc = make([]complex128, n)
	}
	acc := sc.acc[:n]
	for i := range acc {
		acc[i] = 0
	}
	return acc
}

// evaluate is the engine shared by all Evaluate variants. The call's
// worker-lane width is resolved here, not at plan time: a lease is
// acquired from the elastic pool (admission — under saturation this is
// where a call queues, honoring ctx) and every pass fans out under it,
// shrinking at chunk-claim boundaries if lanes are revoked mid-run and
// growing back at pass boundaries when the pool drains. ctx flows into
// every pool dispatch; on cancellation the current pass drains at its
// barrier, the partially written run state is discarded, and the typed
// cancellation error is returned (the most recent *completed*
// evaluation's stats are left untouched).
//
// root, when non-nil, collects a per-pass wall-clock span tree (nil
// costs nothing — every span method is nil-safe). Passes build the tree
// sequentially and only this call's goroutines see it until return, so
// no locking.
func (e *Evaluator) evaluate(ctx context.Context, dens [][]float64, root *obs.Span) ([][]float64, Stats, error) {
	k := e.opt.Kernel
	sd, td := k.SourceDim(), k.TargetDim()
	t := e.Tree
	nSrc := len(t.SrcPoints) / 3
	nTrg := len(t.TrgPoints) / 3
	if len(dens) == 0 {
		return nil, Stats{}, errs.New(errs.CodeInvalidInput, "fmm: evaluation needs at least one density vector")
	}
	for q, den := range dens {
		if len(den) != nSrc*sd {
			if len(dens) == 1 {
				return nil, Stats{}, errs.Newf(errs.CodeInvalidInput, "fmm: density length %d, want %d", len(den), nSrc*sd)
			}
			return nil, Stats{}, errs.Newf(errs.CodeInvalidInput, "fmm: density %d length %d, want %d", q, len(den), nSrc*sd)
		}
	}
	lease, err := e.pool.Acquire(ctx, e.opt.Workers)
	if err != nil {
		return nil, Stats{}, errs.FromContext(err)
	}
	defer lease.Release()
	r := &runState{
		e: e, pool: lease, nrhs: len(dens),
		sd: sd, td: td, ne: e.Ops.EquivCount(), nc: e.Ops.CheckCount(),
		pdens: make([][]float64, len(dens)),
		ppots: make([][]float64, len(dens)),
		// Scratch is sized off the lease ceiling, not the granted
		// width: a shrunken call can fan back out at a pass boundary.
		ws: make([]scratch, lease.MaxWidth()),
	}
	root.SetAttr("rhs", strconv.Itoa(r.nrhs))
	root.SetAttr("granted_lanes", strconv.Itoa(lease.Granted()))
	// Permute densities into Morton order (fanned out across the batch).
	sp := root.StartChild("permute")
	err = r.pool.ForRange(ctx, 0, r.nrhs, func(_, q int) {
		p := make([]float64, nSrc*sd)
		for i, orig := range t.SrcPerm {
			o := int(orig)
			copy(p[i*sd:(i+1)*sd], dens[q][o*sd:(o+1)*sd])
		}
		r.pdens[q] = p
		r.ppots[q] = make([]float64, nTrg*td)
	})
	sp.End()
	if err == nil {
		sp = root.StartChild("up")
		err = r.upwardPass(ctx, sp)
		sp.End()
	}
	if err == nil {
		sp = root.StartChild("down")
		err = r.downwardPass(ctx, sp)
		sp.End()
	}
	if err == nil {
		sp = root.StartChild("leaf")
		err = r.leafEvaluation(ctx)
		sp.End()
	}

	// Un-permute potentials to input order.
	pots := make([][]float64, r.nrhs)
	if err == nil {
		sp = root.StartChild("unpermute")
		err = r.pool.ForRange(ctx, 0, r.nrhs, func(_, q int) {
			pot := make([]float64, nTrg*td)
			for i, orig := range t.TrgPerm {
				o := int(orig)
				copy(pot[o*td:(o+1)*td], r.ppots[q][i*td:(i+1)*td])
			}
			pots[q] = pot
		})
		sp.End()
	}
	if err != nil {
		return nil, Stats{}, errs.FromContext(err)
	}
	var st Stats
	for i := range r.ws {
		st.Add(r.ws[i].stats)
	}
	st.Lanes = lease.Granted()
	root.End()
	e.statsMu.Lock()
	e.stats = st
	e.statsMu.Unlock()
	return pots, st, nil
}

// denAt returns the per-RHS density views of a contiguous source range.
func (r *runState) denAt(start, count int) func(q int) []float64 {
	return func(q int) []float64 {
		return r.pdens[q][start*r.sd : (start+count)*r.sd]
	}
}

// sliceAt returns the per-RHS views of an rhs-major buffer with the
// given per-RHS stride.
func sliceAt(buf []float64, stride int) func(q int) []float64 {
	return func(q int) []float64 { return buf[q*stride : (q+1)*stride] }
}

// addP2P accumulates the direct interaction of one (targets, sources)
// pair into dst(q) for every right-hand side. With one RHS it takes the
// specialized P2P loops; for batches it materializes the kernel block
// once into worker scratch and applies it per RHS, so the kernel
// evaluations — the dominant near-field cost — are paid once per batch.
// (Kernels return a zero block at zero displacement, so self
// interactions vanish on both paths.)
func (r *runState) addP2P(sc *scratch, trg, src []float64, den, dst func(q int) []float64, flops *int64) {
	k := r.e.opt.Kernel
	nt, ns := len(trg)/3, len(src)/3
	if r.nrhs == 1 {
		kernels.P2P(k, trg, src, den(0), dst(0))
		*flops += kernels.P2PFlops(k, nt, ns)
		return
	}
	rows, cols := nt*r.td, ns*r.sd
	m := linalg.Dense{Rows: rows, Cols: cols, Data: sc.matBuf(rows * cols)}
	kernels.Matrix(k, trg, src, m.Data)
	*flops += kernels.P2PFlops(k, nt, ns)
	for q := 0; q < r.nrhs; q++ {
		m.MatVecAdd(dst(q), den(q))
		*flops += int64(2 * rows * cols)
	}
}

// upwardPass computes upward equivalent densities for every box that
// contains sources, deepest level first (S2M at leaves, M2M inside).
// Levels run in sequence — a parent needs its children — and the boxes
// of one level fan out over the pool.
func (r *runState) upwardPass(ctx context.Context, sp *obs.Span) error {
	t := r.e.Tree
	ne, nc := r.ne, r.nc
	r.phiU = make([][]float64, len(t.Boxes))
	for l := t.Depth() - 1; l >= 0; l-- {
		ls := sp.StartChild("level " + strconv.Itoa(l))
		radius := t.BoxHalfWidth(l)
		// Fetch the level's operators once, outside the parallel region,
		// so workers apply them lock-free. Internal boxes exist at level
		// l only when level l+1 is populated.
		upPinv := r.e.Ops.UpwardPinv(l)
		var m2m [8]translate.Op
		if l < t.Depth()-1 {
			for o := range m2m {
				m2m[o] = r.e.Ops.M2M(l, o)
			}
		}
		err := r.pool.ForRange(ctx, t.LevelStart[l], t.LevelStart[l+1], func(w, bi int) {
			b := &t.Boxes[bi]
			if b.SrcCount == 0 {
				return
			}
			sc := &r.ws[w]
			start := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
			check := sc.checkBuf(r.nrhs * nc)
			for i := range check {
				check[i] = 0
			}
			if b.Leaf {
				src := t.SrcSlice(int32(bi))
				ucPts := r.e.Ops.UpwardCheckPoints(t.BoxCenter(int32(bi)), radius, sc.ptsBuf(3*r.e.Ops.Surf.N))
				r.addP2P(sc, ucPts, src, r.denAt(b.SrcStart, b.SrcCount), sliceAt(check, nc), &sc.stats.FlopsUp)
			} else {
				for o, ci := range b.Children {
					if ci == tree.Nil || r.phiU[ci] == nil {
						continue
					}
					for q := 0; q < r.nrhs; q++ {
						m2m[o].Apply(check[q*nc:(q+1)*nc], r.phiU[ci][q*ne:(q+1)*ne])
					}
					sc.stats.FlopsUp += int64(2*nc*ne) * int64(r.nrhs)
				}
			}
			phi := make([]float64, r.nrhs*ne)
			for q := 0; q < r.nrhs; q++ {
				upPinv.Apply(phi[q*ne:(q+1)*ne], check[q*nc:(q+1)*nc])
			}
			sc.stats.FlopsUp += int64(2*ne*nc) * int64(r.nrhs)
			r.phiU[bi] = phi
			sc.stats.Up += time.Since(start)
		})
		ls.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// getCheck lazily allocates a box's downward check potentials. Within
// each parallel phase a box is visited by exactly one worker, and phases
// are separated by pool barriers, so no lock is needed.
func (r *runState) getCheck(bi int32) []float64 {
	if r.checks[bi] == nil {
		r.checks[bi] = make([]float64, r.nrhs*r.nc)
	}
	return r.checks[bi]
}

// downwardPass accumulates downward check potentials level by level
// (M2L from the V list, S2L from the X list, L2L from the parent) and
// inverts them into downward equivalent densities. The level order is
// sequential (a child needs its parent's phiD); within a level the M2L
// sweep and the per-box X/L2L/inversion sweep each fan out over the
// pool.
func (r *runState) downwardPass(ctx context.Context, sp *obs.Span) error {
	t := r.e.Tree
	ne, nc := r.ne, r.nc
	r.phiD = make([][]float64, len(t.Boxes))
	if t.Depth() <= 2 {
		return nil
	}
	r.checks = make([][]float64, len(t.Boxes))
	for l := 2; l < t.Depth(); l++ {
		ls := sp.StartChild("level " + strconv.Itoa(l))
		// V list: M2L translations, batched per level.
		var err error
		if r.e.fft != nil {
			err = r.applyM2LFFT(ctx, l)
		} else {
			err = r.applyM2LDense(ctx, l)
		}
		if err != nil {
			ls.End()
			return err
		}
		downPinv := r.e.Ops.DownwardPinv(l)
		// L2L operators are only applied when the parent has a downward
		// density, which level-1 parents (of the first downward level)
		// never do — don't build 8 unused operators there.
		var l2l [8]translate.Op
		if l > 2 {
			for o := range l2l {
				l2l[o] = r.e.Ops.L2L(l-1, o)
			}
		}
		radius := t.BoxHalfWidth(l)
		err = r.pool.ForRange(ctx, t.LevelStart[l], t.LevelStart[l+1], func(w, bi int) {
			b := &t.Boxes[bi]
			if b.TrgCount == 0 {
				// No targets anywhere below: the local expansion is
				// useless. (Pruned boxes always have points, but a box
				// can hold sources only.)
				return
			}
			sc := &r.ws[w]
			// X list: sources of coarser leaves evaluated directly on the
			// DC surface (S2L).
			if len(b.X) > 0 {
				startX := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
				check := r.getCheck(int32(bi))
				dcPts := r.e.Ops.DownwardCheckPoints(t.BoxCenter(int32(bi)), radius, sc.ptsBuf(3*r.e.Ops.Surf.N))
				for _, a := range b.X {
					ab := &t.Boxes[a]
					r.addP2P(sc, dcPts, t.SrcSlice(a), r.denAt(ab.SrcStart, ab.SrcCount),
						sliceAt(check, nc), &sc.stats.FlopsDownX)
				}
				sc.stats.DownX += time.Since(startX)
			}
			// L2L from the parent's downward density.
			startE := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
			if p := b.Parent; p != tree.Nil && r.phiD[p] != nil {
				check := r.getCheck(int32(bi))
				op := l2l[b.Key.Octant()]
				for q := 0; q < r.nrhs; q++ {
					op.Apply(check[q*nc:(q+1)*nc], r.phiD[p][q*ne:(q+1)*ne])
				}
				sc.stats.FlopsEval += int64(2*nc*ne) * int64(r.nrhs)
			}
			if r.checks[bi] != nil {
				phi := make([]float64, r.nrhs*ne)
				for q := 0; q < r.nrhs; q++ {
					downPinv.Apply(phi[q*ne:(q+1)*ne], r.checks[bi][q*nc:(q+1)*nc])
				}
				sc.stats.FlopsEval += int64(2*ne*nc) * int64(r.nrhs)
				r.phiD[bi] = phi
			}
			sc.stats.Eval += time.Since(startE)
		})
		ls.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// applyM2LDense applies cached dense M2L operators, fanned out over the
// level's target boxes.
func (r *runState) applyM2LDense(ctx context.Context, l int) error {
	t := r.e.Tree
	ne, nc := r.ne, r.nc
	return r.pool.ForRange(ctx, t.LevelStart[l], t.LevelStart[l+1], func(w, bi int) {
		b := &t.Boxes[bi]
		if b.TrgCount == 0 || len(b.V) == 0 {
			return
		}
		sc := &r.ws[w]
		start := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
		check := r.getCheck(int32(bi))
		bx, by, bz := b.Key.Decode()
		for _, a := range b.V {
			if r.phiU[a] == nil {
				continue
			}
			ax, ay, az := t.Boxes[a].Key.Decode()
			off := [3]int{int(bx) - int(ax), int(by) - int(ay), int(bz) - int(az)}
			op := r.e.Ops.M2LDirect(l, off)
			for q := 0; q < r.nrhs; q++ {
				op.Apply(check[q*nc:(q+1)*nc], r.phiU[a][q*ne:(q+1)*ne])
			}
			sc.stats.FlopsDownV += int64(2*nc*ne) * int64(r.nrhs)
		}
		sc.stats.DownV += time.Since(start)
	})
}

// rhsChunk picks how many right-hand sides the V-list sweep processes
// per pass: enough to amortize one kernel-tensor load across the whole
// chunk (the win of the rhs-major layout), bounded so the in-flight
// Fourier grids of a level stay within a fixed memory budget. The
// choice depends only on the plan and the batch — never on the worker
// count — so batched results stay deterministic across machines.
func rhsChunk(nrhs, nused, sd, gl int) int {
	// Tensor-load amortization saturates long before 16 RHS; past that
	// the extra grids only cost memory and cache pressure.
	const maxChunk = 16
	// ~256 MiB of simultaneous source grids (16 bytes per coefficient).
	const budgetBytes = 256 << 20
	c := nrhs
	if c > maxChunk {
		c = maxChunk
	}
	if per := int64(nused) * int64(sd) * int64(gl) * 16; per > 0 {
		if b := int(budgetBytes / per); b < c {
			c = b
		}
	}
	if c < 1 {
		c = 1
	}
	return c
}

// applyM2LFFT batches the level's V-list translations through the
// Fourier path: one forward FFT per contributing source box per RHS,
// Hadamard accumulation per (target, source) pair, one inverse FFT per
// target per RHS. The forward sweep and the accumulate/extract sweep
// each fan out over the pool; a barrier between them guarantees every
// grid is ready. The batch is walked in rhs chunks with rhs-major grids
// (see rhsChunk): within a chunk each kernel tensor is loaded once per
// (target, source) pair and applied to every RHS while cache-hot, which
// is what makes batched evaluation superlinear in FFT-dominated
// configurations.
func (r *runState) applyM2LFFT(ctx context.Context, l int) error {
	t := r.e.Tree
	f := r.e.fft
	sd, td := r.sd, r.td
	ne, nc := r.ne, r.nc
	gl := f.GridLen()
	lo, hi := t.LevelStart[l], t.LevelStart[l+1]
	// Index every source box used by some V list at this level
	// (RHS-independent; read-only inside the parallel sweeps).
	gridOf := make(map[int32]int)
	var used []int32
	for bi := lo; bi < hi; bi++ {
		b := &t.Boxes[bi]
		if b.TrgCount == 0 {
			continue
		}
		for _, a := range b.V {
			if r.phiU[a] == nil {
				continue
			}
			if _, ok := gridOf[a]; !ok {
				gridOf[a] = len(used)
				used = append(used, a)
			}
		}
	}
	if len(used) == 0 {
		return nil
	}
	chunk := rhsChunk(r.nrhs, len(used), sd, gl)
	grids := make([][]complex128, len(used))
	for q0 := 0; q0 < r.nrhs; q0 += chunk {
		nq := chunk
		if q0+nq > r.nrhs {
			nq = r.nrhs - q0
		}
		// Forward-transform every contributing source box for this rhs
		// chunk (grid buffers are reused across chunks).
		err := r.pool.ForRange(ctx, 0, len(used), func(w, i int) {
			sc := &r.ws[w]
			start := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
			if grids[i] == nil {
				grids[i] = make([]complex128, chunk*sd*gl)
			}
			f.ForwardDensityBatch(r.phiU[used[i]][q0*ne:(q0+nq)*ne], nq, grids[i])
			sc.stats.FlopsDownV += int64(5*gl*sd) * int64(nq) // ~5 n log n per grid
			sc.stats.DownV += time.Since(start)
		})
		if err != nil {
			return err
		}
		err = r.pool.ForRange(ctx, lo, hi, func(w, bi int) {
			b := &t.Boxes[bi]
			if b.TrgCount == 0 || len(b.V) == 0 {
				return
			}
			sc := &r.ws[w]
			start := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
			acc := sc.accBuf(nq * td * gl)
			bx, by, bz := b.Key.Decode()
			any := false
			for _, a := range b.V {
				gi, ok := gridOf[a]
				if !ok {
					continue
				}
				ax, ay, az := t.Boxes[a].Key.Decode()
				off := [3]int{int(bx) - int(ax), int(by) - int(ay), int(bz) - int(az)}
				f.AccumulateBatch(acc, grids[gi][:nq*sd*gl], nq, l, off)
				sc.stats.FlopsDownV += int64(8*gl*sd*td) * int64(nq)
				any = true
			}
			if any {
				check := r.getCheck(int32(bi))
				for q := 0; q < nq; q++ {
					f.ExtractGrids(acc[q*td*gl:(q+1)*td*gl], l, check[(q0+q)*nc:(q0+q+1)*nc])
				}
				sc.stats.FlopsDownV += int64(5*gl*td) * int64(nq)
			}
			sc.stats.DownV += time.Since(start)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// leafEvaluation computes target potentials at every leaf: direct U-list
// interactions, W-list M2T evaluations and the local expansion (L2T).
// Leaves own disjoint target ranges, so the whole sweep fans out at
// once.
func (r *runState) leafEvaluation(ctx context.Context) error {
	t := r.e.Tree
	td, ne := r.td, r.ne
	nsurf := 3 * r.e.Ops.Surf.N
	return r.pool.ForRange(ctx, 0, len(t.Boxes), func(w, bi int) {
		b := &t.Boxes[bi]
		if !b.Leaf || b.TrgCount == 0 {
			return
		}
		sc := &r.ws[w]
		trg := t.TrgSlice(int32(bi))
		pot := func(q int) []float64 {
			return r.ppots[q][b.TrgStart*td : (b.TrgStart+b.TrgCount)*td]
		}
		// U list: direct interactions with adjacent leaves (and itself).
		startU := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
		for _, u := range b.U {
			ub := &t.Boxes[u]
			if ub.SrcCount == 0 {
				continue
			}
			r.addP2P(sc, trg, t.SrcSlice(u), r.denAt(ub.SrcStart, ub.SrcCount), pot, &sc.stats.FlopsDownU)
		}
		sc.stats.DownU += time.Since(startU)
		// W list: far small boxes evaluated from their upward equivalent
		// densities (M2T).
		startW := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
		for _, wi := range b.W {
			if r.phiU[wi] == nil {
				continue
			}
			wb := &t.Boxes[wi]
			surfPts := r.e.Ops.UpwardEquivPoints(t.BoxCenter(wi), t.BoxHalfWidth(wb.Level()), sc.ptsBuf(nsurf))
			r.addP2P(sc, trg, surfPts, sliceAt(r.phiU[wi], ne), pot, &sc.stats.FlopsDownW)
		}
		sc.stats.DownW += time.Since(startW)
		// L2T: evaluate the downward equivalent density at the targets.
		startE := time.Now() //lint:allow determinism per-stage timing feeds Stats and trace spans, not numerics
		if r.phiD[bi] != nil {
			surfPts := r.e.Ops.DownwardEquivPoints(t.BoxCenter(int32(bi)), t.BoxHalfWidth(b.Level()), sc.ptsBuf(nsurf))
			r.addP2P(sc, trg, surfPts, sliceAt(r.phiD[bi], ne), pot, &sc.stats.FlopsEval)
		}
		sc.stats.Eval += time.Since(startE)
	})
}

// Package fmm implements the sequential adaptive kernel-independent FMM
// (paper Section 2): the upward pass builds upward equivalent densities
// (S2M at leaves, M2M up the tree), the downward pass accumulates
// downward check potentials from the V (M2L), X (S2L) lists and the
// parent (L2L), inverts them into downward equivalent densities, and the
// leaf evaluation combines the U list (direct), W list (M2T) and the
// local expansion (L2T).
//
// The engine records per-stage wall time and flop counts matching the
// stages the paper charts in Figures 4.2/4.3 (Up, DownU, DownV, DownW,
// DownX, Eval).
package fmm

import (
	"fmt"
	"time"

	"repro/internal/kernels"
	"repro/internal/morton"
	"repro/internal/translate"
	"repro/internal/tree"
)

// M2LBackend selects how V-list translations are computed.
type M2LBackend int

const (
	// M2LFFT uses the Fourier-space convolution path (the paper's
	// default; footnote 5 notes direct evaluation has higher flop rates
	// but loses algorithmically).
	M2LFFT M2LBackend = iota
	// M2LDense applies cached dense translation matrices.
	M2LDense
)

// Options configure an Evaluator.
type Options struct {
	// Kernel is the interaction kernel (required).
	Kernel kernels.Kernel
	// Degree is the equivalent-surface degree p (default 6, ~1e-5
	// relative error for the Laplace kernel; use 8 for ~1e-7).
	Degree int
	// MaxPoints is the leaf threshold s (default 60, the paper's usual
	// value; its largest runs use 120).
	MaxPoints int
	// MaxDepth caps the octree depth.
	MaxDepth int
	// Backend selects the M2L path (default M2LFFT).
	Backend M2LBackend
	// PinvTol is the pseudo-inverse truncation (default 1e-10).
	PinvTol float64
}

// Stats aggregates per-stage timings and flop counts of one evaluation,
// mirroring the stage breakdown of the paper's Figures 4.2/4.3.
type Stats struct {
	Up, DownU, DownV, DownW, DownX, Eval time.Duration
	FlopsUp, FlopsDownU, FlopsDownV,
	FlopsDownW, FlopsDownX, FlopsEval int64
}

// Total returns the summed wall time of all stages.
func (s Stats) Total() time.Duration {
	return s.Up + s.DownU + s.DownV + s.DownW + s.DownX + s.Eval
}

// Flops returns the total flop count.
func (s Stats) Flops() int64 {
	return s.FlopsUp + s.FlopsDownU + s.FlopsDownV + s.FlopsDownW + s.FlopsDownX + s.FlopsEval
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Up += o.Up
	s.DownU += o.DownU
	s.DownV += o.DownV
	s.DownW += o.DownW
	s.DownX += o.DownX
	s.Eval += o.Eval
	s.FlopsUp += o.FlopsUp
	s.FlopsDownU += o.FlopsDownU
	s.FlopsDownV += o.FlopsDownV
	s.FlopsDownW += o.FlopsDownW
	s.FlopsDownX += o.FlopsDownX
	s.FlopsEval += o.FlopsEval
}

// Evaluator computes potentials induced by source densities. Build once,
// evaluate many times (the paper's applications run tens to hundreds of
// interaction evaluations per tree).
type Evaluator struct {
	Tree *tree.Tree
	Ops  *translate.Set
	opt  Options
	fft  *translate.FFTM2L

	stats Stats
}

// ApplyDefaults fills zero-valued options with the paper-matching
// defaults (degree 6, leaf threshold 60, pinv tolerance 1e-10). It is
// the single source of truth for defaulting: New and FromTree apply it,
// and the plan-key hashing in the root package uses it so that options
// which build identical evaluators identify the same plan. For that
// reason it mirrors the exact coercion rules of the downstream
// construction: tree.Build treats MaxPoints <= 0 as 60 and clamps
// MaxDepth to (0, morton.MaxLevel], and translate.NewSet treats
// PinvTol <= 0 as 1e-10. (Negative Degree is not coerced anywhere; it
// fails surface construction and never produces an evaluator.)
func ApplyDefaults(opt Options) Options {
	if opt.Degree == 0 {
		opt.Degree = 6
	}
	if opt.MaxPoints <= 0 {
		opt.MaxPoints = 60
	}
	if opt.MaxDepth <= 0 || opt.MaxDepth > morton.MaxLevel {
		opt.MaxDepth = morton.MaxLevel
	}
	if opt.PinvTol <= 0 {
		opt.PinvTol = 1e-10
	}
	// Every backend other than M2LFFT takes the dense path (FromTree
	// only checks == M2LFFT), so out-of-range values collapse onto
	// M2LDense and hash identically to it.
	if opt.Backend != M2LFFT {
		opt.Backend = M2LDense
	}
	return opt
}

// New builds the octree over src and trg (flat x,y,z slices, which may be
// the same set, as in the paper's experiments) and prepares the
// translation operators.
func New(src, trg []float64, opt Options) (*Evaluator, error) {
	if opt.Kernel == nil {
		return nil, fmt.Errorf("fmm: Options.Kernel is required")
	}
	opt = ApplyDefaults(opt)
	tr, err := tree.Build(src, trg, tree.Config{MaxPoints: opt.MaxPoints, MaxDepth: opt.MaxDepth})
	if err != nil {
		return nil, err
	}
	return FromTree(tr, opt)
}

// FromTree wraps an existing octree (used by the parallel driver, which
// builds its local essential tree separately).
func FromTree(tr *tree.Tree, opt Options) (*Evaluator, error) {
	opt = ApplyDefaults(opt)
	ops, err := translate.NewSet(opt.Kernel, opt.Degree, tr.HalfWidth, opt.PinvTol)
	if err != nil {
		return nil, err
	}
	e := &Evaluator{Tree: tr, Ops: ops, opt: opt}
	if opt.Backend == M2LFFT {
		e.fft = translate.NewFFTM2L(ops)
	}
	return e, nil
}

// Stats returns the stage breakdown of the most recent Evaluate call.
func (e *Evaluator) Stats() Stats { return e.stats }

// Evaluate computes pot[i] = Σ_j G(trg_i, src_j) den_j for all targets.
// den holds SourceDim components per source in the original input order;
// the result has TargetDim components per target in input order.
func (e *Evaluator) Evaluate(den []float64) ([]float64, error) {
	k := e.opt.Kernel
	sd, td := k.SourceDim(), k.TargetDim()
	t := e.Tree
	nSrc := len(t.SrcPoints) / 3
	nTrg := len(t.TrgPoints) / 3
	if len(den) != nSrc*sd {
		return nil, fmt.Errorf("fmm: density length %d, want %d", len(den), nSrc*sd)
	}
	e.stats = Stats{}
	// Permute densities into Morton order.
	pden := make([]float64, len(den))
	for i, orig := range t.SrcPerm {
		o := int(orig)
		copy(pden[i*sd:(i+1)*sd], den[o*sd:(o+1)*sd])
	}
	ppot := make([]float64, nTrg*td)

	phiU := e.upwardPass(pden)
	phiD := e.downwardPass(phiU, pden)
	e.leafEvaluation(phiU, phiD, pden, ppot)

	// Un-permute potentials to input order.
	pot := make([]float64, len(ppot))
	for i, orig := range t.TrgPerm {
		o := int(orig)
		copy(pot[o*td:(o+1)*td], ppot[i*td:(i+1)*td])
	}
	return pot, nil
}

// upwardPass computes upward equivalent densities for every box that
// contains sources, deepest level first (S2M at leaves, M2M inside).
func (e *Evaluator) upwardPass(pden []float64) [][]float64 {
	start := time.Now()
	t := e.Tree
	k := e.opt.Kernel
	sd := k.SourceDim()
	ne, nc := e.Ops.EquivCount(), e.Ops.CheckCount()
	phiU := make([][]float64, len(t.Boxes))
	check := make([]float64, nc)
	ucPts := make([]float64, 3*e.Ops.Surf.N)
	for l := t.Depth() - 1; l >= 0; l-- {
		r := t.BoxHalfWidth(l)
		for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
			b := &t.Boxes[bi]
			if b.SrcCount == 0 {
				continue
			}
			for i := range check {
				check[i] = 0
			}
			if b.Leaf {
				src := t.SrcSlice(int32(bi))
				dslice := pden[b.SrcStart*sd : (b.SrcStart+b.SrcCount)*sd]
				e.Ops.UpwardCheckPoints(t.BoxCenter(int32(bi)), r, ucPts)
				kernels.P2P(k, ucPts, src, dslice, check)
				e.stats.FlopsUp += kernels.P2PFlops(k, e.Ops.Surf.N, b.SrcCount)
			} else {
				for o, ci := range b.Children {
					if ci == tree.Nil || phiU[ci] == nil {
						continue
					}
					e.Ops.M2M(l, o).Apply(check, phiU[ci])
					e.stats.FlopsUp += int64(2 * nc * ne)
				}
			}
			phi := make([]float64, ne)
			e.Ops.UpwardPinv(l).Apply(phi, check)
			e.stats.FlopsUp += int64(2 * ne * nc)
			phiU[bi] = phi
		}
	}
	e.stats.Up = time.Since(start)
	return phiU
}

// downwardPass accumulates downward check potentials level by level
// (M2L from the V list, S2L from the X list, L2L from the parent) and
// inverts them into downward equivalent densities.
func (e *Evaluator) downwardPass(phiU [][]float64, pden []float64) [][]float64 {
	t := e.Tree
	k := e.opt.Kernel
	sd := k.SourceDim()
	ne, nc := e.Ops.EquivCount(), e.Ops.CheckCount()
	phiD := make([][]float64, len(t.Boxes))
	if t.Depth() <= 2 {
		return phiD
	}
	checks := make([][]float64, len(t.Boxes))
	dcPts := make([]float64, 3*e.Ops.Surf.N)
	getCheck := func(bi int32) []float64 {
		if checks[bi] == nil {
			checks[bi] = make([]float64, nc)
		}
		return checks[bi]
	}
	for l := 2; l < t.Depth(); l++ {
		// V list: M2L translations, batched per level.
		startV := time.Now()
		if e.fft != nil {
			e.applyM2LFFT(l, phiU, checks, getCheck)
		} else {
			e.applyM2LDense(l, phiU, getCheck)
		}
		e.stats.DownV += time.Since(startV)
		for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
			b := &t.Boxes[bi]
			if b.TrgCount == 0 {
				// No targets anywhere below: the local expansion is
				// useless. (Pruned boxes always have points, but a box
				// can hold sources only.)
				continue
			}
			// X list: sources of coarser leaves evaluated directly on the
			// DC surface (S2L).
			if len(b.X) > 0 {
				startX := time.Now()
				check := getCheck(int32(bi))
				e.Ops.DownwardCheckPoints(t.BoxCenter(int32(bi)), t.BoxHalfWidth(l), dcPts)
				for _, a := range b.X {
					ab := &t.Boxes[a]
					src := t.SrcSlice(a)
					dslice := pden[ab.SrcStart*sd : (ab.SrcStart+ab.SrcCount)*sd]
					kernels.P2P(k, dcPts, src, dslice, check)
					e.stats.FlopsDownX += kernels.P2PFlops(k, e.Ops.Surf.N, ab.SrcCount)
				}
				e.stats.DownX += time.Since(startX)
			}
			// L2L from the parent's downward density.
			startE := time.Now()
			if p := b.Parent; p != tree.Nil && phiD[p] != nil {
				check := getCheck(int32(bi))
				e.Ops.L2L(l-1, b.Key.Octant()).Apply(check, phiD[p])
				e.stats.FlopsEval += int64(2 * nc * ne)
			}
			if checks[bi] != nil {
				phi := make([]float64, ne)
				e.Ops.DownwardPinv(l).Apply(phi, checks[bi])
				e.stats.FlopsEval += int64(2 * ne * nc)
				phiD[bi] = phi
			}
			e.stats.Eval += time.Since(startE)
		}
	}
	return phiD
}

// applyM2LDense applies cached dense M2L operators box by box.
func (e *Evaluator) applyM2LDense(l int, phiU [][]float64, getCheck func(int32) []float64) {
	t := e.Tree
	ne, nc := e.Ops.EquivCount(), e.Ops.CheckCount()
	for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
		b := &t.Boxes[bi]
		if b.TrgCount == 0 || len(b.V) == 0 {
			continue
		}
		check := getCheck(int32(bi))
		bx, by, bz := b.Key.Decode()
		for _, a := range b.V {
			if phiU[a] == nil {
				continue
			}
			ax, ay, az := t.Boxes[a].Key.Decode()
			off := [3]int{int(bx) - int(ax), int(by) - int(ay), int(bz) - int(az)}
			e.Ops.M2LDirect(l, off).Apply(check, phiU[a])
			e.stats.FlopsDownV += int64(2 * nc * ne)
		}
	}
}

// applyM2LFFT batches the level's V-list translations through the
// Fourier path: one forward FFT per contributing source box, Hadamard
// accumulation per (target, source) pair, one inverse FFT per target.
func (e *Evaluator) applyM2LFFT(l int, phiU [][]float64, checks [][]float64, getCheck func(int32) []float64) {
	t := e.Tree
	k := e.opt.Kernel
	sd, td := k.SourceDim(), k.TargetDim()
	gl := e.fft.GridLen()
	// Forward-transform every source box used by some V list at this level.
	used := make(map[int32]bool)
	for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
		b := &t.Boxes[bi]
		if b.TrgCount == 0 {
			continue
		}
		for _, a := range b.V {
			if phiU[a] != nil {
				used[a] = true
			}
		}
	}
	grids := make(map[int32][][]complex128, len(used))
	for a := range used {
		g := e.fft.NewSourceGrids()
		e.fft.ForwardDensity(phiU[a], g)
		grids[a] = g
		e.stats.FlopsDownV += int64(5 * gl * sd) // ~5 n log n per grid
	}
	acc := e.fft.NewAccumulator()
	for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
		b := &t.Boxes[bi]
		if b.TrgCount == 0 || len(b.V) == 0 {
			continue
		}
		e.fft.ResetAccumulator(acc)
		bx, by, bz := b.Key.Decode()
		any := false
		for _, a := range b.V {
			g, ok := grids[a]
			if !ok {
				continue
			}
			ax, ay, az := t.Boxes[a].Key.Decode()
			off := [3]int{int(bx) - int(ax), int(by) - int(ay), int(bz) - int(az)}
			e.fft.Accumulate(acc, g, l, off)
			e.stats.FlopsDownV += int64(8 * gl * sd * td)
			any = true
		}
		if any {
			e.fft.Extract(acc, getCheck(int32(bi)))
			e.stats.FlopsDownV += int64(5 * gl * td)
		}
	}
}

// leafEvaluation computes target potentials at every leaf: direct U-list
// interactions, W-list M2T evaluations and the local expansion (L2T).
func (e *Evaluator) leafEvaluation(phiU, phiD [][]float64, pden, ppot []float64) {
	t := e.Tree
	k := e.opt.Kernel
	sd, td := k.SourceDim(), k.TargetDim()
	surfPts := make([]float64, 3*e.Ops.Surf.N)
	for bi := range t.Boxes {
		b := &t.Boxes[bi]
		if !b.Leaf || b.TrgCount == 0 {
			continue
		}
		trg := t.TrgSlice(int32(bi))
		pot := ppot[b.TrgStart*td : (b.TrgStart+b.TrgCount)*td]
		// U list: direct interactions with adjacent leaves (and itself).
		startU := time.Now()
		for _, u := range b.U {
			ub := &t.Boxes[u]
			if ub.SrcCount == 0 {
				continue
			}
			src := t.SrcSlice(u)
			dslice := pden[ub.SrcStart*sd : (ub.SrcStart+ub.SrcCount)*sd]
			kernels.P2P(k, trg, src, dslice, pot)
			e.stats.FlopsDownU += kernels.P2PFlops(k, b.TrgCount, ub.SrcCount)
		}
		e.stats.DownU += time.Since(startU)
		// W list: far small boxes evaluated from their upward equivalent
		// densities (M2T).
		startW := time.Now()
		for _, w := range b.W {
			if phiU[w] == nil {
				continue
			}
			wb := &t.Boxes[w]
			e.Ops.UpwardEquivPoints(t.BoxCenter(w), t.BoxHalfWidth(wb.Level()), surfPts)
			kernels.P2P(k, trg, surfPts, phiU[w], pot)
			e.stats.FlopsDownW += kernels.P2PFlops(k, b.TrgCount, e.Ops.Surf.N)
		}
		e.stats.DownW += time.Since(startW)
		// L2T: evaluate the downward equivalent density at the targets.
		startE := time.Now()
		if phiD[bi] != nil {
			e.Ops.DownwardEquivPoints(t.BoxCenter(int32(bi)), t.BoxHalfWidth(b.Level()), surfPts)
			kernels.P2P(k, trg, surfPts, phiD[bi], pot)
			e.stats.FlopsEval += kernels.P2PFlops(k, b.TrgCount, e.Ops.Surf.N)
		}
		e.stats.Eval += time.Since(startE)
	}
}

package fmm

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/kernels"
)

// cancelFixture builds an evaluator big enough that an evaluation spans
// many pool dispatches, so a mid-sweep cancellation has passes left to
// skip.
func cancelFixture(t *testing.T, workers int) (*Evaluator, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pts := geom.Flatten(geom.UniformCube(rng, 4000))
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 40, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return e, geom.RandomDensities(rng, len(pts)/3, 1)
}

// TestEvaluateCtxPreCancelled: an already-cancelled context fails fast
// with the typed error and runs no pass at all.
func TestEvaluateCtxPreCancelled(t *testing.T) {
	e, den := cancelFixture(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := e.EvaluateCtx(ctx, den)
	if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled and context.Canceled", err)
	}
	// A full evaluation takes tens of milliseconds at this size; the
	// pre-cancelled path must be near-instant.
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("pre-cancelled evaluation took %v", d)
	}
}

// TestEvaluateCtxCancelMidSweep: cancelling while the sweep runs aborts
// it early — well under the uncancelled runtime — with the typed error,
// on both the sequential and the parallel engine path.
func TestEvaluateCtxCancelMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e, den := cancelFixture(t, workers)
		// Reference uncancelled runtime (also warms lazily built
		// operators, so the cancelled run's early passes are cheap and
		// timing reflects sweep work, not operator construction).
		start := time.Now()
		if _, err := e.EvaluateCtx(context.Background(), den); err != nil {
			t.Fatal(err)
		}
		full := time.Since(start)

		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(full / 8)
			cancel()
		}()
		start = time.Now()
		_, err := e.EvaluateCtx(ctx, den)
		aborted := time.Since(start)
		if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled and context.Canceled", workers, err)
		}
		if aborted > full*3/4 {
			t.Errorf("workers=%d: cancelled evaluation ran %v of an uncancelled %v — not within one pass", workers, aborted, full)
		}
		// The evaluator must stay fully usable after an aborted sweep.
		if _, err := e.EvaluateCtx(context.Background(), den); err != nil {
			t.Errorf("workers=%d: evaluation after cancel failed: %v", workers, err)
		}
	}
}

// TestEvaluateCtxDeadline: a deadline maps onto ErrDeadlineExceeded,
// distinct from ErrCanceled.
func TestEvaluateCtxDeadline(t *testing.T) {
	e, den := cancelFixture(t, 1)
	if _, err := e.Evaluate(den); err != nil { // warm operators
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := e.EvaluateCtx(ctx, den)
	if !errors.Is(err, errs.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded and context.DeadlineExceeded", err)
	}
	if errors.Is(err, errs.ErrCanceled) {
		t.Error("deadline error must not match ErrCanceled")
	}
}

// TestNewCtxCancelled: the plan build honors its context.
func TestNewCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := geom.Flatten(geom.UniformCube(rng, 500))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewCtx(ctx, pts, pts, Options{Kernel: kernels.Laplace{}}); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("NewCtx on cancelled ctx: err = %v, want ErrCanceled", err)
	}
	// Invalid input beats the ctx check order only for the nil kernel,
	// which needs no work at all.
	if _, err := NewCtx(ctx, pts, pts, Options{}); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("NewCtx without kernel: err = %v, want ErrInvalidInput", err)
	}
}

// TestCancelLeavesNoGoroutines: repeated cancelled evaluations must not
// leak pool workers (the barrier drains them before EvaluateCtx
// returns).
func TestCancelLeavesNoGoroutines(t *testing.T) {
	e, den := cancelFixture(t, 4)
	if _, err := e.Evaluate(den); err != nil { // warm operators
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		if _, err := e.EvaluateCtx(ctx, den); err == nil {
			t.Log("evaluation outran the cancel; still fine")
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled evaluations", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

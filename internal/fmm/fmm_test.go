package fmm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/direct"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/kernels"
)

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func checkAgainstDirect(t *testing.T, k kernels.Kernel, src, trg []float64, opt Options, tol float64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	den := geom.RandomDensities(rng, len(src)/3, k.SourceDim())
	opt.Kernel = k
	e, err := New(src, trg, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Evaluate(k, trg, src, den)
	if err != nil {
		t.Fatal(err)
	}
	errv := relErr(got, want)
	if errv > tol {
		t.Errorf("%s: FMM error %v > %v", k.Name(), errv, tol)
	}
	return errv
}

// TestFMMAccuracyUniform: all three kernels on the uniform distribution,
// identical source and target sets, both M2L backends.
func TestFMMAccuracyUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(1))
	pts := geom.Flatten(geom.UniformCube(rng, 1200))
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewModLaplace(1), kernels.NewStokes(1)} {
		for _, backend := range []M2LBackend{M2LFFT, M2LDense} {
			checkAgainstDirect(t, k, pts, pts,
				Options{Degree: 6, MaxPoints: 30, Backend: backend}, 2e-3)
		}
	}
}

// TestFMMAccuracyClustered: the paper's non-uniform corner-cluster
// distribution, which exercises deep adaptive refinement and the W/X
// lists.
func TestFMMAccuracyClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := geom.Flatten(geom.CornerClusters(rng, 1500, 0.35, 1))
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewStokes(1)} {
		checkAgainstDirect(t, k, pts, pts,
			Options{Degree: 6, MaxPoints: 20, Backend: M2LFFT}, 2e-3)
	}
}

// TestFMMAccuracySphereGrid: the paper's 512-sphere input (scaled to a
// 3x3x3 grid of spheres here to keep the direct reference cheap).
func TestFMMAccuracySphereGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := geom.Flatten(geom.SphereGrid(rng, 2000, 3, 0.25))
	checkAgainstDirect(t, kernels.Laplace{}, pts, pts,
		Options{Degree: 6, MaxPoints: 40}, 2e-3)
}

// TestFMMDistinctSourceTarget: sources and targets are different clouds.
func TestFMMDistinctSourceTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := geom.Flatten(geom.UniformCube(rng, 900))
	trg := geom.Flatten(geom.CornerClusters(rng, 700, 0.4, 1))
	checkAgainstDirect(t, kernels.Laplace{}, src, trg,
		Options{Degree: 6, MaxPoints: 25}, 2e-3)
}

// TestFMMConvergenceInDegree: the error must fall steeply with p (the
// paper targets 1e-5 at its chosen accuracy).
func TestFMMConvergenceInDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("degree sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	pts := geom.Flatten(geom.UniformCube(rng, 900))
	var errs []float64
	for _, p := range []int{4, 6, 8} {
		errs = append(errs, checkAgainstDirect(t, kernels.Laplace{}, pts, pts,
			Options{Degree: p, MaxPoints: 30}, 1))
	}
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Errorf("error must decrease with degree: %v", errs)
	}
	if errs[2] > 1e-5 {
		t.Errorf("p=8 should reach the paper's 1e-5 accuracy, got %v", errs[2])
	}
}

// TestFMMBackendsAgree: FFT and dense M2L must produce nearly identical
// results (they evaluate the same operators).
func TestFMMBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := geom.Flatten(geom.UniformCube(rng, 1000))
	den := geom.RandomDensities(rng, 1000, 1)
	var results [][]float64
	for _, backend := range []M2LBackend{M2LFFT, M2LDense} {
		e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 25, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Evaluate(den)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, got)
	}
	if e := relErr(results[0], results[1]); e > 1e-10 {
		t.Errorf("backends disagree: %v", e)
	}
}

// TestFMMLinearity: the evaluation is linear in the densities.
func TestFMMLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := geom.Flatten(geom.UniformCube(rng, 600))
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 25})
	if err != nil {
		t.Fatal(err)
	}
	d1 := geom.RandomDensities(rng, 600, 1)
	d2 := geom.RandomDensities(rng, 600, 1)
	alpha := 2.5
	comb := make([]float64, 600)
	for i := range comb {
		comb[i] = d1[i] + alpha*d2[i]
	}
	p1, _ := e.Evaluate(d1)
	p2, _ := e.Evaluate(d2)
	pc, _ := e.Evaluate(comb)
	want := make([]float64, 600)
	for i := range want {
		want[i] = p1[i] + alpha*p2[i]
	}
	if err := relErr(pc, want); err > 1e-11 {
		t.Errorf("linearity violated: %v", err)
	}
}

// TestFMMZeroDensity: zero in, zero out.
func TestFMMZeroDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := geom.Flatten(geom.UniformCube(rng, 400))
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 4, MaxPoints: 20})
	if err != nil {
		t.Fatal(err)
	}
	pot, err := e.Evaluate(make([]float64, 400))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pot {
		if v != 0 {
			t.Fatalf("pot[%d] = %v for zero density", i, v)
		}
	}
}

// TestFMMSmallInputs: trees of depth 0/1 fall back to pure direct
// interactions through the U list.
func TestFMMSmallInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 10, 61} {
		pts := geom.Flatten(geom.UniformCube(rng, n))
		checkAgainstDirect(t, kernels.Laplace{}, pts, pts,
			Options{Degree: 4, MaxPoints: 60}, 1e-12)
	}
}

// TestFMMRepeatedEvaluations: the paper's use case applies the same tree
// to many density vectors (Krylov iterations); results must be
// reproducible and independent.
func TestFMMRepeatedEvaluations(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := geom.Flatten(geom.UniformCube(rng, 800))
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	den := geom.RandomDensities(rng, 800, 1)
	first, _ := e.Evaluate(den)
	e.Evaluate(geom.RandomDensities(rng, 800, 1)) // interleave another vector
	second, _ := e.Evaluate(den)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("evaluation not reproducible at %d", i)
		}
	}
}

// TestFMMWorkersBitwiseReproducible: the parallel executor must produce
// bitwise-identical results for every worker count — workers only
// partition per-box work, and each box's floating-point accumulation
// order is fixed.
func TestFMMWorkersBitwiseReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pts := geom.Flatten(geom.CornerClusters(rng, 2000, 0.35, 1))
	den := geom.RandomDensities(rng, 2000, 1)
	for _, backend := range []M2LBackend{M2LFFT, M2LDense} {
		var want []float64
		for _, workers := range []int{1, 2, 3, 8} {
			// Explicit pools make the widths real even on a single-core
			// machine, where the default pool would grant width 1
			// throughout.
			e, err := New(pts, pts, Options{
				Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 25,
				Backend: backend, Workers: workers, Pool: exec.NewElastic(8),
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Evaluate(den)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("backend %v: workers=%d differs from workers=1 at %d: %g vs %g",
						backend, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFMMConcurrentEvaluations: one Evaluator, many concurrent callers
// (the evaluation service's hot-plan workload). Every result must be
// bitwise identical to an undisturbed call; run under -race this guards
// the engine's read-only-plan contract.
func TestFMMConcurrentEvaluations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := geom.Flatten(geom.UniformCube(rng, 1200))
	// A shared 4-lane pool under 8 concurrent callers exercises the
	// admission queue and mid-run revocation alongside the read-only
	// plan contract.
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 30, Workers: 2, Pool: exec.NewElastic(4)})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	dens := make([][]float64, callers)
	wants := make([][]float64, callers)
	for c := range dens {
		dens[c] = geom.RandomDensities(rng, 1200, 1)
		want, err := e.Evaluate(dens[c])
		if err != nil {
			t.Fatal(err)
		}
		wants[c] = want
	}
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got, st, err := e.EvaluateStats(dens[c])
			if err != nil {
				errc <- err
				return
			}
			if st.Flops() <= 0 {
				errc <- fmt.Errorf("caller %d: per-call stats empty", c)
			}
			for i := range got {
				if got[i] != wants[c][i] {
					errc <- fmt.Errorf("caller %d: concurrent result differs at %d", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestFMMEvaluateBatch: the batched sweep must agree with per-vector
// evaluations (to accumulation-order rounding: the batch materializes
// near-field kernel blocks, the single path runs specialized loops) and
// be exactly linear like them.
func TestFMMEvaluateBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := geom.Flatten(geom.CornerClusters(rng, 1500, 0.35, 1))
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewStokes(1)} {
		e, err := New(pts, pts, Options{Kernel: k, Degree: 5, MaxPoints: 20})
		if err != nil {
			t.Fatal(err)
		}
		const nrhs = 5
		dens := make([][]float64, nrhs)
		want := make([][]float64, nrhs)
		for q := range dens {
			dens[q] = geom.RandomDensities(rng, 1500, k.SourceDim())
			want[q], err = e.Evaluate(dens[q])
			if err != nil {
				t.Fatal(err)
			}
		}
		got, st, err := e.EvaluateBatchStats(dens)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != nrhs {
			t.Fatalf("%s: got %d vectors, want %d", k.Name(), len(got), nrhs)
		}
		if st.Flops() <= 0 || st.Total() <= 0 {
			t.Errorf("%s: batch stats not populated: %+v", k.Name(), st)
		}
		for q := range got {
			if e := relErr(got[q], want[q]); e > 1e-12 {
				t.Errorf("%s: batch vector %d differs from single evaluation: %.3e", k.Name(), q, e)
			}
		}
	}
}

// TestFMMEvaluateBatchErrors: empty batches and ragged vectors must be
// rejected.
func TestFMMEvaluateBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := geom.Flatten(geom.UniformCube(rng, 100))
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvaluateBatch(nil); err == nil {
		t.Error("empty batch must error")
	}
	good := geom.RandomDensities(rng, 100, 1)
	if _, err := e.EvaluateBatch([][]float64{good, make([]float64, 7)}); err == nil {
		t.Error("ragged batch must error")
	}
}

// TestFMMStatsPopulated: stage timings and flop counts must be recorded
// for the harness.
func TestFMMStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := geom.Flatten(geom.UniformCube(rng, 3000))
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(geom.RandomDensities(rng, 3000, 1)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.FlopsUp <= 0 || s.FlopsDownU <= 0 || s.FlopsDownV <= 0 || s.FlopsEval <= 0 {
		t.Errorf("flop counters not populated: %+v", s)
	}
	if s.Total() <= 0 {
		t.Error("stage timings not populated")
	}
	if s.Flops() != s.FlopsUp+s.FlopsDownU+s.FlopsDownV+s.FlopsDownW+s.FlopsDownX+s.FlopsEval {
		t.Error("Flops() must sum the stages")
	}
}

// TestFMMValidation covers option errors.
func TestFMMValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("missing kernel must error")
	}
	pts := []float64{0, 0, 0}
	e, err := New(pts, pts, Options{Kernel: kernels.Laplace{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate([]float64{1, 2}); err == nil {
		t.Error("wrong density length must error")
	}
}

package fmm

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/kernels"
)

// TestFootprintBytesSharedAttribution: plans sharing the process-global
// operator caches split the shared bytes by refcount instead of each
// attributing all of them (the pre-refcount double counting), and Close
// hands a closed plan's share back to the survivors. The kernel uses a
// parameter value no other test touches so the global cache entries are
// exclusively this test's.
func TestFootprintBytesSharedAttribution(t *testing.T) {
	k := kernels.NewModLaplace(0.1234567)
	rng := rand.New(rand.NewSource(7))
	pts := geom.Flatten(geom.UniformCube(rng, 600))
	den := geom.RandomDensities(rng, len(pts)/3, k.SourceDim())
	opt := Options{Kernel: k, Degree: 5, MaxPoints: 40, Workers: 1}

	build := func() *Evaluator {
		e, err := New(pts, pts, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate once so the lazily built operators and FFT tensors
		// actually exist and count.
		if _, err := e.Evaluate(den); err != nil {
			t.Fatal(err)
		}
		return e
	}

	e1 := build()
	solo := e1.FootprintBytes()
	tree := e1.Tree.MemoryBytes()
	ops := solo - tree
	if ops <= 0 {
		t.Fatalf("expected cached operators after an evaluation; footprint %d, tree %d", solo, tree)
	}

	e2 := build()
	shared := e1.FootprintBytes()
	if shared >= solo {
		t.Errorf("two plans sharing operators: per-plan footprint %d did not drop below solo %d", shared, solo)
	}
	sum := e1.FootprintBytes() + e2.FootprintBytes()
	// Both trees are private, the operator bytes must be attributed
	// once: sum ≈ 2*tree + ops, strictly below the doubled attribution.
	if want := 2*tree + ops; sum > want+ops/4 {
		t.Errorf("summed footprint %d exceeds single attribution %d by more than slack", sum, want)
	}
	if sum < 2*tree+ops/2 {
		t.Errorf("summed footprint %d lost operator bytes entirely (tree %d, ops %d)", sum, tree, ops)
	}

	e2.Close()
	after := e1.FootprintBytes()
	if after < solo-ops/4 {
		t.Errorf("after closing the sharing plan, footprint %d did not return near solo %d", after, solo)
	}
	// A closed evaluator keeps working (evicted plans finish in-flight
	// evaluations); only its attribution is gone.
	if _, err := e2.Evaluate(den); err != nil {
		t.Errorf("closed evaluator must stay usable: %v", err)
	}
	e2.Close() // idempotent
	e1.Close()
}

// Package buildinfo surfaces the binary's embedded build identity (git
// revision, Go toolchain) for -version flags and the kifmm_build_info
// metric, so a scrape or a bug report pins down exactly which build
// produced it. Everything is read from runtime/debug's embedded build
// info — no linker flags to forget.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Revision is the VCS revision the binary was built from, shortened to
// 12 hex digits, with a "-dirty" suffix for modified working trees.
// "unknown" when the build carries no VCS stamp (e.g. go test binaries
// or builds outside a checkout).
func Revision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// GoVersion is the toolchain that built (or is running) the binary.
func GoVersion() string { return runtime.Version() }

// String is the one-line identity -version flags print.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s)", binary, Revision(), GoVersion())
}

// Package errs is the typed error taxonomy of the kifmm API. Every
// error that crosses the public API surface (the root kifmm package,
// the evaluation service and its Go client) carries a machine-readable
// Code, so callers branch on errors.Is/As instead of string-matching,
// and the same taxonomy survives an HTTP round trip: the service puts
// the code on the wire, the client reconstructs the identical typed
// error.
//
// Cancellation errors additionally satisfy the standard context
// sentinels: errors.Is(err, ErrCanceled) and errors.Is(err,
// context.Canceled) are both true for a cancelled evaluation, on the
// server and — via the wire code — on a client that never saw the
// context that was cancelled.
//
// The package lives under internal/ so the engine layers (exec, fmm,
// krylov, service) can produce typed errors without importing the root
// package (which imports them); the root package re-exports the
// taxonomy as kifmm.Error, kifmm.ErrCanceled, etc.
package errs

import (
	"context"
	"errors"
	"fmt"
)

// Code is a stable machine-readable error class. Codes are the wire
// form of the taxonomy (the service's error envelope carries them) and
// must never be renamed once released.
type Code string

const (
	// CodeInvalidInput: the request or argument is malformed (bad
	// lengths, NaN coordinates, out-of-domain parameters). HTTP 400.
	CodeInvalidInput Code = "invalid_input"
	// CodeUnknownKernel: a kernel name that no built-in kernel answers
	// to. HTTP 400.
	CodeUnknownKernel Code = "unknown_kernel"
	// CodePlanTooLarge: the request exceeds a configured size bound
	// (body bytes, option caps, batch width). HTTP 413.
	CodePlanTooLarge Code = "plan_too_large"
	// CodePlanNotFound: an evaluation against an unknown or evicted
	// plan id. HTTP 404.
	CodePlanNotFound Code = "plan_not_found"
	// CodeCanceled: the caller's context was cancelled mid-flight.
	// HTTP 499 (client closed request).
	CodeCanceled Code = "canceled"
	// CodeDeadlineExceeded: a context or per-request deadline passed
	// before the work finished. HTTP 504.
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeInternal: a server-side defect (e.g. a recovered panic) —
	// not a client mistake. HTTP 500.
	CodeInternal Code = "internal"
	// CodeWorkerLost: a cluster worker disconnected (or stopped
	// heartbeating) while a distributed evaluation depended on it, or no
	// workers are available for a cluster-sized request. The request is
	// safely retryable once capacity returns. HTTP 503.
	CodeWorkerLost Code = "worker_lost"
)

// Error is a typed API error: a code, a human-readable message and an
// optional wrapped cause. errors.Is between two *Error values compares
// codes, so any taxonomy error matches its sentinel regardless of
// message or origin (local call, HTTP reconstruction).
type Error struct {
	Code    Code
	Message string
	// Err is the wrapped cause, reachable through errors.Is/As. For
	// cancellation and deadline errors it is (or wraps) the matching
	// context sentinel.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Message != "" {
		return e.Message
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return "kifmm: " + string(e.Code)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches any *Error with the same code, which is what makes the
// exported sentinels work as errors.Is targets.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Sentinels, one per code. Use them as errors.Is targets; construct
// rich errors with New/Newf/Wrap. The cancellation sentinels carry the
// matching context sentinel as their cause, so errors.Is(ErrCanceled,
// context.Canceled) holds by construction.
var (
	ErrInvalidInput     = &Error{Code: CodeInvalidInput, Message: "kifmm: invalid input"}
	ErrUnknownKernel    = &Error{Code: CodeUnknownKernel, Message: "kifmm: unknown kernel"}
	ErrPlanTooLarge     = &Error{Code: CodePlanTooLarge, Message: "kifmm: plan too large"}
	ErrPlanNotFound     = &Error{Code: CodePlanNotFound, Message: "kifmm: plan not found"}
	ErrCanceled         = &Error{Code: CodeCanceled, Message: "kifmm: canceled", Err: context.Canceled}
	ErrDeadlineExceeded = &Error{Code: CodeDeadlineExceeded, Message: "kifmm: deadline exceeded", Err: context.DeadlineExceeded}
	ErrInternal         = &Error{Code: CodeInternal, Message: "kifmm: internal error"}
	ErrWorkerLost       = &Error{Code: CodeWorkerLost, Message: "kifmm: cluster worker lost"}
)

// New returns a typed error with a fixed message.
func New(code Code, message string) *Error {
	return &Error{Code: code, Message: message, Err: contextCause(code)}
}

// Newf returns a typed error with a formatted message. A %w verb's
// operand stays reachable through errors.Is/As.
func Newf(code Code, format string, args ...any) *Error {
	err := fmt.Errorf(format, args...)
	return &Error{Code: code, Message: err.Error(), Err: firstCause(code, errors.Unwrap(err))}
}

// Wrap attaches a code to an existing error, keeping it as the cause.
func Wrap(code Code, err error) *Error {
	return &Error{Code: code, Message: err.Error(), Err: err}
}

// FromContext translates a context error (ctx.Err() or anything
// wrapping one) into the taxonomy; other errors — including nil — pass
// through unchanged.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadlineExceeded, Message: "kifmm: deadline exceeded", Err: err}
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, Message: "kifmm: canceled", Err: err}
	}
	return err
}

// FromCode reconstructs the typed error for a wire code — the client
// side of the HTTP round trip. Unknown codes return nil so the caller
// can fall back on the HTTP status.
func FromCode(code Code, message string) *Error {
	switch code {
	case CodeInvalidInput, CodeUnknownKernel, CodePlanTooLarge,
		CodePlanNotFound, CodeCanceled, CodeDeadlineExceeded, CodeInternal,
		CodeWorkerLost:
		return &Error{Code: code, Message: message, Err: contextCause(code)}
	}
	return nil
}

// CodeOf extracts the taxonomy code from an error chain; ok is false
// when the chain carries no typed error.
func CodeOf(err error) (Code, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Code, true
	}
	return "", false
}

// Typed returns err when its chain already carries a taxonomy code, and
// otherwise wraps it with fallback — the boundary helper layers use to
// type ad-hoc errors without clobbering codes set deeper down.
func Typed(err error, fallback Code) error {
	if err == nil {
		return nil
	}
	if _, ok := CodeOf(err); ok {
		return err
	}
	return Wrap(fallback, err)
}

// contextCause returns the context sentinel a code implies, so that
// reconstructed cancellation errors still satisfy errors.Is(err,
// context.Canceled) even though the cancelled context never crossed
// the wire.
func contextCause(code Code) error {
	switch code {
	case CodeCanceled:
		return context.Canceled
	case CodeDeadlineExceeded:
		return context.DeadlineExceeded
	}
	return nil
}

// firstCause keeps an explicit %w cause when present, falling back on
// the code-implied context sentinel.
func firstCause(code Code, wrapped error) error {
	if wrapped != nil {
		return wrapped
	}
	return contextCause(code)
}

package errs

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelIdentity(t *testing.T) {
	for _, tc := range []struct {
		err  *Error
		code Code
	}{
		{ErrInvalidInput, CodeInvalidInput},
		{ErrUnknownKernel, CodeUnknownKernel},
		{ErrPlanTooLarge, CodePlanTooLarge},
		{ErrPlanNotFound, CodePlanNotFound},
		{ErrCanceled, CodeCanceled},
		{ErrDeadlineExceeded, CodeDeadlineExceeded},
		{ErrInternal, CodeInternal},
	} {
		if tc.err.Code != tc.code {
			t.Errorf("sentinel %v has code %q, want %q", tc.err, tc.err.Code, tc.code)
		}
		if !errors.Is(tc.err, tc.err) {
			t.Errorf("errors.Is(%v, itself) = false", tc.err)
		}
		rich := Newf(tc.code, "something specific: %d", 42)
		if !errors.Is(rich, tc.err) {
			t.Errorf("errors.Is(Newf(%q, ...), sentinel) = false", tc.code)
		}
		wrapped := fmt.Errorf("outer layer: %w", rich)
		if !errors.Is(wrapped, tc.err) {
			t.Errorf("errors.Is(wrapped, sentinel %q) = false", tc.code)
		}
		if got, ok := CodeOf(wrapped); !ok || got != tc.code {
			t.Errorf("CodeOf(wrapped) = %q, %v; want %q, true", got, ok, tc.code)
		}
	}
}

func TestCodesAreDistinct(t *testing.T) {
	if errors.Is(ErrInvalidInput, ErrPlanNotFound) {
		t.Error("distinct codes must not match")
	}
	if errors.Is(ErrCanceled, ErrDeadlineExceeded) {
		t.Error("canceled must not match deadline_exceeded")
	}
}

func TestContextInterop(t *testing.T) {
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled must satisfy context.Canceled")
	}
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded must satisfy context.DeadlineExceeded")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx.Err())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("FromContext(canceled) = %v, want both ErrCanceled and context.Canceled", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("FromContext(canceled) must not match ErrDeadlineExceeded")
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 0)
	defer dcancel()
	<-dctx.Done()
	derr := FromContext(dctx.Err())
	if !errors.Is(derr, ErrDeadlineExceeded) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("FromContext(deadline) = %v, want both ErrDeadlineExceeded and context.DeadlineExceeded", derr)
	}

	plain := errors.New("not a context error")
	if got := FromContext(plain); got != plain {
		t.Errorf("FromContext(plain) = %v, want pass-through", got)
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
}

func TestFromCodeRoundTrip(t *testing.T) {
	e := FromCode(CodeCanceled, "server says: canceled mid-sweep")
	if e == nil {
		t.Fatal("FromCode(canceled) = nil")
	}
	if !errors.Is(e, ErrCanceled) {
		t.Error("reconstructed error must match ErrCanceled")
	}
	if !errors.Is(e, context.Canceled) {
		t.Error("reconstructed cancel must satisfy context.Canceled without the original context")
	}
	if e.Error() != "server says: canceled mid-sweep" {
		t.Errorf("message not preserved: %q", e.Error())
	}
	if FromCode("no_such_code", "x") != nil {
		t.Error("unknown code must return nil for status fallback")
	}
}

func TestTyped(t *testing.T) {
	plain := errors.New("plain")
	typed := Typed(plain, CodeInvalidInput)
	if !errors.Is(typed, ErrInvalidInput) {
		t.Errorf("Typed(plain) = %v, want invalid_input", typed)
	}
	already := Newf(CodeUnknownKernel, "kernels: unknown kernel %q", "warp")
	if got := Typed(already, CodeInvalidInput); !errors.Is(got, ErrUnknownKernel) || errors.Is(got, ErrInvalidInput) {
		t.Errorf("Typed must not clobber an existing code: %v", got)
	}
	if Typed(nil, CodeInternal) != nil {
		t.Error("Typed(nil) must be nil")
	}
}

func TestNewfPreservesWrappedCause(t *testing.T) {
	cause := errors.New("root cause")
	err := Newf(CodeInternal, "evaluation failed: %w", cause)
	if !errors.Is(err, cause) {
		t.Error("wrapped cause must stay reachable")
	}
	if !errors.Is(err, ErrInternal) {
		t.Error("code must match")
	}
}

package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// promSample is one parsed exposition line: name, label set (as the raw
// {...} text) and value.
type promSample struct {
	name   string
	labels string
	value  float64
}

// parsePrometheus is a strict-enough parser for the 0.0.4 text format:
// it validates comment structure (# HELP before # TYPE, known types),
// sample lines against their declared family, and returns samples plus
// the name->type map.
func parsePrometheus(t *testing.T, r io.Reader) (map[string]string, []promSample) {
	t.Helper()
	types := make(map[string]string)
	helps := make(map[string]bool)
	var samples []promSample
	// Label values may contain "}" (e.g. route patterns), so the label
	// block is matched greedily; the value is the last space-separated
	// token.
	lineRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			helps[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown metric type %q in %q", typ, line)
			}
			if !helps[name] {
				t.Fatalf("# TYPE %s without preceding # HELP", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_sum"), "_count")
		base = strings.TrimSuffix(base, "_bucket")
		if _, ok := types[base]; !ok {
			if _, ok := types[m[1]]; !ok {
				t.Fatalf("sample %q has no # TYPE declaration", line)
			}
		}
		samples = append(samples, promSample{name: m[1], labels: m[2], value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, samples
}

func findSample(samples []promSample, name, labelSub string) (promSample, bool) {
	for _, s := range samples {
		if s.name == name && strings.Contains(s.labels, labelSub) {
			return s, true
		}
	}
	return promSample{}, false
}

// TestMetricsEndpointExposition drives a real evaluation through the
// HTTP server and checks GET /metrics: parseable 0.0.4 text with at
// least one counter, gauge and histogram reflecting that evaluation.
func TestMetricsEndpointExposition(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(31, 300)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)
	body, _ := json.Marshal(EvaluateRequest{Densities: den})
	resp, err := http.Post(ts.URL+"/v1/plans/"+info.ID+"/evaluate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("evaluate status = %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	types, samples := parsePrometheus(t, mresp.Body)

	// Counter fed by the evaluation.
	if types["kifmm_evaluations_total"] != "counter" {
		t.Fatalf("kifmm_evaluations_total type = %q, want counter", types["kifmm_evaluations_total"])
	}
	if s, ok := findSample(samples, "kifmm_evaluations_total", ""); !ok || s.value != 1 {
		t.Errorf("kifmm_evaluations_total = %+v, want 1", s)
	}
	// Gauge fed by the registered plan.
	if types["kifmm_plans_live"] != "gauge" {
		t.Fatalf("kifmm_plans_live type = %q, want gauge", types["kifmm_plans_live"])
	}
	if s, ok := findSample(samples, "kifmm_plans_live", ""); !ok || s.value != 1 {
		t.Errorf("kifmm_plans_live = %+v, want 1", s)
	}
	// Histogram fed by the evaluation: count 1, positive sum, cumulative
	// buckets ending in +Inf == count.
	if types["kifmm_eval_seconds"] != "histogram" {
		t.Fatalf("kifmm_eval_seconds type = %q, want histogram", types["kifmm_eval_seconds"])
	}
	cnt, ok := findSample(samples, "kifmm_eval_seconds_count", "")
	if !ok || cnt.value != 1 {
		t.Errorf("kifmm_eval_seconds_count = %+v, want 1", cnt)
	}
	if s, ok := findSample(samples, "kifmm_eval_seconds_sum", ""); !ok || s.value <= 0 {
		t.Errorf("kifmm_eval_seconds_sum = %+v, want > 0", s)
	}
	var prev float64 = -1
	var infSeen bool
	for _, s := range samples {
		if s.name != "kifmm_eval_seconds_bucket" {
			continue
		}
		if s.value < prev {
			t.Errorf("bucket %s not cumulative: %v < %v", s.labels, s.value, prev)
		}
		prev = s.value
		if strings.Contains(s.labels, `le="+Inf"`) {
			infSeen = true
			if s.value != cnt.value {
				t.Errorf("+Inf bucket = %v, want count %v", s.value, cnt.value)
			}
		}
	}
	if !infSeen {
		t.Error("kifmm_eval_seconds has no +Inf bucket")
	}
	// Stage histogram picked up the sweep (label present, count 1).
	if s, ok := findSample(samples, "kifmm_stage_seconds_count", `stage="up"`); !ok || s.value != 1 {
		t.Errorf(`kifmm_stage_seconds_count{stage="up"} = %+v, want 1`, s)
	}
	// HTTP middleware recorded the evaluate request.
	if s, ok := findSample(samples, "kifmm_http_requests_total", `route="POST /v1/plans/{id}/evaluate"`); !ok || s.value != 1 {
		t.Errorf("kifmm_http_requests_total evaluate route = %+v, want 1", s)
	}
}

// TestTraceConsistentWithStats runs a width-1 traced evaluation and
// cross-checks the span tree against the reported per-stage stats: at
// one lane, compute time is wall time, so each pass span must cover its
// stages and the root must cover the stats total.
func TestTraceConsistentWithStats(t *testing.T) {
	svc := New(Config{MaxWorkers: 1})
	req := cloudRequest(32, 500)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)
	_, st, span, err := svc.EvaluateTraced(bg, info.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	if span == nil || span.Name != "evaluate" {
		t.Fatalf("trace root = %+v, want evaluate span", span)
	}
	if span.Attrs["rhs"] != "1" || span.Attrs["granted_lanes"] != "1" || span.Attrs["plan_id"] != info.ID {
		t.Errorf("root attrs = %v, want rhs=1 granted_lanes=1 plan_id=%s", span.Attrs, info.ID)
	}
	for _, name := range []string{"permute", "up", "down", "leaf", "unpermute"} {
		if span.Find(name) == nil {
			t.Errorf("trace missing %q child", name)
		}
	}
	if span.Duration <= 0 {
		t.Fatal("root span never ended")
	}
	var childSum time.Duration
	for _, c := range span.Children {
		if c.Duration <= 0 && c.Name != "permute" && c.Name != "unpermute" {
			t.Errorf("child %q never ended", c.Name)
		}
		childSum += c.Duration
	}
	if childSum > span.Duration {
		t.Errorf("children sum %v exceeds root %v", childSum, span.Duration)
	}

	// Stats durations are compute time summed across lanes; at one lane
	// that is wall time, so the covering span can only be larger.
	total := time.Duration(st.TotalNanos)
	if span.Duration < total {
		t.Errorf("root span %v < stats total %v at width 1", span.Duration, total)
	}
	if up := span.Find("up"); up.Duration < time.Duration(st.UpNanos) {
		t.Errorf("up span %v < up stat %v", up.Duration, time.Duration(st.UpNanos))
	}
	// The remaining stages split across the down and leaf passes (the
	// eval stat accumulates in both: DC-surface evaluation during the
	// downward sweep, L2T during leaf evaluation), so only their union
	// is a covering interval.
	downLeafStats := time.Duration(st.DownUNanos + st.DownVNanos + st.DownWNanos + st.DownXNanos + st.EvalNanos)
	if got := span.Find("down").Duration + span.Find("leaf").Duration; got < downLeafStats {
		t.Errorf("down+leaf spans %v < U+V+W+X+Eval stats %v", got, downLeafStats)
	}

	// The levels of a pass nest under it and stay within its interval.
	down := span.Find("down")
	if len(down.Children) == 0 {
		t.Error("down pass recorded no level spans")
	}
	var levels time.Duration
	for _, l := range down.Children {
		if !strings.HasPrefix(l.Name, "level ") {
			t.Errorf("down child %q, want level spans", l.Name)
		}
		levels += l.Duration
	}
	if levels > down.Duration {
		t.Errorf("level spans sum %v exceeds down pass %v", levels, down.Duration)
	}

	// The same tree is retained for GET /v1/evals/recent.
	recent := svc.RecentSpans(0)
	if len(recent) != 1 || recent[0] != span {
		t.Errorf("RecentSpans = %v, want the one traced evaluation", recent)
	}
}

// TestRecentEvalsEndpoint checks the HTTP view of the span ring: ?trace=1
// echoes the tree per response, and /v1/evals/recent serves it newest
// first with the ever-added total.
func TestRecentEvalsEndpoint(t *testing.T) {
	svc := New(Config{TraceRing: 2})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(33, 200)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)
	body, _ := json.Marshal(EvaluateRequest{Densities: den})
	for i := 0; i < 3; i++ {
		url := ts.URL + "/v1/plans/" + info.ID + "/evaluate"
		if i == 2 {
			url += "?trace=1"
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		var er EvaluateResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := i == 2; (er.Trace != nil) != want {
			t.Errorf("request %d: trace present = %v, want %v", i, er.Trace != nil, want)
		}
		if i == 2 && er.Trace.Find("up") == nil {
			t.Errorf("echoed trace has no up span: %+v", er.Trace)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/evals/recent?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recent RecentEvalsResponse
	if err := json.NewDecoder(resp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	if recent.Total != 3 {
		t.Errorf("Total = %d, want 3 (ring evictions still count)", recent.Total)
	}
	if len(recent.Traces) != 2 {
		t.Errorf("len(Traces) = %d, want ring capacity 2", len(recent.Traces))
	}
	for i, tr := range recent.Traces {
		if tr.Name != "evaluate" {
			t.Errorf("trace %d root = %q, want evaluate", i, tr.Name)
		}
	}
}

// TestMetricNamesLintedAndDocumented is the catalog guard: every
// registered family name must be snake_case and appear in the README's
// observability catalog, so the docs cannot silently drift from the
// code.
func TestMetricNamesLintedAndDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	snake := regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	svc := New(Config{})
	fams := svc.MetricsRegistry().Families()
	if len(fams) == 0 {
		t.Fatal("registry has no families")
	}
	for _, f := range fams {
		if !snake.MatchString(f.Name) {
			t.Errorf("metric %q is not snake_case", f.Name)
		}
		// MustValidName is the runtime guard; the regexp above is the
		// stricter lint. Both must agree that the name is fine.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("obs.MustValidName rejects registered name %q: %v", f.Name, r)
				}
			}()
			obs.MustValidName(f.Name)
		}()
		if f.Help == "" {
			t.Errorf("metric %q registered without help text", f.Name)
		}
		if !strings.Contains(string(readme), f.Name) {
			t.Errorf("metric %q is not documented in README.md", f.Name)
		}
		for _, l := range f.Labels {
			if !snake.MatchString(l) {
				t.Errorf("metric %q label %q is not snake_case", f.Name, l)
			}
		}
	}
}

// TestVarsMirrorsRegistry checks the /debug/vars compatibility
// satellite: the legacy "kifmm" snapshot and the new "kifmm_metrics"
// registry dump stay consistent because both derive from one registry.
func TestVarsMirrorsRegistry(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(34, 200)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Evaluate(bg, info.ID, densitiesFor(req, info.SourceDim)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		KIFMM   MetricsSnapshot    `json:"kifmm"`
		Metrics map[string]float64 `json:"kifmm_metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.KIFMM.Evaluations != 1 {
		t.Errorf("legacy kifmm.evaluations = %d, want 1", vars.KIFMM.Evaluations)
	}
	if got := vars.Metrics["kifmm_evaluations_total"]; got != 1 {
		t.Errorf("kifmm_metrics snapshot evaluations = %v, want 1", got)
	}
	if got := vars.Metrics["kifmm_plans_built_total"]; got != float64(vars.KIFMM.PlansBuilt) {
		t.Errorf("plans built disagree: registry %v, legacy %d", got, vars.KIFMM.PlansBuilt)
	}
}

// Package service is the serving layer over the kifmm library: a keyed
// cache of prepared Evaluators (plans) with singleflight construction, a
// bounded worker pool for concurrent evaluations, and an HTTP JSON API.
//
// The paper's workloads amortize the expensive octree and
// translation-operator setup over "tens of interaction calculations";
// the plan cache extends that amortization across callers: every client
// registering the same (geometry, kernel, options) tuple shares one
// prepared plan, identified by a content hash (kifmm.PlanKey).
package service

import (
	kifmm "repro"
	"repro/internal/errs"
	"repro/internal/fmm"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// TraceSpan is the wire form of one trace span: a named wall-clock
// interval with attributes and children ({"name", "start",
// "duration_ns", "attrs", "children"}). Evaluation responses carry one
// per request when ?trace=1 is set, and GET /v1/evals/recent returns
// the span trees of recent evaluations.
type TraceSpan = obs.Span

// KernelSpec names a kernel and its parameters (the wire form; see
// internal/kernels.Spec).
type KernelSpec = kernels.Spec

// PlanRequest describes an evaluation plan: the geometry, the kernel
// (by serializable spec) and the tree/operator options. It is the JSON
// body of POST /v1/plans.
type PlanRequest struct {
	// Src holds flat (x0,y0,z0,x1,...) source coordinates.
	Src []float64 `json:"src"`
	// Trg holds flat target coordinates; empty means "same as Src"
	// (the paper's usual setup).
	Trg []float64 `json:"trg,omitempty"`
	// SrcUpload optionally names a completed chunked upload (POST
	// /v1/uploads) to use as the source coordinates; mutually
	// exclusive with Src.
	SrcUpload string `json:"src_upload,omitempty"`
	// TrgUpload is SrcUpload for the targets; mutually exclusive with
	// Trg.
	TrgUpload string `json:"trg_upload,omitempty"`
	// Kernel names the interaction kernel and its parameters.
	Kernel kernels.Spec `json:"kernel"`
	// Degree is the equivalent-surface degree p (0 = default 6).
	Degree int `json:"degree,omitempty"`
	// MaxPoints is the leaf threshold s (0 = default 60).
	MaxPoints int `json:"max_points,omitempty"`
	// MaxDepth caps the octree depth (0 = uncapped).
	MaxDepth int `json:"max_depth,omitempty"`
	// Backend selects the M2L path: "", "fft" or "dense".
	Backend string `json:"backend,omitempty"`
	// PinvTol is the pseudo-inverse truncation (0 = default 1e-10).
	PinvTol float64 `json:"pinv_tol,omitempty"`
}

// options converts the request into library options, validating the
// kernel spec and backend name.
func (r *PlanRequest) options() (kifmm.Options, error) {
	k, err := kernels.FromSpec(r.Kernel)
	if err != nil {
		return kifmm.Options{}, err
	}
	var backend kifmm.M2LBackend
	switch r.Backend {
	case "", "fft":
		backend = kifmm.M2LFFT
	case "dense":
		backend = kifmm.M2LDense
	default:
		return kifmm.Options{}, errs.Newf(errs.CodeInvalidInput, "service: unknown M2L backend %q (want \"fft\" or \"dense\")", r.Backend)
	}
	return kifmm.Options{
		Kernel: k, Degree: r.Degree, MaxPoints: r.MaxPoints,
		MaxDepth: r.MaxDepth, Backend: backend, PinvTol: r.PinvTol,
	}, nil
}

// PlanInfo reports a registered plan.
type PlanInfo struct {
	// ID is the content-hash plan key; pass it to /v1/plans/{id}/evaluate.
	ID string `json:"plan_id"`
	// Cached reports whether the plan already existed (cache hit or
	// coalesced onto a concurrent build).
	Cached bool `json:"cached"`
	// Kernel echoes the plan's kernel spec, so clients holding only a
	// plan id can recover what it computes.
	Kernel kernels.Spec `json:"kernel"`
	// Boxes and Depth describe the octree.
	Boxes int `json:"boxes"`
	Depth int `json:"depth"`
	// SrcCount/TrgCount are point counts; SourceDim/TargetDim are the
	// kernel's density/potential component counts per point.
	SrcCount  int `json:"src_count"`
	TrgCount  int `json:"trg_count"`
	SourceDim int `json:"source_dim"`
	TargetDim int `json:"target_dim"`
	// FootprintBytes is the estimated resident size of the plan: the
	// tree plus this plan's refcounted share of the process-global
	// operator caches (shared bytes count once across plans). It is the
	// quantity byte-bounded caching evicts by; lazily built operators
	// make it grow after the first evaluation.
	FootprintBytes int64 `json:"footprint_bytes"`
	// BuildNanos is the plan construction time (0 when Cached).
	BuildNanos int64 `json:"build_ns,omitempty"`
}

// EvaluateRequest is the JSON body of POST /v1/plans/{id}/evaluate.
type EvaluateRequest struct {
	// Densities holds SourceDim components per source in input order.
	Densities []float64 `json:"densities"`
}

// EvaluateBatchRequest is the JSON body of POST
// /v1/plans/{id}/evaluate_batch: many density vectors evaluated in one
// engine sweep (one worker slot, near-field kernel evaluations
// amortized across the batch).
type EvaluateBatchRequest struct {
	// Densities holds one density vector per evaluation, each with
	// SourceDim components per source in input order.
	Densities [][]float64 `json:"densities"`
}

// EvalStats is the wire form of the per-stage evaluation breakdown
// (fmm.Stats), in nanoseconds.
type EvalStats struct {
	UpNanos    int64 `json:"up_ns"`
	DownUNanos int64 `json:"down_u_ns"`
	DownVNanos int64 `json:"down_v_ns"`
	DownWNanos int64 `json:"down_w_ns"`
	DownXNanos int64 `json:"down_x_ns"`
	EvalNanos  int64 `json:"eval_ns"`
	TotalNanos int64 `json:"total_ns"`
	Flops      int64 `json:"flops"`
	// GrantedLanes is the worker-lane width this evaluation was
	// admitted with by the elastic pool — MaxWorkers on an idle
	// server, degrading toward MinLanePerEval under load. Widths never
	// change results, only wall clock.
	GrantedLanes int `json:"granted_lanes"`
}

func statsWire(s fmm.Stats) EvalStats {
	return EvalStats{
		UpNanos:      s.Up.Nanoseconds(),
		DownUNanos:   s.DownU.Nanoseconds(),
		DownVNanos:   s.DownV.Nanoseconds(),
		DownWNanos:   s.DownW.Nanoseconds(),
		DownXNanos:   s.DownX.Nanoseconds(),
		EvalNanos:    s.Eval.Nanoseconds(),
		TotalNanos:   s.Total().Nanoseconds(),
		Flops:        s.Flops(),
		GrantedLanes: s.Lanes,
	}
}

// EvaluateResponse carries the potentials (TargetDim components per
// target, input order) and the per-stage timing of this evaluation.
// Trace is the evaluation's span tree, present only when the request
// carried ?trace=1.
type EvaluateResponse struct {
	PlanID     string     `json:"plan_id"`
	Potentials []float64  `json:"potentials"`
	Stats      EvalStats  `json:"stats"`
	Trace      *TraceSpan `json:"trace,omitempty"`
}

// EvaluateBatchResponse carries one potentials vector per density
// vector (input order preserved) and the aggregate stage timing of the
// whole batched sweep. Trace is present only under ?trace=1.
type EvaluateBatchResponse struct {
	PlanID     string      `json:"plan_id"`
	Potentials [][]float64 `json:"potentials"`
	Stats      EvalStats   `json:"stats"`
	Trace      *TraceSpan  `json:"trace,omitempty"`
}

// RecentEvalsResponse is the JSON body of GET /v1/evals/recent: the
// span trees of recent evaluations, newest first, from a bounded
// in-memory ring (Config.TraceRing).
type RecentEvalsResponse struct {
	// Total counts evaluations ever traced, including those the ring
	// has evicted.
	Total int64 `json:"total"`
	// Traces holds up to ?n= (default: all retained) span trees.
	Traces []*TraceSpan `json:"traces"`
}

// OneShotRequest is the JSON body of POST /v1/evaluate: a plan plus the
// densities, evaluated in one round trip (the plan is still cached).
type OneShotRequest struct {
	PlanRequest
	Densities []float64 `json:"densities"`
}

// HealthResponse is the JSON body of GET /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	Plans         int     `json:"plans"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// MetricsSnapshot is a point-in-time view of the service counters,
// served under "kifmm" at GET /debug/vars.
type MetricsSnapshot struct {
	// Plan-cache counters.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	PlansBuilt     int64 `json:"plans_built"`
	PlansEvicted   int64 `json:"plans_evicted"`
	BuildCoalesced int64 `json:"build_coalesced"`
	PlansLive      int   `json:"plans_live"`
	// PlansBytes is the summed estimated footprint of live plans (the
	// quantity Config.CacheBytes bounds).
	PlansBytes int64 `json:"plans_bytes"`
	BuildNanos int64 `json:"build_ns"`
	// Evaluation counters. Evaluations counts right-hand sides (a batch
	// of k counts k) and EvalBatches counts engine sweeps. EvalCanceled
	// counts evaluations aborted by caller cancellation or deadline
	// (tracked apart from EvalErrors so a disconnect storm is
	// distinguishable from bad input). NsPerPoint is the most recent
	// sweep's wall nanoseconds per target point per right-hand side —
	// the per-point latency batch evaluations used to hide.
	Evaluations  int64     `json:"evaluations"`
	EvalBatches  int64     `json:"eval_batches"`
	EvalErrors   int64     `json:"eval_errors"`
	EvalCanceled int64     `json:"eval_canceled"`
	NsPerPoint   float64   `json:"eval_ns_per_point"`
	Stages       EvalStats `json:"stage_totals"`
	// Elastic-pool gauges and counters. MaxLanes is the pool capacity
	// (-max-workers) and MinLanePerEval the admission floor
	// (-min-lane-per-eval). LanesInUse counts lanes currently leased —
	// by evaluations and width-1 plan-build admissions alike — and
	// never exceeds MaxLanes. LanesGrantedTotal accumulates admission
	// grants, and GrantedWidthHist maps granted width -> number of
	// evaluations admitted at that width: on an idle server it piles
	// up at MaxLanes, under saturation at MinLanePerEval.
	MaxLanes          int              `json:"max_lanes"`
	MinLanePerEval    int              `json:"min_lane_per_eval"`
	LanesInUse        int              `json:"lanes_in_use"`
	LanesGrantedTotal int64            `json:"lanes_granted_total"`
	GrantedWidthHist  map[string]int64 `json:"granted_width_hist"`
}

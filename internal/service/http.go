package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies (geometry and densities are flat
// float arrays; 256 MiB admits tens of millions of points).
const maxBodyBytes = 256 << 20

// Server exposes a Service over HTTP:
//
//	POST /v1/plans                     register geometry       -> PlanInfo
//	POST /v1/plans/{id}/evaluate       densities->potentials   -> EvaluateResponse
//	POST /v1/plans/{id}/evaluate_batch many densities, 1 sweep -> EvaluateBatchResponse
//	POST /v1/evaluate                  one-shot plan+eval      -> EvaluateResponse
//	GET  /healthz                      liveness                -> HealthResponse
//	GET  /debug/vars                   expvar + "kifmm" metrics
type Server struct {
	svc   *Service
	mux   *http.ServeMux
	start time.Time
}

// NewServer wraps svc in an HTTP handler.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/plans", s.handleRegister)
	s.mux.HandleFunc("POST /v1/plans/{id}/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/plans/{id}/evaluate_batch", s.handleEvaluateBatch)
	s.mux.HandleFunc("POST /v1/evaluate", s.handleOneShot)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON marshals before writing the header, so a
// JSON-unrepresentable value (e.g. Inf potentials from overflowing
// densities) surfaces as a 500 instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("service: encoding response: %s", err)})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
	_, _ = w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrPlanNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("service: request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeError(w, badRequest("decoding body: %s", err))
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !readJSON(w, r, &req) {
		return
	}
	info, err := s.svc.Register(req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusCreated
	if info.Cached {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req EvaluateRequest
	if !readJSON(w, r, &req) {
		return
	}
	pot, st, err := s.svc.Evaluate(id, req.Densities)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{PlanID: id, Potentials: pot, Stats: st})
}

func (s *Server) handleEvaluateBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req EvaluateBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	pots, st, err := s.svc.EvaluateBatch(id, req.Densities)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateBatchResponse{PlanID: id, Potentials: pots, Stats: st})
}

func (s *Server) handleOneShot(w http.ResponseWriter, r *http.Request) {
	var req OneShotRequest
	if !readJSON(w, r, &req) {
		return
	}
	info, pot, st, err := s.svc.EvaluateOnce(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{PlanID: info.ID, Potentials: pot, Stats: st})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Plans:         s.svc.Plans(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleVars serves the process-global expvar variables (cmdline,
// memstats, anything else published) plus this service's counters under
// the "kifmm" key, in the standard /debug/vars JSON shape.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "kifmm" {
			return // ours below, from this server's service
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	raw, err := json.Marshal(s.svc.Metrics())
	if err == nil {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", "kifmm", raw)
	}
	fmt.Fprintf(w, "\n}\n")
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies (geometry and densities are flat
// float arrays; 256 MiB admits tens of millions of points).
const maxBodyBytes = 256 << 20

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client's disconnect cancelled the work server-side;
// the client that caused it rarely sees it, but proxies and access logs
// do.
const StatusClientClosedRequest = 499

// Server exposes a Service over HTTP:
//
//	POST /v1/plans                     register geometry       -> PlanInfo
//	POST /v1/plans/{id}/evaluate       densities->potentials   -> EvaluateResponse
//	POST /v1/plans/{id}/evaluate_batch many densities, 1 sweep -> EvaluateBatchResponse
//	POST /v1/evaluate                  one-shot plan+eval      -> EvaluateResponse
//	POST /v1/uploads                   create chunked upload   -> UploadStatus
//	POST /v1/uploads/{id}              append binary chunk     -> UploadStatus
//	GET  /v1/uploads/{id}              upload progress         -> UploadStatus
//	GET  /v1/evals/recent              recent eval span trees  -> RecentEvalsResponse
//	GET  /healthz                      liveness                -> HealthResponse
//	GET  /metrics                      Prometheus text exposition
//	GET  /debug/vars                   expvar + "kifmm" metrics (legacy; see /metrics)
//
// The evaluation endpoints accept ?trace=1 to echo the request's span
// tree (wall-clock per pass and tree level) in the response.
//
// Bulk bodies are content-negotiated (see wirehttp.go): a request with
// Content-Type application/x-kifmm-frame ships coordinates/densities
// as raw little-endian float64 words, and Accept:
// application/x-kifmm-frame selects the same encoding for response
// potentials; JSON remains the default in both directions, and errors
// are always JSON. The evaluation POSTs additionally honor an
// Idempotency-Key header (see idem.go): duplicates of a keyed request
// replay the stored response instead of re-running the evaluation.
//
// Every request runs under r.Context() plus the configured per-request
// deadline (WithEvalTimeout / kifmm-serve's -eval-timeout): a client
// disconnect or deadline cancels the in-flight plan build or engine
// sweep within one FMM pass.
//
// Errors are the kifmm taxonomy on the wire: the JSON envelope is
// {"error": <message>, "code": <machine-readable code>}, with codes
// mapped onto statuses as
//
//	invalid_input     -> 400    plan_not_found    -> 404
//	unknown_kernel    -> 400    plan_too_large    -> 413
//	canceled          -> 499    deadline_exceeded -> 504
//	internal          -> 500
//
// so the Go client can rebuild the typed error (errors.Is against
// kifmm.ErrCanceled etc. holds across the round trip).
type Server struct {
	svc   *Service
	mux   *http.ServeMux
	start time.Time
	// evalTimeout bounds each request's work (0 = none); it layers onto
	// r.Context(), so whichever of disconnect and deadline comes first
	// cancels the work.
	evalTimeout time.Duration
	// log receives one structured line per request (nil = silent).
	log *slog.Logger
	// slowThreshold promotes requests at least this slow to a warning
	// log line (0 = never).
	slowThreshold time.Duration
	pprof         bool
	reqSeq        atomic.Int64
	// idem deduplicates Idempotency-Key'd evaluation POSTs.
	idem *idemStore
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithEvalTimeout sets the per-request deadline applied to every
// API request's context (0 disables). Requests that exceed it fail
// with 504 / deadline_exceeded, and the underlying evaluation stops
// within one FMM pass.
func WithEvalTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.evalTimeout = d }
}

// WithLogger makes the server emit one structured slog line per request
// (route, method, status, duration, request id). Nil disables logging
// (the default).
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// WithSlowEvalThreshold logs requests taking at least d at warning
// level, marked slow=true, so slow evaluations stand out of the request
// stream (0 disables; requires WithLogger).
func WithSlowEvalThreshold(d time.Duration) ServerOption {
	return func(s *Server) { s.slowThreshold = d }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ (kifmm-serve's
// -pprof flag). Off by default: profiling endpoints expose stacks and
// heap contents, so they are opt-in.
func WithPprof() ServerOption {
	return func(s *Server) { s.pprof = true }
}

// NewServer wraps svc in an HTTP handler.
func NewServer(svc *Service, opts ...ServerOption) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), start: time.Now(), idem: newIdemStore()}
	for _, o := range opts {
		o(s)
	}
	s.handle("POST /v1/plans", s.handleRegister)
	s.handle("POST /v1/plans/{id}/evaluate", s.idempotent(s.handleEvaluate))
	s.handle("POST /v1/plans/{id}/evaluate_batch", s.idempotent(s.handleEvaluateBatch))
	s.handle("POST /v1/evaluate", s.idempotent(s.handleOneShot))
	s.handle("POST /v1/uploads", s.handleUploadCreate)
	s.handle("POST /v1/uploads/{id}", s.handleUploadChunk)
	s.handle("GET /v1/uploads/{id}", s.handleUploadStatus)
	s.handle("GET /v1/evals/recent", s.handleRecentEvals)
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /debug/vars", s.handleVars)
	if s.pprof {
		// pprof handlers do their own sub-routing on the path suffix;
		// mount them unwrapped so profile endpoints don't skew the API
		// request metrics.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter captures the response status and body size for metrics
// and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// countingReader counts request-body bytes as the handler consumes
// them (so kifmm_http_request_bytes_total reflects bytes actually
// read, whatever the client's Content-Length claimed).
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

// handle registers a route wrapped in the observability middleware:
// per-route request counters and duration histograms, plus an optional
// structured log line carrying a request id. The route label is the
// registered pattern, so metrics cardinality is bounded by the route
// table, not by client-supplied paths.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = "r" + strconv.FormatInt(s.start.UnixNano()%1e9, 36) + "-" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", reqID)
		// W3C trace context: adopt the caller's trace id as this request's,
		// recording the caller's span id as the parent; a missing or
		// malformed traceparent starts a fresh trace (never an error). The
		// response echoes the trace with the server's span id, so callers
		// can stitch their spans to ours.
		parentSpan := ""
		tc, tcErr := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if tcErr == nil {
			parentSpan = tc.SpanID
			tc.SpanID = obs.NewSpanID()
		} else {
			tc = obs.NewTraceContext()
		}
		w.Header().Set("Traceparent", tc.Traceparent())
		ctx := obs.ContextWithTrace(r.Context(), tc)
		ctx = contextWithRequestMeta(ctx, requestMeta{id: reqID, parentSpan: parentSpan})
		r = r.WithContext(ctx)
		cr := &countingReader{rc: r.Body}
		r.Body = cr
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		m := s.svc.m
		m.httpRequests.With(pattern, strconv.Itoa(sw.status)).Inc()
		m.httpRequestSeconds.With(pattern).Observe(dur.Seconds())
		m.httpRequestBytes.Add(cr.n)
		m.httpResponseBytes.Add(sw.bytes)
		slow := s.slowThreshold > 0 && dur >= s.slowThreshold
		if slow {
			m.evalSlow.Inc()
		}
		if s.log != nil {
			attrs := []any{
				"method", r.Method, "route", pattern, "status", sw.status,
				"duration_ms", float64(dur.Microseconds()) / 1e3, "request_id", reqID,
				"trace_id", tc.TraceID,
			}
			if slow {
				s.log.Warn("slow request", append(attrs, "slow", true)...)
			} else {
				s.log.Info("request", attrs...)
			}
		}
	})
}

// requestContext derives the work context for one API request:
// r.Context() (cancelled when the client disconnects) bounded by the
// configured per-request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.evalTimeout > 0 {
		return context.WithTimeout(ctx, s.evalTimeout)
	}
	return context.WithCancel(ctx)
}

// errorResponse is the JSON error envelope: a human-readable message
// plus the machine-readable taxonomy code.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// writeJSON marshals before writing the header, so a
// JSON-unrepresentable value (e.g. Inf potentials from overflowing
// densities) surfaces as a 500 instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(errorResponse{
			Error: fmt.Sprintf("service: encoding response: %s", err),
			Code:  string(errs.CodeInternal),
		})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
	_, _ = w.Write([]byte("\n"))
}

// statusOf maps an error chain onto (HTTP status, wire code). Typed
// errors map by code; bare context errors (belt and braces — the
// service normally types them) map to 499/504; everything else is a
// 500 internal.
func statusOf(err error) (int, errs.Code) {
	if code, ok := errs.CodeOf(err); ok {
		switch code {
		case errs.CodeInvalidInput, errs.CodeUnknownKernel:
			return http.StatusBadRequest, code
		case errs.CodePlanNotFound:
			return http.StatusNotFound, code
		case errs.CodePlanTooLarge:
			return http.StatusRequestEntityTooLarge, code
		case errs.CodeCanceled:
			return StatusClientClosedRequest, code
		case errs.CodeDeadlineExceeded:
			return http.StatusGatewayTimeout, code
		case errs.CodeInternal:
			return http.StatusInternalServerError, code
		case errs.CodeWorkerLost:
			return http.StatusServiceUnavailable, code
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, errs.CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, errs.CodeDeadlineExceeded
	}
	return http.StatusInternalServerError, errs.CodeInternal
}

func writeError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: string(code)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLargeErr *http.MaxBytesError
		if errors.As(err, &tooLargeErr) {
			writeError(w, tooLarge("request body exceeds %d bytes", tooLargeErr.Limit))
			return false
		}
		writeError(w, badRequest("decoding body: %s", err))
		return false
	}
	// The body must be exactly one JSON value: trailing bytes — a second
	// value, or garbage like `{...}x` — are a malformed request, not
	// ignorable padding (silently accepting them masks client bugs such
	// as concatenated or truncated-and-resumed bodies).
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, badRequest("request body has trailing data after the JSON value"))
		return false
	}
	return true
}

// readFrameBody slurps a binary frame request body under the standard
// size bound.
func readFrameBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	p, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLargeErr *http.MaxBytesError
		if errors.As(err, &tooLargeErr) {
			writeError(w, tooLarge("request body exceeds %d bytes", tooLargeErr.Limit))
			return nil, false
		}
		writeError(w, badRequest("reading body: %s", err))
		return nil, false
	}
	return p, true
}

// readPlanRequest decodes a plan registration body in either encoding,
// counting it in kifmm_wire_encoding_total.
func (s *Server) readPlanRequest(w http.ResponseWriter, r *http.Request, req *PlanRequest) bool {
	if !isFrameRequest(r) {
		s.svc.m.wireEncoding.With("json").Inc()
		return readJSON(w, r, req)
	}
	s.svc.m.wireEncoding.With("frame").Inc()
	body, ok := readFrameBody(w, r)
	if !ok {
		return false
	}
	hdr, src, trg, err := decodePlanFrame(body)
	if err != nil {
		writeError(w, err)
		return false
	}
	if err := json.Unmarshal(hdr, req); err != nil {
		writeError(w, badRequest("decoding plan frame header: %s", err))
		return false
	}
	req.Src, req.Trg = src, trg
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.readPlanRequest(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	info, err := s.svc.Register(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusCreated
	if info.Cached {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// wantTrace reports whether the request asked for its span tree
// (?trace=1 or any other truthy strconv.ParseBool spelling).
func wantTrace(r *http.Request) bool {
	t, err := strconv.ParseBool(r.URL.Query().Get("trace"))
	return err == nil && t
}

// nonFiniteIndex returns the index of the first NaN or infinite value
// in v, or -1 when every value is finite (and so JSON-representable).
func nonFiniteIndex(v []float64) int {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return i
		}
	}
	return -1
}

// errNonFinite is the typed refusal to put a non-finite potential on
// the JSON wire: encoding/json cannot represent NaN or Inf, so instead
// of an opaque 500 from a failed marshal the client learns which
// output overflowed and how to receive it anyway.
func errNonFinite(at string, v float64) error {
	return badRequest("%s is %v, which JSON cannot represent; overflowing densities usually mean bad input, but the value itself is retrievable bit-exactly with Accept: %s",
		at, v, ContentTypeFrame)
}

// writeEvalResponse sends an EvaluateResponse in the negotiated
// encoding: a binary frame (meta header + raw potential words, any bit
// pattern) when the request accepts it, JSON — with a typed error for
// non-finite potentials JSON cannot carry — otherwise.
func (s *Server) writeEvalResponse(w http.ResponseWriter, r *http.Request, resp EvaluateResponse) {
	if wantsFrameResponse(r) {
		s.svc.m.wireEncoding.With("frame").Inc()
		pot := resp.Potentials
		resp.Potentials = nil
		meta, err := json.Marshal(resp)
		if err != nil {
			writeError(w, errs.Newf(errs.CodeInternal, "service: encoding response meta: %s", err))
			return
		}
		writeFrame(w, http.StatusOK, encodeEvalFrame(meta, pot))
		return
	}
	s.svc.m.wireEncoding.With("json").Inc()
	if i := nonFiniteIndex(resp.Potentials); i >= 0 {
		writeError(w, errNonFinite(fmt.Sprintf("potentials[%d]", i), resp.Potentials[i]))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeEvalBatchResponse is writeEvalResponse for batch results.
func (s *Server) writeEvalBatchResponse(w http.ResponseWriter, r *http.Request, resp EvaluateBatchResponse) {
	if wantsFrameResponse(r) {
		s.svc.m.wireEncoding.With("frame").Inc()
		pots := resp.Potentials
		resp.Potentials = nil
		meta, err := json.Marshal(resp)
		if err != nil {
			writeError(w, errs.Newf(errs.CodeInternal, "service: encoding response meta: %s", err))
			return
		}
		writeFrame(w, http.StatusOK, encodeEvalBatchFrame(meta, pots))
		return
	}
	s.svc.m.wireEncoding.With("json").Inc()
	for q, pot := range resp.Potentials {
		if i := nonFiniteIndex(pot); i >= 0 {
			writeError(w, errNonFiniteBatch(q, i, pot[i]))
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// errNonFiniteBatch is errNonFinite for one vector of a batch; the
// index formatting lives here, off the scan loop.
func errNonFiniteBatch(q, i int, v float64) error {
	return errNonFinite(fmt.Sprintf("potentials[%d][%d]", q, i), v)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var den []float64
	if isFrameRequest(r) {
		s.svc.m.wireEncoding.With("frame").Inc()
		body, ok := readFrameBody(w, r)
		if !ok {
			return
		}
		var err error
		if den, err = decodeEvalFrame(body); err != nil {
			writeError(w, err)
			return
		}
	} else {
		s.svc.m.wireEncoding.With("json").Inc()
		var req EvaluateRequest
		if !readJSON(w, r, &req) {
			return
		}
		den = req.Densities
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	pot, st, span, err := s.svc.EvaluateTraced(ctx, id, den)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := EvaluateResponse{PlanID: id, Potentials: pot, Stats: st}
	if wantTrace(r) {
		resp.Trace = span
	}
	s.writeEvalResponse(w, r, resp)
}

func (s *Server) handleEvaluateBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var dens [][]float64
	if isFrameRequest(r) {
		s.svc.m.wireEncoding.With("frame").Inc()
		body, ok := readFrameBody(w, r)
		if !ok {
			return
		}
		var err error
		if dens, err = decodeEvalBatchFrame(body); err != nil {
			writeError(w, err)
			return
		}
	} else {
		s.svc.m.wireEncoding.With("json").Inc()
		var req EvaluateBatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		dens = req.Densities
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	pots, st, span, err := s.svc.EvaluateBatchTraced(ctx, id, dens)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := EvaluateBatchResponse{PlanID: id, Potentials: pots, Stats: st}
	if wantTrace(r) {
		resp.Trace = span
	}
	s.writeEvalBatchResponse(w, r, resp)
}

func (s *Server) handleOneShot(w http.ResponseWriter, r *http.Request) {
	var req OneShotRequest
	if isFrameRequest(r) {
		s.svc.m.wireEncoding.With("frame").Inc()
		body, ok := readFrameBody(w, r)
		if !ok {
			return
		}
		hdr, src, trg, den, err := decodeOneShotFrame(body)
		if err != nil {
			writeError(w, err)
			return
		}
		if err := json.Unmarshal(hdr, &req); err != nil {
			writeError(w, badRequest("decoding evaluate frame header: %s", err))
			return
		}
		req.Src, req.Trg, req.Densities = src, trg, den
	} else {
		s.svc.m.wireEncoding.With("json").Inc()
		if !readJSON(w, r, &req) {
			return
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	info, pot, st, span, err := s.svc.EvaluateOnceTraced(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := EvaluateResponse{PlanID: info.ID, Potentials: pot, Stats: st}
	if wantTrace(r) {
		resp.Trace = span
	}
	s.writeEvalResponse(w, r, resp)
}

// handleRecentEvals serves the span trees of recent evaluations, newest
// first; ?n= bounds how many (default: all retained in the ring) and
// ?trace_id= keeps only evaluations belonging to that W3C trace.
func (s *Server) handleRecentEvals(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, badRequest("n must be a non-negative integer, got %q", q))
			return
		}
		n = v
	}
	var traces []*TraceSpan
	if traceID := r.URL.Query().Get("trace_id"); traceID != "" {
		for _, sp := range s.svc.RecentSpans(0) {
			if sp.Attrs["trace_id"] == traceID {
				traces = append(traces, sp)
			}
			if n > 0 && len(traces) == n {
				break
			}
		}
	} else {
		traces = s.svc.RecentSpans(n)
	}
	if traces == nil {
		traces = []*TraceSpan{}
	}
	writeJSON(w, http.StatusOK, RecentEvalsResponse{
		Total:  s.svc.spans.Total(),
		Traces: traces,
	})
}

// handleMetrics renders every registered instrument in Prometheus text
// exposition format (version 0.0.4) — the scrape endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.MetricsRegistry().WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Plans:         s.svc.Plans(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleVars serves the process-global expvar variables (cmdline,
// memstats, anything else published) plus this service's counters under
// the "kifmm" key — the pre-/metrics wire shape, kept backward
// compatible — and the raw obs registry samples under "kifmm_metrics"
// (metric name -> value, histograms as name_count/name_sum), in the
// standard /debug/vars JSON shape. Both keys are derived views of the
// same registry; new consumers should scrape GET /metrics instead.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "kifmm" || kv.Key == "kifmm_metrics" {
			return // ours below, from this server's service
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if raw, err := json.Marshal(s.svc.Metrics()); err == nil {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", "kifmm", raw)
	}
	if raw, err := json.Marshal(s.svc.MetricsRegistry().Snapshot()); err == nil {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", "kifmm_metrics", raw)
	}
	fmt.Fprintf(w, "\n}\n")
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"time"

	"repro/internal/errs"
)

// maxBodyBytes bounds request bodies (geometry and densities are flat
// float arrays; 256 MiB admits tens of millions of points).
const maxBodyBytes = 256 << 20

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client's disconnect cancelled the work server-side;
// the client that caused it rarely sees it, but proxies and access logs
// do.
const StatusClientClosedRequest = 499

// Server exposes a Service over HTTP:
//
//	POST /v1/plans                     register geometry       -> PlanInfo
//	POST /v1/plans/{id}/evaluate       densities->potentials   -> EvaluateResponse
//	POST /v1/plans/{id}/evaluate_batch many densities, 1 sweep -> EvaluateBatchResponse
//	POST /v1/evaluate                  one-shot plan+eval      -> EvaluateResponse
//	GET  /healthz                      liveness                -> HealthResponse
//	GET  /debug/vars                   expvar + "kifmm" metrics
//
// Every request runs under r.Context() plus the configured per-request
// deadline (WithEvalTimeout / kifmm-serve's -eval-timeout): a client
// disconnect or deadline cancels the in-flight plan build or engine
// sweep within one FMM pass.
//
// Errors are the kifmm taxonomy on the wire: the JSON envelope is
// {"error": <message>, "code": <machine-readable code>}, with codes
// mapped onto statuses as
//
//	invalid_input     -> 400    plan_not_found    -> 404
//	unknown_kernel    -> 400    plan_too_large    -> 413
//	canceled          -> 499    deadline_exceeded -> 504
//	internal          -> 500
//
// so the Go client can rebuild the typed error (errors.Is against
// kifmm.ErrCanceled etc. holds across the round trip).
type Server struct {
	svc   *Service
	mux   *http.ServeMux
	start time.Time
	// evalTimeout bounds each request's work (0 = none); it layers onto
	// r.Context(), so whichever of disconnect and deadline comes first
	// cancels the work.
	evalTimeout time.Duration
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithEvalTimeout sets the per-request deadline applied to every
// API request's context (0 disables). Requests that exceed it fail
// with 504 / deadline_exceeded, and the underlying evaluation stops
// within one FMM pass.
func WithEvalTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.evalTimeout = d }
}

// NewServer wraps svc in an HTTP handler.
func NewServer(svc *Service, opts ...ServerOption) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("POST /v1/plans", s.handleRegister)
	s.mux.HandleFunc("POST /v1/plans/{id}/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/plans/{id}/evaluate_batch", s.handleEvaluateBatch)
	s.mux.HandleFunc("POST /v1/evaluate", s.handleOneShot)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// requestContext derives the work context for one API request:
// r.Context() (cancelled when the client disconnects) bounded by the
// configured per-request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.evalTimeout > 0 {
		return context.WithTimeout(ctx, s.evalTimeout)
	}
	return context.WithCancel(ctx)
}

// errorResponse is the JSON error envelope: a human-readable message
// plus the machine-readable taxonomy code.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// writeJSON marshals before writing the header, so a
// JSON-unrepresentable value (e.g. Inf potentials from overflowing
// densities) surfaces as a 500 instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(errorResponse{
			Error: fmt.Sprintf("service: encoding response: %s", err),
			Code:  string(errs.CodeInternal),
		})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
	_, _ = w.Write([]byte("\n"))
}

// statusOf maps an error chain onto (HTTP status, wire code). Typed
// errors map by code; bare context errors (belt and braces — the
// service normally types them) map to 499/504; everything else is a
// 500 internal.
func statusOf(err error) (int, errs.Code) {
	if code, ok := errs.CodeOf(err); ok {
		switch code {
		case errs.CodeInvalidInput, errs.CodeUnknownKernel:
			return http.StatusBadRequest, code
		case errs.CodePlanNotFound:
			return http.StatusNotFound, code
		case errs.CodePlanTooLarge:
			return http.StatusRequestEntityTooLarge, code
		case errs.CodeCanceled:
			return StatusClientClosedRequest, code
		case errs.CodeDeadlineExceeded:
			return http.StatusGatewayTimeout, code
		case errs.CodeInternal:
			return http.StatusInternalServerError, code
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, errs.CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, errs.CodeDeadlineExceeded
	}
	return http.StatusInternalServerError, errs.CodeInternal
}

func writeError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: string(code)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLargeErr *http.MaxBytesError
		if errors.As(err, &tooLargeErr) {
			writeError(w, tooLarge("request body exceeds %d bytes", tooLargeErr.Limit))
			return false
		}
		writeError(w, badRequest("decoding body: %s", err))
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	info, err := s.svc.Register(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusCreated
	if info.Cached {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req EvaluateRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	pot, st, err := s.svc.Evaluate(ctx, id, req.Densities)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{PlanID: id, Potentials: pot, Stats: st})
}

func (s *Server) handleEvaluateBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req EvaluateBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	pots, st, err := s.svc.EvaluateBatch(ctx, id, req.Densities)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateBatchResponse{PlanID: id, Potentials: pots, Stats: st})
}

func (s *Server) handleOneShot(w http.ResponseWriter, r *http.Request) {
	var req OneShotRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	info, pot, st, err := s.svc.EvaluateOnce(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EvaluateResponse{PlanID: info.ID, Potentials: pot, Stats: st})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Plans:         s.svc.Plans(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleVars serves the process-global expvar variables (cmdline,
// memstats, anything else published) plus this service's counters under
// the "kifmm" key, in the standard /debug/vars JSON shape.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "kifmm" {
			return // ours below, from this server's service
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	raw, err := json.Marshal(s.svc.Metrics())
	if err == nil {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", "kifmm", raw)
	}
	fmt.Fprintf(w, "\n}\n")
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	kifmm "repro"
	"repro/internal/errs"
)

// slowPlan registers a plan big enough that one evaluation spans many
// engine dispatches, so cancellations have something to interrupt.
func slowPlan(t *testing.T, svc *Service) (PlanInfo, []float64) {
	t.Helper()
	req := cloudRequest(17, 4000)
	req.Degree = 6
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	return info, densitiesFor(req, info.SourceDim)
}

// TestEvaluateCancelMidSweep: cancelling the evaluation context aborts
// the engine sweep with the typed error, counts as a cancellation (not
// an eval error), and leaves the plan fully usable.
func TestEvaluateCancelMidSweep(t *testing.T) {
	svc := New(Config{})
	info, den := slowPlan(t, svc)

	// Uncancelled reference, which also warms the lazy operator caches.
	start := time.Now()
	if _, _, err := svc.Evaluate(bg, info.ID, den); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 8)
		cancel()
	}()
	start = time.Now()
	_, _, err := svc.Evaluate(ctx, info.ID, den)
	aborted := time.Since(start)
	if !errors.Is(err, kifmm.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want kifmm.ErrCanceled and context.Canceled", err)
	}
	if aborted > full*3/4 {
		t.Errorf("cancelled evaluation took %v of an uncancelled %v", aborted, full)
	}
	m := svc.Metrics()
	if m.EvalCanceled != 1 {
		t.Errorf("EvalCanceled = %d, want 1", m.EvalCanceled)
	}
	if m.EvalErrors != 0 {
		t.Errorf("EvalErrors = %d; cancellations must not count as errors", m.EvalErrors)
	}
	if _, _, err := svc.Evaluate(bg, info.ID, den); err != nil {
		t.Errorf("evaluation after a cancelled one failed: %v", err)
	}
}

// TestWorkerSlotWaitHonorsContext: a request queued at admission behind
// a saturated elastic pool leaves the queue when its context ends,
// without ever being granted a lane.
func TestWorkerSlotWaitHonorsContext(t *testing.T) {
	svc := New(Config{MaxWorkers: 1})
	info, den := slowPlan(t, svc)

	// Saturate the pool's only lane directly (in-package test): the
	// lease never runs a sweep, so no lanes flow back and any queued
	// evaluation waits until we release it.
	lease, err := svc.pool.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = svc.Evaluate(ctx, info.ID, den)
	if !errors.Is(err, kifmm.ErrDeadlineExceeded) {
		t.Fatalf("queued eval: err = %v, want ErrDeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("queued eval returned after %v, want promptly at its deadline", d)
	}
}

// TestRegisterCancelledBuild: a cancelled registration returns the
// typed error, does not poison the cache, and a retry builds cleanly.
func TestRegisterCancelledBuild(t *testing.T) {
	svc := New(Config{})
	req := cloudRequest(18, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Register(ctx, req); !errors.Is(err, kifmm.ErrCanceled) {
		t.Fatalf("cancelled register: err = %v, want ErrCanceled", err)
	}
	if n := svc.Plans(); n != 0 {
		t.Errorf("cancelled build cached %d plans", n)
	}
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatalf("retry after cancelled build: %v", err)
	}
	if _, _, err := svc.Evaluate(bg, info.ID, densitiesFor(req, info.SourceDim)); err != nil {
		t.Errorf("evaluate after retried build: %v", err)
	}
}

// TestHTTPClientDisconnectCancelsSweep is the end-to-end acceptance
// path: a client opens an evaluation over real HTTP and walks away;
// r.Context() cancels, the ctx plumbing aborts the server-side FMM
// sweep within one pass, and the service records a cancellation — with
// no goroutine left behind.
func TestHTTPClientDisconnectCancelsSweep(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	info, den := slowPlan(t, svc)
	if _, _, err := svc.Evaluate(bg, info.ID, den); err != nil { // warm caches
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	body, err := json.Marshal(EvaluateRequest{Densities: den})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/plans/"+info.ID+"/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Skip("evaluation finished before the disconnect; nothing to observe")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("client-side err = %v, want context.Canceled", err)
	}

	// The server-side sweep must abort and be recorded as a cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().EvalCanceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server never recorded the cancelled evaluation; metrics %+v", svc.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the handler goroutines must drain.
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 { // httptest keeps a couple of idle conns
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after disconnect", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The plan survives for the next caller.
	if _, _, err := svc.Evaluate(bg, info.ID, den); err != nil {
		t.Errorf("evaluation after a disconnected one failed: %v", err)
	}
}

// TestHTTPEvalTimeout: the configured per-request deadline turns a
// too-slow evaluation into 504 / deadline_exceeded on the wire.
func TestHTTPEvalTimeout(t *testing.T) {
	svc := New(Config{})
	info, den := slowPlan(t, svc)
	if _, _, err := svc.Evaluate(bg, info.ID, den); err != nil { // warm caches
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(svc, WithEvalTimeout(2*time.Millisecond)))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/plans/"+info.ID+"/evaluate", EvaluateRequest{Densities: den})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, raw)
	}
	e := decode[errorResponse](t, resp)
	if e.Code != string(errs.CodeDeadlineExceeded) {
		t.Errorf("wire code = %q, want %q", e.Code, errs.CodeDeadlineExceeded)
	}
}

// TestStatusOfMapping pins the taxonomy -> HTTP status table.
func TestStatusOfMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   errs.Code
	}{
		{errs.ErrInvalidInput, http.StatusBadRequest, errs.CodeInvalidInput},
		{errs.ErrUnknownKernel, http.StatusBadRequest, errs.CodeUnknownKernel},
		{errs.ErrPlanNotFound, http.StatusNotFound, errs.CodePlanNotFound},
		{errs.ErrPlanTooLarge, http.StatusRequestEntityTooLarge, errs.CodePlanTooLarge},
		{errs.ErrCanceled, StatusClientClosedRequest, errs.CodeCanceled},
		{errs.ErrDeadlineExceeded, http.StatusGatewayTimeout, errs.CodeDeadlineExceeded},
		{errs.ErrInternal, http.StatusInternalServerError, errs.CodeInternal},
		{context.Canceled, StatusClientClosedRequest, errs.CodeCanceled},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, errs.CodeDeadlineExceeded},
		{errors.New("mystery"), http.StatusInternalServerError, errs.CodeInternal},
	}
	for _, tc := range cases {
		status, code := statusOf(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("statusOf(%v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.status, tc.code)
		}
	}
}

// TestHTTPWireCodes: the machine-readable code rides the error envelope
// for representative failures.
func TestHTTPWireCodes(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/plans", PlanRequest{Src: []float64{0, 0, 0}, Kernel: KernelSpec{Name: "warp"}})
	if e := decode[errorResponse](t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != string(errs.CodeUnknownKernel) {
		t.Errorf("unknown kernel: status %d code %q, want 400 %q", resp.StatusCode, e.Code, errs.CodeUnknownKernel)
	}

	resp = postJSON(t, ts.URL+"/v1/plans/deadbeef/evaluate", EvaluateRequest{Densities: []float64{1}})
	if e := decode[errorResponse](t, resp); resp.StatusCode != http.StatusNotFound || e.Code != string(errs.CodePlanNotFound) {
		t.Errorf("unknown plan: status %d code %q, want 404 %q", resp.StatusCode, e.Code, errs.CodePlanNotFound)
	}

	resp = postJSON(t, ts.URL+"/v1/plans", PlanRequest{Src: []float64{0, 0, 0}, Kernel: KernelSpec{Name: "laplace"}, Degree: 1 << 20})
	if e := decode[errorResponse](t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge || e.Code != string(errs.CodePlanTooLarge) {
		t.Errorf("degree bomb: status %d code %q, want 413 %q", resp.StatusCode, e.Code, errs.CodePlanTooLarge)
	}
}

// TestCoalescedWaiterSurvivesInitiatorDisconnect is the singleflight
// detachment acceptance test: the caller that initiated a plan build
// disconnects mid-build, and a coalesced waiter still receives the
// finished plan — no cancellation error, no retry, no second build.
func TestCoalescedWaiterSurvivesInitiatorDisconnect(t *testing.T) {
	svc := New(Config{})
	started := make(chan string, 4)
	release := make(chan struct{})
	svc.buildBarrier = func(key string) {
		started <- key
		<-release
	}
	req := cloudRequest(21, 400)

	ictx, icancel := context.WithCancel(context.Background())
	initiatorErr := make(chan error, 1)
	go func() {
		_, err := svc.Register(ictx, req)
		initiatorErr <- err
	}()
	<-started // the build goroutine is running and blocked on the barrier

	type result struct {
		info PlanInfo
		err  error
	}
	waiterRes := make(chan result, 1)
	go func() {
		info, err := svc.Register(bg, req)
		waiterRes <- result{info, err}
	}()
	// The waiter must have coalesced onto the in-flight build before the
	// initiator walks away.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Metrics().BuildCoalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never coalesced onto the in-flight build")
		}
		time.Sleep(time.Millisecond)
	}

	icancel()
	if err := <-initiatorErr; !errors.Is(err, kifmm.ErrCanceled) {
		t.Fatalf("initiator err = %v, want ErrCanceled", err)
	}
	close(release) // let the (now initiator-less) build finish

	r := <-waiterRes
	if r.err != nil {
		t.Fatalf("coalesced waiter err = %v, want the finished plan", r.err)
	}
	if r.info.ID == "" {
		t.Fatal("coalesced waiter got an empty plan id")
	}
	m := svc.Metrics()
	if m.PlansBuilt != 1 || m.CacheMisses != 1 {
		t.Errorf("built=%d misses=%d, want exactly one build with no retry", m.PlansBuilt, m.CacheMisses)
	}
	// The plan is cached and usable.
	if _, _, err := svc.Evaluate(bg, r.info.ID, densitiesFor(req, r.info.SourceDim)); err != nil {
		t.Errorf("evaluation on the surviving plan failed: %v", err)
	}
}

// TestBuildCancelledWhenAllWaitersLeave: when the initiator disconnects
// and no one has coalesced, the detached build is cancelled instead of
// running to completion for nobody, and nothing is cached.
func TestBuildCancelledWhenAllWaitersLeave(t *testing.T) {
	svc := New(Config{})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.buildBarrier = func(key string) {
		started <- key
		<-release
	}
	req := cloudRequest(22, 400)

	ictx, icancel := context.WithCancel(context.Background())
	initiatorErr := make(chan error, 1)
	go func() {
		_, err := svc.Register(ictx, req)
		initiatorErr <- err
	}()
	<-started
	icancel()
	if err := <-initiatorErr; !errors.Is(err, kifmm.ErrCanceled) {
		t.Fatalf("initiator err = %v, want ErrCanceled", err)
	}
	close(release)

	// The orphaned build sees its cancelled context and settles without
	// caching anything.
	deadline := time.Now().Add(5 * time.Second)
	for {
		svc.mu.Lock()
		n := len(svc.building)
		svc.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned build never settled")
		}
		time.Sleep(time.Millisecond)
	}
	if n := svc.Plans(); n != 0 {
		t.Errorf("orphaned build cached %d plans, want 0", n)
	}
	if m := svc.Metrics(); m.PlansBuilt != 0 {
		t.Errorf("PlansBuilt = %d, want 0 (the build was cancelled)", m.PlansBuilt)
	}

	// A fresh registration afterwards builds cleanly.
	svc.buildBarrier = nil
	if _, err := svc.Register(bg, req); err != nil {
		t.Fatalf("register after orphaned build: %v", err)
	}
}

package service

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/kernels"
)

// clusterService builds a coordinator with two one-lane workers and a
// Service that routes one-shot requests of >= minPoints sources to it.
func clusterService(t *testing.T, minPoints int) (*Service, *cluster.Coordinator) {
	t.Helper()
	coord, err := cluster.StartCoordinator(context.Background(), "127.0.0.1:0", cluster.CoordinatorConfig{Heartbeat: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	for i := 0; i < 2; i++ {
		w, err := cluster.StartWorker(context.Background(), cluster.WorkerConfig{Coordinator: coord.Addr(), Lanes: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
	}
	return New(Config{Cluster: coord, ClusterMinPoints: minPoints}), coord
}

// TestOneShotRoutesToCluster: a cluster-sized one-shot fans out over
// the workers and matches the local engine to near machine precision,
// while a sub-threshold request keeps the single-node plan path.
func TestOneShotRoutesToCluster(t *testing.T) {
	svc, coord := clusterService(t, 4000)

	rng := rand.New(rand.NewSource(11))
	const n = 6000
	pts := geom.Flatten(geom.SphereGrid(rng, n, 1, 0.05))
	den := geom.RandomDensities(rng, n, 1)
	// Degree 4 keeps the equivalent-surface pseudo-inverse conditioned
	// well enough that the distributed and single-node operator
	// orderings agree far below the tolerance (see the cluster
	// package's conformance test for the full analysis).
	req := OneShotRequest{
		PlanRequest: PlanRequest{
			Src:    pts,
			Kernel: kernels.Spec{Name: "laplace"},
			Degree: 4, MaxPoints: 60,
		},
		Densities: den,
	}

	info, pot, st, err := svc.EvaluateOnce(context.Background(), req)
	if err != nil {
		t.Fatalf("cluster one-shot: %v", err)
	}
	if info.ID != "" {
		t.Errorf("cluster one-shot produced plan id %q, want none (nothing cached)", info.ID)
	}
	if coord.Evals() != 1 {
		t.Errorf("coordinator ran %d evals, want 1", coord.Evals())
	}
	if st.GrantedLanes != 2 {
		t.Errorf("cluster eval used %d ranks, want 2", st.GrantedLanes)
	}

	// Local reference through the ordinary plan path on a second
	// service with no cluster attached.
	local := New(Config{})
	_, ref, _, err := local.EvaluateOnce(context.Background(), req)
	if err != nil {
		t.Fatalf("local one-shot: %v", err)
	}
	var num, den2 float64
	for i := range ref {
		d := pot[i] - ref[i]
		num += d * d
		den2 += ref[i] * ref[i]
	}
	if rel := math.Sqrt(num / den2); rel > 1e-12 {
		t.Errorf("cluster vs local relative L2 error %g > 1e-12", rel)
	}

	// Sub-threshold request: stays local, builds a plan.
	small := req
	small.Src = pts[:3*1000]
	small.Densities = den[:1000]
	info, _, _, err = svc.EvaluateOnce(context.Background(), small)
	if err != nil {
		t.Fatalf("sub-threshold one-shot: %v", err)
	}
	if info.ID == "" {
		t.Error("sub-threshold one-shot did not build a local plan")
	}
	if coord.Evals() != 1 {
		t.Errorf("sub-threshold request reached the cluster (evals=%d)", coord.Evals())
	}
}

// TestClusterDegradedMode: with zero workers the coordinator rejects
// cluster-sized requests with a typed worker_lost (HTTP 503) while the
// service keeps serving single-node work.
func TestClusterDegradedMode(t *testing.T) {
	coord, err := cluster.StartCoordinator(context.Background(), "127.0.0.1:0", cluster.CoordinatorConfig{Heartbeat: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	svc := New(Config{Cluster: coord, ClusterMinPoints: 1000})

	rng := rand.New(rand.NewSource(12))
	pts := geom.Flatten(geom.SphereGrid(rng, 2000, 1, 0.05))
	den := geom.RandomDensities(rng, 2000, 1)
	req := OneShotRequest{
		PlanRequest: PlanRequest{Src: pts, Kernel: kernels.Spec{Name: "laplace"}, Degree: 4},
		Densities:   den,
	}
	_, _, _, err = svc.EvaluateOnce(context.Background(), req)
	if !errors.Is(err, errs.ErrWorkerLost) {
		t.Fatalf("empty cluster returned %v, want worker_lost", err)
	}
	if status, _ := statusOf(err); status != 503 {
		t.Errorf("worker_lost maps to HTTP %d, want 503", status)
	}

	// Single-node serving stays up: the same geometry below the
	// threshold evaluates locally.
	small := req
	small.Src = pts[:3*500]
	small.Densities = den[:500]
	if _, _, _, err := svc.EvaluateOnce(context.Background(), small); err != nil {
		t.Fatalf("degraded mode broke local serving: %v", err)
	}
}

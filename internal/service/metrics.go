package service

import (
	"strconv"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fmm"
	"repro/internal/obs"
)

// stageNames are the label values of kifmm_stage_seconds, matching the
// fmm.Stats stages the paper charts (Up, DownU, DownV, DownW, DownX,
// Eval).
var stageNames = []string{"up", "down_u", "down_v", "down_w", "down_x", "eval"}

// metrics is the service's single source of observability truth: every
// counter the old expvar snapshot exposed lives here as an obs
// instrument, and both GET /metrics (Prometheus text) and the
// backward-compatible /debug/vars "kifmm" snapshot are derived views of
// this registry.
type metrics struct {
	reg *obs.Registry

	// Plan cache and builds.
	cacheHits, cacheMisses *obs.Counter
	plansBuilt, evictions  *obs.Counter
	coalesced              *obs.Counter
	planBuildSeconds       *obs.Histogram

	// Evaluations. evaluations counts right-hand sides (the historic
	// expvar meaning); evalBatches counts engine sweeps.
	evaluations, evalBatches *obs.Counter
	evalErrors, evalCanceled *obs.Counter
	evalSlow                 *obs.Counter
	evalBatchSize            *obs.Histogram
	evalSeconds              *obs.Histogram
	evalNsPerPoint           *obs.Gauge
	stageSeconds             *obs.HistogramVec
	flops                    *obs.Counter

	// Elastic pool.
	grantedWidth     *obs.CounterVec
	leaseWaitSeconds *obs.Histogram

	// HTTP layer (fed by the Server middleware).
	httpRequests       *obs.CounterVec
	httpRequestSeconds *obs.HistogramVec
	httpRequestBytes   *obs.Counter
	httpResponseBytes  *obs.Counter
	wireEncoding       *obs.CounterVec

	// Cluster fan-out (zero-valued when the service runs single-node).
	clusterPassWireSeconds *obs.HistogramVec
}

// newMetrics builds the registry and registers every instrument. The
// pool-backed gauges read the Service's live state through closures, so
// a scrape needs no extra bookkeeping.
func newMetrics(s *Service) *metrics {
	r := obs.NewRegistry()
	m := &metrics{reg: r}

	m.cacheHits = r.Counter("kifmm_plan_cache_hits_total",
		"Plan registrations resolved from the cache.")
	m.cacheMisses = r.Counter("kifmm_plan_cache_misses_total",
		"Plan registrations that started a fresh build.")
	m.plansBuilt = r.Counter("kifmm_plans_built_total",
		"Plans constructed (octree + operator setup).")
	m.evictions = r.Counter("kifmm_plan_cache_evictions_total",
		"Plans evicted from the cache (LRU or byte bound).")
	m.coalesced = r.Counter("kifmm_plan_builds_coalesced_total",
		"Registrations coalesced onto a concurrent build of the same key.")
	m.planBuildSeconds = r.Histogram("kifmm_plan_build_seconds",
		"Plan construction time in seconds.",
		obs.ExpBuckets(0.01, 4, 8))
	r.GaugeFunc("kifmm_plans_live",
		"Plans currently cached.",
		func() float64 { return float64(s.Plans()) })
	r.GaugeFunc("kifmm_plan_cache_bytes",
		"Summed estimated footprint of cached plans in bytes.",
		func() float64 { return float64(s.PlansBytes()) })

	m.evaluations = r.Counter("kifmm_evaluations_total",
		"Density vectors evaluated (a batch of k counts k).")
	m.evalBatches = r.Counter("kifmm_eval_batches_total",
		"Evaluation sweeps run (a batch counts 1).")
	m.evalErrors = r.Counter("kifmm_eval_errors_total",
		"Evaluations failed for reasons other than cancellation.")
	m.evalCanceled = r.Counter("kifmm_eval_canceled_total",
		"Evaluations aborted by caller cancellation or deadline.")
	m.evalSlow = r.Counter("kifmm_eval_slow_total",
		"Requests at or above the slow-eval threshold (-slow-eval).")
	m.evalBatchSize = r.Histogram("kifmm_eval_batch_size",
		"Right-hand sides per evaluation sweep.",
		obs.ExpBuckets(1, 2, 9))
	m.evalSeconds = r.Histogram("kifmm_eval_seconds",
		"Wall-clock seconds per evaluation sweep.",
		obs.ExpBuckets(0.001, 4, 10))
	m.evalNsPerPoint = r.Gauge("kifmm_eval_ns_per_point",
		"Last sweep's wall nanoseconds per target point per right-hand side.")
	m.stageSeconds = r.HistogramVec("kifmm_stage_seconds",
		"Per-sweep compute seconds by FMM stage, summed across lanes.",
		obs.ExpBuckets(0.0001, 4, 10), "stage")
	m.flops = r.Counter("kifmm_flops_total",
		"Floating-point operations executed by evaluation sweeps.")

	r.GaugeFunc("kifmm_max_lanes",
		"Lane capacity of the elastic pool (-max-workers).",
		func() float64 { return float64(s.pool.MaxWorkers()) })
	r.GaugeFunc("kifmm_min_lane_per_eval",
		"Admission floor of the elastic pool (-min-lane-per-eval).",
		func() float64 { return float64(s.cfg.MinLanePerEval) })
	r.GaugeFunc("kifmm_lanes_in_use",
		"Lanes currently leased by evaluations and plan builds.",
		func() float64 { return float64(s.pool.LanesInUse()) })
	r.CounterFunc("kifmm_lanes_granted_total",
		"Lanes handed out at admission, cumulative.",
		func() float64 { return float64(s.pool.LanesGranted()) })
	r.CounterFunc("kifmm_leases_granted_total",
		"Pool admissions, cumulative.",
		func() float64 { return float64(s.pool.LeasesGranted()) })
	m.grantedWidth = r.CounterVec("kifmm_granted_width_total",
		"Evaluations admitted at each lane width.", "width")
	m.leaseWaitSeconds = r.Histogram("kifmm_lease_wait_seconds",
		"Seconds callers queued for pool admission.",
		obs.ExpBuckets(0.0001, 10, 6))

	m.httpRequests = r.CounterVec("kifmm_http_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	m.httpRequestSeconds = r.HistogramVec("kifmm_http_request_seconds",
		"HTTP request duration in seconds by route.",
		obs.ExpBuckets(0.001, 4, 10), "route")
	m.httpRequestBytes = r.Counter("kifmm_http_request_bytes_total",
		"Request body bytes read by API handlers.")
	m.httpResponseBytes = r.Counter("kifmm_http_response_bytes_total",
		"Response body bytes written by API handlers.")
	m.wireEncoding = r.CounterVec("kifmm_wire_encoding_total",
		"Bulk request/response bodies by negotiated encoding (json or frame).", "encoding")

	// Build identity: the conventional constant-1 gauge whose labels
	// carry the interesting values, joinable against any other series.
	r.GaugeVec("kifmm_build_info",
		"Build identity (constant 1); labels carry the git revision and Go toolchain.",
		"revision", "go_version").
		With(buildinfo.Revision(), buildinfo.GoVersion()).Set(1)

	// Cluster families are always registered — a single-node service
	// reports zeros — so dashboards and the catalog test see one stable
	// metric surface regardless of deployment shape. The closures are
	// nil-safe: they read s.cfg.Cluster at scrape time.
	r.GaugeFunc("kifmm_cluster_workers",
		"Cluster workers currently connected to this coordinator.",
		func() float64 {
			if c := s.cfg.Cluster; c != nil {
				return float64(c.Workers())
			}
			return 0
		})
	r.GaugeFunc("kifmm_cluster_heartbeat_age_seconds",
		"Oldest worker heartbeat age in seconds (0 with no workers).",
		func() float64 {
			if c := s.cfg.Cluster; c != nil {
				return c.MaxHeartbeatAge().Seconds()
			}
			return 0
		})
	r.CounterFunc("kifmm_cluster_scatter_bytes_total",
		"Bytes scattered to workers (job geometry + densities).",
		func() float64 {
			if c := s.cfg.Cluster; c != nil {
				return float64(c.ScatterBytes())
			}
			return 0
		})
	r.CounterFunc("kifmm_cluster_gather_bytes_total",
		"Bytes gathered from workers (per-rank potentials + timelines).",
		func() float64 {
			if c := s.cfg.Cluster; c != nil {
				return float64(c.GatherBytes())
			}
			return 0
		})
	r.CounterFunc("kifmm_cluster_evals_total",
		"Evaluations fanned out across the cluster.",
		func() float64 {
			if c := s.cfg.Cluster; c != nil {
				return float64(c.Evals())
			}
			return 0
		})
	r.CounterFunc("kifmm_cluster_workers_lost_total",
		"Workers dropped for missed heartbeats or dead connections (graceful drains excluded).",
		func() float64 {
			if c := s.cfg.Cluster; c != nil {
				return float64(c.WorkersLost())
			}
			return 0
		})
	m.clusterPassWireSeconds = r.HistogramVec("kifmm_cluster_pass_wire_seconds",
		"Per-evaluation wall seconds spent in each distributed communication pass.",
		obs.ExpBuckets(0.0001, 4, 10), "pass")
	if c := s.cfg.Cluster; c != nil {
		c.SetPassObserver(func(pass string, seconds float64) {
			m.clusterPassWireSeconds.With(pass).Observe(seconds)
		})
	}

	return m
}

// recordEval records one finished sweep: rhs right-hand sides over
// points targets, taking wall seconds end to end, with the engine's
// per-stage breakdown st. Called only for successful evaluations (the
// error/cancel counters are bumped at the failure site).
func (m *metrics) recordEval(st fmm.Stats, rhs, points int, wall time.Duration) {
	m.evaluations.Add(int64(rhs))
	m.evalBatches.Inc()
	m.evalBatchSize.Observe(float64(rhs))
	m.evalSeconds.Observe(wall.Seconds())
	if n := rhs * points; n > 0 {
		m.evalNsPerPoint.Set(float64(wall.Nanoseconds()) / float64(n))
	}
	if st.Lanes >= 1 {
		m.grantedWidth.With(strconv.Itoa(st.Lanes)).Inc()
	}
	durs := [...]time.Duration{st.Up, st.DownU, st.DownV, st.DownW, st.DownX, st.Eval}
	for i, name := range stageNames {
		m.stageSeconds.With(name).Observe(durs[i].Seconds())
	}
	m.flops.Add(st.Flops())
}

// stageNanos converts a stage histogram's accumulated seconds back to
// the integer nanoseconds the legacy /debug/vars snapshot reports.
func (m *metrics) stageNanos(stage string) int64 {
	return int64(m.stageSeconds.With(stage).Sum() * 1e9)
}

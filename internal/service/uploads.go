package service

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/errs"
)

// Chunked geometry upload: a client that cannot (or does not want to)
// ship a whole coordinate array in one request creates an upload,
// appends bounded binary chunks by word offset, and then registers a
// plan referencing the upload id ("src_upload"/"trg_upload" in
// PlanRequest). Appends are idempotent on the committed prefix —
// re-sending an already-received chunk is a no-op — so a client whose
// chunk timed out in flight can blindly retry it, and GET
// /v1/uploads/{id} reports received_words for resuming after a
// disconnect.
//
//	POST /v1/uploads          JSON {"words": N}   -> 201 UploadStatus
//	POST /v1/uploads/{id}     frame: magic, u64 word offset, f64s chunk
//	                                             -> 200 UploadStatus
//	GET  /v1/uploads/{id}                        -> 200 UploadStatus
//
// Uploads are in-memory, bounded in aggregate by Config.UploadBytes,
// and expire after uploadTTL of inactivity; a registered plan copies
// nothing (the upload's backing array becomes the plan's geometry), so
// one upload can seed many plans until it expires.

// uploadTTL is how long an upload survives without being appended to,
// polled, or resolved into a plan.
const uploadTTL = 15 * time.Minute

// UploadStatus is the JSON body reported by every upload endpoint.
type UploadStatus struct {
	// ID names the upload; pass it as src_upload/trg_upload in a plan
	// registration.
	ID string `json:"upload_id"`
	// Words is the declared total float64 word count.
	Words int `json:"words"`
	// ReceivedWords is the committed contiguous prefix; resume from
	// this offset.
	ReceivedWords int `json:"received_words"`
	// Complete reports ReceivedWords == Words.
	Complete bool `json:"complete"`
}

// UploadCreateRequest is the JSON body of POST /v1/uploads.
type UploadCreateRequest struct {
	// Words is the total number of float64 words the upload will carry
	// (for coordinates: 3 x point count).
	Words int `json:"words"`
}

// upload is one in-flight chunked transfer.
type upload struct {
	id       string
	data     []float64
	received int
	touched  time.Time
}

func (u *upload) status() UploadStatus {
	return UploadStatus{
		ID: u.id, Words: len(u.data), ReceivedWords: u.received,
		Complete: u.received == len(u.data),
	}
}

// uploadStore owns every in-flight upload; bounded by maxBytes in
// aggregate, expiring idle entries on access (no background goroutine
// to leak).
type uploadStore struct {
	mu       sync.Mutex
	m        map[string]*upload
	seq      int64
	maxBytes int64
	curBytes int64
}

func newUploadStore(maxBytes int64) *uploadStore {
	return &uploadStore{m: make(map[string]*upload), maxBytes: maxBytes}
}

// purgeLocked drops uploads idle past the TTL, releasing their bytes.
func (st *uploadStore) purgeLocked(now time.Time) {
	for id, u := range st.m {
		if now.Sub(u.touched) > uploadTTL {
			st.curBytes -= int64(len(u.data)) * 8
			delete(st.m, id)
		}
	}
}

// create allocates a new upload of the declared word count.
func (st *uploadStore) create(words int) (UploadStatus, error) {
	if words <= 0 {
		return UploadStatus{}, badRequest("upload words must be positive, got %d", words)
	}
	bytes := int64(words) * 8
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked(time.Now())
	if bytes > st.maxBytes || st.curBytes+bytes > st.maxBytes {
		return UploadStatus{}, tooLarge("upload of %d words (%d bytes) exceeds the upload budget (%d of %d bytes free)",
			words, bytes, st.maxBytes-st.curBytes, st.maxBytes)
	}
	st.seq++
	u := &upload{
		id:      "up" + strconv.FormatInt(st.seq, 36) + "-" + strconv.FormatInt(time.Now().UnixNano()%1e9, 36),
		data:    make([]float64, words),
		touched: time.Now(),
	}
	st.m[u.id] = u
	st.curBytes += bytes
	return u.status(), nil
}

// get looks an upload up, refreshing its TTL.
func (st *uploadStore) get(id string) (*upload, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked(time.Now())
	u, ok := st.m[id]
	if !ok {
		return nil, errs.Newf(errs.CodePlanNotFound, "service: upload not found: %q (expired or never created)", id)
	}
	u.touched = time.Now()
	return u, nil
}

// append commits chunk at word offset off. Offsets at or before the
// committed prefix are idempotent (the overlap is re-written with
// identical data by a retrying client; only the new suffix extends the
// prefix); an offset past the prefix is a gap and is rejected.
func (st *uploadStore) append(id string, off uint64, chunk []float64) (UploadStatus, error) {
	u, err := st.get(id)
	if err != nil {
		return UploadStatus{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if off > uint64(u.received) {
		return UploadStatus{}, badRequest("upload %s: chunk offset %d leaves a gap (received %d words); resume at the received offset", id, off, u.received)
	}
	end := off + uint64(len(chunk))
	if end > uint64(len(u.data)) {
		return UploadStatus{}, badRequest("upload %s: chunk [%d, %d) exceeds the declared %d words", id, off, end, len(u.data))
	}
	copy(u.data[off:end], chunk)
	if int(end) > u.received {
		u.received = int(end)
	}
	return u.status(), nil
}

// take resolves a completed upload's data for plan registration. The
// upload stays resident (TTL refreshed) so retried registrations and
// sibling plans can reuse it.
func (st *uploadStore) take(id string) ([]float64, error) {
	u, err := st.get(id)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if u.received != len(u.data) {
		return nil, badRequest("upload %s is incomplete: %d of %d words received", id, u.received, len(u.data))
	}
	return u.data, nil
}

// --- HTTP handlers ---

func (s *Server) handleUploadCreate(w http.ResponseWriter, r *http.Request) {
	var req UploadCreateRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := s.svc.uploads.create(req.Words)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleUploadChunk(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !isFrameRequest(r) {
		writeError(w, badRequest("upload chunks must be %s (got %q)", ContentTypeFrame, r.Header.Get("Content-Type")))
		return
	}
	body, ok := readFrameBody(w, r)
	if !ok {
		return
	}
	s.svc.m.wireEncoding.With("frame").Inc()
	off, chunk, err := decodeUploadChunkFrame(body)
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := s.svc.uploads.append(id, off, chunk)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleUploadStatus(w http.ResponseWriter, r *http.Request) {
	u, err := s.svc.uploads.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	s.svc.uploads.mu.Lock()
	st := u.status()
	s.svc.uploads.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

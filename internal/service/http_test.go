package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPRoundTrip(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(3, 150)

	// Register: first time 201, second time 200 + cached.
	resp := postJSON(t, ts.URL+"/v1/plans", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", resp.StatusCode)
	}
	info := decode[PlanInfo](t, resp)
	if info.ID == "" || info.Cached {
		t.Fatalf("fresh plan info = %+v", info)
	}
	resp = postJSON(t, ts.URL+"/v1/plans", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register status = %d, want 200", resp.StatusCode)
	}
	if again := decode[PlanInfo](t, resp); !again.Cached || again.ID != info.ID {
		t.Fatalf("re-register info = %+v, want cached id %s", again, info.ID)
	}

	// Evaluate against the registered plan.
	den := densitiesFor(req, info.SourceDim)
	resp = postJSON(t, ts.URL+"/v1/plans/"+info.ID+"/evaluate", EvaluateRequest{Densities: den})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status = %d, want 200", resp.StatusCode)
	}
	ev := decode[EvaluateResponse](t, resp)
	if len(ev.Potentials) != info.TrgCount*info.TargetDim {
		t.Fatalf("potentials length %d, want %d", len(ev.Potentials), info.TrgCount*info.TargetDim)
	}

	// One-shot evaluation hits the same cached plan and matches.
	resp = postJSON(t, ts.URL+"/v1/evaluate", OneShotRequest{PlanRequest: req, Densities: den})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one-shot status = %d, want 200", resp.StatusCode)
	}
	once := decode[EvaluateResponse](t, resp)
	if once.PlanID != info.ID {
		t.Errorf("one-shot used plan %s, want cached %s", once.PlanID, info.ID)
	}
	if e := relErr(once.Potentials, ev.Potentials); e != 0 {
		t.Errorf("one-shot result differs from plan evaluate by %.3e", e)
	}
}

func TestHTTPEvaluateBatch(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(6, 120)
	resp := postJSON(t, ts.URL+"/v1/plans", req)
	info := decode[PlanInfo](t, resp)

	den := densitiesFor(req, info.SourceDim)
	single := decode[EvaluateResponse](t, postJSON(t,
		ts.URL+"/v1/plans/"+info.ID+"/evaluate", EvaluateRequest{Densities: den}))

	resp = postJSON(t, ts.URL+"/v1/plans/"+info.ID+"/evaluate_batch",
		EvaluateBatchRequest{Densities: [][]float64{den, den}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	batch := decode[EvaluateBatchResponse](t, resp)
	if len(batch.Potentials) != 2 {
		t.Fatalf("batch returned %d vectors, want 2", len(batch.Potentials))
	}
	for q, pot := range batch.Potentials {
		if e := relErr(pot, single.Potentials); e > 1e-11 {
			t.Errorf("batch vector %d differs from single evaluation: %.3e", q, e)
		}
	}

	// Empty batch -> 400; unknown plan -> 404.
	resp = postJSON(t, ts.URL+"/v1/plans/"+info.ID+"/evaluate_batch", EvaluateBatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/plans/deadbeef/evaluate_batch",
		EvaluateBatchRequest{Densities: [][]float64{den}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown plan batch status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPHealthAndVars(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	h := decode[HealthResponse](t, resp)
	if h.Status != "ok" {
		t.Errorf("healthz status field = %q", h.Status)
	}

	if _, err := svc.Register(bg, cloudRequest(5, 90)); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decode[map[string]json.RawMessage](t, resp)
	raw, ok := vars["kifmm"]
	if !ok {
		t.Fatalf("/debug/vars missing \"kifmm\" key; got keys %v", keys(vars))
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.PlansBuilt != 1 || m.PlansLive != 1 {
		t.Errorf("metrics after one registration: %+v", m)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestHTTPErrors(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	// Unknown plan -> 404.
	resp := postJSON(t, ts.URL+"/v1/plans/deadbeef/evaluate", EvaluateRequest{Densities: []float64{1}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown plan status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid kernel -> 400 with a JSON error envelope.
	resp = postJSON(t, ts.URL+"/v1/plans", PlanRequest{Src: []float64{0, 0, 0}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kernel status = %d, want 400", resp.StatusCode)
	}
	e := decode[errorResponse](t, resp)
	if e.Error == "" {
		t.Errorf("error envelope empty")
	}

	// Malformed JSON -> 400.
	resp, err := http.Post(ts.URL+"/v1/plans", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong method -> 405 from the mux.
	resp, err = http.Get(ts.URL + "/v1/plans")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plans status = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

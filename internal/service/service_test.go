package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	kifmm "repro"
	"repro/internal/kernels"
)

// bg is the context for test calls that exercise no cancellation.
var bg = context.Background()

// cloudRequest builds a deterministic point cloud distinct per seed.
func cloudRequest(seed, n int) PlanRequest {
	pts := make([]float64, 3*n)
	state := uint64(seed)*2654435761 + 1
	for i := range pts {
		state = state*6364136223846793005 + 1442695040888963407
		pts[i] = float64(state>>11)/float64(1<<53)*2 - 1
	}
	return PlanRequest{
		Src:    pts,
		Kernel: kernels.Spec{Name: "laplace"},
		Degree: 4, MaxPoints: 40,
	}
}

func densitiesFor(req PlanRequest, dim int) []float64 {
	n := len(req.Src) / 3 * dim
	den := make([]float64, n)
	for i := range den {
		den[i] = float64(i%13)/13 + 0.1
	}
	return den
}

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

func TestSingleflightBuildsOnePlan(t *testing.T) {
	svc := New(Config{CacheSize: 4})
	req := cloudRequest(1, 600)

	const callers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	infos := make([]PlanInfo, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			infos[i], errs[i] = svc.Register(bg, req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		if infos[i].ID != infos[0].ID {
			t.Fatalf("caller %d got plan %s, caller 0 got %s", i, infos[i].ID, infos[0].ID)
		}
	}
	m := svc.Metrics()
	if m.PlansBuilt != 1 {
		t.Errorf("PlansBuilt = %d, want 1 (singleflight)", m.PlansBuilt)
	}
	if m.CacheMisses != 1 {
		t.Errorf("CacheMisses = %d, want 1", m.CacheMisses)
	}
	if m.CacheHits+m.BuildCoalesced != callers-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d",
			m.CacheHits, m.BuildCoalesced, m.CacheHits+m.BuildCoalesced, callers-1)
	}

	// A later identical registration is a pure cache hit.
	hitsBefore := m.CacheHits
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Errorf("re-registration not served from cache")
	}
	if m = svc.Metrics(); m.CacheHits != hitsBefore+1 {
		t.Errorf("CacheHits = %d, want %d", m.CacheHits, hitsBefore+1)
	}
	if m.PlansBuilt != 1 {
		t.Errorf("PlansBuilt grew to %d on a cache hit", m.PlansBuilt)
	}
}

func TestEvaluateMatchesDirect(t *testing.T) {
	svc := New(Config{})
	req := cloudRequest(2, 400)
	req.Degree = 6

	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if info.SourceDim != 1 || info.TargetDim != 1 {
		t.Fatalf("laplace dims = %d/%d, want 1/1", info.SourceDim, info.TargetDim)
	}
	if info.Kernel.Name != "laplace" {
		t.Errorf("plan info kernel echo = %+v, want laplace", info.Kernel)
	}

	// The kernel echo is normalized: defaulted parameters come back
	// explicit, independent of how the client spelled the spec.
	stokes, err := svc.Register(bg, PlanRequest{Src: req.Src, Kernel: kernels.Spec{Name: "stokes"}})
	if err != nil {
		t.Fatal(err)
	}
	if mu := stokes.Kernel.Params["mu"]; mu != 1 {
		t.Errorf("stokes echo params = %v, want explicit mu=1", stokes.Kernel.Params)
	}
	den := densitiesFor(req, info.SourceDim)
	got, st, err := svc.Evaluate(bg, info.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalNanos <= 0 {
		t.Errorf("evaluation stats empty: %+v", st)
	}

	k, err := kernels.FromSpec(req.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kifmm.Direct(k, req.Src, req.Src, den)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(got, want); e > 1e-4 {
		t.Errorf("relative error vs direct summation %.3e, want <= 1e-4 at degree 6", e)
	}

	m := svc.Metrics()
	if m.Evaluations != 1 {
		t.Errorf("Evaluations = %d, want 1", m.Evaluations)
	}
	if m.Stages.TotalNanos <= 0 {
		t.Errorf("stage totals not recorded: %+v", m.Stages)
	}
}

func TestLRUEviction(t *testing.T) {
	svc := New(Config{CacheSize: 2})

	var ids []string
	for seed := 1; seed <= 3; seed++ {
		info, err := svc.Register(bg, cloudRequest(seed, 120))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if n := svc.Plans(); n != 2 {
		t.Errorf("live plans = %d, want capacity 2", n)
	}
	m := svc.Metrics()
	if m.PlansEvicted != 1 {
		t.Errorf("PlansEvicted = %d, want 1", m.PlansEvicted)
	}

	// The oldest plan is gone; the two recent ones still evaluate.
	den := densitiesFor(cloudRequest(1, 120), 1)
	if _, _, err := svc.Evaluate(bg, ids[0], den); !errors.Is(err, ErrPlanNotFound) {
		t.Errorf("evicted plan: err = %v, want ErrPlanNotFound", err)
	}
	for _, id := range ids[1:] {
		if _, _, err := svc.Evaluate(bg, id, den); err != nil {
			t.Errorf("live plan %s: %v", id, err)
		}
	}

	// Touching the LRU order changes the next victim: re-register plan 2
	// (hit), then a fresh plan must evict plan 3.
	if _, err := svc.Register(bg, cloudRequest(2, 120)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register(bg, cloudRequest(4, 120)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Evaluate(bg, ids[2], den); !errors.Is(err, ErrPlanNotFound) {
		t.Errorf("plan 3 should be the LRU victim, err = %v", err)
	}
	if _, _, err := svc.Evaluate(bg, ids[1], den); err != nil {
		t.Errorf("plan 2 was touched and must survive: %v", err)
	}
}

func TestConcurrentEvaluations(t *testing.T) {
	svc := New(Config{MaxWorkers: 4})

	// Two plans; hammer both concurrently and check every result against
	// a per-plan reference. Calls sharing a plan run concurrently
	// (evaluation is read-only on plan state); the pool bounds them.
	type fixture struct {
		id   string
		den  []float64
		want []float64
	}
	var fixtures []fixture
	for seed := 1; seed <= 2; seed++ {
		req := cloudRequest(seed, 200)
		info, err := svc.Register(bg, req)
		if err != nil {
			t.Fatal(err)
		}
		den := densitiesFor(req, 1)
		k, _ := kernels.FromSpec(req.Kernel)
		want, err := kifmm.Direct(k, req.Src, req.Src, den)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{info.ID, den, want})
	}

	const rounds = 6
	var wg sync.WaitGroup
	errc := make(chan error, 2*rounds)
	for _, f := range fixtures {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(f fixture) {
				defer wg.Done()
				got, _, err := svc.Evaluate(bg, f.id, f.den)
				if err != nil {
					errc <- err
					return
				}
				if e := relErr(got, f.want); e > 1e-2 {
					errc <- fmt.Errorf("plan %s: error %.3e under concurrency", f.id, e)
				}
			}(f)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if m := svc.Metrics(); m.Evaluations != 2*rounds {
		t.Errorf("Evaluations = %d, want %d", m.Evaluations, 2*rounds)
	}
}

// TestConcurrentSharedPlanIdentical hammers ONE cached plan from many
// goroutines — the headline many-clients-one-geometry workload — and
// requires every result to be bitwise identical to an undisturbed
// sequential evaluation. Run under -race this is the canary for any
// evaluation-path mutation of shared plan state.
func TestConcurrentSharedPlanIdentical(t *testing.T) {
	svc := New(Config{MaxWorkers: 8})
	req := cloudRequest(3, 500)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)
	want, _, err := svc.Evaluate(bg, info.ID, den)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	start := make(chan struct{})
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			got, st, err := svc.Evaluate(bg, info.ID, den)
			if err != nil {
				errc <- err
				return
			}
			if st.TotalNanos <= 0 {
				errc <- fmt.Errorf("caller %d: empty per-call stats", c)
			}
			for i := range got {
				if got[i] != want[i] {
					errc <- fmt.Errorf("caller %d: result differs at %d under concurrency", c, i)
					return
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEvaluateBatch: the batch path must agree with per-vector
// evaluations and count one evaluation per vector in the metrics.
func TestEvaluateBatch(t *testing.T) {
	svc := New(Config{})
	req := cloudRequest(4, 300)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	dens := make([][]float64, k)
	want := make([][]float64, k)
	for q := 0; q < k; q++ {
		dens[q] = densitiesFor(req, info.SourceDim)
		for i := range dens[q] {
			dens[q][i] += float64(q)
		}
		pot, _, err := svc.Evaluate(bg, info.ID, dens[q])
		if err != nil {
			t.Fatal(err)
		}
		want[q] = pot
	}
	evalsBefore := svc.Metrics().Evaluations

	pots, st, err := svc.EvaluateBatch(bg, info.ID, dens)
	if err != nil {
		t.Fatal(err)
	}
	if len(pots) != k {
		t.Fatalf("got %d potential vectors, want %d", len(pots), k)
	}
	if st.TotalNanos <= 0 {
		t.Errorf("batch stats empty: %+v", st)
	}
	for q := range pots {
		if e := relErr(pots[q], want[q]); e > 1e-11 {
			t.Errorf("batch vector %d differs from single evaluation: %.3e", q, e)
		}
	}
	if got := svc.Metrics().Evaluations - evalsBefore; got != k {
		t.Errorf("batch of %d counted %d evaluations", k, got)
	}

	// Validation: empty batch, ragged vector, unknown plan, batch bomb.
	if _, _, err := svc.EvaluateBatch(bg, info.ID, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty batch: err = %v, want ErrBadRequest", err)
	}
	if _, _, err := svc.EvaluateBatch(bg, info.ID, [][]float64{dens[0], {1}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("ragged batch: err = %v, want ErrBadRequest", err)
	}
	if _, _, err := svc.EvaluateBatch(bg, "no-such-plan", dens); !errors.Is(err, ErrPlanNotFound) {
		t.Errorf("unknown plan: err = %v, want ErrPlanNotFound", err)
	}
	huge := make([][]float64, maxBatchSize+1)
	for i := range huge {
		huge[i] = dens[0]
	}
	if _, _, err := svc.EvaluateBatch(bg, info.ID, huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized batch: err = %v, want ErrTooLarge (413)", err)
	}
}

// TestBytesBoundedEviction: the cache must evict by summed estimated
// footprint, not only by plan count.
func TestBytesBoundedEviction(t *testing.T) {
	probe := New(Config{})
	first, err := probe.Register(bg, cloudRequest(1, 150))
	if err != nil {
		t.Fatal(err)
	}
	if first.FootprintBytes <= 0 {
		t.Fatalf("plan footprint estimate = %d, want > 0", first.FootprintBytes)
	}

	// Budget for ~1.5 equally sized plans: the second registration must
	// evict the first even though the count bound (32) is far away.
	svc := New(Config{CacheBytes: first.FootprintBytes * 3 / 2})
	a, err := svc.Register(bg, cloudRequest(1, 150))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register(bg, cloudRequest(2, 150)); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.PlansLive != 1 || m.PlansEvicted != 1 {
		t.Errorf("live=%d evicted=%d after exceeding byte budget, want 1/1", m.PlansLive, m.PlansEvicted)
	}
	if m.PlansBytes > svc.cfg.CacheBytes {
		t.Errorf("PlansBytes = %d exceeds budget %d", m.PlansBytes, svc.cfg.CacheBytes)
	}
	den := densitiesFor(cloudRequest(1, 150), 1)
	if _, _, err := svc.Evaluate(bg, a.ID, den); !errors.Is(err, ErrPlanNotFound) {
		t.Errorf("byte-evicted plan: err = %v, want ErrPlanNotFound", err)
	}

	// A single plan larger than the whole budget is still retained (the
	// registering caller holds it anyway).
	tiny := New(Config{CacheBytes: 1})
	info, err := tiny.Register(bg, cloudRequest(3, 150))
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Plans() != 1 {
		t.Errorf("oversized plan not retained, live = %d", tiny.Plans())
	}
	if _, _, err := tiny.Evaluate(bg, info.ID, den); err != nil {
		t.Errorf("oversized-but-newest plan must evaluate: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	svc := New(Config{})
	cases := []struct {
		req  PlanRequest
		want error
	}{
		{PlanRequest{Kernel: kernels.Spec{Name: "laplace"}}, ErrBadRequest},                                              // no geometry
		{PlanRequest{Src: []float64{1, 2}, Kernel: kernels.Spec{Name: "laplace"}}, ErrBadRequest},                        // not 3k
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "nope"}}, kifmm.ErrUnknownKernel},               // bad kernel
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "laplace"}, Backend: "quantum"}, ErrBadRequest}, // bad backend
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "laplace"}, Degree: 1000000}, ErrTooLarge},      // degree bomb
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "laplace"}, Degree: -1}, ErrBadRequest},
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "laplace"}, MaxPoints: -5}, ErrBadRequest},
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "laplace"}, MaxDepth: 99}, ErrTooLarge},
		{PlanRequest{Src: []float64{1, 2, 3}, Kernel: kernels.Spec{Name: "laplace"}, PinvTol: 2}, ErrBadRequest},
		{PlanRequest{Src: []float64{1e308, 0, 0, -1e308, 0, 0}, Kernel: kernels.Spec{Name: "laplace"}}, ErrBadRequest},            // bounding cube overflows
		{PlanRequest{Src: []float64{math.NaN(), 0, 0}, Kernel: kernels.Spec{Name: "laplace"}}, ErrBadRequest},                     // NaN coordinate
		{PlanRequest{Src: []float64{0, 0, 0}, Trg: []float64{1e308, 0, 0}, Kernel: kernels.Spec{Name: "laplace"}}, ErrBadRequest}, // bad trg
	}
	for i, tc := range cases {
		if _, err := svc.Register(bg, tc.req); !errors.Is(err, tc.want) {
			t.Errorf("case %d: err = %v, want %v", i, err, tc.want)
		}
	}

	req := cloudRequest(1, 90)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Evaluate(bg, info.ID, make([]float64, 7)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad density length: err = %v, want ErrBadRequest", err)
	}
}

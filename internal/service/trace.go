package service

import "context"

// requestMeta carries per-request identity from the HTTP middleware to
// the evaluation path: the request id and — when the caller sent a W3C
// traceparent — the caller's span id, which becomes the parent of the
// evaluate span. The trace context itself travels separately via
// obs.ContextWithTrace.
type requestMeta struct {
	id         string
	parentSpan string
}

type requestMetaKey struct{}

// contextWithRequestMeta stashes the request identity in ctx.
func contextWithRequestMeta(ctx context.Context, m requestMeta) context.Context {
	return context.WithValue(ctx, requestMetaKey{}, m)
}

// requestMetaFrom recovers the request identity, if any.
func requestMetaFrom(ctx context.Context) (requestMeta, bool) {
	m, ok := ctx.Value(requestMetaKey{}).(requestMeta)
	return m, ok
}

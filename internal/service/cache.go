package service

import (
	"container/list"

	kifmm "repro"
	"repro/internal/kernels"
)

// plan is a prepared evaluator plus the immutable facts needed to
// validate and describe requests against it. Evaluation is read-only on
// the underlying evaluator (the FMM engine keeps all per-call state on
// the stack of the call), so a plan admits any number of concurrent
// evaluations without locking.
type plan struct {
	id        string
	ev        *kifmm.Evaluator
	spec      kernels.Spec
	srcCount  int
	trgCount  int
	sourceDim int
	targetDim int
	buildNS   int64
}

// footprint is the plan's live estimated resident size. It is read on
// demand (not snapshotted at build time) because operator attribution
// is refcounted across plans: lazily built operators appear after the
// first evaluation, and a sharing plan's eviction shifts bytes to the
// survivors.
func (p *plan) footprint() int64 { return p.ev.FootprintBytes() }

func (p *plan) info(cached bool) PlanInfo {
	inf := PlanInfo{
		ID: p.id, Cached: cached, Kernel: p.spec,
		Boxes: p.ev.Boxes(), Depth: p.ev.Depth(),
		SrcCount: p.srcCount, TrgCount: p.trgCount,
		SourceDim: p.sourceDim, TargetDim: p.targetDim,
		FootprintBytes: p.footprint(),
	}
	if !cached {
		inf.BuildNanos = p.buildNS
	}
	return inf
}

// planCache is an LRU map from plan key to prepared plan, bounded by
// plan count and (optionally) by the summed estimated plan footprint.
// It is not goroutine safe; the Service guards it with its own mutex.
type planCache struct {
	capacity int
	maxBytes int64      // 0 = no bytes bound
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

func newPlanCache(capacity int, maxBytes int64) *planCache {
	return &planCache{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the plan and marks it most recently used.
func (c *planCache) get(id string) (*plan, bool) {
	el, ok := c.items[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*plan), true
}

// add inserts p as most recently used and returns the evicted (and
// displaced) plans, if the count or bytes bound was exceeded; the
// caller owns closing them. The newest plan is always retained even
// when it alone exceeds the bytes bound — callers hold a direct
// reference anyway (register returns the plan), so evicting it
// immediately would only break follow-up requests by id. Adding an
// existing key refreshes it and hands back the displaced plan.
//
// The bytes bound is checked against the live footprints: shared
// operator bytes are refcounted across plans, so the total is the real
// estimated residency, not the old once-per-plan double count.
func (c *planCache) add(p *plan) []*plan {
	if el, ok := c.items[p.id]; ok {
		c.ll.MoveToFront(el)
		displaced := el.Value.(*plan)
		el.Value = p
		if displaced == p {
			return nil
		}
		displaced.ev.Close()
		return []*plan{displaced}
	}
	c.items[p.id] = c.ll.PushFront(p)
	var victims []*plan
	for c.ll.Len() > 1 && (c.ll.Len() > c.capacity || (c.maxBytes > 0 && c.totalBytes() > c.maxBytes)) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		victim := oldest.Value.(*plan)
		delete(c.items, victim.id)
		victim.ev.Close()
		victims = append(victims, victim)
	}
	return victims
}

func (c *planCache) len() int { return c.ll.Len() }

// totalBytes sums the live estimated footprints of the cached plans.
func (c *planCache) totalBytes() int64 {
	var b int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		b += el.Value.(*plan).footprint()
	}
	return b
}

package service

import (
	"container/list"
	"sync"

	kifmm "repro"
	"repro/internal/kernels"
)

// plan is a prepared evaluator plus the immutable facts needed to
// validate and describe requests against it.
type plan struct {
	id        string
	ev        *kifmm.Evaluator
	spec      kernels.Spec
	srcCount  int
	trgCount  int
	sourceDim int
	targetDim int
	buildNS   int64

	// mu serializes Evaluate calls that share this evaluator; the
	// underlying fmm.Evaluator mutates per-call state (stats), so a plan
	// admits one evaluation at a time while distinct plans run
	// concurrently under the service worker pool.
	mu sync.Mutex
}

func (p *plan) info(cached bool) PlanInfo {
	inf := PlanInfo{
		ID: p.id, Cached: cached, Kernel: p.spec,
		Boxes: p.ev.Boxes(), Depth: p.ev.Depth(),
		SrcCount: p.srcCount, TrgCount: p.trgCount,
		SourceDim: p.sourceDim, TargetDim: p.targetDim,
	}
	if !cached {
		inf.BuildNanos = p.buildNS
	}
	return inf
}

// planCache is an LRU map from plan key to prepared plan. It is not
// goroutine safe; the Service guards it with its own mutex.
type planCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the plan and marks it most recently used.
func (c *planCache) get(id string) (*plan, bool) {
	el, ok := c.items[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*plan), true
}

// add inserts p as most recently used and returns the evicted plan, if
// the cache was at capacity. Adding an existing key just refreshes it.
func (c *planCache) add(p *plan) *plan {
	if el, ok := c.items[p.id]; ok {
		c.ll.MoveToFront(el)
		el.Value = p
		return nil
	}
	c.items[p.id] = c.ll.PushFront(p)
	if c.ll.Len() <= c.capacity {
		return nil
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	victim := oldest.Value.(*plan)
	delete(c.items, victim.id)
	return victim
}

func (c *planCache) len() int { return c.ll.Len() }

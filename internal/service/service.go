package service

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	kifmm "repro"
	"repro/internal/cluster"
	"repro/internal/errs"
	"repro/internal/fmm"
	"repro/internal/kernels"
	"repro/internal/morton"
	"repro/internal/obs"
)

// The service speaks the kifmm error taxonomy (internal/errs): every
// error it returns carries a machine-readable code the HTTP layer maps
// to a status and puts on the wire, so the Go client can reconstruct
// the identical typed error. The aliases below keep the familiar names;
// they are the taxonomy sentinels, usable as errors.Is targets.
var (
	// ErrPlanNotFound reports an evaluation against an unknown (or
	// evicted) plan id; HTTP 404.
	ErrPlanNotFound = errs.ErrPlanNotFound
	// ErrBadRequest is client-side input error (invalid_input); HTTP 400.
	ErrBadRequest = errs.ErrInvalidInput
	// ErrTooLarge reports a request exceeding a configured size bound
	// (body bytes, option caps, batch width); HTTP 413.
	ErrTooLarge = errs.ErrPlanTooLarge
	// ErrInternal wraps server-side failures (e.g. a recovered panic
	// during plan construction); HTTP 500 so monitoring sees a server
	// defect, not a client mistake.
	ErrInternal = errs.ErrInternal
)

func badRequest(format string, args ...any) error {
	return errs.Newf(errs.CodeInvalidInput, "service: "+format, args...)
}

func tooLarge(format string, args ...any) error {
	return errs.Newf(errs.CodePlanTooLarge, "service: "+format, args...)
}

// Config sizes the service.
type Config struct {
	// CacheSize is the maximum number of cached plans (default 32).
	// Eviction is LRU; an evicted plan finishes in-flight evaluations
	// but is no longer addressable by id.
	CacheSize int
	// CacheBytes additionally bounds the summed estimated footprint
	// (tree + cached operators) of cached plans; 0 means no bytes
	// bound. A near-body-limit geometry can pin ~GBs of operators per
	// plan, so byte bounds are the defense the count bound alone is
	// not. The most recent plan is always retained.
	CacheBytes int64
	// MaxWorkers is the lane capacity of the service's shared elastic
	// pool (default GOMAXPROCS) — the total intra-evaluation
	// parallelism across all concurrent requests. Unlike the old
	// static Workers x EvalWorkers split, the width of each request is
	// decided at admission by current load: a lone evaluation on an
	// idle server is granted up to MaxWorkers lanes, while under
	// saturation every request degrades toward MinLanePerEval and
	// queues once even that floor is unavailable. Running evaluations
	// shed revoked lanes at chunk boundaries, so a long sweep shrinks
	// as new requests arrive. Granted widths never change results
	// (bitwise).
	MaxWorkers int
	// MinLanePerEval is the admission floor (default 1): every
	// evaluation gets at least this many lanes once admitted and is
	// never revoked below it, bounding concurrent evaluations at
	// MaxWorkers/MinLanePerEval with the excess queuing. The default
	// of 1 maximizes throughput; raise it to bound how far per-request
	// latency degrades under load.
	MinLanePerEval int
	// TraceRing is how many recent evaluation span trees are retained
	// for GET /v1/evals/recent (default 64). Memory is bounded: the
	// ring holds at most this many finished trees, each a few spans
	// per tree level.
	TraceRing int
	// Cluster, when non-nil, makes this service a cluster coordinator:
	// one-shot evaluations with at least ClusterMinPoints sources (and
	// default targets) fan out across the connected workers instead of
	// running on the local engine. Plan-based endpoints always run
	// locally — the plan cache is a single-node amortization.
	Cluster *cluster.Coordinator
	// ClusterMinPoints is the source-count threshold at which one-shot
	// evaluations route to the cluster (default 8192). Ignored when
	// Cluster is nil.
	ClusterMinPoints int
	// UploadBytes bounds the aggregate size of in-flight chunked
	// geometry uploads (default 1 GiB). Each upload is pre-sized at
	// creation; uploads idle past their TTL release their budget.
	UploadBytes int64
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 32
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MinLanePerEval <= 0 {
		c.MinLanePerEval = 1
	}
	if c.MinLanePerEval > c.MaxWorkers {
		c.MinLanePerEval = c.MaxWorkers
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 64
	}
	if c.ClusterMinPoints <= 0 {
		c.ClusterMinPoints = 8192
	}
	if c.UploadBytes <= 0 {
		c.UploadBytes = 1 << 30
	}
	return c
}

// buildCall is one in-flight plan construction; concurrent Register
// calls for the same key wait on done instead of building again.
//
// The build itself runs on its own goroutine under a context detached
// from every caller: each interested caller (the initiator and every
// coalesced waiter) holds a reference, and only when the last of them
// walks away is the build cancelled. An initiator disconnect therefore
// no longer kills the build for surviving waiters — they get the plan,
// not a cancellation error and a wasted rebuild.
type buildCall struct {
	done chan struct{}
	plan *plan
	err  error

	mu       sync.Mutex
	waiters  int
	orphaned bool               // waiters hit 0: the build is being cancelled
	cancel   context.CancelFunc // cancels the detached build context
}

// join registers interest in the build's outcome. It reports false when
// the call is already orphaned (every earlier waiter gave up and the
// build's cancellation is in flight) — the caller must start a fresh
// build instead of inheriting a doomed one.
func (c *buildCall) join() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.orphaned {
		return false
	}
	c.waiters++
	return true
}

// leave withdraws interest; the last waiter out cancels the build.
func (c *buildCall) leave() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waiters--
	if c.waiters == 0 {
		c.orphaned = true
		c.cancel()
	}
}

// Service owns the plan cache, the singleflight build table and the
// elastic evaluation pool. It is safe for concurrent use.
type Service struct {
	cfg Config

	mu       sync.Mutex
	cache    *planCache
	building map[string]*buildCall

	// buildBarrier, when non-nil, runs at the start of every build
	// goroutine — a test seam for orchestrating singleflight scenarios
	// (block a build until waiters have joined or cancelled).
	buildBarrier func(key string)

	// pool is the elastic lane pool every plan of this service shares:
	// evaluation admission happens inside the engine (EvaluateCtx
	// leases its width here) and plan builds are admitted through the
	// same pool at width 1, so builds and evaluations together never
	// oversubscribe MaxWorkers lanes.
	pool *kifmm.Pool

	// m is the observability core: every service counter, gauge and
	// histogram lives in its registry (internal/obs), rendered as
	// Prometheus text at GET /metrics and mirrored into the legacy
	// /debug/vars snapshot by Metrics().
	m *metrics

	// spans retains recent evaluation span trees for GET
	// /v1/evals/recent; bounded (Config.TraceRing).
	spans *obs.SpanRing

	// uploads holds in-flight chunked geometry uploads (see uploads.go);
	// bounded by Config.UploadBytes.
	uploads *uploadStore
}

// New returns a ready Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	pool := kifmm.NewPool(cfg.MaxWorkers)
	pool.SetMinGrant(cfg.MinLanePerEval)
	s := &Service{
		cfg:      cfg,
		cache:    newPlanCache(cfg.CacheSize, cfg.CacheBytes),
		building: make(map[string]*buildCall),
		pool:     pool,
		spans:    obs.NewSpanRing(cfg.TraceRing),
		uploads:  newUploadStore(cfg.UploadBytes),
	}
	s.m = newMetrics(s)
	pool.SetAcquireObserver(func(wait time.Duration, _ int) {
		s.m.leaseWaitSeconds.Observe(wait.Seconds())
	})
	return s
}

// MetricsRegistry exposes the service's observability registry — the
// source GET /metrics renders and tests introspect.
func (s *Service) MetricsRegistry() *obs.Registry { return s.m.reg }

// RecentSpans returns up to n recent evaluation span trees, newest
// first (n <= 0 means all retained).
func (s *Service) RecentSpans(n int) []*obs.Span { return s.spans.Recent(n) }

// Register resolves req to a cached plan or builds one, coalescing
// concurrent builds of the same key into a single construction. ctx
// covers the caller's wait: on a coalesced build owned by another
// caller, or on its own build (which is admitted through the elastic
// pool and abandons the expensive octree + operator setup at its next
// stage boundary when cancelled).
func (s *Service) Register(ctx context.Context, req PlanRequest) (PlanInfo, error) {
	p, cached, err := s.register(ctx, req)
	if err != nil {
		return PlanInfo{}, err
	}
	return p.info(cached), nil
}

// register is the plan-resolving core shared by Register and
// EvaluateOnce; it returns the plan itself so one-shot callers are
// immune to the plan being LRU-evicted between registration and
// evaluation.
//
// The build runs detached from any single caller's ctx (see buildCall):
// a caller's own ctx only abandons its wait, and the build is cancelled
// only when the initiator and every coalesced waiter have walked away.
func (s *Service) register(ctx context.Context, req PlanRequest) (*plan, bool, error) {
	src, trg, opt, spec, key, err := s.resolve(req)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	if p, ok := s.cache.get(key); ok {
		s.m.cacheHits.Inc()
		s.mu.Unlock()
		return p, true, nil
	}
	if c, ok := s.building[key]; ok && c.join() {
		s.m.coalesced.Inc()
		s.mu.Unlock()
		return s.await(ctx, c, true)
	}
	// No build in flight (or only an orphaned one whose cancellation is
	// racing its cleanup): start a fresh one. Replacing the map entry is
	// safe — the orphaned build's cleanup only deletes its own entry.
	s.m.cacheMisses.Inc()
	bctx, cancel := context.WithCancel(context.Background()) //lint:allow ctxfirst detached singleflight build deliberately outlives the initiating request
	c := &buildCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	s.building[key] = c
	s.mu.Unlock()

	go s.runBuild(bctx, key, c, src, trg, opt, spec)
	return s.await(ctx, c, false)
}

// await blocks until the coalesced build finishes or the caller's own
// ctx ends; giving up withdraws this caller's interest (the last one
// out cancels the build).
func (s *Service) await(ctx context.Context, c *buildCall, coalesced bool) (*plan, bool, error) {
	select {
	case <-c.done:
		if c.err != nil {
			return nil, false, c.err
		}
		return c.plan, coalesced, nil
	case <-ctx.Done():
		c.leave()
		return nil, false, errs.FromContext(ctx.Err())
	}
}

// runBuild executes one singleflight plan construction on its own
// goroutine. All cleanup — worker-slot release, building-table removal,
// closing c.done — runs in defers so a panicking build cannot leak a
// pool slot or leave waiters blocked on c.done forever. ctx is the
// detached build context, cancelled only when every interested caller
// has left.
func (s *Service) runBuild(ctx context.Context, key string, c *buildCall, src, trg []float64, opt kifmm.Options, spec kernels.Spec) {
	defer c.cancel() // release the detached context once the build settles
	defer func() {
		if r := recover(); r != nil {
			c.plan, c.err = nil, errs.Newf(errs.CodeInternal, "service: plan build panicked: %v", r)
		}
		s.mu.Lock()
		if s.building[key] == c {
			delete(s.building, key)
		}
		if c.err == nil {
			s.m.plansBuilt.Inc()
			s.m.planBuildSeconds.Observe(float64(c.plan.buildNS) / 1e9)
			// The cache closes victims as it evicts them (accounting
			// only; they stay usable for in-flight evaluations).
			s.m.evictions.Add(int64(len(s.cache.add(c.plan))))
		}
		s.mu.Unlock()
		close(c.done)
	}()
	if s.buildBarrier != nil {
		s.buildBarrier(key)
	}
	// Builds are the expensive step (octree + operator setup); admit
	// them through the same elastic pool as evaluations (one lane per
	// build) so a burst of distinct registrations cannot saturate the
	// machine. The wait honors the detached ctx — a build every caller
	// abandoned leaves the queue.
	lease, err := s.pool.Acquire(ctx, 1)
	if err != nil {
		c.err = errs.FromContext(err)
		return
	}
	defer lease.Release()
	c.plan, c.err = s.build(ctx, key, src, trg, opt, spec)
}

// resolve validates the request, computes the content-hash plan key and
// returns the normalized kernel spec alongside (build reuses it instead
// of re-deriving it from the kernel).
func (s *Service) resolve(req PlanRequest) (src, trg []float64, opt kifmm.Options, spec kernels.Spec, key string, err error) {
	src = req.Src
	// An upload reference substitutes a completed chunked upload's
	// words for inline coordinates; the plan key hashes the resolved
	// content either way, so upload-seeded and inline registrations of
	// the same geometry share one plan.
	if req.SrcUpload != "" {
		if len(src) > 0 {
			return nil, nil, opt, spec, "", badRequest("src and src_upload are mutually exclusive")
		}
		if src, err = s.uploads.take(req.SrcUpload); err != nil {
			return nil, nil, opt, spec, "", err
		}
	}
	if len(src) == 0 || len(src)%3 != 0 {
		return nil, nil, opt, spec, "", badRequest("src needs 3k > 0 coordinates, got %d", len(src))
	}
	if err := checkCoordinates("src", src); err != nil {
		return nil, nil, opt, spec, "", err
	}
	trg = req.Trg
	if req.TrgUpload != "" {
		if len(trg) > 0 {
			return nil, nil, opt, spec, "", badRequest("trg and trg_upload are mutually exclusive")
		}
		if trg, err = s.uploads.take(req.TrgUpload); err != nil {
			return nil, nil, opt, spec, "", err
		}
	}
	if len(trg) == 0 {
		trg = src
	} else if len(trg)%3 != 0 {
		return nil, nil, opt, spec, "", badRequest("trg needs 3k coordinates, got %d", len(trg))
	} else if err := checkCoordinates("trg", trg); err != nil {
		return nil, nil, opt, spec, "", err
	}
	if err := checkOptionBounds(req); err != nil {
		return nil, nil, opt, spec, "", err
	}
	opt, err = req.options()
	if err != nil {
		return nil, nil, opt, spec, "", errs.Typed(err, errs.CodeInvalidInput)
	}
	// Scheduling is server policy, not plan identity (PlanKey excludes
	// Workers and Pool): every plan shares the service pool, and each
	// evaluation may fan out to the whole machine when it is idle.
	opt.Workers = s.cfg.MaxWorkers
	opt.Pool = s.pool
	spec, err = kernels.SpecFor(opt.Kernel)
	if err != nil {
		return nil, nil, opt, spec, "", errs.Typed(err, errs.CodeInvalidInput)
	}
	key, err = kifmm.PlanKey(src, trg, opt)
	if err != nil {
		return nil, nil, opt, spec, "", errs.Typed(err, errs.CodeInvalidInput)
	}
	return src, trg, opt, spec, key, nil
}

// Option bounds enforced on network input. Surface construction costs
// grow like Degree^4 in memory and worse in time, so an uncapped degree
// from an untrusted request could wedge a worker slot near-forever;
// zero always means "library default".
const (
	maxRequestDegree    = 16
	maxRequestMaxPoints = 100000
	maxRequestMaxDepth  = morton.MaxLevel
)

// maxBatchSize bounds the number of density vectors one batch
// evaluation may carry. The engine holds one upward and one downward
// equivalent density per box per vector, so memory grows linearly in
// the batch; 256 keeps a worst-case request within the same order as
// the 256 MiB body bound.
const maxBatchSize = 256

// maxCoordinate bounds input coordinates. Tree construction computes
// the bounding-cube half width (hi-lo)/2 and squared pair distances;
// magnitudes up to 1e150 keep both finite (4e300 < MaxFloat64), while
// larger values overflow the half width to Inf, collapse every Morton
// cell to NaN and poison the cached plan with NaN operators.
const maxCoordinate = 1e150

func checkCoordinates(name string, pts []float64) error {
	for i, v := range pts {
		if math.IsNaN(v) || v < -maxCoordinate || v > maxCoordinate {
			return badRequest("%s coordinate %d is %g, want finite values in [-%g, %g]",
				name, i, v, maxCoordinate, maxCoordinate)
		}
	}
	return nil
}

func checkOptionBounds(req PlanRequest) error {
	// Negative or non-finite values are malformed input (400); values
	// beyond the caps describe a plan the server refuses to build (413,
	// plan_too_large) — distinct codes so clients can tell a typo from
	// a capacity policy.
	if req.Degree < 0 {
		return badRequest("degree %d is negative", req.Degree)
	}
	if req.Degree > maxRequestDegree {
		return tooLarge("degree %d exceeds the limit %d", req.Degree, maxRequestDegree)
	}
	if req.MaxPoints < 0 {
		return badRequest("max_points %d is negative", req.MaxPoints)
	}
	if req.MaxPoints > maxRequestMaxPoints {
		return tooLarge("max_points %d exceeds the limit %d", req.MaxPoints, maxRequestMaxPoints)
	}
	if req.MaxDepth < 0 {
		return badRequest("max_depth %d is negative", req.MaxDepth)
	}
	if req.MaxDepth > maxRequestMaxDepth {
		return tooLarge("max_depth %d exceeds the limit %d", req.MaxDepth, maxRequestMaxDepth)
	}
	if math.IsNaN(req.PinvTol) || req.PinvTol < 0 || req.PinvTol >= 1 {
		return badRequest("pinv_tol %g outside [0, 1)", req.PinvTol)
	}
	return nil
}

// build constructs the evaluator (outside the service lock: tree and
// operator setup is the expensive amortized step). The plan stores the
// normalized kernel spec resolve derived — explicit parameters
// regardless of how the registering client spelled them — so the
// PlanInfo echo is independent of registration order.
func (s *Service) build(ctx context.Context, key string, src, trg []float64, opt kifmm.Options, spec kernels.Spec) (*plan, error) {
	start := time.Now()
	ev, err := kifmm.NewEvaluatorCtx(ctx, src, trg, opt)
	if err != nil {
		// Cancellation keeps its code; anything else the library
		// rejected is client input.
		return nil, errs.Typed(err, errs.CodeInvalidInput)
	}
	return &plan{
		id: key, ev: ev, spec: spec,
		srcCount: len(src) / 3, trgCount: len(trg) / 3,
		sourceDim: opt.Kernel.SourceDim(), targetDim: opt.Kernel.TargetDim(),
		buildNS: time.Since(start).Nanoseconds(),
	}, nil
}

// lookup resolves a plan id against the cache.
func (s *Service) lookup(planID string) (*plan, error) {
	s.mu.Lock()
	p, ok := s.cache.get(planID)
	s.mu.Unlock()
	if !ok {
		return nil, errs.Newf(errs.CodePlanNotFound, "service: plan not found: %q", planID)
	}
	return p, nil
}

// Evaluate runs one density→potential evaluation on a registered plan.
// ctx covers the wait for lane admission and the evaluation itself: a
// cancellation or deadline aborts the engine sweep within one pass and
// returns the typed error (ErrCanceled / ErrDeadlineExceeded).
func (s *Service) Evaluate(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, error) {
	pot, st, _, err := s.EvaluateTraced(ctx, planID, den)
	return pot, st, err
}

// EvaluateTraced is Evaluate also returning the evaluation's span tree
// (wall-clock intervals per pass and tree level; nil on error). The
// same tree is retained in the recent-evaluations ring.
func (s *Service) EvaluateTraced(ctx context.Context, planID string, den []float64) ([]float64, EvalStats, *obs.Span, error) {
	p, err := s.lookup(planID)
	if err != nil {
		return nil, EvalStats{}, nil, err
	}
	return s.evaluatePlan(ctx, p, den)
}

// EvaluateBatch evaluates many density vectors against one registered
// plan in a single engine sweep, amortizing tree traversal and
// near-field kernel evaluations across the batch. It occupies one
// worker slot regardless of batch size.
func (s *Service) EvaluateBatch(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, error) {
	pots, st, _, err := s.EvaluateBatchTraced(ctx, planID, dens)
	return pots, st, err
}

// EvaluateBatchTraced is EvaluateBatch also returning the sweep's span
// tree (nil on error); see EvaluateTraced.
func (s *Service) EvaluateBatchTraced(ctx context.Context, planID string, dens [][]float64) ([][]float64, EvalStats, *obs.Span, error) {
	p, err := s.lookup(planID)
	if err != nil {
		return nil, EvalStats{}, nil, err
	}
	if len(dens) == 0 {
		s.m.evalErrors.Inc()
		return nil, EvalStats{}, nil, badRequest("batch needs at least one density vector")
	}
	if len(dens) > maxBatchSize {
		s.m.evalErrors.Inc()
		return nil, EvalStats{}, nil, tooLarge("batch of %d density vectors exceeds the limit %d", len(dens), maxBatchSize)
	}
	want := p.srcCount * p.sourceDim
	for q, den := range dens {
		if len(den) != want {
			s.m.evalErrors.Inc()
			return nil, EvalStats{}, nil, badRequest("densities[%d] length %d, want %d (%d sources x %d components)",
				q, len(den), want, p.srcCount, p.sourceDim)
		}
	}
	return s.runEval(ctx, p, dens)
}

// evaluatePlan validates and runs a single-vector evaluation.
func (s *Service) evaluatePlan(ctx context.Context, p *plan, den []float64) ([]float64, EvalStats, *obs.Span, error) {
	if want := p.srcCount * p.sourceDim; len(den) != want {
		s.m.evalErrors.Inc()
		return nil, EvalStats{}, nil, badRequest("densities length %d, want %d (%d sources x %d components)",
			len(den), want, p.srcCount, p.sourceDim)
	}
	pots, st, span, err := s.runEval(ctx, p, [][]float64{den})
	if err != nil {
		return nil, EvalStats{}, nil, err
	}
	return pots[0], st, span, nil
}

// runEval executes one (possibly batched) evaluation. Admission is
// lease acquisition: the engine leases the call's lane width from the
// service pool inside the traced evaluate, queueing — and honoring
// ctx — when not even MinLanePerEval lanes are free (a caller that
// disconnects while queued never occupies a lane). Evaluation is
// read-only on plan state, so concurrent calls sharing a plan need no
// per-plan serialization.
//
// Every evaluation is traced (a handful of small allocations per call):
// the finished span tree lands in the recent-evaluations ring and is
// returned so the HTTP layer can echo it on ?trace=1.
func (s *Service) runEval(ctx context.Context, p *plan, dens [][]float64) ([][]float64, EvalStats, *obs.Span, error) {
	start := time.Now()
	pots, st, span, err := func() (pots [][]float64, st fmm.Stats, span *obs.Span, err error) {
		// A panic in the numeric evaluation path becomes a typed
		// internal error (the engine's lease is released by its own
		// defer even then).
		defer func() {
			if r := recover(); r != nil {
				pots, span, err = nil, nil, errs.Newf(errs.CodeInternal, "service: evaluation panicked: %v", r)
			}
		}()
		return p.ev.EvaluateBatchTracedCtx(ctx, dens)
	}()
	if err != nil {
		if code, _ := errs.CodeOf(errs.FromContext(err)); code == errs.CodeCanceled || code == errs.CodeDeadlineExceeded {
			s.m.evalCanceled.Inc()
		} else {
			s.m.evalErrors.Inc()
		}
		return nil, EvalStats{}, nil, errs.Typed(err, errs.CodeInvalidInput)
	}
	s.m.recordEval(st, len(dens), p.trgCount, time.Since(start))
	// The tree is still private to this goroutine: attach identifying
	// attributes before publishing it to the ring makes it shared. The
	// trace attributes link the span tree to the W3C trace context the
	// request arrived under (or was assigned): the evaluate span's id,
	// its parent (the caller's span, when a traceparent was sent), and
	// the request id — the request-log ↔ /v1/evals/recent join keys.
	span.SetAttr("plan_id", p.id)
	if tc, ok := obs.TraceFromContext(ctx); ok {
		span.SetAttr("trace_id", tc.TraceID)
		span.SetAttr("span_id", tc.SpanID)
	}
	if meta, ok := requestMetaFrom(ctx); ok {
		if meta.id != "" {
			span.SetAttr("request_id", meta.id)
		}
		if meta.parentSpan != "" {
			span.SetAttr("parent_span_id", meta.parentSpan)
		}
	}
	s.spans.Add(span)
	return pots, statsWire(st), span, nil
}

// EvaluateOnce registers (or resolves) the plan and evaluates in one
// call; the plan stays cached for future requests. The evaluation runs
// against the plan returned by registration, so it cannot miss even if
// the plan is concurrently evicted from the cache.
func (s *Service) EvaluateOnce(ctx context.Context, req OneShotRequest) (PlanInfo, []float64, EvalStats, error) {
	info, pot, st, _, err := s.EvaluateOnceTraced(ctx, req)
	return info, pot, st, err
}

// EvaluateOnceTraced is EvaluateOnce also returning the evaluation's
// span tree (nil on error); see EvaluateTraced.
//
// On a coordinator (Config.Cluster), cluster-sized requests fan out
// across the connected workers transparently: same request shape, same
// response shape, no plan id (nothing is cached — the distributed
// engine rebuilds its tree per evaluation, the paper's setting).
func (s *Service) EvaluateOnceTraced(ctx context.Context, req OneShotRequest) (PlanInfo, []float64, EvalStats, *obs.Span, error) {
	if s.clusterSized(req.PlanRequest) {
		return s.evaluateCluster(ctx, req)
	}
	p, cached, err := s.register(ctx, req.PlanRequest)
	if err != nil {
		return PlanInfo{}, nil, EvalStats{}, nil, err
	}
	pot, st, span, err := s.evaluatePlan(ctx, p, req.Densities)
	if err != nil {
		return PlanInfo{}, nil, EvalStats{}, nil, err
	}
	return p.info(cached), pot, st, span, nil
}

// clusterSized reports whether a one-shot request should fan out
// across the cluster: a coordinator is configured, the geometry has at
// least ClusterMinPoints sources, and the targets default to the
// sources (the distributed engine evaluates at source points).
func (s *Service) clusterSized(req PlanRequest) bool {
	return s.cfg.Cluster != nil && len(req.Trg) == 0 &&
		len(req.Src)/3 >= s.cfg.ClusterMinPoints
}

// evaluateCluster runs one validated one-shot request through the
// cluster coordinator. Failures keep the errs taxonomy: a lost worker
// or an empty cluster surfaces as worker_lost (HTTP 503) while
// single-node plans keep serving — the degraded mode.
func (s *Service) evaluateCluster(ctx context.Context, req OneShotRequest) (PlanInfo, []float64, EvalStats, *obs.Span, error) {
	// resolve reuses the single-node validation (coordinate and option
	// bounds); the plan key it computes is unused here.
	src, _, opt, spec, _, err := s.resolve(req.PlanRequest)
	if err != nil {
		return PlanInfo{}, nil, EvalStats{}, nil, err
	}
	srcCount := len(src) / 3
	sd, td := opt.Kernel.SourceDim(), opt.Kernel.TargetDim()
	if want := srcCount * sd; len(req.Densities) != want {
		s.m.evalErrors.Inc()
		return PlanInfo{}, nil, EvalStats{}, nil, badRequest("densities length %d, want %d (%d sources x %d components)",
			len(req.Densities), want, srcCount, sd)
	}
	start := time.Now()
	pot, rep, err := s.cfg.Cluster.Evaluate(ctx, cluster.EvalRequest{
		Src: src, Den: req.Densities, Kernel: spec,
		Degree: opt.Degree, MaxPoints: opt.MaxPoints, MaxDepth: opt.MaxDepth,
		Backend: int(opt.Backend), PinvTol: opt.PinvTol,
	})
	if err != nil {
		if code, _ := errs.CodeOf(errs.FromContext(err)); code == errs.CodeCanceled || code == errs.CodeDeadlineExceeded {
			s.m.evalCanceled.Inc()
		} else {
			s.m.evalErrors.Inc()
		}
		return PlanInfo{}, nil, EvalStats{}, nil, errs.Typed(err, errs.CodeInternal)
	}
	wall := time.Since(start)
	s.m.evaluations.Inc()
	s.m.evalBatches.Inc()
	s.m.evalBatchSize.Observe(1)
	s.m.evalSeconds.Observe(wall.Seconds())
	if srcCount > 0 {
		s.m.evalNsPerPoint.Set(float64(wall.Nanoseconds()) / float64(srcCount))
	}
	// The cluster's own trace is the merged per-rank timeline; the span
	// tree exposed through /v1/evals/recent carries the fan-out summary
	// so cluster evaluations are visible next to local ones.
	span := &obs.Span{Name: "cluster_evaluate", Start: start, Duration: wall}
	span.SetAttr("ranks", strconv.Itoa(rep.Ranks))
	span.SetAttr("workers", strconv.Itoa(rep.Workers))
	span.SetAttr("scatter_bytes", strconv.FormatInt(rep.ScatterBytes, 10))
	span.SetAttr("gather_bytes", strconv.FormatInt(rep.GatherBytes, 10))
	if tc, ok := obs.TraceFromContext(ctx); ok {
		span.SetAttr("trace_id", tc.TraceID)
		span.SetAttr("span_id", tc.SpanID)
	}
	if meta, ok := requestMetaFrom(ctx); ok && meta.id != "" {
		span.SetAttr("request_id", meta.id)
	}
	s.spans.Add(span)
	info := PlanInfo{
		Kernel: spec, SrcCount: srcCount, TrgCount: srcCount,
		SourceDim: sd, TargetDim: td,
	}
	st := EvalStats{TotalNanos: wall.Nanoseconds(), GrantedLanes: rep.Ranks}
	return info, pot, st, span, nil
}

// Plans returns the number of live cached plans.
func (s *Service) Plans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// PlansBytes returns the summed estimated footprint of cached plans.
func (s *Service) PlansBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.totalBytes()
}

// Metrics returns a consistent-enough snapshot of the service counters
// — the legacy /debug/vars "kifmm" wire shape, now a derived view of
// the obs registry (GET /metrics renders the same instruments as
// Prometheus text). Stage nanoseconds are reconstructed from the
// per-stage histogram sums, so they round through float64 seconds.
func (s *Service) Metrics() MetricsSnapshot {
	m := s.m
	up := m.stageNanos("up")
	du := m.stageNanos("down_u")
	dv := m.stageNanos("down_v")
	dw := m.stageNanos("down_w")
	dx := m.stageNanos("down_x")
	ev := m.stageNanos("eval")
	s.mu.Lock()
	live, liveBytes := s.cache.len(), s.cache.totalBytes()
	s.mu.Unlock()
	hist := make(map[string]int64)
	for w, n := range m.grantedWidth.Snapshot() {
		if n > 0 {
			hist[w] = n
		}
	}
	return MetricsSnapshot{
		MaxLanes:          s.pool.MaxWorkers(),
		MinLanePerEval:    s.cfg.MinLanePerEval,
		LanesInUse:        s.pool.LanesInUse(),
		LanesGrantedTotal: s.pool.LanesGranted(),
		GrantedWidthHist:  hist,
		CacheHits:         m.cacheHits.Value(),
		CacheMisses:       m.cacheMisses.Value(),
		PlansBuilt:        m.plansBuilt.Value(),
		PlansEvicted:      m.evictions.Value(),
		BuildCoalesced:    m.coalesced.Value(),
		PlansLive:         live,
		PlansBytes:        liveBytes,
		BuildNanos:        int64(m.planBuildSeconds.Sum() * 1e9),
		Evaluations:       m.evaluations.Value(),
		EvalBatches:       m.evalBatches.Value(),
		EvalErrors:        m.evalErrors.Value(),
		EvalCanceled:      m.evalCanceled.Value(),
		NsPerPoint:        m.evalNsPerPoint.Value(),
		Stages: EvalStats{
			UpNanos: up, DownUNanos: du, DownVNanos: dv,
			DownWNanos: dw, DownXNanos: dx, EvalNanos: ev,
			TotalNanos: up + du + dv + dw + dx + ev,
			Flops:      m.flops.Value(),
		},
	}
}

package service

import (
	"mime"
	"net/http"
	"strings"

	"repro/internal/wire"
)

// The HTTP API's binary encoding, negotiated per request:
//
//	Content-Type: application/x-kifmm-frame   binary request body
//	Accept: application/x-kifmm-frame         binary response body
//
// JSON stays the default in both directions, and error responses are
// always JSON regardless of Accept — a client that cannot decode a
// frame can always decode what went wrong.
//
// Every frame body opens with wire.FrameMagic ("KFM1" as a
// little-endian u32) so a misrouted JSON or gzip body fails fast with
// a clear error. After the magic, the per-endpoint layouts are
//
//	POST /v1/plans                       magic, raw JSON header (PlanRequest
//	                                     sans src/trg), f64s src, f64s trg
//	                                     (empty = same as src)
//	POST /v1/plans/{id}/evaluate         magic, f64s densities
//	POST /v1/plans/{id}/evaluate_batch   magic, u32 count, count x f64s
//	POST /v1/evaluate                    magic, raw JSON header, f64s src,
//	                                     f64s trg, f64s densities
//	POST /v1/uploads/{id}                magic, u64 word offset, f64s chunk
//
//	evaluate response                    magic, raw JSON meta (plan_id,
//	                                     stats, trace), f64s potentials
//	evaluate_batch response              magic, raw JSON meta, u32 count,
//	                                     count x f64s
//
// using the shared internal/wire primitives (little-endian,
// u64-count-prefixed word arrays, u32-length-prefixed raw blobs).
// float64 words are IEEE 754 bits: NaN payloads, infinities and signed
// zeros round-trip bit-exactly, which the JSON path cannot do.
//
// Every function below that carries bulk []float64 data uses only
// internal/wire — encoding/json never touches the bulk path (the
// nojsonhot analyzer enforces this); JSON headers ride through as
// opaque raw blobs for the handlers to unmarshal.

// ContentTypeFrame is the negotiated binary media type.
const ContentTypeFrame = "application/x-kifmm-frame"

// isFrameRequest reports whether the request body is the binary frame
// encoding (Content-Type media type, parameters ignored).
func isFrameRequest(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == ContentTypeFrame
}

// wantsFrameResponse reports whether the client asked for a binary
// response (Accept lists the frame media type; weights are ignored —
// listing it at all opts in).
func wantsFrameResponse(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err == nil && mt == ContentTypeFrame {
			return true
		}
	}
	return false
}

// encodingOf names a request or response body's encoding for the
// kifmm_wire_encoding_total metric.
func encodingOf(frame bool) string {
	if frame {
		return "frame"
	}
	return "json"
}

// errBadFrame is the uniform 400 for a frame body that fails to parse.
func errBadFrame(what string) error {
	return badRequest("%s: malformed %s body: %v", what, ContentTypeFrame, wire.ErrMalformed)
}

// checkMagic consumes and verifies the leading frame magic.
func checkMagic(r *wire.Reader) bool {
	return r.U32() == wire.FrameMagic && r.Err() == nil
}

// decodePlanFrame parses a plan-registration frame into the opaque
// JSON header and the bulk coordinate arrays (trg empty means "same as
// src", matching the JSON shape).
func decodePlanFrame(p []byte) (hdr []byte, src, trg []float64, err error) {
	r := wire.NewReader(p)
	if !checkMagic(r) {
		return nil, nil, nil, errBadFrame("plan")
	}
	hdr = r.Raw()
	src = r.F64s()
	trg = r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, nil, nil, errBadFrame("plan")
	}
	return hdr, src, trg, nil
}

// decodeOneShotFrame parses a one-shot evaluation frame: the plan
// header and arrays plus the density vector.
func decodeOneShotFrame(p []byte) (hdr []byte, src, trg, den []float64, err error) {
	r := wire.NewReader(p)
	if !checkMagic(r) {
		return nil, nil, nil, nil, errBadFrame("evaluate")
	}
	hdr = r.Raw()
	src = r.F64s()
	trg = r.F64s()
	den = r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, nil, nil, nil, errBadFrame("evaluate")
	}
	return hdr, src, trg, den, nil
}

// decodeEvalFrame parses an evaluate request frame into the density
// vector.
func decodeEvalFrame(p []byte) ([]float64, error) {
	r := wire.NewReader(p)
	if !checkMagic(r) {
		return nil, errBadFrame("evaluate")
	}
	den := r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, errBadFrame("evaluate")
	}
	return den, nil
}

// decodeEvalBatchFrame parses an evaluate_batch request frame into the
// density vectors.
func decodeEvalBatchFrame(p []byte) ([][]float64, error) {
	r := wire.NewReader(p)
	if !checkMagic(r) {
		return nil, errBadFrame("evaluate_batch")
	}
	n := int(r.U32())
	// Each vector costs at least its 8-byte count word, so a corrupt
	// count cannot over-allocate the outer slice.
	if r.Err() != nil || n < 0 || n > r.Remaining()/8 {
		return nil, errBadFrame("evaluate_batch")
	}
	dens := make([][]float64, n)
	for i := range dens {
		dens[i] = r.F64s()
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return nil, errBadFrame("evaluate_batch")
	}
	return dens, nil
}

// decodeUploadChunkFrame parses an upload-chunk frame: the word offset
// this chunk starts at and its float64 words.
func decodeUploadChunkFrame(p []byte) (off uint64, words []float64, err error) {
	r := wire.NewReader(p)
	if !checkMagic(r) {
		return 0, nil, errBadFrame("upload chunk")
	}
	off = r.U64()
	words = r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		return 0, nil, errBadFrame("upload chunk")
	}
	return off, words, nil
}

// encodeEvalFrame assembles an evaluate response frame from the
// marshaled JSON meta (plan_id, stats, trace) and the potentials.
func encodeEvalFrame(meta []byte, pot []float64) []byte {
	var w wire.Writer
	w.Grow(4 + 4 + len(meta) + 8 + 8*len(pot))
	w.U32(wire.FrameMagic)
	w.Raw(meta)
	w.F64s(pot)
	return w.Bytes()
}

// encodeEvalBatchFrame assembles an evaluate_batch response frame.
func encodeEvalBatchFrame(meta []byte, pots [][]float64) []byte {
	total := 0
	for _, p := range pots {
		total += 8 + 8*len(p)
	}
	var w wire.Writer
	w.Grow(4 + 4 + len(meta) + 4 + total)
	w.U32(wire.FrameMagic)
	w.Raw(meta)
	w.U32(uint32(len(pots)))
	for _, p := range pots {
		w.F64s(p)
	}
	return w.Bytes()
}

// writeFrame sends a binary frame body.
func writeFrame(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", ContentTypeFrame)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdaptiveWidthIdleFanout asserts the headline scheduling property
// at the service level: with the service otherwise idle, a single
// evaluation is granted the full pool width (> 1), visible both in the
// per-response stats and in the granted-width histogram.
func TestAdaptiveWidthIdleFanout(t *testing.T) {
	svc := New(Config{MaxWorkers: 4})
	req := cloudRequest(21, 300)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)
	_, st, err := svc.Evaluate(bg, info.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	if st.GrantedLanes != 4 {
		t.Errorf("idle evaluation granted %d lanes, want the full 4", st.GrantedLanes)
	}
	m := svc.Metrics()
	if m.MaxLanes != 4 {
		t.Errorf("MaxLanes = %d, want 4", m.MaxLanes)
	}
	if m.GrantedWidthHist["4"] != 1 {
		t.Errorf("granted-width histogram %v, want one evaluation at width 4", m.GrantedWidthHist)
	}
	// The build was admitted through the pool too (one lane), so the
	// lane counter covers build + evaluation.
	if m.LanesGrantedTotal < 5 {
		t.Errorf("LanesGrantedTotal = %d, want >= 5 (1 build + 4 eval lanes)", m.LanesGrantedTotal)
	}
	if m.LanesInUse != 0 {
		t.Errorf("LanesInUse = %d after the evaluation returned", m.LanesInUse)
	}
}

// TestAdaptiveWidthSaturation: N parallel requests on a small pool with
// a floor of 2 — every request is admitted at width >= the floor, the
// lanes-in-use gauge never exceeds the capacity, and the histogram
// records every admission.
func TestAdaptiveWidthSaturation(t *testing.T) {
	svc := New(Config{MaxWorkers: 4, MinLanePerEval: 2})
	req := cloudRequest(22, 400)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)

	// Gauge prober: lanes_in_use <= max_workers at every sample.
	probeStop := make(chan struct{})
	var probeBad atomic.Int32
	go func() {
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			if in := svc.pool.LanesInUse(); in < 0 || in > 4 {
				probeBad.Add(1)
			}
			runtime.Gosched()
		}
	}()

	const callers = 6
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, st, err := svc.Evaluate(bg, info.ID, den)
			if err != nil {
				errc <- err
				return
			}
			if st.GrantedLanes < 2 {
				errc <- fmt.Errorf("caller %d granted %d lanes, floor is 2", c, st.GrantedLanes)
			}
		}(c)
	}
	wg.Wait()
	close(probeStop)
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if probeBad.Load() != 0 {
		t.Errorf("lanes_in_use left [0, 4] %d times under saturation", probeBad.Load())
	}
	m := svc.Metrics()
	var admitted int64
	for w, n := range m.GrantedWidthHist {
		if w < "2" {
			t.Errorf("histogram has width-%s admissions below the floor: %v", w, m.GrantedWidthHist)
		}
		admitted += n
	}
	if admitted != callers {
		t.Errorf("histogram admissions %d, want %d", admitted, callers)
	}
	if m.MinLanePerEval != 2 {
		t.Errorf("MinLanePerEval = %d, want 2", m.MinLanePerEval)
	}
	if m.LanesInUse != 0 {
		t.Errorf("LanesInUse = %d after all evaluations returned", m.LanesInUse)
	}
}

// TestElasticServiceSoak is the service-level soak of the elastic
// scheduler: concurrent HTTP evaluations racing cancellations over a
// shared plan, followed by a server drain — every lane returns to the
// pool and no goroutine survives. Run under -race in CI.
func TestElasticServiceSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{MaxWorkers: 4})
	ts := httptest.NewServer(NewServer(svc))
	info, den := slowPlan(t, svc)
	if _, _, err := svc.Evaluate(bg, info.ID, den); err != nil { // warm caches
		t.Fatal(err)
	}

	callers, rounds := 6, 4
	if testing.Short() {
		callers, rounds = 4, 2
	}
	body, err := json.Marshal(EvaluateRequest{Densities: den})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, callers*rounds)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithCancel(context.Background())
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+"/v1/plans/"+info.ID+"/evaluate", bytes.NewReader(body))
				if err != nil {
					cancel()
					errc <- err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if rng.Intn(3) == 0 {
					// Some callers walk away mid-evaluation.
					go func() {
						time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
						cancel()
					}()
				}
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("caller %d round %d: status %d", c, r, resp.StatusCode)
					}
					resp.Body.Close()
				} else if !errors.Is(err, context.Canceled) {
					errc <- err
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Drain: in-flight work is done; the server must shut down cleanly,
	// every lane must be back in the pool, and the goroutine count must
	// return to baseline.
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if svc.pool.LanesInUse() == 0 && runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after drain: %d lanes still leased, goroutines %d before vs %d after",
				svc.pool.LanesInUse(), before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m := svc.Metrics(); m.Evaluations == 0 {
		t.Error("soak recorded no completed evaluations")
	}
	// Results served under elastic competition match an undisturbed
	// call bitwise (the conformance suite proves this exhaustively;
	// here it guards the service wiring).
	want, _, err := svc.Evaluate(bg, info.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := svc.Evaluate(bg, info.ID, den)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("repeated evaluation differs at %d after soak", i)
		}
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedEvaluate posts one evaluation with the given traceparent header
// ("" sends none) and returns the response's echoed Traceparent header.
func tracedEvaluate(t *testing.T, ts *httptest.Server, planID string, den []float64, traceparent string) string {
	t.Helper()
	body, _ := json.Marshal(EvaluateRequest{Densities: den})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plans/"+planID+"/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("evaluate status = %d", resp.StatusCode)
	}
	return resp.Header.Get("Traceparent")
}

func TestTraceparentAdoptedAndLinked(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(41, 200)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)

	caller := obs.TraceContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
		Flags:   1,
	}
	echoed := tracedEvaluate(t, ts, info.ID, den, caller.Traceparent())

	// The response echoes the caller's trace id with the server's own
	// span id.
	etc, err := obs.ParseTraceparent(echoed)
	if err != nil {
		t.Fatalf("echoed traceparent %q: %v", echoed, err)
	}
	if etc.TraceID != caller.TraceID {
		t.Errorf("echoed trace id = %s, want the caller's %s", etc.TraceID, caller.TraceID)
	}
	if etc.SpanID == caller.SpanID {
		t.Error("echoed span id equals the caller's; the server must mint its own")
	}

	// The evaluate span adopted the trace: trace_id, its own span id,
	// the caller's span as parent, and the request id for log joins.
	recent := svc.RecentSpans(0)
	if len(recent) != 1 {
		t.Fatalf("RecentSpans = %d entries, want 1", len(recent))
	}
	sp := recent[0]
	if sp.Attrs["trace_id"] != caller.TraceID {
		t.Errorf("span trace_id = %q, want %q", sp.Attrs["trace_id"], caller.TraceID)
	}
	if sp.Attrs["parent_span_id"] != caller.SpanID {
		t.Errorf("span parent_span_id = %q, want the caller's span %q", sp.Attrs["parent_span_id"], caller.SpanID)
	}
	if sp.Attrs["span_id"] != etc.SpanID {
		t.Errorf("span span_id = %q, want the echoed server span %q", sp.Attrs["span_id"], etc.SpanID)
	}
	if sp.Attrs["request_id"] == "" {
		t.Error("span has no request_id attribute")
	}
}

func TestTraceparentMalformedFallsBack(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(42, 200)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)

	for _, header := range []string{
		"", // absent
		"not-a-traceparent",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
	} {
		echoed := tracedEvaluate(t, ts, info.ID, den, header)
		etc, err := obs.ParseTraceparent(echoed)
		if err != nil {
			t.Fatalf("header %q: echoed traceparent %q invalid: %v", header, echoed, err)
		}
		if strings.Contains(header, etc.TraceID) {
			t.Errorf("header %q: server adopted a malformed trace id %q", header, etc.TraceID)
		}
	}
	recent := svc.RecentSpans(0)
	if len(recent) != 3 {
		t.Fatalf("RecentSpans = %d entries, want 3", len(recent))
	}
	for _, sp := range recent {
		if len(sp.Attrs["trace_id"]) != 32 {
			t.Errorf("fallback span trace_id = %q, want a generated 32-hex id", sp.Attrs["trace_id"])
		}
		if sp.Attrs["parent_span_id"] != "" {
			t.Errorf("fallback span has parent_span_id = %q, want none", sp.Attrs["parent_span_id"])
		}
	}
}

func TestRecentEvalsTraceIDFilter(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(43, 200)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)

	wanted := obs.NewTraceContext()
	tracedEvaluate(t, ts, info.ID, den, wanted.Traceparent())
	tracedEvaluate(t, ts, info.ID, den, obs.NewTraceContext().Traceparent())
	tracedEvaluate(t, ts, info.ID, den, "")

	resp, err := http.Get(ts.URL + "/v1/evals/recent?trace_id=" + wanted.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recent RecentEvalsResponse
	if err := json.NewDecoder(resp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	if recent.Total != 3 {
		t.Errorf("Total = %d, want 3 (the filter narrows traces, not the total)", recent.Total)
	}
	if len(recent.Traces) != 1 {
		t.Fatalf("filtered traces = %d, want exactly the one under %s", len(recent.Traces), wanted.TraceID)
	}
	if got := recent.Traces[0].Attrs["trace_id"]; got != wanted.TraceID {
		t.Errorf("filtered trace id = %q, want %q", got, wanted.TraceID)
	}

	// An unknown trace id filters down to an empty (not null) list.
	resp2, err := http.Get(ts.URL + "/v1/evals/recent?trace_id=ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	var empty RecentEvalsResponse
	if err := json.Unmarshal(raw, &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Traces) != 0 {
		t.Errorf("unknown trace id matched %d traces", len(empty.Traces))
	}
	if strings.Contains(string(raw), `"traces":null`) {
		t.Error("empty filter result marshals as null, want []")
	}
}

func TestSlowEvalCounterAndLog(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc,
		WithLogger(logger), WithSlowEvalThreshold(time.Nanosecond)))
	defer ts.Close()

	req := cloudRequest(44, 200)
	info, err := svc.Register(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	den := densitiesFor(req, info.SourceDim)
	tracedEvaluate(t, ts, info.ID, den, "")

	// Registration went through the Service directly, so only the HTTP
	// evaluate crossed the middleware — and at a 1ns threshold it is
	// always slow.
	if got := svc.m.evalSlow.Value(); got != 1 {
		t.Errorf("kifmm_eval_slow_total = %d, want 1", got)
	}

	// The WARN line carries slow=true, the request id and the trace id
	// (the log ↔ /v1/evals/recent join keys).
	var warn map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if rec["level"] == "WARN" {
			warn = rec
		}
	}
	if warn == nil {
		t.Fatal("no WARN log line for the slow request")
	}
	if warn["slow"] != true || warn["msg"] != "slow request" {
		t.Errorf("warn line = %v, want slow request marked slow=true", warn)
	}
	reqID, _ := warn["request_id"].(string)
	traceID, _ := warn["trace_id"].(string)
	if reqID == "" || len(traceID) != 32 {
		t.Fatalf("warn line ids: request_id=%q trace_id=%q, want both set", reqID, traceID)
	}
	sp := svc.RecentSpans(0)[0]
	if sp.Attrs["request_id"] != reqID || sp.Attrs["trace_id"] != traceID {
		t.Errorf("span ids (%q,%q) do not match the log line (%q,%q)",
			sp.Attrs["request_id"], sp.Attrs["trace_id"], reqID, traceID)
	}
}

package service

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/errs"
)

// Idempotency-Key request deduplication for the evaluation POSTs. A
// client that sets the header can safely retry a POST whose response
// was lost in transit: the first request to arrive under a key becomes
// the leader and executes normally; concurrent duplicates block until
// it settles; and later duplicates replay the stored response
// byte-for-byte (marked Idempotency-Replayed: true) without
// re-running the evaluation. Responses with 5xx statuses are not
// stored — a retry after a transient worker_lost re-executes instead
// of replaying the failure — and a waiter whose leader failed promotes
// itself to leader and re-executes.
//
// Keys are scoped to method + path, so the same key against two plans
// never collides. Entries are bounded in count and bytes and expire
// after idemTTL; oversized responses are served but not stored (a
// duplicate re-executes — dedup is best-effort above the size cap).

const (
	// idemTTL is how long a settled entry replays before expiring.
	idemTTL = 10 * time.Minute
	// idemMaxEntries bounds the table; the oldest settled entries are
	// evicted first.
	idemMaxEntries = 1024
	// idemMaxBodyBytes bounds one stored response body.
	idemMaxBodyBytes = 64 << 20
	// idemMaxTotalBytes bounds all stored response bodies together.
	idemMaxTotalBytes = 256 << 20
)

// idemEntry is one key's lifecycle: in-flight until done is closed,
// then either stored (replayable) or not (the leader failed; waiters
// re-execute).
type idemEntry struct {
	done chan struct{}

	// Settled state, written once before done closes.
	stored      bool
	status      int
	contentType string
	body        []byte
	settled     time.Time
}

type idemStore struct {
	mu       sync.Mutex
	m        map[string]*idemEntry
	curBytes int64
}

func newIdemStore() *idemStore {
	return &idemStore{m: make(map[string]*idemEntry)}
}

// begin claims the key: (entry, true) makes the caller the leader who
// must execute and settle it; (entry, false) hands back an entry to
// wait on or replay.
func (st *idemStore) begin(key string) (*idemEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked(time.Now())
	if e, ok := st.m[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	st.m[key] = e
	return e, true
}

// settle records the leader's outcome and wakes waiters. Unstorable
// outcomes (5xx, oversized, over budget) drop the entry so the next
// request under the key executes fresh.
func (st *idemStore) settle(key string, e *idemEntry, status int, contentType string, body []byte, overflowed bool) {
	st.mu.Lock()
	storable := status < 500 && !overflowed &&
		int64(len(body)) <= idemMaxBodyBytes &&
		st.curBytes+int64(len(body)) <= idemMaxTotalBytes
	if storable {
		e.stored = true
		e.status = status
		e.contentType = contentType
		e.body = body
		e.settled = time.Now()
		st.curBytes += int64(len(body))
	} else {
		delete(st.m, key)
	}
	st.mu.Unlock()
	close(e.done)
}

// purgeLocked expires settled entries past the TTL and evicts the
// oldest settled entries over the count bound. In-flight entries are
// never purged — their leader settles or the server restarts.
func (st *idemStore) purgeLocked(now time.Time) {
	for key, e := range st.m {
		if e.stored && now.Sub(e.settled) > idemTTL {
			st.curBytes -= int64(len(e.body))
			delete(st.m, key)
		}
	}
	for len(st.m) > idemMaxEntries {
		oldestKey := ""
		var oldest time.Time
		for key, e := range st.m {
			if e.stored && (oldestKey == "" || e.settled.Before(oldest)) {
				oldestKey, oldest = key, e.settled
			}
		}
		if oldestKey == "" {
			return // all in flight; nothing evictable
		}
		st.curBytes -= int64(len(st.m[oldestKey].body))
		delete(st.m, oldestKey)
	}
}

// recordingWriter tees the response to the client while capturing it
// for replay. Past the per-entry size cap it stops capturing and marks
// the response unstorable.
type recordingWriter struct {
	http.ResponseWriter
	status     int
	body       []byte
	overflowed bool
}

func (w *recordingWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *recordingWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if !w.overflowed {
		if len(w.body)+len(b) > idemMaxBodyBytes {
			w.overflowed = true
			w.body = nil
		} else {
			w.body = append(w.body, b...)
		}
	}
	return w.ResponseWriter.Write(b)
}

// idempotent wraps an evaluation handler with Idempotency-Key
// deduplication; requests without the header pass straight through.
func (s *Server) idempotent(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			h(w, r)
			return
		}
		mapKey := r.Method + " " + r.URL.Path + " " + key
		for {
			e, leader := s.idem.begin(mapKey)
			if leader {
				rec := &recordingWriter{ResponseWriter: w}
				h(rec, r)
				status := rec.status
				if status == 0 {
					status = http.StatusOK
				}
				s.idem.settle(mapKey, e, status, rec.Header().Get("Content-Type"), rec.body, rec.overflowed)
				return
			}
			select {
			case <-e.done:
			case <-r.Context().Done():
				writeError(w, errs.FromContext(r.Context().Err()))
				return
			}
			if e.stored {
				w.Header().Set("Content-Type", e.contentType)
				w.Header().Set("Idempotency-Replayed", "true")
				w.WriteHeader(e.status)
				_, _ = w.Write(e.body)
				return
			}
			// The leader failed without a storable response; promote
			// this waiter to leader and re-execute.
		}
	}
}

package service

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wire"
)

// postFrame sends a binary frame body, optionally asking for a frame
// response.
func postFrame(t *testing.T, url string, body []byte, acceptFrame bool) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeFrame)
	if acceptFrame {
		req.Header.Set("Accept", ContentTypeFrame)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// evalFrameBody assembles an evaluate request frame.
func evalFrameBody(den []float64) []byte {
	var w wire.Writer
	w.U32(wire.FrameMagic)
	w.F64s(den)
	return w.Bytes()
}

// parseEvalFrame splits an evaluate response frame.
func parseEvalFrame(t *testing.T, resp *http.Response) (meta []byte, pot []float64) {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeFrame {
		t.Fatalf("response Content-Type = %q, want %q", ct, ContentTypeFrame)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(raw)
	if r.U32() != wire.FrameMagic {
		t.Fatalf("response frame missing magic")
	}
	meta = r.Raw()
	pot = r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("malformed response frame: err=%v remaining=%d", r.Err(), r.Remaining())
	}
	return meta, pot
}

// TestReadJSONRejectsTrailingData: a body with trailing bytes after the
// JSON value is a 400, not a silent half-read. Regression test for the
// old readJSON, which decoded the first value and ignored the rest.
func TestReadJSONRejectsTrailingData(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	body := `{"words": 8}{"words": 9999}`
	resp, err := http.Post(ts.URL+"/v1/uploads", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing-data body: status = %d, want 400", resp.StatusCode)
	}
	e := decode[map[string]string](t, resp)
	if e["code"] != "invalid_input" {
		t.Errorf("trailing-data body: code = %q, want invalid_input", e["code"])
	}
	if !strings.Contains(e["error"], "trailing") {
		t.Errorf("trailing-data body: error %q does not mention trailing data", e["error"])
	}
}

// TestBinaryEvaluateMatchesJSONBitwise: the same plan evaluated through
// the JSON and the frame paths returns bitwise-identical potentials,
// and the frame request/response round-trips without any float-text
// conversion.
func TestBinaryEvaluateMatchesJSONBitwise(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(11, 160)
	info := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	den := densitiesFor(req, info.SourceDim)
	evalURL := ts.URL + "/v1/plans/" + info.ID + "/evaluate"

	jsonResp := decode[EvaluateResponse](t, postJSON(t, evalURL, EvaluateRequest{Densities: den}))

	resp := postFrame(t, evalURL, evalFrameBody(den), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame evaluate status = %d, want 200", resp.StatusCode)
	}
	meta, pot := parseEvalFrame(t, resp)
	if !strings.Contains(string(meta), info.ID) {
		t.Errorf("frame meta %q does not carry plan id %s", meta, info.ID)
	}
	if len(pot) != len(jsonResp.Potentials) {
		t.Fatalf("frame potentials length %d, json %d", len(pot), len(jsonResp.Potentials))
	}
	for i := range pot {
		if math.Float64bits(pot[i]) != math.Float64bits(jsonResp.Potentials[i]) {
			t.Fatalf("potentials[%d] differ between encodings: %x vs %x",
				i, math.Float64bits(pot[i]), math.Float64bits(jsonResp.Potentials[i]))
		}
	}
}

// TestBinaryBatchEvaluate: the batch endpoint speaks frames in both
// directions and preserves vector order.
func TestBinaryBatchEvaluate(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(7, 120)
	info := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	den := densitiesFor(req, info.SourceDim)
	den2 := make([]float64, len(den))
	for i, v := range den {
		den2[i] = -v
	}

	var w wire.Writer
	w.U32(wire.FrameMagic)
	w.U32(2)
	w.F64s(den)
	w.F64s(den2)
	resp := postFrame(t, ts.URL+"/v1/plans/"+info.ID+"/evaluate_batch", w.Bytes(), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame batch status = %d, want 200", resp.StatusCode)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(raw)
	if r.U32() != wire.FrameMagic {
		t.Fatal("batch response missing magic")
	}
	r.Raw() // meta
	if n := r.U32(); n != 2 {
		t.Fatalf("batch response count = %d, want 2", n)
	}
	p0, p1 := r.F64s(), r.F64s()
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("malformed batch frame: %v", r.Err())
	}
	// Laplace is linear: negated densities give negated potentials.
	for i := range p0 {
		if p0[i] != -p1[i] {
			t.Fatalf("batch vectors not negations at %d: %g vs %g", i, p0[i], p1[i])
		}
	}
}

// TestMalformedFrameIs400: truncated or non-frame bodies under the
// frame content type fail fast with a typed 400 naming the encoding.
func TestMalformedFrameIs400(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(5, 80)
	info := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	evalURL := ts.URL + "/v1/plans/" + info.ID + "/evaluate"

	good := evalFrameBody(densitiesFor(req, info.SourceDim))
	for name, body := range map[string][]byte{
		"json under frame type": []byte(`{"densities":[1,2,3]}`),
		"truncated":             good[:len(good)-5],
		"trailing bytes":        append(append([]byte{}, good...), 0xFF),
		"empty":                 {},
	} {
		resp := postFrame(t, evalURL, body, false)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		e := decode[map[string]string](t, resp)
		if e["code"] != "invalid_input" {
			t.Errorf("%s: code = %q, want invalid_input", name, e["code"])
		}
		if !strings.Contains(e["error"], "malformed") {
			t.Errorf("%s: error %q does not say malformed", name, e["error"])
		}
	}
}

// chunkFrame assembles one upload-chunk body.
func chunkFrame(off uint64, words []float64) []byte {
	var w wire.Writer
	w.U32(wire.FrameMagic)
	w.U64(off)
	w.F64s(words)
	return w.Bytes()
}

// TestChunkedUploadFlow: create, append with a retry-style overlap and
// a rejected gap, poll the resume offset, then register a plan from
// the upload and check it evaluates identically to a direct
// registration.
func TestChunkedUploadFlow(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(9, 100)
	words := len(req.Src)
	st := decode[UploadStatus](t, postJSON(t, ts.URL+"/v1/uploads", UploadCreateRequest{Words: words}))
	if st.ID == "" || st.Words != words || st.ReceivedWords != 0 || st.Complete {
		t.Fatalf("fresh upload status = %+v", st)
	}
	upURL := ts.URL + "/v1/uploads/" + st.ID

	half := words / 2
	// A gap past the committed prefix is rejected before any copy.
	resp := postFrame(t, upURL, chunkFrame(uint64(half), req.Src[half:]), false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("gap chunk status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	st = decode[UploadStatus](t, postFrame(t, upURL, chunkFrame(0, req.Src[:half]), false))
	if st.ReceivedWords != half || st.Complete {
		t.Fatalf("after first chunk: %+v", st)
	}
	// Re-sending a committed chunk (a client retrying a lost response)
	// is idempotent.
	st = decode[UploadStatus](t, postFrame(t, upURL, chunkFrame(0, req.Src[:half]), false))
	if st.ReceivedWords != half {
		t.Fatalf("idempotent re-send moved the prefix: %+v", st)
	}
	// Registration before completion is refused.
	partial := PlanRequest{SrcUpload: st.ID, Kernel: req.Kernel, Degree: req.Degree, MaxPoints: req.MaxPoints}
	resp = postJSON(t, ts.URL+"/v1/plans", partial)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incomplete-upload registration status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// GET reports the resume offset; finish from there.
	got, err := http.Get(upURL)
	if err != nil {
		t.Fatal(err)
	}
	st = decode[UploadStatus](t, got)
	if st.ReceivedWords != half {
		t.Fatalf("status endpoint reports %d, want %d", st.ReceivedWords, half)
	}
	st = decode[UploadStatus](t, postFrame(t, upURL, chunkFrame(uint64(half), req.Src[half:]), false))
	if !st.Complete {
		t.Fatalf("after final chunk: %+v", st)
	}

	// A plan from the upload matches a plan from inline coordinates.
	fromUpload := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", partial))
	direct := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	if fromUpload.ID != direct.ID {
		t.Fatalf("upload-built plan %s != direct plan %s", fromUpload.ID, direct.ID)
	}

	// src and src_upload together are ambiguous and refused.
	both := req
	both.SrcUpload = st.ID
	resp = postJSON(t, ts.URL+"/v1/plans", both)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("src+src_upload status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestIdempotencyKeyReplays: two POSTs sharing an Idempotency-Key run
// the evaluation once; the second response is a byte-identical replay
// flagged with Idempotency-Replayed.
func TestIdempotencyKeyReplays(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(13, 90)
	info := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	den := densitiesFor(req, info.SourceDim)

	do := func(key string) (*http.Response, []byte) {
		hreq, err := http.NewRequest(http.MethodPost,
			ts.URL+"/v1/plans/"+info.ID+"/evaluate", bytes.NewReader(evalFrameBody(den)))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", ContentTypeFrame)
		hreq.Header.Set("Accept", ContentTypeFrame)
		hreq.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	before := svc.m.evaluations.Value()
	r1, b1 := do("key-same")
	if r1.StatusCode != http.StatusOK || r1.Header.Get("Idempotency-Replayed") != "" {
		t.Fatalf("first attempt: status %d, replayed %q", r1.StatusCode, r1.Header.Get("Idempotency-Replayed"))
	}
	r2, b2 := do("key-same")
	if r2.StatusCode != http.StatusOK || r2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("replay: status %d, replayed %q", r2.StatusCode, r2.Header.Get("Idempotency-Replayed"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("replayed body differs from the original")
	}
	if got := svc.m.evaluations.Value() - before; got != 1 {
		t.Errorf("evaluations ran %d times under one key, want 1", got)
	}
	// A different key evaluates afresh.
	r3, _ := do("key-other")
	if r3.Header.Get("Idempotency-Replayed") != "" {
		t.Error("fresh key was replayed")
	}
	if got := svc.m.evaluations.Value() - before; got != 2 {
		t.Errorf("evaluations = %d after a second key, want 2", got)
	}
}

// TestNonFinitePotentials: overflowing densities make the JSON path
// fail with a typed 400 naming the first bad output, while the frame
// path delivers the same values bit-exactly.
func TestNonFinitePotentials(t *testing.T) {
	ts := httptest.NewServer(NewServer(New(Config{})))
	defer ts.Close()

	req := cloudRequest(17, 70)
	info := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	den := make([]float64, info.SrcCount*info.SourceDim)
	for i := range den {
		den[i] = math.MaxFloat64
	}
	evalURL := ts.URL + "/v1/plans/" + info.ID + "/evaluate"

	resp := postJSON(t, evalURL, EvaluateRequest{Densities: den})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-finite JSON status = %d, want 400", resp.StatusCode)
	}
	e := decode[map[string]string](t, resp)
	if e["code"] != "invalid_input" {
		t.Errorf("non-finite code = %q, want invalid_input", e["code"])
	}
	if !strings.Contains(e["error"], "potentials[") || !strings.Contains(e["error"], ContentTypeFrame) {
		t.Errorf("non-finite error %q should name the output and the frame escape hatch", e["error"])
	}

	// The binary path carries the same evaluation, non-finite bits and
	// all.
	fresp := postFrame(t, evalURL, evalFrameBody(den), true)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("non-finite frame status = %d, want 200", fresp.StatusCode)
	}
	_, pot := parseEvalFrame(t, fresp)
	nonFinite := 0
	for _, v := range pot {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			nonFinite++
		}
	}
	if nonFinite == 0 {
		t.Fatalf("expected non-finite potentials, got all finite (first: %v)", pot[0])
	}
}

// TestWireMetricsCount: the negotiated encodings and body sizes land in
// the new counters.
func TestWireMetricsCount(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	req := cloudRequest(19, 60)
	info := decode[PlanInfo](t, postJSON(t, ts.URL+"/v1/plans", req))
	den := densitiesFor(req, info.SourceDim)
	evalURL := ts.URL + "/v1/plans/" + info.ID + "/evaluate"
	decode[EvaluateResponse](t, postJSON(t, evalURL, EvaluateRequest{Densities: den}))
	parseEvalFrame(t, postFrame(t, evalURL, evalFrameBody(den), true))

	text := promText(t, ts.URL)
	for _, want := range []string{
		`kifmm_wire_encoding_total{encoding="json"}`,
		`kifmm_wire_encoding_total{encoding="frame"}`,
		"kifmm_http_request_bytes_total",
		"kifmm_http_response_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// promText fetches the Prometheus exposition.
func promText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, raw)
	}
	return string(raw)
}

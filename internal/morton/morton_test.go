package morton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(ix, iy, iz uint32) bool {
		ix &= (1 << MaxLevel) - 1
		iy &= (1 << MaxLevel) - 1
		iz &= (1 << MaxLevel) - 1
		k := Encode(MaxLevel, ix, iy, iz)
		gx, gy, gz := k.Decode()
		return gx == ix && gy == iy && gz == iz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParentChildInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		level := uint8(1 + rng.Intn(MaxLevel-1))
		k := Encode(level, rng.Uint32()%(1<<level), rng.Uint32()%(1<<level), rng.Uint32()%(1<<level))
		if k.Parent().Child(k.Octant()) != k {
			t.Fatalf("Parent().Child(Octant()) != self for %+v", k)
		}
		for o := 0; o < 8; o++ {
			c := k.Child(o)
			if c.Parent() != k {
				t.Fatalf("child %d of %+v has wrong parent", o, k)
			}
			if c.Octant() != o {
				t.Fatalf("child octant mismatch")
			}
		}
	}
}

func TestRootHasNoParent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parent of root must panic")
		}
	}()
	(Key{}).Parent()
}

func TestChildCoordinates(t *testing.T) {
	k := Encode(2, 1, 2, 3)
	// Child octant bit layout: bit2 = x, bit1 = y, bit0 = z.
	c := k.Child(0b101)
	ix, iy, iz := c.Decode()
	if ix != 3 || iy != 4 || iz != 7 {
		t.Errorf("child coords: got (%d,%d,%d) want (3,4,7)", ix, iy, iz)
	}
}

func TestAncestorRelation(t *testing.T) {
	k := Encode(3, 5, 2, 7)
	d := k.Child(4).Child(1)
	if !k.IsAncestorOf(d) {
		t.Error("grandparent must be ancestor")
	}
	if k.IsAncestorOf(k) {
		t.Error("a key is not its own ancestor")
	}
	if d.IsAncestorOf(k) {
		t.Error("descendant is not an ancestor")
	}
	if d.AtLevel(3) != k {
		t.Error("AtLevel must recover the ancestor")
	}
}

func TestLessIsStrictWeakOrderAndDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]Key, 100)
	for i := range keys {
		level := uint8(rng.Intn(6))
		keys[i] = Encode(level, rng.Uint32()%(1<<level), rng.Uint32()%(1<<level), rng.Uint32()%(1<<level))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for i := 1; i < len(keys); i++ {
		if keys[i].Less(keys[i-1]) {
			t.Fatal("sort produced out-of-order pair")
		}
	}
	// An ancestor always precedes its descendants in DFS order.
	a := Encode(2, 1, 1, 1)
	if !a.Less(a.Child(7)) || a.Child(7).Less(a) {
		t.Error("ancestor must order before descendant")
	}
	// Z-order within a level: sibling octants ascend.
	for o := 0; o < 7; o++ {
		if !a.Child(o).Less(a.Child(o + 1)) {
			t.Errorf("sibling order broken at octant %d", o)
		}
	}
}

func TestPointKeyLocality(t *testing.T) {
	c := [3]float64{0, 0, 0}
	// Two points in the same octant share the level-1 ancestor.
	k1 := PointKey(0.5, 0.5, 0.5, c, 1).AtLevel(1)
	k2 := PointKey(0.9, 0.1, 0.3, c, 1).AtLevel(1)
	if k1 != k2 {
		t.Error("points in the same octant must share the level-1 key")
	}
	k3 := PointKey(-0.5, 0.5, 0.5, c, 1).AtLevel(1)
	if k1 == k3 {
		t.Error("points in different octants must differ at level 1")
	}
}

func TestPointKeyClampsBoundary(t *testing.T) {
	c := [3]float64{0, 0, 0}
	k := PointKey(1, 1, 1, c, 1)
	ix, iy, iz := k.Decode()
	max := uint32(1<<MaxLevel - 1)
	if ix != max || iy != max || iz != max {
		t.Errorf("upper boundary must clamp to last cell, got (%d,%d,%d)", ix, iy, iz)
	}
	k = PointKey(-2, -2, -2, c, 1) // outside: clamp to 0
	ix, iy, iz = k.Decode()
	if ix != 0 || iy != 0 || iz != 0 {
		t.Errorf("below-domain points must clamp to cell 0, got (%d,%d,%d)", ix, iy, iz)
	}
}

func TestPartitionBalancesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := make([]Weighted, 200)
	total := int64(0)
	for i := range items {
		w := int64(1 + rng.Intn(50))
		items[i] = Weighted{
			Key:    PointKey(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1, [3]float64{}, 1),
			Weight: w,
			Index:  i,
		}
		total += w
	}
	for _, parts := range []int{1, 2, 3, 7, 16} {
		got := Partition(items, parts)
		if len(got) != parts {
			t.Fatalf("want %d parts, got %d", parts, len(got))
		}
		seen := map[int]bool{}
		for p, idxs := range got {
			w := int64(0)
			for _, idx := range idxs {
				if seen[idx] {
					t.Fatalf("item %d assigned twice", idx)
				}
				seen[idx] = true
				w += items[idx].Weight
			}
			avg := total / int64(parts)
			if parts > 1 && w > 2*avg+50 {
				t.Errorf("part %d/%d overloaded: %d vs avg %d", p, parts, w, avg)
			}
		}
		if len(seen) != len(items) {
			t.Fatalf("partition dropped items: %d of %d", len(seen), len(items))
		}
	}
}

func TestPartitionPreservesMortonContiguity(t *testing.T) {
	items := []Weighted{}
	for i := 0; i < 64; i++ {
		items = append(items, Weighted{Key: Encode(2, uint32(i/16), uint32(i/4%4), uint32(i%4)), Weight: 1, Index: i})
	}
	parts := Partition(items, 4)
	// Each part must be a contiguous run of the Morton-sorted order.
	last := Key{}
	first := true
	for _, p := range parts {
		for _, idx := range p {
			k := items[idx].Key
			if !first && k.Less(last) {
				t.Fatal("parts are not contiguous along the Morton curve")
			}
			last, first = k, false
		}
	}
}

func TestPartitionSinglePartAndPanics(t *testing.T) {
	items := []Weighted{{Weight: 1, Index: 0}}
	got := Partition(items, 1)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Error("single part must hold everything")
	}
	defer func() {
		if recover() == nil {
			t.Error("parts < 1 must panic")
		}
	}()
	Partition(items, 0)
}

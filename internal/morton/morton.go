// Package morton implements 3-D Morton (Z-order) keys and the
// Morton-curve partitioning used by the paper (Section 3.1) to split
// surface patches into equal-weight processor groups, following
// Warren & Salmon's hashed octree addressing.
//
// A Key packs (level, ix, iy, iz) into a uint64: the low 63 bits hold the
// interleaved cell coordinates at MaxLevel, and keys at coarser levels
// are identified by their (level, anchor) pair. Keys at the same level
// sort in Z-order; a parent's key prefix contains its descendants'.
package morton

// MaxLevel is the deepest octree level representable: 3*21 = 63 bits.
const MaxLevel = 21

// Key identifies an octree box by its level and interleaved anchor
// coordinates. The zero Key is the root box.
type Key struct {
	// Level is the box depth; the root is level 0.
	Level uint8
	// Bits holds the Morton-interleaved cell coordinates of the box
	// anchor at resolution Level (3*Level significant bits).
	Bits uint64
}

// Encode builds the key of the box at the given level containing cell
// (ix, iy, iz), where coordinates are in [0, 2^level).
func Encode(level uint8, ix, iy, iz uint32) Key {
	return Key{Level: level, Bits: spread(ix)<<2 | spread(iy)<<1 | spread(iz)}
}

// Decode returns the cell coordinates of the key's anchor.
func (k Key) Decode() (ix, iy, iz uint32) {
	return compact(k.Bits >> 2), compact(k.Bits >> 1), compact(k.Bits)
}

// Parent returns the key of the enclosing box one level up. It panics on
// the root key.
func (k Key) Parent() Key {
	if k.Level == 0 {
		panic("morton: root has no parent")
	}
	return Key{Level: k.Level - 1, Bits: k.Bits >> 3}
}

// Child returns the key of child octant o (0..7) one level down. Octant
// bit 2 selects x, bit 1 selects y, bit 0 selects z, matching Encode.
func (k Key) Child(o int) Key {
	if o < 0 || o > 7 {
		panic("morton: child octant out of range")
	}
	if k.Level >= MaxLevel {
		panic("morton: child below MaxLevel")
	}
	return Key{Level: k.Level + 1, Bits: k.Bits<<3 | uint64(o)}
}

// Octant returns which child of its parent this key is.
func (k Key) Octant() int { return int(k.Bits & 7) }

// Less orders keys by depth-first (pre-order) traversal position, which
// coincides with Z-order along each level. Boxes are compared by aligning
// both keys to the finer level; ancestors order before descendants.
func (k Key) Less(o Key) bool {
	ka, oa := k.Bits, o.Bits
	if k.Level < o.Level {
		ka <<= 3 * uint(o.Level-k.Level)
	} else {
		oa <<= 3 * uint(k.Level-o.Level)
	}
	if ka != oa {
		return ka < oa
	}
	return k.Level < o.Level
}

// IsAncestorOf reports whether o lies strictly inside k's subtree.
func (k Key) IsAncestorOf(o Key) bool {
	if o.Level <= k.Level {
		return false
	}
	return o.Bits>>(3*uint(o.Level-k.Level)) == k.Bits
}

// PointKey returns the key of the leaf-level (MaxLevel) cell containing
// the point p inside the cube of half-width hw centered at c. Points on
// the upper boundary are clamped into the last cell.
func PointKey(px, py, pz float64, c [3]float64, hw float64) Key {
	return Encode(MaxLevel, cellCoord(px, c[0], hw), cellCoord(py, c[1], hw), cellCoord(pz, c[2], hw))
}

func cellCoord(v, c, hw float64) uint32 {
	const cells = 1 << MaxLevel
	f := (v - c + hw) / (2 * hw) // in [0,1]
	i := int64(f * cells)
	if i < 0 {
		i = 0
	}
	if i >= cells {
		i = cells - 1
	}
	return uint32(i)
}

// AtLevel returns the ancestor (or self) of k at the given coarser level.
func (k Key) AtLevel(level uint8) Key {
	if level > k.Level {
		panic("morton: AtLevel target deeper than key")
	}
	return Key{Level: level, Bits: k.Bits >> (3 * uint(k.Level-level))}
}

// spread inserts two zero bits between each of the low 21 bits of v.
func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact is the inverse of spread on every third bit.
func compact(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10c30c30c30c30c3
	x = (x | x>>4) & 0x100f00f00f00f00f
	x = (x | x>>8) & 0x1f0000ff0000ff
	x = (x | x>>16) & 0x1f00000000ffff
	x = (x | x>>32) & 0x1fffff
	return uint32(x)
}

package morton

import "sort"

// Weighted is an item with a Morton key and a work weight, e.g. a surface
// patch keyed by its center with weight equal to its particle count
// (paper Section 3.1: "assign to each patch a weight which in the
// simplest case is equal to the number of particles in that patch").
type Weighted struct {
	Key    Key
	Weight int64
	// Index is the caller's identifier for the item (e.g. patch index).
	Index int
}

// Partition sorts the items along the Morton curve and splits them into
// parts contiguous groups of near-equal total weight, returning for each
// part the indices (caller Index values) assigned to it. Every part of a
// non-empty input receives at least zero items; items are never split.
//
// The splitter walks the curve greedily: item i goes to the earliest part
// whose cumulative target (totalWeight * (p+1)/parts) has not yet been
// reached. This matches the straightforward equal-weight Morton
// partitioning described in the paper.
func Partition(items []Weighted, parts int) [][]int {
	if parts < 1 {
		panic("morton: Partition needs parts >= 1")
	}
	sorted := make([]Weighted, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Key == sorted[j].Key {
			return sorted[i].Index < sorted[j].Index
		}
		return sorted[i].Key.Less(sorted[j].Key)
	})
	total := int64(0)
	for _, it := range sorted {
		total += it.Weight
	}
	out := make([][]int, parts)
	cum := int64(0)
	p := 0
	for _, it := range sorted {
		// Advance to the part whose weight target covers the midpoint of
		// this item's weight interval, so large items land where most of
		// their mass belongs.
		mid := cum + it.Weight/2
		for p < parts-1 && mid*int64(parts) >= total*int64(p+1) {
			p++
		}
		out[p] = append(out[p], it.Index)
		cum += it.Weight
	}
	return out
}

package morton

import "testing"

// checkCoverage asserts the partition assigns every input index exactly
// once and produced exactly `parts` groups.
func checkCoverage(t *testing.T, got [][]int, items []Weighted, parts int) {
	t.Helper()
	if len(got) != parts {
		t.Fatalf("want %d parts, got %d", parts, len(got))
	}
	seen := make(map[int]bool, len(items))
	for _, idxs := range got {
		for _, idx := range idxs {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("partition covered %d of %d indices", len(seen), len(items))
	}
	for _, it := range items {
		if !seen[it.Index] {
			t.Fatalf("index %d dropped", it.Index)
		}
	}
}

// checkContiguity asserts each part is a contiguous run of the
// Morton-sorted order (keys never go backwards across part boundaries).
func checkContiguity(t *testing.T, got [][]int, items []Weighted) {
	t.Helper()
	byIdx := make(map[int]Key, len(items))
	for _, it := range items {
		byIdx[it.Index] = it.Key
	}
	last, first := Key{}, true
	for _, p := range got {
		for _, idx := range p {
			k := byIdx[idx]
			if !first && k.Less(last) {
				t.Fatal("parts are not contiguous along the Morton curve")
			}
			last, first = k, false
		}
	}
}

// TestPartitionDuplicateCoordinates: coincident points collapse to
// identical Morton keys; the partition must still cover every index
// exactly once, deterministically (the sort tiebreaks on Index).
func TestPartitionDuplicateCoordinates(t *testing.T) {
	c := [3]float64{0, 0, 0}
	items := make([]Weighted, 40)
	for i := range items {
		// Four distinct locations, ten copies each.
		q := float64(i%4)/4 - 0.5
		items[i] = Weighted{Key: PointKey(q, q, q, c, 1), Weight: 3, Index: i}
	}
	for _, parts := range []int{1, 3, 8} {
		got := Partition(items, parts)
		checkCoverage(t, got, items, parts)
		checkContiguity(t, got, items)
		// Determinism: a second run over the same input is identical.
		again := Partition(items, parts)
		for p := range got {
			if len(got[p]) != len(again[p]) {
				t.Fatalf("duplicate-key partition not deterministic at part %d", p)
			}
			for i := range got[p] {
				if got[p][i] != again[p][i] {
					t.Fatalf("duplicate-key partition not deterministic at part %d item %d", p, i)
				}
			}
		}
	}
}

// TestPartitionAllZeroWeights: zero total weight must not panic or
// divide by zero; every index still lands in exactly one part and the
// Morton order is preserved. (Balance is meaningless at zero weight —
// the greedy splitter puts everything in one part, which is legal.)
func TestPartitionAllZeroWeights(t *testing.T) {
	items := make([]Weighted, 16)
	for i := range items {
		items[i] = Weighted{Key: Encode(2, uint32(i%4), uint32(i/4), 0), Weight: 0, Index: i}
	}
	for _, parts := range []int{1, 2, 5} {
		got := Partition(items, parts)
		checkCoverage(t, got, items, parts)
		checkContiguity(t, got, items)
	}
}

// TestPartitionMoreParts: more parts than items — some parts are empty,
// nothing panics, no item is dropped or duplicated.
func TestPartitionMoreParts(t *testing.T) {
	items := []Weighted{
		{Key: Encode(1, 0, 0, 0), Weight: 5, Index: 0},
		{Key: Encode(1, 1, 0, 0), Weight: 1, Index: 1},
		{Key: Encode(1, 1, 1, 1), Weight: 2, Index: 2},
	}
	got := Partition(items, 7)
	checkCoverage(t, got, items, 7)
	checkContiguity(t, got, items)
	nonEmpty := 0
	for _, p := range got {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 || nonEmpty > 3 {
		t.Fatalf("3 items across 7 parts occupy %d parts, want 1..3", nonEmpty)
	}

	// Empty input: every part exists and is empty.
	empty := Partition(nil, 4)
	checkCoverage(t, empty, nil, 4)
}

// Package mpi is an in-process message-passing library with the subset
// of MPI semantics the paper's parallel algorithm needs: eager
// point-to-point sends with (source, tag) matching, blocking receives,
// and the collectives MPI_Allreduce / MPI_Allgather / MPI_Barrier /
// MPI_Bcast. It replaces the MPI dependency the Go port lacks.
//
// Ranks are goroutines, but execution is serialized by a token so that
// exactly one rank computes at a time. That makes the simulation
// deterministic on any machine and lets each rank meter its own compute
// time with a wall clock: while a rank holds the token, elapsed wall
// time is that rank's compute time. Communication advances a per-rank
// virtual clock using a latency/bandwidth machine model (a LogP-style
// simulation of the Quadrics-class interconnect of the paper's TCS-1
// platform). Scalability experiments then report virtual wall-clock
// time T(P) = max over ranks of virtual time, which reproduces the
// *shape* of the paper's scalability results on a single host.
package mpi

import (
	"fmt"
	"math"
	"time"
)

// Machine models the communication hardware.
type Machine struct {
	// Latency is the end-to-end message latency (MPI alpha term).
	Latency time.Duration
	// Bandwidth is the per-link bandwidth in bytes/second (beta term).
	Bandwidth float64
	// SendOverhead is the CPU time a sender is occupied per message.
	SendOverhead time.Duration
	// RecvOverhead is the CPU time a receiver is occupied per message.
	RecvOverhead time.Duration
}

// DefaultMachine approximates the paper's testbed interconnect
// (Quadrics: ~5us MPI latency, ~250 MB/s effective per-process
// bandwidth with 4 processes per node sharing a rail).
func DefaultMachine() Machine {
	return Machine{
		Latency:      5 * time.Microsecond,
		Bandwidth:    250e6,
		SendOverhead: 500 * time.Nanosecond,
		RecvOverhead: 500 * time.Nanosecond,
	}
}

// transferTime returns the wire time of a message of n bytes.
func (m Machine) transferTime(n int) time.Duration {
	if m.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.Bandwidth * float64(time.Second))
}

type message struct {
	src, tag int
	data     any
	bytes    int
	sent     time.Duration // sender's virtual clock at enqueue completion
	avail    time.Duration // virtual time at which the payload is available
}

// EventKind discriminates communication-ledger events.
type EventKind uint8

// Event kinds.
const (
	// EventSend is a point-to-point send (never blocks in this model).
	EventSend EventKind = iota
	// EventRecv is a blocking point-to-point receive.
	EventRecv
	// EventCollective is one rank's participation in a collective.
	EventCollective
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventRecv:
		return "recv"
	case EventCollective:
		return "collective"
	}
	return "unknown"
}

// Event is one communication-ledger record, delivered to the observer
// installed with SetObserver as the operation completes. All times are
// the recording rank's virtual clock (offsets from the run origin),
// except Sent and DepTime, which are on the dependency rank's clock.
type Event struct {
	Kind EventKind
	// Rank is the recording rank; Peer the destination (send) or
	// source (recv), -1 for collectives.
	Rank, Peer int
	// Tag is the point-to-point tag, or the collective sequence number.
	Tag   int
	Bytes int
	// Start/End delimit the operation on the recording rank's clock.
	Start, End time.Duration
	// Sent is the sender's clock at enqueue completion; Avail when the
	// payload became deliverable (Sent + latency). Send events carry
	// their own enqueue/delivery times here; collectives leave both 0.
	Sent, Avail time.Duration
	// Wait is the blocked virtual time: for a recv, until the payload
	// arrived; for a collective, until the last rank entered and the
	// synchronization cost elapsed.
	Wait time.Duration
	// DepRank/DepTime name the cross-rank dependency a blocked
	// operation waited on (the sender at its enqueue time, or the last
	// rank to enter a collective at its entry time); DepRank is -1 when
	// the operation did not block on another rank.
	DepRank int
	DepTime time.Duration
}

// SetObserver installs fn as this rank's communication observer: every
// Send, Recv and collective reports an Event as it completes, on the
// rank's own goroutine (mirroring Elastic.SetAcquireObserver — the
// callback must be cheap and non-blocking). A nil fn removes the
// observer. Must be called from the rank's goroutine.
func (c *Comm) SetObserver(fn func(Event)) { c.observer = fn }

// Comm is one rank's communicator handle. Methods must only be called
// from the rank's own goroutine.
type Comm struct {
	rank, size int
	net        *network

	clock    time.Duration // virtual time of this rank
	lastReal time.Time     // wall time when the token was (re)acquired

	commTime  time.Duration
	bytesSent int64
	bytesRecv int64
	msgsSent  int64
	collSeq   int
	done      bool

	observer func(Event)
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Elapsed returns the rank's current virtual time (compute plus
// communication, as a physical run of the same code would measure).
// Called from the rank goroutine it is live; after Run it is final.
func (c *Comm) Elapsed() time.Duration {
	if !c.done {
		c.tick()
	}
	return c.clock
}

// CommTime returns the portion of virtual time spent in communication.
func (c *Comm) CommTime() time.Duration { return c.commTime }

// BytesSent returns the total payload bytes this rank has sent.
func (c *Comm) BytesSent() int64 { return c.bytesSent }

// BytesRecv returns the total payload bytes this rank has received.
func (c *Comm) BytesRecv() int64 { return c.bytesRecv }

// Messages returns the number of point-to-point messages sent.
func (c *Comm) Messages() int64 { return c.msgsSent }

// AdvanceClock adds d of modeled compute time to the rank's virtual
// clock (used by tests; real compute is metered automatically).
func (c *Comm) AdvanceClock(d time.Duration) { c.clock += d }

// tick folds wall time elapsed while holding the token into the virtual
// clock as compute time.
func (c *Comm) tick() {
	now := time.Now()
	c.clock += now.Sub(c.lastReal)
	c.lastReal = now
}

// Run executes fn on size ranks and returns the per-rank Comms after all
// ranks finish (for inspecting clocks and counters). It panics if any
// rank panics.
func Run(size int, machine Machine, fn func(*Comm)) []*Comm { //lint:allow ctxfirst simulated ranks run to completion by design; the wire transport (internal/cluster) owns cancellation
	if size < 1 {
		panic("mpi: size must be >= 1")
	}
	net := newNetwork(size, machine)
	comms := make([]*Comm, size)
	errs := make(chan any, size)
	for r := 0; r < size; r++ {
		comms[r] = &Comm{rank: r, size: size, net: net}
	}
	for r := 0; r < size; r++ {
		go func(c *Comm) {
			defer func() {
				p := recover()
				// Finalize the rank's clock before signaling errs: the
				// send is what releases Run back to the caller, so every
				// write to c must happen-before it or Elapsed() races.
				c.tick()
				c.done = true
				c.net.releaseToken()
				if p != nil {
					errs <- fmt.Errorf("mpi: rank %d panicked: %v", c.rank, p)
				} else {
					errs <- nil
				}
			}()
			c.net.acquireToken()
			c.lastReal = time.Now()
			fn(c)
		}(comms[r])
	}
	var failure any
	for r := 0; r < size; r++ {
		if e := <-errs; e != nil && failure == nil {
			failure = e
		}
	}
	if failure != nil {
		panic(failure)
	}
	return comms
}

// MaxElapsed returns max over ranks of virtual time — the simulated
// wall-clock of the parallel run.
func MaxElapsed(comms []*Comm) time.Duration {
	var m time.Duration
	for _, c := range comms {
		if c.clock > m {
			m = c.clock
		}
	}
	return m
}

// MinElapsed returns the smallest per-rank virtual time, used for the
// paper's load-imbalance "Ratio" metric (max/min).
func MinElapsed(comms []*Comm) time.Duration {
	m := time.Duration(math.MaxInt64)
	for _, c := range comms {
		if c.clock < m {
			m = c.clock
		}
	}
	return m
}

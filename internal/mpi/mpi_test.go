package mpi

import (
	"math/rand"
	"testing"
	"time"
)

func fastMachine() Machine {
	return Machine{Latency: time.Microsecond, Bandwidth: 1e9}
}

func TestSendRecvRoundtrip(t *testing.T) {
	Run(2, fastMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.SendFloat64s(1, 7, []float64{1, 2, 3})
			got := c.RecvFloat64s(1, 8)
			if len(got) != 2 || got[0] != 4 || got[1] != 5 {
				t.Errorf("rank 0 received %v", got)
			}
		} else {
			got := c.RecvFloat64s(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 received %v", got)
			}
			c.SendFloat64s(0, 8, []float64{4, 5})
		}
	})
}

func TestSendIsBuffered(t *testing.T) {
	// Both ranks send before receiving; eager buffering must avoid the
	// classic head-to-head deadlock (the paper's gather/scatter relies on
	// this pattern).
	Run(2, fastMachine(), func(c *Comm) {
		peer := 1 - c.Rank()
		c.SendFloat64s(peer, 0, []float64{float64(c.Rank())})
		got := c.RecvFloat64s(peer, 0)
		if got[0] != float64(peer) {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
	})
}

func TestMessageOrderPreservedPerPair(t *testing.T) {
	Run(2, fastMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.SendFloat64s(1, 3, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 20; i++ {
				got := c.RecvFloat64s(0, 3)
				if got[0] != float64(i) {
					t.Fatalf("out of order: got %v want %d", got[0], i)
				}
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	Run(2, fastMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.SendFloat64s(1, 1, []float64{1})
			c.SendFloat64s(1, 2, []float64{2})
		} else {
			// Receive in reverse tag order.
			b := c.RecvFloat64s(0, 2)
			a := c.RecvFloat64s(0, 1)
			if b[0] != 2 || a[0] != 1 {
				t.Errorf("tag matching broken: %v %v", a, b)
			}
		}
	})
}

func TestAllreduceMatchesSequential(t *testing.T) {
	for _, size := range []int{1, 2, 3, 8} {
		rng := rand.New(rand.NewSource(int64(size)))
		n := 50
		inputs := make([][]int64, size)
		for r := range inputs {
			inputs[r] = make([]int64, n)
			for i := range inputs[r] {
				inputs[r][i] = int64(rng.Intn(1000) - 500)
			}
		}
		wantSum := make([]int64, n)
		wantMax := make([]int64, n)
		wantMin := make([]int64, n)
		for i := 0; i < n; i++ {
			wantMax[i] = inputs[0][i]
			wantMin[i] = inputs[0][i]
			for r := 0; r < size; r++ {
				wantSum[i] += inputs[r][i]
				if inputs[r][i] > wantMax[i] {
					wantMax[i] = inputs[r][i]
				}
				if inputs[r][i] < wantMin[i] {
					wantMin[i] = inputs[r][i]
				}
			}
		}
		Run(size, fastMachine(), func(c *Comm) {
			gotSum := c.AllreduceInt64(OpSum, inputs[c.Rank()])
			gotMax := c.AllreduceInt64(OpMax, inputs[c.Rank()])
			gotMin := c.AllreduceInt64(OpMin, inputs[c.Rank()])
			for i := 0; i < n; i++ {
				if gotSum[i] != wantSum[i] || gotMax[i] != wantMax[i] || gotMin[i] != wantMin[i] {
					t.Errorf("size=%d rank=%d: allreduce mismatch at %d", size, c.Rank(), i)
					return
				}
			}
		})
	}
}

func TestAllreduceFloat64(t *testing.T) {
	Run(4, fastMachine(), func(c *Comm) {
		got := c.AllreduceFloat64(OpSum, []float64{float64(c.Rank()), 1})
		if got[0] != 6 || got[1] != 4 {
			t.Errorf("rank %d: got %v", c.Rank(), got)
		}
	})
}

func TestAllgather(t *testing.T) {
	Run(3, fastMachine(), func(c *Comm) {
		in := make([]int64, c.Rank()+1) // ragged sizes
		for i := range in {
			in[i] = int64(10*c.Rank() + i)
		}
		got := c.AllgatherInt64(in)
		if len(got) != 3 {
			t.Fatalf("want 3 slices, got %d", len(got))
		}
		for r := 0; r < 3; r++ {
			if len(got[r]) != r+1 || got[r][0] != int64(10*r) {
				t.Errorf("rank %d: slice %d = %v", c.Rank(), r, got[r])
			}
		}
	})
}

func TestBcast(t *testing.T) {
	Run(5, fastMachine(), func(c *Comm) {
		var in []float64
		if c.Rank() == 2 {
			in = []float64{3.5, -1}
		}
		got := c.Bcast(2, in)
		if len(got) != 2 || got[0] != 3.5 || got[1] != -1 {
			t.Errorf("rank %d: bcast got %v", c.Rank(), got)
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	comms := Run(3, fastMachine(), func(c *Comm) {
		// Rank 2 does extra modeled work before the barrier.
		if c.Rank() == 2 {
			c.AdvanceClock(time.Second)
		}
		c.Barrier()
		if c.Elapsed() < time.Second {
			t.Errorf("rank %d: barrier exit before slowest entrant: %v", c.Rank(), c.Elapsed())
		}
	})
	if MaxElapsed(comms) < time.Second {
		t.Error("max elapsed must include modeled work")
	}
}

func TestVirtualClockAdvancesWithMessageSize(t *testing.T) {
	m := Machine{Latency: time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	comms := Run(2, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendFloat64s(1, 0, make([]float64, 125000)) // 1 MB => 1 s wire time
		} else {
			c.RecvFloat64s(0, 0)
		}
	})
	// The receiver's clock must reflect wire time + latency.
	if got := comms[1].Elapsed(); got < time.Second {
		t.Errorf("receiver clock %v, want >= 1s of transfer time", got)
	}
	if comms[0].BytesSent() != 1000000 {
		t.Errorf("sender bytes %d", comms[0].BytesSent())
	}
	if comms[1].BytesRecv() != 1000000 {
		t.Errorf("receiver bytes %d", comms[1].BytesRecv())
	}
}

func TestCommTimeSeparatesFromCompute(t *testing.T) {
	comms := Run(2, fastMachine(), func(c *Comm) {
		// Busy-work ~ a few ms of real compute.
		s := 0.0
		for i := 0; i < 2_000_000; i++ {
			s += float64(i % 7)
		}
		_ = s
		c.Barrier()
	})
	for _, c := range comms {
		if c.Elapsed() <= c.CommTime() {
			t.Errorf("rank: compute time missing: total %v comm %v", c.Elapsed(), c.CommTime())
		}
	}
}

func TestManyToOneGatherPattern(t *testing.T) {
	// The owner-gather of Algorithm 1: every rank sends to rank 0.
	const size = 6
	Run(size, fastMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			sum := 0.0
			for src := 1; src < size; src++ {
				v := c.RecvFloat64s(src, 5)
				sum += v[0]
			}
			if sum != float64((size-1)*size/2) {
				t.Errorf("gather sum %v", sum)
			}
		} else {
			c.SendFloat64s(0, 5, []float64{float64(c.Rank())})
		}
	})
}

func TestDeterministicAccounting(t *testing.T) {
	// Virtual clocks meter real compute, so they jitter at the ns level;
	// the communication *volumes* must be exactly reproducible.
	run := func() ([]int64, []int64) {
		comms := Run(4, DefaultMachine(), func(c *Comm) {
			right := (c.Rank() + 1) % 4
			left := (c.Rank() + 3) % 4
			c.SendFloat64s(right, 0, make([]float64, 100))
			c.RecvFloat64s(left, 0)
			c.Barrier()
		})
		bytes := make([]int64, 4)
		msgs := make([]int64, 4)
		for i, c := range comms {
			bytes[i] = c.BytesSent()
			msgs[i] = c.Messages()
			if c.CommTime() <= 0 {
				t.Errorf("rank %d: no communication time recorded", i)
			}
		}
		return bytes, msgs
	}
	b1, m1 := run()
	b2, m2 := run()
	for i := range b1 {
		if b1[i] != b2[i] || m1[i] != m2[i] {
			t.Errorf("volumes not deterministic: %v/%v vs %v/%v", b1, m1, b2, m2)
		}
		if b1[i] != 800 {
			t.Errorf("rank %d sent %d bytes, want 800", i, b1[i])
		}
	}
}

func TestSingleRank(t *testing.T) {
	comms := Run(1, fastMachine(), func(c *Comm) {
		got := c.AllreduceInt64(OpSum, []int64{42})
		if got[0] != 42 {
			t.Errorf("self allreduce %v", got)
		}
		c.Barrier()
	})
	if comms[0].Size() != 1 {
		t.Error("size must be 1")
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run(0) must panic")
		}
	}()
	Run(0, fastMachine(), func(*Comm) {})
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank panic must propagate")
		}
	}()
	Run(2, fastMachine(), func(c *Comm) {
		// No cross-rank dependency: both panic without blocking anyone.
		panic("boom")
	})
}

func TestSendValidation(t *testing.T) {
	Run(1, fastMachine(), func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range destination must panic")
			}
		}()
		c.SendFloat64s(5, 0, nil)
	})
}

package mpi

import (
	"testing"
	"time"
)

// testMachine gives deterministic-enough comm costs for ledger checks.
func testMachine() Machine {
	return Machine{
		Latency:      10 * time.Microsecond,
		Bandwidth:    1e9,
		SendOverhead: time.Microsecond,
		RecvOverhead: time.Microsecond,
	}
}

func TestObserverPointToPoint(t *testing.T) {
	ledgers := make([][]Event, 2)
	Run(2, testMachine(), func(c *Comm) {
		rank := c.Rank()
		c.SetObserver(func(ev Event) { ledgers[rank] = append(ledgers[rank], ev) })
		if rank == 0 {
			c.SendFloat64s(1, 42, make([]float64, 100))
		} else {
			c.RecvFloat64s(0, 42)
		}
	})

	if len(ledgers[0]) != 1 || len(ledgers[1]) != 1 {
		t.Fatalf("ledger sizes = %d, %d; want 1 send and 1 recv", len(ledgers[0]), len(ledgers[1]))
	}
	send, recv := ledgers[0][0], ledgers[1][0]
	if send.Kind != EventSend || send.Rank != 0 || send.Peer != 1 || send.Tag != 42 || send.Bytes != 800 {
		t.Errorf("send event = %+v", send)
	}
	if send.DepRank != -1 {
		t.Errorf("send DepRank = %d, want -1 (sends never block)", send.DepRank)
	}
	if send.End <= send.Start {
		t.Errorf("send interval [%v,%v] not positive", send.Start, send.End)
	}
	if send.Avail != send.Sent+testMachine().Latency {
		t.Errorf("send Avail = %v, want Sent+latency = %v", send.Avail, send.Sent+testMachine().Latency)
	}
	if recv.Kind != EventRecv || recv.Rank != 1 || recv.Peer != 0 || recv.Tag != 42 || recv.Bytes != 800 {
		t.Errorf("recv event = %+v", recv)
	}
	if recv.Sent != send.Sent {
		t.Errorf("recv.Sent = %v, want the sender's enqueue time %v", recv.Sent, send.Sent)
	}
	if recv.Wait > 0 {
		// A blocked receive must name its dependency: the sender at its
		// enqueue time.
		if recv.DepRank != 0 || recv.DepTime != send.Sent {
			t.Errorf("recv dep = (%d,%v), want (0,%v)", recv.DepRank, recv.DepTime, send.Sent)
		}
	} else if recv.DepRank != -1 {
		t.Errorf("unblocked recv DepRank = %d, want -1", recv.DepRank)
	}
}

func TestObserverCollective(t *testing.T) {
	const P = 4
	ledgers := make([][]Event, P)
	Run(P, testMachine(), func(c *Comm) {
		rank := c.Rank()
		c.SetObserver(func(ev Event) { ledgers[rank] = append(ledgers[rank], ev) })
		c.AdvanceClock(time.Duration(rank+1) * time.Millisecond)
		c.AllreduceInt64(OpSum, []int64{1, 2, 3})
	})

	var exit time.Duration
	for r := 0; r < P; r++ {
		if len(ledgers[r]) != 1 {
			t.Fatalf("rank %d ledger has %d events, want 1 collective", r, len(ledgers[r]))
		}
		ev := ledgers[r][0]
		if ev.Kind != EventCollective || ev.Peer != -1 || ev.Bytes != 24 {
			t.Errorf("rank %d collective event = %+v", r, ev)
		}
		if ev.DepRank < 0 || ev.DepRank >= P {
			t.Errorf("rank %d DepRank = %d, want a rank (the last to enter)", r, ev.DepRank)
		}
		if ev.Wait != ev.End-ev.Start {
			t.Errorf("rank %d Wait = %v, want End-Start = %v", r, ev.Wait, ev.End-ev.Start)
		}
		if r == 0 {
			exit = ev.End
		} else if ev.End != exit {
			t.Errorf("rank %d exits at %v, rank 0 at %v; collectives exit together", r, ev.End, exit)
		}
		// The dependency's entry time cannot exceed the common exit.
		if ev.DepTime > exit {
			t.Errorf("rank %d DepTime %v after exit %v", r, ev.DepTime, exit)
		}
	}
}

func TestSetObserverNilRemoves(t *testing.T) {
	events := 0
	Run(2, testMachine(), func(c *Comm) {
		c.SetObserver(func(Event) { events++ })
		c.SetObserver(nil)
		if c.Rank() == 0 {
			c.SendFloat64s(1, 1, []float64{1})
		} else {
			c.RecvFloat64s(0, 1)
		}
	})
	if events != 0 {
		t.Errorf("removed observer still saw %d events", events)
	}
}

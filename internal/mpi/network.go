package mpi

import (
	"sort"
	"sync"
	"time"
)

// network is the shared transport: a token serializing execution,
// per-rank mailboxes, and collective rendezvous state.
type network struct {
	size    int
	machine Machine

	token chan struct{}

	mu      sync.Mutex
	boxes   [][]message     // boxes[dst]: pending messages
	wake    []chan struct{} // per-rank wakeup, capacity 1
	colls   map[int]*collective
	collNum int // allocated collective sequence counter safety check
}

type collective struct {
	arrived int
	entries []time.Duration
	inputs  []any
	result  any
	exit    time.Duration
	bytes   int // modeled per-rank data volume
	last    int // rank with the latest entry (the synchronization dependency)
	done    chan struct{}
}

func newNetwork(size int, m Machine) *network {
	n := &network{
		size:    size,
		machine: m,
		token:   make(chan struct{}, 1),
		boxes:   make([][]message, size),
		wake:    make([]chan struct{}, size),
		colls:   make(map[int]*collective),
	}
	for i := range n.wake {
		n.wake[i] = make(chan struct{}, 1)
	}
	n.token <- struct{}{}
	return n
}

func (n *network) acquireToken() { <-n.token }
func (n *network) releaseToken() { n.token <- struct{}{} }

// Send delivers data (already a private copy) of the given payload size
// to dst with a matching tag. It never blocks (eager buffering), which
// keeps the paper's send-before-receive gather/scatter pattern
// deadlock-free.
func (c *Comm) Send(dst, tag int, data any, bytes int) {
	if dst < 0 || dst >= c.size {
		panic("mpi: Send destination out of range")
	}
	c.tick()
	start := c.clock
	c.clock += c.net.machine.SendOverhead + c.net.machine.transferTime(bytes)
	avail := c.clock + c.net.machine.Latency
	c.commTime += c.clock - start
	c.bytesSent += int64(bytes)
	c.msgsSent++
	c.lastReal = time.Now()
	if c.observer != nil {
		c.observer(Event{
			Kind: EventSend, Rank: c.rank, Peer: dst, Tag: tag, Bytes: bytes,
			Start: start, End: c.clock, Sent: c.clock, Avail: avail, DepRank: -1,
		})
	}

	n := c.net
	n.mu.Lock()
	n.boxes[dst] = append(n.boxes[dst], message{src: c.rank, tag: tag, data: data, bytes: bytes, sent: c.clock, avail: avail})
	n.mu.Unlock()
	select {
	case n.wake[dst] <- struct{}{}:
	default:
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Messages from one (src, tag) pair are delivered
// in send order.
func (c *Comm) Recv(src, tag int) any {
	if src < 0 || src >= c.size {
		panic("mpi: Recv source out of range")
	}
	c.tick()
	start := c.clock
	n := c.net
	for {
		n.mu.Lock()
		box := n.boxes[c.rank]
		for i := range box {
			if box[i].src == src && box[i].tag == tag {
				msg := box[i]
				n.boxes[c.rank] = append(box[:i:i], box[i+1:]...)
				n.mu.Unlock()
				var wait time.Duration
				if msg.avail > c.clock {
					wait = msg.avail - c.clock
					c.clock = msg.avail
				}
				c.clock += n.machine.RecvOverhead
				c.commTime += c.clock - start
				c.bytesRecv += int64(msg.bytes)
				c.lastReal = time.Now()
				if c.observer != nil {
					ev := Event{
						Kind: EventRecv, Rank: c.rank, Peer: src, Tag: tag, Bytes: msg.bytes,
						Start: start, End: c.clock, Sent: msg.sent, Avail: msg.avail,
						Wait: wait, DepRank: -1,
					}
					if wait > 0 {
						ev.DepRank, ev.DepTime = msg.src, msg.sent
					}
					c.observer(ev)
				}
				return msg.data
			}
		}
		n.mu.Unlock()
		// Nothing yet: yield the token and sleep until a sender pokes us.
		n.releaseToken()
		<-n.wake[c.rank]
		n.acquireToken()
		c.lastReal = time.Now()
	}
}

// runCollective is the rendezvous engine: every rank deposits its input
// and entry clock; the last arrival combines the inputs, computes the
// synchronized exit time, and wakes everyone.
//
// combine receives the inputs indexed by rank and returns (result,
// perRankBytes) where perRankBytes models the data volume each rank
// exchanges; the exit time is max(entry) plus a tree-structured cost
// 2*ceil(log2 P)*(latency + transfer(perRankBytes)).
func (c *Comm) runCollective(inputs any, combine func(all []any) (any, int)) any {
	c.tick()
	start := c.clock
	n := c.net
	seq := c.collSeq
	c.collSeq++

	n.mu.Lock()
	coll, ok := n.colls[seq]
	if !ok {
		coll = &collective{
			entries: make([]time.Duration, n.size),
			inputs:  make([]any, n.size),
			done:    make(chan struct{}),
		}
		n.colls[seq] = coll
	}
	coll.entries[c.rank] = c.clock
	coll.inputs[c.rank] = inputs
	coll.arrived++
	last := coll.arrived == n.size
	if last {
		result, bytes := combine(coll.inputs)
		coll.result = result
		coll.bytes = bytes
		exit := time.Duration(0)
		for r, e := range coll.entries {
			if e > exit {
				exit = e
				coll.last = r
			}
		}
		steps := ceilLog2(n.size)
		coll.exit = exit + time.Duration(2*steps)*(n.machine.Latency+n.machine.transferTime(bytes))
		delete(n.colls, seq)
		close(coll.done)
	}
	n.mu.Unlock()
	if !last {
		n.releaseToken()
		<-coll.done
		n.acquireToken()
	}
	c.clock = coll.exit
	c.commTime += c.clock - start
	c.lastReal = time.Now()
	if c.observer != nil {
		c.observer(Event{
			Kind: EventCollective, Rank: c.rank, Peer: -1, Tag: seq, Bytes: coll.bytes,
			Start: start, End: c.clock, Wait: c.clock - start,
			DepRank: coll.last, DepTime: coll.entries[coll.last],
		})
	}
	return coll.result
}

func ceilLog2(n int) int {
	s := 0
	for v := 1; v < n; v <<= 1 {
		s++
	}
	return s
}

// Barrier synchronizes all ranks (MPI_Barrier).
func (c *Comm) Barrier() {
	c.runCollective(nil, func([]any) (any, int) { return nil, 8 })
}

// ReduceOp selects the elementwise reduction of Allreduce.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// AllreduceInt64 performs an elementwise MPI_Allreduce over int64 slices
// and returns the reduced vector (all ranks receive the same result).
func (c *Comm) AllreduceInt64(op ReduceOp, in []int64) []int64 {
	cp := append([]int64(nil), in...)
	res := c.runCollective(cp, func(all []any) (any, int) {
		out := append([]int64(nil), all[0].([]int64)...)
		for _, a := range all[1:] {
			v := a.([]int64)
			for i := range out {
				switch op {
				case OpSum:
					out[i] += v[i]
				case OpMax:
					if v[i] > out[i] {
						out[i] = v[i]
					}
				case OpMin:
					if v[i] < out[i] {
						out[i] = v[i]
					}
				}
			}
		}
		return out, 8 * len(out)
	})
	return append([]int64(nil), res.([]int64)...)
}

// AllreduceFloat64 performs an elementwise MPI_Allreduce over float64
// slices.
func (c *Comm) AllreduceFloat64(op ReduceOp, in []float64) []float64 {
	cp := append([]float64(nil), in...)
	res := c.runCollective(cp, func(all []any) (any, int) {
		out := append([]float64(nil), all[0].([]float64)...)
		for _, a := range all[1:] {
			v := a.([]float64)
			for i := range out {
				switch op {
				case OpSum:
					out[i] += v[i]
				case OpMax:
					if v[i] > out[i] {
						out[i] = v[i]
					}
				case OpMin:
					if v[i] < out[i] {
						out[i] = v[i]
					}
				}
			}
		}
		return out, 8 * len(out)
	})
	return append([]float64(nil), res.([]float64)...)
}

// AllgatherInt64 gathers each rank's slice on every rank, indexed by
// rank (MPI_Allgatherv).
func (c *Comm) AllgatherInt64(in []int64) [][]int64 {
	cp := append([]int64(nil), in...)
	total := 0
	res := c.runCollective(cp, func(all []any) (any, int) {
		out := make([][]int64, len(all))
		for r, a := range all {
			out[r] = a.([]int64)
			total += len(out[r])
		}
		return out, 8 * total
	})
	src := res.([][]int64)
	out := make([][]int64, len(src))
	for r := range src {
		out[r] = append([]int64(nil), src[r]...)
	}
	return out
}

// Bcast distributes root's slice to every rank (MPI_Bcast).
func (c *Comm) Bcast(root int, in []float64) []float64 {
	var cp []float64
	if c.rank == root {
		cp = append([]float64(nil), in...)
	}
	res := c.runCollective(cp, func(all []any) (any, int) {
		v := all[root].([]float64)
		return v, 8 * len(v)
	})
	return append([]float64(nil), res.([]float64)...)
}

// SendFloat64s sends a copy of data to dst.
func (c *Comm) SendFloat64s(dst, tag int, data []float64) {
	c.Send(dst, tag, append([]float64(nil), data...), 8*len(data))
}

// RecvFloat64s receives a float64 slice from src.
func (c *Comm) RecvFloat64s(src, tag int) []float64 {
	return c.Recv(src, tag).([]float64)
}

// SendInt32s sends a copy of data to dst.
func (c *Comm) SendInt32s(dst, tag int, data []int32) {
	c.Send(dst, tag, append([]int32(nil), data...), 4*len(data))
}

// RecvInt32s receives an int32 slice from src.
func (c *Comm) RecvInt32s(src, tag int) []int32 {
	return c.Recv(src, tag).([]int32)
}

// PendingFrom reports the sources with queued messages for this rank
// (diagnostic; sorted, deduplicated).
func (c *Comm) PendingFrom() []int {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	set := map[int]bool{}
	for _, m := range c.net.boxes[c.rank] {
		set[m.src] = true
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

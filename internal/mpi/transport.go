package mpi

import "time"

// Transport is the communication surface the parallel algorithm
// (internal/parfmm) runs over: point-to-point float64 sends with
// (source, tag) matching, the collectives of paper Section 3.1, and the
// counters/observer hooks the observability layer consumes.
//
// Two implementations exist: *Comm, the in-process simulation with
// virtual clocks (this package), and the TCP transport of
// internal/cluster, which carries the same operations over
// length-prefixed binary frames between real processes. Algorithm code
// written against Transport runs unchanged on either.
//
// Semantics every implementation must provide:
//
//   - Sends are eager and never block; receives block until a matching
//     (src, tag) message arrives. Messages from one (src, tag) pair are
//     delivered in send order.
//   - Collectives synchronize all ranks; every rank receives the same
//     result.
//   - On unrecoverable transport failure (a peer is lost mid-job)
//     methods panic rather than return errors — matching Run's
//     panic-per-rank model — and the host recovers at the rank boundary.
//   - Elapsed is the rank's running clock since the job origin (virtual
//     for the simulation, wall for real transports); Event timestamps
//     are offsets on that clock.
//   - SetObserver installs the communication-ledger callback; it runs on
//     the rank's goroutine and must be cheap and non-blocking.
type Transport interface {
	Rank() int
	Size() int

	SendFloat64s(dst, tag int, data []float64)
	RecvFloat64s(src, tag int) []float64

	AllreduceInt64(op ReduceOp, in []int64) []int64
	AllreduceFloat64(op ReduceOp, in []float64) []float64
	Barrier()

	Elapsed() time.Duration
	CommTime() time.Duration
	BytesSent() int64
	BytesRecv() int64
	Messages() int64

	SetObserver(fn func(Event))
}

// The in-process simulation is one Transport implementation.
var _ Transport = (*Comm)(nil)

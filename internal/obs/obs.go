// Package obs is the zero-dependency observability core of the kifmm
// service: a small concurrency-safe metrics registry rendered in the
// Prometheus text exposition format, plus lightweight hierarchical
// trace spans with a bounded in-memory ring (span.go).
//
// The registry deliberately implements only what the service needs —
// counters, gauges, fixed-bucket histograms, their labeled variants and
// callback-backed (Func) forms — so the server stays scrapeable by a
// real fleet monitor without importing a client library. Metric and
// label names are validated at registration (lowercase snake_case,
// enforced by MustValidName) and duplicate registration panics, which
// keeps the catalog honest: every family renders exactly once.
//
// All instruments are safe for concurrent use; WritePrometheus may run
// concurrently with any number of writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the accepted metric/label name shape: lowercase snake_case.
// Deliberately stricter than Prometheus (no capitals, no colons, no
// leading underscore) so the catalog stays uniform.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*[a-z0-9]$`)

// MustValidName panics unless name is lowercase snake_case
// ([a-z][a-z0-9_]*[a-z0-9], no double underscores).
func MustValidName(name string) {
	if !nameRE.MatchString(name) || strings.Contains(name, "__") {
		panic(fmt.Sprintf("obs: metric name %q is not lowercase snake_case", name))
	}
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	names  []string // registration order; rendering sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one metric family: a name, type and help string plus its
// series (one per label-value combination; exactly one for unlabeled
// instruments).
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64      // histograms only
	fn              func() float64 // CounterFunc / GaugeFunc only

	mu     sync.Mutex
	keys   []string // series creation order; rendering sorts
	series map[string]*series
}

// series is one labeled instrument of a family.
type series struct {
	vals []string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// add registers a family, panicking on invalid or duplicate names.
func (r *Registry) add(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	MustValidName(name)
	for _, l := range labels {
		MustValidName(l)
	}
	if typ == "histogram" {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("obs: histogram %q buckets are not sorted", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: labels, buckets: buckets, fn: fn,
		series: make(map[string]*series),
	}
	r.byName[name] = f
	r.names = append(r.names, name)
	return f
}

// seriesFor returns (creating if needed) the series for the given label
// values.
func (f *family) seriesFor(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d", f.name, len(vals), len(f.labels)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{vals: append([]string(nil), vals...)}
		switch f.typ {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		case "histogram":
			s.h = newHistogram(f.buckets)
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.add(name, help, "counter", nil, nil, nil).seriesFor(nil).c
}

// CounterVec registers a labeled counter family; With materializes the
// series per label-value combination.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.add(name, help, "counter", labels, nil, nil)}
}

// CounterFunc registers a counter whose value is read from fn at every
// render — for monotone totals owned elsewhere (e.g. the elastic pool's
// granted-lanes count), so there is a single source of truth.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(name, help, "counter", nil, nil, fn)
}

// Gauge registers and returns a gauge (a float that goes up and down).
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.add(name, help, "gauge", nil, nil, nil).seriesFor(nil).g
}

// GaugeVec registers a labeled gauge family; With materializes the
// series per label-value combination (e.g. a build-info gauge whose
// labels carry the version strings).
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.add(name, help, "gauge", labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at every
// render — for live state (cache sizes, lanes in use) that already has
// an owner.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(name, help, "gauge", nil, nil, fn)
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (sorted, +Inf implied).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.add(name, help, "histogram", nil, buckets, nil).seriesFor(nil).h
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.add(name, help, "histogram", labels, buckets, nil)}
}

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative `le`
// buckets in the exposition, per-bucket atomics internally).
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; last is the +Inf overflow
	total  atomic.Int64
	sum    Gauge // CAS float accumulator
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.upper, v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). The number of values must match the registered label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.seriesFor(labelValues).c
}

// Snapshot returns current values keyed by comma-joined label values.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	out := make(map[string]int64, len(v.f.series))
	for _, s := range v.f.series {
		out[strings.Join(s.vals, ",")] = s.c.Value()
	}
	return out
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first
// use). The number of values must match the registered label names.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.seriesFor(labelValues).g
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on
// first use).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.seriesFor(labelValues).h
}

// FamilyInfo describes one registered metric family — the unit of the
// README metrics catalog and of the name-lint test.
type FamilyInfo struct {
	Name   string
	Type   string
	Help   string
	Labels []string
}

// Families lists every registered family, sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	out := make([]FamilyInfo, 0, len(r.names))
	for _, n := range r.names {
		f := r.byName[n]
		out = append(out, FamilyInfo{Name: f.name, Type: f.typ, Help: f.help, Labels: f.labels})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot flattens every sample to "name" or "name{k=\"v\"}" keys —
// the expvar mirror of the registry (histograms contribute _count and
// _sum samples). Keys match the exposition format lines.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		f.snapshot(out)
	}
	return out
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		fams = append(fams, r.byName[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) snapshot(out map[string]float64) {
	if f.fn != nil {
		out[f.name] = f.fn()
		return
	}
	for _, s := range f.sortedSeries() {
		lbl := labelString(f.labels, s.vals)
		switch f.typ {
		case "counter":
			out[f.name+lbl] = float64(s.c.Value())
		case "gauge":
			out[f.name+lbl] = s.g.Value()
		case "histogram":
			out[f.name+"_count"+lbl] = float64(s.h.Count())
			out[f.name+"_sum"+lbl] = s.h.Sum()
		}
	}
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), families and series sorted by
// name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		f.write(w)
	}
}

func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.keys))
	keys := append([]string(nil), f.keys...)
	sort.Strings(keys)
	for _, k := range keys {
		ss = append(ss, f.series[k])
	}
	f.mu.Unlock()
	return ss
}

func (f *family) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, fmtVal(f.fn()))
		return
	}
	for _, s := range f.sortedSeries() {
		switch f.typ {
		case "counter":
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.vals), s.c.Value())
		case "gauge":
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.vals), fmtVal(s.g.Value()))
		case "histogram":
			// Cumulative le buckets; counts are read low-to-high after the
			// totals, so concurrent observations can only make a rendered
			// bucket undercount, never break monotonicity requirements of
			// a single scrape in a meaningful way.
			var cum int64
			for i, ub := range s.h.upper {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringLe(f.labels, s.vals, fmtVal(ub)), cum)
			}
			cum += s.h.counts[len(s.h.upper)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStringLe(f.labels, s.vals, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.vals), fmtVal(s.h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.vals), s.h.Count())
		}
	}
}

// labelString renders {k1="v1",k2="v2"}; empty for no labels.
func labelString(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelStringLe renders the histogram bucket labels with the trailing
// le bound.
func labelStringLe(keys, vals []string, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func fmtVal(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpBuckets returns n bucket bounds growing geometrically from start
// by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func msd(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// twoRankTimeline builds a hand-crafted scenario with a known critical
// path: rank 0 computes 30ms and sends; rank 1 computes 10ms, blocks
// 25ms on the receive, then computes until 80ms.
func twoRankTimeline() *Timeline {
	r0 := NewRankTimeline(0)
	r0.Record(MsgRecord{
		Kind: MsgSend, Rank: 0, Peer: 1, Tag: 7, Bytes: 800,
		Start: msd(29), End: msd(30), Sent: msd(30), DepRank: -1,
	})
	r0.Close(msd(60))

	r1 := NewRankTimeline(1)
	r1.Record(MsgRecord{
		Kind: MsgRecv, Rank: 1, Peer: 0, Tag: 7, Bytes: 800,
		Start: msd(10), End: msd(36), Sent: msd(30),
		Wait: msd(25), DepRank: 0, DepTime: msd(30),
	})
	sp := r1.Begin("work", msd(40))
	r1.End(sp, msd(70))
	r1.Close(msd(80))

	return MergeTimeline([]*RankTimeline{r0, r1, nil})
}

func TestCriticalPathRecvHop(t *testing.T) {
	tl := twoRankTimeline()
	if got := tl.MaxEnd(); got != msd(80) {
		t.Fatalf("MaxEnd = %v, want 80ms", got)
	}
	path := tl.CriticalPath()
	if len(path) == 0 {
		t.Fatal("CriticalPath returned no segments")
	}
	// The segments tile [0, MaxEnd]: oldest-first, contiguous, and
	// summing exactly to the simulated wall clock.
	if path[0].Start != 0 {
		t.Errorf("path starts at %v, want 0", path[0].Start)
	}
	if last := path[len(path)-1]; last.End != msd(80) {
		t.Errorf("path ends at %v, want 80ms", last.End)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Start != path[i-1].End {
			t.Errorf("segment %d starts at %v, previous ended at %v", i, path[i].Start, path[i-1].End)
		}
	}
	if got := PathDuration(path); got != msd(80) {
		t.Errorf("PathDuration = %v, want 80ms (= MaxEnd)", got)
	}
	// Expected chain: rank 0 compute [0,30], recv edge [30,36] on rank 1,
	// rank 1 compute to 80 with the "work" span named.
	if path[0].Rank != 0 || path[0].Kind != "compute" || path[0].End != msd(30) {
		t.Errorf("first segment = %+v, want rank 0 compute [0,30ms]", path[0])
	}
	var sawEdge, sawWork bool
	for _, seg := range path {
		if seg.Kind == "recv" {
			sawEdge = true
			if seg.Start != msd(30) || seg.End != msd(36) || seg.Rank != 1 || seg.Bytes != 800 {
				t.Errorf("recv edge = %+v, want rank 1 [30ms,36ms] 800B", seg)
			}
		}
		if seg.Kind == "compute" && seg.Name == "work" {
			sawWork = true
			if seg.Start != msd(40) || seg.End != msd(70) {
				t.Errorf("work segment = %+v, want [40ms,70ms]", seg)
			}
		}
	}
	if !sawEdge || !sawWork {
		t.Errorf("path missing recv edge (%v) or named work segment (%v): %+v", sawEdge, sawWork, path)
	}
}

func TestCriticalPathCollectiveHop(t *testing.T) {
	// Rank 1 is the straggler into a collective exiting at 70ms; rank 0
	// then computes alone until 90ms. The path must hop to rank 1.
	r0 := NewRankTimeline(0)
	r0.Record(MsgRecord{
		Kind: MsgCollective, Rank: 0, Peer: -1, Tag: 0, Bytes: 64,
		Start: msd(50), End: msd(70), Wait: msd(20), DepRank: 1, DepTime: msd(60),
	})
	r0.Close(msd(90))
	r1 := NewRankTimeline(1)
	r1.Record(MsgRecord{
		Kind: MsgCollective, Rank: 1, Peer: -1, Tag: 0, Bytes: 64,
		Start: msd(60), End: msd(70), Wait: msd(10), DepRank: 1, DepTime: msd(60),
	})
	r1.Close(msd(70))
	tl := MergeTimeline([]*RankTimeline{r0, r1})

	path := tl.CriticalPath()
	if got := PathDuration(path); got != msd(90) {
		t.Fatalf("PathDuration = %v, want 90ms; path %+v", got, path)
	}
	var coll *PathSegment
	for i := range path {
		if path[i].Kind == "collective" {
			coll = &path[i]
		}
	}
	if coll == nil {
		t.Fatalf("no collective edge in path %+v", path)
	}
	if coll.Start != msd(60) || coll.End != msd(70) {
		t.Errorf("collective edge [%v,%v], want [60ms,70ms]", coll.Start, coll.End)
	}
	if path[0].Rank != 1 {
		t.Errorf("path origin rank = %d, want 1 (the straggler)", path[0].Rank)
	}
}

func TestTimelineLoadsAndTotals(t *testing.T) {
	tl := twoRankTimeline()
	if got := tl.TotalBytes(); got != 800 {
		t.Errorf("TotalBytes = %d, want 800", got)
	}
	if got := tl.TotalMessages(); got != 1 {
		t.Errorf("TotalMessages = %d, want 1", got)
	}
	loads := tl.Loads()
	if len(loads) != 2 {
		t.Fatalf("Loads returned %d rows, want 2", len(loads))
	}
	if loads[0].Rank != 0 || loads[1].Rank != 1 {
		t.Fatalf("loads out of rank order: %+v", loads)
	}
	if loads[0].Wait != 0 || loads[0].BytesSent != 800 || loads[0].MsgsSent != 1 {
		t.Errorf("rank 0 load = %+v, want no wait, 800B/1msg sent", loads[0])
	}
	if loads[1].Wait != msd(25) || loads[1].Busy != msd(55) || loads[1].BytesRecv != 800 {
		t.Errorf("rank 1 load = %+v, want 25ms wait, 55ms busy, 800B recv", loads[1])
	}
	if r := tl.ImbalanceRatio(); r <= 1 || r > 1.2 {
		t.Errorf("ImbalanceRatio = %v, want 60/55", r)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tl := twoRankTimeline()
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if trace.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", trace.DisplayUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	phases := map[string]bool{}
	for i, ev := range trace.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d has no ph: %v", i, ev)
		}
		phases[ph] = true
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
	}
	// Metadata, complete slices and the message flow pair must all be
	// present for Perfetto to render ranks, spans and arrows.
	for _, ph := range []string{"M", "X", "s", "f"} {
		if !phases[ph] {
			t.Errorf("no %q events in trace", ph)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file is the distributed half of the tracing layer: per-rank
// virtual-time span trees (VSpan/RankTimeline), the communication
// ledger (MsgRecord), and the merged Timeline with critical-path
// extraction, a load-imbalance report, and Chrome trace-event export.
//
// Distributed runs are simulated on virtual clocks (internal/mpi), so
// these spans carry time.Duration offsets from the run origin rather
// than the wall-clock time.Time of Span — a deliberate split: wall
// spans serve live requests, virtual spans serve the rank timelines
// whose absolute epoch is meaningless.

// VSpan is one node of a per-rank virtual-time span tree: a named
// interval of a rank's virtual clock, with optional string attributes.
// Methods are nil-safe so untraced runs thread nil spans at zero cost.
type VSpan struct {
	Name string `json:"name"`
	Rank int    `json:"rank"`
	// Start and End are virtual-clock offsets from the run origin.
	Start    time.Duration     `json:"start_ns"`
	End      time.Duration     `json:"end_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*VSpan          `json:"children,omitempty"`
}

// SetAttr attaches a string attribute (nil-safe).
func (s *VSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// Dur returns the span's length (0 for nil or unclosed spans).
func (s *VSpan) Dur() time.Duration {
	if s == nil || s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// Find returns the first descendant (depth-first, s included) with the
// given name, or nil.
func (s *VSpan) Find(name string) *VSpan {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// MsgKind discriminates communication-ledger records.
type MsgKind uint8

// Ledger record kinds.
const (
	// MsgSend is a point-to-point send (non-blocking in the eager model).
	MsgSend MsgKind = iota
	// MsgRecv is a blocking point-to-point receive.
	MsgRecv
	// MsgCollective is one rank's participation in a collective.
	MsgCollective
)

// String names the kind for reports and trace exports.
func (k MsgKind) String() string {
	switch k {
	case MsgSend:
		return "send"
	case MsgRecv:
		return "recv"
	case MsgCollective:
		return "collective"
	}
	return "unknown"
}

// MsgRecord is one entry of a rank's communication ledger: a send,
// receive or collective with its virtual-time interval and — for
// blocking operations — the cross-rank dependency that ended the wait.
type MsgRecord struct {
	Kind MsgKind `json:"kind"`
	// Rank is the recording rank; Peer the destination (send) or source
	// (recv), -1 for collectives.
	Rank int `json:"rank"`
	Peer int `json:"peer"`
	// Tag is the point-to-point tag, or the collective sequence number.
	Tag   int `json:"tag"`
	Bytes int `json:"bytes"`
	// Start/End delimit the operation on the recording rank's clock.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Sent is the sender's clock when the payload finished enqueueing
	// (recv records only); Sent + latency is the delivery time.
	Sent time.Duration `json:"sent_ns,omitempty"`
	// Wait is how long the operation blocked (recv: until the payload
	// arrived; collective: until the last rank entered and the
	// synchronization cost elapsed).
	Wait time.Duration `json:"wait_ns,omitempty"`
	// DepRank/DepTime name the cross-rank dependency a blocked
	// operation waited on: the sender at its enqueue time, or the last
	// rank to enter a collective at its entry time. DepRank is -1 when
	// the operation did not block on another rank.
	DepRank int           `json:"dep_rank"`
	DepTime time.Duration `json:"dep_time_ns,omitempty"`
}

// RankTimeline accumulates one rank's span tree and message ledger
// while the rank runs. It is used by a single rank goroutine; the
// merged Timeline is read only after the run completes.
type RankTimeline struct {
	Rank int         `json:"rank"`
	Root *VSpan      `json:"root"`
	Msgs []MsgRecord `json:"msgs"`

	stack []*VSpan
}

// NewRankTimeline opens a timeline for one rank, rooted at a "rank"
// span starting at virtual time zero.
func NewRankTimeline(rank int) *RankTimeline {
	return &RankTimeline{Rank: rank, Root: &VSpan{Name: "rank", Rank: rank}}
}

// Begin opens a child span at virtual time `at` under the innermost
// open span (nil-safe: returns nil on a nil timeline).
func (rt *RankTimeline) Begin(name string, at time.Duration) *VSpan {
	if rt == nil {
		return nil
	}
	parent := rt.Root
	if n := len(rt.stack); n > 0 {
		parent = rt.stack[n-1]
	}
	sp := &VSpan{Name: name, Rank: rt.Rank, Start: at}
	parent.Children = append(parent.Children, sp)
	rt.stack = append(rt.stack, sp)
	return sp
}

// End closes sp at virtual time `at`, popping the open-span stack
// through it (nil-safe).
func (rt *RankTimeline) End(sp *VSpan, at time.Duration) {
	if rt == nil || sp == nil {
		return
	}
	sp.End = at
	for n := len(rt.stack); n > 0; n-- {
		top := rt.stack[n-1]
		rt.stack = rt.stack[:n-1]
		if top == sp {
			break
		}
	}
}

// Record appends a ledger entry.
func (rt *RankTimeline) Record(m MsgRecord) {
	if rt == nil {
		return
	}
	rt.Msgs = append(rt.Msgs, m)
}

// Close ends the root span (and anything left open) at virtual time at.
func (rt *RankTimeline) Close(at time.Duration) {
	if rt == nil {
		return
	}
	for _, sp := range rt.stack {
		sp.End = at
	}
	rt.stack = rt.stack[:0]
	rt.Root.End = at
}

// Timeline is the merged view of a distributed run: every rank's span
// tree plus the global communication ledger.
type Timeline struct {
	Ranks []*RankTimeline `json:"ranks"`
}

// MergeTimeline combines per-rank timelines into one global timeline.
// Nil entries (ranks that did not record) are dropped.
func MergeTimeline(rts []*RankTimeline) *Timeline {
	t := &Timeline{}
	for _, rt := range rts {
		if rt != nil {
			t.Ranks = append(t.Ranks, rt)
		}
	}
	sort.Slice(t.Ranks, func(i, j int) bool { return t.Ranks[i].Rank < t.Ranks[j].Rank })
	return t
}

// MaxEnd returns the latest root-span end over all ranks — the merged
// timeline's virtual wall clock (mpi.MaxElapsed up to the final
// bookkeeping tick).
func (t *Timeline) MaxEnd() time.Duration {
	var m time.Duration
	for _, rt := range t.Ranks {
		if rt.Root != nil && rt.Root.End > m {
			m = rt.Root.End
		}
	}
	return m
}

// TotalBytes sums the payload bytes of all point-to-point sends.
func (t *Timeline) TotalBytes() int64 {
	var b int64
	for _, rt := range t.Ranks {
		for _, m := range rt.Msgs {
			if m.Kind == MsgSend {
				b += int64(m.Bytes)
			}
		}
	}
	return b
}

// TotalMessages counts all point-to-point sends.
func (t *Timeline) TotalMessages() int {
	n := 0
	for _, rt := range t.Ranks {
		for _, m := range rt.Msgs {
			if m.Kind == MsgSend {
				n++
			}
		}
	}
	return n
}

// PathSegment is one link of the critical path: an interval on one
// rank's virtual clock, either local compute (named by the innermost
// enclosing span) or a blocking communication edge.
type PathSegment struct {
	Rank int    `json:"rank"`
	Kind string `json:"kind"` // "compute", "recv" or "collective"
	Name string `json:"name"`
	// Start/End are on Rank's clock for compute segments; for
	// communication edges Start is the dependency time on the upstream
	// rank and End the unblock time on Rank.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	Bytes int           `json:"bytes,omitempty"`
}

// Dur returns the segment's length.
func (s PathSegment) Dur() time.Duration { return s.End - s.Start }

// PathDuration sums the lengths of a critical path's segments. For a
// complete timeline it equals MaxEnd: the path's segments tile the
// interval [0, MaxEnd] without gaps or overlaps.
func PathDuration(path []PathSegment) time.Duration {
	var d time.Duration
	for _, s := range path {
		d += s.Dur()
	}
	return d
}

// CriticalPath extracts the chain of compute spans and message edges
// that determines the run's virtual wall clock. It walks backwards from
// the slowest rank's finish: local time back to the last blocking
// operation, then across the dependency edge to the upstream rank, and
// so on to time zero. Segments are returned oldest first and are
// contiguous: each segment's End is the next segment's Start.
func (t *Timeline) CriticalPath() []PathSegment {
	if len(t.Ranks) == 0 {
		return nil
	}
	byRank := make(map[int]*RankTimeline, len(t.Ranks))
	// syncs[rank] are the blocking operations with a cross-rank (or
	// collective self-) dependency, ordered by End time.
	syncs := make(map[int][]MsgRecord, len(t.Ranks))
	cur := t.Ranks[0]
	for _, rt := range t.Ranks {
		byRank[rt.Rank] = rt
		if rt.Root.End > cur.Root.End {
			cur = rt
		}
		for _, m := range rt.Msgs {
			if m.DepRank >= 0 && m.End > m.DepTime {
				syncs[rt.Rank] = append(syncs[rt.Rank], m)
			}
		}
		sort.SliceStable(syncs[rt.Rank], func(i, j int) bool {
			return syncs[rt.Rank][i].End < syncs[rt.Rank][j].End
		})
	}

	var rev []PathSegment
	rank, now := cur.Rank, cur.Root.End
	// now strictly decreases every iteration (DepTime < End <= now), so
	// the walk terminates; the bound is a defense against a malformed
	// ledger.
	for iter := 0; now > 0 && iter < 1<<20; iter++ {
		var dep *MsgRecord
		for i := len(syncs[rank]) - 1; i >= 0; i-- {
			if s := syncs[rank][i]; s.End <= now {
				dep = &s
				break
			}
		}
		if dep == nil {
			rev = append(rev, computeSegments(byRank[rank], 0, now)...)
			break
		}
		if dep.End < now {
			rev = append(rev, computeSegments(byRank[rank], dep.End, now)...)
		}
		kind := "recv"
		name := fmt.Sprintf("msg %d->%d", dep.Peer, dep.Rank)
		if dep.Kind == MsgCollective {
			kind = "collective"
			name = fmt.Sprintf("collective #%d", dep.Tag)
		}
		rev = append(rev, PathSegment{
			Rank: dep.Rank, Kind: kind, Name: name,
			Start: dep.DepTime, End: dep.End, Bytes: dep.Bytes,
		})
		rank, now = dep.DepRank, dep.DepTime
	}
	// Reverse into oldest-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// computeSegments covers (from, to] on one rank with compute path
// segments, newest first, split and named at the rank's span
// boundaries (innermost span wins; gaps are named "compute").
func computeSegments(rt *RankTimeline, from, to time.Duration) []PathSegment {
	if rt == nil || to <= from {
		return nil
	}
	type depthSpan struct {
		s     *VSpan
		depth int
	}
	var flat []depthSpan
	var walk func(s *VSpan, d int)
	walk = func(s *VSpan, d int) {
		if s == nil {
			return
		}
		if s.End > s.Start {
			flat = append(flat, depthSpan{s, d})
		}
		for _, c := range s.Children {
			walk(c, d+1)
		}
	}
	walk(rt.Root, 0)

	// Cut points: the interval bounds plus every span boundary inside.
	cuts := []time.Duration{from, to}
	for _, f := range flat {
		if f.s.Start > from && f.s.Start < to {
			cuts = append(cuts, f.s.Start)
		}
		if f.s.End > from && f.s.End < to {
			cuts = append(cuts, f.s.End)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	nameAt := func(at time.Duration) string {
		name, depth := "compute", -1
		for _, f := range flat {
			if f.s.Start <= at && at < f.s.End && f.depth > depth {
				name, depth = f.s.Name, f.depth
			}
		}
		return name
	}

	var out []PathSegment // newest first, matching the backward walk
	for i := len(cuts) - 1; i > 0; i-- {
		a, b := cuts[i-1], cuts[i]
		if b <= a {
			continue
		}
		name := nameAt(a + (b-a)/2)
		if n := len(out); n > 0 && out[n-1].Name == name && out[n-1].Start == b {
			out[n-1].Start = a // merge adjacent same-name segments
			continue
		}
		out = append(out, PathSegment{Rank: rt.Rank, Kind: "compute", Name: name, Start: a, End: b})
	}
	return out
}

// RankLoad is one row of the load-imbalance report.
type RankLoad struct {
	Rank int `json:"rank"`
	// Elapsed is the rank's final virtual time; Wait the part spent
	// blocked in receives and collectives; Busy the rest.
	Elapsed time.Duration `json:"elapsed_ns"`
	Wait    time.Duration `json:"wait_ns"`
	Busy    time.Duration `json:"busy_ns"`
	// BytesSent/BytesRecv and MsgsSent/MsgsRecv count point-to-point
	// traffic; Collectives counts collective participations.
	BytesSent   int64 `json:"bytes_sent"`
	BytesRecv   int64 `json:"bytes_recv"`
	MsgsSent    int   `json:"msgs_sent"`
	MsgsRecv    int   `json:"msgs_recv"`
	Collectives int   `json:"collectives"`
}

// Loads summarizes every rank for the load-imbalance report, ordered
// by rank.
func (t *Timeline) Loads() []RankLoad {
	out := make([]RankLoad, 0, len(t.Ranks))
	for _, rt := range t.Ranks {
		l := RankLoad{Rank: rt.Rank, Elapsed: rt.Root.End}
		for _, m := range rt.Msgs {
			switch m.Kind {
			case MsgSend:
				l.BytesSent += int64(m.Bytes)
				l.MsgsSent++
			case MsgRecv:
				l.BytesRecv += int64(m.Bytes)
				l.MsgsRecv++
				l.Wait += m.Wait
			case MsgCollective:
				l.Collectives++
				l.Wait += m.Wait
			}
		}
		l.Busy = l.Elapsed - l.Wait
		if l.Busy < 0 {
			l.Busy = 0
		}
		out = append(out, l)
	}
	return out
}

// ImbalanceRatio is the paper's load-imbalance indicator over busy
// (non-blocked) time: max busy / min busy, 1 for degenerate input.
func (t *Timeline) ImbalanceRatio() float64 {
	loads := t.Loads()
	if len(loads) == 0 {
		return 1
	}
	min, max := loads[0].Busy, loads[0].Busy
	for _, l := range loads[1:] {
		if l.Busy < min {
			min = l.Busy
		}
		if l.Busy > max {
			max = l.Busy
		}
	}
	if min <= 0 {
		return 1
	}
	return float64(max) / float64(min)
}

// chromeEvent is one entry of the Chrome trace-event JSON array
// (the "JSON Array Format" both chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level trace shape.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the merged timeline as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing: one thread per rank
// (pid 0) carrying the span tree, recv-wait slices, flow arrows for
// the messages that blocked a receiver, and the extracted critical
// path as its own process (pid 1).
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "ranks"},
	})
	flowID := 0
	for _, rt := range t.Ranks {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rt.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rt.Rank)},
		})
		var walk func(s *VSpan)
		walk = func(s *VSpan) {
			if s == nil {
				return
			}
			if s.End > s.Start {
				args := make(map[string]any, len(s.Attrs))
				for k, v := range s.Attrs {
					args[k] = v
				}
				evs = append(evs, chromeEvent{
					Name: s.Name, Ph: "X", Ts: usec(s.Start), Dur: usec(s.End - s.Start),
					Pid: 0, Tid: s.Rank, Args: args,
				})
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(rt.Root)
		for _, m := range rt.Msgs {
			if m.Kind == MsgRecv && m.Wait > 0 {
				evs = append(evs, chromeEvent{
					Name: fmt.Sprintf("wait recv %d", m.Peer), Ph: "X", Cat: "wait",
					Ts: usec(m.Start), Dur: usec(m.Wait), Pid: 0, Tid: m.Rank,
					Args: map[string]any{"bytes": m.Bytes, "tag": m.Tag},
				})
				flowID++
				id := fmt.Sprintf("m%d", flowID)
				evs = append(evs,
					chromeEvent{Name: "msg", Ph: "s", Cat: "msg", Ts: usec(m.Sent), Pid: 0, Tid: m.Peer, ID: id},
					chromeEvent{Name: "msg", Ph: "f", BP: "e", Cat: "msg", Ts: usec(m.End), Pid: 0, Tid: m.Rank, ID: id},
				)
			}
		}
	}
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "critical path"},
	})
	for _, seg := range t.CriticalPath() {
		evs = append(evs, chromeEvent{
			Name: seg.Name, Ph: "X", Cat: seg.Kind, Ts: usec(seg.Start), Dur: usec(seg.End - seg.Start),
			Pid: 1, Tid: 0,
			Args: map[string]any{"rank": seg.Rank, "kind": seg.Kind},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTraceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is the W3C Trace Context identity of a request: a 128-bit
// trace id shared by every span of a distributed operation and the
// 64-bit id of the span that caused this one (the parent on the wire).
// Both are lowercase hex, per the spec; the zero id is invalid.
//
// The client stamps outgoing requests with a `traceparent` header built
// from a TraceContext, and the server adopts the header's trace id as
// the root evaluate-span's trace, so one id follows the request across
// the process hop.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, not all zero.
	TraceID string
	// SpanID is 16 lowercase hex characters, not all zero — the id of
	// the caller's span (the parent of whatever span the receiver opens).
	SpanID string
	// Flags is the trace-flags octet; bit 0 is "sampled".
	Flags byte
}

// traceparentVersion is the only version this implementation emits.
const traceparentVersion = "00"

// NewTraceContext returns a fresh sampled trace context with random ids.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: NewSpanID(), Flags: 1}
}

// NewSpanID returns a fresh random 64-bit span id in lowercase hex.
func NewSpanID() string { return randHex(8) }

func randHex(nbytes int) string {
	b := make([]byte, nbytes)
	for {
		if _, err := rand.Read(b); err != nil {
			panic(fmt.Sprintf("obs: reading randomness: %v", err))
		}
		for _, v := range b {
			if v != 0 {
				return hex.EncodeToString(b)
			}
		}
		// All-zero ids are invalid per the spec; draw again.
	}
}

// Traceparent renders the context as a W3C traceparent header value:
// version-traceid-spanid-flags.
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("%s-%s-%s-%02x", traceparentVersion, tc.TraceID, tc.SpanID, tc.Flags)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// non-ff version whose first four fields have the version-00 layout
// (per the spec's forward-compatibility rule) and rejects malformed
// input: wrong field lengths, non-hex or uppercase digits, all-zero
// trace or span ids, and the invalid version ff.
func ParseTraceparent(h string) (TraceContext, error) {
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", h)
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isLowerHex(version, 2) || version == "ff" {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: invalid version %q", h, version)
	}
	if version == traceparentVersion && len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: version 00 has exactly 4 fields", h)
	}
	if !isLowerHex(traceID, 32) || allZero(traceID) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: invalid trace id %q", h, traceID)
	}
	if !isLowerHex(spanID, 16) || allZero(spanID) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: invalid parent span id %q", h, spanID)
	}
	if !isLowerHex(flags, 2) {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: invalid flags %q", h, flags)
	}
	raw, _ := hex.DecodeString(flags)
	return TraceContext{TraceID: traceID, SpanID: spanID, Flags: raw[0]}, nil
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// traceCtxKey keys a TraceContext in a context.Context.
type traceCtxKey struct{}

// ContextWithTrace returns ctx carrying tc, retrievable with
// TraceFromContext. The HTTP layer stashes the request's trace context
// here so the evaluation path can stamp span attributes without the
// two layers knowing about each other.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext returns the trace context carried by ctx, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

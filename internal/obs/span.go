package obs

import (
	"sync"
	"time"
)

// Span is one node of a lightweight trace: a named wall-clock interval
// with optional string attributes and child spans. The evaluation
// service records one root span per evaluation (children per FMM pass,
// grandchildren per tree level) and serves recent roots from a SpanRing.
//
// A span tree is built by a single goroutine (the FMM's passes are
// sequential; levels within a pass are sequential too) and becomes
// effectively immutable once the root has ended — which is what makes
// handing finished trees to concurrent readers safe without locks.
// Every method tolerates a nil receiver and returns/does nothing, so
// untraced code paths thread a nil span through at zero cost.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// Duration is the span's wall-clock length, 0 until End. It
	// marshals as integer nanoseconds.
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild opens a child span under s (nil-safe: returns nil).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// End fixes the span's duration; the first call wins (later calls and
// nil receivers are no-ops).
func (s *Span) End() {
	if s == nil || s.Duration != 0 {
		return
	}
	s.Duration = time.Since(s.Start)
}

// SetAttr attaches a string attribute (nil-safe).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// Find returns the first descendant (depth-first, s included) with the
// given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// SpanRing is a bounded ring of finished root spans: adding the
// (capacity+1)-th span overwrites the oldest, so memory stays O(capacity)
// regardless of traffic. Safe for concurrent use.
type SpanRing struct {
	mu   sync.Mutex
	buf  []*Span
	next int   // next write position
	n    int   // live entries (<= len(buf))
	seen int64 // total ever added
}

// NewSpanRing returns a ring holding up to capacity spans (min 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]*Span, capacity)}
}

// Add records a finished span, evicting the oldest when full.
func (r *SpanRing) Add(s *Span) {
	if s == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.seen++
	r.mu.Unlock()
}

// Recent returns up to n spans, newest first (n <= 0 means all live
// entries).
func (r *SpanRing) Recent(n int) []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]*Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the number of live entries.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns how many spans were ever added (including evicted).
func (r *SpanRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

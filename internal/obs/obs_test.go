package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden locks the exact Prometheus text rendering: the
// registry is fed deterministic values, so the full page is comparable
// byte for byte.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Add(3)
	g := r.Gauge("lanes_in_use", "Lanes currently leased.")
	g.Set(2.5)
	r.GaugeFunc(
		"plans_live", "Live cached plans.",
		func() float64 { return 4 },
	)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("stage_runs_total", "Runs per stage.", "stage")
	v.With("up").Add(2)
	v.With("down").Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP lanes_in_use Lanes currently leased.
# TYPE lanes_in_use gauge
lanes_in_use 2.5
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
# HELP plans_live Live cached plans.
# TYPE plans_live gauge
plans_live 4
# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total 3
# HELP stage_runs_total Runs per stage.
# TYPE stage_runs_total counter
stage_runs_total{stage="down"} 1
stage_runs_total{stage="up"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	snap := r.Snapshot()
	for k, wantV := range map[string]float64{
		"requests_total":                 3,
		"lanes_in_use":                   2.5,
		"plans_live":                     4,
		"latency_seconds_count":          3,
		"latency_seconds_sum":            5.55,
		`stage_runs_total{stage="up"}`:   2,
		`stage_runs_total{stage="down"}`: 1,
	} {
		if snap[k] != wantV {
			t.Errorf("Snapshot[%q] = %g, want %g", k, snap[k], wantV)
		}
	}
}

// TestHistogramBucketEdges: le buckets are inclusive upper bounds.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1, 2})
	h.Observe(1) // exactly on a bound: belongs to le="1"
	h.Observe(2)
	h.Observe(2.001)
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, line := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}
}

func TestNameValidation(t *testing.T) {
	valid := []string{"a0", "requests_total", "stage_seconds", "x9_y"}
	for _, n := range valid {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("MustValidName(%q) panicked: %v", n, r)
				}
			}()
			MustValidName(n)
		}()
	}
	invalid := []string{"", "Total", "http.requests", "a-b", "_x", "x_", "a__b", "9x", "kifmm:total"}
	for _, n := range invalid {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustValidName(%q) did not panic", n)
				}
			}()
			MustValidName(n)
		}()
	}

	// Duplicate registration panics too.
	r := NewRegistry()
	r.Counter("dup_total", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		r.Counter("dup_total", "x")
	}()
}

// TestRegistryRace hammers every instrument kind concurrently with
// scrapes; run under -race this is the concurrency contract of the
// registry (concurrent record + scrape must be clean).
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("wait_seconds", "wait", ExpBuckets(0.001, 10, 4))
	cv := r.CounterVec("by_code_total", "by code", "code")
	hv := r.HistogramVec("stage_seconds", "stages", []float64{0.1, 1}, "stage")
	r.GaugeFunc("live", "live", func() float64 { return float64(c.Value()) })

	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				g.Add(0.5)
				h.Observe(float64(i%7) / 100)
				cv.With(fmt.Sprintf("%d", 200+i%3)).Inc()
				hv.With([]string{"up", "down"}[i%2]).Observe(0.05)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		r.WritePrometheus(&b)
		if !strings.Contains(b.String(), "# TYPE ops_total counter") {
			t.Fatal("scrape lost a family")
		}
		_ = r.Snapshot()
		_ = r.Families()
	}
	wg.Wait()

	if c.Value() != 8*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), 8*perWorker)
	}
	if h.Count() <= 0 || h.Sum() < 0 {
		t.Error("histogram did not record")
	}
}

// TestSpanRingBounded: the ring never holds more than its capacity no
// matter how many spans are added, and Recent returns newest first.
func TestSpanRingBounded(t *testing.T) {
	const capacity = 8
	ring := NewSpanRing(capacity)
	for i := 0; i < 10*capacity; i++ {
		s := StartSpan(fmt.Sprintf("eval-%d", i))
		s.End()
		ring.Add(s)
		if ring.Len() > capacity {
			t.Fatalf("ring grew to %d > capacity %d", ring.Len(), capacity)
		}
	}
	if ring.Len() != capacity {
		t.Errorf("Len = %d, want %d", ring.Len(), capacity)
	}
	if ring.Total() != 10*capacity {
		t.Errorf("Total = %d, want %d", ring.Total(), 10*capacity)
	}
	recent := ring.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) returned %d", len(recent))
	}
	for i, want := range []string{"eval-79", "eval-78", "eval-77"} {
		if recent[i].Name != want {
			t.Errorf("Recent[%d] = %q, want %q", i, recent[i].Name, want)
		}
	}
	if all := ring.Recent(0); len(all) != capacity {
		t.Errorf("Recent(0) returned %d, want all %d", len(all), capacity)
	}
	if over := ring.Recent(1000); len(over) != capacity {
		t.Errorf("Recent(1000) returned %d, want %d", len(over), capacity)
	}
}

// TestSpanTree: structure, nil-safety and duration accounting of the
// span builder.
func TestSpanTree(t *testing.T) {
	root := StartSpan("evaluate")
	up := root.StartChild("up")
	lvl := up.StartChild("level 3")
	time.Sleep(time.Millisecond)
	lvl.End()
	up.End()
	root.SetAttr("rhs", "4")
	root.End()
	d := root.Duration
	root.End() // idempotent
	if root.Duration != d {
		t.Error("second End changed the duration")
	}

	if root.Find("level 3") != lvl {
		t.Error("Find did not locate the grandchild")
	}
	if root.Find("nope") != nil {
		t.Error("Find invented a span")
	}
	if up.Duration <= 0 || up.Duration > root.Duration {
		t.Errorf("child duration %v outside root %v", up.Duration, root.Duration)
	}
	if lvl.Duration > up.Duration {
		t.Errorf("grandchild %v exceeds parent %v", lvl.Duration, up.Duration)
	}
	if root.Attrs["rhs"] != "4" {
		t.Errorf("attr lost: %v", root.Attrs)
	}

	// Nil receivers are inert end to end.
	var nilSpan *Span
	if nilSpan.StartChild("x") != nil {
		t.Error("nil StartChild returned a span")
	}
	nilSpan.End()
	nilSpan.SetAttr("k", "v")
	if nilSpan.Find("x") != nil {
		t.Error("nil Find returned a span")
	}
	NewSpanRing(3).Add(nil) // must not panic or count
}

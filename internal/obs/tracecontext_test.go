package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("NewTraceContext() = %+v, want 32-hex trace id and 16-hex span id", tc)
	}
	if tc.Flags != 1 {
		t.Errorf("Flags = %d, want 1 (sampled)", tc.Flags)
	}
	h := tc.Traceparent()
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != tc {
		t.Errorf("round trip: got %+v, want %+v", got, tc)
	}
}

func TestTraceparentFormat(t *testing.T) {
	tc := TraceContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
		Flags:   1,
	}
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if got := tc.Traceparent(); got != want {
		t.Errorf("Traceparent() = %q, want %q", got, want)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	for _, h := range []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
		// Future version with extra fields is accepted per the spec's
		// forward-compatibility rule.
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	} {
		if _, err := ParseTraceparent(h); err != nil {
			t.Errorf("ParseTraceparent(%q) = %v, want nil", h, err)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 with extra field
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad version hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // all-zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01",    // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",    // short span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",   // bad flags
		"00--4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // empty version slot shift
	} {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) = nil error, want malformed-header error", h)
		}
	}
}

func TestNewSpanIDUniqueHex(t *testing.T) {
	a, b := NewSpanID(), NewSpanID()
	if a == b {
		t.Errorf("NewSpanID() returned %q twice", a)
	}
	for _, id := range []string{a, b} {
		if len(id) != 16 || strings.ToLower(id) != id {
			t.Errorf("NewSpanID() = %q, want 16 lowercase hex chars", id)
		}
	}
}

func TestTraceContextOnContext(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("TraceFromContext(background) = ok, want absent")
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Errorf("TraceFromContext = %+v, %v; want %+v, true", got, ok, tc)
	}
}

package parfmm

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/morton"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// RankInput is one rank's share of a distributed evaluation: its local
// source points (flat xyz), their densities (SourceDim components per
// point) and the points' indices in the caller's global order, used to
// scatter the computed potentials back.
type RankInput struct {
	Pts       []float64
	Den       []float64
	GlobalIdx []int32
}

// RankOutput is what one rank's evaluation produces.
type RankOutput struct {
	// Pot holds the rank's local potentials (TargetDim components per
	// point), aligned with RankInput.GlobalIdx.
	Pot []float64
	// Boxes is the global tree size, Depth its level count.
	Boxes, Depth int
	// Timeline is the rank's span tree and communication ledger; nil
	// unless Options.Trace.
	Timeline *obs.RankTimeline
}

// PartitionPoints Morton-partitions n points (flat xyz in src, sd
// density components per point in den) into nproc contiguous
// rank shares — the coordinator-side half of the paper's Section 3.1
// partitioning, with unit weight per point. Every point lands in
// exactly one share; shares may be empty when nproc > n.
func PartitionPoints(src, den []float64, sd, nproc int) []*RankInput {
	n := len(src) / 3
	cc, chw := geom.BoundingCube(src)
	items := make([]morton.Weighted, n)
	for i := 0; i < n; i++ {
		items[i] = morton.Weighted{
			Key:    morton.PointKey(src[3*i], src[3*i+1], src[3*i+2], cc, chw),
			Weight: 1,
			Index:  i,
		}
	}
	parts := morton.Partition(items, nproc)
	inputs := make([]*RankInput, nproc)
	for r := 0; r < nproc; r++ {
		in := &RankInput{
			Pts:       make([]float64, 0, 3*len(parts[r])),
			Den:       make([]float64, 0, sd*len(parts[r])),
			GlobalIdx: make([]int32, 0, len(parts[r])),
		}
		for _, g := range parts[r] {
			in.Pts = append(in.Pts, src[3*g:3*g+3]...)
			in.Den = append(in.Den, den[g*sd:(g+1)*sd]...)
			in.GlobalIdx = append(in.GlobalIdx, int32(g))
		}
		inputs[r] = in
	}
	return inputs
}

// EvaluateRank runs one rank of the parallel algorithm over transport t:
// global tree construction, owner assignment and a single interaction
// evaluation (Section 3's passes, with the Algorithm-1 ghost exchanges
// on the wire when t is a network transport). It is the entry point
// cluster workers drive; the simulated Evaluate keeps its own loop for
// the warmup/iteration timing protocol.
//
// Transport failures surface as panics (the Transport contract); the
// caller recovers at the rank boundary.
func EvaluateRank(t mpi.Transport, in *RankInput, opt Options) (*RankOutput, error) {
	if opt.Kernel == nil {
		return nil, fmt.Errorf("parfmm: Options.Kernel is required")
	}
	if opt.Degree == 0 {
		opt.Degree = 6
	}
	if opt.MaxPoints == 0 {
		opt.MaxPoints = 60
	}
	if opt.PinvTol == 0 {
		opt.PinvTol = 1e-10
	}
	sd := opt.Kernel.SourceDim()
	if len(in.Den) != len(in.Pts)/3*sd {
		return nil, fmt.Errorf("parfmm: rank density length %d, want %d", len(in.Den), len(in.Pts)/3*sd)
	}

	rk := newRank(t, in, opt)
	if opt.Trace {
		tl := obs.NewRankTimeline(t.Rank())
		rk.tl = tl
		t.SetObserver(func(ev mpi.Event) { tl.Record(msgRecord(ev)) })
	}
	sp := rk.beginSpan("tree_build")
	rk.buildGlobalTree()
	rk.endSpan(sp)
	sp = rk.beginSpan("assign_owners")
	rk.assignOwners()
	rk.endSpan(sp)
	sp = rk.beginSpan("iteration")
	rk.evaluate()
	rk.endSpan(sp)
	rk.tl.Close(t.Elapsed())
	return &RankOutput{
		Pot:      rk.pot,
		Boxes:    len(rk.tree.Boxes),
		Depth:    rk.tree.Depth(),
		Timeline: rk.tl,
	}, nil
}

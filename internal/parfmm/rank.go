package parfmm

import (
	"math"
	"strconv"

	"repro/internal/fmm"
	"repro/internal/kernels"
	"repro/internal/morton"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/translate"
	"repro/internal/tree"
)

// rank holds one processor's state. c is any mpi.Transport — the
// in-process simulation (Evaluate) or the cluster's TCP transport
// (EvaluateRank); the algorithm code is identical over both.
type rank struct {
	c   mpi.Transport
	in  *RankInput
	opt Options

	// tl records this rank's span timeline and communication ledger
	// when Options.Trace is set (nil otherwise; all helpers nil-safe).
	tl *obs.RankTimeline

	ops *translate.Set
	fft *translate.FFTM2L

	tree *tree.Tree
	pden []float64 // local densities in Morton order
	gCnt []int64   // global point count per box

	words   int      // mask words per box
	contrib []uint64 // contributor masks, boxes x words
	srcUse  []uint64 // source-ghost user masks
	denUse  []uint64 // upward-density user masks
	owner   []int32

	// Per-iteration ghost state.
	ghostPos map[int32][]float64 // leaf box -> global source positions
	ghostDen map[int32][]float64 // leaf box -> global source densities
	ghostPhi map[int32][]float64 // box -> global upward equivalent density
	phiU     [][]float64         // partial upward densities (contributed boxes)
	phiD     [][]float64         // downward densities (contributed boxes)

	pot   []float64 // local potentials, original local order
	stats fmm.Stats
}

func newRank(c mpi.Transport, in *RankInput, opt Options) *rank {
	return &rank{c: c, in: in, opt: opt}
}

// beginSpan opens a virtual-time span on the rank's timeline (nil when
// tracing is off). Elapsed() folds pending wall time into the virtual
// clock, so span edges line up with the communication ledger.
func (rk *rank) beginSpan(name string) *obs.VSpan {
	if rk.tl == nil {
		return nil
	}
	return rk.tl.Begin(name, rk.c.Elapsed())
}

// endSpan closes sp at the current virtual time.
func (rk *rank) endSpan(sp *obs.VSpan) {
	if rk.tl == nil || sp == nil {
		return
	}
	rk.tl.End(sp, rk.c.Elapsed())
}

// ioMark snapshots the communication counters so endSpanIO can attach
// the span's byte/message deltas as attributes.
type ioMark struct {
	bytes int64
	msgs  int64
}

func (rk *rank) markIO() ioMark {
	return ioMark{bytes: rk.c.BytesSent() + rk.c.BytesRecv(), msgs: rk.c.Messages()}
}

// endSpanIO closes a communication span, attaching the bytes moved
// (sent + received) and messages sent since mark.
func (rk *rank) endSpanIO(sp *obs.VSpan, mark ioMark) {
	if rk.tl == nil || sp == nil {
		return
	}
	sp.SetAttr("bytes", strconv.FormatInt(rk.c.BytesSent()+rk.c.BytesRecv()-mark.bytes, 10))
	sp.SetAttr("msgs", strconv.FormatInt(rk.c.Messages()-mark.msgs, 10))
	rk.tl.End(sp, rk.c.Elapsed())
}

// msgRecord converts an mpi ledger event into the obs representation
// (parfmm owns the conversion so mpi stays observability-agnostic).
func msgRecord(ev mpi.Event) obs.MsgRecord {
	kind := obs.MsgSend
	switch ev.Kind {
	case mpi.EventRecv:
		kind = obs.MsgRecv
	case mpi.EventCollective:
		kind = obs.MsgCollective
	}
	return obs.MsgRecord{
		Kind: kind, Rank: ev.Rank, Peer: ev.Peer, Tag: ev.Tag, Bytes: ev.Bytes,
		Start: ev.Start, End: ev.End, Sent: ev.Sent, Wait: ev.Wait,
		DepRank: ev.DepRank, DepTime: ev.DepTime,
	}
}

// contributes reports whether this rank has points in box bi.
func (rk *rank) contributes(bi int32) bool { return rk.tree.Boxes[bi].SrcCount > 0 }

// maskBit reports whether rank r's bit is set in the mask of box bi.
func maskBit(mask []uint64, words int, bi int32, r int) bool {
	return mask[int(bi)*words+r/64]&(1<<(r%64)) != 0
}

// buildGlobalTree performs the level-by-level construction of paper
// Section 3.1: each rank fills its local point counts into the level's
// slab of the global tree array, an MPI_Allreduce sums them, and every
// rank derives the identical next level from the global counts.
func (rk *rank) buildGlobalTree() {
	c := rk.c
	// Globally agreed computational domain.
	lo := []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := 0; i+2 < len(rk.in.Pts); i += 3 {
		for d := 0; d < 3; d++ {
			if v := rk.in.Pts[i+d]; v < lo[d] {
				lo[d] = v
			}
			if v := rk.in.Pts[i+d]; v > hi[d] {
				hi[d] = v
			}
		}
	}
	lo = c.AllreduceFloat64(mpi.OpMin, lo)
	hi = c.AllreduceFloat64(mpi.OpMax, hi)
	var center [3]float64
	hw := 0.0
	for d := 0; d < 3; d++ {
		center[d] = (lo[d] + hi[d]) / 2
		if w := (hi[d] - lo[d]) / 2; w > hw {
			hw = w
		}
	}
	if hw <= 0 || math.IsInf(hw, 0) {
		hw = 1
	}
	hw *= 1 + 1e-10

	sorted, perm, keys := tree.SortPointsByKey(rk.in.Pts, center, hw)
	n := len(keys)

	maxDepth := rk.opt.MaxDepth
	if maxDepth <= 0 || maxDepth > morton.MaxLevel {
		maxDepth = morton.MaxLevel
	}
	s := int64(rk.opt.MaxPoints)

	root := tree.Box{Key: morton.Key{}, Parent: tree.Nil, Leaf: true, SrcCount: n, TrgCount: n}
	for i := range root.Children {
		root.Children[i] = tree.Nil
	}
	boxes := []tree.Box{root}
	gRoot := c.AllreduceInt64(mpi.OpSum, []int64{int64(n)})
	gCnt := []int64{gRoot[0]}
	levelStart := []int{0, 1}

	for l := 0; ; l++ {
		start, end := levelStart[l], levelStart[l+1]
		// Decide which level-l boxes split, from their global counts.
		var splitting []int32
		for bi := start; bi < end; bi++ {
			if gCnt[bi] > s && l < maxDepth {
				splitting = append(splitting, int32(bi))
			}
		}
		if len(splitting) == 0 {
			break
		}
		// Local child counts for every splitting box, in octant order.
		local := make([]int64, 8*len(splitting))
		for si, bi := range splitting {
			b := &boxes[bi]
			off := b.SrcStart
			for o := 0; o < 8; o++ {
				ck := b.Key.Child(o)
				cnt := tree.CountRange(keys, off, b.SrcStart+b.SrcCount, ck)
				local[8*si+o] = int64(cnt)
				off += cnt
			}
		}
		global := c.AllreduceInt64(mpi.OpSum, local)
		// Materialize children that exist globally (possibly with empty
		// local ranges), identically on every rank.
		for si, bi := range splitting {
			boxes[bi].Leaf = false
			off := boxes[bi].SrcStart
			for o := 0; o < 8; o++ {
				lc := int(local[8*si+o])
				gc := global[8*si+o]
				if gc == 0 {
					continue
				}
				child := tree.Box{
					Key: boxes[bi].Key.Child(o), Parent: bi, Leaf: true,
					SrcStart: off, SrcCount: lc,
					TrgStart: off, TrgCount: lc,
				}
				for i := range child.Children {
					child.Children[i] = tree.Nil
				}
				ci := int32(len(boxes))
				boxes = append(boxes, child)
				gCnt = append(gCnt, gc)
				boxes[bi].Children[o] = ci
				off += lc
			}
		}
		levelStart = append(levelStart, len(boxes))
	}
	rk.gCnt = gCnt
	rk.tree = tree.Assemble(center, hw, boxes, levelStart, sorted, perm, rk.opt.MaxPoints)
	// Permute densities into Morton order.
	sd := rk.opt.Kernel.SourceDim()
	rk.pden = make([]float64, len(rk.in.Den))
	for i, orig := range perm {
		copy(rk.pden[i*sd:(i+1)*sd], rk.in.Den[int(orig)*sd:(int(orig)+1)*sd])
	}
	// Translation operators (shared across ranks via the global cache).
	ops, err := translate.NewSet(rk.opt.Kernel, rk.opt.Degree, hw, rk.opt.PinvTol)
	if err != nil {
		panic(err)
	}
	rk.ops = ops
	if rk.opt.Backend == fmm.M2LFFT {
		rk.fft = translate.NewFFTM2L(ops)
	}
}

// assignOwners implements the paper's three-step owner assignment: mark
// boxes whose sole contributor is known locally (local count == global
// count), combine with an Allreduce, then run the same deterministic
// balancing pass everywhere for multi-contributor boxes. It also builds
// the contributor and user masks that drive Algorithm 1.
func (rk *rank) assignOwners() {
	c := rk.c
	nb := len(rk.tree.Boxes)
	rk.words = (c.Size() + 63) / 64

	// Contributor masks.
	local := make([]int64, nb*rk.words)
	for bi := 0; bi < nb; bi++ {
		if rk.contributes(int32(bi)) {
			local[bi*rk.words+c.Rank()/64] |= 1 << (c.Rank() % 64)
		}
	}
	global := c.AllreduceInt64(mpi.OpSum, local)
	rk.contrib = make([]uint64, len(global))
	for i, v := range global {
		rk.contrib[i] = uint64(v)
	}

	// Step 1+2: sole contributors take their boxes; Allreduce(max)
	// publishes the taken set.
	taken := make([]int64, nb)
	for bi := 0; bi < nb; bi++ {
		b := &rk.tree.Boxes[bi]
		if b.SrcCount > 0 && int64(b.SrcCount) == rk.gCnt[bi] {
			taken[bi] = int64(c.Rank()) + 1
		}
	}
	taken = c.AllreduceInt64(mpi.OpMax, taken)
	// Step 3: identical sequential balancing pass for the rest.
	rk.owner = make([]int32, nb)
	rr := 0
	for bi := 0; bi < nb; bi++ {
		if taken[bi] > 0 {
			rk.owner[bi] = int32(taken[bi] - 1)
		} else {
			rk.owner[bi] = int32(rr % c.Size())
			rr++
		}
	}

	// User masks: which ranks need a box's global source data (U and X
	// lists) or its global upward equivalent density (V and W lists).
	use := make([]int64, 2*nb*rk.words)
	srcPart := use[:nb*rk.words]
	denPart := use[nb*rk.words:]
	mark := func(part []int64, bi int32) {
		part[int(bi)*rk.words+c.Rank()/64] |= 1 << (c.Rank() % 64)
	}
	for bi := 0; bi < nb; bi++ {
		if !rk.contributes(int32(bi)) {
			continue
		}
		b := &rk.tree.Boxes[bi]
		for _, u := range b.U {
			mark(srcPart, u)
		}
		for _, x := range b.X {
			mark(srcPart, x)
		}
		for _, v := range b.V {
			mark(denPart, v)
		}
		for _, w := range b.W {
			mark(denPart, w)
		}
	}
	use = c.AllreduceInt64(mpi.OpSum, use)
	rk.srcUse = make([]uint64, nb*rk.words)
	rk.denUse = make([]uint64, nb*rk.words)
	for i := 0; i < nb*rk.words; i++ {
		rk.srcUse[i] = uint64(use[i])
		rk.denUse[i] = uint64(use[nb*rk.words+i])
	}
}

// forEachRank calls fn for every rank whose bit is set in the mask of bi.
func (rk *rank) forEachRank(mask []uint64, bi int32, fn func(r int)) {
	for w := 0; w < rk.words; w++ {
		bits := mask[int(bi)*rk.words+w]
		for bits != 0 {
			b := bits & (-bits)
			r := w*64 + trailingZeros(b)
			fn(r)
			bits ^= b
		}
	}
}

func trailingZeros(b uint64) int {
	n := 0
	for b&1 == 0 {
		b >>= 1
		n++
	}
	return n
}

func (rk *rank) isUser(mask []uint64, bi int32) bool {
	return maskBit(mask, rk.words, bi, rk.c.Rank())
}

// pointWorkEstimate attributes the rank's interaction work to its local
// points, in original local order. Each point's estimate is its leaf's
// dominant cost — the dense U-list interactions plus the per-point share
// of the leaf's list work — which is the "workload information from
// previous time steps" the paper proposes feeding back into the
// partitioner. Units are approximate flops per point.
func (rk *rank) pointWorkEstimate() []int64 {
	t := rk.tree
	k := rk.opt.Kernel
	n := len(t.SrcPoints) / 3
	sorted := make([]int64, n)
	surfN := rk.ops.Surf.N
	for bi := range t.Boxes {
		b := &t.Boxes[bi]
		if !b.Leaf || b.SrcCount == 0 {
			continue
		}
		// Dense work per target point: sum of ghost source counts over
		// the U list.
		var uSrc int
		for _, u := range b.U {
			uSrc += len(rk.ghostPos[u]) / 3
		}
		perPoint := kernels.P2PFlops(k, 1, uSrc)
		// List work shared by the leaf's points: W (M2T), L2T, S2M.
		perPoint += kernels.P2PFlops(k, 1, surfN*(len(b.W)+2))
		for i := b.SrcStart; i < b.SrcStart+b.SrcCount; i++ {
			sorted[i] = perPoint
		}
	}
	// Un-permute to the rank's original local order.
	out := make([]int64, n)
	for i, orig := range t.SrcPerm {
		out[orig] = sorted[i]
	}
	return out
}

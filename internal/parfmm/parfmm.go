// Package parfmm implements the paper's parallel algorithm (Section 3):
// Morton-curve partitioning of input surface patches, level-by-level
// construction of the global tree array via MPI_Allreduce, local
// essential trees with contributor/owner/user roles, the gather/scatter
// ghost exchange of Algorithm 1, and upward/downward computation passes
// that run without synchronization ("a processor performs its own
// computation ignoring the existence of other processors").
//
// As in the paper's experiments, the source and target point sets are
// identical.
package parfmm

import (
	"fmt"
	"time"

	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/morton"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Options configure a parallel evaluation.
type Options struct {
	// Kernel is the interaction kernel (required).
	Kernel kernels.Kernel
	// Degree is the equivalent-surface degree p (default 6).
	Degree int
	// MaxPoints is the leaf threshold s (default 60).
	MaxPoints int
	// MaxDepth caps the octree depth.
	MaxDepth int
	// Backend selects the M2L path (default fmm.M2LFFT).
	Backend fmm.M2LBackend
	// PinvTol is the pseudo-inverse truncation (default 1e-10).
	PinvTol float64
	// Machine is the communication model (default mpi.DefaultMachine).
	Machine mpi.Machine
	// Iterations repeats the interaction evaluation (the paper reports a
	// single interaction averaged over several iterations). Default 1.
	Iterations int
	// PatchWeights, when non-nil (one entry per patch), replaces the
	// particle-count weights of the Morton partitioning. The paper's
	// discussion proposes exactly this: "we plan to use workload
	// information from previous time steps for load balancing" — pass a
	// previous Result.PatchWork here.
	PatchWeights []int64
	// Trace records per-rank span timelines and the communication
	// ledger (every send/recv/collective with virtual timestamps and
	// wait times) and merges them into Result.Timeline. The ledger
	// observer and span bookkeeping run on the rank goroutines, so the
	// virtual clocks absorb a small tracing overhead.
	Trace bool
}

// RankStats records one rank's virtual-time breakdown, matching the
// stages of the paper's Figures 4.2/4.3.
type RankStats struct {
	// TreeTime is the virtual time of partitioning plus tree
	// construction, including its collectives ("Gen/Comm" in the tables).
	TreeTime time.Duration
	// Total is the virtual time of one interaction evaluation.
	Total time.Duration
	// Comm is the communication part of Total.
	Comm time.Duration
	// Stats breaks down the compute stages (Up, DownU/V/W/X, Eval).
	Stats fmm.Stats
	// BytesSent counts payload bytes this rank sent during evaluation.
	BytesSent int64
}

// Result of a parallel evaluation.
type Result struct {
	// Pot holds the potentials in the order of geom.Flatten(patches).
	Pot []float64
	// Ranks holds per-rank statistics (averaged over Iterations).
	Ranks []RankStats
	// Boxes is the global tree size, Depth its level count.
	Boxes, Depth int
	// PatchWork estimates the interaction work (flops) attributable to
	// each input patch, usable as Options.PatchWeights of a subsequent
	// evaluation (the paper's proposed time-step-to-time-step load
	// balancing).
	PatchWork []int64
	// MaxElapsed is the simulated wall clock of the whole run — tree
	// construction, warm-up and timed iterations — i.e. mpi.MaxElapsed
	// over the rank communicators.
	MaxElapsed time.Duration
	// Timeline is the merged distributed timeline (per-rank span trees
	// plus the communication ledger); nil unless Options.Trace.
	Timeline *obs.Timeline
}

// MaxTotal returns the slowest rank's interaction time — the simulated
// wall clock T(P) of the run.
func (r *Result) MaxTotal() time.Duration {
	var m time.Duration
	for _, s := range r.Ranks {
		if s.Total > m {
			m = s.Total
		}
	}
	return m
}

// Ratio returns the paper's load-imbalance indicator: the ratio of the
// maximum to the minimum per-rank interaction time.
func (r *Result) Ratio() float64 {
	if len(r.Ranks) == 0 {
		return 1
	}
	min, max := r.Ranks[0].Total, r.Ranks[0].Total
	for _, s := range r.Ranks[1:] {
		if s.Total < min {
			min = s.Total
		}
		if s.Total > max {
			max = s.Total
		}
	}
	if min <= 0 {
		return 1
	}
	return float64(max) / float64(min)
}

// Evaluate runs the parallel KIFMM on nproc simulated ranks. patches are
// the input surfaces (partitioned by weighted Morton order, Section 3.1);
// den holds SourceDim density components per point in the order of
// geom.Flatten(patches).
func Evaluate(patches []geom.Patch, den []float64, nproc int, opt Options) (*Result, error) {
	if opt.Kernel == nil {
		return nil, fmt.Errorf("parfmm: Options.Kernel is required")
	}
	if opt.Degree == 0 {
		opt.Degree = 6
	}
	if opt.MaxPoints == 0 {
		opt.MaxPoints = 60
	}
	if opt.PinvTol == 0 {
		opt.PinvTol = 1e-10
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 1
	}
	if opt.Machine == (mpi.Machine{}) {
		opt.Machine = mpi.DefaultMachine()
	}
	if nproc < 1 {
		return nil, fmt.Errorf("parfmm: need at least one rank")
	}
	sd := opt.Kernel.SourceDim()
	total := geom.TotalCount(patches)
	if len(den) != total*sd {
		return nil, fmt.Errorf("parfmm: density length %d, want %d", len(den), total*sd)
	}

	// Partition whole patches along the Morton curve, weighted by count.
	// The cube for partitioning keys is the bounding cube of the patch
	// centers; only relative order matters.
	items := make([]morton.Weighted, len(patches))
	centers := make([]float64, 0, 3*len(patches))
	for i := range patches {
		centers = append(centers, patches[i].Center[0], patches[i].Center[1], patches[i].Center[2])
	}
	cc, chw := geom.BoundingCube(centers)
	if opt.PatchWeights != nil && len(opt.PatchWeights) != len(patches) {
		return nil, fmt.Errorf("parfmm: PatchWeights length %d, want %d", len(opt.PatchWeights), len(patches))
	}
	for i := range patches {
		w := int64(patches[i].Count())
		if opt.PatchWeights != nil {
			w = opt.PatchWeights[i]
			if w < 1 {
				w = 1
			}
		}
		items[i] = morton.Weighted{
			Key:    morton.PointKey(patches[i].Center[0], patches[i].Center[1], patches[i].Center[2], cc, chw),
			Weight: w,
			Index:  i,
		}
	}
	parts := morton.Partition(items, nproc)

	// Patch start offsets in the flattened global order.
	starts := make([]int, len(patches)+1)
	for i := range patches {
		starts[i+1] = starts[i] + patches[i].Count()
	}

	inputs := make([]*RankInput, nproc)
	for r := 0; r < nproc; r++ {
		in := &RankInput{}
		for _, pi := range parts[r] {
			in.Pts = append(in.Pts, patches[pi].Points...)
			for j := 0; j < patches[pi].Count(); j++ {
				g := starts[pi] + j
				in.GlobalIdx = append(in.GlobalIdx, int32(g))
				in.Den = append(in.Den, den[g*sd:(g+1)*sd]...)
			}
		}
		inputs[r] = in
	}

	td := opt.Kernel.TargetDim()
	pot := make([]float64, total*td)
	pointWork := make([]int64, total)
	stats := make([]RankStats, nproc)
	treeBoxes := make([]int, nproc)
	treeDepth := make([]int, nproc)

	timelines := make([]*obs.RankTimeline, nproc)
	comms := mpi.Run(nproc, opt.Machine, func(c *mpi.Comm) {
		rk := newRank(c, inputs[c.Rank()], opt)
		if opt.Trace {
			tl := obs.NewRankTimeline(c.Rank())
			timelines[c.Rank()] = tl
			rk.tl = tl
			c.SetObserver(func(ev mpi.Event) { tl.Record(msgRecord(ev)) })
		}
		sp := rk.beginSpan("tree_build")
		rk.buildGlobalTree()
		rk.endSpan(sp)
		treeBoxes[c.Rank()] = len(rk.tree.Boxes)
		treeDepth[c.Rank()] = rk.tree.Depth()
		sp = rk.beginSpan("assign_owners")
		rk.assignOwners()
		rk.endSpan(sp)
		stats[c.Rank()].TreeTime = c.Elapsed()

		// Untimed warm-up evaluation: the translation operators and FFT
		// tensors are built lazily on first use, and the paper's timings
		// (like any FMM production setting, where the same tree serves
		// tens of interaction evaluations) exclude that setup cost. The
		// measured iterations below see only steady-state work.
		sp = rk.beginSpan("warmup")
		rk.evaluate()
		rk.endSpan(sp)

		var agg fmm.Stats
		var totalT, commT time.Duration
		var bytes int64
		for it := 0; it < opt.Iterations; it++ {
			t0 := c.Elapsed()
			c0 := c.CommTime()
			b0 := c.BytesSent()
			sp = rk.beginSpan("iteration")
			sp.SetAttr("iter", fmt.Sprint(it))
			rk.evaluate()
			rk.endSpan(sp)
			totalT += c.Elapsed() - t0
			commT += c.CommTime() - c0
			bytes += c.BytesSent() - b0
			agg.Add(rk.stats)
		}
		n := time.Duration(opt.Iterations)
		stats[c.Rank()].Total = totalT / n
		stats[c.Rank()].Comm = commT / n
		stats[c.Rank()].BytesSent = bytes / int64(opt.Iterations)
		stats[c.Rank()].Stats = agg
		// Write local potentials and per-point work estimates into the
		// shared result (serialized by the token; indices are disjoint
		// across ranks).
		work := rk.pointWorkEstimate()
		for i, g := range rk.in.GlobalIdx {
			copy(pot[int(g)*td:(int(g)+1)*td], rk.pot[i*td:(i+1)*td])
			pointWork[g] = work[i]
		}
		rk.tl.Close(c.Elapsed())
	})

	// Aggregate point work into per-patch totals.
	patchWork := make([]int64, len(patches))
	for pi := range patches {
		for j := starts[pi]; j < starts[pi+1]; j++ {
			patchWork[pi] += pointWork[j]
		}
	}

	res := &Result{
		Pot: pot, Ranks: stats, Boxes: treeBoxes[0], Depth: treeDepth[0],
		PatchWork: patchWork, MaxElapsed: mpi.MaxElapsed(comms),
	}
	if opt.Trace {
		res.Timeline = obs.MergeTimeline(timelines)
	}
	return res, nil
}

package parfmm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/direct"
	"repro/internal/fmm"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/mpi"
)

func fastMachine() mpi.Machine {
	return mpi.Machine{Latency: 1e3, Bandwidth: 1e9}
}

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestParallelMatchesSequential: for every rank count the parallel
// algorithm must reproduce the sequential FMM to floating-point
// accumulation accuracy (identical operators, identical tree).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	patches := geom.SphereGrid(rng, 1200, 2, 0.3)
	pts := geom.Flatten(patches)
	den := geom.RandomDensities(rng, 1200, 1)
	seq, err := fmm.New(pts, pts, fmm.Options{Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	for _, nproc := range []int{1, 2, 3, 5, 8} {
		res, err := Evaluate(patches, den, nproc, Options{
			Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 30, Machine: fastMachine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res.Pot, want); e > 1e-11 {
			t.Errorf("nproc=%d: parallel differs from sequential by %v", nproc, e)
		}
	}
}

// TestParallelAccuracyAllKernels verifies the full parallel pipeline
// against direct summation for the paper's three kernels.
func TestParallelAccuracyAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	patches := geom.CornerClusters(rng, 900, 0.35, 2)
	pts := geom.Flatten(patches)
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewModLaplace(1), kernels.NewStokes(1)} {
		den := geom.RandomDensities(rng, 900, k.SourceDim())
		res, err := Evaluate(patches, den, 4, Options{
			Kernel: k, Degree: 6, MaxPoints: 25, Machine: fastMachine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Evaluate(k, pts, pts, den)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res.Pot, want); e > 2e-3 {
			t.Errorf("%s: parallel FMM error %v vs direct", k.Name(), e)
		}
	}
}

// TestParallelBackendsAgree: dense and FFT M2L must agree in parallel
// just as they do sequentially.
func TestParallelBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	patches := geom.UniformCube(rng, 800)
	den := geom.RandomDensities(rng, 800, 1)
	var results [][]float64
	for _, backend := range []fmm.M2LBackend{fmm.M2LFFT, fmm.M2LDense} {
		res, err := Evaluate(patches, den, 3, Options{
			Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 20,
			Backend: backend, Machine: fastMachine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res.Pot)
	}
	if e := relErr(results[0], results[1]); e > 1e-10 {
		t.Errorf("parallel backends disagree: %v", e)
	}
}

// TestStatsAndMetrics sanity-checks the per-rank accounting the
// scalability tables are built from.
func TestStatsAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	patches := geom.SphereGrid(rng, 2000, 2, 0.3)
	den := geom.RandomDensities(rng, 2000, 1)
	res, err := Evaluate(patches, den, 4, Options{
		Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 30,
		Machine: mpi.DefaultMachine(), Iterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 4 {
		t.Fatalf("want 4 rank stats, got %d", len(res.Ranks))
	}
	for r, s := range res.Ranks {
		if s.Total <= 0 {
			t.Errorf("rank %d: no interaction time", r)
		}
		if s.TreeTime <= 0 {
			t.Errorf("rank %d: no tree time", r)
		}
		if s.Stats.FlopsUp <= 0 || s.Stats.FlopsDownU <= 0 {
			t.Errorf("rank %d: flop counters empty", r)
		}
		if s.Comm < 0 || s.Comm > s.Total {
			t.Errorf("rank %d: comm time %v outside total %v", r, s.Comm, s.Total)
		}
	}
	// Multi-rank runs must communicate.
	anyBytes := false
	for _, s := range res.Ranks {
		if s.BytesSent > 0 {
			anyBytes = true
		}
	}
	if !anyBytes {
		t.Error("no communication recorded on 4 ranks")
	}
	if res.Ratio() < 1 {
		t.Errorf("load imbalance ratio %v < 1", res.Ratio())
	}
	if res.MaxTotal() <= 0 {
		t.Error("MaxTotal must be positive")
	}
	if res.Boxes <= 1 || res.Depth < 2 {
		t.Errorf("implausible tree: %d boxes depth %d", res.Boxes, res.Depth)
	}
}

// TestSingleRankHasNoComm: with one rank the algorithm degenerates to
// the sequential method with zero point-to-point traffic.
func TestSingleRankHasNoComm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	patches := geom.UniformCube(rng, 500)
	den := geom.RandomDensities(rng, 500, 1)
	res, err := Evaluate(patches, den, 1, Options{
		Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 25, Machine: fastMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].BytesSent != 0 {
		t.Errorf("single rank sent %d bytes", res.Ranks[0].BytesSent)
	}
}

// TestOwnershipInvariants: rebuild the deterministic owner assignment on
// a driver-side replica and check the paper's rules.
func TestOwnershipInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	patches := geom.CornerClusters(rng, 1000, 0.35, 2)
	den := geom.RandomDensities(rng, 1000, 1)
	// Run with several rank counts; correctness of results plus the
	// single-owner communication pattern (no crash, no deadlock, right
	// answers) exercises the assignment.
	pts := geom.Flatten(patches)
	want, err := direct.Evaluate(kernels.Laplace{}, pts, pts, den)
	if err != nil {
		t.Fatal(err)
	}
	for _, nproc := range []int{2, 7} {
		res, err := Evaluate(patches, den, nproc, Options{
			Kernel: kernels.Laplace{}, Degree: 6, MaxPoints: 15, Machine: fastMachine(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res.Pot, want); e > 2e-3 {
			t.Errorf("nproc=%d: error %v", nproc, e)
		}
	}
}

// TestValidationErrors covers the driver's input checks.
func TestValidationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	patches := geom.UniformCube(rng, 10)
	if _, err := Evaluate(patches, make([]float64, 10), 2, Options{}); err == nil {
		t.Error("missing kernel must error")
	}
	if _, err := Evaluate(patches, make([]float64, 3), 2, Options{Kernel: kernels.Laplace{}}); err == nil {
		t.Error("wrong density length must error")
	}
	if _, err := Evaluate(patches, make([]float64, 10), 0, Options{Kernel: kernels.Laplace{}}); err == nil {
		t.Error("zero ranks must error")
	}
}

// TestMoreRanksThanPatches: ranks without any patch must still
// participate correctly in the collectives and produce nothing.
func TestMoreRanksThanPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	patches := geom.UniformCube(rng, 300) // a single patch
	den := geom.RandomDensities(rng, 300, 1)
	res, err := Evaluate(patches, den, 3, Options{
		Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 30, Machine: fastMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := geom.Flatten(patches)
	want, _ := direct.Evaluate(kernels.Laplace{}, pts, pts, den)
	if e := relErr(res.Pot, want); e > 2e-2 {
		t.Errorf("error %v with idle ranks", e)
	}
}

// TestWorkEstimateFeedback implements the paper's proposed load-balance
// improvement: re-partitioning with the previous evaluation's per-patch
// work estimates must not hurt — and for non-uniform distributions it
// should reduce — the max/min imbalance ratio, while leaving the results
// identical.
func TestWorkEstimateFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	patches := geom.CornerClusters(rng, 2400, 0.3, 8)
	den := geom.RandomDensities(rng, 2400, 1)
	opt := Options{Kernel: kernels.Laplace{}, Degree: 5, MaxPoints: 20, Machine: fastMachine()}
	first, err := Evaluate(patches, den, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.PatchWork) != len(patches) {
		t.Fatalf("PatchWork length %d, want %d", len(first.PatchWork), len(patches))
	}
	totalWork := int64(0)
	for _, w := range first.PatchWork {
		if w < 0 {
			t.Fatal("negative work estimate")
		}
		totalWork += w
	}
	if totalWork == 0 {
		t.Fatal("work estimates all zero")
	}
	opt.PatchWeights = first.PatchWork
	second, err := Evaluate(patches, den, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(second.Pot, first.Pot); e > 1e-11 {
		t.Errorf("re-partitioned run changed the results by %v", e)
	}
	t.Logf("imbalance ratio: count-weighted %.3f -> work-weighted %.3f", first.Ratio(), second.Ratio())
	if second.Ratio() > first.Ratio()*1.5 {
		t.Errorf("work-weighted partitioning degraded balance: %.3f -> %.3f", first.Ratio(), second.Ratio())
	}
}

// TestPatchWeightsValidation rejects mismatched weight vectors.
func TestPatchWeightsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	patches := geom.UniformCube(rng, 50)
	den := geom.RandomDensities(rng, 50, 1)
	_, err := Evaluate(patches, den, 2, Options{
		Kernel: kernels.Laplace{}, Machine: fastMachine(),
		PatchWeights: []int64{1, 2, 3},
	})
	if err == nil {
		t.Error("wrong PatchWeights length must error")
	}
}

package parfmm

import (
	"repro/internal/fmm"
	"repro/internal/kernels"
	"repro/internal/tree"
)

// Message tag phases (tag = boxIndex*4 + phase).
const (
	tagSrcGather = iota
	tagSrcScatter
	tagDenGather
	tagDenScatter
)

// evaluate runs one interaction computation: the three logically
// separated stages of paper Section 3.2, with the ghost communication
// overlapping the upward pass and the equivalent-density communication
// overlapping the U- and X-list computations (the sends are posted
// before the compute phases; the virtual clock then absorbs transfer
// time into the compute window).
func (rk *rank) evaluate() {
	rk.stats = fmm.Stats{}
	rk.ghostPos = make(map[int32][]float64)
	rk.ghostDen = make(map[int32][]float64)
	rk.ghostPhi = make(map[int32][]float64)

	// Overlap: post the ghost source sends before the upward compute.
	mk := rk.markIO()
	sp := rk.beginSpan("source_gather")
	rk.postSourceGather()
	rk.endSpanIO(sp, mk)
	sp = rk.beginSpan("upward")
	rk.upwardPass()
	rk.endSpan(sp)
	mk = rk.markIO()
	sp = rk.beginSpan("source_exchange")
	rk.exchangeSources()
	rk.endSpanIO(sp, mk)

	// Overlap: post the density sends, run the dense (U) and X-list
	// computations, then complete the density exchange and finish the
	// downward pass.
	mk = rk.markIO()
	sp = rk.beginSpan("density_gather")
	rk.postDensityGather()
	rk.endSpanIO(sp, mk)
	sp = rk.beginSpan("down_ux")
	checks, potSorted := rk.downUX()
	rk.endSpan(sp)
	mk = rk.markIO()
	sp = rk.beginSpan("density_exchange")
	rk.exchangeDensities()
	rk.endSpanIO(sp, mk)
	sp = rk.beginSpan("down_vw_local")
	rk.downVWAndLocal(checks, potSorted)
	rk.endSpan(sp)

	// Un-permute potentials to the rank's original local order.
	td := rk.opt.Kernel.TargetDim()
	rk.pot = make([]float64, len(potSorted))
	for i, orig := range rk.tree.SrcPerm {
		copy(rk.pot[int(orig)*td:(int(orig)+1)*td], potSorted[i*td:(i+1)*td])
	}
}

// postSourceGather sends this rank's local source positions and
// densities of every contributed leaf to the leaf's owner (Algorithm 1,
// step 1; eager sends, no blocking).
func (rk *rank) postSourceGather() {
	sd := rk.opt.Kernel.SourceDim()
	for bi := range rk.tree.Boxes {
		b := &rk.tree.Boxes[bi]
		if !b.Leaf || b.SrcCount == 0 || rk.owner[bi] == int32(rk.c.Rank()) {
			continue
		}
		payload := make([]float64, 0, 3*b.SrcCount+sd*b.SrcCount)
		payload = append(payload, rk.tree.SrcSlice(int32(bi))...)
		payload = append(payload, rk.pden[b.SrcStart*sd:(b.SrcStart+b.SrcCount)*sd]...)
		rk.c.SendFloat64s(int(rk.owner[bi]), bi*4+tagSrcGather, payload)
	}
}

// exchangeSources completes Algorithm 1 for leaf source data: owners
// receive and combine contributor parts, then scatter the global data to
// every user; users store the ghost copy.
func (rk *rank) exchangeSources() {
	c := rk.c
	sd := rk.opt.Kernel.SourceDim()
	me := c.Rank()
	for bi := range rk.tree.Boxes {
		b := &rk.tree.Boxes[bi]
		if !b.Leaf {
			continue
		}
		if rk.owner[bi] == int32(me) {
			// Gather: combine local part with contributor messages.
			pos := append([]float64(nil), rk.tree.SrcSlice(int32(bi))...)
			den := append([]float64(nil), rk.pden[b.SrcStart*sd:(b.SrcStart+b.SrcCount)*sd]...)
			rk.forEachRank(rk.contrib, int32(bi), func(r int) {
				if r == me {
					return
				}
				payload := c.RecvFloat64s(r, bi*4+tagSrcGather)
				np := len(payload) / (3 + sd)
				pos = append(pos, payload[:3*np]...)
				den = append(den, payload[3*np:]...)
			})
			global := make([]float64, 0, len(pos)+len(den))
			global = append(global, pos...)
			global = append(global, den...)
			// Scatter to users.
			rk.forEachRank(rk.srcUse, int32(bi), func(r int) {
				if r == me {
					return
				}
				c.SendFloat64s(r, bi*4+tagSrcScatter, global)
			})
			if rk.isUser(rk.srcUse, int32(bi)) {
				rk.ghostPos[int32(bi)] = pos
				rk.ghostDen[int32(bi)] = den
			}
		} else if rk.isUser(rk.srcUse, int32(bi)) {
			payload := c.RecvFloat64s(int(rk.owner[bi]), bi*4+tagSrcScatter)
			np := len(payload) / (3 + sd)
			rk.ghostPos[int32(bi)] = payload[:3*np]
			rk.ghostDen[int32(bi)] = payload[3*np:]
		}
	}
}

// postDensityGather sends partial upward equivalent densities of
// contributed boxes to their owners.
func (rk *rank) postDensityGather() {
	me := rk.c.Rank()
	for bi := range rk.tree.Boxes {
		if rk.phiU[bi] == nil || rk.owner[bi] == int32(me) {
			continue
		}
		rk.c.SendFloat64s(int(rk.owner[bi]), bi*4+tagDenGather, rk.phiU[bi])
	}
}

// exchangeDensities sums partial upward densities at owners and
// scatters the global densities to users.
func (rk *rank) exchangeDensities() {
	c := rk.c
	me := c.Rank()
	ne := rk.ops.EquivCount()
	for bi := range rk.tree.Boxes {
		if rk.owner[bi] == int32(me) {
			sum := make([]float64, ne)
			if rk.phiU[bi] != nil {
				copy(sum, rk.phiU[bi])
			}
			rk.forEachRank(rk.contrib, int32(bi), func(r int) {
				if r == me {
					return
				}
				part := c.RecvFloat64s(r, bi*4+tagDenGather)
				for i := range sum {
					sum[i] += part[i]
				}
			})
			rk.forEachRank(rk.denUse, int32(bi), func(r int) {
				if r == me {
					return
				}
				c.SendFloat64s(r, bi*4+tagDenScatter, sum)
			})
			if rk.isUser(rk.denUse, int32(bi)) {
				rk.ghostPhi[int32(bi)] = sum
			}
		} else if rk.isUser(rk.denUse, int32(bi)) {
			rk.ghostPhi[int32(bi)] = c.RecvFloat64s(int(rk.owner[bi]), bi*4+tagDenScatter)
		}
	}
}

// upwardPass builds partial upward equivalent densities for every
// contributed box from local sources only, ignoring other ranks; the
// per-rank partials are linear in the sources, so the owner-side sums
// equal the sequential densities.
func (rk *rank) upwardPass() {
	t0 := rk.c.Elapsed()
	t := rk.tree
	k := rk.opt.Kernel
	sd := k.SourceDim()
	ne, nc := rk.ops.EquivCount(), rk.ops.CheckCount()
	rk.phiU = make([][]float64, len(t.Boxes))
	check := make([]float64, nc)
	ucPts := make([]float64, 3*rk.ops.Surf.N)
	for l := t.Depth() - 1; l >= 0; l-- {
		r := t.BoxHalfWidth(l)
		for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
			b := &t.Boxes[bi]
			if b.SrcCount == 0 {
				continue
			}
			for i := range check {
				check[i] = 0
			}
			if b.Leaf {
				rk.ops.UpwardCheckPoints(t.BoxCenter(int32(bi)), r, ucPts)
				kernels.P2P(k, ucPts, t.SrcSlice(int32(bi)), rk.pden[b.SrcStart*sd:(b.SrcStart+b.SrcCount)*sd], check)
				rk.stats.FlopsUp += kernels.P2PFlops(k, rk.ops.Surf.N, b.SrcCount)
			} else {
				for o, ci := range b.Children {
					if ci == tree.Nil || rk.phiU[ci] == nil {
						continue
					}
					rk.ops.M2M(l, o).Apply(check, rk.phiU[ci])
					rk.stats.FlopsUp += int64(2 * nc * ne)
				}
			}
			phi := make([]float64, ne)
			rk.ops.UpwardPinv(l).Apply(phi, check)
			rk.stats.FlopsUp += int64(2 * ne * nc)
			rk.phiU[bi] = phi
		}
	}
	rk.stats.Up = rk.c.Elapsed() - t0
}

// downUX performs the parts of the downward stage that need only ghost
// source data: the dense U-list interactions (into the local target
// potentials) and the X-list S2L contributions (into the downward check
// potentials). It returns the per-box check buffers and the potential
// accumulator in Morton order.
func (rk *rank) downUX() ([][]float64, []float64) {
	t := rk.tree
	k := rk.opt.Kernel
	td := k.TargetDim()
	nc := rk.ops.CheckCount()
	checks := make([][]float64, len(t.Boxes))
	potSorted := make([]float64, (len(t.SrcPoints)/3)*td)
	dcPts := make([]float64, 3*rk.ops.Surf.N)

	// U list (dense interactions) for contributed leaves.
	tU := rk.c.Elapsed()
	for bi := range t.Boxes {
		b := &t.Boxes[bi]
		if !b.Leaf || b.SrcCount == 0 {
			continue
		}
		trg := t.SrcSlice(int32(bi))
		pot := potSorted[b.SrcStart*td : (b.SrcStart+b.SrcCount)*td]
		for _, u := range b.U {
			pos, den := rk.ghostPos[u], rk.ghostDen[u]
			if len(pos) == 0 {
				continue
			}
			kernels.P2P(k, trg, pos, den, pot)
			rk.stats.FlopsDownU += kernels.P2PFlops(k, b.SrcCount, len(pos)/3)
		}
	}
	rk.stats.DownU = rk.c.Elapsed() - tU

	// X list (S2L) for contributed boxes.
	tX := rk.c.Elapsed()
	for bi := range t.Boxes {
		b := &t.Boxes[bi]
		if b.SrcCount == 0 || len(b.X) == 0 {
			continue
		}
		check := make([]float64, nc)
		checks[bi] = check
		rk.ops.DownwardCheckPoints(t.BoxCenter(int32(bi)), t.BoxHalfWidth(b.Level()), dcPts)
		for _, x := range b.X {
			pos, den := rk.ghostPos[x], rk.ghostDen[x]
			if len(pos) == 0 {
				continue
			}
			kernels.P2P(k, dcPts, pos, den, check)
			rk.stats.FlopsDownX += kernels.P2PFlops(k, rk.ops.Surf.N, len(pos)/3)
		}
	}
	rk.stats.DownX = rk.c.Elapsed() - tX
	return checks, potSorted
}

// downVWAndLocal completes the downward stage once global upward
// densities are available: M2L over the V lists, the L2L/inversion chain
// and leaf evaluation (L2T), plus the W-list M2T contributions.
func (rk *rank) downVWAndLocal(checks [][]float64, potSorted []float64) {
	t := rk.tree
	k := rk.opt.Kernel
	td := k.TargetDim()
	ne, nc := rk.ops.EquivCount(), rk.ops.CheckCount()
	rk.phiD = make([][]float64, len(t.Boxes))
	getCheck := func(bi int32) []float64 {
		if checks[bi] == nil {
			checks[bi] = make([]float64, nc)
		}
		return checks[bi]
	}
	surfPts := make([]float64, 3*rk.ops.Surf.N)

	for l := 2; l < t.Depth(); l++ {
		// V list, batched per level through the selected backend.
		tV := rk.c.Elapsed()
		if rk.fft != nil {
			rk.applyM2LFFT(l, checks, getCheck)
		} else {
			for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
				b := &t.Boxes[bi]
				if b.SrcCount == 0 || len(b.V) == 0 {
					continue
				}
				check := getCheck(int32(bi))
				bx, by, bz := b.Key.Decode()
				for _, a := range b.V {
					phi := rk.ghostPhi[a]
					if phi == nil {
						continue
					}
					ax, ay, az := t.Boxes[a].Key.Decode()
					rk.ops.M2LDirect(l, [3]int{int(bx) - int(ax), int(by) - int(ay), int(bz) - int(az)}).Apply(check, phi)
					rk.stats.FlopsDownV += int64(2 * nc * ne)
				}
			}
		}
		rk.stats.DownV += rk.c.Elapsed() - tV

		// L2L + inversion.
		tE := rk.c.Elapsed()
		for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
			b := &t.Boxes[bi]
			if b.SrcCount == 0 {
				continue
			}
			if p := b.Parent; p != tree.Nil && rk.phiD[p] != nil {
				rk.ops.L2L(l-1, b.Key.Octant()).Apply(getCheck(int32(bi)), rk.phiD[p])
				rk.stats.FlopsEval += int64(2 * nc * ne)
			}
			if checks[bi] != nil {
				phi := make([]float64, ne)
				rk.ops.DownwardPinv(l).Apply(phi, checks[bi])
				rk.stats.FlopsEval += int64(2 * ne * nc)
				rk.phiD[bi] = phi
			}
		}
		rk.stats.Eval += rk.c.Elapsed() - tE
	}

	// Leaf evaluation: W-list M2T and the local expansion L2T.
	for bi := range t.Boxes {
		b := &t.Boxes[bi]
		if !b.Leaf || b.SrcCount == 0 {
			continue
		}
		trg := t.SrcSlice(int32(bi))
		pot := potSorted[b.SrcStart*td : (b.SrcStart+b.SrcCount)*td]
		tW := rk.c.Elapsed()
		for _, w := range b.W {
			phi := rk.ghostPhi[w]
			if phi == nil {
				continue
			}
			wb := &t.Boxes[w]
			rk.ops.UpwardEquivPoints(t.BoxCenter(w), t.BoxHalfWidth(wb.Level()), surfPts)
			kernels.P2P(k, trg, surfPts, phi, pot)
			rk.stats.FlopsDownW += kernels.P2PFlops(k, b.SrcCount, rk.ops.Surf.N)
		}
		rk.stats.DownW += rk.c.Elapsed() - tW
		tE := rk.c.Elapsed()
		if rk.phiD[bi] != nil {
			rk.ops.DownwardEquivPoints(t.BoxCenter(int32(bi)), t.BoxHalfWidth(b.Level()), surfPts)
			kernels.P2P(k, trg, surfPts, rk.phiD[bi], pot)
			rk.stats.FlopsEval += kernels.P2PFlops(k, b.SrcCount, rk.ops.Surf.N)
		}
		rk.stats.Eval += rk.c.Elapsed() - tE
	}
}

// applyM2LFFT is the Fourier-space V-list path over ghost densities.
func (rk *rank) applyM2LFFT(l int, checks [][]float64, getCheck func(int32) []float64) {
	t := rk.tree
	k := rk.opt.Kernel
	sd, td := k.SourceDim(), k.TargetDim()
	gl := rk.fft.GridLen()
	used := make(map[int32]bool)
	for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
		b := &t.Boxes[bi]
		if b.SrcCount == 0 {
			continue
		}
		for _, a := range b.V {
			if rk.ghostPhi[a] != nil {
				used[a] = true
			}
		}
	}
	grids := make(map[int32][][]complex128, len(used))
	for a := range used {
		g := rk.fft.NewSourceGrids()
		rk.fft.ForwardDensity(rk.ghostPhi[a], g)
		grids[a] = g
		rk.stats.FlopsDownV += int64(5 * gl * sd)
	}
	acc := rk.fft.NewAccumulator()
	for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
		b := &t.Boxes[bi]
		if b.SrcCount == 0 || len(b.V) == 0 {
			continue
		}
		rk.fft.ResetAccumulator(acc)
		bx, by, bz := b.Key.Decode()
		any := false
		for _, a := range b.V {
			g, ok := grids[a]
			if !ok {
				continue
			}
			ax, ay, az := t.Boxes[a].Key.Decode()
			rk.fft.Accumulate(acc, g, l, [3]int{int(bx) - int(ax), int(by) - int(ay), int(bz) - int(az)})
			rk.stats.FlopsDownV += int64(8 * gl * sd * td)
			any = true
		}
		if any {
			rk.fft.Extract(acc, l, getCheck(int32(bi)))
			rk.stats.FlopsDownV += int64(5 * gl * td)
		}
	}
}

package parfmm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// traceRun executes the deterministic 4-rank traced workload used by
// the trace tests.
func traceRun(t *testing.T, seed int64) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	patches := geom.SphereGrid(rng, 2000, 4, 0.22)
	den := geom.RandomDensities(rng, geom.TotalCount(patches), 1)
	res, err := Evaluate(patches, den, 4, Options{
		Kernel: kernels.Laplace{}, Degree: 4, MaxPoints: 30,
		Machine: fastMachine(), Iterations: 1, Trace: true,
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return res
}

func TestCriticalPathMatchesMaxElapsed(t *testing.T) {
	res := traceRun(t, 3)
	tl := res.Timeline
	if tl == nil {
		t.Fatal("Options.Trace set but Result.Timeline is nil")
	}
	if len(tl.Ranks) != 4 {
		t.Fatalf("timeline has %d ranks, want 4", len(tl.Ranks))
	}
	path := tl.CriticalPath()
	if len(path) == 0 {
		t.Fatal("empty critical path")
	}
	// The path tiles [0, MaxEnd]: contiguous segments summing to the
	// merged timeline's end...
	for i := 1; i < len(path); i++ {
		if path[i].Start != path[i-1].End {
			t.Fatalf("segment %d starts at %v, previous ended at %v", i, path[i].Start, path[i-1].End)
		}
	}
	dur := obs.PathDuration(path)
	if dur != tl.MaxEnd() {
		t.Errorf("PathDuration = %v, MaxEnd = %v; want equal", dur, tl.MaxEnd())
	}
	// ...and the timeline's end matches the run's simulated wall clock
	// within 1% (the difference is the final bookkeeping tick after the
	// root span closes).
	if res.MaxElapsed <= 0 {
		t.Fatalf("MaxElapsed = %v, want > 0", res.MaxElapsed)
	}
	rel := float64(res.MaxElapsed-dur) / float64(res.MaxElapsed)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.01 {
		t.Errorf("critical path %v vs mpi.MaxElapsed %v: relative error %.4f > 1%%", dur, res.MaxElapsed, rel)
	}
}

func TestTraceSpanTree(t *testing.T) {
	res := traceRun(t, 5)
	for _, rt := range res.Timeline.Ranks {
		if rt.Root == nil || rt.Root.Name != "rank" {
			t.Fatalf("rank %d root = %+v, want a closed \"rank\" span", rt.Rank, rt.Root)
		}
		if rt.Root.End <= rt.Root.Start {
			t.Errorf("rank %d root not closed: [%v,%v]", rt.Rank, rt.Root.Start, rt.Root.End)
		}
		for _, name := range []string{
			"tree_build", "assign_owners", "warmup", "iteration",
			"source_gather", "upward", "source_exchange",
			"density_gather", "down_ux", "density_exchange", "down_vw_local",
		} {
			sp := rt.Root.Find(name)
			if sp == nil {
				t.Errorf("rank %d has no %q span", rt.Rank, name)
				continue
			}
			if sp.End < sp.Start {
				t.Errorf("rank %d span %q has End %v < Start %v", rt.Rank, name, sp.End, sp.Start)
			}
		}
		// Exchange spans carry traffic attributes.
		ex := rt.Root.Find("iteration").Find("source_exchange")
		if ex == nil {
			t.Fatalf("rank %d iteration has no source_exchange child", rt.Rank)
		}
		if ex.Attrs["bytes"] == "" || ex.Attrs["msgs"] == "" {
			t.Errorf("rank %d source_exchange attrs = %v, want bytes and msgs", rt.Rank, ex.Attrs)
		}
		if len(rt.Msgs) == 0 {
			t.Errorf("rank %d recorded no ledger entries", rt.Rank)
		}
	}
	if res.Timeline.TotalMessages() == 0 || res.Timeline.TotalBytes() == 0 {
		t.Errorf("timeline totals: %d msgs / %d bytes, want > 0",
			res.Timeline.TotalMessages(), res.Timeline.TotalBytes())
	}
}

// ledgerShape reduces a ledger to its deterministic structure: virtual
// timestamps vary run to run (compute is metered by wall clock), but
// the sequence of operations, peers, tags and byte counts must not.
func ledgerShape(tl *obs.Timeline) []string {
	var shape []string
	for _, rt := range tl.Ranks {
		for _, m := range rt.Msgs {
			shape = append(shape, fmt.Sprintf("r%d %s peer=%d tag=%d bytes=%d",
				rt.Rank, m.Kind, m.Peer, m.Tag, m.Bytes))
		}
	}
	return shape
}

func TestLedgerDeterministicAcrossReruns(t *testing.T) {
	first := traceRun(t, 11)
	second := traceRun(t, 11)
	a, b := ledgerShape(first.Timeline), ledgerShape(second.Timeline)
	if len(a) != len(b) {
		t.Fatalf("ledger sizes differ across reruns: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ledger entry %d differs across reruns:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func TestUntracedRunHasNoTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	patches := geom.SphereGrid(rng, 800, 4, 0.22)
	den := geom.RandomDensities(rng, geom.TotalCount(patches), 1)
	res, err := Evaluate(patches, den, 2, Options{
		Kernel: kernels.Laplace{}, Degree: 4, MaxPoints: 30,
		Machine: fastMachine(),
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Timeline != nil {
		t.Errorf("untraced run produced a timeline")
	}
	if res.MaxElapsed <= 0 {
		t.Errorf("MaxElapsed = %v, want > 0 even untraced", res.MaxElapsed)
	}
}

func TestTraceChromeExport(t *testing.T) {
	res := traceRun(t, 3)
	var buf bytes.Buffer
	if err := res.Timeline.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) < 4 {
		t.Fatalf("trace has %d events, want at least the rank metadata", len(trace.TraceEvents))
	}
}

// Package krylov provides the iterative solvers the paper's applications
// wrap around the FMM: "the interaction computation (matrix vector
// multiplication within a Krylov method) is carried out multiple times"
// (Section 3). The paper used PETSc's Krylov solvers; this package
// implements restarted GMRES and BiCGSTAB over a black-box mat-vec so a
// boundary integral equation can be solved with the FMM as the operator.
//
// The solvers are context-first: the core entry points (GMRESCtx,
// BiCGSTABCtx, GMRESBatchCtx) take a context.Context, check it before
// every operator application and pass it to the operator, so a
// cancellation lands within one FMM pass — the operator aborts
// mid-evaluation and the iteration stops — rather than running the
// remaining iterations. Operator errors abort the solve and propagate.
// The ctx-free functions are thin context.Background() wrappers over a
// ctx-oblivious operator.
package krylov

import (
	"context"
	"math"

	"repro/internal/errs"
)

// MatVec is a ctx-oblivious operator application dst = A*x. dst and x
// have equal length and do not alias.
type MatVec func(dst, x []float64)

// MatVecCtx applies the system operator under a context: dst = A*x.
// Returning a non-nil error aborts the solve with that error; the
// FMM's EvaluateCtx has exactly this shape.
type MatVecCtx func(ctx context.Context, dst, x []float64) error

// liftMatVec adapts a ctx-oblivious operator to the ctx-first core.
func liftMatVec(apply MatVec) MatVecCtx {
	return func(_ context.Context, dst, x []float64) error {
		apply(dst, x)
		return nil
	}
}

// Options control the iteration.
type Options struct {
	// Tol is the relative residual target ||b - Ax|| / ||b|| (default 1e-8).
	Tol float64
	// MaxIters bounds the total mat-vec count (default 200).
	MaxIters int
	// Restart is the GMRES restart length m (default 30).
	Restart int
}

func (o *Options) fill() {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 200
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
}

// Result reports convergence.
type Result struct {
	// Iterations is the number of mat-vec applications used.
	Iterations int
	// Residual is the final relative residual.
	Residual float64
	// Converged reports whether Tol was reached.
	Converged bool
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// GMRES solves A x = b by restarted GMRES(m); it is GMRESCtx with
// context.Background() and a ctx-oblivious operator.
func GMRES(apply MatVec, b, x []float64, opt Options) (Result, error) {
	return GMRESCtx(context.Background(), liftMatVec(apply), b, x, opt) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
}

// GMRESCtx solves A x = b by restarted GMRES(m) with modified
// Gram-Schmidt and Givens rotations; x is used as the initial guess and
// overwritten with the current iterate. ctx is checked before every
// operator application and passed to the operator; on cancellation the
// partial Result (iterations so far) is returned together with a typed
// error satisfying errs.ErrCanceled / errs.ErrDeadlineExceeded and the
// matching context sentinel. Operator errors abort the solve the same
// way.
func GMRESCtx(ctx context.Context, apply MatVecCtx, b, x []float64, opt Options) (Result, error) {
	opt.fill()
	n := len(b)
	if len(x) != n {
		return Result{}, errs.New(errs.CodeInvalidInput, "krylov: x/b length mismatch")
	}
	bn := norm(b)
	if bn == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}
	iters := 0
	// mv is the guarded operator application: one ctx check per mat-vec,
	// which — together with the operator's own internal checks — is what
	// bounds how much work a cancellation can strand.
	mv := func(dst, src []float64) error {
		if err := ctx.Err(); err != nil {
			return errs.FromContext(err)
		}
		if err := apply(ctx, dst, src); err != nil {
			return errs.FromContext(err)
		}
		iters++
		return nil
	}
	m := opt.Restart
	// Krylov basis and Hessenberg factorization storage.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, m+1) // h[i][j], i <= j+1
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	w := make([]float64, n)
	for iters < opt.MaxIters {
		// r0 = b - A x
		if err := mv(w, x); err != nil {
			return Result{Iterations: iters}, err
		}
		for i := range w {
			w[i] = b[i] - w[i]
		}
		beta := norm(w)
		if beta/bn <= opt.Tol {
			return Result{Iterations: iters, Residual: beta / bn, Converged: true}, nil
		}
		for i := range w {
			v[0][i] = w[i] / beta
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		k := 0
		for ; k < m && iters < opt.MaxIters; k++ {
			if err := mv(w, v[k]); err != nil {
				return Result{Iterations: iters}, err
			}
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = dot(w, v[i])
				for j := range w {
					w[j] -= h[i][k] * v[i][j]
				}
			}
			h[k+1][k] = norm(w)
			if h[k+1][k] > 0 {
				for j := range w {
					v[k+1][j] = w[j] / h[k+1][k]
				}
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation annihilating h[k+1][k].
			den := math.Hypot(h[k][k], h[k+1][k])
			if den == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = h[k][k]/den, h[k+1][k]/den
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			if math.Abs(g[k+1])/bn <= opt.Tol {
				k++
				break
			}
		}
		// Back-substitute y from H y = g and update x += V y.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				return Result{Iterations: iters, Residual: math.Abs(g[k]) / bn},
					errs.New(errs.CodeInternal, "krylov: singular Hessenberg diagonal (breakdown)")
			}
			y[i] = s / h[i][i]
		}
		for j := 0; j < k; j++ {
			for i := range x {
				x[i] += y[j] * v[j][i]
			}
		}
		res := math.Abs(g[k]) / bn
		if res <= opt.Tol {
			return Result{Iterations: iters, Residual: res, Converged: true}, nil
		}
	}
	// Final residual measurement — not counted as an iteration (only
	// solve-advancing applications are; this keeps Iterations <=
	// MaxIters and comparable with the pre-ctx entry points).
	if err := ctx.Err(); err != nil {
		return Result{Iterations: iters}, errs.FromContext(err)
	}
	if err := apply(ctx, w, x); err != nil {
		return Result{Iterations: iters}, errs.FromContext(err)
	}
	for i := range w {
		w[i] = b[i] - w[i]
	}
	return Result{Iterations: iters, Residual: norm(w) / bn}, nil
}

// BiCGSTAB solves A x = b by the stabilized bi-conjugate gradient
// method; it is BiCGSTABCtx with context.Background() and a
// ctx-oblivious operator.
func BiCGSTAB(apply MatVec, b, x []float64, opt Options) (Result, error) {
	return BiCGSTABCtx(context.Background(), liftMatVec(apply), b, x, opt) //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
}

// BiCGSTABCtx solves A x = b by BiCGSTAB under a context; x is the
// initial guess and is overwritten. Cancellation and operator-error
// semantics match GMRESCtx.
func BiCGSTABCtx(ctx context.Context, apply MatVecCtx, b, x []float64, opt Options) (Result, error) {
	opt.fill()
	n := len(b)
	if len(x) != n {
		return Result{}, errs.New(errs.CodeInvalidInput, "krylov: x/b length mismatch")
	}
	bn := norm(b)
	if bn == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}
	iters := 0
	mv := func(dst, src []float64) error {
		if err := ctx.Err(); err != nil {
			return errs.FromContext(err)
		}
		if err := apply(ctx, dst, src); err != nil {
			return errs.FromContext(err)
		}
		iters++
		return nil
	}
	r := make([]float64, n)
	if err := mv(r, x); err != nil {
		return Result{Iterations: iters}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rhat := append([]float64(nil), r...)
	var rho, alpha, omega float64 = 1, 1, 1
	vv := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	for iters < opt.MaxIters {
		rhoNew := dot(rhat, r)
		if rhoNew == 0 {
			break // breakdown
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*vv[i])
		}
		if err := mv(vv, p); err != nil {
			return Result{Iterations: iters}, err
		}
		alpha = rho / dot(rhat, vv)
		for i := range s {
			s[i] = r[i] - alpha*vv[i]
		}
		if norm(s)/bn <= opt.Tol {
			for i := range x {
				x[i] += alpha * p[i]
			}
			return Result{Iterations: iters, Residual: norm(s) / bn, Converged: true}, nil
		}
		if err := mv(t, s); err != nil {
			return Result{Iterations: iters}, err
		}
		tt := dot(t, t)
		if tt == 0 {
			break
		}
		omega = dot(t, s) / tt
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if res := norm(r) / bn; res <= opt.Tol {
			return Result{Iterations: iters, Residual: res, Converged: true}, nil
		}
		if omega == 0 {
			break
		}
	}
	// Final residual measurement — not counted as an iteration, as in
	// GMRESCtx.
	if err := ctx.Err(); err != nil {
		return Result{Iterations: iters}, errs.FromContext(err)
	}
	if err := apply(ctx, t, x); err != nil {
		return Result{Iterations: iters}, errs.FromContext(err)
	}
	for i := range t {
		t[i] = b[i] - t[i]
	}
	return Result{Iterations: iters, Residual: norm(t) / bn}, nil
}

package krylov

import (
	"context"
	"sync"

	"repro/internal/errs"
)

// BatchMatVec applies the system operator to several vectors at once:
// it returns ys with ys[i] = A * xs[i]. The FMM's EvaluateBatch has
// exactly this shape, amortizing tree traversal and near-field kernel
// evaluations across the vectors.
type BatchMatVec func(xs [][]float64) ([][]float64, error)

// BatchMatVecCtx is BatchMatVec under a context; the FMM's
// EvaluateBatchCtx has exactly this shape. A cancellation inside the
// operator aborts every system sharing the batched application.
type BatchMatVecCtx func(ctx context.Context, xs [][]float64) ([][]float64, error)

// GMRESBatch is GMRESBatchCtx with context.Background() and a
// ctx-oblivious operator.
func GMRESBatch(apply BatchMatVec, bs, xs [][]float64, opt Options) ([]Result, error) {
	return GMRESBatchCtx(context.Background(), //lint:allow ctxfirst documented legacy ctx-free wrapper over the Ctx API
		func(_ context.Context, vs [][]float64) ([][]float64, error) { return apply(vs) },
		bs, xs, opt)
}

// GMRESBatchCtx solves the systems A x_i = b_i (one shared operator,
// many right-hand sides) by running one restarted GMRES per system in
// lockstep: every iteration gathers the pending operator applications
// of all still-active systems into a single BatchMatVecCtx call. Each
// system produces exactly the iterates sequential GMRES would — the
// per-system arithmetic is GMRES itself — while the operator cost is
// paid once per batched application. xs[i] is the initial guess of
// system i and is overwritten with its solution.
//
// A system that converges (or breaks down) simply drops out of the
// batch; the rest keep iterating. An operator error — including a
// cancellation surfacing from inside the operator — aborts every
// in-flight system and is returned alongside the partial results; a
// ctx cancellation between applications is caught by each system's
// per-iteration check.
func GMRESBatchCtx(ctx context.Context, apply BatchMatVecCtx, bs, xs [][]float64, opt Options) ([]Result, error) {
	if len(xs) != len(bs) {
		return nil, errs.Newf(errs.CodeInvalidInput, "krylov: got %d initial guesses for %d right-hand sides", len(xs), len(bs))
	}
	n := -1
	for i := range bs {
		if n == -1 {
			n = len(bs[i])
		}
		if len(bs[i]) != n || len(xs[i]) != n {
			return nil, errs.Newf(errs.CodeInvalidInput, "krylov: system %d shape mismatch (one operator: every b and x must have equal length)", i)
		}
	}
	if len(bs) == 0 {
		return nil, nil
	}

	gw := &batchGateway{ctx: ctx, apply: apply, registered: len(bs)}
	results := make([]Result, len(bs))
	errors := make([]error, len(bs))
	var wg sync.WaitGroup
	wg.Add(len(bs))
	for i := range bs {
		go func(i int) {
			defer wg.Done()
			defer gw.leave()
			mv := func(_ context.Context, dst, x []float64) error {
				y, err := gw.call(x)
				if err != nil {
					return err
				}
				copy(dst, y)
				return nil
			}
			results[i], errors[i] = GMRESCtx(ctx, mv, bs[i], xs[i], opt)
		}(i)
	}
	wg.Wait()
	for _, err := range errors {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// batchGateway synchronizes the lockstep: each system submits one
// vector per GMRES iteration and blocks; the submission completing the
// set (every registered system pending) flushes them as one
// BatchMatVecCtx call. Systems whose GMRES returns deregister,
// shrinking the set the flush waits for — that is the only coupling
// between systems, so per-system convergence behavior is untouched.
type batchGateway struct {
	ctx   context.Context
	apply BatchMatVecCtx

	mu         sync.Mutex
	registered int
	pending    []batchReq
}

type batchReq struct {
	x    []float64
	done chan batchResp
}

type batchResp struct {
	y   []float64
	err error
}

func (g *batchGateway) call(x []float64) ([]float64, error) {
	req := batchReq{x: x, done: make(chan batchResp, 1)}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	if len(g.pending) == g.registered {
		g.flushLocked()
	}
	g.mu.Unlock()
	resp := <-req.done
	return resp.y, resp.err
}

func (g *batchGateway) leave() {
	g.mu.Lock()
	g.registered--
	if g.registered > 0 && len(g.pending) == g.registered {
		g.flushLocked()
	}
	g.mu.Unlock()
}

// flushLocked runs one batched application. It holds g.mu across the
// apply, which is safe: the flush condition means no other system can
// submit until the results are delivered, and leave() callers merely
// block until the flush completes. Note a blocked call() cannot miss a
// cancellation: the operator itself observes g.ctx and errors out,
// which releases every pending system with that error.
func (g *batchGateway) flushLocked() {
	reqs := g.pending
	g.pending = nil
	xs := make([][]float64, len(reqs))
	for i, r := range reqs {
		xs[i] = r.x
	}
	ys, err := g.apply(g.ctx, xs)
	if err == nil && len(ys) != len(xs) {
		err = errs.Newf(errs.CodeInternal, "krylov: batch operator returned %d vectors for %d inputs", len(ys), len(xs))
	}
	for i, r := range reqs {
		if err != nil {
			r.done <- batchResp{err: err}
			continue
		}
		r.done <- batchResp{y: ys[i]}
	}
}

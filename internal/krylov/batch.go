package krylov

import (
	"fmt"
	"sync"
)

// BatchMatVec applies the system operator to several vectors at once:
// it returns ys with ys[i] = A * xs[i]. The FMM's EvaluateBatch has
// exactly this shape, amortizing tree traversal and near-field kernel
// evaluations across the vectors.
type BatchMatVec func(xs [][]float64) ([][]float64, error)

// GMRESBatch solves the systems A x_i = b_i (one shared operator, many
// right-hand sides) by running one restarted GMRES per system in
// lockstep: every iteration gathers the pending operator applications
// of all still-active systems into a single BatchMatVec call. Each
// system produces exactly the iterates sequential GMRES would — the
// per-system arithmetic is GMRES itself — while the operator cost is
// paid once per batched application. xs[i] is the initial guess of
// system i and is overwritten with its solution.
//
// A system that converges (or breaks down) simply drops out of the
// batch; the rest keep iterating. An operator error aborts every
// in-flight system and is returned alongside the partial results.
func GMRESBatch(apply BatchMatVec, bs, xs [][]float64, opt Options) ([]Result, error) {
	if len(xs) != len(bs) {
		return nil, fmt.Errorf("krylov: got %d initial guesses for %d right-hand sides", len(xs), len(bs))
	}
	n := -1
	for i := range bs {
		if n == -1 {
			n = len(bs[i])
		}
		if len(bs[i]) != n || len(xs[i]) != n {
			return nil, fmt.Errorf("krylov: system %d shape mismatch (one operator: every b and x must have equal length)", i)
		}
	}
	if len(bs) == 0 {
		return nil, nil
	}

	gw := &batchGateway{apply: apply, registered: len(bs)}
	results := make([]Result, len(bs))
	errs := make([]error, len(bs))
	var wg sync.WaitGroup
	wg.Add(len(bs))
	for i := range bs {
		go func(i int) {
			defer wg.Done()
			defer gw.leave()
			defer func() {
				if r := recover(); r != nil {
					a, ok := r.(batchAbort)
					if !ok {
						panic(r)
					}
					errs[i] = a.err
				}
			}()
			mv := func(dst, x []float64) {
				y, err := gw.call(x)
				if err != nil {
					panic(batchAbort{err})
				}
				copy(dst, y)
			}
			results[i], errs[i] = GMRES(mv, bs[i], xs[i], opt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// batchAbort carries an operator error out of a system goroutine; the
// MatVec interface has no error channel, so the wrapper panics with it
// and the goroutine's recover translates it back.
type batchAbort struct{ err error }

// batchGateway synchronizes the lockstep: each system submits one
// vector per GMRES iteration and blocks; the submission completing the
// set (every registered system pending) flushes them as one BatchMatVec
// call. Systems whose GMRES returns deregister, shrinking the set the
// flush waits for — that is the only coupling between systems, so
// per-system convergence behavior is untouched.
type batchGateway struct {
	apply BatchMatVec

	mu         sync.Mutex
	registered int
	pending    []batchReq
}

type batchReq struct {
	x    []float64
	done chan batchResp
}

type batchResp struct {
	y   []float64
	err error
}

func (g *batchGateway) call(x []float64) ([]float64, error) {
	req := batchReq{x: x, done: make(chan batchResp, 1)}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	if len(g.pending) == g.registered {
		g.flushLocked()
	}
	g.mu.Unlock()
	resp := <-req.done
	return resp.y, resp.err
}

func (g *batchGateway) leave() {
	g.mu.Lock()
	g.registered--
	if g.registered > 0 && len(g.pending) == g.registered {
		g.flushLocked()
	}
	g.mu.Unlock()
}

// flushLocked runs one batched application. It holds g.mu across the
// apply, which is safe: the flush condition means no other system can
// submit until the results are delivered, and leave() callers merely
// block until the flush completes.
func (g *batchGateway) flushLocked() {
	reqs := g.pending
	g.pending = nil
	xs := make([][]float64, len(reqs))
	for i, r := range reqs {
		xs[i] = r.x
	}
	ys, err := g.apply(xs)
	if err == nil && len(ys) != len(xs) {
		err = fmt.Errorf("krylov: batch operator returned %d vectors for %d inputs", len(ys), len(xs))
	}
	for i, r := range reqs {
		if err != nil {
			r.done <- batchResp{err: err}
			continue
		}
		r.done <- batchResp{y: ys[i]}
	}
}

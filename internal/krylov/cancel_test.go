package krylov

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/errs"
)

// slowSystem is a small well-conditioned dense system whose GMRES solve
// needs many iterations, giving a cancellation room to land.
func slowSystem(n int) (apply MatVecCtx, b []float64, applies *atomic.Int64) {
	applies = &atomic.Int64{}
	apply = func(_ context.Context, dst, x []float64) error {
		applies.Add(1)
		// Tridiagonal SPD operator: 2 on the diagonal, -1 off it.
		for i := range dst {
			v := 2 * x[i]
			if i > 0 {
				v -= x[i-1]
			}
			if i < n-1 {
				v -= x[i+1]
			}
			dst[i] = v
		}
		return nil
	}
	b = make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return apply, b, applies
}

// TestGMRESCtxCancelStopsIterating: a cancellation between operator
// applications ends the solve with the typed error and the partial
// iteration count.
func TestGMRESCtxCancelStopsIterating(t *testing.T) {
	const n = 400
	apply, b, applies := slowSystem(n)
	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 3
	guard := func(c context.Context, dst, x []float64) error {
		if applies.Load() == stopAfter {
			cancel()
		}
		return apply(c, dst, x)
	}
	res, err := GMRESCtx(ctx, guard, b, make([]float64, n), Options{Tol: 1e-12, MaxIters: 200, Restart: 50})
	if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled and context.Canceled", err)
	}
	if got := applies.Load(); got != stopAfter+1 {
		t.Errorf("operator applied %d times after cancel at %d — the per-iteration check must stop the solve", got, stopAfter)
	}
	if res.Converged {
		t.Error("cancelled solve must not report convergence")
	}
}

// TestGMRESCtxDeadline: an expired deadline produces the deadline code.
func TestGMRESCtxDeadline(t *testing.T) {
	const n = 50
	apply, b, _ := slowSystem(n)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	_, err := GMRESCtx(ctx, apply, b, make([]float64, n), Options{})
	if !errors.Is(err, errs.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded and context.DeadlineExceeded", err)
	}
}

// TestGMRESCtxOperatorErrorAborts: an error from the operator (an FMM
// evaluation failing mid-solve) surfaces unchanged.
func TestGMRESCtxOperatorErrorAborts(t *testing.T) {
	boom := errors.New("operator exploded")
	apply := func(context.Context, []float64, []float64) error { return boom }
	_, err := GMRESCtx(context.Background(), apply, []float64{1, 2}, []float64{0, 0}, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the operator error", err)
	}
}

// TestBiCGSTABCtxCancel mirrors the GMRES cancellation contract.
func TestBiCGSTABCtxCancel(t *testing.T) {
	const n = 400
	apply, b, applies := slowSystem(n)
	ctx, cancel := context.WithCancel(context.Background())
	guard := func(c context.Context, dst, x []float64) error {
		if applies.Load() == 2 {
			cancel()
		}
		return apply(c, dst, x)
	}
	_, err := BiCGSTABCtx(ctx, guard, b, make([]float64, n), Options{Tol: 1e-13})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestGMRESBatchCtxCancelAbortsAllSystems: one shared cancellation
// aborts every in-flight system of a lockstep batch without deadlock.
func TestGMRESBatchCtxCancelAbortsAllSystems(t *testing.T) {
	const n, k = 400, 4
	_, b, _ := slowSystem(n)
	ctx, cancel := context.WithCancel(context.Background())
	var rounds atomic.Int64
	apply := func(c context.Context, xs [][]float64) ([][]float64, error) {
		if rounds.Add(1) == 2 {
			cancel()
		}
		if err := c.Err(); err != nil {
			return nil, errs.FromContext(err)
		}
		single, _, _ := slowSystem(n)
		ys := make([][]float64, len(xs))
		for i, x := range xs {
			ys[i] = make([]float64, n)
			if err := single(c, ys[i], x); err != nil {
				return nil, err
			}
		}
		return ys, nil
	}
	bs := make([][]float64, k)
	xs := make([][]float64, k)
	for i := range bs {
		bs[i] = append([]float64(nil), b...)
		xs[i] = make([]float64, n)
	}
	_, err := GMRESBatchCtx(ctx, apply, bs, xs, Options{Tol: 1e-12, MaxIters: 100})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestGMRESCtxBackgroundMatchesLegacy: the ctx wrapper is behaviorally
// identical to the legacy entry point on an uncancelled solve.
func TestGMRESCtxBackgroundMatchesLegacy(t *testing.T) {
	const n = 120
	applyCtx, b, _ := slowSystem(n)
	legacy := func(dst, x []float64) { _ = applyCtx(context.Background(), dst, x) }

	x1 := make([]float64, n)
	r1, err := GMRES(legacy, b, x1, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	r2, err := GMRESCtx(context.Background(), applyCtx, b, x2, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations || r1.Converged != r2.Converged {
		t.Errorf("legacy %+v vs ctx %+v", r1, r2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

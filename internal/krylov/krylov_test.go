package krylov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// denseApply wraps a dense matrix as a MatVec.
func denseApply(a *linalg.Dense) MatVec {
	return func(dst, x []float64) { a.MatVec(dst, x) }
}

// spdMatrix returns a random symmetric positive definite matrix
// A = Bᵀ B + n·I (well conditioned).
func spdMatrix(rng *rand.Rand, n int) *linalg.Dense {
	b := linalg.NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := linalg.Mul(b.Transpose(), b)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	return a
}

// diagDominant returns a random nonsymmetric diagonally dominant matrix.
func diagDominant(rng *rand.Rand, n int) *linalg.Dense {
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				a.Data[i*n+j] = rng.NormFloat64()
				row += math.Abs(a.Data[i*n+j])
			}
		}
		a.Data[i*n+i] = row + 1
	}
	return a
}

func residual(a *linalg.Dense, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MatVec(r, x)
	num, den := 0.0, 0.0
	for i := range r {
		num += (b[i] - r[i]) * (b[i] - r[i])
		den += b[i] * b[i]
	}
	return math.Sqrt(num / den)
}

func TestGMRESSolvesDenseSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{5, 20, 60} {
		for _, mk := range []func(*rand.Rand, int) *linalg.Dense{spdMatrix, diagDominant} {
			a := mk(rng, n)
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := make([]float64, n)
			res, err := GMRES(denseApply(a), b, x, Options{Tol: 1e-10})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d: GMRES did not converge: %+v", n, res)
			}
			if r := residual(a, x, b); r > 1e-8 {
				t.Errorf("n=%d: residual %v", n, r)
			}
		}
	}
}

func TestGMRESRestartedConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 80
	a := spdMatrix(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	// Restart far below n forces multiple outer cycles.
	res, err := GMRES(denseApply(a), b, x, Options{Tol: 1e-9, Restart: 7, MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted GMRES failed: %+v", res)
	}
	if r := residual(a, x, b); r > 1e-7 {
		t.Errorf("residual %v", r)
	}
}

func TestGMRESUsesInitialGuess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 30
	a := spdMatrix(rng, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MatVec(b, want)
	// Exact initial guess: must converge with a single residual check.
	x := append([]float64(nil), want...)
	res, err := GMRES(denseApply(a), b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("exact guess needed %d mat-vecs", res.Iterations)
	}
}

func TestBiCGSTABSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{10, 50} {
		a := diagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		res, err := BiCGSTAB(denseApply(a), b, x, Options{Tol: 1e-10, MaxIters: 500})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: BiCGSTAB did not converge: %+v", n, res)
		}
		if r := residual(a, x, b); r > 1e-7 {
			t.Errorf("n=%d: residual %v", n, r)
		}
	}
}

func TestZeroRightHandSide(t *testing.T) {
	a := spdMatrix(rand.New(rand.NewSource(5)), 10)
	x := make([]float64, 10)
	x[3] = 7
	res, err := GMRES(denseApply(a), make([]float64, 10), x, Options{})
	if err != nil || !res.Converged {
		t.Fatal("zero rhs must converge instantly")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
	x[2] = 1
	res, err = BiCGSTAB(denseApply(a), make([]float64, 10), x, Options{})
	if err != nil || !res.Converged {
		t.Fatal("BiCGSTAB zero rhs must converge")
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := GMRES(func(dst, x []float64) {}, make([]float64, 3), make([]float64, 4), Options{}); err == nil {
		t.Error("GMRES must reject length mismatch")
	}
	if _, err := BiCGSTAB(func(dst, x []float64) {}, make([]float64, 3), make([]float64, 4), Options{}); err == nil {
		t.Error("BiCGSTAB must reject length mismatch")
	}
}

func TestMaxItersRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	a := spdMatrix(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res, _ := GMRES(denseApply(a), b, x, Options{Tol: 1e-30, MaxIters: 5})
	if res.Iterations > 6 {
		t.Errorf("GMRES overran MaxIters: %d", res.Iterations)
	}
	if res.Converged {
		t.Error("cannot converge to 1e-30 in 5 iterations")
	}
}

package krylov

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/linalg"
)

// denseBatchApply wraps a dense matrix as a BatchMatVec, counting calls.
func denseBatchApply(a *linalg.Dense, calls *atomic.Int64) BatchMatVec {
	return func(xs [][]float64) ([][]float64, error) {
		if calls != nil {
			calls.Add(1)
		}
		ys := make([][]float64, len(xs))
		for i, x := range xs {
			ys[i] = make([]float64, a.Rows)
			a.MatVec(ys[i], x)
		}
		return ys, nil
	}
}

// TestGMRESBatchMatchesSequential: each system of a batch must produce
// exactly the solution sequential GMRES produces — lockstep batching
// only reorders when operator applications happen, not their inputs.
func TestGMRESBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, k = 40, 5
	a := spdMatrix(rng, n)
	bs := make([][]float64, k)
	for i := range bs {
		bs[i] = make([]float64, n)
		for j := range bs[i] {
			bs[i][j] = rng.NormFloat64()
		}
	}
	opt := Options{Tol: 1e-10}

	want := make([][]float64, k)
	wantRes := make([]Result, k)
	for i := range bs {
		want[i] = make([]float64, n)
		res, err := GMRES(denseApply(a), bs[i], want[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		wantRes[i] = res
	}

	xs := make([][]float64, k)
	for i := range xs {
		xs[i] = make([]float64, n)
	}
	results, err := GMRESBatch(denseBatchApply(a, nil), bs, xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if !results[i].Converged {
			t.Fatalf("system %d did not converge: %+v", i, results[i])
		}
		if results[i].Iterations != wantRes[i].Iterations {
			t.Errorf("system %d: %d iterations, sequential used %d", i, results[i].Iterations, wantRes[i].Iterations)
		}
		for j := range xs[i] {
			if xs[i][j] != want[i][j] {
				t.Fatalf("system %d solution differs from sequential GMRES at %d: %g vs %g",
					i, j, xs[i][j], want[i][j])
			}
		}
	}
}

// TestGMRESBatchAmortizesApplies: k systems iterating in lockstep must
// need about as many batched applications as ONE system needs
// iterations, not k times as many.
func TestGMRESBatchAmortizesApplies(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n, k = 40, 6
	a := spdMatrix(rng, n)
	bs := make([][]float64, k)
	xs := make([][]float64, k)
	for i := range bs {
		bs[i] = make([]float64, n)
		for j := range bs[i] {
			bs[i][j] = rng.NormFloat64()
		}
		xs[i] = make([]float64, n)
	}
	var calls atomic.Int64
	results, err := GMRESBatch(denseBatchApply(a, &calls), bs, xs, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	maxIters := 0
	for _, r := range results {
		if r.Iterations > maxIters {
			maxIters = r.Iterations
		}
	}
	// Systems dropping out mid-cycle can add a few extra flushes, but
	// the call count must track the slowest system, not the sum.
	if c := int(calls.Load()); c > maxIters+k {
		t.Errorf("%d batched applies for max %d per-system iterations (k=%d): lockstep not amortizing", c, maxIters, k)
	}
}

// TestGMRESBatchHeterogeneousConvergence: systems that converge at very
// different rates must all finish, early finishers dropping out.
func TestGMRESBatchHeterogeneousConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 30
	a := spdMatrix(rng, n)
	// System 0: b = A*e so it converges almost immediately. System 1:
	// random b. System 2: zero b (instant, never applies the operator).
	e := make([]float64, n)
	e[0] = 1
	b0 := make([]float64, n)
	a.MatVec(b0, e)
	b1 := make([]float64, n)
	for i := range b1 {
		b1[i] = rng.NormFloat64()
	}
	bs := [][]float64{b0, b1, make([]float64, n)}
	xs := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	results, err := GMRESBatch(denseBatchApply(a, nil), bs, xs, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Converged {
			t.Errorf("system %d did not converge: %+v", i, r)
		}
	}
}

// TestGMRESBatchOperatorError: an operator failure must surface as an
// error instead of hanging the lockstep.
func TestGMRESBatchOperatorError(t *testing.T) {
	boom := errors.New("operator failed")
	apply := func(xs [][]float64) ([][]float64, error) { return nil, boom }
	bs := [][]float64{{1, 2, 3}, {4, 5, 6}}
	xs := [][]float64{make([]float64, 3), make([]float64, 3)}
	if _, err := GMRESBatch(apply, bs, xs, Options{}); !errors.Is(err, boom) {
		t.Errorf("got err %v, want %v", err, boom)
	}
}

// TestGMRESBatchValidation covers shape errors and the empty batch.
func TestGMRESBatchValidation(t *testing.T) {
	apply := func(xs [][]float64) ([][]float64, error) { return xs, nil }
	if _, err := GMRESBatch(apply, [][]float64{{1}}, [][]float64{}, Options{}); err == nil {
		t.Error("bs/xs count mismatch must error")
	}
	if _, err := GMRESBatch(apply, [][]float64{{1, 2}, {1}}, [][]float64{{0, 0}, {0}}, Options{}); err == nil {
		t.Error("ragged systems must error")
	}
	results, err := GMRESBatch(apply, nil, nil, Options{})
	if err != nil || len(results) != 0 {
		t.Errorf("empty batch: got %v, %v", results, err)
	}
}

// Package exec is the shared-memory parallel execution engine of the
// FMM. The paper's central observation is that every FMM pass
// decomposes into independent per-box work items synchronized only at
// level boundaries; Lease.ForRange is exactly that shape — fan a
// half-open index range out over worker lanes, barrier at the end.
//
// Lanes come from a process-wide Elastic pool rather than a per-caller
// fixed-width pool: each evaluation Acquires a lease sized by current
// load (the whole machine when idle, degrading toward a configured
// floor under saturation), and running sweeps shed revoked lanes at
// chunk-claim boundaries so long evaluations shrink as new callers
// arrive. See Elastic for the scheduling contract.
//
// Each ForRange invocation hands the callback a stable worker id in
// [0, Lease.MaxWidth()) so callers can keep per-worker scratch buffers
// and statistics without locks, merging them after the barrier.
//
// ForRange is context-aware: it checks ctx at dispatch and each worker
// checks it between chunk claims, so a cancellation lands within one
// chunk of work plus the barrier — which is what lets a cancelled FMM
// evaluation return within a single pass instead of running the sweep
// to completion.
package exec

// grainFor picks the dynamic-scheduling chunk size: small enough that an
// uneven work distribution (adaptive trees concentrate points in few
// boxes) keeps every worker busy, large enough that the atomic fetch-add
// is off the critical path. Cancellation and lane-revocation checks ride
// the same cadence — one atomic load each per chunk — so an undisturbed
// run pays a handful of atomic loads per pass, not one per index.
func grainFor(n, workers int) int {
	g := n / (workers * 8)
	if g < 1 {
		g = 1
	}
	return g
}

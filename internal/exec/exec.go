// Package exec is the shared-memory parallel execution engine of the
// FMM: a fixed-size goroutine pool with a dynamically scheduled
// parallel-for. The paper's central observation is that every FMM pass
// decomposes into independent per-box work items synchronized only at
// level boundaries; Pool.ForRange is exactly that shape — fan a
// half-open index range out over the workers, barrier at the end.
//
// Each invocation hands the callback a stable worker id in [0, Workers())
// so callers can keep per-worker scratch buffers and statistics without
// locks, merging them after the barrier.
//
// ForRange is context-aware: it checks ctx at dispatch and each worker
// checks it between chunk claims, so a cancellation lands within one
// chunk of work plus the barrier — which is what lets a cancelled FMM
// evaluation return within a single pass instead of running the sweep
// to completion.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool fans index ranges out over a fixed number of workers. The zero
// value is not ready; use New. A Pool is stateless between calls and
// safe for concurrent use (concurrent ForRange calls simply share the
// machine).
type Pool struct {
	workers int
}

// New returns a pool of the given width; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// grainFor picks the dynamic-scheduling chunk size: small enough that an
// uneven work distribution (adaptive trees concentrate points in few
// boxes) keeps every worker busy, large enough that the atomic fetch-add
// is off the critical path. Cancellation checks ride the same cadence —
// one ctx.Err() load per chunk — so an uncancelled run pays a handful of
// atomic loads per pass, not one per index.
func grainFor(n, workers int) int {
	g := n / (workers * 8)
	if g < 1 {
		g = 1
	}
	return g
}

// ForRange invokes fn(worker, i) for every i in [lo, hi), distributing
// indices over the pool dynamically (atomic chunk claiming, so uneven
// per-index costs still balance). It returns after every started
// invocation has completed — a barrier, which is what gives the FMM its
// level synchronization. With one worker (or a single-index range) it
// runs inline, byte-for-byte matching a plain loop.
//
// ctx is checked at dispatch and between chunk claims. On cancellation
// the sweep stops claiming new chunks, the barrier drains, and ForRange
// returns ctx.Err(); the range is then only partially processed, so
// callers must treat their output buffers as garbage.
//
// A panic in fn is re-raised on the calling goroutine after the barrier,
// so callers' recover-based safety nets (e.g. the evaluation service)
// keep working under parallel execution.
func (p *Pool) ForRange(ctx context.Context, lo, hi int, fn func(worker, i int)) error {
	n := hi - lo
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := p.workers
	if w > n {
		w = n
	}
	grain := grainFor(n, w)
	if w <= 1 {
		for clo := 0; clo < n; clo += grain {
			if err := ctx.Err(); err != nil {
				return err
			}
			chi := clo + grain
			if chi > n {
				chi = n
			}
			for i := lo + clo; i < lo+chi; i++ {
				fn(0, i)
			}
		}
		return nil
	}
	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	wg.Add(w)
	done := ctx.Done()
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				select {
				case <-done:
					return
				default:
				}
				clo := next.Add(int64(grain)) - int64(grain)
				if clo >= int64(n) {
					return
				}
				chi := clo + int64(grain)
				if chi > int64(n) {
					chi = int64(n)
				}
				for i := lo + int(clo); i < lo+int(chi); i++ {
					fn(wk, i)
				}
			}
		}(wk)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}

package exec

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLeaseRegrowsMidSweep: a sweep admitted at a shrunk width fans
// back out *during the pass* once the competitor releases — worker ids
// beyond the shrunk width appear before the barrier, and the lease ends
// the sweep at its full ceiling.
func TestLeaseRegrowsMidSweep(t *testing.T) {
	e := NewElastic(4)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2 := acquireWhileSweeping(t, e, l1, 0) // revokes l1 toward 2
	if err := l1.ForRange(bg, 0, 64, func(_, _ int) {}); err != nil {
		t.Fatal(err) // settle l1 at the shrunk width
	}
	if w := l1.Width(); w > 2 {
		t.Fatalf("l1 width %d with competitor admitted, want <= 2", w)
	}

	counts := make([]int64, l1.MaxWidth())
	var releaseOnce sync.Once
	err = l1.ForRange(bg, 0, 1<<14, func(wk, _ int) {
		atomic.AddInt64(&counts[wk], 1)
		// First processed item: the competitor leaves. From here the
		// pool is idle and worker 0's chunk-boundary poll must claim
		// the freed lanes mid-pass.
		releaseOnce.Do(l2.Release)
		spin()
	})
	if err != nil {
		t.Fatal(err)
	}
	grew := 0
	for wk := 2; wk < len(counts); wk++ {
		if counts[wk] > 0 {
			grew++
		}
	}
	if grew == 0 {
		t.Errorf("no worker beyond the shrunk width ran: counts %v (sweep never regrew mid-pass)", counts)
	}
	if w := l1.Width(); w != 4 {
		t.Errorf("l1 width %d after mid-sweep regrowth, want 4", w)
	}
	l1.Release()
	if e.InUse() != 0 {
		t.Errorf("InUse = %d after release", e.InUse())
	}
}

// growSweep runs one n-item sweep under l, writing a deterministic
// per-index value through per-worker scratch (sized MaxWidth — a worker
// id collision would corrupt it), and calls hook with the number of
// items completed so far.
func growSweep(t *testing.T, l *Lease, n int, hook func(done int)) []float64 {
	t.Helper()
	out := make([]float64, n)
	scratch := make([][8]float64, l.MaxWidth())
	var count atomic.Int64
	err := l.ForRange(bg, 0, n, func(wk, i int) {
		s := &scratch[wk]
		for j := range s {
			s[j] = float64(i*31 + j)
		}
		acc := 0.0
		for j := range s {
			acc += math.Sqrt(s[j] + 1)
		}
		out[i] = acc
		if hook != nil {
			hook(int(count.Add(1)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestForRangeWidthDeterminism: identical outputs across width
// schedules — undisturbed, shrink mid-sweep, and shrink-then-regrow
// mid-sweep. Growth reuses retired worker ids smallest-first, so live
// ids never collide on scratch; any violation shows up as a corrupted
// output (and as a data race under -race).
func TestForRangeWidthDeterminism(t *testing.T) {
	const n = 1 << 15

	// Reference: width-1 pool, strictly serial.
	ref := func() []float64 {
		e := NewElastic(1)
		l, err := e.Acquire(bg, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Release()
		return growSweep(t, l, n, nil)
	}()

	check := func(name string, got []float64) {
		t.Helper()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: output[%d] = %v, want %v (width schedule changed results)", name, i, got[i], ref[i])
			}
		}
	}

	// Undisturbed full width.
	{
		e := NewElastic(8)
		l, err := e.Acquire(bg, 0)
		if err != nil {
			t.Fatal(err)
		}
		check("undisturbed", growSweep(t, l, n, nil))
		l.Release()
	}

	// Shrink mid-sweep: a competitor arrives a quarter of the way in
	// and holds to the end. (The admission may land mid-sweep or — on a
	// slow scheduler — only once the follow-up mini-sweeps shed lanes;
	// either way the big sweep saw a revocation schedule and its output
	// must be unchanged.)
	{
		e := NewElastic(8)
		l, err := e.Acquire(bg, 0)
		if err != nil {
			t.Fatal(err)
		}
		var comp *Lease
		var compErr error
		admitted := make(chan struct{})
		var once sync.Once
		out := growSweep(t, l, n, func(done int) {
			if done >= n/4 {
				once.Do(func() {
					go func() {
						comp, compErr = e.Acquire(bg, 4)
						close(admitted)
					}()
				})
			}
		})
		check("shrink", out)
		for { // drive shedding until the competitor is admitted
			select {
			case <-admitted:
			default:
				if err := l.ForRange(bg, 0, 256, func(_, _ int) {}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			break
		}
		if compErr != nil {
			t.Fatalf("competitor not admitted: %v", compErr)
		}
		comp.Release()
		l.Release()
	}

	// Start narrow, regrow mid-sweep: the lease is shrunk by a
	// competitor before the sweep starts; the competitor releases half
	// way through and the sweep reclaims the lanes (reusing retired
	// worker ids) before the barrier.
	{
		e := NewElastic(8)
		l, err := e.Acquire(bg, 0)
		if err != nil {
			t.Fatal(err)
		}
		comp := acquireWhileSweeping(t, e, l, 4)
		if err := l.ForRange(bg, 0, 256, func(_, _ int) {}); err != nil {
			t.Fatal(err) // settle l at its shrunk width
		}
		if w := l.Width(); w >= 8 {
			t.Fatalf("l width %d with competitor admitted, want < 8", w)
		}
		var relOnce sync.Once
		out := growSweep(t, l, n, func(done int) {
			if done >= n/2 {
				relOnce.Do(comp.Release)
			}
		})
		check("shrink+regrow", out)
		l.Release()
		if e.InUse() != 0 {
			t.Errorf("InUse = %d after all releases", e.InUse())
		}
	}
}

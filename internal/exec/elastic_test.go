package exec

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var bg = context.Background()

// acquireWhileSweeping acquires a new lease on e while driving repeated
// sweeps on running — an idle lease only sheds revoked lanes at sweep
// boundaries, so a bare Acquire against a full idle pool would wait
// forever.
func acquireWhileSweeping(t *testing.T, e *Elastic, running *Lease, want int) *Lease {
	t.Helper()
	type res struct {
		l   *Lease
		err error
	}
	c := make(chan res, 1)
	go func() {
		l, err := e.Acquire(bg, want)
		c <- res{l, err}
	}()
	for {
		if err := running.ForRange(bg, 0, 256, func(_, _ int) {}); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-c:
			if r.err != nil {
				t.Fatal(r.err)
			}
			return r.l
		default:
		}
	}
}

// TestAcquireIdleGrantsFullWant: the headline adaptive property — a lone
// caller on an idle pool gets its whole ceiling, and want <= 0 means the
// full capacity.
func TestAcquireIdleGrantsFullWant(t *testing.T) {
	e := NewElastic(8)
	for _, tc := range []struct{ want, grant int }{{8, 8}, {3, 3}, {0, 8}, {-1, 8}, {99, 8}} {
		l, err := e.Acquire(bg, tc.want)
		if err != nil {
			t.Fatal(err)
		}
		if l.Granted() != tc.grant {
			t.Errorf("Acquire(want=%d) granted %d, want %d", tc.want, l.Granted(), tc.grant)
		}
		if got := e.InUse(); got != tc.grant {
			t.Errorf("InUse = %d after grant of %d", got, tc.grant)
		}
		l.Release()
		if got := e.InUse(); got != 0 {
			t.Errorf("InUse = %d after release", got)
		}
	}
	if e.GrantedLeases() != 5 {
		t.Errorf("GrantedLeases = %d, want 5", e.GrantedLeases())
	}
}

// TestAcquireDegradesUnderLoad: sequential admissions (none running a
// sweep, so no lanes flow back) split the free lanes while respecting
// the floor, and InUse never exceeds capacity.
func TestAcquireDegradesUnderLoad(t *testing.T) {
	e := NewElastic(4)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Granted() != 4 {
		t.Fatalf("first lease granted %d, want 4", l1.Granted())
	}
	// l1 holds everything; a second Acquire revokes l1's target and
	// waits for its sweeps to shed the lanes.
	l2 := acquireWhileSweeping(t, e, l1, 0)
	if g := l2.Granted(); g < 1 || g > 2 {
		t.Errorf("second lease granted %d lanes, want 1..2 (fair share of 4 across 2)", g)
	}
	if in := e.InUse(); in > e.Cap() {
		t.Errorf("InUse %d exceeds capacity %d", in, e.Cap())
	}
	l1.Release()
	l2.Release()
}

// TestLeaseShedsLanesMidSweep: a long-running sweep hands revoked lanes
// back at chunk-claim boundaries — a competing Acquire is admitted while
// the first sweep is still running, and the first lease's width has
// dropped toward the fair share.
func TestLeaseShedsLanesMidSweep(t *testing.T) {
	e := NewElastic(4)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweepDone := make(chan error, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	go func() {
		sweepDone <- l1.ForRange(bg, 0, 1<<20, func(_, i int) {
			once.Do(func() { close(started) })
			// Hold the sweep open until the competitor is admitted.
			select {
			case <-release:
			default:
				spin()
			}
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(bg, 10*time.Second)
	defer cancel()
	l2, err := e.Acquire(ctx, 2)
	if err != nil {
		t.Fatalf("competing Acquire not admitted while sweep running: %v", err)
	}
	if l2.Granted() < 1 {
		t.Errorf("competitor granted %d lanes", l2.Granted())
	}
	if w := l1.Width(); w > 2 {
		t.Errorf("running lease width %d after revocation, want <= 2", w)
	}
	close(release)
	if err := <-sweepDone; err != nil {
		t.Fatal(err)
	}
	l1.Release()
	l2.Release()
	if e.InUse() != 0 {
		t.Errorf("InUse = %d after all releases", e.InUse())
	}
}

// TestLeaseGrowsBackAtDispatch: after the competition releases, the
// surviving lease fans back out to its ceiling at its next ForRange.
func TestLeaseGrowsBackAtDispatch(t *testing.T) {
	e := NewElastic(4)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2 := acquireWhileSweeping(t, e, l1, 0) // revokes l1 toward 2
	if w := l1.Width(); w > 2 {
		t.Fatalf("l1 width %d with competitor admitted, want <= 2", w)
	}
	l2.Release()
	if err := l1.ForRange(bg, 0, 64, func(_, _ int) {}); err != nil {
		t.Fatal(err)
	}
	if w := l1.Width(); w != 4 {
		t.Errorf("l1 width %d after competitor released, want 4 (regrown at dispatch)", w)
	}
	l1.Release()
}

// TestSetMinGrantFloor: with a floor of 2 on a 4-lane pool, a third
// concurrent lease cannot be admitted until one releases, and running
// leases are never revoked below the floor.
func TestSetMinGrantFloor(t *testing.T) {
	e := NewElastic(4)
	e.SetMinGrant(2)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2 := acquireWhileSweeping(t, e, l1, 0)
	if l2.Granted() < 2 {
		t.Errorf("second lease granted %d, floor is 2", l2.Granted())
	}
	if w := l1.Width(); w < 2 {
		t.Errorf("first lease revoked to %d, floor is 2", w)
	}
	// Third caller: 2+2 lanes held, floor 2 > 0 free — must queue until
	// its deadline.
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	if _, err := e.Acquire(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("third Acquire on a saturated pool: err = %v, want DeadlineExceeded", err)
	}
	l1.Release()
	l3, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	if l3.Granted() < 2 {
		t.Errorf("post-release lease granted %d, floor is 2", l3.Granted())
	}
	l2.Release()
	l3.Release()
}

// TestAcquirePreCancelled: a dead context never admits.
func TestAcquirePreCancelled(t *testing.T) {
	e := NewElastic(2)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := e.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if e.InUse() != 0 {
		t.Errorf("InUse = %d after failed Acquire", e.InUse())
	}
}

// TestElasticSoak is the race/soak test of the elastic pool: concurrent
// leases acquiring, sweeping, shrinking under competition, being
// cancelled and released, with invariant checks (every index exactly
// once per sweep, InUse <= Cap) and a goroutine-leak check at the end.
// Run under -race in CI.
func TestElasticSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	const capacity = 4
	e := NewElastic(capacity)
	callers := 8
	rounds := 30
	if testing.Short() {
		callers, rounds = 4, 10
	}

	// Invariant prober: InUse must never exceed capacity.
	probeStop := make(chan struct{})
	var probeBad atomic.Int32
	go func() {
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			if in := e.InUse(); in < 0 || in > capacity {
				probeBad.Add(1)
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, callers*rounds)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithCancel(bg)
				want := 1 + rng.Intn(capacity)
				l, err := e.Acquire(ctx, want)
				if err != nil {
					cancel()
					errc <- err
					return
				}
				n := 512 + rng.Intn(2048)
				counts := make([]atomic.Int32, n)
				if rng.Intn(4) == 0 {
					// Cancel mid-sweep sometimes.
					go func() {
						runtime.Gosched()
						cancel()
					}()
				}
				err = l.ForRange(ctx, 0, n, func(_, i int) {
					counts[i].Add(1)
					if i%64 == 0 {
						runtime.Gosched()
					}
				})
				if err == nil {
					for i := range counts {
						if counts[i].Load() != 1 {
							errc <- errors.New("index ran wrong number of times in completed sweep")
							break
						}
					}
				} else if !errors.Is(err, context.Canceled) {
					errc <- err
				}
				l.Release()
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	close(probeStop)
	if probeBad.Load() != 0 {
		t.Errorf("InUse left [0, %d] %d times during soak", capacity, probeBad.Load())
	}
	if in := e.InUse(); in != 0 {
		t.Errorf("InUse = %d after every lease released", in)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before soak, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNarrowLeaseClaimsOnlyItsWant: allocation is want-weighted
// water-filling, not an equal split — a width-1 claimant (a plan
// build) revokes a running width-8 evaluation by exactly one lane, and
// division remainders go to the wide claimants instead of idling.
func TestNarrowLeaseClaimsOnlyItsWant(t *testing.T) {
	e := NewElastic(8)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	build := acquireWhileSweeping(t, e, l1, 1)
	if build.Granted() != 1 {
		t.Errorf("width-1 claimant granted %d lanes", build.Granted())
	}
	if err := l1.ForRange(bg, 0, 256, func(_, _ int) {}); err != nil {
		t.Fatal(err)
	}
	if w := l1.Width(); w != 7 {
		t.Errorf("wide lease settled at %d next to a width-1 build, want 7 (8 - 1, not an equal 4/4 split)", w)
	}
	build.Release()
	// Remainders flow instead of flooring: three full-width leases on 8
	// lanes must settle to 2+3+3, not 2+2+2 with two lanes idle.
	l2 := acquireWhileSweeping(t, e, l1, 0)
	l3 := acquireWhileSweeping(t, e, l1, 0)
	widths := []int{0, 0, 0}
	settle := func() {
		for i, l := range []*Lease{l1, l2, l3} {
			if err := l.ForRange(bg, 0, 256, func(_, _ int) {}); err != nil {
				t.Fatal(err)
			}
			widths[i] = l.Width()
		}
	}
	settle()
	settle() // second pass: lanes shed by one lease get reclaimed by another
	total := widths[0] + widths[1] + widths[2]
	if total != 8 {
		t.Errorf("three full-width leases settled at %v (total %d), want the full 8 lanes allocated", widths, total)
	}
	for i, w := range widths {
		if w < 2 {
			t.Errorf("lease %d settled at %d, want >= 2", i, w)
		}
	}
	l1.Release()
	l2.Release()
	l3.Release()
	if e.InUse() != 0 {
		t.Errorf("InUse = %d after releases", e.InUse())
	}
}

// TestSyncReturnsRevokedLanesWithoutSweep: a lease held over caller
// work (no ForRange running) returns lanes revoked toward a waiter as
// soon as it Syncs — the escape hatch for long-held embedder leases.
func TestSyncReturnsRevokedLanesWithoutSweep(t *testing.T) {
	e := NewElastic(4)
	l1, err := e.Acquire(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *Lease, 1)
	go func() {
		l2, err := e.Acquire(bg, 2)
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- l2
	}()
	// The waiter revokes l1's target; without a sweep, only Sync can
	// hand the lanes back.
	deadline := time.Now().Add(5 * time.Second)
	for l1.Width() == 4 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never revoked the idle lease")
		}
		time.Sleep(time.Millisecond)
	}
	if w := l1.Sync(); w > 2 {
		t.Errorf("Sync settled at width %d, want <= 2", w)
	}
	select {
	case l2 := <-admitted:
		if l2.Granted() < 1 {
			t.Errorf("waiter granted %d lanes", l2.Granted())
		}
		l2.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not admitted after Sync returned the lanes")
	}
	l1.Release()
	if e.InUse() != 0 {
		t.Errorf("InUse = %d after releases", e.InUse())
	}
}

// TestReleaseIdempotent: double release must not corrupt lane
// accounting.
func TestReleaseIdempotent(t *testing.T) {
	e := NewElastic(3)
	l, _ := e.Acquire(bg, 2)
	l.Release()
	l.Release()
	if e.InUse() != 0 {
		t.Errorf("InUse = %d", e.InUse())
	}
	if l2, err := e.Acquire(bg, 3); err != nil || l2.Granted() != 3 {
		t.Errorf("pool unusable after double release: %v, granted %d", err, l2.Granted())
	}
}

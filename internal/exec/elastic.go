package exec

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Elastic is a process-wide pool of worker lanes shared by every
// concurrently running evaluation. Where the old fixed-width Pool split
// parallelism statically (N concurrent calls x M goroutines each,
// decided at plan time), an Elastic sizes each call at runtime:
// Acquire hands out a Lease whose width depends on current load — a
// lone caller on an idle pool gets up to the full capacity, while under
// saturation every caller degrades toward the configured per-lease
// minimum (default 1).
//
// Leases are elastic in both directions while they run:
//
//   - When a new caller arrives, the pool lowers the target width of
//     running leases toward the new fair share; their in-flight ForRange
//     sweeps notice at the next chunk-claim boundary, the excess workers
//     retire, and the freed lanes admit the newcomer. A long evaluation
//     therefore shrinks as traffic arrives instead of hogging the
//     machine.
//   - When load drains, a lease grows back toward its ceiling — at its
//     next ForRange dispatch (pass boundary), and mid-sweep too: worker 0
//     re-polls the pool at its chunk-claim boundaries, claims freed
//     lanes and spawns workers for them, so a long pass admitted narrow
//     on a busy pool fans back out as soon as the pool drains instead
//     of crawling to the pass barrier first.
//
// Lane accounting is what Acquire admission-controls: the sum of lanes
// held by live leases never exceeds the capacity, and a caller that
// cannot get its minimum width queues (honoring ctx) until running
// sweeps shed lanes. Do not acquire a second lease while holding one —
// under saturation that deadlocks the same way nested locks do.
//
// Width never changes what a sweep computes: ForRange hands out worker
// ids only to index per-lease scratch, every index runs exactly once,
// and callers keep per-index accumulation order fixed, so results are
// bitwise identical across every grant width and across mid-sweep
// shrinks.
type Elastic struct {
	capacity int

	mu      sync.Mutex
	min     int // admission floor per lease (SetMinGrant)
	held    int // Σ lanes currently charged to live leases
	leases  map[*Lease]struct{}
	waiters map[*Lease]struct{} // Acquire callers queued for their floor
	// changed is closed and replaced whenever lanes free up or targets
	// drop; Acquire waiters select on it alongside their ctx.
	changed chan struct{}

	grantedLanes  int64 // Σ admission grants (lanes), for metrics
	grantedLeases int64 // number of admissions
	nextSeq       int64 // arrival order, the allocation tie-break

	// acquireObs, when set, is invoked after every successful admission
	// with how long the caller queued and the width it was granted.
	acquireObs func(wait time.Duration, granted int)
}

// NewElastic returns an elastic pool with the given lane capacity;
// maxWorkers <= 0 selects runtime.GOMAXPROCS(0). The per-lease
// admission minimum starts at 1.
func NewElastic(maxWorkers int) *Elastic {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	return &Elastic{
		capacity: maxWorkers,
		min:      1,
		leases:   make(map[*Lease]struct{}),
		waiters:  make(map[*Lease]struct{}),
		changed:  make(chan struct{}),
	}
}

// SetMinGrant sets the per-lease admission floor: Acquire blocks until
// it can grant at least min lanes (clamped to [1, capacity] and to the
// caller's own want), and running leases are never revoked below it.
// Raising it trades queueing for per-call latency. Call before the pool
// is busy; in-flight leases keep the floor they were admitted with.
func (e *Elastic) SetMinGrant(min int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if min < 1 {
		min = 1
	}
	if min > e.capacity {
		min = e.capacity
	}
	e.min = min
}

// Cap returns the pool's lane capacity.
func (e *Elastic) Cap() int { return e.capacity }

// SetAcquireObserver installs a callback run after each successful
// Acquire with the admission wait time and granted width — the hook the
// service's lease-wait histogram hangs off. The callback runs outside
// the pool lock on the acquiring goroutine and must be cheap and
// non-blocking; pass nil to remove it.
func (e *Elastic) SetAcquireObserver(fn func(wait time.Duration, granted int)) {
	e.mu.Lock()
	e.acquireObs = fn
	e.mu.Unlock()
}

// InUse returns the number of lanes currently held by live leases
// (the lanes_in_use gauge; never exceeds Cap).
func (e *Elastic) InUse() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.held
}

// GrantedLanes returns the total number of lanes handed out at
// admission across all Acquire calls (mid-run regrowth not counted).
func (e *Elastic) GrantedLanes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.grantedLanes
}

// GrantedLeases returns the number of leases admitted.
func (e *Elastic) GrantedLeases() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.grantedLeases
}

// notifyLocked wakes every Acquire waiter to re-examine pool state.
func (e *Elastic) notifyLocked() {
	close(e.changed)
	e.changed = make(chan struct{})
}

// Lease is one caller's claim on pool lanes, from Acquire until
// Release. A Lease is used by a single evaluation at a time: ForRange
// calls must not overlap (the FMM's passes are sequential), though they
// may come from different goroutines in sequence.
type Lease struct {
	e       *Elastic
	want    int   // width ceiling (clamped to capacity)
	min     int   // revocation/admission floor: min(pool min, want)
	seq     int64 // arrival order; ties in want allocate oldest-first
	granted int   // width at admission, for metrics

	held int // lanes charged to this lease; guarded by e.mu
	// target is the width the current (or next) sweep may use; always
	// <= held while a sweep runs. The pool lowers it to revoke lanes;
	// workers observe it between chunk claims.
	target   atomic.Int32
	released bool // guarded by e.mu
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Acquire admits one evaluation, returning a lease sized by current
// load: up to want lanes (want <= 0 means the full capacity) on an idle
// pool, degrading toward the admission floor as concurrent leases pile
// up. When fewer than the floor are free it first revokes running
// leases toward the new fair share, then blocks — honoring ctx — until
// their sweeps shed enough lanes. The returned lease must be Released.
func (e *Elastic) Acquire(ctx context.Context, want int) (*Lease, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now() //lint:allow determinism lease-wait timing feeds the acquire observer, not numerics
	e.mu.Lock()
	if want <= 0 || want > e.capacity {
		want = e.capacity
	}
	min := e.min
	if min > want {
		min = want
	}
	e.nextSeq++
	l := &Lease{e: e, want: want, min: min, seq: e.nextSeq}
	queued := false
	for {
		// Allocate fairly with this caller counted; revoke running
		// leases toward their shares so lanes start flowing back even
		// while we wait.
		alloc := e.allocsLocked(l, queued)
		for o := range e.leases {
			o.lowerTargetLocked(alloc[o])
		}
		if free := e.capacity - e.held; free >= min {
			grant := clamp(alloc[l], min, want)
			if grant > free {
				grant = free
			}
			l.held = grant
			l.granted = grant
			l.target.Store(int32(grant))
			e.held += grant
			e.leases[l] = struct{}{}
			e.grantedLanes += int64(grant)
			e.grantedLeases++
			if queued {
				delete(e.waiters, l)
			}
			obs := e.acquireObs
			e.mu.Unlock()
			if obs != nil {
				obs(time.Since(start), grant)
			}
			return l, nil
		}
		if !queued {
			// Queued waiters count toward everyone's allocation, so
			// running leases keep shrinking (and stay shrunk across
			// their pass boundaries) until we are admitted.
			queued = true
			e.waiters[l] = struct{}{}
		}
		ch := e.changed
		e.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			e.mu.Lock()
			delete(e.waiters, l)
			e.mu.Unlock()
			return nil, ctx.Err()
		}
		e.mu.Lock()
	}
}

// allocsLocked water-fills the capacity over every current claimant —
// live leases, queued waiters, plus the extra prospective one unless it
// is already queued. Claimants are served smallest want first, each
// taking at most an equal split of what remains and never more than its
// want, so a width-1 plan build claims one lane (not a full 1/n share)
// and division remainders flow to the wider claimants instead of
// sitting idle. Over-subscription (more claimants than lanes) floors
// later shares at 0; callers clamp to each lease's own admission floor.
func (e *Elastic) allocsLocked(extra *Lease, queued bool) map[*Lease]int {
	claimants := make([]*Lease, 0, len(e.leases)+len(e.waiters)+1)
	for o := range e.leases {
		claimants = append(claimants, o) //lint:allow determinism claimants are totally ordered by (want, arrival) just below
	}
	for o := range e.waiters {
		claimants = append(claimants, o) //lint:allow determinism claimants are totally ordered by (want, arrival) just below
	}
	if extra != nil && !queued {
		claimants = append(claimants, extra)
	}
	// Deterministic order: smallest want first (they cap their own
	// share, leaving more for the wide ones), arrival order breaking
	// ties — so repeated allocations agree and the split converges.
	sort.Slice(claimants, func(i, j int) bool {
		if claimants[i].want != claimants[j].want {
			return claimants[i].want < claimants[j].want
		}
		return claimants[i].seq < claimants[j].seq
	})
	alloc := make(map[*Lease]int, len(claimants))
	remaining := e.capacity
	for i, o := range claimants {
		share := remaining / (len(claimants) - i)
		if share > o.want {
			share = o.want
		}
		alloc[o] = share
		remaining -= share
	}
	return alloc
}

// lowerTargetLocked revokes this lease's width down to its allocation,
// clamped to its own floor and ceiling. Lanes actually return when the
// running sweep's excess workers hit their next chunk-claim boundary
// (or at the next ForRange dispatch if no sweep is running).
func (l *Lease) lowerTargetLocked(share int) {
	t := clamp(share, l.min, l.want)
	if cur := int(l.target.Load()); t < cur {
		l.target.Store(int32(t))
	}
}

// dropLane returns one lane to the pool; called by a worker retiring at
// a chunk-claim boundary after its lane was revoked.
func (l *Lease) dropLane() {
	e := l.e
	e.mu.Lock()
	l.held--
	e.held--
	e.notifyLocked()
	e.mu.Unlock()
}

// resize settles the lease's width at a ForRange dispatch (no workers
// running): lanes revoked between passes are returned immediately, and
// on a drained pool the lease grows back toward its fair share — which
// on an idle pool is its full ceiling. Returns the width to run with.
func (l *Lease) resize() int {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if l.released {
		return 1
	}
	t := clamp(e.allocsLocked(nil, false)[l], l.min, l.want)
	switch {
	case t < l.held:
		e.held -= l.held - t
		l.held = t
		e.notifyLocked()
	case t > l.held:
		if extra := t - l.held; extra > 0 {
			if free := e.capacity - e.held; extra > free {
				extra = free
			}
			l.held += extra
			e.held += extra
		}
	}
	l.target.Store(int32(l.held))
	return l.held
}

// tryGrow re-expands a running sweep at a chunk-claim boundary: when
// every earlier revocation has settled (target == held — a revoked
// worker returns its lane before retiring, so equality means none are
// in flight) and the pool's current allocation grants this lease more
// than it holds, the free lanes are claimed and the target raised.
// Returns how many new worker goroutines the sweep should start.
func (l *Lease) tryGrow() int {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if l.released || int(l.target.Load()) != l.held {
		return 0
	}
	t := clamp(e.allocsLocked(nil, false)[l], l.min, l.want)
	extra := t - l.held
	if free := e.capacity - e.held; extra > free {
		extra = free
	}
	if extra <= 0 {
		return 0
	}
	l.held += extra
	e.held += extra
	l.target.Store(int32(l.held))
	return extra
}

// shrinkTo returns the lanes beyond width w to the pool at dispatch: a
// sweep over fewer items than the lease's width cannot use them, and a
// queued competitor can. The next dispatch's resize reclaims them if
// they are still free.
func (l *Lease) shrinkTo(w int) int {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if l.released {
		return 1
	}
	if l.held > w {
		e.held -= l.held - w
		l.held = w
		l.target.Store(int32(w))
		e.notifyLocked()
	}
	return l.held
}

// Sync settles the lease against current pool load outside a sweep:
// lanes revoked since the last dispatch are returned immediately, and
// on a drained pool the lease grows back toward its fair share.
// ForRange does this at every dispatch — Sync is for leases held over
// long stretches of caller-side work with no sweep running, which
// would otherwise sit on revoked lanes until Release. Returns the
// settled width. Must not be called while a ForRange is in flight.
func (l *Lease) Sync() int { return l.resize() }

// Granted returns the width this lease was admitted with (the quantity
// the per-request width histogram records).
func (l *Lease) Granted() int { return l.granted }

// Width returns the width the current or next sweep may use. It shrinks
// when the pool revokes lanes and grows back at pass boundaries.
func (l *Lease) Width() int { return int(l.target.Load()) }

// MaxWidth returns the widest this lease can ever run (its clamped
// ceiling) — the bound callers size per-worker scratch off.
func (l *Lease) MaxWidth() int { return l.want }

// Release returns every lane to the pool and retires the lease.
// Idempotent. Must not be called while a ForRange is in flight.
func (l *Lease) Release() {
	e := l.e
	e.mu.Lock()
	if l.released {
		e.mu.Unlock()
		return
	}
	l.released = true
	e.held -= l.held
	l.held = 0
	l.target.Store(0)
	delete(e.leases, l)
	e.notifyLocked()
	e.mu.Unlock()
}

// ForRange invokes fn(worker, i) for every i in [lo, hi) under the
// lease, distributing indices dynamically (atomic chunk claiming) over
// the lease's current width and returning after every started
// invocation completed — a barrier. Worker ids stay in [0, MaxWidth()).
//
// Elasticity, both directions, at chunk-claim boundaries:
//
//   - Shrink: each worker re-checks the lease's target between chunk
//     claims — a worker whose lane was revoked finishes its current
//     chunk, returns the lane to the pool and retires, so a concurrent
//     Acquire is admitted within one chunk of work. Worker 0 is never
//     revoked; a sweep always completes.
//   - Grow: worker 0 re-polls the pool between its chunk claims; when
//     competitors have drained and the allocation has room, it claims
//     the freed lanes and spawns a worker goroutine per lane — a sweep
//     admitted at width 1 under saturation re-expands mid-pass the
//     moment the pool goes idle. Revoked-and-regrown lanes reuse the
//     smallest retired worker ids, so live ids always form the prefix
//     {0..width-1} and per-worker scratch (sized MaxWidth) never
//     collides.
//
// Width changes never change results: worker ids only index scratch,
// every index runs exactly once, and per-index accumulation order is
// the caller's own, so outputs are bitwise identical across every
// {shrink, regrow} schedule.
//
// ctx is checked at dispatch and between chunk claims; on cancellation
// the sweep stops claiming, the barrier drains, and ForRange returns
// ctx.Err() with the range only partially processed. A panic in fn is
// re-raised on the calling goroutine after the barrier.
func (l *Lease) ForRange(ctx context.Context, lo, hi int, fn func(worker, i int)) error {
	n := hi - lo
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := l.resize()
	if w > n {
		// More lanes than items: hand the unusable ones back rather
		// than sitting on them for the whole pass.
		w = l.shrinkTo(n)
	}
	// Grain by the lease's ceiling, not the momentary width: a shrunk
	// sweep keeps fine chunks, which is exactly when frequent boundaries
	// matter (regrowth polls and revocation checks ride on them). At
	// full width this matches the historical n/(w*8).
	maxW := l.want
	if maxW > n {
		maxW = n
	}
	grain := grainFor(n, maxW)
	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	done := ctx.Done()

	// Retired worker ids, reused smallest-first by regrowth so live ids
	// stay the contiguous prefix {0..target-1} (the revocation check
	// retires exactly the ids >= target).
	var idmu sync.Mutex
	var freeIDs []int
	nextID := w

	var runWorker func(wk int)
	spawn := func(k int) {
		for ; k > 0; k-- {
			idmu.Lock()
			var id int
			if len(freeIDs) > 0 {
				min := 0
				for i := 1; i < len(freeIDs); i++ {
					if freeIDs[i] < freeIDs[min] {
						min = i
					}
				}
				id = freeIDs[min]
				freeIDs[min] = freeIDs[len(freeIDs)-1]
				freeIDs = freeIDs[:len(freeIDs)-1]
			} else {
				id = nextID
				nextID++
			}
			idmu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicOnce.Do(func() { panicked = r })
					}
				}()
				runWorker(id)
			}()
		}
	}
	runWorker = func(wk int) {
		for {
			select {
			case <-done:
				return
			default:
			}
			if wk > 0 && wk >= int(l.target.Load()) {
				// Revoked: record the id before returning the lane, so
				// once held settles every retired id is reusable.
				idmu.Lock()
				freeIDs = append(freeIDs, wk)
				idmu.Unlock()
				l.dropLane()
				return
			}
			if wk == 0 {
				// Only worker 0 polls for growth (it is never revoked,
				// and one poller bounds the lock traffic). Skip when too
				// little work remains for new lanes to help.
				if int64(n)-next.Load() > int64(grain) {
					if extra := l.tryGrow(); extra > 0 {
						spawn(extra)
					}
				}
			}
			clo := next.Add(int64(grain)) - int64(grain)
			if clo >= int64(n) {
				return
			}
			chi := clo + int64(grain)
			if chi > int64(n) {
				chi = int64(n)
			}
			for i := lo + int(clo); i < lo+int(chi); i++ {
				fn(wk, i)
			}
		}
	}

	// Workers 1..w-1 are goroutines; worker 0 runs inline on the caller
	// (a width-1 sweep pays no goroutine at all until it grows).
	for wk := 1; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			runWorker(wk)
		}(wk)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
			}
		}()
		runWorker(0)
	}()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}

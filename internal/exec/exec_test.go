package exec

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := New(w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Errorf("New(%d).Workers() = %d, want GOMAXPROCS", w, got)
		}
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d", got)
	}
}

// TestForRangeCoversEveryIndex: each index in [lo, hi) runs exactly once,
// for pool widths below, at and above the range size.
func TestForRangeCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		p := New(workers)
		for _, span := range [][2]int{{0, 0}, {3, 3}, {0, 1}, {2, 7}, {0, 1000}} {
			lo, hi := span[0], span[1]
			counts := make([]atomic.Int32, hi+1)
			p.ForRange(lo, hi, func(_, i int) {
				if i < lo || i >= hi {
					t.Errorf("index %d outside [%d, %d)", i, lo, hi)
					return
				}
				counts[i].Add(1)
			})
			for i := lo; i < hi; i++ {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d range=[%d,%d): index %d ran %d times", workers, lo, hi, i, c)
				}
			}
		}
	}
}

// TestForRangeWorkerIDs: worker ids stay in [0, Workers()) so they can
// index per-worker scratch.
func TestForRangeWorkerIDs(t *testing.T) {
	p := New(4)
	var bad atomic.Int32
	p.ForRange(0, 500, func(w, _ int) {
		if w < 0 || w >= p.Workers() {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d invocations saw an out-of-range worker id", bad.Load())
	}
}

// TestForRangeBarrier: ForRange must not return before every invocation
// finished (per-worker sums merged after the call must account for all
// indices).
func TestForRangeBarrier(t *testing.T) {
	p := New(8)
	sums := make([]int64, p.Workers())
	const n = 4096
	p.ForRange(0, n, func(w, i int) { sums[w] += int64(i) })
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n) * (n - 1) / 2; total != want {
		t.Errorf("per-worker sums total %d, want %d", total, want)
	}
}

// TestForRangePanicPropagates: a panic on a worker goroutine resurfaces
// on the calling goroutine where recover works.
func TestForRangePanicPropagates(t *testing.T) {
	p := New(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want \"boom\"", r)
		}
	}()
	p.ForRange(0, 100, func(_, i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Error("ForRange returned instead of panicking")
}

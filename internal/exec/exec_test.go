package exec

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// leaseOf returns a lease of exactly w lanes on a fresh, otherwise idle
// pool of capacity w (an idle pool grants the full want).
func leaseOf(t testing.TB, w int) *Lease {
	t.Helper()
	l, err := NewElastic(w).Acquire(context.Background(), w)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.Granted() != w {
		t.Fatalf("idle pool granted %d lanes, want %d", l.Granted(), w)
	}
	return l
}

func TestNewElasticDefaultsToGOMAXPROCS(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := NewElastic(w).Cap(); got != runtime.GOMAXPROCS(0) {
			t.Errorf("NewElastic(%d).Cap() = %d, want GOMAXPROCS", w, got)
		}
	}
	if got := NewElastic(5).Cap(); got != 5 {
		t.Errorf("NewElastic(5).Cap() = %d", got)
	}
}

// TestForRangeCoversEveryIndex: each index in [lo, hi) runs exactly once,
// for lease widths below, at and above the range size.
func TestForRangeCoversEveryIndex(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 32} {
		l := leaseOf(t, workers)
		for _, span := range [][2]int{{0, 0}, {3, 3}, {0, 1}, {2, 7}, {0, 1000}} {
			lo, hi := span[0], span[1]
			counts := make([]atomic.Int32, hi+1)
			if err := l.ForRange(ctx, lo, hi, func(_, i int) {
				if i < lo || i >= hi {
					t.Errorf("index %d outside [%d, %d)", i, lo, hi)
					return
				}
				counts[i].Add(1)
			}); err != nil {
				t.Fatalf("ForRange: %v", err)
			}
			for i := lo; i < hi; i++ {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d range=[%d,%d): index %d ran %d times", workers, lo, hi, i, c)
				}
			}
		}
		l.Release()
	}
}

// TestForRangeWorkerIDs: worker ids stay in [0, MaxWidth()) so they can
// index per-worker scratch.
func TestForRangeWorkerIDs(t *testing.T) {
	l := leaseOf(t, 4)
	defer l.Release()
	var bad atomic.Int32
	_ = l.ForRange(context.Background(), 0, 500, func(w, _ int) {
		if w < 0 || w >= l.MaxWidth() {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d invocations saw an out-of-range worker id", bad.Load())
	}
}

// TestForRangeBarrier: ForRange must not return before every invocation
// finished (per-worker sums merged after the call must account for all
// indices).
func TestForRangeBarrier(t *testing.T) {
	l := leaseOf(t, 8)
	defer l.Release()
	sums := make([]int64, l.MaxWidth())
	const n = 4096
	if err := l.ForRange(context.Background(), 0, n, func(w, i int) { sums[w] += int64(i) }); err != nil {
		t.Fatalf("ForRange: %v", err)
	}
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n) * (n - 1) / 2; total != want {
		t.Errorf("per-worker sums total %d, want %d", total, want)
	}
}

// TestForRangePanicPropagates: a panic on a worker goroutine resurfaces
// on the calling goroutine where recover works.
func TestForRangePanicPropagates(t *testing.T) {
	l := leaseOf(t, 4)
	defer l.Release()
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want \"boom\"", r)
		}
	}()
	_ = l.ForRange(context.Background(), 0, 100, func(_, i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Error("ForRange returned instead of panicking")
}

// spin burns a short, scheduler-visible amount of CPU so a cancelled
// sweep demonstrably stops early without relying on timer granularity.
func spin() {
	for i := 0; i < 50; i++ {
		runtime.Gosched()
	}
}

// TestForRangePreCancelled: a context cancelled before dispatch means no
// invocation runs at all.
func TestForRangePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		l := leaseOf(t, workers)
		var ran atomic.Int32
		err := l.ForRange(ctx, 0, 1000, func(_, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d invocations ran after pre-cancel", workers, ran.Load())
		}
		l.Release()
	}
}

// TestForRangeCancelMidSweep: cancelling while a sweep is running stops
// further chunk claims — the sweep returns early with ctx.Err() and
// without processing the whole range, on both the sequential and the
// parallel path.
func TestForRangeCancelMidSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		l := leaseOf(t, workers)
		const n = 3200
		var ran atomic.Int64
		err := l.ForRange(ctx, 0, n, func(_, i int) {
			if ran.Add(1) == 64 {
				cancel()
			}
			spin()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got == n {
			t.Errorf("workers=%d: sweep ran all %d indices despite cancellation", workers, got)
		}
		cancel()
		l.Release()
	}
}

// TestForRangeCancelLeavesNoWorkers: after a cancelled parallel sweep
// returns, its worker goroutines are gone (the barrier drained them).
func TestForRangeCancelLeavesNoWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		l := leaseOf(t, 8)
		var ran atomic.Int64
		_ = l.ForRange(ctx, 0, 1<<14, func(_, _ int) {
			if ran.Add(1) == 10 {
				cancel()
			}
			spin()
		})
		cancel()
		l.Release()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled sweeps", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

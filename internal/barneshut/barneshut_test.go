package barneshut

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/direct"
	"repro/internal/geom"
	"repro/internal/kernels"
)

func relErr(got, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range got {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestTreecodeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := geom.Flatten(geom.UniformCube(rng, 1500))
	den := geom.RandomDensities(rng, 1500, 1)
	want, err := direct.Evaluate(kernels.Laplace{}, pts, pts, den)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(pts, Options{Kernel: kernels.Laplace{}, Theta: 0.6, Degree: 6, MaxPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(got, want); e > 2e-3 {
		t.Errorf("treecode error %v", e)
	}
}

func TestThetaControlsAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := geom.Flatten(geom.UniformCube(rng, 1200))
	den := geom.RandomDensities(rng, 1200, 1)
	want, _ := direct.Evaluate(kernels.Laplace{}, pts, pts, den)
	var errs []float64
	for _, theta := range []float64{1.2, 0.6, 0.3} {
		ev, err := New(pts, Options{Kernel: kernels.Laplace{}, Theta: theta, Degree: 6, MaxPoints: 30})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Evaluate(den)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, relErr(got, want))
	}
	if !(errs[0] >= errs[1] && errs[1] >= errs[2]) {
		t.Errorf("error must not grow as theta shrinks: %v", errs)
	}
}

func TestTreecodeTensorKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := geom.Flatten(geom.CornerClusters(rng, 900, 0.35, 1))
	den := geom.RandomDensities(rng, 900, 3)
	want, _ := direct.Evaluate(kernels.NewStokes(1), pts, pts, den)
	ev, err := New(pts, Options{Kernel: kernels.NewStokes(1), Theta: 0.5, Degree: 6, MaxPoints: 25})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(got, want); e > 2e-3 {
		t.Errorf("Stokes treecode error %v", e)
	}
}

func TestSmallInputFallsBackToDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := geom.Flatten(geom.UniformCube(rng, 40))
	den := geom.RandomDensities(rng, 40, 1)
	ev, err := New(pts, Options{Kernel: kernels.Laplace{}, MaxPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Evaluate(den)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := direct.Evaluate(kernels.Laplace{}, pts, pts, den)
	if e := relErr(got, want); e > 1e-12 {
		t.Errorf("root-leaf treecode must be exact: %v", e)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("missing kernel must error")
	}
	if _, err := New(nil, Options{Kernel: kernels.Laplace{}, Theta: -1}); err == nil {
		t.Error("negative theta must error")
	}
	ev, err := New([]float64{0, 0, 0}, Options{Kernel: kernels.Laplace{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Evaluate([]float64{1, 2}); err == nil {
		t.Error("wrong density length must error")
	}
}

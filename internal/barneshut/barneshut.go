// Package barneshut implements a Barnes-Hut treecode baseline. The
// paper's related-work section cites the FMM-vs-Barnes-Hut comparison of
// Blelloch & Narlikar [3] with the conclusion that "for higher
// accuracies, FMM is the fastest method"; this package provides the
// comparator so the repository can reproduce that observation (see
// BenchmarkTreecodeComparison at the repo root).
//
// The treecode generalizes kernel-independently the same way the FMM
// does: instead of a truncated multipole series, each box carries an
// upward equivalent density (built with the same S2M/M2M operators as
// the FMM), and a target accepts a box when the standard opening
// criterion width/distance < theta holds. There is no downward pass and
// no local expansions — the O(N log N) vs O(N) distinction against the
// FMM is structural, exactly as in the classical comparison.
package barneshut

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/translate"
	"repro/internal/tree"
)

// Options configure a treecode evaluator.
type Options struct {
	// Kernel is required.
	Kernel kernels.Kernel
	// Theta is the opening-angle parameter (default 0.5; smaller is more
	// accurate and slower).
	Theta float64
	// Degree is the equivalent-surface degree p (default 6); it controls
	// the per-acceptance accuracy just as in the FMM.
	Degree int
	// MaxPoints is the leaf threshold s (default 60).
	MaxPoints int
	// PinvTol is the pseudo-inverse truncation (default 1e-10).
	PinvTol float64
}

// Evaluator is a prepared Barnes-Hut treecode over fixed points.
type Evaluator struct {
	tree *tree.Tree
	ops  *translate.Set
	opt  Options
}

// New builds the octree over the points (sources and targets are the
// same set, the usual treecode situation).
func New(pts []float64, opt Options) (*Evaluator, error) {
	if opt.Kernel == nil {
		return nil, fmt.Errorf("barneshut: Options.Kernel is required")
	}
	if opt.Theta == 0 {
		opt.Theta = 0.5
	}
	if opt.Theta < 0 {
		return nil, fmt.Errorf("barneshut: Theta must be positive")
	}
	if opt.Degree == 0 {
		opt.Degree = 6
	}
	if opt.MaxPoints == 0 {
		opt.MaxPoints = 60
	}
	if opt.PinvTol == 0 {
		opt.PinvTol = 1e-10
	}
	tr, err := tree.Build(pts, pts, tree.Config{MaxPoints: opt.MaxPoints})
	if err != nil {
		return nil, err
	}
	ops, err := translate.NewSet(opt.Kernel, opt.Degree, tr.HalfWidth, opt.PinvTol)
	if err != nil {
		return nil, err
	}
	return &Evaluator{tree: tr, ops: ops, opt: opt}, nil
}

// Evaluate computes the potentials for den (input order in, input order
// out), walking the tree per target with the theta criterion.
func (e *Evaluator) Evaluate(den []float64) ([]float64, error) {
	k := e.opt.Kernel
	sd, td := k.SourceDim(), k.TargetDim()
	t := e.tree
	n := len(t.SrcPoints) / 3
	if len(den) != n*sd {
		return nil, fmt.Errorf("barneshut: density length %d, want %d", len(den), n*sd)
	}
	// Permute densities into Morton order.
	pden := make([]float64, len(den))
	for i, orig := range t.SrcPerm {
		copy(pden[i*sd:(i+1)*sd], den[int(orig)*sd:(int(orig)+1)*sd])
	}
	phiU := e.upward(pden)
	ppot := make([]float64, n*td)
	// Per-leaf walks: all targets in a leaf share the acceptance set, so
	// walk once per leaf (the standard blocked treecode optimization).
	surf := make([]float64, 3*e.ops.Surf.N)
	for _, li := range t.Leaves() {
		lb := &t.Boxes[li]
		if lb.TrgCount == 0 {
			continue
		}
		trg := t.TrgSlice(li)
		pot := ppot[lb.TrgStart*td : (lb.TrgStart+lb.TrgCount)*td]
		e.walk(0, li, trg, pot, pden, phiU, surf)
	}
	pot := make([]float64, len(ppot))
	for i, orig := range t.TrgPerm {
		copy(pot[int(orig)*td:(int(orig)+1)*td], ppot[i*td:(i+1)*td])
	}
	return pot, nil
}

// upward builds upward equivalent densities exactly as the FMM does.
func (e *Evaluator) upward(pden []float64) [][]float64 {
	t := e.tree
	k := e.opt.Kernel
	sd := k.SourceDim()
	ne, nc := e.ops.EquivCount(), e.ops.CheckCount()
	phiU := make([][]float64, len(t.Boxes))
	check := make([]float64, nc)
	uc := make([]float64, 3*e.ops.Surf.N)
	for l := t.Depth() - 1; l >= 0; l-- {
		r := t.BoxHalfWidth(l)
		for bi := t.LevelStart[l]; bi < t.LevelStart[l+1]; bi++ {
			b := &t.Boxes[bi]
			if b.SrcCount == 0 {
				continue
			}
			for i := range check {
				check[i] = 0
			}
			if b.Leaf {
				e.ops.UpwardCheckPoints(t.BoxCenter(int32(bi)), r, uc)
				kernels.P2P(k, uc, t.SrcSlice(int32(bi)), pden[b.SrcStart*sd:(b.SrcStart+b.SrcCount)*sd], check)
			} else {
				for o, ci := range b.Children {
					if ci != tree.Nil && phiU[ci] != nil {
						e.ops.M2M(l, o).Apply(check, phiU[ci])
					}
				}
			}
			phi := make([]float64, ne)
			e.ops.UpwardPinv(l).Apply(phi, check)
			phiU[bi] = phi
		}
	}
	return phiU
}

// walk descends from box bi evaluating accepted boxes' equivalent
// densities (or leaf sources directly) at the targets of leaf li.
func (e *Evaluator) walk(bi, li int32, trg, pot, pden []float64, phiU [][]float64, surf []float64) {
	t := e.tree
	b := &t.Boxes[bi]
	if b.SrcCount == 0 {
		return
	}
	k := e.opt.Kernel
	if bi != li && e.accepts(bi, li) {
		// Far box: evaluate its upward equivalent density directly at
		// the targets (the treecode's "monopole" replaced by the
		// kernel-independent equivalent density).
		e.ops.UpwardEquivPoints(t.BoxCenter(bi), t.BoxHalfWidth(b.Level()), surf)
		kernels.P2P(k, trg, surf, phiU[bi], pot)
		return
	}
	if b.Leaf {
		// Near leaf (or the target leaf itself): direct interactions.
		sd := k.SourceDim()
		kernels.P2P(k, trg, t.SrcSlice(bi), pden[b.SrcStart*sd:(b.SrcStart+b.SrcCount)*sd], pot)
		return
	}
	for _, c := range b.Children {
		if c != tree.Nil {
			e.walk(c, li, trg, pot, pden, phiU, surf)
		}
	}
}

// accepts applies the opening criterion between source box bi and the
// target leaf li: the source's equivalent surface must stay well
// separated from the leaf, i.e. width/dist < theta measured between box
// centers minus both half-extents.
func (e *Evaluator) accepts(bi, li int32) bool {
	t := e.tree
	cb := t.BoxCenter(bi)
	cl := t.BoxCenter(li)
	rb := t.BoxHalfWidth(t.Boxes[bi].Level())
	rl := t.BoxHalfWidth(t.Boxes[li].Level())
	d2 := 0.0
	for i := 0; i < 3; i++ {
		d := cb[i] - cl[i]
		d2 += d * d
	}
	// Validity first: targets must lie outside the source's upward check
	// region (3x the box), or the equivalent density does not represent
	// the field there. Then the accuracy criterion width/dist < theta.
	sep2 := (3*rb + rl) * (3*rb + rl) * 3 // conservative: corner distance
	if d2 < sep2 {
		return false
	}
	w := 2 * rb
	return w*w < e.opt.Theta*e.opt.Theta*d2
}

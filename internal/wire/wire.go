// Package wire implements the repository's shared binary wire
// conventions: length-prefixed little-endian word arrays for bulk
// float64/int64/int32 data, u32/u64 scalar headers, and raw
// length-prefixed byte blobs for control-plane payloads (JSON side
// channels).
//
// Two layers speak this format: the cluster transport
// (internal/cluster) frames every worker↔coordinator and
// worker↔worker message with it, and the HTTP API
// (internal/service, content type application/x-kifmm-frame)
// transfers bulk coordinate/density/potential arrays with it so the
// hot path never touches JSON.
//
// Layout rules:
//
//   - all integers are little-endian;
//   - a word array is a u64 element count followed by the packed
//     words (8 bytes per float64/int64, 4 per int32), float64 as IEEE
//     754 bits — every bit pattern round-trips, including NaN payloads
//     and infinities;
//   - a raw blob is a u32 byte length followed by the bytes;
//   - decoders bound every length by the bytes actually remaining, so
//     a corrupt length can never trigger a large allocation, and latch
//     the first violation — callers check Err once at the end.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// MaxFrameBytes bounds a single frame (1 GiB: tens of millions of
// points of coordinate data; anything beyond is a protocol error, not
// a workload).
const MaxFrameBytes = 1 << 30

// FrameMagic opens every application/x-kifmm-frame HTTP body: "KFM1"
// as a little-endian u32. The cluster transport does not use it (frame
// types are discriminated by the connection handshake); the HTTP side
// does, so a misrouted JSON or gzip body fails fast with a clear
// error instead of a confusing length mismatch.
const FrameMagic uint32 = 0x314D464B // "KFM1"

// ErrMalformed is the uniform decode failure: a length field pointing
// past the payload, a truncated word array, or any read past the end.
// Decoders latch it on first violation; wrap it for context.
var ErrMalformed = errors.New("wire: malformed payload")

// Writer assembles a frame payload by appending primitives. The zero
// value is ready to use.
type Writer struct {
	b []byte
}

// Bytes returns the assembled payload.
func (w *Writer) Bytes() []byte { return w.b }

// Len returns the assembled payload size in bytes.
func (w *Writer) Len() int { return len(w.b) }

// Grow pre-allocates capacity for n more bytes, so a caller that knows
// the bulk size up front avoids append doublings.
func (w *Writer) Grow(n int) {
	if cap(w.b)-len(w.b) < n {
		nb := make([]byte, len(w.b), len(w.b)+n)
		copy(nb, w.b)
		w.b = nb
	}
}

// U8 appends one byte.
func (w *Writer) U8(v byte) { w.b = append(w.b, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64s appends a float64 word array: u64 count + IEEE 754 bits per
// element. Non-finite values round-trip bit-exactly.
func (w *Writer) F64s(v []float64) {
	w.U64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], math.Float64bits(x))
	}
}

// I64s appends an int64 word array: u64 count + 8 bytes per element.
func (w *Writer) I64s(v []int64) {
	w.U64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(w.b[off+8*i:], uint64(x))
	}
}

// I32s appends an int32 word array: u64 count + 4 bytes per element.
func (w *Writer) I32s(v []int32) {
	w.U64(uint64(len(v)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 4*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint32(w.b[off+4*i:], uint32(x))
	}
}

// Raw appends a length-prefixed byte blob (u32 length + bytes): the
// control-plane escape hatch for JSON headers riding inside a binary
// frame.
func (w *Writer) Raw(v []byte) {
	w.U32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// Reader decodes a frame payload. Out-of-bounds reads latch an error
// and return zero values, so decoders run straight-line and check Err
// once at the end.
type Reader struct {
	b   []byte
	off int
	bad bool
}

// NewReader returns a Reader over payload b. The Reader aliases b; it
// never copies, and word-array reads allocate exactly the decoded
// slice.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns ErrMalformed if any read ran past the payload or hit an
// invalid length, nil otherwise.
func (r *Reader) Err() error {
	if r.bad {
		return ErrMalformed
	}
	return nil
}

// Remaining returns the undecoded byte count (0 once latched bad).
func (r *Reader) Remaining() int {
	if r.bad {
		return 0
	}
	return len(r.b) - r.off
}

func (r *Reader) take(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// length reads a word-array element count and sanity-bounds it by the
// bytes remaining (elemBytes per element), so a corrupt length cannot
// trigger a huge allocation.
func (r *Reader) length(elemBytes int) int {
	n := r.U64()
	if r.bad || n > uint64(len(r.b)-r.off)/uint64(elemBytes) {
		r.bad = true
		return 0
	}
	return int(n)
}

// F64s reads a float64 word array. Bit patterns are preserved exactly
// (NaN payloads, infinities, signed zeros).
func (r *Reader) F64s() []float64 {
	n := r.length(8)
	raw := r.take(8 * n)
	if raw == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// I64s reads an int64 word array.
func (r *Reader) I64s() []int64 {
	n := r.length(8)
	raw := r.take(8 * n)
	if raw == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// I32s reads an int32 word array.
func (r *Reader) I32s() []int32 {
	n := r.length(4)
	raw := r.take(4 * n)
	if raw == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// Raw reads a length-prefixed byte blob. The returned slice aliases
// the payload; copy it if it must outlive the frame buffer.
func (r *Reader) Raw() []byte {
	n := r.U32()
	if r.bad || uint64(n) > uint64(len(r.b)-r.off) {
		r.bad = true
		return nil
	}
	return r.take(int(n))
}

package wire

import (
	"math"
	"testing"
)

// FuzzReader drives the decode path with arbitrary payloads through a
// fixed read script shaped like the real frame decoders (scalars, word
// arrays, raw blobs). Invariants under fuzzing:
//
//   - never panic (the latched-error design must absorb any input);
//   - never allocate more than the payload itself for a word array
//     (the remaining-bytes bound caps every count);
//   - reads after an error return zero values and keep Err non-nil;
//   - a payload that decodes cleanly re-encodes to the bytes consumed
//     (round-trip identity on the valid subset).
//
// The seed corpus covers well-formed frames, truncations at every
// field boundary, and adversarial length words.
func FuzzReader(f *testing.F) {
	var valid Writer
	valid.U32(FrameMagic)
	valid.Raw([]byte(`{"k":"v"}`))
	valid.F64s([]float64{1, math.Inf(1), math.NaN()})
	valid.I64s([]int64{-1, 1 << 40})
	valid.I32s([]int32{3, -3})
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(valid.Bytes()[:5])                                  // truncated inside the raw header
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])               // truncated inside the last array
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})   // 7 bytes: no full u64
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0x80, 1, 2, 3})         // count 2^63
	f.Add(append([]byte{9, 0, 0, 0, 0, 0, 0, 0}, 1, 2, 3, 4)) // count 9, 4 bytes of words

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		magic := r.U32()
		raw := r.Raw()
		fs := r.F64s()
		is := r.I64s()
		i32 := r.I32s()
		err := r.Err()

		if len(raw) > len(data) || 8*len(fs) > len(data) || 8*len(is) > len(data) || 4*len(i32) > len(data) {
			t.Fatalf("decoded more than the %d payload bytes: raw=%d f64s=%d i64s=%d i32s=%d",
				len(data), len(raw), len(fs), len(is), len(i32))
		}
		if err != nil {
			// Latched: all subsequent reads are zero-valued.
			if r.U64() != 0 || r.F64s() != nil || r.Raw() != nil {
				t.Fatal("reads after a latched error returned non-zero values")
			}
			if r.Err() != ErrMalformed {
				t.Fatalf("latched error = %v, want ErrMalformed", r.Err())
			}
			return
		}
		// Clean decode: re-encoding what was read must reproduce the
		// consumed prefix byte for byte (bit-exact for float64 words).
		var w Writer
		w.U32(magic)
		w.Raw(raw)
		w.F64s(fs)
		w.I64s(is)
		w.I32s(i32)
		consumed := data[:len(data)-r.Remaining()]
		if string(w.Bytes()) != string(consumed) {
			t.Fatalf("re-encode mismatch:\n got % x\nwant % x", w.Bytes(), consumed)
		}
	})
}

package wire

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
)

// TestGoldenFrames pins the byte-exact layout of every frame
// primitive. These fixtures are the wire contract shared by the
// cluster transport and the HTTP frame encoding: a change that breaks
// one of them breaks interoperability with every deployed node and
// client, so each expected string is spelled out by hand, not derived
// from the encoder under test.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		name  string
		build func(w *Writer)
		hex   string
	}{
		{"u8", func(w *Writer) { w.U8(0xAB) }, "ab"},
		{"u32", func(w *Writer) { w.U32(0x01020304) }, "04030201"},
		{"u64", func(w *Writer) { w.U64(0x0102030405060708) }, "0807060504030201"},
		{"i64_negative", func(w *Writer) { w.I64(-2) }, "feffffffffffffff"},
		{"f64s_empty", func(w *Writer) { w.F64s(nil) }, "0000000000000000"},
		{
			// 1.0 = 0x3FF0000000000000, -2.5 = 0xC004000000000000.
			"f64s_values",
			func(w *Writer) { w.F64s([]float64{1, -2.5}) },
			"0200000000000000" + "000000000000f03f" + "00000000000004c0",
		},
		{
			// +Inf = 0x7FF0000000000000, -Inf = 0xFFF0000000000000,
			// quiet NaN with payload 1 = 0x7FF0000000000001, -0 =
			// 0x8000000000000000: the non-finite bit patterns JSON
			// cannot carry round-trip as plain words.
			"f64s_nonfinite",
			func(w *Writer) {
				w.F64s([]float64{
					math.Inf(1), math.Inf(-1),
					math.Float64frombits(0x7FF0000000000001),
					math.Copysign(0, -1),
				})
			},
			"0400000000000000" +
				"000000000000f07f" + "000000000000f0ff" +
				"010000000000f07f" + "0000000000000080",
		},
		{"i64s", func(w *Writer) { w.I64s([]int64{1, -1}) },
			"0200000000000000" + "0100000000000000" + "ffffffffffffffff"},
		{"i32s", func(w *Writer) { w.I32s([]int32{7, -7}) },
			"0200000000000000" + "07000000" + "f9ffffff"},
		{"raw", func(w *Writer) { w.Raw([]byte("hi")) }, "020000006869"},
		{
			// A composite frame in the HTTP body shape: magic, raw JSON
			// header, one word array.
			"http_frame",
			func(w *Writer) {
				w.U32(FrameMagic)
				w.Raw([]byte(`{}`))
				w.F64s([]float64{1})
			},
			"4b464d31" + "020000007b7d" + "0100000000000000" + "000000000000f03f",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w Writer
			tc.build(&w)
			want, err := hex.DecodeString(tc.hex)
			if err != nil {
				t.Fatalf("bad fixture hex: %v", err)
			}
			if !bytes.Equal(w.Bytes(), want) {
				t.Fatalf("encoded % x, want % x", w.Bytes(), want)
			}
		})
	}
}

// TestFrameMagicSpellsKFM1: the HTTP magic must read "KFM1" in byte
// order, so a hexdump of a frame body is self-identifying.
func TestFrameMagicSpellsKFM1(t *testing.T) {
	var w Writer
	w.U32(FrameMagic)
	if got := string(w.Bytes()); got != "KFM1" {
		t.Fatalf("magic bytes %q, want \"KFM1\"", got)
	}
}

// TestRoundTrip drives every primitive through Writer and back through
// Reader, including bit-exact non-finite float64 values.
func TestRoundTrip(t *testing.T) {
	f := []float64{0, 1.5, -2.25, math.Inf(1), math.Inf(-1),
		math.NaN(), math.Float64frombits(0x7FF00000DEADBEEF), math.Copysign(0, -1)}
	i64 := []int64{0, 1, -1, math.MaxInt64, math.MinInt64}
	i32 := []int32{0, 1, -1, math.MaxInt32, math.MinInt32}
	raw := []byte(`{"control":"plane"}`)

	var w Writer
	w.U8(9)
	w.U32(FrameMagic)
	w.U64(1 << 40)
	w.I64(-5)
	w.F64s(f)
	w.I64s(i64)
	w.I32s(i32)
	w.Raw(raw)

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 9 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != FrameMagic {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -5 {
		t.Errorf("I64 = %d", got)
	}
	gf := r.F64s()
	if len(gf) != len(f) {
		t.Fatalf("F64s length %d, want %d", len(gf), len(f))
	}
	for i := range f {
		if math.Float64bits(gf[i]) != math.Float64bits(f[i]) {
			t.Errorf("F64s[%d] bits %#x, want %#x", i, math.Float64bits(gf[i]), math.Float64bits(f[i]))
		}
	}
	gi := r.I64s()
	for i := range i64 {
		if gi[i] != i64[i] {
			t.Errorf("I64s[%d] = %d, want %d", i, gi[i], i64[i])
		}
	}
	g32 := r.I32s()
	for i := range i32 {
		if g32[i] != i32[i] {
			t.Errorf("I32s[%d] = %d, want %d", i, g32[i], i32[i])
		}
	}
	if got := r.Raw(); !bytes.Equal(got, raw) {
		t.Errorf("Raw = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err after full round trip: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

// TestReaderMalformed: every truncation and oversized-length shape
// must latch ErrMalformed and return zero values, never panic or
// allocate per the corrupt length.
func TestReaderMalformed(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		read func(r *Reader)
	}{
		{"u32_truncated", []byte{1, 2}, func(r *Reader) { r.U32() }},
		{"u64_truncated", []byte{1, 2, 3}, func(r *Reader) { r.U64() }},
		{"f64s_count_truncated", []byte{1, 0, 0}, func(r *Reader) { r.F64s() }},
		{
			// Count says 2^56 elements; payload has none. The decoder
			// must reject via the remaining-bytes bound, not allocate.
			"f64s_oversized_count",
			[]byte{0, 0, 0, 0, 0, 0, 0, 1},
			func(r *Reader) {
				if out := r.F64s(); out != nil {
					t.Errorf("oversized count decoded %d elements", len(out))
				}
			},
		},
		{
			// Count 2 but only one word present.
			"f64s_short_words",
			append([]byte{2, 0, 0, 0, 0, 0, 0, 0}, make([]byte, 8)...),
			func(r *Reader) { r.F64s() },
		},
		{
			// A count whose byte size overflows int when multiplied:
			// 2^61 elements * 8 bytes = 2^64.
			"f64s_count_byte_overflow",
			[]byte{0, 0, 0, 0, 0, 0, 0, 0x20},
			func(r *Reader) { r.F64s() },
		},
		{
			"i32s_misaligned",
			append([]byte{3, 0, 0, 0, 0, 0, 0, 0}, make([]byte, 10)...),
			func(r *Reader) { r.I32s() },
		},
		{"raw_oversized", []byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'}, func(r *Reader) { r.Raw() }},
		{"raw_truncated", []byte{5, 0, 0, 0, 'x'}, func(r *Reader) { r.Raw() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(tc.b)
			tc.read(r)
			if err := r.Err(); err != ErrMalformed {
				t.Fatalf("Err = %v, want ErrMalformed", err)
			}
			// Latched: further reads stay zero and keep the error.
			if got := r.U64(); got != 0 {
				t.Errorf("read after latch = %d, want 0", got)
			}
			if r.Remaining() != 0 {
				t.Errorf("Remaining after latch = %d, want 0", r.Remaining())
			}
		})
	}
}

// TestWriterGrow: growing reserves capacity without changing content.
func TestWriterGrow(t *testing.T) {
	var w Writer
	w.U32(7)
	w.Grow(1 << 12)
	if cap(w.b)-w.Len() < 1<<12 {
		t.Fatalf("Grow reserved %d bytes, want >= %d", cap(w.b)-w.Len(), 1<<12)
	}
	r := NewReader(w.Bytes())
	if got := r.U32(); got != 7 || r.Err() != nil {
		t.Fatalf("content changed by Grow: %d, %v", got, r.Err())
	}
}

// Package surface places the equivalent and check surfaces of the
// kernel-independent FMM (paper Section 2.1, Figures 2.1 and 2.2).
//
// Both surfaces are the boundary lattices of regular cubic grids, chosen
// so that the upward-equivalent surface of a source box and the
// downward-check surface of a target box lie on one common lattice: box
// centers at the same level differ by 2r·k, and the grid spacing is
// h = 2r/(p-2), so center offsets are exact lattice multiples (p-2)·k·h.
// That alignment is what turns the M2L translation into a lattice
// convolution accelerated by FFTs.
//
// Surface roles and radii for a box of half-width r (all satisfy the
// paper's placement constraints listed at the end of Section 2):
//
//	upward equivalent (UE) and downward check (DC): half-width r·(p-1)/(p-2)
//	upward check (UC) and downward equivalent (DE): half-width r·2.75
//
// UE lies strictly between the box and the far range; UC encloses UE and
// stays strictly inside the near-range boundary 3r; the parent UE
// (half-width 2r·(p-1)/(p-2)) encloses every child UE; DE encloses DC;
// and DC surfaces are disjoint from the UE surfaces of all far boxes.
package surface

import "fmt"

// CheckRatio is the half-width of the upward-check / downward-equivalent
// surface relative to the box half-width.
const CheckRatio = 2.75

// Surface is the set of lattice points on the boundary of a p×p×p cubic
// grid, in the unit frame: coordinates span [-1, 1] per axis.
type Surface struct {
	// P is the number of grid points per cube edge (p >= 3 so that the
	// equivalent radius (p-1)/(p-2) is finite and the lattice aligns).
	P int
	// N is the number of surface points: 6p² - 12p + 8.
	N int
	// Rel holds the unit-frame coordinates (x,y,z per point, in [-1,1]).
	Rel []float64
	// VolIdx maps each surface point to its index in the full p³ volume
	// grid (x-major, z fastest), used to embed surface densities into the
	// FFT convolution grid.
	VolIdx []int
}

// New enumerates the boundary lattice of the p³ grid.
func New(p int) (*Surface, error) {
	if p < 3 {
		return nil, fmt.Errorf("surface: degree p must be >= 3, got %d", p)
	}
	s := &Surface{P: p}
	step := 2.0 / float64(p-1)
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			for z := 0; z < p; z++ {
				if x != 0 && x != p-1 && y != 0 && y != p-1 && z != 0 && z != p-1 {
					continue
				}
				s.Rel = append(s.Rel,
					-1+float64(x)*step,
					-1+float64(y)*step,
					-1+float64(z)*step,
				)
				s.VolIdx = append(s.VolIdx, (x*p+y)*p+z)
			}
		}
	}
	s.N = len(s.VolIdx)
	if want := 6*p*p - 12*p + 8; s.N != want {
		panic("surface: point count mismatch")
	}
	return s, nil
}

// EquivRadius returns the half-width of the UE/DC surface for a box of
// half-width r: r·(p-1)/(p-2). The corresponding lattice spacing is
// Spacing(p, r) and satisfies 2r = (p-2)·spacing exactly.
func EquivRadius(p int, r float64) float64 {
	return r * float64(p-1) / float64(p-2)
}

// CheckRadius returns the half-width of the UC/DE surface for a box of
// half-width r.
func CheckRadius(r float64) float64 { return CheckRatio * r }

// Spacing returns the UE/DC lattice spacing h = 2r/(p-2).
func Spacing(p int, r float64) float64 { return 2 * r / float64(p-2) }

// Points writes the surface points scaled to half-width radius around
// center into dst (length 3N) and returns dst. If dst is nil a new slice
// is allocated.
func (s *Surface) Points(center [3]float64, radius float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, 3*s.N)
	}
	if len(dst) != 3*s.N {
		panic("surface: destination length mismatch")
	}
	for i := 0; i < s.N; i++ {
		dst[3*i] = center[0] + radius*s.Rel[3*i]
		dst[3*i+1] = center[1] + radius*s.Rel[3*i+1]
		dst[3*i+2] = center[2] + radius*s.Rel[3*i+2]
	}
	return dst
}

package surface

import (
	"math"
	"testing"
)

func TestNewRejectsTinyDegrees(t *testing.T) {
	for _, p := range []int{-1, 0, 1, 2} {
		if _, err := New(p); err == nil {
			t.Errorf("p=%d must be rejected", p)
		}
	}
}

func TestPointCountFormula(t *testing.T) {
	for p := 3; p <= 12; p++ {
		s, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := 6*p*p - 12*p + 8; s.N != want {
			t.Errorf("p=%d: N=%d want %d", p, s.N, want)
		}
		if len(s.Rel) != 3*s.N || len(s.VolIdx) != s.N {
			t.Errorf("p=%d: inconsistent storage", p)
		}
	}
}

func TestAllPointsOnBoundaryAndUnique(t *testing.T) {
	s, _ := New(5)
	seen := map[int]bool{}
	for i := 0; i < s.N; i++ {
		onFace := false
		for d := 0; d < 3; d++ {
			v := s.Rel[3*i+d]
			if v < -1-1e-15 || v > 1+1e-15 {
				t.Fatalf("coordinate %v outside unit frame", v)
			}
			if math.Abs(math.Abs(v)-1) < 1e-15 {
				onFace = true
			}
		}
		if !onFace {
			t.Fatalf("point %d not on the cube boundary", i)
		}
		if seen[s.VolIdx[i]] {
			t.Fatalf("duplicate volume index %d", s.VolIdx[i])
		}
		seen[s.VolIdx[i]] = true
	}
}

func TestSymmetryUnderNegation(t *testing.T) {
	// The lattice is symmetric under x -> -x per axis: every point's
	// mirror is also a surface point.
	s, _ := New(6)
	type key [3]int64
	q := func(i int) key {
		return key{
			int64(math.Round(s.Rel[3*i] * 1e12)),
			int64(math.Round(s.Rel[3*i+1] * 1e12)),
			int64(math.Round(s.Rel[3*i+2] * 1e12)),
		}
	}
	set := map[key]bool{}
	for i := 0; i < s.N; i++ {
		set[q(i)] = true
	}
	for i := 0; i < s.N; i++ {
		k := q(i)
		for _, m := range []key{{-k[0], k[1], k[2]}, {k[0], -k[1], k[2]}, {k[0], k[1], -k[2]}} {
			if !set[m] {
				t.Fatalf("mirror of point %d missing", i)
			}
		}
	}
}

func TestRadiiSatisfyPaperConstraints(t *testing.T) {
	// End-of-Section-2 constraints for a box of half-width r=1 and its
	// parent (half-width 2):
	for p := 4; p <= 10; p++ {
		ue := EquivRadius(p, 1)
		uc := CheckRadius(1)
		if !(1 < ue && ue < uc && uc < 3) {
			t.Errorf("p=%d: need box < UE < UC < near-range, got 1 < %v < %v < 3", p, ue, uc)
		}
		// Parent UE encloses child UE (paper constraint 3): for a parent
		// of half-width 2 the child (half-width 1) sits at center offset
		// 1, so its UE surface reaches 1 + EquivRadius(p, 1) from the
		// parent center, which must stay inside EquivRadius(p, 2).
		if EquivRadius(p, 2) <= 1+EquivRadius(p, 1) {
			t.Errorf("p=%d: parent UE does not enclose child UE", p)
		}
		// V-list safety: DC (= ue) of the target plus UE of a source at
		// center distance 4 must not intersect: 4 - 2*ue > 0.
		if 4-2*ue <= 0 {
			t.Errorf("p=%d: UE/DC surfaces of V-list boxes intersect", p)
		}
	}
}

func TestSpacingAlignment(t *testing.T) {
	// The M2L lattice property: box-center offsets 2r are exact integer
	// multiples of the surface spacing.
	for p := 3; p <= 10; p++ {
		h := Spacing(p, 1)
		ratio := 2 / h
		if math.Abs(ratio-float64(p-2)) > 1e-13 {
			t.Errorf("p=%d: 2r/h = %v, want %d", p, ratio, p-2)
		}
		// Spacing must equal the lattice step of the scaled surface.
		s, _ := New(p)
		re := EquivRadius(p, 1)
		step := re * 2 / float64(p-1)
		if math.Abs(step-h) > 1e-13 {
			t.Errorf("p=%d: spacing %v vs lattice step %v", p, h, step)
		}
		_ = s
	}
}

func TestPointsScaling(t *testing.T) {
	s, _ := New(4)
	c := [3]float64{1, -2, 3}
	pts := s.Points(c, 0.5, nil)
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			if math.Abs(pts[3*i+d]-c[d]) > 0.5+1e-12 {
				t.Fatal("scaled point escapes the cube")
			}
		}
	}
	// Destination reuse.
	dst := make([]float64, 3*s.N)
	if got := s.Points(c, 0.5, dst); &got[0] != &dst[0] {
		t.Error("Points must write into the provided buffer")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong destination length must panic")
		}
	}()
	s.Points(c, 1, make([]float64, 5))
}

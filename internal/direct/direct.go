// Package direct implements the O(N²) direct summation baseline the FMM
// is verified against and compared with. It is the "Direct
// implementation of this summation" of paper Section 2, blocked for
// cache friendliness and optionally sharded across goroutines.
package direct

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/errs"
	"repro/internal/kernels"
)

// blockSize is the target tile edge for the blocked loops; 256 points of
// 3 coordinates keep both tiles comfortably in L1/L2.
const blockSize = 256

// Evaluate computes pot[i] = Σ_j G(trg_i, src_j) den_j by direct
// summation. den holds SourceDim components per source; the result holds
// TargetDim components per target. Self interactions (identical
// coordinates) contribute nothing, matching the FMM convention.
func Evaluate(k kernels.Kernel, trg, src, den []float64) ([]float64, error) {
	if len(trg)%3 != 0 || len(src)%3 != 0 {
		return nil, fmt.Errorf("direct: coordinates must be flat x,y,z slices")
	}
	ns := len(src) / 3
	if len(den) != ns*k.SourceDim() {
		return nil, fmt.Errorf("direct: density length %d, want %d", len(den), ns*k.SourceDim())
	}
	nt := len(trg) / 3
	pot := make([]float64, nt*k.TargetDim())
	evaluateRange(k, trg, src, den, pot, 0, nt)
	return pot, nil
}

// EvaluateParallel is Evaluate sharded over workers goroutines (default
// GOMAXPROCS when workers <= 0). Targets are independent, so the shards
// never contend. ctx bounds the summation: every shard checks it
// between target blocks, so cancelling a large O(N²) reference run
// (the conformance sweeps reach N=20k) aborts within one block.
func EvaluateParallel(ctx context.Context, k kernels.Kernel, trg, src, den []float64, workers int) ([]float64, error) {
	if len(trg)%3 != 0 || len(src)%3 != 0 {
		return nil, fmt.Errorf("direct: coordinates must be flat x,y,z slices")
	}
	ns := len(src) / 3
	if len(den) != ns*k.SourceDim() {
		return nil, fmt.Errorf("direct: density length %d, want %d", len(den), ns*k.SourceDim())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nt := len(trg) / 3
	pot := make([]float64, nt*k.TargetDim())
	if workers > nt {
		workers = nt
	}
	if workers <= 1 {
		if err := evaluateRangeCtx(ctx, k, trg, src, den, pot, 0, nt); err != nil {
			return nil, err
		}
		return pot, nil
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		lo := nt * w / workers
		hi := nt * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := evaluateRangeCtx(ctx, k, trg, src, den, pot, lo, hi); err != nil {
				errc <- err
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	return pot, nil
}

// evaluateRangeCtx is evaluateRange with a cancellation check between
// target blocks; a cancelled run returns the typed taxonomy error.
func evaluateRangeCtx(ctx context.Context, k kernels.Kernel, trg, src, den, pot []float64, lo, hi int) error {
	for tb := lo; tb < hi; tb += blockSize {
		if err := ctx.Err(); err != nil {
			return errs.FromContext(err)
		}
		te := min(tb+blockSize, hi)
		evaluateRange(k, trg, src, den, pot, tb, te)
	}
	return nil
}

// evaluateRange fills pot for targets [lo, hi) with blocked loops.
func evaluateRange(k kernels.Kernel, trg, src, den, pot []float64, lo, hi int) {
	sd, td := k.SourceDim(), k.TargetDim()
	ns := len(src) / 3
	for tb := lo; tb < hi; tb += blockSize {
		te := min(tb+blockSize, hi)
		for sb := 0; sb < ns; sb += blockSize {
			se := min(sb+blockSize, ns)
			kernels.P2P(k,
				trg[3*tb:3*te],
				src[3*sb:3*se],
				den[sd*sb:sd*se],
				pot[td*tb:td*te],
			)
		}
	}
}

// Flops returns the approximate flop count of one direct evaluation.
func Flops(k kernels.Kernel, nt, ns int) int64 {
	return kernels.P2PFlops(k, nt, ns)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

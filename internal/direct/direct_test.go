package direct

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernels"
)

func cloud(rng *rand.Rand, n int) []float64 {
	p := make([]float64, 3*n)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}

// naive is the textbook triple loop the blocked path must match.
func naive(k kernels.Kernel, trg, src, den []float64) []float64 {
	nt, ns := len(trg)/3, len(src)/3
	sd, td := k.SourceDim(), k.TargetDim()
	pot := make([]float64, nt*td)
	block := make([]float64, sd*td)
	for i := 0; i < nt; i++ {
		for j := 0; j < ns; j++ {
			k.Eval(trg[3*i]-src[3*j], trg[3*i+1]-src[3*j+1], trg[3*i+2]-src[3*j+2], block)
			for a := 0; a < td; a++ {
				for b := 0; b < sd; b++ {
					pot[i*td+a] += block[a*sd+b] * den[j*sd+b]
				}
			}
		}
	}
	return pot
}

func TestEvaluateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []kernels.Kernel{kernels.Laplace{}, kernels.NewModLaplace(2), kernels.NewStokes(1)} {
		// Sizes straddling the block size.
		for _, n := range []int{1, 7, 255, 256, 300} {
			trg := cloud(rng, n)
			src := cloud(rng, n/2+1)
			den := make([]float64, (n/2+1)*k.SourceDim())
			for i := range den {
				den[i] = rng.NormFloat64()
			}
			got, err := Evaluate(k, trg, src, den)
			if err != nil {
				t.Fatal(err)
			}
			want := naive(k, trg, src, den)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-11*(math.Abs(want[i])+1) {
					t.Fatalf("%s n=%d: mismatch at %d: %v vs %v", k.Name(), n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEvaluateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trg := cloud(rng, 513)
	src := cloud(rng, 400)
	den := make([]float64, 400)
	for i := range den {
		den[i] = rng.NormFloat64()
	}
	want, err := Evaluate(kernels.Laplace{}, trg, src, den)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 1000} {
		got, err := EvaluateParallel(context.Background(), kernels.Laplace{}, trg, src, den, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*(math.Abs(want[i])+1) {
				t.Fatalf("workers=%d: mismatch at %d", workers, i)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Evaluate(kernels.Laplace{}, []float64{1, 2}, nil, nil); err == nil {
		t.Error("malformed targets must error")
	}
	if _, err := Evaluate(kernels.Laplace{}, nil, []float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("wrong density length must error")
	}
	if _, err := EvaluateParallel(context.Background(), kernels.Laplace{}, []float64{1}, nil, nil, 2); err == nil {
		t.Error("parallel: malformed targets must error")
	}
	if _, err := EvaluateParallel(context.Background(), kernels.Laplace{}, nil, nil, []float64{1}, 2); err == nil {
		t.Error("parallel: wrong density length must error")
	}
}

func TestEmptyInputs(t *testing.T) {
	got, err := Evaluate(kernels.Laplace{}, nil, nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty evaluate: %v, %v", got, err)
	}
	// Targets without sources: zero potentials.
	got, err = Evaluate(kernels.Laplace{}, []float64{1, 2, 3}, nil, nil)
	if err != nil || len(got) != 1 || got[0] != 0 {
		t.Errorf("no-source evaluate: %v, %v", got, err)
	}
}

func TestFlopsScale(t *testing.T) {
	if Flops(kernels.Laplace{}, 10, 10) >= Flops(kernels.NewStokes(1), 10, 10) {
		t.Error("Stokes must cost more flops than Laplace")
	}
}

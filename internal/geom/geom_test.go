package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphereGridCountsAndGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	patches := SphereGrid(rng, 10000, 8, 0.1)
	if len(patches) != 512 {
		t.Fatalf("8^3 grid must give 512 patches, got %d", len(patches))
	}
	if TotalCount(patches) != 10000 {
		t.Fatalf("total count %d", TotalCount(patches))
	}
	// Every point lies on its sphere.
	for pi := range patches {
		p := &patches[pi]
		for i := 0; i+2 < len(p.Points); i += 3 {
			dx := p.Points[i] - p.Center[0]
			dy := p.Points[i+1] - p.Center[1]
			dz := p.Points[i+2] - p.Center[2]
			r := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if math.Abs(r-0.1) > 1e-12 {
				t.Fatalf("patch %d: point radius %v", pi, r)
			}
		}
	}
	// Counts differ by at most one across patches.
	min, max := patches[0].Count(), patches[0].Count()
	for i := range patches {
		c := patches[i].Count()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("uneven patch sizes: %d..%d", min, max)
	}
}

func TestCornerClustersStayInCubeAndCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	patches := CornerClusters(rng, 4000, 0.3, 4)
	if len(patches) != 32 {
		t.Fatalf("8 corners x 4 slices = 32 patches, got %d", len(patches))
	}
	if TotalCount(patches) != 4000 {
		t.Fatalf("total %d", TotalCount(patches))
	}
	near := 0
	pts := Flatten(patches)
	for i := 0; i+2 < len(pts); i += 3 {
		for d := 0; d < 3; d++ {
			if pts[i+d] < -1 || pts[i+d] > 1 {
				t.Fatalf("point outside cube: %v", pts[i+d])
			}
		}
		// Distance to the nearest corner.
		dx := 1 - math.Abs(pts[i])
		dy := 1 - math.Abs(pts[i+1])
		dz := 1 - math.Abs(pts[i+2])
		if math.Sqrt(dx*dx+dy*dy+dz*dz) < 0.15 {
			near++
		}
	}
	if float64(near) < 0.5*4000 {
		t.Errorf("distribution not clustered: only %d/4000 near corners", near)
	}
}

func TestUniformCubeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	patches := UniformCube(rng, 1000)
	if len(patches) != 1 || TotalCount(patches) != 1000 {
		t.Fatal("uniform cube shape")
	}
	for _, v := range patches[0].Points {
		if v < -1 || v > 1 {
			t.Fatalf("uniform point %v outside cube", v)
		}
	}
}

func TestRandomDensitiesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := RandomDensities(rng, 100, 3)
	if len(d) != 300 {
		t.Fatalf("length %d", len(d))
	}
	for _, v := range d {
		if v < 0 || v > 1 {
			t.Fatalf("density %v outside [0,1] (paper: densities chosen from [0,1])", v)
		}
	}
}

func TestBoundingCubeContainsAllPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		pts := make([]float64, 3*n)
		for i := range pts {
			pts[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		c, hw := BoundingCube(pts)
		for i := 0; i+2 < len(pts); i += 3 {
			for d := 0; d < 3; d++ {
				if math.Abs(pts[i+d]-c[d]) > hw {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundingCubeDegenerate(t *testing.T) {
	c, hw := BoundingCube(nil)
	if hw <= 0 {
		t.Error("empty cloud must still give positive half-width")
	}
	c, hw = BoundingCube([]float64{1, 2, 3})
	if hw <= 0 || c != [3]float64{1, 2, 3} {
		t.Errorf("single point cube: %v %v", c, hw)
	}
}

func TestFlattenOrderMatchesPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	patches := SphereGrid(rng, 100, 2, 0.2)
	flat := Flatten(patches)
	idx := 0
	for pi := range patches {
		for _, v := range patches[pi].Points {
			if flat[idx] != v {
				t.Fatalf("flatten order broken at %d", idx)
			}
			idx++
		}
	}
}

func TestCornerClustersPanicsOnMiscount(t *testing.T) {
	// Internal invariant: every requested point is generated. Indirectly
	// covered above; here check slices<1 is clamped rather than panicking.
	rng := rand.New(rand.NewSource(6))
	patches := CornerClusters(rng, 160, 0.2, 0)
	if TotalCount(patches) != 160 {
		t.Errorf("slices=0 must clamp to 1, got %d points", TotalCount(patches))
	}
}

// Package geom generates the particle distributions used in the paper's
// evaluation (Section 4) and provides the surface-patch abstraction that
// the parallel partitioner operates on.
//
// The paper samples particles from input surfaces: the first set samples
// 512 spheres centered on an 8x8x8 Cartesian grid in the cube [-1,1]^3;
// the second is a non-uniform set clustered at the eight corners of the
// cube. Densities are drawn uniformly from [0, 1].
package geom

import (
	"math"
	"math/rand"
)

// Patch is a group of particles sampled from one input surface patch. The
// parallel partitioner (paper Section 3.1) assigns whole patches to
// processors by Morton order of their centers, weighted by Count.
type Patch struct {
	// Center is the patch center used as its Morton partitioning key.
	Center [3]float64
	// Points holds the flat (x,y,z,...) coordinates of the patch samples.
	Points []float64
}

// Count returns the number of particles in the patch.
func (p *Patch) Count() int { return len(p.Points) / 3 }

// SphereGrid samples n particles (total, as evenly as possible) from
// spheres of radius r centered on a g x g x g Cartesian grid inside
// [-1,1]^3, returning one patch per sphere. With g=8 this is the paper's
// "512 spheres" distribution: approximately uniform at low sampling
// rates, locally non-uniform at high rates because the spherical
// sampling concentrates points near the poles.
func SphereGrid(rng *rand.Rand, n, g int, r float64) []Patch {
	spheres := g * g * g
	patches := make([]Patch, 0, spheres)
	per := n / spheres
	extra := n % spheres
	// Grid spacing: centers at -1 + (i+0.5)*2/g in each dimension.
	step := 2.0 / float64(g)
	idx := 0
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			for k := 0; k < g; k++ {
				m := per
				if idx < extra {
					m++
				}
				idx++
				c := [3]float64{
					-1 + (float64(i)+0.5)*step,
					-1 + (float64(j)+0.5)*step,
					-1 + (float64(k)+0.5)*step,
				}
				patches = append(patches, Patch{Center: c, Points: sampleSphere(rng, c, r, m)})
			}
		}
	}
	return patches
}

// sampleSphere places m points on the sphere of radius r around c using
// latitude-longitude sampling. Like the paper's sampler it is non-uniform
// over the sphere (denser near the poles), which is what produces the
// per-processor non-uniformity at high sampling rates.
func sampleSphere(rng *rand.Rand, c [3]float64, r float64, m int) []float64 {
	pts := make([]float64, 0, 3*m)
	for i := 0; i < m; i++ {
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		st, ct := math.Sincos(theta)
		sp, cp := math.Sincos(phi)
		pts = append(pts,
			c[0]+r*st*cp,
			c[1]+r*st*sp,
			c[2]+r*ct,
		)
	}
	return pts
}

// CornerClusters generates the paper's second particle set: n particles
// clustered at the eight corners of the cube [-1,1]^3. Each cluster is a
// ball of radius spread with an r^3-concentrated radial profile, giving a
// strongly non-uniform octree. One patch per corner octant slice is
// returned (8*slices patches) so the partitioner has enough granularity.
func CornerClusters(rng *rand.Rand, n int, spread float64, slices int) []Patch {
	if slices < 1 {
		slices = 1
	}
	corners := [8][3]float64{
		{-1, -1, -1}, {1, -1, -1}, {-1, 1, -1}, {1, 1, -1},
		{-1, -1, 1}, {1, -1, 1}, {-1, 1, 1}, {1, 1, 1},
	}
	patches := make([]Patch, 0, 8*slices)
	total := 0
	for ci, c := range corners {
		for s := 0; s < slices; s++ {
			m := n/(8*slices) + boolInt(ci*slices+s < n%(8*slices))
			total += m
			pts := make([]float64, 0, 3*m)
			for i := 0; i < m; i++ {
				// Radius concentrated toward the corner: r = spread * u^2
				// puts most mass very close to the corner point.
				u := rng.Float64()
				rad := spread * u * u
				theta := math.Acos(2*rng.Float64() - 1)
				phi := rng.Float64() * 2 * math.Pi
				st, ct := math.Sincos(theta)
				sp, cp := math.Sincos(phi)
				pts = append(pts,
					clamp(c[0]+rad*st*cp, -1, 1),
					clamp(c[1]+rad*st*sp, -1, 1),
					clamp(c[2]+rad*ct, -1, 1),
				)
			}
			patches = append(patches, Patch{Center: c, Points: pts})
		}
	}
	if total != n {
		panic("geom: corner cluster count mismatch")
	}
	return patches
}

// UniformCube draws n particles uniformly from [-1,1]^3 as a single
// patch. It is used by unit tests and by accuracy studies that need a
// distribution-independent reference.
func UniformCube(rng *rand.Rand, n int) []Patch {
	pts := make([]float64, 3*n)
	for i := range pts {
		pts[i] = 2*rng.Float64() - 1
	}
	return []Patch{{Center: [3]float64{0, 0, 0}, Points: pts}}
}

// RandomDensities draws count*dim density components uniformly from
// [0,1], matching the paper's setup ("densities are chosen randomly from
// [0,1]").
func RandomDensities(rng *rand.Rand, count, dim int) []float64 {
	d := make([]float64, count*dim)
	for i := range d {
		d[i] = rng.Float64()
	}
	return d
}

// Flatten concatenates the points of all patches into one flat slice.
func Flatten(patches []Patch) []float64 {
	n := 0
	for i := range patches {
		n += len(patches[i].Points)
	}
	out := make([]float64, 0, n)
	for i := range patches {
		out = append(out, patches[i].Points...)
	}
	return out
}

// TotalCount returns the number of particles across all patches.
func TotalCount(patches []Patch) int {
	n := 0
	for i := range patches {
		n += patches[i].Count()
	}
	return n
}

// BoundingCube returns the center and half-width of the smallest axis-
// aligned cube centered on the point cloud's bounding-box center that
// contains every point, padded by a small factor so no point lies exactly
// on the domain boundary.
func BoundingCube(pts []float64) (center [3]float64, halfWidth float64) {
	if len(pts) == 0 {
		return [3]float64{}, 1
	}
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := 0; i+2 < len(pts); i += 3 {
		for d := 0; d < 3; d++ {
			v := pts[i+d]
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	for d := 0; d < 3; d++ {
		center[d] = (lo[d] + hi[d]) / 2
		if w := (hi[d] - lo[d]) / 2; w > halfWidth {
			halfWidth = w
		}
	}
	if halfWidth == 0 {
		halfWidth = 1
	}
	return center, halfWidth * (1 + 1e-10)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
